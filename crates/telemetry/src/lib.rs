//! Structured JSONL tracing for the CDCL training loop.
//!
//! The whole layer is **off by default** and costs one relaxed atomic load
//! per call site when disabled. Setting the `CDCL_TRACE=<path>` environment
//! variable (or calling [`set_trace_file`] from tests) opens `<path>` and
//! every event becomes one JSON object per line:
//!
//! ```text
//! {"seq":0,"ms":0.01,"wall_ms":1754700000123.456,"ev":"phase","name":"warmup","task":0,"epoch":0,"start_ms":0.0,"dur_ms":12.4}
//! {"seq":1,"ms":12.5,"wall_ms":1754700000135.956,"ev":"scalar","name":"loss_total","task":0,"epoch":1,"step":3,"value":1.25}
//! {"seq":2,"ms":30.1,"wall_ms":1754700000153.556,"ev":"counters","task":0,"gemm_calls":812,"gemm_fmas":91234567,"pool_spawns":14}
//! {"seq":3,"ms":30.2,"wall_ms":1754700000153.656,"ev":"watchdog","name":"loss_total","phase":"adaptation","task":0,"epoch":2,"step":0,"value":"NaN"}
//! ```
//!
//! Common fields: `seq` (monotone per process), `ms` (milliseconds since the
//! first event), `wall_ms` (UNIX-epoch milliseconds, the cross-process
//! alignment axis for [`ctx`] traces), `ev` (event kind), `name`. Context
//! fields (`task`, `epoch`, `step`), distributed-trace identity (`trace`,
//! `span`, `parent`, `links` — see [`ctx`]) and payload fields (`value`,
//! `start_ms`, `dur_ms`, counter names) appear when the producer supplies
//! them.
//!
//! The crate is deliberately dependency-free (not even the vendored `serde`):
//! it writes its own JSON, so it can sit below every other crate in the
//! workspace without cycles.
//!
//! # Watchdog
//!
//! [`check_finite`] is the NaN/Inf watchdog: when tracing is enabled and the
//! observed value is non-finite it emits a final `watchdog` event, flushes
//! the sink, and panics with the offending phase/task/epoch/step in the
//! message, so a long run dies at the first poisoned step instead of
//! silently training on garbage. With tracing disabled the producers skip
//! the check entirely (gate on [`enabled`]), keeping untraced runs bitwise
//! identical to builds without this crate.

pub mod ctx;

use std::fs::File;
use std::io::{BufWriter, Write};
use std::marker::PhantomData;
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, Once, OnceLock};
use std::time::Instant;

/// Fast-path flag: true iff a sink is installed.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// One-shot resolution of the `CDCL_TRACE` environment variable.
static ENV_INIT: Once = Once::new();

/// The active sink, when tracing is enabled.
static SINK: Mutex<Option<BufWriter<File>>> = Mutex::new(None);

/// Sink generation, bumped (under the sink lock) on every retarget. An
/// [`Event`] snapshots the generation when it starts building; `emit`
/// re-checks it under the lock and drops the event if the sink was swapped
/// in between — an event composed against the old trace file must not leak
/// into the new one mid-line-stream.
static SINK_EPOCH: AtomicU64 = AtomicU64::new(0);

/// Monotone event sequence number (process-wide).
static SEQ: AtomicU64 = AtomicU64::new(0);

/// Timestamp origin: the first event emitted or span opened, whichever
/// comes first (spans need it at creation to stamp `start_ms`).
static EPOCH: OnceLock<Instant> = OnceLock::new();

/// The environment variable that activates tracing.
pub const TRACE_ENV: &str = "CDCL_TRACE";

fn ensure_env_init() {
    ENV_INIT.call_once(|| {
        if let Ok(path) = std::env::var(TRACE_ENV) {
            if !path.is_empty() {
                install_sink(Path::new(&path));
            }
        }
    });
}

/// Poison-tolerant sink lock: a writer that panicked mid-emit (the
/// watchdog does, deliberately) leaves at worst a complete buffered line,
/// so taking over the lock is sound.
fn lock_sink() -> std::sync::MutexGuard<'static, Option<BufWriter<File>>> {
    match SINK.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Swaps the sink atomically: the flush of the old writer, the generation
/// bump, and the installation of the new file all happen under one lock
/// acquisition, so no event can be written across the boundary.
fn swap_sink(path: Option<&Path>) {
    let mut sink = lock_sink();
    if let Some(old) = sink.as_mut() {
        let _ = old.flush();
    }
    // ordering: flag — generation bump; real synchronisation is the SINK
    // mutex held around both the bump and every epoch re-check in `emit`.
    SINK_EPOCH.fetch_add(1, Ordering::Release);
    match path {
        Some(p) => {
            let file = File::create(p)
                .unwrap_or_else(|e| panic!("cdcl-telemetry: cannot create trace file {p:?}: {e}"));
            *sink = Some(BufWriter::new(file));
            // ordering: flag — advisory enable bit; the sink itself is
            // only ever touched under the SINK mutex.
            ENABLED.store(true, Ordering::Release);
        }
        None => {
            *sink = None;
            // ordering: flag — see above.
            ENABLED.store(false, Ordering::Release);
        }
    }
}

fn install_sink(path: &Path) {
    swap_sink(Some(path));
}

/// True when a trace sink is active. Producers should gate any work that
/// exists only to feed telemetry (loss `item()` reads, gradient-norm
/// reductions, counter snapshots) behind this, so an untraced run does no
/// extra work at all.
#[inline]
pub fn enabled() -> bool {
    // ordering: flag — a stale read can only skip or over-build one event;
    // emission re-checks the sink under its mutex.
    if ENABLED.load(Ordering::Relaxed) {
        return true;
    }
    ensure_env_init();
    // ordering: flag — re-read after idempotent env resolution; same advisory bit.
    ENABLED.load(Ordering::Relaxed)
}

/// Installs (`Some(path)`) or removes (`None`) the trace sink explicitly,
/// overriding whatever `CDCL_TRACE` resolved to. Intended for tests, which
/// cannot rely on per-process environment state; flushes and closes any
/// previous sink. The swap is atomic with respect to concurrent
/// [`Event::emit`] calls: events already under construction against the
/// old sink are dropped, never interleaved into the new file.
pub fn set_trace_file(path: Option<&Path>) {
    ensure_env_init();
    swap_sink(path);
}

/// Flushes the sink (tests read the file back; the writer is buffered).
pub fn flush() {
    if let Some(sink) = lock_sink().as_mut() {
        let _ = sink.flush();
    }
}

/// Appends a JSON-escaped string literal (with quotes) to `out`.
fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Builder for one trace event (one JSONL line). When tracing is disabled
/// every method is a no-op on a `None` buffer, so stray un-gated call sites
/// cost a branch and nothing else.
#[must_use = "call .emit() to write the event"]
pub struct Event {
    /// JSON object body under construction (without `seq`/`ms`, which are
    /// assigned under the sink lock at emit time). `None` when disabled.
    buf: Option<String>,
    /// The sink generation this event was built against; emit drops the
    /// event if the sink was retargeted in between.
    sink_gen: u64,
}

impl Event {
    /// Starts an event of kind `ev` (e.g. `"phase"`, `"scalar"`).
    pub fn new(ev: &str) -> Self {
        if !enabled() {
            return Self {
                buf: None,
                sink_gen: 0,
            };
        }
        let mut buf = String::with_capacity(128);
        buf.push_str(",\"ev\":");
        push_json_str(&mut buf, ev);
        Self {
            buf: Some(buf),
            // ordering: flag — generation snapshot for the stale-event
            // drop; `emit` re-reads it under the SINK mutex.
            sink_gen: SINK_EPOCH.load(Ordering::Acquire),
        }
    }

    /// The event's `name` field.
    pub fn name(self, name: &str) -> Self {
        self.str_field("name", name)
    }

    /// Task context.
    pub fn task(self, task: usize) -> Self {
        self.u64_field("task", task as u64)
    }

    /// Epoch context.
    pub fn epoch(self, epoch: usize) -> Self {
        self.u64_field("epoch", epoch as u64)
    }

    /// Step (mini-batch) context.
    pub fn step(self, step: usize) -> Self {
        self.u64_field("step", step as u64)
    }

    /// The scalar payload field `value`.
    pub fn value(self, value: f64) -> Self {
        self.f64_field("value", value)
    }

    /// An arbitrary unsigned integer field.
    pub fn u64_field(mut self, key: &str, value: u64) -> Self {
        if let Some(buf) = self.buf.as_mut() {
            buf.push(',');
            push_json_str(buf, key);
            buf.push(':');
            buf.push_str(&value.to_string());
        }
        self
    }

    /// An arbitrary float field. JSON has no NaN/Inf: non-finite values are
    /// written as strings (`"NaN"`, `"inf"`, `"-inf"`) so the offending
    /// value survives into the trace instead of degrading to `null`.
    pub fn f64_field(mut self, key: &str, value: f64) -> Self {
        if let Some(buf) = self.buf.as_mut() {
            buf.push(',');
            push_json_str(buf, key);
            buf.push(':');
            if value.is_finite() {
                buf.push_str(&format!("{value}"));
            } else if value.is_nan() {
                buf.push_str("\"NaN\"");
            } else if value > 0.0 {
                buf.push_str("\"inf\"");
            } else {
                buf.push_str("\"-inf\"");
            }
        }
        self
    }

    /// An arbitrary string field.
    pub fn str_field(mut self, key: &str, value: &str) -> Self {
        if let Some(buf) = self.buf.as_mut() {
            buf.push(',');
            push_json_str(buf, key);
            buf.push(':');
            push_json_str(buf, value);
        }
        self
    }

    /// Distributed-trace identity fields: `trace` (32 hex digits), `span`
    /// (16 hex digits) and — when the parent is local — `parent`. No-op
    /// for the unsampled sentinel.
    pub fn trace_fields(mut self, c: ctx::TraceContext, parent: Option<u64>) -> Self {
        if !c.is_sampled() {
            return self;
        }
        self = self
            .str_field("trace", &format!("{:032x}", c.trace_id))
            .str_field("span", &format!("{:016x}", c.span_id));
        if let Some(p) = parent {
            self = self.str_field("parent", &format!("{p:016x}"));
        }
        self
    }

    /// Fan-in links: a `key` array of traceparent strings pointing at the
    /// (foreign-trace) spans this event absorbs — e.g. a serve batch span
    /// linking the request contexts it coalesced. Unsampled entries are
    /// skipped; an empty link set emits nothing.
    pub fn links(mut self, key: &str, links: &[ctx::TraceContext]) -> Self {
        let sampled: Vec<&ctx::TraceContext> = links.iter().filter(|c| c.is_sampled()).collect();
        if sampled.is_empty() {
            return self;
        }
        if let Some(buf) = self.buf.as_mut() {
            buf.push(',');
            push_json_str(buf, key);
            buf.push_str(":[");
            for (i, c) in sampled.iter().enumerate() {
                if i > 0 {
                    buf.push(',');
                }
                push_json_str(buf, &c.encode());
            }
            buf.push(']');
        }
        self
    }

    /// Writes the event as one line to the sink. No-op when disabled, and
    /// a deliberate drop when the sink was retargeted since [`Event::new`]
    /// — the event belongs to the old trace file, and writing it into the
    /// new one would interleave foreign lines into a fresh stream.
    pub fn emit(self) {
        let Some(body) = self.buf else { return };
        let epoch = *EPOCH.get_or_init(Instant::now);
        let ms = epoch.elapsed().as_secs_f64() * 1e3;
        // The cross-process alignment axis: traces from different daemons
        // are merged on wall_ms (`ms` origins differ per process). Only
        // ever read with tracing enabled, so untraced runs stay clock-free.
        let wall_ms = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_secs_f64() * 1e3)
            .unwrap_or(0.0);
        let mut sink = lock_sink();
        // ordering: flag — read under the SINK mutex, which also ordered
        // the writer's bump in `swap_sink`; Relaxed is sufficient here.
        if SINK_EPOCH.load(Ordering::Relaxed) != self.sink_gen {
            return;
        }
        let Some(out) = sink.as_mut() else { return };
        // seq is assigned under the lock so file order == seq order.
        // ordering: stat — monotone sequence number; file order is fixed
        // by the SINK mutex, not by this counter's ordering.
        let seq = SEQ.fetch_add(1, Ordering::Relaxed);
        let _ = writeln!(
            out,
            "{{\"seq\":{seq},\"ms\":{ms:.3},\"wall_ms\":{wall_ms:.3}{body}}}"
        );
        // One flush per event keeps the trace complete even when the
        // process dies mid-run (the watchdog's whole point). Event volume
        // is a handful per epoch, so this is not a hot path.
        let _ = out.flush();
    }
}

/// A scoped phase timer: emits a `phase` event with `start_ms` + `dur_ms`
/// (both relative to the process trace origin) when dropped. Create via
/// [`span`]; context attaches with [`Span::task`]/[`Span::epoch`].
///
/// When tracing is enabled the span also joins the distributed trace: it
/// derives a [`ctx::TraceContext`] from the thread-local current-span
/// stack (child of the innermost open span or remote parent, fresh
/// sampled-or-not root otherwise) and sits on that stack until dropped,
/// so nested spans and [`Event::trace_fields`] pick up parentage without
/// any signature churn. The stack is thread-local, hence `Span` is
/// deliberately `!Send`: it must drop on the thread that created it.
pub struct Span {
    /// `None` when tracing is disabled — drop does nothing.
    start: Option<Instant>,
    /// Milliseconds since the process trace origin at creation.
    start_ms: f64,
    /// Trace identity and local parent span id; `None` when disabled.
    trace: Option<(ctx::TraceContext, Option<u64>)>,
    name: &'static str,
    task: Option<usize>,
    epoch: Option<usize>,
    /// Pins the span to its creating thread (thread-local ctx stack).
    _not_send: PhantomData<*const ()>,
}

/// Starts a phase timer named `name`.
pub fn span(name: &'static str) -> Span {
    if !enabled() {
        return Span {
            start: None,
            start_ms: 0.0,
            trace: None,
            name,
            task: None,
            epoch: None,
            _not_send: PhantomData,
        };
    }
    let start = Instant::now();
    let epoch = *EPOCH.get_or_init(|| start);
    Span {
        start: Some(start),
        start_ms: start.saturating_duration_since(epoch).as_secs_f64() * 1e3,
        trace: Some(ctx::push_child()),
        name,
        task: None,
        epoch: None,
        _not_send: PhantomData,
    }
}

impl Span {
    /// Attaches task context.
    pub fn task(mut self, task: usize) -> Self {
        self.task = Some(task);
        self
    }

    /// Attaches epoch context.
    pub fn epoch(mut self, epoch: usize) -> Self {
        self.epoch = Some(epoch);
        self
    }

    /// The span's distributed-trace identity, for propagating across a
    /// process boundary (`trace=` wire fields). `None` when tracing is
    /// disabled or the trace was not sampled.
    pub fn context(&self) -> Option<ctx::TraceContext> {
        self.trace
            .map(|(c, _)| c)
            .filter(ctx::TraceContext::is_sampled)
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if self.trace.is_some() {
            ctx::pop();
        }
        let Some(start) = self.start else { return };
        let mut ev = Event::new("phase").name(self.name);
        if let Some(t) = self.task {
            ev = ev.task(t);
        }
        if let Some(e) = self.epoch {
            ev = ev.epoch(e);
        }
        if let Some((c, parent)) = self.trace {
            ev = ev.trace_fields(c, parent);
        }
        ev.f64_field("start_ms", self.start_ms)
            .f64_field("dur_ms", start.elapsed().as_secs_f64() * 1e3)
            .emit();
    }
}

/// Location context for the watchdog: which phase/task/epoch/step produced
/// the value under scrutiny.
#[derive(Debug, Clone, Copy)]
pub struct WatchdogCtx {
    /// Training phase (`"warmup"`, `"adaptation"`, ...).
    pub phase: &'static str,
    /// Task index.
    pub task: usize,
    /// Epoch within the task.
    pub epoch: usize,
    /// Mini-batch step within the epoch.
    pub step: usize,
}

/// NaN/Inf watchdog: panics (after emitting and flushing a `watchdog`
/// event) when `value` is non-finite, identifying the offending
/// phase/task/epoch/step. Inert when tracing is disabled — the watchdog is
/// part of the tracing layer, not of untraced training (callers should
/// still gate the *computation* of watched values on [`enabled`]).
pub fn check_finite(name: &str, value: f64, ctx: WatchdogCtx) {
    if !enabled() || value.is_finite() {
        return;
    }
    Event::new("watchdog")
        .name(name)
        .str_field("phase", ctx.phase)
        .task(ctx.task)
        .epoch(ctx.epoch)
        .step(ctx.step)
        .value(value)
        .emit();
    flush();
    panic!(
        "cdcl-telemetry watchdog: non-finite {name} ({value}) in phase `{}` \
         at task {} epoch {} step {}",
        ctx.phase, ctx.task, ctx.epoch, ctx.step
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;
    use std::sync::Mutex as StdMutex;

    /// The sink is process-global; tests that install one must not overlap.
    static TEST_GUARD: StdMutex<()> = StdMutex::new(());

    fn tmp_path(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("cdcl-telemetry-{tag}-{}.jsonl", std::process::id()))
    }

    fn read_lines(path: &Path) -> Vec<String> {
        flush();
        std::fs::read_to_string(path)
            .expect("trace file readable")
            .lines()
            .map(str::to_string)
            .collect()
    }

    #[test]
    fn disabled_emits_nothing_and_builders_are_noops() {
        let _g = TEST_GUARD.lock().unwrap();
        set_trace_file(None);
        assert!(!enabled());
        // None of these may panic or allocate a sink — including the
        // watchdog on a NaN, which is inert while tracing is off.
        Event::new("scalar").name("x").task(1).value(1.0).emit();
        drop(span("phase").task(0).epoch(0));
        check_finite(
            "loss",
            f64::NAN,
            WatchdogCtx {
                phase: "warmup",
                task: 0,
                epoch: 0,
                step: 0,
            },
        );
        assert!(!enabled());
    }

    #[test]
    fn events_render_one_json_object_per_line() {
        let _g = TEST_GUARD.lock().unwrap();
        let path = tmp_path("events");
        set_trace_file(Some(&path));
        Event::new("scalar")
            .name("loss \"q\"\n")
            .task(3)
            .epoch(1)
            .step(2)
            .value(0.5)
            .emit();
        Event::new("counters")
            .task(0)
            .u64_field("gemm_calls", 7)
            .emit();
        {
            let _s = span("warmup").task(3).epoch(0);
        }
        let lines = read_lines(&path);
        set_trace_file(None);
        std::fs::remove_file(&path).ok();

        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains("\"ev\":\"scalar\""));
        assert!(lines[0].contains("\"name\":\"loss \\\"q\\\"\\n\""));
        assert!(lines[0].contains("\"task\":3"));
        assert!(lines[0].contains("\"value\":0.5"));
        assert!(lines[1].contains("\"gemm_calls\":7"));
        assert!(lines[2].contains("\"ev\":\"phase\""));
        assert!(lines[2].contains("\"dur_ms\":"));
        for l in &lines {
            assert!(l.starts_with("{\"seq\":") && l.ends_with('}'));
        }
    }

    #[test]
    fn non_finite_values_serialize_as_strings() {
        let _g = TEST_GUARD.lock().unwrap();
        let path = tmp_path("nonfinite");
        set_trace_file(Some(&path));
        Event::new("scalar").name("a").value(f64::NAN).emit();
        Event::new("scalar").name("b").value(f64::INFINITY).emit();
        Event::new("scalar")
            .name("c")
            .value(f64::NEG_INFINITY)
            .emit();
        let lines = read_lines(&path);
        set_trace_file(None);
        std::fs::remove_file(&path).ok();
        assert!(lines[0].contains("\"value\":\"NaN\""));
        assert!(lines[1].contains("\"value\":\"inf\""));
        assert!(lines[2].contains("\"value\":\"-inf\""));
    }

    #[test]
    fn watchdog_trips_on_nan_with_context_in_message() {
        let _g = TEST_GUARD.lock().unwrap();
        let path = tmp_path("watchdog");
        set_trace_file(Some(&path));
        let result = std::panic::catch_unwind(|| {
            check_finite(
                "loss_total",
                f64::NAN,
                WatchdogCtx {
                    phase: "adaptation",
                    task: 2,
                    epoch: 5,
                    step: 7,
                },
            );
        });
        let lines = read_lines(&path);
        set_trace_file(None);
        std::fs::remove_file(&path).ok();

        let err = result.expect_err("watchdog must panic on NaN");
        let msg = err
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_else(|| "non-string panic".into());
        assert!(msg.contains("loss_total"), "message: {msg}");
        assert!(msg.contains("`adaptation`"), "message: {msg}");
        assert!(msg.contains("task 2 epoch 5 step 7"), "message: {msg}");
        // The trace also recorded the trip before dying.
        assert!(lines.iter().any(|l| l.contains("\"ev\":\"watchdog\"")));
    }

    #[test]
    fn concurrent_emit_during_retarget_never_tears_lines() {
        let _g = TEST_GUARD.lock().unwrap();
        let path_a = tmp_path("stress-a");
        let path_b = tmp_path("stress-b");
        set_trace_file(Some(&path_a));
        // 8 writer threads hammer the sink while the main thread retargets
        // it back and forth. The epoch guard must keep every written line
        // whole and in-sequence; events that raced a swap simply vanish.
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..8usize)
                .map(|t| {
                    s.spawn(move || {
                        for i in 0..200usize {
                            Event::new("scalar")
                                .name("stress")
                                .task(t)
                                .step(i)
                                .value(i as f64 * 0.25)
                                .emit();
                        }
                    })
                })
                .collect();
            for swap in 0..20 {
                let p = if swap % 2 == 0 { &path_b } else { &path_a };
                set_trace_file(Some(p.as_path()));
                std::thread::sleep(std::time::Duration::from_micros(200));
            }
            for h in handles {
                h.join().expect("stress writer panicked");
            }
        });
        // The final swap may have truncated away everything the writers
        // managed to land; prove the final sink still accepts whole events.
        Event::new("scalar")
            .name("stress")
            .task(99)
            .value(1.0)
            .emit();
        flush();
        // `path_a` was truncated by later swaps; both files must now hold
        // only complete JSONL lines with strictly increasing seq.
        let mut total_lines = 0usize;
        for path in [&path_a, &path_b] {
            let text = std::fs::read_to_string(path).expect("stress file readable");
            let mut last_seq: Option<u64> = None;
            for line in text.lines() {
                assert!(
                    line.starts_with("{\"seq\":") && line.ends_with('}'),
                    "torn line in {path:?}: {line:?}"
                );
                let seq: u64 = line["{\"seq\":".len()..]
                    .split(',')
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| panic!("unparseable seq in {line:?}"));
                if let Some(prev) = last_seq {
                    assert!(seq > prev, "seq regressed {prev} -> {seq} in {path:?}");
                }
                last_seq = Some(seq);
                assert!(line.contains("\"ev\":\"scalar\""), "foreign line {line:?}");
                total_lines += 1;
            }
        }
        assert!(total_lines > 0, "stress run wrote nothing at all");
        set_trace_file(None);
        std::fs::remove_file(&path_a).ok();
        std::fs::remove_file(&path_b).ok();
    }

    #[test]
    fn nested_spans_share_a_trace_and_record_parentage() {
        let _g = TEST_GUARD.lock().unwrap();
        let path = tmp_path("trace-nesting");
        set_trace_file(Some(&path));
        let outer_ctx;
        {
            let outer = span("online_round").task(1);
            outer_ctx = outer.context().expect("sampled root span has a context");
            assert_eq!(ctx::active(), Some(outer_ctx));
            {
                let _inner = span("publish");
            }
        }
        let lines = read_lines(&path);
        set_trace_file(None);
        std::fs::remove_file(&path).ok();

        assert_eq!(lines.len(), 2, "two phase events: {lines:?}");
        let trace_hex = format!("\"trace\":\"{:032x}\"", outer_ctx.trace_id);
        let span_hex = format!("{:016x}", outer_ctx.span_id);
        // Inner span drops (and is written) first; it carries the outer
        // span as parent and the same trace id.
        assert!(lines[0].contains("\"name\":\"publish\""), "{}", lines[0]);
        assert!(lines[0].contains(&trace_hex), "{}", lines[0]);
        assert!(
            lines[0].contains(&format!("\"parent\":\"{span_hex}\"")),
            "{}",
            lines[0]
        );
        assert!(lines[0].contains("\"start_ms\":"), "{}", lines[0]);
        assert!(
            lines[1].contains("\"name\":\"online_round\""),
            "{}",
            lines[1]
        );
        assert!(lines[1].contains(&trace_hex), "{}", lines[1]);
        assert!(
            lines[1].contains(&format!("\"span\":\"{span_hex}\"")),
            "{}",
            lines[1]
        );
        assert!(
            !lines[1].contains("\"parent\":"),
            "root has no parent: {}",
            lines[1]
        );
        assert!(lines[1].contains("\"wall_ms\":"), "{}", lines[1]);
        // The stack is clean again.
        assert_eq!(ctx::active(), None);
    }

    #[test]
    fn remote_parent_adoption_links_spans_across_the_wire() {
        let _g = TEST_GUARD.lock().unwrap();
        let path = tmp_path("trace-remote");
        set_trace_file(Some(&path));
        let remote = ctx::TraceContext {
            trace_id: 0xabc,
            span_id: 0xdef,
        };
        let wire = remote.encode();
        {
            let decoded = ctx::TraceContext::parse(&wire).expect("round-trip");
            let _g2 = ctx::attach(decoded);
            let _s = span("reload");
        }
        let lines = read_lines(&path);
        set_trace_file(None);
        std::fs::remove_file(&path).ok();
        assert_eq!(lines.len(), 1);
        assert!(
            lines[0].contains(&format!("\"trace\":\"{:032x}\"", remote.trace_id)),
            "{}",
            lines[0]
        );
        assert!(
            lines[0].contains(&format!("\"parent\":\"{:016x}\"", remote.span_id)),
            "{}",
            lines[0]
        );
    }

    #[test]
    fn disabled_spans_have_no_context_and_touch_no_stack() {
        let _g = TEST_GUARD.lock().unwrap();
        set_trace_file(None);
        let s = span("online_round");
        assert!(s.context().is_none());
        assert_eq!(ctx::active(), None);
        drop(s);
        assert_eq!(ctx::active(), None);
    }

    #[test]
    fn finite_values_pass_the_watchdog() {
        let _g = TEST_GUARD.lock().unwrap();
        let path = tmp_path("watchdog-ok");
        set_trace_file(Some(&path));
        check_finite(
            "grad_norm",
            1.25,
            WatchdogCtx {
                phase: "warmup",
                task: 0,
                epoch: 0,
                step: 0,
            },
        );
        let lines = read_lines(&path);
        set_trace_file(None);
        std::fs::remove_file(&path).ok();
        assert!(lines.is_empty(), "no event for a healthy value");
    }
}
