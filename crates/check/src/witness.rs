//! Runtime lock-order witness (DESIGN.md §14).
//!
//! The static [`crate::lockorder`] graph is an over-approximation built
//! from tokens; this module records what *actually* happens when the test
//! suites run, through the [`cdcl_obs::lockhook`] hook that the
//! instrumented lock wrappers (pool, serve registry, batch stats) call
//! with their canonical labels. The cross-validation contract is
//! one-directional:
//!
//! > every (held → acquired) edge observed at runtime must exist in the
//! > static graph.
//!
//! A runtime edge the static pass cannot see means the analyzer lost
//! track of a guard scope or a call path — exactly the regression this
//! witness exists to catch. (The converse is fine: the static graph may
//! contain edges no test exercises.)
//!
//! Debug/test builds only in practice: nothing installs the hook outside
//! tests, so production runs pay one atomic load per acquisition.

use cdcl_obs::lockhook::{self, LockEvent};
use std::cell::RefCell;
use std::collections::BTreeSet;
use std::sync::{Mutex, MutexGuard};

/// Observed (held, acquired) label pairs, process-global.
static EDGES: Mutex<BTreeSet<(String, String)>> = Mutex::new(BTreeSet::new());
/// Every label ever seen, so tests can assert the workload actually
/// exercised the locks it meant to.
static SEEN: Mutex<BTreeSet<String>> = Mutex::new(BTreeSet::new());

thread_local! {
    /// Per-thread stack of currently held lock labels.
    static HELD: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
}

fn lock_set<T>(m: &'static Mutex<T>) -> MutexGuard<'static, T> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// The hook: on acquire, record an edge from every label this thread
/// already holds; on release, pop the newest matching label.
fn record(ev: LockEvent, name: &'static str) {
    HELD.with(|h| {
        let mut held = h.borrow_mut();
        match ev {
            LockEvent::Acquired => {
                {
                    let mut edges = lock_set(&EDGES);
                    for &prior in held.iter() {
                        edges.insert((prior.to_string(), name.to_string()));
                    }
                }
                lock_set(&SEEN).insert(name.to_string());
                held.push(name);
            }
            LockEvent::Released => {
                if let Some(pos) = held.iter().rposition(|&n| n == name) {
                    held.remove(pos);
                }
            }
        }
    });
}

/// Installs the recorder as the process-global lock hook. Idempotent.
pub fn install() {
    let _ = lockhook::install(record);
}

/// Clears recorded edges and labels (start of a witnessed workload).
pub fn reset() {
    lock_set(&EDGES).clear();
    lock_set(&SEEN).clear();
}

/// The observed edge set.
pub fn edges() -> Vec<(String, String)> {
    lock_set(&EDGES).iter().cloned().collect()
}

/// Every lock label observed so far.
pub fn seen_locks() -> Vec<String> {
    lock_set(&SEEN).iter().cloned().collect()
}

/// Validates the observed edges against a static report: returns the
/// runtime edges missing from the static graph (empty = validated).
pub fn missing_from_static(report: &crate::lockorder::LockReport) -> Vec<(String, String)> {
    edges()
        .into_iter()
        .filter(|(from, to)| !report.has_edge(from, to))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    // The hook is process-global, so this test serialises against any
    // other witness user in the same binary via the EDGES mutex contents.
    #[test]
    fn records_nesting_edges_and_validates() {
        install();
        reset();
        record(LockEvent::Acquired, "outer");
        record(LockEvent::Acquired, "inner");
        record(LockEvent::Released, "inner");
        record(LockEvent::Released, "outer");
        // Non-nested acquisition: no edge.
        record(LockEvent::Acquired, "solo");
        record(LockEvent::Released, "solo");
        let e = edges();
        assert!(
            e.contains(&("outer".to_string(), "inner".to_string())),
            "{e:?}"
        );
        assert_eq!(e.len(), 1, "{e:?}");
        assert!(seen_locks().contains(&"solo".to_string()));

        let report = crate::lockorder::analyze_sources(&[(
            "crates/x/src/lib.rs".to_string(),
            "fn f(s: &S) { let a = s.outer.lock(); let b = s.inner.lock(); }".to_string(),
        )]);
        assert!(missing_from_static(&report).is_empty());
        reset();
        record(LockEvent::Acquired, "inner");
        record(LockEvent::Acquired, "outer");
        record(LockEvent::Released, "outer");
        record(LockEvent::Released, "inner");
        assert_eq!(
            missing_from_static(&report),
            [("inner".to_string(), "outer".to_string())]
        );
        reset();
    }
}
