// Planted violation for the lock-order pass: two functions acquire the
// same pair of mutexes in opposite orders, producing the cycle a -> b -> a.
// This file is never compiled; cdcl-analyze --self-test feeds it to the
// analyzer and asserts the cycle is reported.
use std::sync::Mutex;

pub struct S {
    pub a: Mutex<u32>,
    pub b: Mutex<u32>,
}

pub fn ab(s: &S) {
    let ga = s.a.lock();
    let gb = s.b.lock();
    let _ = (ga, gb);
}

pub fn ba(s: &S) {
    let gb = s.b.lock();
    let ga = s.a.lock();
    let _ = (ga, gb);
}
