//! MLS (Simon et al., CVPR 2022): *supervised* cross-domain continual
//! learning. The published method meta-learns scale-and-shift parameters to
//! generalize across labelled domains; its essential continual behaviour in
//! this protocol is (a) supervised training on the labelled stream, (b)
//! replay with a feature-alignment regularizer that keeps the current
//! feature distribution close to the replayed (past-domain) one, and (c) no
//! use of unlabelled target data whatsoever — which is why, like DER/HAL,
//! it cannot close the domain gap in the paper's tables.

use cdcl_core::protocol::ContinualLearner;
use cdcl_core::CdclModel;
use cdcl_data::{Batcher, Sample, TaskData};
use cdcl_nn::Module;
use cdcl_optim::{AdamW, LrSchedule, Optimizer, WarmupCosine};
use cdcl_tensor::Tensor;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::shared::{eval_cil_model, eval_til_model, stack_batch, stack_images};
use crate::BaselineConfig;

struct ReplayRecord {
    image: Tensor,
    global_label: usize,
}

/// The MLS learner.
pub struct MlsTrainer {
    config: BaselineConfig,
    model: CdclModel,
    optimizer: AdamW,
    memory: Vec<ReplayRecord>,
    seen: usize,
    rng: SmallRng,
}

impl MlsTrainer {
    /// Builds an MLS learner.
    pub fn new(config: BaselineConfig) -> Self {
        let config = config.normalized();
        let mut rng = SmallRng::seed_from_u64(config.seed);
        let model = CdclModel::new(&mut rng, config.backbone);
        let optimizer = AdamW::new(model.params());
        Self {
            config,
            model,
            optimizer,
            memory: Vec::new(),
            seen: 0,
            rng,
        }
    }

    fn train_step(&mut self, task: &TaskData, idx: &[usize], lr: f32) {
        let t = task.task_id;
        let (imgs, labels) = stack_batch(&task.source_train, idx);
        let globals: Vec<usize> = labels
            .iter()
            .map(|&l| self.model.class_offset(t) + l)
            .collect();
        let mut g = cdcl_autograd::Graph::new();
        let x = g.input(imgs);
        let z = self.model.features_self(&mut g, x, t);
        let til = self.model.til_logits(&mut g, z, t);
        let cil = self.model.cil_logits(&mut g, z);
        let lp_til = g.log_softmax_last(til);
        let lp_cil = g.log_softmax_last(cil);
        let l_til = g.nll_loss(lp_til, &labels);
        let l_cil = g.nll_loss(lp_cil, &globals);
        let mut loss = g.add(l_til, l_cil);

        if !self.memory.is_empty() && self.config.replay_batch > 0 {
            let picks: Vec<usize> = (0..self.config.replay_batch.min(self.memory.len()))
                .map(|_| self.rng.random_range(0..self.memory.len()))
                .collect();
            let imgs_r: Vec<&Tensor> = picks.iter().map(|&i| &self.memory[i].image).collect();
            let labels_r: Vec<usize> = picks.iter().map(|&i| self.memory[i].global_label).collect();
            let xr = g.input(stack_images(&imgs_r));
            let zr = self.model.features_self(&mut g, xr, t);
            // Replayed-label CE.
            let cil_r = self.model.cil_logits(&mut g, zr);
            let lp_r = g.log_softmax_last(cil_r);
            let l_ce = g.nll_loss(lp_r, &labels_r);
            let l_ce = g.scale(l_ce, self.config.beta);
            loss = g.add(loss, l_ce);
            // Cross-domain feature alignment: first moments of the current
            // and replayed feature batches should match.
            let zt = g.transpose_last2(z); // can't mean over rows directly;
            let zrt = g.transpose_last2(zr); // mean over last axis = per-dim mean
            let mu = g.sum_last(zt);
            let mu = g.scale(mu, 1.0 / idx.len() as f32);
            let mu_r = g.sum_last(zrt);
            let mu_r = g.scale(mu_r, 1.0 / picks.len() as f32);
            let l_align = g.mse(mu, mu_r);
            let l_align = g.scale(l_align, self.config.lambda);
            loss = g.add(loss, l_align);
        }

        self.optimizer.zero_grad();
        g.backward(loss);
        self.optimizer.step(lr);
    }
}

impl ContinualLearner for MlsTrainer {
    fn name(&self) -> String {
        "MLS".into()
    }

    fn learn_task(&mut self, task: &TaskData) {
        self.model.add_task(&mut self.rng, task.num_classes());
        self.optimizer.rebind(self.model.params());
        let schedule = WarmupCosine {
            warmup_lr: self.config.peak_lr,
            peak_lr: self.config.peak_lr,
            min_lr: self.config.min_lr,
            warmup_epochs: 0,
            total_epochs: self.config.epochs,
        };
        let mut batcher = Batcher::new(
            task.source_train.len(),
            self.config.batch_size,
            self.config.seed ^ ((task.task_id as u64) << 28),
        );
        for epoch in 0..self.config.epochs {
            let lr = schedule.lr(epoch);
            for batch in batcher.epoch() {
                self.train_step(task, &batch, lr);
            }
        }
        // Reservoir memory update.
        let t = task.task_id;
        for s in &task.source_train {
            let record = ReplayRecord {
                image: s.image.clone(),
                global_label: self.model.class_offset(t) + s.label,
            };
            if self.memory.len() < self.config.memory_size {
                self.memory.push(record);
            } else if self.config.memory_size > 0 {
                let j = self.rng.random_range(0..=self.seen);
                if j < self.config.memory_size {
                    self.memory[j] = record;
                }
            }
            self.seen += 1;
        }
    }

    fn eval_til(&self, task_id: usize, test: &[Sample]) -> f64 {
        eval_til_model(&self.model, task_id, test)
    }

    fn eval_cil(&self, task_id: usize, test: &[Sample]) -> f64 {
        eval_cil_model(&self.model, task_id, test)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructs_and_names() {
        let t = MlsTrainer::new(BaselineConfig::smoke());
        assert_eq!(t.name(), "MLS");
    }
}
