//! The `cdcl_traind_*` observability surface (DESIGN.md §15).
//!
//! One daemon serves one model, so plain process-wide statics suffice —
//! there are no per-model families here. The drift gauges expose the
//! detector's live internals (last window score, CUSUM statistic,
//! baseline), which is what an operator watches to tune the
//! `CDCL_TRAIND_*` thresholds.

use cdcl_obs::{Counter, Gauge, Histogram};

pub(crate) static SAMPLES_TOTAL: Counter = Counter::new(
    "cdcl_traind_samples_total",
    "Ingested samples (source and target) accepted into the staging ring",
);
pub(crate) static WINDOWS_TOTAL: Counter = Counter::new(
    "cdcl_traind_windows_total",
    "Committed ingest windows (each one drift-scored batch)",
);
pub(crate) static DROPPED_WINDOWS_TOTAL: Counter = Counter::new(
    "cdcl_traind_dropped_windows_total",
    "Staged windows evicted by the --max-stage ring before a round consumed them",
);
pub(crate) static DRIFT_SCORE: Gauge = Gauge::new(
    "cdcl_traind_drift_score",
    "Nearest-centroid distance of the last committed window (DriftDetector input)",
);
pub(crate) static DRIFT_STATISTIC: Gauge = Gauge::new(
    "cdcl_traind_drift_statistic",
    "Current CUSUM statistic S of the drift detector",
);
pub(crate) static DRIFT_BASELINE: Gauge = Gauge::new(
    "cdcl_traind_drift_baseline",
    "Current EWMA/calibration baseline of the drift detector",
);
pub(crate) static DETECTIONS_TOTAL: Counter = Counter::new(
    "cdcl_traind_detections_total",
    "Sustained-drift detections (new-task declarations), one per excursion latch",
);
pub(crate) static ROUNDS_TOTAL: Counter = Counter::new(
    "cdcl_traind_rounds_total",
    "Online training rounds run through CdclTrainer::learn_task",
);
pub(crate) static ROUND_LATENCY_US: Histogram = Histogram::new(
    "cdcl_traind_round_latency_us",
    "Wall time of one online training round (microseconds)",
);
pub(crate) static PUBLISH_TOTAL: Counter = Counter::new(
    "cdcl_traind_publish_total",
    "Checkpoints atomically published to --publish-dir after a round",
);
pub(crate) static PUBLISH_FAILED_TOTAL: Counter = Counter::new(
    "cdcl_traind_publish_failed_total",
    "Publish attempts that failed (snapshot write error, or any --notify \
     RELOAD that was refused, unreachable, or did not verify)",
);
pub(crate) static PUBLISH_LATENCY_US: Histogram = Histogram::new(
    "cdcl_traind_publish_latency_us",
    "Snapshot write through last verified RELOAD ack (microseconds)",
);
pub(crate) static TASKS: Gauge = Gauge::new(
    "cdcl_traind_tasks",
    "Tasks the online trainer currently holds (grows by one per detection round)",
);
pub(crate) static ACCEPT_ERRORS_TOTAL: Counter = Counter::new(
    "cdcl_traind_accept_errors_total",
    "Failed accept()/clone() calls on the TCP listener that were logged \
     and survived instead of killing the daemon",
);
