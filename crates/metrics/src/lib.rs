//! The continual-learning evaluation protocol (paper §V-C).
//!
//! After finishing each task `t_i`, the learner is evaluated on the *target
//! domain* test set of every task seen so far, filling row `i` of the test
//! classification matrix `R ∈ R^{T×T}` (`R[i][j]` = accuracy on task `j`
//! after training through task `i`). From `R` the two headline metrics are:
//!
//! * **Average accuracy** (Eq. 33): `ACC = (1/T) Σ_j R[T-1][j]` — higher is
//!   better.
//! * **Forgetting** (Eq. 34): `FGT = (1/(T-1)) Σ_j max_i (R[i][j] −
//!   R[T-1][j])` over `j < T-1` — lower is better.
//!
//! [`RMatrix`] accumulates the protocol; [`AccSeries`] derives the per-task
//! accuracy evolution plotted in the paper's Figure 2.

mod rmatrix;
mod table;

pub use rmatrix::{AccSeries, RMatrix};
pub use table::{format_table, TableRow};
