//! Pre-execution graph verification: shape inference over the whole tape
//! and a gradient-flow audit (frozen parameters, reachability, dead nodes).
//!
//! The verifier re-derives every node's shape from its inputs' shapes using
//! the same inference rules the tensor kernels enforce at dispatch time
//! (`cdcl_tensor::check`), so a static report and a runtime panic read
//! identically. On top of that it audits the structural invariants CDCL
//! depends on (PAPER §IV-A): old-task `K_i`/`b_i` must be frozen and must
//! not accumulate gradient, while every trainable parameter registered on
//! the tape must be reachable from the loss.
//!
//! Debug builds run [`Graph::check_shapes`] automatically from
//! [`Graph::backward`]; the trainer additionally calls [`Graph::verify`]
//! once per task on the first training graph (telemetry span `graph_check`).

use std::fmt;

use cdcl_tensor::check as shape_check;
use cdcl_tensor::{num_elements, Shape, ShapeError};

use crate::graph::{Graph, Node, Op};
use crate::{Param, Var};

/// A structural violation found by the graph verifier, with op provenance
/// (op kind, var ids, shapes / parameter names).
#[derive(Debug, Clone)]
pub enum CheckError {
    /// A node's stored forward value disagrees with the shape inferred from
    /// its inputs.
    ShapeMismatch {
        /// Op kind of the offending node.
        op: &'static str,
        /// Tape index of the offending node.
        var: usize,
        /// Tape indices of the node's inputs.
        inputs: Vec<usize>,
        /// Shape inferred from the inputs.
        expected: Shape,
        /// Shape the node actually holds.
        actual: Shape,
    },
    /// A node's inputs violate the op's shape rule (the same rule the
    /// kernel would enforce at dispatch time).
    InvalidOp {
        /// Op kind of the offending node.
        op: &'static str,
        /// Tape index of the offending node.
        var: usize,
        /// Tape indices of the node's inputs.
        inputs: Vec<usize>,
        /// The underlying shape-rule violation.
        source: ShapeError,
    },
    /// A node references an input that does not precede it on the tape
    /// (e.g. a [`Var`] from a different graph).
    ForwardReference {
        /// Op kind of the offending node.
        op: &'static str,
        /// Tape index of the offending node.
        var: usize,
        /// The out-of-range input index.
        input: usize,
    },
    /// A parameter that the caller requires frozen is marked trainable.
    FrozenParamTrainable {
        /// Tape index of the parameter's leaf, when it is on the tape.
        var: Option<usize>,
        /// Parameter name.
        name: String,
    },
    /// A parameter that the caller requires frozen holds a non-zero
    /// accumulated gradient.
    FrozenParamReceivesGrad {
        /// Tape index of the parameter's leaf, when it is on the tape.
        var: Option<usize>,
        /// Parameter name.
        name: String,
        /// Squared norm of the offending gradient.
        grad_norm_sq: f64,
    },
    /// A trainable parameter registered on the tape is not reachable from
    /// the loss: the optimizer would silently never update it.
    TrainableParamUnreachable {
        /// Tape index of (one of) the parameter's leaf nodes.
        var: usize,
        /// Parameter name.
        name: String,
    },
}

fn fmt_var(var: Option<usize>) -> String {
    match var {
        Some(v) => format!("var %{v}"),
        None => "not on the tape".to_string(),
    }
}

impl fmt::Display for CheckError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::ShapeMismatch {
                op,
                var,
                inputs,
                expected,
                actual,
            } => write!(
                f,
                "graph check: var %{var} (op {op}, inputs {inputs:?}): \
                 inferred shape {expected:?} but node holds {actual:?}"
            ),
            Self::InvalidOp {
                op,
                var,
                inputs,
                source,
            } => write!(
                f,
                "graph check: var %{var} (op {op}, inputs {inputs:?}): {source}"
            ),
            Self::ForwardReference { op, var, input } => write!(
                f,
                "graph check: var %{var} (op {op}): input %{input} does not precede the node"
            ),
            Self::FrozenParamTrainable { var, name } => write!(
                f,
                "graph check: frozen param '{name}' ({}) is marked trainable",
                fmt_var(*var)
            ),
            Self::FrozenParamReceivesGrad {
                var,
                name,
                grad_norm_sq,
            } => write!(
                f,
                "graph check: frozen param '{name}' ({}) accumulated gradient \
                 (|g|^2 = {grad_norm_sq})",
                fmt_var(*var)
            ),
            Self::TrainableParamUnreachable { var, name } => write!(
                f,
                "graph check: trainable param '{name}' (var %{var}) is not reachable from the loss"
            ),
        }
    }
}

impl std::error::Error for CheckError {}

/// Summary of a successful [`Graph::verify`] pass.
#[derive(Debug, Clone, Default)]
pub struct GraphReport {
    /// Total nodes on the tape.
    pub nodes: usize,
    /// Leaf nodes bound to parameters.
    pub param_leaves: usize,
    /// Parameters from the caller's frozen list verified zero-grad.
    pub frozen_verified: usize,
    /// Tape indices not reachable from the loss (dead computation).
    pub dead_nodes: Vec<usize>,
}

/// Op kind plus input var ids — the provenance attached to every finding.
fn op_meta(op: &Op) -> (&'static str, Vec<usize>) {
    match op {
        Op::Input => ("input", vec![]),
        Op::Leaf(_) => ("leaf", vec![]),
        Op::Add(a, b) => ("add", vec![a.0, b.0]),
        Op::Sub(a, b) => ("sub", vec![a.0, b.0]),
        Op::Mul(a, b) => ("mul", vec![a.0, b.0]),
        Op::Scale(a, _) => ("scale", vec![a.0]),
        Op::AddScalar(a) => ("add_scalar", vec![a.0]),
        Op::Matmul(a, b) => ("matmul", vec![a.0, b.0]),
        Op::MatmulNT(a, b) => ("matmul_nt", vec![a.0, b.0]),
        Op::TransposeLast2(a) => ("transpose_last2", vec![a.0]),
        Op::Reshape(a) => ("reshape", vec![a.0]),
        Op::Concat0(parts) => ("concat0", parts.iter().map(|v| v.0).collect()),
        Op::Relu(a) => ("relu", vec![a.0]),
        Op::Gelu(a) => ("gelu", vec![a.0]),
        Op::SoftmaxLast(a) => ("softmax_last", vec![a.0]),
        Op::LogSoftmaxLast(a) => ("log_softmax_last", vec![a.0]),
        Op::SumLast(a) => ("sum_last", vec![a.0]),
        Op::MeanAll(a) => ("mean_all", vec![a.0]),
        Op::SumAll(a) => ("sum_all", vec![a.0]),
        Op::LayerNorm { x, gamma, beta, .. } => ("layer_norm", vec![x.0, gamma.0, beta.0]),
        Op::Conv2d { w, bias, info } => {
            let mut ins = vec![info.x.0, w.0];
            if let Some(b) = bias {
                ins.push(b.0);
            }
            ("conv2d", ins)
        }
        Op::MaxPool2d { x, .. } => ("maxpool2d", vec![x.0]),
        Op::Nll { logp, .. } => ("nll_loss", vec![logp.0]),
        Op::CeSoft { logp, .. } => ("ce_soft", vec![logp.0]),
        Op::KlDiv { logq, .. } => ("kl_div", vec![logq.0]),
        Op::Mse(a, b) => ("mse", vec![a.0, b.0]),
    }
}

impl Graph {
    /// Re-infers the shape of node `i` from its inputs' stored shapes.
    /// `Ok(None)` means the op has no inference rule beyond its own value
    /// (inputs, leaves).
    fn infer_node(&self, i: usize, node: &Node) -> Result<Option<Shape>, ShapeError> {
        let s = |v: &Var| self.nodes[v.0].value.shape();
        match &node.op {
            Op::Input => Ok(None),
            Op::Leaf(p) => Ok(Some(p.shape())),
            Op::Add(a, b) | Op::Sub(a, b) | Op::Mul(a, b) => {
                shape_check::try_broadcast_shapes(s(a), s(b)).map(Some)
            }
            Op::Scale(a, _) | Op::AddScalar(a) | Op::Relu(a) | Op::Gelu(a) => {
                Ok(Some(s(a).to_vec()))
            }
            Op::Matmul(a, b) => shape_check::infer_matmul(s(a), s(b)).map(Some),
            Op::MatmulNT(a, b) => shape_check::infer_matmul_nt(s(a), s(b)).map(Some),
            Op::TransposeLast2(a) => shape_check::infer_transpose_last2(s(a)).map(Some),
            Op::Reshape(a) => {
                // The target shape is only recorded in the node itself, so
                // inference validates the element-count invariant.
                shape_check::infer_reshape(s(a), node.value.shape()).map(Some)
            }
            Op::Concat0(parts) => {
                let shapes: Vec<&[usize]> = parts.iter().map(s).collect();
                shape_check::infer_concat0(&shapes).map(Some)
            }
            Op::SoftmaxLast(a) => shape_check::infer_last_axis_map("softmax_last", s(a)).map(Some),
            Op::LogSoftmaxLast(a) => {
                shape_check::infer_last_axis_map("log_softmax_last", s(a)).map(Some)
            }
            Op::SumLast(a) => shape_check::infer_sum_last(s(a)).map(Some),
            Op::MeanAll(_) | Op::SumAll(_) => Ok(Some(vec![])),
            Op::LayerNorm {
                x,
                gamma,
                beta,
                xhat,
                ..
            } => {
                let xs = s(x);
                if xs.is_empty() {
                    return Err(ShapeError::new("layer_norm", "needs rank >= 1"));
                }
                let d = xs[xs.len() - 1];
                for (which, v) in [("gamma", gamma), ("beta", beta)] {
                    if s(v) != [d] {
                        return Err(ShapeError::new(
                            "layer_norm",
                            format!("{which} must be [{d}], got {:?}", s(v)),
                        ));
                    }
                }
                if xhat.shape() != xs {
                    return Err(ShapeError::new(
                        "layer_norm",
                        format!("cached xhat {:?} vs input {xs:?}", xhat.shape()),
                    ));
                }
                Ok(Some(xs.to_vec()))
            }
            Op::Conv2d { w, bias, info } => {
                shape_check::infer_conv2d(s(&info.x), s(w), bias.as_ref().map(&s), &info.inner.spec)
                    .map(Some)
            }
            Op::MaxPool2d { x, argmax, spec } => {
                let out = shape_check::infer_maxpool2d(s(x), spec)?;
                if argmax.len() != num_elements(&out) {
                    return Err(ShapeError::new(
                        "maxpool2d",
                        format!(
                            "argmax holds {} indices for inferred output {out:?}",
                            argmax.len()
                        ),
                    ));
                }
                let _ = i;
                Ok(Some(out))
            }
            Op::Nll { logp, targets } => {
                let ls = s(logp);
                if ls.len() != 2 {
                    return Err(ShapeError::new(
                        "nll_loss",
                        format!("expects [batch, classes], got {ls:?}"),
                    ));
                }
                let (b, u) = (ls[0], ls[1]);
                if targets.len() != b {
                    return Err(ShapeError::new(
                        "nll_loss",
                        format!("target count {} vs batch {b}", targets.len()),
                    ));
                }
                if let Some(t) = targets.iter().find(|&&t| t >= u) {
                    return Err(ShapeError::new(
                        "nll_loss",
                        format!("target {t} out of range ({u} classes)"),
                    ));
                }
                Ok(Some(vec![]))
            }
            Op::CeSoft { logp, probs } => {
                if probs.shape() != s(logp) {
                    return Err(ShapeError::new(
                        "ce_soft",
                        format!("probs {:?} vs logp {:?}", probs.shape(), s(logp)),
                    ));
                }
                Ok(Some(vec![]))
            }
            Op::KlDiv { logq, p } => {
                if p.shape() != s(logq) {
                    return Err(ShapeError::new(
                        "kl_div",
                        format!("teacher {:?} vs logq {:?}", p.shape(), s(logq)),
                    ));
                }
                Ok(Some(vec![]))
            }
            Op::Mse(a, b) => {
                if s(a) != s(b) {
                    return Err(ShapeError::new(
                        "mse",
                        format!("lhs {:?} vs rhs {:?}", s(a), s(b)),
                    ));
                }
                Ok(Some(vec![]))
            }
        }
    }

    /// Full shape inference over the tape: every node's stored value must
    /// match the shape inferred from its inputs, and every input must
    /// precede its consumer. Read-only; the tape is not modified.
    pub fn check_shapes(&self) -> Result<(), CheckError> {
        for (i, node) in self.nodes.iter().enumerate() {
            let (op, inputs) = op_meta(&node.op);
            if let Some(&bad) = inputs.iter().find(|&&v| v >= i) {
                return Err(CheckError::ForwardReference {
                    op,
                    var: i,
                    input: bad,
                });
            }
            match self.infer_node(i, node) {
                Err(source) => {
                    return Err(CheckError::InvalidOp {
                        op,
                        var: i,
                        inputs,
                        source,
                    })
                }
                Ok(Some(expected)) if expected != node.value.shape() => {
                    return Err(CheckError::ShapeMismatch {
                        op,
                        var: i,
                        inputs,
                        expected,
                        actual: node.value.shape().to_vec(),
                    });
                }
                Ok(_) => {}
            }
        }
        Ok(())
    }

    /// Gradient-flow audit relative to scalar `loss`:
    ///
    /// * every parameter in `must_be_frozen` must be non-trainable and hold
    ///   a zero accumulated gradient (meaningful right after a
    ///   `zero_grad(); backward(loss)` sequence);
    /// * every *trainable* parameter registered on the tape must be
    ///   reachable from `loss` (otherwise the optimizer would silently
    ///   never update it);
    /// * nodes unreachable from `loss` are reported as dead in the
    ///   [`GraphReport`].
    ///
    /// Read-only: parameters and the tape are not modified.
    pub fn check_grad_flow(
        &self,
        loss: Var,
        must_be_frozen: &[Param],
    ) -> Result<GraphReport, CheckError> {
        // Reverse reachability from the loss over op inputs.
        let mut reachable = vec![false; self.nodes.len()];
        let mut stack = vec![loss.0];
        while let Some(i) = stack.pop() {
            if std::mem::replace(&mut reachable[i], true) {
                continue;
            }
            stack.extend(op_meta(&self.nodes[i].op).1);
        }

        // Locate each frozen param's leaf (if present) for provenance.
        let leaf_of = |p: &Param| -> Option<usize> {
            self.nodes.iter().position(|n| match &n.op {
                Op::Leaf(q) => q.same(p),
                _ => false,
            })
        };
        for p in must_be_frozen {
            if p.trainable() {
                return Err(CheckError::FrozenParamTrainable {
                    var: leaf_of(p),
                    name: p.name(),
                });
            }
            let g2 = p.grad_norm_sq();
            if g2 != 0.0 {
                return Err(CheckError::FrozenParamReceivesGrad {
                    var: leaf_of(p),
                    name: p.name(),
                    grad_norm_sq: g2,
                });
            }
        }

        // A trainable param is reachable when *any* of its leaves is; the
        // same cell may be registered several times (e.g. shared projections
        // across the source / target / mixed streams).
        let mut param_leaves = 0usize;
        let mut seen: Vec<(usize, bool, usize, &Param)> = Vec::new();
        for (i, node) in self.nodes.iter().enumerate() {
            if let Op::Leaf(p) = &node.op {
                param_leaves += 1;
                match seen.iter_mut().find(|(key, ..)| *key == p.key()) {
                    Some((_, any, ..)) => *any |= reachable[i],
                    None => seen.push((p.key(), reachable[i], i, p)),
                }
            }
        }
        for (_, any_reachable, var, p) in &seen {
            if p.trainable() && !any_reachable {
                return Err(CheckError::TrainableParamUnreachable {
                    var: *var,
                    name: p.name(),
                });
            }
        }

        let frozen_verified = must_be_frozen.len();
        let dead_nodes: Vec<usize> = (0..self.nodes.len()).filter(|&i| !reachable[i]).collect();
        Ok(GraphReport {
            nodes: self.nodes.len(),
            param_leaves,
            frozen_verified,
            dead_nodes,
        })
    }

    /// Both verifier layers in sequence: [`Graph::check_shapes`] then
    /// [`Graph::check_grad_flow`]. Read-only and deterministic, so running
    /// it cannot perturb training (the bitwise-determinism contract of
    /// DESIGN.md §7 is preserved with the verifier compiled in).
    pub fn verify(&self, loss: Var, must_be_frozen: &[Param]) -> Result<GraphReport, CheckError> {
        self.check_shapes()?;
        self.check_grad_flow(loss, must_be_frozen)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdcl_tensor::{Conv2dSpec, Pool2dSpec, Tensor};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(7)
    }

    /// Exercises one op builder and asserts the verifier agrees with the
    /// executed shape.
    fn assert_graph_consistent(g: &Graph) {
        if let Err(e) = g.check_shapes() {
            // lint-allow justification not needed: #[cfg(test)] module.
            panic!("verifier rejected a valid graph: {e}");
        }
    }

    #[test]
    fn every_op_variant_passes_shape_inference() {
        let mut rng = rng();
        let mut g = Graph::new();
        let p = Param::new("w", Tensor::randn(&mut rng, &[4, 4], 1.0));
        let x = g.input(Tensor::randn(&mut rng, &[2, 3, 4], 1.0));
        let w = g.param(&p);
        let y = g.matmul(x, w); // [2,3,4] x [4,4]
        let k = g.input(Tensor::randn(&mut rng, &[2, 5, 4], 1.0));
        let scores = g.matmul_nt(y, k); // [2,3,5]
        let scores = g.scale(scores, 0.5);
        let scores = g.add_scalar(scores, 0.1);
        let sm = g.softmax_last(scores);
        let t = g.transpose_last2(sm); // [2,5,3]
        let r = g.reshape(t, &[2, 15]);
        let c = g.concat0(&[r, r]); // [4,15]
        let relu = g.relu(c);
        let gelu = g.gelu(relu);
        let gamma = g.input(Tensor::ones(&[15]));
        let beta = g.input(Tensor::zeros(&[15]));
        let ln = g.layer_norm(gelu, gamma, beta, 1e-5);
        let s = g.sum_last(ln); // [4]
        let b = g.input(Tensor::randn(&mut rng, &[4], 1.0));
        let ab = g.add(s, b);
        let sb = g.sub(ab, b);
        let mb = g.mul(sb, b);
        let m = g.mean_all(mb);
        let m2 = g.sum_all(m);
        assert_eq!(g.value(m2).shape(), &[] as &[usize]);
        assert_graph_consistent(&g);
    }

    #[test]
    fn conv_pool_and_loss_ops_pass_shape_inference() {
        let mut rng = rng();
        let mut g = Graph::new();
        let x = g.input(Tensor::randn(&mut rng, &[2, 3, 8, 8], 1.0));
        let w = g.input(Tensor::randn(&mut rng, &[4, 3, 3, 3], 0.5));
        let b = g.input(Tensor::randn(&mut rng, &[4], 0.5));
        let spec = Conv2dSpec {
            kernel: 3,
            stride: 1,
            padding: 1,
        };
        let y = g.conv2d(x, w, Some(b), spec); // [2,4,8,8]
        let p = g.maxpool2d(
            y,
            Pool2dSpec {
                kernel: 2,
                stride: 2,
            },
        ); // [2,4,4,4]
        let flat = g.reshape(p, &[2, 64]);
        let logits = g.log_softmax_last(flat);
        let nll = g.nll_loss(logits, &[3, 5]);
        let probs = g.value(flat).softmax_last();
        let ce = g.ce_soft(logits, probs.clone());
        let kl = g.kl_div(logits, probs);
        let mse = g.mse(nll, ce);
        let total = g.add(mse, kl);
        assert_eq!(g.value(total).len(), 1);
        assert_graph_consistent(&g);
    }

    #[test]
    fn corrupted_node_is_reported_with_op_provenance() {
        let mut rng = rng();
        let mut g = Graph::new();
        let a = g.input(Tensor::randn(&mut rng, &[2, 3], 1.0));
        let b = g.input(Tensor::randn(&mut rng, &[3, 4], 1.0));
        let c = g.matmul(a, b);
        // Forge a wrong forward value: executed [2,4], pretend [2,5].
        g.corrupt_node_for_tests(c, Tensor::zeros(&[2, 5]));
        let err = g.check_shapes().unwrap_err();
        match &err {
            CheckError::ShapeMismatch {
                op,
                var,
                inputs,
                expected,
                actual,
            } => {
                assert_eq!(*op, "matmul");
                assert_eq!(*var, c.0);
                assert_eq!(inputs, &[a.0, b.0]);
                assert_eq!(expected, &[2, 4]);
                assert_eq!(actual, &[2, 5]);
            }
            other => panic!("wrong error kind: {other}"),
        }
        let msg = err.to_string();
        assert!(msg.contains("matmul"), "{msg}");
        assert!(msg.contains(&format!("%{}", c.0)), "{msg}");
    }

    #[test]
    fn invalid_inputs_are_reported_through_the_kernel_rule() {
        let mut rng = rng();
        let mut g = Graph::new();
        let a = g.input(Tensor::randn(&mut rng, &[2, 3], 1.0));
        let b = g.input(Tensor::randn(&mut rng, &[3, 4], 1.0));
        let c = g.matmul(a, b);
        // Corrupt an *input* so the op rule itself fails.
        g.corrupt_node_for_tests(a, Tensor::zeros(&[2, 9]));
        let err = g.check_shapes().unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("inner dims"), "{msg}");
        assert!(msg.contains(&format!("%{}", c.0)), "{msg}");
    }

    #[test]
    fn foreign_var_is_a_forward_reference() {
        let mut rng = rng();
        let mut g = Graph::new();
        let a = g.input(Tensor::randn(&mut rng, &[2, 2], 1.0));
        let _ = a;
        // The eager builders bounds-check their inputs, so a node holding a
        // Var from another (longer) tape can only exist on a hand-built /
        // corrupted tape; forge one directly to exercise the backstop.
        g.nodes.push(Node {
            value: Tensor::zeros(&[2, 2]),
            op: Op::Relu(Var(5)),
        });
        assert!(matches!(
            g.check_shapes(),
            Err(CheckError::ForwardReference {
                var: 1,
                input: 5,
                ..
            })
        ));
    }

    #[test]
    fn frozen_params_verify_after_backward() {
        let mut rng = rng();
        let frozen = Param::new("enc.bank.key0.w", Tensor::randn(&mut rng, &[3, 3], 1.0));
        frozen.set_trainable(false);
        let live = Param::new("enc.bank.key1.w", Tensor::randn(&mut rng, &[3, 3], 1.0));
        let mut g = Graph::new();
        let x = g.input(Tensor::randn(&mut rng, &[2, 3], 1.0));
        let wf = g.param(&frozen);
        let wl = g.param(&live);
        let h = g.matmul(x, wf);
        let y = g.matmul(h, wl);
        let y2 = g.mul(y, y);
        let loss = g.mean_all(y2);
        frozen.zero_grad();
        live.zero_grad();
        g.backward(loss);
        let report = g.verify(loss, std::slice::from_ref(&frozen)).unwrap();
        assert_eq!(report.frozen_verified, 1);
        assert_eq!(report.param_leaves, 2);
        assert!(report.dead_nodes.is_empty());
    }

    #[test]
    fn trainable_old_task_key_is_reported_by_name() {
        let mut rng = rng();
        // An old-task key that was *supposed* to be frozen but is trainable.
        let key0 = Param::new(
            "enc0.attn.bank.key0.w",
            Tensor::randn(&mut rng, &[3, 3], 1.0),
        );
        let mut g = Graph::new();
        let x = g.input(Tensor::randn(&mut rng, &[2, 3], 1.0));
        let w = g.param(&key0);
        let y = g.matmul(x, w);
        let y2 = g.mul(y, y);
        let loss = g.mean_all(y2);
        g.backward(loss);
        let err = g.verify(loss, std::slice::from_ref(&key0)).unwrap_err();
        match &err {
            CheckError::FrozenParamTrainable { var, name } => {
                assert_eq!(name, "enc0.attn.bank.key0.w");
                assert_eq!(*var, Some(w.0));
            }
            other => panic!("wrong error kind: {other}"),
        }
        assert!(err.to_string().contains("enc0.attn.bank.key0.w"));
    }

    #[test]
    fn frozen_param_with_stale_grad_is_reported() {
        let mut rng = rng();
        let key = Param::new("bank.key0.w", Tensor::randn(&mut rng, &[2, 2], 1.0));
        // Gradient accumulated while trainable, then frozen without zeroing:
        // exactly the interference bug the audit exists to catch.
        key.accumulate_grad(&Tensor::ones(&[2, 2]));
        key.set_trainable(false);
        let mut g = Graph::new();
        let x = g.input(Tensor::randn(&mut rng, &[1, 2], 1.0));
        let w = g.param(&key);
        let y = g.matmul(x, w);
        let y2 = g.mul(y, y);
        let loss = g.mean_all(y2);
        let err = g
            .check_grad_flow(loss, std::slice::from_ref(&key))
            .unwrap_err();
        assert!(matches!(err, CheckError::FrozenParamReceivesGrad { .. }));
        assert!(err.to_string().contains("bank.key0.w"));
    }

    #[test]
    fn unreachable_trainable_param_is_reported() {
        let mut rng = rng();
        let used = Param::new("used.w", Tensor::randn(&mut rng, &[2, 2], 1.0));
        let orphan = Param::new("orphan.w", Tensor::randn(&mut rng, &[2, 2], 1.0));
        let mut g = Graph::new();
        let x = g.input(Tensor::randn(&mut rng, &[1, 2], 1.0));
        let wu = g.param(&used);
        let wo = g.param(&orphan); // registered, never consumed by the loss
        let _dead = g.matmul(x, wo);
        let y = g.matmul(x, wu);
        let y2 = g.mul(y, y);
        let loss = g.mean_all(y2);
        let err = g.check_grad_flow(loss, &[]).unwrap_err();
        match err {
            CheckError::TrainableParamUnreachable { name, .. } => {
                assert_eq!(name, "orphan.w");
            }
            other => panic!("wrong error kind: {other}"),
        }
    }

    #[test]
    fn dead_nodes_are_reported_not_fatal() {
        let mut rng = rng();
        let mut g = Graph::new();
        let x = g.input(Tensor::randn(&mut rng, &[2, 2], 1.0));
        let dead = g.relu(x); // never feeds the loss
        let y = g.mul(x, x);
        let loss = g.mean_all(y);
        let report = g.verify(loss, &[]).unwrap();
        assert!(report.dead_nodes.contains(&dead.0));
    }
}
