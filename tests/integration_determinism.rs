//! End-to-end determinism: training and evaluating the CDCL learner must be
//! **bitwise identical** at every thread count. This is the contract of the
//! `cdcl_tensor::kernels` pool (each output element is reduced by exactly
//! one thread in a fixed order), checked here through the full stack —
//! tokenizer convs, attention GEMMs, autograd backward, optimizer updates,
//! pseudo-labelling, and the chunked parallel evaluation loops.

use cdcl::autograd::Graph;
use cdcl::core::{CdclConfig, CdclTrainer, ContinualLearner};
use cdcl::data::{mnist_usps, MnistUspsDirection, Scale};
use cdcl::nn::Module;
use cdcl::tensor::kernels;
use cdcl::tensor::Tensor;
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Trains two tasks at the given thread count and returns the final
/// parameter tensors plus both TIL accuracies.
fn train_at(threads: usize) -> (Vec<(String, Vec<f32>)>, f64, f64) {
    kernels::set_num_threads(threads);
    let stream = mnist_usps(MnistUspsDirection::MnistToUsps, Scale::Smoke);
    let mut config = CdclConfig::smoke();
    config.epochs = 3;
    config.warmup_epochs = 1;
    let mut trainer = CdclTrainer::new(config);
    for task in stream.tasks.iter().take(2) {
        trainer.learn_task(task);
    }
    let acc0 = trainer.eval_til(0, &stream.tasks[0].target_test);
    let acc1 = trainer.eval_til(1, &stream.tasks[1].target_test);
    let params = trainer
        .model()
        .params()
        .into_iter()
        .map(|p| (p.name(), p.value().data().to_vec()))
        .collect();
    kernels::set_num_threads(0);
    (params, acc0, acc1)
}

/// The graph verifier is always compiled in: the trainer runs it once per
/// task under the `graph_check` span, and debug builds re-check shapes on
/// every backward. It is a pure observer, so a run that additionally
/// records and verifies a fresh forward graph after every task must still
/// produce bitwise-identical parameters and accuracies (DESIGN.md §9).
#[test]
fn extra_verifier_passes_leave_training_bitwise_unchanged() {
    let (base_params, base_acc0, base_acc1) = train_at(1);

    kernels::set_num_threads(1);
    let stream = mnist_usps(MnistUspsDirection::MnistToUsps, Scale::Smoke);
    let mut config = CdclConfig::smoke();
    config.epochs = 3;
    config.warmup_epochs = 1;
    let mut trainer = CdclTrainer::new(config);
    let mut rng = SmallRng::seed_from_u64(99);
    for (t, task) in stream.tasks.iter().take(2).enumerate() {
        trainer.learn_task(task);
        // Record a forward graph through the just-learned task and verify
        // it — no backward, so the pass is read-only by construction.
        let model = trainer.model();
        let mut g = Graph::new();
        let x = g.input(Tensor::randn(&mut rng, &[2, 1, 16, 16], 1.0));
        let z = model.features_self(&mut g, x, t);
        let til = model.til_logits(&mut g, z, t);
        let lp = g.log_softmax_last(til);
        let loss = g.nll_loss(lp, &[0, 1]);
        g.verify(loss, &model.expected_frozen_params())
            .unwrap_or_else(|e| panic!("mid-stream verify failed after task {t}: {e}"));
    }
    let acc0 = trainer.eval_til(0, &stream.tasks[0].target_test);
    let acc1 = trainer.eval_til(1, &stream.tasks[1].target_test);
    kernels::set_num_threads(0);

    assert_eq!(acc0, base_acc0);
    assert_eq!(acc1, base_acc1);
    for ((name, value), p) in base_params.iter().zip(trainer.model().params()) {
        assert_eq!(name, &p.name());
        assert_eq!(
            value,
            p.value().data(),
            "param {name} perturbed by verifier passes"
        );
    }
}

/// The crash-safety contract (DESIGN.md §10): training interrupted at a
/// task boundary and resumed from its checkpoint must finish **bitwise
/// identical** — every parameter and every accuracy — to a run that was
/// never interrupted. The snapshot carries the RNG state and the optimizer
/// moments precisely so the resumed stream picks up mid-sequence without
/// the slightest divergence; a cross-process variant of this assertion
/// (with a real kill between phases) runs in CI as `persistence-smoke`.
#[test]
fn interrupted_then_resumed_training_is_bitwise_identical() {
    let (base_params, base_acc0, base_acc1) = train_at(1);

    kernels::set_num_threads(1);
    let stream = mnist_usps(MnistUspsDirection::MnistToUsps, Scale::Smoke);
    let mut config = CdclConfig::smoke();
    config.epochs = 3;
    config.warmup_epochs = 1;

    // Phase 1: train task 0 only, checkpoint to disk, and drop the trainer
    // — everything except the snapshot file dies with it.
    let dir = std::env::temp_dir().join(format!("cdcl-det-resume-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create checkpoint dir");
    let ckpt = dir.join("task000.cdclsnap");
    {
        let mut trainer = CdclTrainer::new(config);
        trainer.learn_task(&stream.tasks[0]);
        trainer.save_snapshot(&ckpt).expect("write checkpoint");
    }

    // Phase 2: resume from the checkpoint and finish the stream.
    let mut resumed = CdclTrainer::resume_from(&ckpt)
        .unwrap_or_else(|e| panic!("resume from {}: {e}", ckpt.display()));
    resumed.learn_task(&stream.tasks[1]);
    let acc0 = resumed.eval_til(0, &stream.tasks[0].target_test);
    let acc1 = resumed.eval_til(1, &stream.tasks[1].target_test);
    std::fs::remove_dir_all(&dir).ok();
    kernels::set_num_threads(0);

    assert_eq!(acc0, base_acc0, "eval_til(0) diverged after resume");
    assert_eq!(acc1, base_acc1, "eval_til(1) diverged after resume");
    let params = resumed.model().params();
    assert_eq!(params.len(), base_params.len());
    for ((name, value), p) in base_params.iter().zip(params) {
        assert_eq!(name, &p.name());
        assert_eq!(
            value,
            p.value().data(),
            "param {name} diverged after checkpoint/resume"
        );
    }
}

#[test]
fn training_is_bitwise_identical_across_thread_counts() {
    let (base_params, base_acc0, base_acc1) = train_at(1);
    assert!(!base_params.is_empty());
    for threads in [2usize, 8] {
        let (params, acc0, acc1) = train_at(threads);
        assert_eq!(acc0, base_acc0, "eval_til(0) diverged at {threads} threads");
        assert_eq!(acc1, base_acc1, "eval_til(1) diverged at {threads} threads");
        assert_eq!(params.len(), base_params.len());
        for ((name, value), (base_name, base_value)) in params.iter().zip(base_params.iter()) {
            assert_eq!(name, base_name);
            // Bitwise equality on the raw f32 data — no tolerance. Any
            // thread-count-dependent reduction order anywhere in the stack
            // shows up here.
            assert_eq!(
                value, base_value,
                "param {name} diverged at {threads} threads"
            );
        }
    }
}
