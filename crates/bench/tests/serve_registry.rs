//! Multi-tenant serving integration tests (DESIGN.md §13): concurrent
//! connections against the threaded accept loop, `RELOAD` hot-swap under
//! live load (zero dropped or garbled responses), admission-control
//! backpressure, the CLI parser's usage errors, and the wall-clock
//! throughput accounting.

use cdcl_bench::serve::load::{parse_load_args_from, run_load, LoadArgs};
use cdcl_bench::serve::registry::SnapshotRegistry;
use cdcl_bench::serve::{parse_args_from, run_tcp, serve_stream, ServeArgs, ServeStats};
use cdcl_core::{CdclConfig, CdclTrainer, ContinualLearner};
use cdcl_data::{mnist_usps, MnistUspsDirection, Scale};
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::Mutex;

/// Heavy TCP tests are serialized (they each train a smoke model and spin
/// worker threads on a small CI box).
static SERVE_GUARD: Mutex<()> = Mutex::new(());

/// Trains one smoke task (warm-up only — enough to serve predictions).
fn smoke_trainer() -> CdclTrainer {
    let stream = mnist_usps(MnistUspsDirection::MnistToUsps, Scale::Smoke);
    let mut config = CdclConfig::smoke();
    config.epochs = 1;
    config.warmup_epochs = 1;
    let mut trainer = CdclTrainer::new(config);
    trainer.learn_task(&stream.tasks[0]);
    trainer
}

fn request_line(dims: (usize, usize, usize), id: u64) -> String {
    let (c, h, w) = dims;
    let zeros = vec!["0.0"; c * h * w].join(",");
    format!(r#"{{"id":{id},"mode":"cil","image":[{zeros}]}}"#)
}

fn args_with(f: impl FnOnce(&mut ServeArgs)) -> ServeArgs {
    let mut args = ServeArgs {
        bench_out: None,
        ..ServeArgs::default()
    };
    f(&mut args);
    args
}

/// The response fields the tests assert on (extra fields are ignored by
/// the derived deserializer; absent ones decode to `None`).
#[derive(Debug, serde::Deserialize)]
struct ParsedResponse {
    id: Option<u64>,
    ok: bool,
    version: Option<u64>,
    error: Option<String>,
}

impl ParsedResponse {
    fn error(&self) -> &str {
        self.error.as_deref().unwrap_or_default()
    }
}

fn parse_response(line: &str) -> ParsedResponse {
    serde_json::from_str(line).expect("response is JSON")
}

/// N concurrent client connections, each pipelining windows of requests:
/// every request is answered, per-connection response order matches send
/// order, and ids never cross connections.
#[test]
fn concurrent_connections_are_answered_correctly_and_in_order() {
    let _g = SERVE_GUARD.lock().unwrap_or_else(|p| p.into_inner());
    cdcl_obs::set_enabled(true);
    let trainer = smoke_trainer();
    let dims = trainer.input_dims();
    let line_for = move |id: u64| request_line(dims, id);
    let srv = SnapshotRegistry::new(0);
    srv.insert_trainer("default", trainer, None)
        .expect("register model");

    const CLIENTS: usize = 3;
    const PER_CLIENT: usize = 12;
    const WINDOW: usize = 4;
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    let args = args_with(|a| {
        a.max_batch = 4;
        a.conns = CLIENTS;
        a.threads = 2;
    });
    let stats = ServeStats::default();

    std::thread::scope(|s| {
        let (srv, args, stats) = (&srv, &args, &stats);
        s.spawn(move || run_tcp(srv, listener, args, stats));
        let line_for = &line_for;
        for client in 0..CLIENTS {
            s.spawn(move || {
                let conn = TcpStream::connect(addr).expect("connect");
                let mut reader = BufReader::new(conn.try_clone().expect("clone client connection"));
                let mut writer = BufWriter::new(conn);
                let mut line = String::new();
                let mut sent = 0usize;
                while sent < PER_CLIENT {
                    let window = WINDOW.min(PER_CLIENT - sent);
                    for k in 0..window {
                        let id = (client as u64 + 1) * 1000 + (sent + k) as u64;
                        writeln!(writer, "{}", line_for(id)).expect("send");
                    }
                    writeln!(writer).expect("flush line");
                    writer.flush().expect("flush");
                    for k in 0..window {
                        line.clear();
                        let n = reader.read_line(&mut line).expect("read response");
                        assert!(n > 0, "client {client}: server dropped a response");
                        let resp = parse_response(line.trim());
                        let expect = (client as u64 + 1) * 1000 + (sent + k) as u64;
                        assert!(resp.ok, "client {client}: {line}");
                        assert_eq!(
                            resp.id,
                            Some(expect),
                            "client {client}: out-of-order or cross-connection response"
                        );
                    }
                    sent += window;
                }
            });
        }
    });
    assert_eq!(stats.requests(), (CLIENTS * PER_CLIENT) as u64);
    assert_eq!(stats.failed(), 0);
    assert_eq!(stats.busy(), 0);
    assert_eq!(stats.served(), (CLIENTS * PER_CLIENT) as u64);
}

/// `RELOAD` under live traffic: clients hammer the server while a control
/// connection hot-swaps the snapshot twice. Every request is answered
/// correctly (nothing dropped, nothing garbled), every response names a
/// valid version, and after the swaps a fresh connection is served by the
/// newest version.
#[test]
fn reload_under_load_drops_nothing_and_bumps_version() {
    let _g = SERVE_GUARD.lock().unwrap_or_else(|p| p.into_inner());
    cdcl_obs::set_enabled(true);
    let trainer = smoke_trainer();
    let dims = trainer.input_dims();
    let line_for = move |id: u64| request_line(dims, id);
    let dir = std::env::temp_dir().join(format!("cdcl-serve-reload-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    let snap = dir.join("model.cdclsnap");
    trainer.save_snapshot(&snap).expect("save snapshot");
    let srv = SnapshotRegistry::new(0);
    srv.load("default", &snap).expect("load v1");

    const CLIENTS: usize = 2;
    const PER_CLIENT: usize = 20;
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    // conns: clients + reload control conn + final version probe.
    let args = args_with(|a| {
        a.max_batch = 2;
        a.conns = CLIENTS + 2;
        a.threads = 3;
    });
    let stats = ServeStats::default();

    std::thread::scope(|s| {
        let (srv, args, stats) = (&srv, &args, &stats);
        s.spawn(move || run_tcp(srv, listener, args, stats));
        let line_for = &line_for;
        for client in 0..CLIENTS {
            s.spawn(move || {
                let conn = TcpStream::connect(addr).expect("connect");
                let mut reader = BufReader::new(conn.try_clone().expect("clone client connection"));
                let mut writer = BufWriter::new(conn);
                let mut line = String::new();
                // One request per window: interleaves tightly with the
                // concurrent RELOADs, so in-flight work spans the swap.
                for seq in 0..PER_CLIENT {
                    let id = (client as u64 + 1) * 1000 + seq as u64;
                    writeln!(writer, "{}", line_for(id)).expect("send");
                    writeln!(writer).expect("flush line");
                    writer.flush().expect("flush");
                    line.clear();
                    let n = reader.read_line(&mut line).expect("read response");
                    assert!(n > 0, "client {client}: response dropped across RELOAD");
                    let resp = parse_response(line.trim());
                    assert!(resp.ok, "client {client}: {line}");
                    assert_eq!(resp.id, Some(id), "client {client}: garbled ordering");
                    let v = resp.version.expect("response names its version");
                    assert!((1..=3).contains(&v), "impossible version {v}");
                }
            });
        }

        // Control connection: two hot-swaps while the clients are running.
        let snap = &snap;
        s.spawn(move || {
            let conn = TcpStream::connect(addr).expect("connect control");
            let mut reader = BufReader::new(conn.try_clone().expect("clone control connection"));
            let mut writer = BufWriter::new(conn);
            let mut line = String::new();
            for expect_version in [2u64, 3] {
                writeln!(writer, "RELOAD default {}", snap.display()).expect("send reload");
                writer.flush().expect("flush reload");
                line.clear();
                reader.read_line(&mut line).expect("read reload reply");
                let reply = parse_response(line.trim());
                assert!(reply.ok, "{line}");
                assert_eq!(reply.version, Some(expect_version), "{line}");
            }
            // A connection opened after both swaps is served by v3.
            let conn = TcpStream::connect(addr).expect("connect probe");
            let mut reader = BufReader::new(conn.try_clone().expect("clone probe connection"));
            let mut writer = BufWriter::new(conn);
            writeln!(writer, "{}", line_for(999_999)).expect("send probe");
            writeln!(writer).expect("probe flush line");
            writer.flush().expect("probe flush");
            line.clear();
            reader.read_line(&mut line).expect("read probe response");
            let resp = parse_response(line.trim());
            assert!(resp.ok, "{line}");
            assert_eq!(resp.version, Some(3), "post-swap traffic runs on v3");
        });
    });
    let expected = (CLIENTS * PER_CLIENT) as u64 + 1;
    assert_eq!(stats.requests(), expected, "every request accounted for");
    assert_eq!(stats.failed(), 0);
    assert_eq!(
        stats.served(),
        expected,
        "every request went through a forward pass"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Admission control: a model at its in-flight quota sheds requests with
/// `busy` responses (counted busy, not failed), and serves again once the
/// quota frees; the per-connection queue cap sheds the overflow the same
/// way.
#[test]
fn quota_and_queue_cap_shed_load_with_busy_responses() {
    let _g = SERVE_GUARD.lock().unwrap_or_else(|p| p.into_inner());
    cdcl_obs::set_enabled(true);
    let trainer = smoke_trainer();
    let req = request_line(trainer.input_dims(), 1);
    let srv = SnapshotRegistry::new(1);
    srv.insert_trainer("default", trainer, None)
        .expect("register model");
    let slot = srv.get(None).expect("resolve sole model");

    // Hold the model's only admission slot: the request must be shed.
    let ticket = slot.admission.try_acquire().expect("pre-hold the quota");
    let stats = ServeStats::default();
    let mut out = Vec::new();
    let input = format!("{req}\n\n");
    serve_stream(
        &srv,
        &mut std::io::Cursor::new(input.clone().into_bytes()),
        &mut out,
        &args_with(|a| a.max_batch = 8),
        &stats,
    )
    .expect("serve");
    let resp = parse_response(String::from_utf8(out).expect("utf8").trim());
    assert!(!resp.ok && resp.error().starts_with("busy"), "{resp:?}");
    assert_eq!(stats.busy(), 1);
    assert_eq!(stats.failed(), 0, "shed load is busy, not failure");

    // Release the quota: the same request is served.
    drop(ticket);
    let mut out = Vec::new();
    serve_stream(
        &srv,
        &mut std::io::Cursor::new(input.into_bytes()),
        &mut out,
        &args_with(|a| a.max_batch = 8),
        &stats,
    )
    .expect("serve after release");
    let resp = parse_response(String::from_utf8(out).expect("utf8").trim());
    assert!(resp.ok, "{resp:?}");

    // Queue cap: with room for 2 pending requests, the 3rd and 4th in one
    // window are shed before even resolving a model — and responses still
    // come back in arrival order. (The 2nd is shed by the model's
    // in-flight quota of 1: the 1st holds the only admission slot.)
    let big_srv_args = args_with(|a| {
        a.max_batch = 100;
        a.max_queue = 2;
    });
    let req_line = |id: u64| {
        let mut r = req.clone();
        r = r.replace("\"id\":1", &format!("\"id\":{id}"));
        r
    };
    let input = format!(
        "{}\n{}\n{}\n{}\n\n",
        req_line(1),
        req_line(2),
        req_line(3),
        req_line(4)
    );
    let mut out = Vec::new();
    serve_stream(
        &srv,
        &mut std::io::Cursor::new(input.into_bytes()),
        &mut out,
        &big_srv_args,
        &stats,
    )
    .expect("serve with queue cap");
    let text = String::from_utf8(out).expect("utf8");
    let responses: Vec<ParsedResponse> = text.lines().map(parse_response).collect();
    assert_eq!(responses.len(), 4, "{text}");
    assert_eq!(
        responses.iter().map(|r| r.id).collect::<Vec<_>>(),
        [Some(1), Some(2), Some(3), Some(4)],
        "arrival order preserved: {text}"
    );
    assert!(responses[0].ok, "{text}");
    assert!(
        !responses[1].ok && responses[1].error().contains("in-flight quota"),
        "{text}"
    );
    for r in &responses[2..] {
        assert!(!r.ok && r.error().contains("queue full"), "{text}");
    }
    assert!(stats.busy() >= 4, "all four sheds counted busy");
}

/// The CLI parser answers every malformed invocation with a usage error —
/// the bug class where a flag missing its value walked off the end of argv
/// and panicked.
#[test]
fn parse_args_rejects_malformed_command_lines_with_usage_errors() {
    let argv = |s: &[&str]| -> Vec<String> { s.iter().map(|x| x.to_string()).collect() };

    // The original panic: a flag as the final token.
    for flags in [
        &["--snapshot"][..],
        &["--snapshot", "a.cdclsnap", "--max-batch"][..],
        &["--tcp"][..],
        &["--model"][..],
    ] {
        let err = parse_args_from(&argv(flags)).expect_err("must be a usage error");
        assert!(err.contains("needs a value"), "{flags:?}: {err}");
        assert!(err.contains("usage:"), "{flags:?}: {err}");
    }

    let err = parse_args_from(&argv(&["--snapshot", "a", "--max-batch", "lots"]))
        .expect_err("bad number");
    assert!(err.contains("non-negative integer"), "{err}");

    let err = parse_args_from(&argv(&["--snapshot", "a", "--frobnicate", "x"]))
        .expect_err("unknown flag");
    assert!(err.contains("unknown argument --frobnicate"), "{err}");

    let err = parse_args_from(&argv(&[])).expect_err("no model");
    assert!(err.contains("is required"), "{err}");

    let err = parse_args_from(&argv(&["--model", "noequals"])).expect_err("bad model spec");
    assert!(err.contains("<id>=<path>"), "{err}");

    let err =
        parse_args_from(&argv(&["--model", "a=x", "--model", "a=y"])).expect_err("duplicate id");
    assert!(err.contains("given twice"), "{err}");

    // Well-formed multi-model invocations parse.
    let args = parse_args_from(&argv(&[
        "--model",
        "alpha=a.cdclsnap",
        "--model",
        "beta=b.cdclsnap",
        "--max-inflight",
        "8",
        "--threads",
        "2",
    ]))
    .expect("valid argv");
    assert_eq!(
        args.models,
        vec![
            ("alpha".to_string(), PathBuf::from("a.cdclsnap")),
            ("beta".to_string(), PathBuf::from("b.cdclsnap")),
        ]
    );
    assert_eq!(args.max_inflight, 8);
    assert_eq!(args.threads, 2);

    // --snapshot registers under the id `default`.
    let args = parse_args_from(&argv(&["--snapshot", "a.cdclsnap"])).expect("valid argv");
    assert_eq!(
        args.models,
        vec![("default".to_string(), PathBuf::from("a.cdclsnap"))]
    );

    // serve-load's parser gets the same treatment.
    let err = parse_load_args_from(&argv(&["--addr"])).expect_err("usage error");
    assert!(err.contains("needs a value"), "{err}");
    let err = parse_load_args_from(&argv(&[])).expect_err("addr required");
    assert!(err.contains("--addr"), "{err}");
}

/// Regression for the throughput accounting bug: RPS is served requests
/// over wall-clock serving time, not over summed per-batch forward
/// latency (which ignored queueing/IO and inflated the claim).
#[test]
fn throughput_is_measured_against_wall_clock() {
    let trainer = smoke_trainer();
    let stats = ServeStats::default();
    // Two batches of 10, each 0.5s of forward latency: the old accounting
    // divided 20 requests by the 1.0s latency sum -> 20 rps regardless of
    // how long serving actually took.
    stats.add_batch(10, 500_000.0);
    stats.add_batch(10, 500_000.0);
    let report = stats.report("test", &trainer, 32, 1, 4.0);
    assert_eq!(report.batches, 2);
    assert!(
        (report.throughput_rps - 5.0).abs() < 1e-9,
        "20 requests over 4.0s wall must be 5 rps, got {}",
        report.throughput_rps
    );
    assert!((report.wall_secs - 4.0).abs() < 1e-9);
    assert!((report.latency_us.p99 - 500_000.0).abs() < 1e-9);
}

/// The `serve-load` engine end-to-end against an in-process server: every
/// pipelined response verified, report carries sustained RPS and tail
/// latency.
#[test]
fn load_generator_sustains_verified_multi_connection_traffic() {
    let _g = SERVE_GUARD.lock().unwrap_or_else(|p| p.into_inner());
    cdcl_obs::set_enabled(true);
    let trainer = smoke_trainer();
    let srv = SnapshotRegistry::new(0);
    srv.insert_trainer("default", trainer, None)
        .expect("register model");
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr").to_string();
    // conns: the image-length probe plus two load connections.
    let args = args_with(|a| {
        a.max_batch = 8;
        a.conns = 3;
        a.threads = 2;
    });
    let stats = ServeStats::default();

    let report = std::thread::scope(|s| {
        let (srv, args, stats) = (&srv, &args, &stats);
        s.spawn(move || run_tcp(srv, listener, args, stats));
        let load_args = LoadArgs {
            addr,
            conns: 2,
            requests: 15,
            window: 5,
            bench_out: None,
            ..LoadArgs::default()
        };
        run_load(&load_args).expect("load run verifies every response")
    });
    assert_eq!(report.sent, 30);
    assert_eq!(report.ok_responses, 30);
    assert_eq!(report.busy_responses, 0);
    assert!(report.rps > 0.0);
    assert!(report.latency_us.p99 >= report.latency_us.p50);
    assert!(report.duration_secs > 0.0);
    // The server double-counts nothing: 30 load requests + 1 probe.
    assert_eq!(stats.requests(), 31);
}
