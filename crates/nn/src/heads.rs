//! Classifier heads: the multi-head TIL output (`f^TIL`, Eq. 7) and the
//! single growing CIL output (`f^CIL`, Eq. 8).

use cdcl_autograd::{Graph, Param, Var};
use cdcl_tensor::Tensor;
use rand::Rng;

use crate::init::xavier_uniform;
use crate::layers::Linear;
use crate::Module;

/// Multi-head output used for TIL: one `d -> u_t` linear classifier per
/// task, selected by the task identifier available at inference time.
pub struct TilHeads {
    heads: Vec<Linear>,
    d: usize,
}

impl TilHeads {
    /// Empty multi-head output.
    pub fn new(d: usize) -> Self {
        Self {
            heads: Vec::new(),
            d,
        }
    }

    /// Number of task heads.
    pub fn num_tasks(&self) -> usize {
        self.heads.len()
    }

    /// Number of classes of a given task head.
    pub fn task_classes(&self, task: usize) -> usize {
        self.heads[task].out_dim()
    }

    /// Appends a head for a new task with `classes` outputs.
    pub fn add_task<R: Rng + ?Sized>(&mut self, rng: &mut R, classes: usize) {
        let i = self.heads.len();
        self.heads.push(Linear::new(
            rng,
            &format!("til.head{i}"),
            self.d,
            classes,
            true,
        ));
    }

    /// Logits of task `task` for features `z: [b, d]`.
    pub fn forward(&self, g: &mut Graph, z: Var, task: usize) -> Var {
        assert!(task < self.heads.len(), "no TIL head for task {task}");
        self.heads[task].forward(g, z)
    }
}

impl Module for TilHeads {
    fn params(&self) -> Vec<Param> {
        self.heads.iter().flat_map(Module::params).collect()
    }
}

/// A linear classifier whose output dimension grows as new classes arrive,
/// preserving previously learned rows — the single-head CIL output.
pub struct GrowingLinear {
    w: Param,
    b: Param,
    d: usize,
    classes: usize,
    name: String,
}

impl GrowingLinear {
    /// New head with an initial number of classes (may be 0).
    pub fn new<R: Rng + ?Sized>(rng: &mut R, name: &str, d: usize, classes: usize) -> Self {
        let w = if classes == 0 {
            Param::new(format!("{name}.w"), Tensor::zeros(&[d, 0]))
        } else {
            Param::new(
                format!("{name}.w"),
                xavier_uniform(rng, &[d, classes], d, classes),
            )
        };
        let b = Param::new(format!("{name}.b"), Tensor::zeros(&[classes]));
        Self {
            w,
            b,
            d,
            classes,
            name: name.to_string(),
        }
    }

    /// Current number of output classes.
    pub fn classes(&self) -> usize {
        self.classes
    }

    /// Grows the head by `new_classes` outputs. Existing columns (and their
    /// optimizer-visible identity) are preserved: the weight tensor is
    /// re-created with the old values copied in, inside the *same* [`Param`]
    /// cell, so optimizers keyed on the parameter keep working — their
    /// per-parameter state is reset by the caller via
    /// [`GrowingLinear::params`] re-registration.
    pub fn grow<R: Rng + ?Sized>(&mut self, rng: &mut R, new_classes: usize) {
        if new_classes == 0 {
            return;
        }
        let old_w = self.w.value();
        let old_b = self.b.value();
        let total = self.classes + new_classes;
        let mut w = xavier_uniform(rng, &[self.d, total], self.d, total);
        for r in 0..self.d {
            for c in 0..self.classes {
                w.data_mut()[r * total + c] = old_w.data()[r * self.classes + c];
            }
        }
        let mut b = Tensor::zeros(&[total]);
        b.data_mut()[..self.classes].copy_from_slice(old_b.data());
        // Shapes change, so fresh Param cells are required (Param::set_value
        // rejects shape changes by design). Optimizers must re-collect
        // parameters after growth; the trainers in cdcl-core do.
        self.w = Param::new(format!("{}.w", self.name), w);
        self.b = Param::new(format!("{}.b", self.name), b);
        self.classes = total;
    }

    /// Logits over all known classes for features `z: [b, d]`.
    pub fn forward(&self, g: &mut Graph, z: Var) -> Var {
        assert!(self.classes > 0, "growing head has no classes yet");
        let w = g.param(&self.w);
        let b = g.param(&self.b);
        let y = g.matmul(z, w);
        g.add(y, b)
    }
}

impl Module for GrowingLinear {
    fn params(&self) -> Vec<Param> {
        vec![self.w.clone(), self.b.clone()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn til_heads_per_task_dims() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut heads = TilHeads::new(8);
        heads.add_task(&mut rng, 2);
        heads.add_task(&mut rng, 5);
        assert_eq!(heads.num_tasks(), 2);
        assert_eq!(heads.task_classes(0), 2);
        assert_eq!(heads.task_classes(1), 5);
        let mut g = Graph::new();
        let z = g.input(Tensor::zeros(&[3, 8]));
        let y0 = heads.forward(&mut g, z, 0);
        assert_eq!(g.value(y0).shape(), &[3, 2]);
        let y1 = heads.forward(&mut g, z, 1);
        assert_eq!(g.value(y1).shape(), &[3, 5]);
    }

    #[test]
    #[should_panic(expected = "no TIL head")]
    fn til_unknown_task_panics() {
        let heads = TilHeads::new(4);
        let mut g = Graph::new();
        let z = g.input(Tensor::zeros(&[1, 4]));
        heads.forward(&mut g, z, 0);
    }

    #[test]
    fn growing_linear_preserves_old_logits() {
        let mut rng = SmallRng::seed_from_u64(2);
        let mut head = GrowingLinear::new(&mut rng, "cil", 4, 3);
        let z = Tensor::randn(&mut rng, &[2, 4], 1.0);
        let mut g = Graph::new();
        let zv = g.input(z.clone());
        let yb = head.forward(&mut g, zv);
        let before = g.value(yb).clone();

        head.grow(&mut rng, 2);
        assert_eq!(head.classes(), 5);
        let mut g = Graph::new();
        let zv = g.input(z);
        let ya = head.forward(&mut g, zv);
        let after = g.value(ya).clone();
        assert_eq!(after.shape(), &[2, 5]);
        // first three logits unchanged
        for r in 0..2 {
            for c in 0..3 {
                assert!(
                    (after.at(&[r, c]) - before.at(&[r, c])).abs() < 1e-6,
                    "logit ({r},{c}) changed on grow"
                );
            }
        }
    }

    #[test]
    fn growing_from_zero() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut head = GrowingLinear::new(&mut rng, "cil", 4, 0);
        assert_eq!(head.classes(), 0);
        head.grow(&mut rng, 3);
        assert_eq!(head.classes(), 3);
        let mut g = Graph::new();
        let z = g.input(Tensor::zeros(&[1, 4]));
        let y = head.forward(&mut g, z);
        assert_eq!(g.value(y).shape(), &[1, 3]);
    }

    #[test]
    fn grow_zero_is_noop() {
        let mut rng = SmallRng::seed_from_u64(4);
        let mut head = GrowingLinear::new(&mut rng, "cil", 4, 2);
        let key_before = head.params()[0].key();
        head.grow(&mut rng, 0);
        assert_eq!(head.classes(), 2);
        assert_eq!(head.params()[0].key(), key_before);
    }
}
