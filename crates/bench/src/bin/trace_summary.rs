//! Folds a `CDCL_TRACE` JSONL trace into a per-task summary table.
//!
//! Reads the event stream produced by `cdcl-telemetry` (one JSON object per
//! line), aggregates it per task — phase wall-clock, step counts, first/last
//! losses, pair agreement, pseudo-label flip rate, memory occupancy, and
//! kernel counters — and prints a Markdown table. Span durations are also
//! folded onto the shared `cdcl-obs` histogram grid, yielding per-phase
//! p50/p95/p99 columns alongside the wall-clock totals. `--out <path>` also
//! dumps the full aggregates as JSON.
//!
//! ```text
//! CDCL_TRACE=trace.jsonl cargo run --release -p cdcl-bench --bin table1 -- --scale smoke
//! cargo run --release -p cdcl-bench --bin trace-summary -- trace.jsonl --out summary.json
//! ```

use std::collections::BTreeMap;

use cdcl_obs::hist;
use serde::{Serialize, Value};

/// Aggregated view of one task's events.
#[derive(Debug, Default, Clone, Serialize)]
struct TaskAgg {
    task: usize,
    /// Wall-clock per phase name, summed over all spans (milliseconds).
    phase_ms: Vec<(String, f64)>,
    /// Number of optimizer steps observed (`loss_warmup` + `loss_total`).
    steps: usize,
    /// First and last observed training loss (`loss_warmup`, then
    /// `loss_total` once adaptation starts). `None` when the trace has no
    /// loss scalars for the task.
    loss_first: Option<f64>,
    loss_last: Option<f64>,
    /// Last Eq. 19 pair-agreement rate.
    pair_agreement: Option<f64>,
    /// Last pseudo-label flip rate between the two centroid rounds.
    pseudo_flip_rate: Option<f64>,
    /// Memory records held by this task after the latest rebalance.
    memory_occupancy: Option<f64>,
    /// Kernel counters attributed to learning this task.
    gemm_calls: u64,
    gemm_fmas: u64,
    pool_spawns: u64,
    /// Watchdog trips and warnings recorded against this task.
    watchdogs: usize,
    warnings: usize,
}

/// Distribution of one phase's span durations across all tasks, estimated
/// from the shared `cdcl-obs` log-bucket grid (`hist::BUCKET_BOUNDS`).
#[derive(Debug, Clone, Serialize)]
struct PhaseDist {
    phase: String,
    spans: u64,
    total_ms: f64,
    p50_ms: f64,
    p95_ms: f64,
    p99_ms: f64,
}

/// The whole summary: tasks in order plus trace-level tallies.
#[derive(Debug, Default, Serialize)]
struct Summary {
    tasks: Vec<TaskAgg>,
    /// Per-phase span-duration percentiles (trace-wide, sorted by name).
    phases: Vec<PhaseDist>,
    events: usize,
    /// Lines that failed to parse as JSON (a healthy trace has zero).
    malformed: usize,
}

/// Numeric field accessor tolerating the telemetry encoding of non-finite
/// floats as the strings `"NaN"` / `"inf"` / `"-inf"`.
fn num(v: &Value, key: &str) -> Option<f64> {
    match v.field(key)? {
        Value::Num(n) => Some(*n),
        Value::Str(s) => match s.as_str() {
            "NaN" => Some(f64::NAN),
            "inf" => Some(f64::INFINITY),
            "-inf" => Some(f64::NEG_INFINITY),
            _ => None,
        },
        _ => None,
    }
}

fn str_field<'a>(v: &'a Value, key: &str) -> Option<&'a str> {
    match v.field(key)? {
        Value::Str(s) => Some(s),
        _ => None,
    }
}

/// Folds trace lines into the per-task summary.
fn fold(lines: impl Iterator<Item = String>) -> Summary {
    let mut by_task: BTreeMap<usize, TaskAgg> = BTreeMap::new();
    let mut phase_ms: BTreeMap<usize, BTreeMap<String, f64>> = BTreeMap::new();
    // Trace-wide span distributions on the shared log-bucket grid, keyed by
    // phase name. Durations are bucketed in microseconds — the same unit the
    // live `cdcl_train_*_step_us` histograms use — so the grid's nine
    // decades leave headroom on both ends.
    let mut dist: BTreeMap<String, ([u64; hist::BUCKET_COUNT], f64)> = BTreeMap::new();
    let mut summary = Summary::default();
    for line in lines {
        if line.trim().is_empty() {
            continue;
        }
        let Ok(v) = serde_json::from_str::<Value>(&line) else {
            summary.malformed += 1;
            continue;
        };
        summary.events += 1;
        if str_field(&v, "ev") == Some("phase") {
            if let (Some(name), Some(ms)) = (str_field(&v, "name"), num(&v, "dur_ms")) {
                let (buckets, total) = dist
                    .entry(name.to_string())
                    .or_insert(([0u64; hist::BUCKET_COUNT], 0.0));
                buckets[hist::bucket_index(ms * 1000.0)] += 1;
                *total += ms;
            }
        }
        let Some(task) = num(&v, "task").map(|t| t as usize) else {
            continue; // task-less events don't join the per-task table
        };
        let agg = by_task.entry(task).or_insert_with(|| TaskAgg {
            task,
            ..TaskAgg::default()
        });
        match str_field(&v, "ev") {
            Some("phase") => {
                if let (Some(name), Some(ms)) = (str_field(&v, "name"), num(&v, "dur_ms")) {
                    *phase_ms
                        .entry(task)
                        .or_default()
                        .entry(name.to_string())
                        .or_insert(0.0) += ms;
                }
            }
            Some("scalar") => {
                let value = num(&v, "value");
                match str_field(&v, "name") {
                    Some("loss_warmup" | "loss_total") => {
                        agg.steps += 1;
                        if agg.loss_first.is_none() {
                            agg.loss_first = value;
                        }
                        agg.loss_last = value;
                    }
                    Some("pair_agreement") => agg.pair_agreement = value,
                    Some("pseudo_flip_rate") => agg.pseudo_flip_rate = value,
                    Some("memory_occupancy") => agg.memory_occupancy = value,
                    _ => {}
                }
            }
            Some("counters") => {
                agg.gemm_calls += num(&v, "gemm_calls").unwrap_or(0.0) as u64;
                agg.gemm_fmas += num(&v, "gemm_fmas").unwrap_or(0.0) as u64;
                agg.pool_spawns += num(&v, "pool_spawns").unwrap_or(0.0) as u64;
            }
            Some("watchdog") => agg.watchdogs += 1,
            Some("warn") => agg.warnings += 1,
            _ => {}
        }
    }
    for (task, phases) in phase_ms {
        if let Some(agg) = by_task.get_mut(&task) {
            agg.phase_ms = phases.into_iter().collect();
        }
    }
    summary.tasks = by_task.into_values().collect();
    summary.phases = dist
        .into_iter()
        .map(|(phase, (buckets, total_ms))| PhaseDist {
            spans: buckets.iter().sum(),
            total_ms,
            p50_ms: hist::percentile(&buckets, 0.50) / 1000.0,
            p95_ms: hist::percentile(&buckets, 0.95) / 1000.0,
            p99_ms: hist::percentile(&buckets, 0.99) / 1000.0,
            phase,
        })
        .collect();
    summary
}

fn fmt_opt(v: Option<f64>) -> String {
    match v {
        Some(x) => format!("{x:.4}"),
        None => "—".to_string(),
    }
}

/// Renders the per-task Markdown table plus a per-phase breakdown.
fn render_markdown(s: &Summary) -> String {
    let mut out = String::new();
    out.push_str("# CDCL trace summary\n\n");
    out.push_str(&format!(
        "{} events ({} malformed lines), {} tasks\n\n",
        s.events,
        s.malformed,
        s.tasks.len()
    ));
    out.push_str(
        "| task | steps | loss first | loss last | pair agree | flip rate \
         | mem occ | GEMM calls | GEMM FMAs | spawns | watchdog | warn |\n",
    );
    out.push_str(
        "|-----:|------:|-----------:|----------:|-----------:|----------:\
         |--------:|-----------:|----------:|-------:|---------:|-----:|\n",
    );
    for t in &s.tasks {
        out.push_str(&format!(
            "| {} | {} | {} | {} | {} | {} | {} | {} | {} | {} | {} | {} |\n",
            t.task,
            t.steps,
            fmt_opt(t.loss_first),
            fmt_opt(t.loss_last),
            fmt_opt(t.pair_agreement),
            fmt_opt(t.pseudo_flip_rate),
            t.memory_occupancy.map_or(0, |v| v as usize),
            t.gemm_calls,
            t.gemm_fmas,
            t.pool_spawns,
            t.watchdogs,
            t.warnings,
        ));
    }
    out.push_str("\n## Phase wall-clock (ms)\n\n");
    let mut names: Vec<&str> = Vec::new();
    for t in &s.tasks {
        for (n, _) in &t.phase_ms {
            if !names.contains(&n.as_str()) {
                names.push(n);
            }
        }
    }
    names.sort_unstable();
    out.push_str(&format!("| task | {} |\n", names.join(" | ")));
    out.push_str(&format!("|-----:|{}\n", "------:|".repeat(names.len())));
    for t in &s.tasks {
        let cells: Vec<String> = names
            .iter()
            .map(|n| {
                t.phase_ms
                    .iter()
                    .find(|(pn, _)| pn == n)
                    .map_or("—".to_string(), |(_, ms)| format!("{ms:.1}"))
            })
            .collect();
        out.push_str(&format!("| {} | {} |\n", t.task, cells.join(" | ")));
    }
    if !s.phases.is_empty() {
        out.push_str("\n## Phase duration percentiles (ms)\n\n");
        out.push_str("| phase | spans | total | p50 | p95 | p99 |\n");
        out.push_str("|-------|------:|------:|----:|----:|----:|\n");
        for p in &s.phases {
            out.push_str(&format!(
                "| {} | {} | {:.1} | {:.2} | {:.2} | {:.2} |\n",
                p.phase, p.spans, p.total_ms, p.p50_ms, p.p95_ms, p.p99_ms
            ));
        }
    }
    out
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut trace: Option<String> = None;
    let mut out_json: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--out" => {
                out_json = args.get(i + 1).cloned();
                i += 2;
            }
            "--help" | "-h" => {
                eprintln!("usage: trace-summary <trace.jsonl> [--out summary.json]");
                return;
            }
            a => {
                trace = Some(a.to_string());
                i += 1;
            }
        }
    }
    let Some(trace) = trace else {
        eprintln!("usage: trace-summary <trace.jsonl> [--out summary.json]");
        std::process::exit(2);
    };
    let text = std::fs::read_to_string(&trace)
        .unwrap_or_else(|e| panic!("cannot read trace {trace}: {e}"));
    let summary = fold(text.lines().map(str::to_string));
    print!("{}", render_markdown(&summary));
    if let Some(path) = out_json {
        let json = serde_json::to_string_pretty(&summary).expect("summary serializes");
        std::fs::write(&path, json).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
        eprintln!("wrote {path}");
    }
    if summary.malformed > 0 {
        eprintln!("warning: {} malformed trace lines", summary.malformed);
        std::process::exit(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lines<'a>(raw: &'a [&'a str]) -> impl Iterator<Item = String> + 'a {
        raw.iter().map(|s| (*s).to_string())
    }

    #[test]
    fn folds_phases_scalars_and_counters_per_task() {
        let s = fold(lines(&[
            r#"{"seq":0,"ms":0.1,"ev":"phase","name":"warmup","task":0,"epoch":0,"dur_ms":10.0}"#,
            r#"{"seq":1,"ms":1.0,"ev":"phase","name":"warmup","task":0,"epoch":1,"dur_ms":5.0}"#,
            r#"{"seq":2,"ms":2.0,"ev":"scalar","name":"loss_warmup","task":0,"epoch":0,"step":0,"value":2.5}"#,
            r#"{"seq":3,"ms":3.0,"ev":"scalar","name":"loss_total","task":0,"epoch":2,"step":0,"value":1.25}"#,
            r#"{"seq":4,"ms":4.0,"ev":"scalar","name":"pair_agreement","task":0,"epoch":2,"value":0.75}"#,
            r#"{"seq":5,"ms":5.0,"ev":"counters","task":0,"gemm_calls":10,"gemm_fmas":1000,"pool_spawns":4}"#,
            r#"{"seq":6,"ms":6.0,"ev":"scalar","name":"memory_occupancy","task":1,"value":30}"#,
        ]));
        assert_eq!(s.events, 7);
        assert_eq!(s.malformed, 0);
        assert_eq!(s.tasks.len(), 2);
        let t0 = &s.tasks[0];
        assert_eq!(t0.task, 0);
        assert_eq!(t0.steps, 2);
        assert_eq!(t0.loss_first, Some(2.5));
        assert_eq!(t0.loss_last, Some(1.25));
        assert_eq!(t0.pair_agreement, Some(0.75));
        assert_eq!(t0.gemm_calls, 10);
        assert_eq!(t0.gemm_fmas, 1000);
        assert_eq!(t0.pool_spawns, 4);
        assert_eq!(t0.phase_ms, vec![("warmup".to_string(), 15.0)]);
        assert_eq!(s.tasks[1].memory_occupancy, Some(30.0));
        // The two warmup spans (10 ms, 5 ms → 10000 µs, 5000 µs) land in the
        // (2e3, 5e3] and (5e3, 1e4] buckets; interpolation puts p50 at the
        // 5 ms bound and p95/p99 at 90%/98% through the upper bucket.
        assert_eq!(s.phases.len(), 1);
        let p = &s.phases[0];
        assert_eq!(p.phase, "warmup");
        assert_eq!(p.spans, 2);
        assert!((p.total_ms - 15.0).abs() < 1e-9);
        assert!((p.p50_ms - 5.0).abs() < 1e-9, "p50 = {}", p.p50_ms);
        assert!((p.p95_ms - 9.5).abs() < 1e-9, "p95 = {}", p.p95_ms);
        assert!((p.p99_ms - 9.9).abs() < 1e-9, "p99 = {}", p.p99_ms);
    }

    #[test]
    fn non_finite_strings_and_garbage_lines_are_handled() {
        let s = fold(lines(&[
            r#"{"seq":0,"ms":0.1,"ev":"watchdog","name":"loss_total","phase":"adaptation","task":0,"epoch":1,"step":2,"value":"NaN"}"#,
            "not json at all",
        ]));
        assert_eq!(s.malformed, 1);
        assert_eq!(s.tasks[0].watchdogs, 1);
    }

    #[test]
    fn markdown_has_a_row_per_task() {
        let s = fold(lines(&[
            r#"{"seq":0,"ms":0.1,"ev":"scalar","name":"loss_total","task":0,"value":1.0}"#,
            r#"{"seq":1,"ms":0.2,"ev":"scalar","name":"loss_total","task":1,"value":2.0}"#,
        ]));
        let md = render_markdown(&s);
        assert!(md.contains("| 0 | 1 | 1.0000 |"), "{md}");
        assert!(md.contains("| 1 | 1 | 2.0000 |"), "{md}");
    }

    #[test]
    fn percentile_section_renders_and_skips_empty_traces() {
        let with_spans = fold(lines(&[
            r#"{"seq":0,"ms":0.1,"ev":"phase","name":"adaptation","task":0,"epoch":0,"dur_ms":3.0}"#,
        ]));
        let md = render_markdown(&with_spans);
        assert!(md.contains("## Phase duration percentiles (ms)"), "{md}");
        assert!(md.contains("| adaptation | 1 | 3.0 |"), "{md}");
        let no_spans = fold(lines(&[
            r#"{"seq":0,"ms":0.1,"ev":"scalar","name":"loss_total","task":0,"value":1.0}"#,
        ]));
        let md = render_markdown(&no_spans);
        assert!(!md.contains("percentiles"), "{md}");
    }
}
