//! Concrete generators.

use crate::{Rng, SeedableRng};

/// Expands a `u64` seed into full generator state (SplitMix64).
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A small, fast, seedable generator (xoshiro256++), mirroring
/// `rand::rngs::SmallRng`.
#[derive(Debug, Clone)]
pub struct SmallRng {
    s: [u64; 4],
}

impl SmallRng {
    fn from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = splitmix64(&mut sm);
        }
        Self::from_state(s)
    }

    /// The raw xoshiro256++ state, for checkpointing: an RNG rebuilt via
    /// [`SmallRng::from_state`] continues the stream bit-for-bit.
    pub fn state(&self) -> [u64; 4] {
        self.s
    }

    /// Rebuilds a generator from [`SmallRng::state`]. The all-zero state is
    /// a fixed point of xoshiro256++ (it would emit zeros forever), so it is
    /// deterministically replaced the same way seeding does.
    pub fn from_state(mut s: [u64; 4]) -> Self {
        if s == [0, 0, 0, 0] {
            s[0] = 0x9E37_79B9_7F4A_7C15;
        }
        Self { s }
    }
}

impl Rng for SmallRng {
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

impl SeedableRng for SmallRng {
    fn seed_from_u64(seed: u64) -> Self {
        Self::from_u64(seed)
    }
}

/// Alias kept for API compatibility; this stand-in has no cryptographic
/// generator, so `StdRng` shares the `SmallRng` implementation.
pub type StdRng = SmallRng;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn unit_floats_in_range() {
        let mut r = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let f: f32 = r.random();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn range_sampling_respects_bounds() {
        let mut r = SmallRng::seed_from_u64(9);
        for _ in 0..1000 {
            let v = r.random_range(3usize..10);
            assert!((3..10).contains(&v));
            let w = r.random_range(0usize..=4);
            assert!(w <= 4);
            let f = r.random_range(-2.0f32..2.0);
            assert!((-2.0..2.0).contains(&f));
        }
    }
}
