//! The five paper benchmarks as synthetic domain-pair analogues.
//!
//! Domain gaps are calibrated so the *relative* difficulty ordering matches
//! the paper's Tables I–III: DSLR↔Webcam and MNIST↔USPS are near pairs
//! (baselines retain signal), Amazon↔DSLR/Webcam and most Office-Home pairs
//! are far, VisDA (synthetic→real) sits in between, and DomainNet's
//! quickdraw is far from everything.

use crate::generator::{CrossDomainStream, DomainPairConfig};

/// Experiment scale: how big the generated streams are.
///
/// * `Smoke` — seconds-fast; unit/integration tests.
/// * `Standard` — the default for the experiment binaries (minutes on one
///   CPU core).
/// * `Paper` — the paper's class counts and image sizes (28×28 / 224×224);
///   constructible for completeness, far too slow for CI.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Tiny data for tests.
    Smoke,
    /// Default experiment scale.
    Standard,
    /// The paper's full dimensions.
    Paper,
}

impl Scale {
    fn per_class(self) -> (usize, usize, usize) {
        match self {
            Scale::Smoke => (12, 12, 6),
            Scale::Standard => (16, 16, 10),
            Scale::Paper => (100, 100, 50),
        }
    }

    fn hw(self, paper_hw: (usize, usize)) -> (usize, usize) {
        match self {
            Scale::Smoke | Scale::Standard => (16, 16),
            Scale::Paper => paper_hw,
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn config(
    name: String,
    num_classes: usize,
    tasks: usize,
    channels: usize,
    paper_hw: (usize, usize),
    gap: f32,
    scale: Scale,
    seed: u64,
) -> DomainPairConfig {
    let (train, tgt_train, test) = scale.per_class();
    DomainPairConfig {
        name,
        num_classes,
        tasks,
        channels,
        hw: scale.hw(paper_hw),
        latent_dim: 16,
        domain_gap: gap,
        // The continual premise (§III): consecutive tasks' renderings drift.
        task_drift: 0.9,
        within_class_std: 0.35,
        source_noise_std: 0.05,
        target_noise_std: 0.05 + 0.05 * gap,
        train_per_class: train,
        target_train_per_class: tgt_train,
        test_per_class: test,
        seed,
    }
}

/// Deterministic per-benchmark seed derived from its name.
fn seed_of(name: &str) -> u64 {
    // FNV-1a, stable across runs and platforms.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

// ---------------------------------------------------------------------------
// MNIST <-> USPS
// ---------------------------------------------------------------------------

/// Transfer direction for the MNIST↔USPS analogue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MnistUspsDirection {
    /// MNIST (source) → USPS (target).
    MnistToUsps,
    /// USPS (source) → MNIST (target).
    UspsToMnist,
}

impl MnistUspsDirection {
    /// Column label used in the paper's tables.
    pub fn label(self) -> &'static str {
        match self {
            MnistUspsDirection::MnistToUsps => "MN->US",
            MnistUspsDirection::UspsToMnist => "US->MN",
        }
    }
}

/// MNIST↔USPS analogue: 10 digit classes split into 5 tasks of 2 classes
/// (paper §V-A), gray-scale, *near* domains.
pub fn mnist_usps(direction: MnistUspsDirection, scale: Scale) -> CrossDomainStream {
    // USPS is smaller/noisier than MNIST, so US→MN is the slightly harder
    // direction in the paper; we encode that as a marginally wider gap.
    let gap = match direction {
        MnistUspsDirection::MnistToUsps => 0.15,
        MnistUspsDirection::UspsToMnist => 0.22,
    };
    let name = format!("mnist_usps {}", direction.label());
    let seed = seed_of(&name);
    config(name, 10, 5, 1, (28, 28), gap, scale, seed).generate()
}

// ---------------------------------------------------------------------------
// VisDA-2017
// ---------------------------------------------------------------------------

/// VisDA-2017 analogue: 12 classes in 4 tasks of 3; synthetic→real is a
/// substantial but learnable shift.
pub fn visda(scale: Scale) -> CrossDomainStream {
    let name = "visda-2017".to_string();
    let seed = seed_of(&name);
    config(name, 12, 4, 3, (224, 224), 0.55, scale, seed).generate()
}

// ---------------------------------------------------------------------------
// Office-31
// ---------------------------------------------------------------------------

/// The three Office-31 domains.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Office31Domain {
    /// Amazon product shots.
    Amazon,
    /// DSLR photos.
    Dslr,
    /// Webcam captures.
    Webcam,
}

impl Office31Domain {
    /// Single-letter label (paper notation).
    pub fn letter(self) -> &'static str {
        match self {
            Office31Domain::Amazon => "A",
            Office31Domain::Dslr => "D",
            Office31Domain::Webcam => "W",
        }
    }

    /// All domains.
    pub const ALL: [Office31Domain; 3] = [
        Office31Domain::Amazon,
        Office31Domain::Dslr,
        Office31Domain::Webcam,
    ];
}

/// Office-31 analogue: 30 classes ("trash can" dropped, as in the paper) in
/// 5 tasks of 6. DSLR↔Webcam are near domains; Amazon is far from both.
pub fn office31(src: Office31Domain, tgt: Office31Domain, scale: Scale) -> CrossDomainStream {
    assert_ne!(src, tgt, "source and target domains must differ");
    use Office31Domain::*;
    let gap = match (src, tgt) {
        (Dslr, Webcam) | (Webcam, Dslr) => 0.12,
        (Amazon, Dslr) | (Dslr, Amazon) => 0.80,
        (Amazon, Webcam) | (Webcam, Amazon) => 0.78,
        _ => unreachable!("src != tgt"),
    };
    let name = format!("office31 {}->{}", src.letter(), tgt.letter());
    let seed = seed_of(&name);
    config(name, 30, 5, 3, (224, 224), gap, scale, seed).generate()
}

// ---------------------------------------------------------------------------
// Office-Home
// ---------------------------------------------------------------------------

/// The four Office-Home domains.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OfficeHomeDomain {
    /// Artistic depictions.
    Art,
    /// Clipart.
    Clipart,
    /// Product shots.
    Product,
    /// Real-world photos.
    RealWorld,
}

impl OfficeHomeDomain {
    /// Two-letter label (paper notation).
    pub fn label(self) -> &'static str {
        match self {
            OfficeHomeDomain::Art => "Ar",
            OfficeHomeDomain::Clipart => "Cl",
            OfficeHomeDomain::Product => "Pr",
            OfficeHomeDomain::RealWorld => "Re",
        }
    }

    /// All domains.
    pub const ALL: [OfficeHomeDomain; 4] = [
        OfficeHomeDomain::Art,
        OfficeHomeDomain::Clipart,
        OfficeHomeDomain::Product,
        OfficeHomeDomain::RealWorld,
    ];

    /// A style coordinate used to derive pairwise gaps: Product and
    /// Real-World are photographic (close), Art and Clipart are stylized.
    fn coord(self) -> (f32, f32) {
        match self {
            OfficeHomeDomain::Art => (0.9, 0.4),
            OfficeHomeDomain::Clipart => (0.2, 1.0),
            OfficeHomeDomain::Product => (0.1, 0.1),
            OfficeHomeDomain::RealWorld => (0.0, 0.3),
        }
    }
}

/// Office-Home analogue: 65 classes in 13 tasks of 5; all pairs are
/// moderately far (the paper's hardest suite after DomainNet).
pub fn office_home(
    src: OfficeHomeDomain,
    tgt: OfficeHomeDomain,
    scale: Scale,
) -> CrossDomainStream {
    assert_ne!(src, tgt, "source and target domains must differ");
    let (ax, ay) = src.coord();
    let (bx, by) = tgt.coord();
    let dist = ((ax - bx).powi(2) + (ay - by).powi(2)).sqrt();
    // Distances span ~[0.3, 1.2]; map into gaps ~[0.55, 0.8].
    let gap = (0.5 + 0.25 * dist).clamp(0.5, 0.85);
    let name = format!("office_home {}->{}", src.label(), tgt.label());
    let seed = seed_of(&name);
    config(name, 65, 13, 3, (224, 224), gap, scale, seed).generate()
}

// ---------------------------------------------------------------------------
// DomainNet
// ---------------------------------------------------------------------------

/// The six DomainNet domains.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DomainNetDomain {
    /// Clipart.
    Clipart,
    /// Infographics.
    Infograph,
    /// Paintings.
    Painting,
    /// Quickdraw sketches (hardest domain).
    Quickdraw,
    /// Real photos.
    Real,
    /// Sketches.
    Sketch,
}

impl DomainNetDomain {
    /// Three-letter label (paper notation).
    pub fn label(self) -> &'static str {
        match self {
            DomainNetDomain::Clipart => "clp",
            DomainNetDomain::Infograph => "inf",
            DomainNetDomain::Painting => "pnt",
            DomainNetDomain::Quickdraw => "qdr",
            DomainNetDomain::Real => "rel",
            DomainNetDomain::Sketch => "skt",
        }
    }

    /// All domains.
    pub const ALL: [DomainNetDomain; 6] = [
        DomainNetDomain::Clipart,
        DomainNetDomain::Infograph,
        DomainNetDomain::Painting,
        DomainNetDomain::Quickdraw,
        DomainNetDomain::Real,
        DomainNetDomain::Sketch,
    ];

    fn coord(self) -> (f32, f32) {
        match self {
            DomainNetDomain::Clipart => (0.3, 0.6),
            DomainNetDomain::Infograph => (0.9, 0.5),
            DomainNetDomain::Painting => (0.5, 0.3),
            DomainNetDomain::Quickdraw => (1.2, 1.2),
            DomainNetDomain::Real => (0.0, 0.0),
            DomainNetDomain::Sketch => (0.5, 0.9),
        }
    }
}

/// DomainNet analogue. The paper uses 345 classes in 15 tasks of 23; at
/// `Scale::Standard` we keep the 15-task structure with 2 classes per task
/// (30 classes) so the continual-learning stress is preserved at CPU cost,
/// and `Scale::Paper` restores the full 345.
pub fn domain_net(src: DomainNetDomain, tgt: DomainNetDomain, scale: Scale) -> CrossDomainStream {
    assert_ne!(src, tgt, "source and target domains must differ");
    let (ax, ay) = src.coord();
    let (bx, by) = tgt.coord();
    let dist = ((ax - bx).powi(2) + (ay - by).powi(2)).sqrt();
    // quickdraw pairs land near 0.95; rel↔pnt near 0.6.
    let gap = (0.5 + 0.28 * dist).clamp(0.5, 0.97);
    let (classes, tasks) = match scale {
        Scale::Smoke => (15, 5),
        Scale::Standard => (30, 15),
        Scale::Paper => (345, 15),
    };
    let name = format!("domain_net {}->{}", src.label(), tgt.label());
    let seed = seed_of(&name);
    config(name, classes, tasks, 3, (224, 224), gap, scale, seed).generate()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mnist_usps_structure() {
        let s = mnist_usps(MnistUspsDirection::MnistToUsps, Scale::Smoke);
        assert_eq!(s.num_tasks(), 5);
        assert_eq!(s.tasks[0].num_classes(), 2);
        assert_eq!(s.image_layout.0, 1);
    }

    #[test]
    fn visda_structure() {
        let s = visda(Scale::Smoke);
        assert_eq!(s.num_tasks(), 4);
        assert_eq!(s.tasks[0].num_classes(), 3);
        assert_eq!(s.image_layout.0, 3);
    }

    #[test]
    fn office31_structure_and_pairs() {
        let s = office31(Office31Domain::Amazon, Office31Domain::Dslr, Scale::Smoke);
        assert_eq!(s.num_tasks(), 5);
        assert_eq!(s.tasks[0].num_classes(), 6);
        assert_eq!(s.name, "office31 A->D");
    }

    #[test]
    #[should_panic(expected = "must differ")]
    fn office31_same_domain_panics() {
        office31(Office31Domain::Dslr, Office31Domain::Dslr, Scale::Smoke);
    }

    #[test]
    fn office_home_structure() {
        let s = office_home(
            OfficeHomeDomain::Art,
            OfficeHomeDomain::Clipart,
            Scale::Smoke,
        );
        assert_eq!(s.num_tasks(), 13);
        assert_eq!(s.tasks[0].num_classes(), 5);
    }

    #[test]
    fn domain_net_scales() {
        let s = domain_net(DomainNetDomain::Real, DomainNetDomain::Sketch, Scale::Smoke);
        assert_eq!(s.num_tasks(), 5);
        let s = domain_net(
            DomainNetDomain::Real,
            DomainNetDomain::Sketch,
            Scale::Standard,
        );
        assert_eq!(s.num_tasks(), 15);
        assert_eq!(s.tasks[0].num_classes(), 2);
    }

    #[test]
    fn different_pairs_get_different_data() {
        let ad = office31(Office31Domain::Amazon, Office31Domain::Dslr, Scale::Smoke);
        let dw = office31(Office31Domain::Dslr, Office31Domain::Webcam, Scale::Smoke);
        assert_ne!(
            ad.tasks[0].source_train[0].image.data(),
            dw.tasks[0].source_train[0].image.data()
        );
    }

    #[test]
    fn repeated_construction_is_deterministic() {
        let a = visda(Scale::Smoke);
        let b = visda(Scale::Smoke);
        assert_eq!(
            a.tasks[1].target_test[3].image.data(),
            b.tasks[1].target_test[3].image.data()
        );
    }

    #[test]
    fn near_pair_has_smaller_gap_than_far_pair() {
        // Probe via the generated shift itself: mean same-class cross-domain
        // distance for D->W must be below A->D.
        fn shift(s: &CrossDomainStream) -> f32 {
            let t = &s.tasks[0];
            let mut total = 0.0;
            let mut n = 0;
            for a in t.source_train.iter().take(8) {
                for b in t.target_train.iter().take(8) {
                    if a.label == b.label {
                        total += a.image.sub(&b.image).sq_norm().sqrt();
                        n += 1;
                    }
                }
            }
            total / n as f32
        }
        let near = shift(&office31(
            Office31Domain::Dslr,
            Office31Domain::Webcam,
            Scale::Smoke,
        ));
        let far = shift(&office31(
            Office31Domain::Amazon,
            Office31Domain::Dslr,
            Scale::Smoke,
        ));
        assert!(far > near, "A->D shift {far} must exceed D->W shift {near}");
    }
}
