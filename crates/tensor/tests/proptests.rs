//! Property-based tests for the tensor kernels.

use cdcl_tensor::{broadcast_shapes, Tensor};
use proptest::prelude::*;

/// Strategy: a small shape of rank 1..=3.
fn small_shape() -> impl Strategy<Value = Vec<usize>> {
    prop::collection::vec(1usize..5, 1..4)
}

/// Strategy: a tensor with the given shape and bounded values.
fn tensor_with_shape(shape: Vec<usize>) -> impl Strategy<Value = Tensor> {
    let n: usize = shape.iter().product();
    prop::collection::vec(-10.0f32..10.0, n).prop_map(move |data| Tensor::from_vec(data, &shape))
}

fn small_tensor() -> impl Strategy<Value = Tensor> {
    small_shape().prop_flat_map(tensor_with_shape)
}

proptest! {
    #[test]
    fn add_commutes(t in small_tensor()) {
        let u = t.scale(0.5).add_scalar(1.0);
        let a = t.add(&u);
        let b = u.add(&t);
        prop_assert_eq!(a.data(), b.data());
    }

    #[test]
    fn add_zero_is_identity(t in small_tensor()) {
        let z = Tensor::zeros(t.shape());
        let sum = t.add(&z);
        prop_assert_eq!(sum.data(), t.data());
    }

    #[test]
    fn mul_one_is_identity(t in small_tensor()) {
        let o = Tensor::ones(t.shape());
        let prod = t.mul(&o);
        prop_assert_eq!(prod.data(), t.data());
    }

    #[test]
    fn scale_distributes_over_add(t in small_tensor()) {
        let u = t.map(|v| v.sin());
        let lhs = t.add(&u).scale(2.0);
        let rhs = t.scale(2.0).add(&u.scale(2.0));
        for (a, b) in lhs.data().iter().zip(rhs.data().iter()) {
            prop_assert!((a - b).abs() < 1e-4);
        }
    }

    #[test]
    fn reshape_preserves_data(t in small_tensor()) {
        let n = t.len();
        let flat = t.reshape(&[n]);
        prop_assert_eq!(flat.data(), t.data());
    }

    #[test]
    fn softmax_rows_are_distributions(t in small_tensor()) {
        let s = t.softmax_last();
        prop_assert!(s.data().iter().all(|v| *v >= 0.0 && *v <= 1.0 + 1e-6));
        let sums = s.sum_last();
        for v in sums.data() {
            prop_assert!((v - 1.0).abs() < 1e-4, "row sum {}", v);
        }
    }

    #[test]
    fn softmax_preserves_argmax(t in small_tensor()) {
        prop_assert_eq!(t.softmax_last().argmax_last(), t.argmax_last());
    }

    #[test]
    fn broadcast_is_symmetric_and_dominates(a in small_shape(), _unused in 0..1u8) {
        // broadcast(a, a) == a; broadcast with [1;rank] == a
        prop_assert_eq!(broadcast_shapes(&a, &a), a.clone());
        let ones = vec![1usize; a.len()];
        prop_assert_eq!(broadcast_shapes(&a, &ones), a);
    }

    #[test]
    fn reduce_to_shape_preserves_total(t in small_tensor()) {
        // Reducing all the way to a scalar preserves the total sum.
        let scalar = t.reduce_to_shape(&[]);
        prop_assert!((scalar.item() - t.sum()).abs() < 1e-2 * (1.0 + t.sum().abs()));
    }

    #[test]
    fn matmul_right_identity(m in 1usize..5, k in 1usize..5) {
        let t = Tensor::from_vec((0..m*k).map(|v| v as f32 * 0.25).collect(), &[m, k]);
        let got = t.matmul(&Tensor::eye(k));
        prop_assert_eq!(got.data(), t.data());
    }

    #[test]
    fn matmul_linearity(m in 1usize..4, k in 1usize..4, n in 1usize..4) {
        // (A + B) C == A C + B C
        let a = Tensor::from_vec((0..m*k).map(|v| (v as f32).sin()).collect(), &[m, k]);
        let b = Tensor::from_vec((0..m*k).map(|v| (v as f32).cos()).collect(), &[m, k]);
        let c = Tensor::from_vec((0..k*n).map(|v| (v as f32 * 0.3).sin()).collect(), &[k, n]);
        let lhs = a.add(&b).matmul(&c);
        let rhs = a.matmul(&c).add(&b.matmul(&c));
        for (x, y) in lhs.data().iter().zip(rhs.data().iter()) {
            prop_assert!((x - y).abs() < 1e-4);
        }
    }

    #[test]
    fn select_rows_then_concat_round_trips(rows in 1usize..6, cols in 1usize..6) {
        let t = Tensor::from_vec((0..rows*cols).map(|v| v as f32).collect(), &[rows, cols]);
        let parts: Vec<Tensor> = (0..rows).map(|i| t.select_rows(&[i])).collect();
        let refs: Vec<&Tensor> = parts.iter().collect();
        let back = Tensor::concat0(&refs);
        prop_assert_eq!(back.data(), t.data());
    }

    #[test]
    fn one_hot_argmax_round_trips(labels in prop::collection::vec(0usize..7, 1..20)) {
        let t = Tensor::one_hot(&labels, 7);
        prop_assert_eq!(t.argmax_last(), labels);
    }
}
