//! Learning-rate schedules.

/// A learning-rate schedule: maps an epoch index to a learning rate.
pub trait LrSchedule {
    /// Learning rate for (0-based) `epoch`.
    fn lr(&self, epoch: usize) -> f32;
}

/// Constant learning rate.
#[derive(Debug, Clone, Copy)]
pub struct ConstantLr(pub f32);

impl LrSchedule for ConstantLr {
    fn lr(&self, _epoch: usize) -> f32 {
        self.0
    }
}

/// The paper's schedule (§V-B): a flat warm-up rate for the warm-up epochs,
/// then cosine annealing from `peak_lr` down to `min_lr` over the remaining
/// epochs.
#[derive(Debug, Clone, Copy)]
pub struct WarmupCosine {
    /// Learning rate during warm-up (paper: 1e-5).
    pub warmup_lr: f32,
    /// Cosine start value (paper: 5e-5).
    pub peak_lr: f32,
    /// Cosine floor (paper: 1e-6).
    pub min_lr: f32,
    /// Number of warm-up epochs (paper: 25).
    pub warmup_epochs: usize,
    /// Total epochs (paper: 125).
    pub total_epochs: usize,
}

impl WarmupCosine {
    /// The paper's exact hyper-parameters at a given epoch budget.
    pub fn paper(warmup_epochs: usize, total_epochs: usize) -> Self {
        Self {
            warmup_lr: 1e-5,
            peak_lr: 5e-5,
            min_lr: 1e-6,
            warmup_epochs,
            total_epochs,
        }
    }
}

impl LrSchedule for WarmupCosine {
    fn lr(&self, epoch: usize) -> f32 {
        if epoch < self.warmup_epochs {
            return self.warmup_lr;
        }
        let span = (self.total_epochs.saturating_sub(self.warmup_epochs)).max(1);
        let t = ((epoch - self.warmup_epochs).min(span) as f32) / span as f32;
        let cos = 0.5 * (1.0 + (std::f32::consts::PI * t).cos());
        self.min_lr + (self.peak_lr - self.min_lr) * cos
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_is_constant() {
        let s = ConstantLr(0.01);
        assert_eq!(s.lr(0), 0.01);
        assert_eq!(s.lr(1000), 0.01);
    }

    #[test]
    fn warmup_phase_is_flat() {
        let s = WarmupCosine::paper(25, 125);
        for e in 0..25 {
            assert_eq!(s.lr(e), 1e-5);
        }
    }

    #[test]
    fn cosine_starts_at_peak_and_ends_at_floor() {
        let s = WarmupCosine::paper(25, 125);
        assert!((s.lr(25) - 5e-5).abs() < 1e-9, "start {}", s.lr(25));
        assert!((s.lr(125) - 1e-6).abs() < 1e-9, "end {}", s.lr(125));
        assert!(
            (s.lr(10_000) - 1e-6).abs() < 1e-9,
            "past end clamps to floor"
        );
    }

    #[test]
    fn cosine_is_monotone_decreasing_after_warmup() {
        let s = WarmupCosine::paper(5, 50);
        let mut prev = f32::INFINITY;
        for e in 5..=50 {
            let lr = s.lr(e);
            assert!(lr <= prev + 1e-12, "lr increased at epoch {e}");
            prev = lr;
        }
    }

    #[test]
    fn halfway_point_is_midpoint() {
        let s = WarmupCosine {
            warmup_lr: 0.0,
            peak_lr: 1.0,
            min_lr: 0.0,
            warmup_epochs: 0,
            total_epochs: 100,
        };
        assert!((s.lr(50) - 0.5).abs() < 1e-6);
    }

    #[test]
    fn degenerate_all_warmup() {
        let s = WarmupCosine::paper(10, 10);
        assert_eq!(s.lr(5), 1e-5);
        // epoch >= total: clamp, no panic
        let _ = s.lr(10);
        let _ = s.lr(11);
    }
}
