//! Pure shape inference and uniform shape-error reporting.
//!
//! Every shape rule a kernel enforces at dispatch time lives here as a pure
//! function over shapes, returning [`ShapeError`] instead of panicking. The
//! kernels themselves call [`enforce_shape`] on the inferred result, so a
//! runtime violation and a pre-execution report from the graph verifier in
//! `cdcl-autograd` print the *same* message for the same bug — one
//! formatting path, two entry points (DESIGN.md §9).

use std::fmt;

use crate::shape::Shape;
use crate::{Conv2dSpec, Pool2dSpec};

/// A shape violation detected either at kernel dispatch time or by the
/// pre-execution graph verifier.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShapeError {
    /// The operation whose shape rule was violated (`"matmul"`, `"conv2d"`…).
    pub op: &'static str,
    /// Human-readable description of the violation, including the offending
    /// shapes.
    pub detail: String,
}

impl ShapeError {
    /// Builds an error for `op` with a formatted detail line.
    pub fn new(op: &'static str, detail: impl Into<String>) -> Self {
        Self {
            op,
            detail: detail.into(),
        }
    }
}

impl fmt::Display for ShapeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.op, self.detail)
    }
}

impl std::error::Error for ShapeError {}

/// Unwraps an inference result, panicking with the uniform [`ShapeError`]
/// formatting. This is the single escalation point for shape violations in
/// the tensor layer: shape errors in a training loop are programming bugs,
/// not recoverable conditions (crate-level docs).
pub fn enforce_shape(r: Result<Shape, ShapeError>) -> Shape {
    match r {
        Ok(s) => s,
        // lint-allow: the one sanctioned shape-violation panic (see
        // lint-allow.txt).
        Err(e) => panic!("{e}"),
    }
}

/// Broadcast result of two operand shapes (NumPy rule: align trailing
/// dimensions; each pair must be equal or one of them 1).
pub fn try_broadcast_shapes(a: &[usize], b: &[usize]) -> Result<Shape, ShapeError> {
    let ndim = a.len().max(b.len());
    let mut out = vec![0; ndim];
    for (i, o) in out.iter_mut().enumerate() {
        let da = dim_from_end(a, ndim - 1 - i);
        let db = dim_from_end(b, ndim - 1 - i);
        *o = match (da, db) {
            (x, y) if x == y => x,
            (1, y) => y,
            (x, 1) => x,
            _ => {
                return Err(ShapeError::new(
                    "broadcast",
                    format!("cannot broadcast shapes {a:?} and {b:?}"),
                ))
            }
        };
    }
    Ok(out)
}

fn dim_from_end(shape: &[usize], from_end: usize) -> usize {
    if from_end < shape.len() {
        shape[shape.len() - 1 - from_end]
    } else {
        1
    }
}

/// `a @ b` for the supported rank combinations `(2,2)`, `(3,3)`, `(3,2)`.
pub fn infer_matmul(a: &[usize], b: &[usize]) -> Result<Shape, ShapeError> {
    match (a.len(), b.len()) {
        (2, 2) => {
            inner_dims("matmul", a, b, a[1], b[0])?;
            Ok(vec![a[0], b[1]])
        }
        (3, 3) => {
            batch_dims("matmul", a, b)?;
            inner_dims("matmul", a, b, a[2], b[1])?;
            Ok(vec![a[0], a[1], b[2]])
        }
        (3, 2) => {
            inner_dims("matmul", a, b, a[2], b[0])?;
            Ok(vec![a[0], a[1], b[1]])
        }
        (ra, rb) => Err(ShapeError::new(
            "matmul",
            format!("unsupported matmul ranks: {ra} x {rb}"),
        )),
    }
}

/// Fused `a · bᵀ` for the rank combinations `(2,2)`, `(3,3)`, `(3,2)`.
pub fn infer_matmul_nt(a: &[usize], b: &[usize]) -> Result<Shape, ShapeError> {
    match (a.len(), b.len()) {
        (2, 2) => {
            inner_dims("matmul_nt", a, b, a[1], b[1])?;
            Ok(vec![a[0], b[0]])
        }
        (3, 3) => {
            batch_dims("matmul_nt", a, b)?;
            inner_dims("matmul_nt", a, b, a[2], b[2])?;
            Ok(vec![a[0], a[1], b[1]])
        }
        (3, 2) => {
            inner_dims("matmul_nt", a, b, a[2], b[1])?;
            Ok(vec![a[0], a[1], b[0]])
        }
        (ra, rb) => Err(ShapeError::new(
            "matmul_nt",
            format!("unsupported matmul_nt ranks: {ra} x {rb}"),
        )),
    }
}

/// Fused `aᵀ · b` for the rank combinations `(2,2)`, `(3,3)`.
pub fn infer_matmul_tn(a: &[usize], b: &[usize]) -> Result<Shape, ShapeError> {
    match (a.len(), b.len()) {
        (2, 2) => {
            inner_dims("matmul_tn", a, b, a[0], b[0])?;
            Ok(vec![a[1], b[1]])
        }
        (3, 3) => {
            batch_dims("matmul_tn", a, b)?;
            inner_dims("matmul_tn", a, b, a[1], b[1])?;
            Ok(vec![a[0], a[2], b[2]])
        }
        (ra, rb) => Err(ShapeError::new(
            "matmul_tn",
            format!("unsupported matmul_tn ranks: {ra} x {rb}"),
        )),
    }
}

fn inner_dims(
    op: &'static str,
    a: &[usize],
    b: &[usize],
    k: usize,
    k2: usize,
) -> Result<(), ShapeError> {
    if k == k2 {
        Ok(())
    } else {
        Err(ShapeError::new(
            op,
            format!("inner dims: {k} vs {k2} (lhs {a:?}, rhs {b:?})"),
        ))
    }
}

fn batch_dims(op: &'static str, a: &[usize], b: &[usize]) -> Result<(), ShapeError> {
    if a[0] == b[0] {
        Ok(())
    } else {
        Err(ShapeError::new(
            op,
            format!("batch dims: {} vs {} (lhs {a:?}, rhs {b:?})", a[0], b[0]),
        ))
    }
}

/// Output spatial size of a convolution over an `(h, w)` input.
pub fn try_conv_out_hw(
    spec: &Conv2dSpec,
    h: usize,
    w: usize,
) -> Result<(usize, usize), ShapeError> {
    let (ph, pw) = (h + 2 * spec.padding, w + 2 * spec.padding);
    if ph < spec.kernel || pw < spec.kernel {
        return Err(ShapeError::new(
            "conv2d",
            format!("kernel {} larger than padded input {ph}x{pw}", spec.kernel),
        ));
    }
    Ok((
        (ph - spec.kernel) / spec.stride + 1,
        (pw - spec.kernel) / spec.stride + 1,
    ))
}

/// Output spatial size of a max-pool over an `(h, w)` input.
pub fn try_pool_out_hw(
    spec: &Pool2dSpec,
    h: usize,
    w: usize,
) -> Result<(usize, usize), ShapeError> {
    if h < spec.kernel || w < spec.kernel {
        return Err(ShapeError::new(
            "maxpool2d",
            format!("pool kernel {} larger than input {h}x{w}", spec.kernel),
        ));
    }
    Ok((
        (h - spec.kernel) / spec.stride + 1,
        (w - spec.kernel) / spec.stride + 1,
    ))
}

/// `conv2d(x, w, bias)`: `x: [b,ci,h,w]`, `w: [co,ci,k,k]`, `bias: [co]`.
pub fn infer_conv2d(
    x: &[usize],
    w: &[usize],
    bias: Option<&[usize]>,
    spec: &Conv2dSpec,
) -> Result<Shape, ShapeError> {
    if x.len() != 4 {
        return Err(ShapeError::new(
            "conv2d",
            format!("expects NCHW input, got {x:?}"),
        ));
    }
    if w.len() != 4 {
        return Err(ShapeError::new(
            "conv2d",
            format!("weight must be [co,ci,k,k], got {w:?}"),
        ));
    }
    let (c_out, c_in, kh, kw) = (w[0], w[1], w[2], w[3]);
    if kh != spec.kernel || kw != spec.kernel {
        return Err(ShapeError::new(
            "conv2d",
            format!(
                "weight kernel mismatch: weight {w:?} vs spec kernel {}",
                spec.kernel
            ),
        ));
    }
    if c_in != x[1] {
        return Err(ShapeError::new(
            "conv2d",
            format!(
                "channel mismatch: weight expects {c_in}, input has {}",
                x[1]
            ),
        ));
    }
    if let Some(bias) = bias {
        if bias != [c_out] {
            return Err(ShapeError::new(
                "conv2d",
                format!("bias must be [c_out] = [{c_out}], got {bias:?}"),
            ));
        }
    }
    let (oh, ow) = try_conv_out_hw(spec, x[2], x[3])?;
    Ok(vec![x[0], c_out, oh, ow])
}

/// `maxpool2d(x)`: `x: [b,c,h,w]`.
pub fn infer_maxpool2d(x: &[usize], spec: &Pool2dSpec) -> Result<Shape, ShapeError> {
    if x.len() != 4 {
        return Err(ShapeError::new(
            "maxpool2d",
            format!("expects NCHW input, got {x:?}"),
        ));
    }
    let (oh, ow) = try_pool_out_hw(spec, x[2], x[3])?;
    Ok(vec![x[0], x[1], oh, ow])
}

/// Concatenation along dimension 0: trailing dimensions must agree.
pub fn infer_concat0(parts: &[&[usize]]) -> Result<Shape, ShapeError> {
    let Some(first) = parts.first() else {
        return Err(ShapeError::new("concat0", "concat0 of zero tensors"));
    };
    if first.is_empty() {
        return Err(ShapeError::new("concat0", "concat0 of scalars"));
    }
    let tail = &first[1..];
    let mut rows = 0;
    for p in parts {
        if p.is_empty() || &p[1..] != tail {
            return Err(ShapeError::new(
                "concat0",
                format!("trailing shape mismatch: {p:?} vs [_, {tail:?}]"),
            ));
        }
        rows += p[0];
    }
    let mut out = vec![rows];
    out.extend_from_slice(tail);
    Ok(out)
}

/// Swap of the last two axes; requires rank >= 2.
pub fn infer_transpose_last2(a: &[usize]) -> Result<Shape, ShapeError> {
    if a.len() < 2 {
        return Err(ShapeError::new(
            "transpose_last2",
            format!("needs rank >= 2, got {a:?}"),
        ));
    }
    let mut out = a.to_vec();
    let n = out.len();
    out.swap(n - 2, n - 1);
    Ok(out)
}

/// Reshape to `new`: element counts must match.
pub fn infer_reshape(a: &[usize], new: &[usize]) -> Result<Shape, ShapeError> {
    if crate::num_elements(a) != crate::num_elements(new) {
        return Err(ShapeError::new(
            "reshape",
            format!("{a:?} -> {new:?} changes element count"),
        ));
    }
    Ok(new.to_vec())
}

/// Shape-preserving op over the last axis (softmax family); requires
/// rank >= 1.
pub fn infer_last_axis_map(op: &'static str, a: &[usize]) -> Result<Shape, ShapeError> {
    if a.is_empty() {
        return Err(ShapeError::new(op, "last-axis op on a scalar"));
    }
    Ok(a.to_vec())
}

/// Sum over the last axis (axis dropped); requires rank >= 1.
pub fn infer_sum_last(a: &[usize]) -> Result<Shape, ShapeError> {
    if a.is_empty() {
        return Err(ShapeError::new(
            "sum_last",
            "last-axis reduction on a scalar",
        ));
    }
    Ok(a[..a.len() - 1].to_vec())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_inference_matches_rank_rules() {
        assert_eq!(infer_matmul(&[2, 3], &[3, 4]).unwrap(), vec![2, 4]);
        assert_eq!(infer_matmul(&[5, 2, 3], &[5, 3, 4]).unwrap(), vec![5, 2, 4]);
        assert_eq!(infer_matmul(&[5, 2, 3], &[3, 4]).unwrap(), vec![5, 2, 4]);
        let e = infer_matmul(&[2, 3], &[4, 2]).unwrap_err();
        assert!(e.to_string().contains("inner dims"), "{e}");
        let e = infer_matmul(&[2], &[2, 2]).unwrap_err();
        assert!(e.to_string().contains("unsupported"), "{e}");
    }

    #[test]
    fn matmul_nt_tn_inference() {
        assert_eq!(infer_matmul_nt(&[2, 3], &[4, 3]).unwrap(), vec![2, 4]);
        assert_eq!(
            infer_matmul_nt(&[5, 2, 3], &[5, 4, 3]).unwrap(),
            vec![5, 2, 4]
        );
        assert_eq!(infer_matmul_nt(&[5, 2, 3], &[4, 3]).unwrap(), vec![5, 2, 4]);
        assert_eq!(infer_matmul_tn(&[3, 2], &[3, 4]).unwrap(), vec![2, 4]);
        assert_eq!(
            infer_matmul_tn(&[5, 3, 2], &[5, 3, 4]).unwrap(),
            vec![5, 2, 4]
        );
        assert!(infer_matmul_tn(&[5, 3, 2], &[3, 4]).is_err());
    }

    #[test]
    fn broadcast_inference_matches_panicking_api() {
        assert_eq!(
            try_broadcast_shapes(&[2, 1, 4], &[3, 1]).unwrap(),
            vec![2, 3, 4]
        );
        let e = try_broadcast_shapes(&[2, 3], &[4, 3]).unwrap_err();
        assert!(e.to_string().contains("cannot broadcast"), "{e}");
    }

    #[test]
    fn conv_and_pool_inference() {
        let spec = Conv2dSpec {
            kernel: 3,
            stride: 1,
            padding: 1,
        };
        assert_eq!(
            infer_conv2d(&[2, 3, 8, 8], &[4, 3, 3, 3], Some(&[4]), &spec).unwrap(),
            vec![2, 4, 8, 8]
        );
        let e = infer_conv2d(&[1, 2, 4, 4], &[1, 3, 3, 3], None, &spec).unwrap_err();
        assert!(e.to_string().contains("channel mismatch"), "{e}");
        let pool = Pool2dSpec {
            kernel: 2,
            stride: 2,
        };
        assert_eq!(
            infer_maxpool2d(&[1, 4, 8, 8], &pool).unwrap(),
            vec![1, 4, 4, 4]
        );
        assert!(infer_maxpool2d(&[1, 4, 1, 1], &pool).is_err());
    }

    #[test]
    fn structural_inference() {
        assert_eq!(infer_concat0(&[&[2, 3], &[4, 3]]).unwrap(), vec![6, 3]);
        assert!(infer_concat0(&[&[2, 3], &[4, 5]]).is_err());
        assert_eq!(infer_transpose_last2(&[2, 3, 4]).unwrap(), vec![2, 4, 3]);
        assert!(infer_transpose_last2(&[4]).is_err());
        assert_eq!(infer_reshape(&[2, 6], &[3, 4]).unwrap(), vec![3, 4]);
        assert!(infer_reshape(&[2, 6], &[5]).is_err());
        assert_eq!(infer_sum_last(&[2, 3]).unwrap(), vec![2]);
        assert!(infer_sum_last(&[]).is_err());
        assert_eq!(
            infer_last_axis_map("softmax_last", &[2, 3]).unwrap(),
            vec![2, 3]
        );
    }

    #[test]
    #[should_panic(expected = "inner dims")]
    fn enforce_shape_panics_with_uniform_message() {
        enforce_shape(infer_matmul(&[2, 3], &[4, 2]));
    }
}
