//! The `R` matrix protocol and the metrics derived from it.

use serde::{Deserialize, Serialize};

/// Lower-triangular test classification matrix.
///
/// `R[i][j]` (for `j <= i`) is the accuracy on task `j`'s target-domain test
/// set after the learner finished training task `i`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RMatrix {
    rows: Vec<Vec<f64>>,
}

impl RMatrix {
    /// Empty matrix.
    pub fn new() -> Self {
        Self { rows: Vec::new() }
    }

    /// Records the evaluation row after finishing task `rows.len()`: the
    /// accuracies on tasks `0..=i`, in task order. The row must have exactly
    /// one more entry than the previous row.
    pub fn push_row(&mut self, accuracies: Vec<f64>) {
        assert_eq!(
            accuracies.len(),
            self.rows.len() + 1,
            "row after task {} must contain {} accuracies",
            self.rows.len(),
            self.rows.len() + 1
        );
        for (j, a) in accuracies.iter().enumerate() {
            assert!(
                (0.0..=1.0).contains(a),
                "accuracy R[{}][{}] = {} outside [0,1]",
                self.rows.len(),
                j,
                a
            );
        }
        self.rows.push(accuracies);
    }

    /// Number of completed tasks `T`.
    pub fn num_tasks(&self) -> usize {
        self.rows.len()
    }

    /// `R[i][j]` (panics when `j > i`).
    pub fn at(&self, i: usize, j: usize) -> f64 {
        self.rows[i][j]
    }

    /// Average accuracy over the final row (paper Eq. 33), in `[0, 1]`.
    pub fn acc(&self) -> f64 {
        assert!(!self.rows.is_empty(), "ACC of an empty R matrix");
        let last = &self.rows[self.rows.len() - 1];
        last.iter().sum::<f64>() / last.len() as f64
    }

    /// Forgetting (paper Eq. 34), in `[-1, 1]`: the mean over tasks
    /// `j < T-1` of the gap between the best accuracy ever achieved on task
    /// `j` and the final accuracy on it. Returns 0 for a single task.
    pub fn fgt(&self) -> f64 {
        let t = self.rows.len();
        if t < 2 {
            return 0.0;
        }
        let last = &self.rows[t - 1];
        let mut total = 0.0;
        for (j, &lj) in last.iter().enumerate().take(t - 1) {
            let best = (j..t - 1)
                .map(|i| self.rows[i][j])
                .fold(f64::NEG_INFINITY, f64::max);
            total += best - lj;
        }
        total / (t - 1) as f64
    }

    /// Per-task accuracy series for the paper's Figure 2: entry `j` holds
    /// the accuracies on task `j` measured after each of tasks `j..T`.
    pub fn series(&self) -> Vec<AccSeries> {
        let t = self.rows.len();
        (0..t)
            .map(|j| AccSeries {
                task: j,
                accuracies: (j..t).map(|i| self.rows[i][j]).collect(),
            })
            .collect()
    }

    /// Mean and standard deviation of the accuracies of *previously learned*
    /// tasks after each task — the shaded band of Figure 2. Entry `i`
    /// summarizes row `i`.
    pub fn row_mean_std(&self) -> Vec<(f64, f64)> {
        self.rows
            .iter()
            .map(|row| {
                let n = row.len() as f64;
                let mean = row.iter().sum::<f64>() / n;
                let var = row.iter().map(|a| (a - mean) * (a - mean)).sum::<f64>() / n;
                (mean, var.sqrt())
            })
            .collect()
    }
}

impl Default for RMatrix {
    fn default() -> Self {
        Self::new()
    }
}

/// Accuracy trajectory of one task across the learning sequence.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AccSeries {
    /// Task index `j`.
    pub task: usize,
    /// `R[j][j], R[j+1][j], …, R[T-1][j]`.
    pub accuracies: Vec<f64>,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo() -> RMatrix {
        let mut r = RMatrix::new();
        r.push_row(vec![0.9]);
        r.push_row(vec![0.7, 0.8]);
        r.push_row(vec![0.5, 0.6, 0.9]);
        r
    }

    #[test]
    fn acc_is_mean_of_final_row() {
        let r = demo();
        assert!((r.acc() - (0.5 + 0.6 + 0.9) / 3.0).abs() < 1e-12);
    }

    #[test]
    fn fgt_uses_best_previous_row() {
        let r = demo();
        // task 0: best over rows 0..2 = 0.9, final 0.5 -> 0.4
        // task 1: best = 0.8, final 0.6 -> 0.2
        assert!((r.fgt() - 0.3).abs() < 1e-12);
    }

    #[test]
    fn fgt_single_task_is_zero() {
        let mut r = RMatrix::new();
        r.push_row(vec![0.5]);
        assert_eq!(r.fgt(), 0.0);
    }

    #[test]
    fn fgt_can_be_negative_with_backward_transfer() {
        let mut r = RMatrix::new();
        r.push_row(vec![0.5]);
        r.push_row(vec![0.9, 0.8]); // task 0 improved after task 1
        assert!(r.fgt() < 0.0);
    }

    #[test]
    fn series_extracts_columns() {
        let r = demo();
        let s = r.series();
        assert_eq!(s.len(), 3);
        assert_eq!(s[0].accuracies, vec![0.9, 0.7, 0.5]);
        assert_eq!(s[1].accuracies, vec![0.8, 0.6]);
        assert_eq!(s[2].accuracies, vec![0.9]);
    }

    #[test]
    fn row_mean_std_shapes() {
        let r = demo();
        let ms = r.row_mean_std();
        assert_eq!(ms.len(), 3);
        assert!((ms[0].0 - 0.9).abs() < 1e-12);
        assert_eq!(ms[0].1, 0.0);
        assert!((ms[1].0 - 0.75).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "must contain")]
    fn wrong_row_length_panics() {
        let mut r = RMatrix::new();
        r.push_row(vec![0.5, 0.5]);
    }

    #[test]
    #[should_panic(expected = "outside [0,1]")]
    fn out_of_range_accuracy_panics() {
        let mut r = RMatrix::new();
        r.push_row(vec![1.5]);
    }

    #[test]
    fn serde_round_trip() {
        let r = demo();
        let json = serde_json::to_string(&r).expect("serialize");
        let back: RMatrix = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(back.acc(), r.acc());
        assert_eq!(back.fgt(), r.fgt());
    }
}
