//! The rehearsal memory of §IV-C.
//!
//! Each record is the paper's tuple `(x_S, x_T, y_S, y^CIL_S, y^CIL_T)` plus
//! its origin task. At the end of task `t`, the memory is rebalanced so
//! every task keeps `⌊|M|/t⌋` records — with the `|M| mod t` remainder going
//! to the earliest tasks so the full capacity stays in use — and the
//! incoming task contributes its records with the highest intra-task
//! confidence `max(y^TIL_S) ∨ max(y^TIL_T)`.

use cdcl_telemetry as telemetry;
use cdcl_tensor::Tensor;

/// One rehearsal record.
#[derive(Debug, Clone)]
pub struct MemoryRecord {
    /// Origin task id (selects the frozen `K_i` used when replaying).
    pub task: usize,
    /// Source image `[c, h, w]`.
    pub x_source: Tensor,
    /// Paired target image `[c, h, w]`.
    pub x_target: Tensor,
    /// Task-local source label.
    pub label: usize,
    /// Global (CIL) class id.
    pub global_label: usize,
    /// Stored source CIL probabilities at storage time (logit replay).
    pub cil_probs_source: Vec<f32>,
    /// Stored target CIL probabilities at storage time.
    pub cil_probs_target: Vec<f32>,
    /// Intra-task confidence used for selection.
    pub confidence: f32,
}

/// Fixed-capacity rehearsal memory with per-task balancing.
#[derive(Debug, Default)]
pub struct RehearsalMemory {
    capacity: usize,
    records: Vec<MemoryRecord>,
}

impl RehearsalMemory {
    /// New memory holding at most `capacity` records (paper: 1000).
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity,
            records: Vec::new(),
        }
    }

    /// Rebuilds a memory from checkpointed state: `capacity` plus the exact
    /// record list, in stored order (snapshot loaders validate the records
    /// against the model before calling this).
    pub fn restore(capacity: usize, records: Vec<MemoryRecord>) -> Self {
        Self { capacity, records }
    }

    /// Total records stored.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when no records are stored.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Capacity in records.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// All records.
    pub fn records(&self) -> &[MemoryRecord] {
        &self.records
    }

    /// Records belonging to one task.
    pub fn task_records(&self, task: usize) -> impl Iterator<Item = &MemoryRecord> {
        self.records.iter().filter(move |r| r.task == task)
    }

    /// Per-task record quota after `tasks` tasks: every task gets
    /// `⌊capacity/tasks⌋`, and the `capacity % tasks` remainder goes to the
    /// earliest tasks (one extra record each), so no capacity is leaked.
    /// When `tasks > capacity` the base is 0 and the remainder rule
    /// degrades gracefully: the earliest `capacity` tasks keep one record
    /// each instead of the whole memory being emptied.
    fn quota(&self, tasks: usize, t: usize) -> usize {
        self.capacity / tasks + usize::from(t < self.capacity % tasks)
    }

    /// Finishes task `task` (0-based): keeps the top-confidence quota of
    /// every previous task and admits `candidates` (sorted by confidence,
    /// descending) up to the incoming task's quota. Candidates tagged with
    /// the wrong task are skipped with a telemetry warning rather than
    /// aborting the run.
    pub fn finish_task(&mut self, task: usize, mut candidates: Vec<MemoryRecord>) {
        let _span = telemetry::span("memory_rebalance").task(task);
        let before = candidates.len();
        candidates.retain(|c| c.task == task);
        if candidates.len() != before {
            telemetry::Event::new("warn")
                .name("mistagged_candidate")
                .task(task)
                .u64_field("skipped", (before - candidates.len()) as u64)
                .emit();
        }
        let tasks = task + 1;
        let mut kept: Vec<MemoryRecord> = Vec::with_capacity(self.capacity);
        for t in 0..task {
            let mut old: Vec<MemoryRecord> = self
                .records
                .iter()
                .filter(|r| r.task == t)
                .cloned()
                .collect();
            old.sort_by(|a, b| b.confidence.total_cmp(&a.confidence));
            old.truncate(self.quota(tasks, t));
            kept.extend(old);
        }
        candidates.sort_by(|a, b| b.confidence.total_cmp(&a.confidence));
        candidates.truncate(self.quota(tasks, task));
        kept.extend(candidates);
        self.records = kept;
        if telemetry::enabled() {
            for t in 0..tasks {
                telemetry::Event::new("scalar")
                    .name("memory_occupancy")
                    .task(t)
                    .value(self.task_records(t).count() as f64)
                    .emit();
            }
            telemetry::Event::new("scalar")
                .name("memory_total")
                .task(task)
                .value(self.records.len() as f64)
                .emit();
        }
    }

    /// Deterministic rotating mini-batches for replay: returns up to
    /// `batch` record indices starting at `cursor` (wrapping).
    pub fn replay_indices(&self, cursor: usize, batch: usize) -> Vec<usize> {
        if self.records.is_empty() || batch == 0 {
            return Vec::new();
        }
        (0..batch.min(self.records.len()))
            .map(|i| (cursor + i) % self.records.len())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(task: usize, confidence: f32, label: usize) -> MemoryRecord {
        MemoryRecord {
            task,
            x_source: Tensor::zeros(&[1, 2, 2]),
            x_target: Tensor::zeros(&[1, 2, 2]),
            label,
            global_label: label,
            cil_probs_source: vec![1.0],
            cil_probs_target: vec![1.0],
            confidence,
        }
    }

    #[test]
    fn first_task_takes_full_capacity() {
        let mut m = RehearsalMemory::new(10);
        let cands = (0..20).map(|i| record(0, i as f32, 0)).collect();
        m.finish_task(0, cands);
        assert_eq!(m.len(), 10);
        // highest confidence kept
        assert!(m.records().iter().all(|r| r.confidence >= 10.0));
    }

    #[test]
    fn rebalancing_shrinks_old_tasks() {
        let mut m = RehearsalMemory::new(12);
        m.finish_task(0, (0..20).map(|i| record(0, i as f32, 0)).collect());
        assert_eq!(m.len(), 12);
        m.finish_task(1, (0..20).map(|i| record(1, i as f32, 0)).collect());
        // quota = 12/2 = 6 per task
        assert_eq!(m.task_records(0).count(), 6);
        assert_eq!(m.task_records(1).count(), 6);
        m.finish_task(2, (0..20).map(|i| record(2, i as f32, 0)).collect());
        // quota = 4 per task
        assert_eq!(m.len(), 12);
        for t in 0..3 {
            assert_eq!(m.task_records(t).count(), 4);
        }
    }

    #[test]
    fn keeps_highest_confidence_of_old_tasks_when_shrinking() {
        let mut m = RehearsalMemory::new(4);
        m.finish_task(
            0,
            vec![record(0, 0.1, 0), record(0, 0.9, 1), record(0, 0.5, 2)],
        );
        m.finish_task(
            1,
            vec![record(1, 0.3, 0), record(1, 0.7, 1), record(1, 0.2, 2)],
        );
        // quota 2 each
        let t0: Vec<f32> = m.task_records(0).map(|r| r.confidence).collect();
        assert!(t0.contains(&0.9) && t0.contains(&0.5));
        let t1: Vec<f32> = m.task_records(1).map(|r| r.confidence).collect();
        assert!(t1.contains(&0.7) && t1.contains(&0.3));
    }

    #[test]
    fn zero_capacity_stores_nothing() {
        let mut m = RehearsalMemory::new(0);
        m.finish_task(0, vec![record(0, 1.0, 0)]);
        assert!(m.is_empty());
        assert!(m.replay_indices(0, 8).is_empty());
    }

    #[test]
    fn fewer_candidates_than_quota_is_fine() {
        let mut m = RehearsalMemory::new(100);
        m.finish_task(0, vec![record(0, 1.0, 0)]);
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn replay_indices_wrap() {
        let mut m = RehearsalMemory::new(5);
        m.finish_task(0, (0..5).map(|i| record(0, i as f32, 0)).collect());
        let idx = m.replay_indices(3, 4);
        assert_eq!(idx, vec![3, 4, 0, 1]);
        let idx = m.replay_indices(0, 99);
        assert_eq!(idx.len(), 5, "batch larger than memory truncates");
    }

    #[test]
    fn mistagged_candidates_are_skipped_not_fatal() {
        let mut m = RehearsalMemory::new(5);
        // A malformed candidate (wrong task tag) must not abort the run —
        // it is dropped; well-formed candidates in the same batch survive.
        m.finish_task(0, vec![record(0, 1.0, 0)]);
        m.finish_task(1, vec![record(0, 1.0, 0), record(1, 0.5, 1)]);
        assert_eq!(m.task_records(1).count(), 1);
        assert_eq!(m.task_records(1).next().unwrap().confidence, 0.5);
        // Task 0's stock is untouched by the mistagged record.
        assert_eq!(m.task_records(0).count(), 1);
    }

    #[test]
    fn remainder_goes_to_earliest_tasks_without_leak() {
        // capacity 10 over 3 tasks: ⌊10/3⌋ = 3 each with remainder 1 to the
        // earliest task — 4 + 3 + 3 = 10, nothing leaked.
        let mut m = RehearsalMemory::new(10);
        for task in 0..3 {
            m.finish_task(task, (0..20).map(|i| record(task, i as f32, 0)).collect());
        }
        assert_eq!(m.len(), 10);
        assert_eq!(m.task_records(0).count(), 4);
        assert_eq!(m.task_records(1).count(), 3);
        assert_eq!(m.task_records(2).count(), 3);
    }

    #[test]
    fn paper_capacity_keeps_all_1000_records_at_7_tasks() {
        // The regression the old ⌊capacity/t⌋-only rule hit: 1000/7 = 142,
        // 142·7 = 994 — six records leaked every rebalance.
        let mut m = RehearsalMemory::new(1000);
        for task in 0..7 {
            m.finish_task(task, (0..200).map(|i| record(task, i as f32, 0)).collect());
        }
        assert_eq!(m.len(), 1000, "capacity must not leak via the remainder");
        for t in 0..6 {
            assert_eq!(m.task_records(t).count(), 143);
        }
        assert_eq!(m.task_records(6).count(), 142);
    }

    #[test]
    fn more_tasks_than_capacity_keeps_one_record_per_earliest_task() {
        // The headline regression: with tasks > capacity the old quota was
        // 0 and finish_task discarded the entire memory. Now the earliest
        // `capacity` tasks retain one record each.
        let mut m = RehearsalMemory::new(3);
        for task in 0..6 {
            m.finish_task(task, (0..5).map(|i| record(task, i as f32, 0)).collect());
        }
        assert!(!m.is_empty(), "memory must never be emptied by rebalance");
        assert_eq!(m.len(), 3);
        for t in 0..3 {
            assert_eq!(m.task_records(t).count(), 1, "task {t}");
        }
        for t in 3..6 {
            assert_eq!(m.task_records(t).count(), 0, "task {t}");
        }
    }
}
