//! Always-on kernel-layer counters.
//!
//! Three process-wide relaxed atomics track where the math goes: GEMM call
//! count, total fused-multiply-add volume, and how many worker threads the
//! pool has spawned. One `fetch_add` per GEMM call (or per spawned thread)
//! is noise next to the kernel itself, so the counters stay on even when
//! telemetry is not — they never touch the data path, so results are
//! unaffected.
//!
//! `cdcl-telemetry` producers read [`counter_snapshot`] at phase boundaries
//! and emit the deltas; benchmarks use [`reset_counters`] between cases.

use std::sync::atomic::{AtomicU64, Ordering};

static GEMM_CALLS: AtomicU64 = AtomicU64::new(0);
static GEMM_FMAS: AtomicU64 = AtomicU64::new(0);
static POOL_SPAWNS: AtomicU64 = AtomicU64::new(0);

/// A point-in-time reading of the kernel counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KernelCounters {
    /// GEMM kernel invocations (one per `gemm_*` call; a batched call
    /// counts once).
    pub gemm_calls: u64,
    /// Fused multiply-add volume: Σ `m·k·n` (× batch) over all GEMM calls.
    pub gemm_fmas: u64,
    /// Worker threads spawned by parallel regions (inline/serial regions
    /// spawn none).
    pub pool_spawns: u64,
}

impl KernelCounters {
    /// Counter increments since `earlier` (saturating, in case a benchmark
    /// reset the globals in between).
    pub fn delta_since(&self, earlier: &KernelCounters) -> KernelCounters {
        KernelCounters {
            gemm_calls: self.gemm_calls.saturating_sub(earlier.gemm_calls),
            gemm_fmas: self.gemm_fmas.saturating_sub(earlier.gemm_fmas),
            pool_spawns: self.pool_spawns.saturating_sub(earlier.pool_spawns),
        }
    }
}

/// Reads all counters (relaxed; values from concurrently running kernels
/// may or may not be included, which is fine for telemetry).
pub fn counter_snapshot() -> KernelCounters {
    KernelCounters {
        // ordering: stat — monotonic telemetry counter; readers tolerate staleness.
        gemm_calls: GEMM_CALLS.load(Ordering::Relaxed),
        gemm_fmas: GEMM_FMAS.load(Ordering::Relaxed),
        pool_spawns: POOL_SPAWNS.load(Ordering::Relaxed),
    }
}

/// Zeroes all counters (benchmark hygiene; telemetry uses deltas instead).
pub fn reset_counters() {
    // ordering: stat — monotonic telemetry counter; readers tolerate staleness.
    GEMM_CALLS.store(0, Ordering::Relaxed);
    GEMM_FMAS.store(0, Ordering::Relaxed);
    POOL_SPAWNS.store(0, Ordering::Relaxed);
}

/// Records one GEMM invocation of `fmas` fused multiply-adds.
#[inline]
pub(crate) fn record_gemm(fmas: u64) {
    // ordering: stat — monotonic telemetry counter; readers tolerate staleness.
    GEMM_CALLS.fetch_add(1, Ordering::Relaxed);
    GEMM_FMAS.fetch_add(fmas, Ordering::Relaxed);
}

/// Records `n` worker-thread spawns in a parallel region.
#[inline]
pub(crate) fn record_spawns(n: u64) {
    // ordering: stat — monotonic telemetry counter; readers tolerate staleness.
    POOL_SPAWNS.fetch_add(n, Ordering::Relaxed);
}

static OBS_GEMM_CALLS: cdcl_obs::Counter = cdcl_obs::Counter::new(
    "cdcl_kernel_gemm_calls_total",
    "GEMM kernel invocations since process start",
);
static OBS_GEMM_FMAS: cdcl_obs::Counter = cdcl_obs::Counter::new(
    "cdcl_kernel_gemm_fmas_total",
    "Fused multiply-add volume across all GEMM calls",
);
static OBS_POOL_SPAWNS: cdcl_obs::Counter = cdcl_obs::Counter::new(
    "cdcl_kernel_pool_spawns_total",
    "Worker threads spawned by parallel kernel regions",
);

/// Mirrors the always-on kernel atomics into the `cdcl-obs` registry.
/// The kernels keep their own local atomics (one `fetch_add`, no enabled
/// check, no registry indirection on the hot path); collectors call this at
/// scrape or health-snapshot time so `/metrics` sees current values.
pub fn publish_registry() {
    let snap = counter_snapshot();
    OBS_GEMM_CALLS.store(snap.gemm_calls);
    OBS_GEMM_FMAS.store(snap.gemm_fmas);
    OBS_POOL_SPAWNS.store(snap.pool_spawns);
    crate::pool::publish_registry();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deltas_track_gemm_volume() {
        let before = counter_snapshot();
        crate::kernels::gemm_nn(&mut [0.0; 4], &[1.0; 6], &[1.0; 6], 2, 3, 2);
        crate::kernels::gemm_nt(&mut [0.0; 4], &[1.0; 6], &[1.0; 6], 2, 3, 2);
        let delta = counter_snapshot().delta_since(&before);
        assert_eq!(delta.gemm_calls, 2);
        assert_eq!(delta.gemm_fmas, (2 * 3 * 2) + (2 * 3 * 2));
    }

    #[test]
    fn batched_calls_count_once_with_full_volume() {
        let before = counter_snapshot();
        crate::kernels::gemm_nn_batched(&mut [0.0; 8], &[1.0; 8], &[1.0; 8], 2, 2, 2, 2);
        let delta = counter_snapshot().delta_since(&before);
        assert_eq!(delta.gemm_calls, 1);
        assert_eq!(delta.gemm_fmas, 2 * 2 * 2 * 2);
    }
}
