//! Tests for the deterministic `resume_latest` contract (DESIGN.md §10):
//! the newest checkpoint is chosen by the **task cursor recorded in META**,
//! not by file name or directory order, and a tie on the newest cursor is
//! refused with a typed [`SnapshotError::AmbiguousLatest`] that lists every
//! tied candidate in sorted order — resuming an arbitrary one would
//! silently fork the run.

use cdcl_core::{CdclConfig, CdclTrainer, ContinualLearner};
use cdcl_data::{mnist_usps, MnistUspsDirection, Scale};
use cdcl_snapshot::SnapshotError;
use std::path::{Path, PathBuf};
use std::sync::OnceLock;

/// Snapshot bytes at task cursors 1 and 2 from one smoke run. Built once;
/// every test only needs the bytes.
fn snapshots() -> &'static (Vec<u8>, Vec<u8>) {
    static BYTES: OnceLock<(Vec<u8>, Vec<u8>)> = OnceLock::new();
    BYTES.get_or_init(|| {
        let stream = mnist_usps(MnistUspsDirection::MnistToUsps, Scale::Smoke);
        let mut config = CdclConfig::smoke();
        config.epochs = 2;
        config.warmup_epochs = 1;
        let mut trainer = CdclTrainer::new(config);
        trainer.learn_task(&stream.tasks[0]);
        let cursor1 = trainer.snapshot_bytes();
        trainer.learn_task(&stream.tasks[1]);
        (cursor1, trainer.snapshot_bytes())
    })
}

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cdcl-resume-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create checkpoint dir");
    dir
}

fn put(dir: &Path, name: &str, bytes: &[u8]) -> PathBuf {
    let path = dir.join(name);
    std::fs::write(&path, bytes).expect("write checkpoint");
    path
}

#[test]
fn picks_the_largest_cursor_regardless_of_file_names() {
    let (cursor1, cursor2) = snapshots();
    let dir = fresh_dir("pick");
    // Lexicographically the cursor-2 file sorts FIRST: a name-ordered
    // "latest" would wrongly resume the older checkpoint.
    put(&dir, "a-newer.cdclsnap", cursor2);
    put(&dir, "z-older.cdclsnap", cursor1);
    put(&dir, "notes.txt", b"ignored: wrong extension");
    let resumed = CdclTrainer::resume_latest(&dir).expect("unambiguous resume");
    assert_eq!(resumed.model().num_tasks(), 2);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn tie_on_newest_cursor_is_a_typed_error_listing_all_candidates() {
    let (cursor1, cursor2) = snapshots();
    let dir = fresh_dir("tie");
    put(&dir, "older.cdclsnap", cursor1);
    let tied_b = put(&dir, "run-b.cdclsnap", cursor2);
    let tied_a = put(&dir, "run-a.cdclsnap", cursor2);
    match CdclTrainer::resume_latest(&dir) {
        Err(SnapshotError::AmbiguousLatest { cursor, candidates }) => {
            assert_eq!(cursor, 2);
            // Every tied path, sorted, and only the tied ones — the older
            // checkpoint must not be offered.
            assert_eq!(
                candidates,
                vec![tied_a.display().to_string(), tied_b.display().to_string()]
            );
            // The operator's documented way out works: pick one explicitly.
            let picked = CdclTrainer::resume_from(&tied_a).expect("explicit resume");
            assert_eq!(picked.model().num_tasks(), 2);
        }
        Err(other) => panic!("expected AmbiguousLatest, got {other:?}"),
        Ok(_) => panic!("a tied directory must not resume"),
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn empty_directory_is_a_typed_error() {
    let dir = fresh_dir("empty");
    assert!(CdclTrainer::resume_latest(&dir).is_err());
    let _ = std::fs::remove_dir_all(&dir);
}
