//! End-to-end telemetry: a traced smoke run must produce a parseable JSONL
//! stream covering every training phase, and tracing must not perturb
//! training — the traced and untraced runs are **bitwise identical**.

use std::path::PathBuf;
use std::sync::Mutex;

use cdcl::core::{CdclConfig, CdclTrainer, ContinualLearner};
use cdcl::data::{mnist_usps, MnistUspsDirection, Scale};
use cdcl::nn::Module;
use cdcl::telemetry;
use serde::Value;

/// The telemetry sink is process-global; tests that install one must not
/// overlap.
static TRACE_GUARD: Mutex<()> = Mutex::new(());

fn tmp_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "cdcl-integration-{tag}-{}.jsonl",
        std::process::id()
    ))
}

/// Trains two tasks of the smoke stream and evaluates both scenarios,
/// returning the final parameter tensors.
fn train_two_tasks() -> Vec<(String, Vec<f32>)> {
    let stream = mnist_usps(MnistUspsDirection::MnistToUsps, Scale::Smoke);
    let mut config = CdclConfig::smoke();
    config.epochs = 3;
    config.warmup_epochs = 1;
    let mut trainer = CdclTrainer::new(config);
    for task in stream.tasks.iter().take(2) {
        trainer.learn_task(task);
    }
    trainer.eval_til(0, &stream.tasks[0].target_test);
    trainer.eval_cil(0, &stream.tasks[0].target_test);
    trainer
        .model()
        .params()
        .into_iter()
        .map(|p| (p.name(), p.value().data().to_vec()))
        .collect()
}

#[test]
fn traced_run_emits_parseable_jsonl_covering_every_phase() {
    let _g = TRACE_GUARD.lock().unwrap();
    let path = tmp_path("coverage");
    telemetry::set_trace_file(Some(&path));
    train_two_tasks();
    telemetry::set_trace_file(None); // flushes and closes
    let text = std::fs::read_to_string(&path).expect("trace file readable");
    std::fs::remove_file(&path).ok();

    let mut phases = Vec::new();
    let mut scalars = Vec::new();
    let mut counters = 0usize;
    let mut last_seq: Option<u64> = None;
    for line in text.lines() {
        let v: Value = serde_json::from_str(line)
            .unwrap_or_else(|e| panic!("unparseable trace line {line:?}: {e}"));
        // seq strictly increases in file order.
        let seq = match v.field("seq") {
            Some(Value::Num(n)) => *n as u64,
            other => panic!("missing/invalid seq: {other:?}"),
        };
        if let Some(prev) = last_seq {
            assert!(seq > prev, "seq went backwards: {prev} -> {seq}");
        }
        last_seq = Some(seq);
        let name = match v.field("name") {
            Some(Value::Str(s)) => s.clone(),
            _ => String::new(),
        };
        match v.field("ev") {
            Some(Value::Str(ev)) if ev == "phase" => phases.push(name),
            Some(Value::Str(ev)) if ev == "scalar" => scalars.push(name),
            Some(Value::Str(ev)) if ev == "counters" => counters += 1,
            _ => {}
        }
    }

    for phase in [
        "warmup",
        "adaptation",
        "centroid_fit",
        "pseudo_assign",
        "pair_filter",
        "replay",
        "memory_select",
        "memory_rebalance",
        "eval_til",
        "eval_cil",
    ] {
        assert!(
            phases.iter().any(|p| p == phase),
            "phase `{phase}` missing from trace; saw {phases:?}"
        );
    }
    for scalar in [
        "loss_warmup",
        "loss_til",
        "loss_cil",
        "loss_rehearsal",
        "loss_total",
        "grad_norm",
        "pair_agreement",
        "pseudo_flip_rate",
        "memory_occupancy",
        "memory_total",
    ] {
        assert!(
            scalars.iter().any(|s| s == scalar),
            "scalar `{scalar}` missing from trace"
        );
    }
    assert_eq!(counters, 2, "one kernel-counters event per task");
}

#[test]
fn tracing_does_not_perturb_training() {
    let _g = TRACE_GUARD.lock().unwrap();
    let path = tmp_path("bitwise");
    telemetry::set_trace_file(Some(&path));
    let traced = train_two_tasks();
    telemetry::set_trace_file(None);
    std::fs::remove_file(&path).ok();
    let untraced = train_two_tasks();

    assert_eq!(traced.len(), untraced.len());
    for ((name, a), (base_name, b)) in traced.iter().zip(untraced.iter()) {
        assert_eq!(name, base_name);
        // Bitwise equality on the raw f32 data: the telemetry layer only
        // *observes* training — it must never change a single bit of it.
        assert_eq!(a, b, "param {name} diverged under tracing");
    }
}
