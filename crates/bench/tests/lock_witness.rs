//! Runtime lock-order witness cross-validation (DESIGN.md §14).
//!
//! Installs the `cdcl-check` recorder behind the `cdcl-obs` lock hook,
//! drives the two blocking-sensitive subsystems the static analysis
//! watches — the size-classed buffer pool and the serving snapshot
//! registry — and then checks the contract both ways that matter:
//!
//! * the workload actually exercised the instrumented locks (otherwise
//!   the validation below would pass vacuously), and
//! * every (held → acquired) edge observed at runtime exists in the
//!   static lock-order graph. A runtime edge the static pass cannot see
//!   means the analyzer lost a guard scope or a call path.
//!
//! Kept as a single `#[test]` so the process-global recorder sees one
//! deterministic workload rather than interleavings of parallel tests.

use cdcl_bench::serve::registry::SnapshotRegistry;
use cdcl_check::{lockorder, witness};
use cdcl_core::{CdclConfig, CdclTrainer, ContinualLearner};
use cdcl_data::{mnist_usps, MnistUspsDirection, Scale};
use std::path::Path;

fn smoke_trainer() -> CdclTrainer {
    let stream = mnist_usps(MnistUspsDirection::MnistToUsps, Scale::Smoke);
    let mut config = CdclConfig::smoke();
    config.epochs = 1;
    config.warmup_epochs = 1;
    let mut trainer = CdclTrainer::new(config);
    trainer.learn_task(&stream.tasks[0]);
    trainer
}

#[test]
fn runtime_lock_edges_exist_in_static_graph() {
    witness::install();
    witness::reset();

    // --- Pool workload: take/give cycles through every wrapper path. ---
    let pool = cdcl_tensor::pool::global();
    let a = pool.take_uninit(1024);
    let b = pool.take_zeroed(4096);
    pool.give(a);
    pool.give(b);
    pool.clear();

    // --- Registry workload: insert, swap, and the MODELS verb (which
    // reads each slot's current version *under* the models read lock —
    // the one real nested acquisition in the serving plane). ---
    let registry = SnapshotRegistry::new(0);
    registry
        .insert_trainer("default", smoke_trainer(), None)
        .expect("register model");
    // Hold the Arc returned before the reload so the displaced version's
    // last reference is not dropped under the registry's write guard.
    let slot = registry.get(Some("default")).expect("slot exists");
    let before_reload = slot.current();
    let _json = registry.models_json();
    let _primary = registry.primary();
    assert_eq!(registry.len(), 1);
    drop(before_reload);

    // --- The workload exercised the instrumented locks. ---
    let seen = witness::seen_locks();
    for label in ["pool.classes", "registry.models", "registry.current"] {
        assert!(
            seen.contains(&label.to_string()),
            "never saw {label}: {seen:?}"
        );
    }
    let edges = witness::edges();
    assert!(
        edges.contains(&(
            "registry.models".to_string(),
            "registry.current".to_string()
        )),
        "models_json must nest current under models: {edges:?}"
    );

    // --- Cross-validation: runtime ⊆ static. ---
    let manifest = Path::new(env!("CARGO_MANIFEST_DIR"));
    let root = manifest
        .parent()
        .and_then(Path::parent)
        .expect("workspace root");
    let report = lockorder::analyze_workspace(root);
    assert!(
        !report.fns.is_empty(),
        "static analysis saw no functions — wrong root?"
    );
    let missing = witness::missing_from_static(&report);
    assert!(
        missing.is_empty(),
        "runtime lock edges missing from the static graph: {missing:?}"
    );
}
