//! The paper's *inter- intra-task cross-attention* (§IV-A, Eqs. 2–3).
//!
//! Queries `Q` and values `V` come from **global** projections shared across
//! every task; keys `K_i` and biases `b_i` come from **task-specific**
//! projections. When task `i` finishes, its `(K_i, b_i)` projections are
//! frozen, preserving the feature alignment learned for that task while the
//! global `Q`/`V` keep adapting — this is the mechanism the paper credits
//! for mitigating *feature-alignment catastrophic forgetting*.

use cdcl_autograd::{Graph, Param, Var};
use rand::Rng;

use crate::layers::Linear;
use crate::Module;

/// Learning-rate multiplier applied to freshly created task key/bias
/// projections (see [`TaskKeyBank::add_task`]).
const KEY_LR_BOOST: f32 = 8.0;

/// Whether a layer uses the paper's task-keyed attention or a standard
/// single-projection attention (the "Simple attention" ablation row of
/// Table IV).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AttentionMode {
    /// Per-task `K_i`/`b_i` projections, frozen when their task ends.
    TaskKeyed,
    /// One shared key/bias projection for all tasks.
    Simple,
}

/// The bank of per-task key/bias projections of one attention layer.
///
/// In `Simple` mode the bank holds exactly one entry that is never frozen.
pub struct TaskKeyBank {
    /// Per-task key projections `W_{K_i} ∈ R^{d×d}`.
    keys: Vec<Linear>,
    /// Per-task bias projections `W_{b_i} ∈ R^{d×1}` (token-wise scalar).
    biases: Vec<Linear>,
    mode: AttentionMode,
    d: usize,
    name: String,
}

impl TaskKeyBank {
    /// Empty bank; call [`TaskKeyBank::add_task`] before the first forward.
    pub fn new(name: &str, d: usize, mode: AttentionMode) -> Self {
        Self {
            keys: Vec::new(),
            biases: Vec::new(),
            mode,
            d,
            name: name.to_string(),
        }
    }

    /// Number of task slots currently instantiated.
    pub fn num_tasks(&self) -> usize {
        self.keys.len()
    }

    /// Creates the `(K_i, b_i)` pair for a new task and freezes all previous
    /// pairs. In `Simple` mode only the first call allocates; later calls
    /// keep reusing (and training) the single shared pair.
    ///
    /// The paper's Algorithm 1 random-initialises every new pair and then
    /// trains for 125 epochs; at this reproduction's much smaller per-task
    /// epoch budget a random `K_i` stays under-trained, so new pairs are
    /// *warm-started* from the previous task's (frozen) values — the
    /// mechanism (per-task keys, frozen history) is unchanged, only the
    /// starting point of the new task's adaptation (DESIGN.md §2).
    pub fn add_task<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        if self.mode == AttentionMode::Simple && !self.keys.is_empty() {
            return;
        }
        for k in &self.keys {
            for p in k.params() {
                p.set_trainable(false);
            }
        }
        for b in &self.biases {
            for p in b.params() {
                p.set_trainable(false);
            }
        }
        let i = self.keys.len();
        let key = Linear::new(rng, &format!("{}.key{i}", self.name), self.d, self.d, false);
        let bias = Linear::new(rng, &format!("{}.bias{i}", self.name), self.d, 1, false);
        if let (Some(prev_k), Some(prev_b)) = (self.keys.last(), self.biases.last()) {
            key.weight().set_value(prev_k.weight().value());
            bias.weight().set_value(prev_b.weight().value());
        }
        // Fresh task projections adapt at a boosted rate so they converge
        // within the scaled-down per-task epoch budget (DESIGN.md §2).
        for p in key.params().iter().chain(bias.params().iter()) {
            p.set_lr_scale(KEY_LR_BOOST);
        }
        self.keys.push(key);
        self.biases.push(bias);
    }

    /// Resolves the bank slot used for `task` (always 0 in `Simple` mode).
    fn slot(&self, task: usize) -> usize {
        match self.mode {
            AttentionMode::Simple => 0,
            AttentionMode::TaskKeyed => {
                assert!(
                    task < self.keys.len(),
                    "task {task} has no key projection (bank has {})",
                    self.keys.len()
                );
                task
            }
        }
    }

    /// Projects tokens `x: [b, n, d]` into task-`i` keys `[b, n, d]`.
    pub fn project_keys(&self, g: &mut Graph, x: Var, task: usize) -> Var {
        self.keys[self.slot(task)].forward(g, x)
    }

    /// Projects tokens `x: [b, n, d]` into the task-`i` bias, returned as
    /// `[b, 1, n]` ready to broadcast onto attention scores.
    pub fn project_bias(&self, g: &mut Graph, x: Var, task: usize) -> Var {
        let b = self.biases[self.slot(task)].forward(g, x); // [b, n, 1]
        g.transpose_last2(b) // [b, 1, n]
    }

    /// Parameters of every *retired* task slot — all `(K_i, b_i)` pairs
    /// except the newest one. These are exactly the projections
    /// [`TaskKeyBank::add_task`] freezes, so the graph verifier can demand
    /// they stay non-trainable with zero gradient. Empty in `Simple` mode
    /// (its single shared pair is never frozen).
    pub fn frozen_params(&self) -> Vec<Param> {
        if self.mode == AttentionMode::Simple || self.keys.len() < 2 {
            return Vec::new();
        }
        let retired = self.keys.len() - 1;
        self.keys[..retired]
            .iter()
            .chain(self.biases[..retired].iter())
            .flat_map(Module::params)
            .collect()
    }

    /// Whether the `(K_i, b_i)` pair of `task` is currently trainable.
    pub fn task_trainable(&self, task: usize) -> bool {
        self.keys[self.slot(task)]
            .params()
            .iter()
            .all(Param::trainable)
    }
}

impl Module for TaskKeyBank {
    fn params(&self) -> Vec<Param> {
        self.keys
            .iter()
            .chain(self.biases.iter())
            .flat_map(Module::params)
            .collect()
    }
}

/// One inter- intra-task (cross-)attention block.
///
/// * **Self path** (Eq. 2): `x_L = softmax((Q K_iᵀ + b_i)/√d) V` with `Q`,
///   `K_i`, `b_i`, `V` all projected from the same token sequence.
/// * **Cross path** (Eq. 3): `Q` from the source tokens, `K_i`/`b_i`/`V`
///   from the target tokens, producing the mixed signal of Figure 1.
///
/// The paper's Eqs. 2–3 write the attention without a softmax; CCT (the
/// architecture they build on) applies one. The `softmax` flag keeps both
/// variants available; the default (and all experiments) use `true`. See
/// DESIGN.md §2.
pub struct InterIntraAttention {
    wq: Linear,
    wv: Linear,
    bank: TaskKeyBank,
    d: usize,
    softmax: bool,
}

impl InterIntraAttention {
    /// New block with global `Q`/`V` projections and an empty task bank.
    pub fn new<R: Rng + ?Sized>(
        rng: &mut R,
        name: &str,
        d: usize,
        mode: AttentionMode,
        softmax: bool,
    ) -> Self {
        Self {
            wq: Linear::new(rng, &format!("{name}.wq"), d, d, false),
            wv: Linear::new(rng, &format!("{name}.wv"), d, d, false),
            bank: TaskKeyBank::new(&format!("{name}.bank"), d, mode),
            d,
            softmax,
        }
    }

    /// Access to the task bank (for freezing checks in tests).
    pub fn bank(&self) -> &TaskKeyBank {
        &self.bank
    }

    /// Retired-task `(K_i, b_i)` parameters (see
    /// [`TaskKeyBank::frozen_params`]).
    pub fn frozen_params(&self) -> Vec<Param> {
        self.bank.frozen_params()
    }

    /// Adds a task slot (freezing previous ones).
    pub fn add_task<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        self.bank.add_task(rng);
    }

    /// Shared attention core: queries from `q_tokens`, keys/bias/values from
    /// `kv_tokens`.
    fn attend(&self, g: &mut Graph, q_tokens: Var, kv_tokens: Var, task: usize) -> Var {
        let q = self.wq.forward(g, q_tokens); // [b, n, d]
        let v = self.wv.forward(g, kv_tokens); // [b, n, d]
        let k = self.bank.project_keys(g, kv_tokens, task); // [b, n, d]
        let bias = self.bank.project_bias(g, kv_tokens, task); // [b, 1, n]

        // Fused Q·Kᵀ: reads K in its stored [b, n, d] layout instead of
        // materialising a [b, d, n] copy (see cdcl_tensor::kernels).
        let scores = g.matmul_nt(q, k); // [b, n, n]
        let scores = g.scale(scores, 1.0 / (self.d as f32).sqrt());
        let scores = g.add(scores, bias);
        let attn = if self.softmax {
            g.softmax_last(scores)
        } else {
            scores
        };
        g.matmul(attn, v) // [b, n, d]
    }

    /// Self-attention over a single domain's tokens (Eq. 2).
    pub fn forward_self(&self, g: &mut Graph, x: Var, task: usize) -> Var {
        self.attend(g, x, x, task)
    }

    /// Cross-attention: source queries against target keys/values (Eq. 3).
    pub fn forward_cross(&self, g: &mut Graph, x_src: Var, x_tgt: Var, task: usize) -> Var {
        self.attend(g, x_src, x_tgt, task)
    }
}

impl Module for InterIntraAttention {
    fn params(&self) -> Vec<Param> {
        let mut p = self.wq.params();
        p.extend(self.wv.params());
        p.extend(self.bank.params());
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdcl_tensor::Tensor;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn tokens(rng: &mut SmallRng, b: usize, n: usize, d: usize) -> Tensor {
        Tensor::randn(rng, &[b, n, d], 1.0)
    }

    #[test]
    fn self_attention_shape() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut attn = InterIntraAttention::new(&mut rng, "a", 8, AttentionMode::TaskKeyed, true);
        attn.add_task(&mut rng);
        let mut g = Graph::new();
        let x = g.input(tokens(&mut rng, 2, 5, 8));
        let y = attn.forward_self(&mut g, x, 0);
        assert_eq!(g.value(y).shape(), &[2, 5, 8]);
    }

    #[test]
    fn cross_attention_shape_and_differs_from_self() {
        let mut rng = SmallRng::seed_from_u64(2);
        let mut attn = InterIntraAttention::new(&mut rng, "a", 8, AttentionMode::TaskKeyed, true);
        attn.add_task(&mut rng);
        let mut g = Graph::new();
        let xs = g.input(tokens(&mut rng, 2, 5, 8));
        let xt = g.input(tokens(&mut rng, 2, 5, 8));
        let cross = attn.forward_cross(&mut g, xs, xt, 0);
        let selfy = attn.forward_self(&mut g, xs, 0);
        assert_eq!(g.value(cross).shape(), &[2, 5, 8]);
        // mixed output differs from the pure source output
        assert_ne!(g.value(cross).data(), g.value(selfy).data());
    }

    #[test]
    fn cross_with_identical_inputs_equals_self() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut attn = InterIntraAttention::new(&mut rng, "a", 4, AttentionMode::TaskKeyed, true);
        attn.add_task(&mut rng);
        let t = tokens(&mut rng, 1, 3, 4);
        let mut g = Graph::new();
        let a = g.input(t.clone());
        let b = g.input(t);
        let cross = attn.forward_cross(&mut g, a, b, 0);
        let selfy = attn.forward_self(&mut g, a, 0);
        cdcl_tensor::assert_close(g.value(cross).data(), g.value(selfy).data(), 1e-6);
    }

    #[test]
    fn add_task_freezes_previous_keys() {
        let mut rng = SmallRng::seed_from_u64(4);
        let mut bank = TaskKeyBank::new("b", 4, AttentionMode::TaskKeyed);
        bank.add_task(&mut rng);
        assert!(bank.task_trainable(0));
        bank.add_task(&mut rng);
        assert!(!bank.task_trainable(0), "task 0 keys must freeze");
        assert!(bank.task_trainable(1));
        assert_eq!(bank.num_tasks(), 2);
    }

    #[test]
    fn frozen_keys_receive_no_gradient() {
        let mut rng = SmallRng::seed_from_u64(5);
        let mut attn = InterIntraAttention::new(&mut rng, "a", 4, AttentionMode::TaskKeyed, true);
        attn.add_task(&mut rng);
        attn.add_task(&mut rng); // freezes task 0
        let frozen: Vec<Param> = attn
            .params()
            .into_iter()
            .filter(|p| !p.trainable())
            .collect();
        assert!(!frozen.is_empty());
        let mut g = Graph::new();
        let x = g.input(tokens(&mut rng, 1, 3, 4));
        // Forward through the frozen task-0 keys.
        let y = attn.forward_self(&mut g, x, 0);
        let y2 = g.mul(y, y);
        let l = g.sum_all(y2);
        g.backward(l);
        for p in frozen {
            assert_eq!(
                p.grad().sq_norm(),
                0.0,
                "frozen param {} got grads",
                p.name()
            );
        }
    }

    #[test]
    fn simple_mode_reuses_one_slot() {
        let mut rng = SmallRng::seed_from_u64(6);
        let mut bank = TaskKeyBank::new("b", 4, AttentionMode::Simple);
        bank.add_task(&mut rng);
        bank.add_task(&mut rng);
        bank.add_task(&mut rng);
        assert_eq!(bank.num_tasks(), 1);
        assert!(bank.task_trainable(2), "simple mode never freezes");
    }

    #[test]
    #[should_panic(expected = "has no key projection")]
    fn unknown_task_panics_in_task_keyed_mode() {
        let mut rng = SmallRng::seed_from_u64(7);
        let mut attn = InterIntraAttention::new(&mut rng, "a", 4, AttentionMode::TaskKeyed, true);
        attn.add_task(&mut rng);
        let mut g = Graph::new();
        let x = g.input(tokens(&mut rng, 1, 3, 4));
        attn.forward_self(&mut g, x, 5);
    }

    #[test]
    fn no_softmax_variant_runs() {
        let mut rng = SmallRng::seed_from_u64(8);
        let mut attn = InterIntraAttention::new(&mut rng, "a", 4, AttentionMode::TaskKeyed, false);
        attn.add_task(&mut rng);
        let mut g = Graph::new();
        let x = g.input(tokens(&mut rng, 1, 3, 4));
        let y = attn.forward_self(&mut g, x, 0);
        assert_eq!(g.value(y).shape(), &[1, 3, 4]);
    }
}
