//! A zero-dependency Rust lexer for the analysis passes (DESIGN.md §14).
//!
//! The old engine masked sources with an ad-hoc char scanner; every pass
//! that needed structure (test-region exclusion, metric-name extraction)
//! re-derived it from the masked text. This module lexes a source file once
//! into a flat token stream with line provenance, and everything else —
//! masking, `#[cfg(test)]` region tracking, the lock-order pass, the
//! atomic-ordering audit — is built on the tokens.
//!
//! It is *not* a parser: it recognises exactly the lexical shapes the
//! passes need and nothing more. The tricky cases it must get right:
//!
//! * raw strings `r"…"` / `r#"…"#` / `br##"…"##` (hash-counted close);
//! * nested block comments `/* a /* b */ c */`;
//! * char literals vs lifetimes: `'a'` is a literal, `'a` / `'static` are
//!   lifetimes (disambiguated by the position of the closing quote);
//! * string escapes, including the `\<newline>` line continuation;
//! * numeric literals with suffixes and exponents (`1.0e-3`, `0f64`,
//!   `0x1F`), so a `.` inside a float never reads as a method dot.
//!
//! Unterminated literals and comments lex to end-of-file rather than
//! erroring: the linter must degrade gracefully on torn input.

/// Lexical class of one token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`fn`, `lock`, `Ordering`, …).
    Ident,
    /// Lifetime (`'a`, `'static`) — the quote plus the ident.
    Lifetime,
    /// Char literal, quotes included (`'x'`, `'\n'`, `b'x'`).
    CharLit,
    /// String literal, quotes included (`"…"`, `b"…"`).
    StrLit,
    /// Raw string literal, full `r#"…"#` form included.
    RawStr,
    /// Numeric literal including suffix/exponent (`1.0e-3`, `0u64`).
    Num,
    /// One punctuation char (`.`, `(`, `{`, `:`, …).
    Punct,
    /// `// …` to end of line.
    LineComment,
    /// `/* … */`, nesting handled; may span lines.
    BlockComment,
}

/// One token: kind, half-open char span into the source's char vec, and
/// the 1-indexed line its first char sits on.
#[derive(Debug, Clone)]
pub struct Tok {
    pub kind: TokKind,
    /// Start char index (inclusive).
    pub start: usize,
    /// End char index (exclusive).
    pub end: usize,
    /// 1-indexed line of `start`.
    pub line: usize,
    /// The token's text.
    pub text: String,
}

impl Tok {
    /// True for the two comment kinds.
    pub fn is_comment(&self) -> bool {
        matches!(self.kind, TokKind::LineComment | TokKind::BlockComment)
    }

    /// Ident token with exactly this text.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    /// Punct token with exactly this char.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct && self.text.len() == 1 && self.text.starts_with(c)
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Lexes `src` into a token stream. Whitespace is dropped (line numbers
/// carry position); everything else, comments included, becomes a token.
pub fn lex(src: &str) -> Vec<Tok> {
    let b: Vec<char> = src.chars().collect();
    let mut toks = Vec::new();
    let mut i = 0usize;
    let mut line = 1usize;
    let push = |toks: &mut Vec<Tok>, kind, start: usize, end: usize, line: usize, b: &[char]| {
        toks.push(Tok {
            kind,
            start,
            end,
            line,
            text: b[start..end].iter().collect(),
        });
    };
    while i < b.len() {
        let c = b[i];
        let start = i;
        let start_line = line;
        // Whitespace: advance the line counter, emit nothing.
        if c.is_whitespace() {
            if c == '\n' {
                line += 1;
            }
            i += 1;
            continue;
        }
        // Line comment (and `///` / `//!` doc comments).
        if c == '/' && b.get(i + 1) == Some(&'/') {
            while i < b.len() && b[i] != '\n' {
                i += 1;
            }
            push(&mut toks, TokKind::LineComment, start, i, start_line, &b);
            continue;
        }
        // Block comment, possibly nested; may span lines.
        if c == '/' && b.get(i + 1) == Some(&'*') {
            let mut depth = 0usize;
            while i < b.len() {
                if b[i] == '/' && b.get(i + 1) == Some(&'*') {
                    depth += 1;
                    i += 2;
                } else if b[i] == '*' && b.get(i + 1) == Some(&'/') {
                    depth -= 1;
                    i += 2;
                    if depth == 0 {
                        break;
                    }
                } else {
                    if b[i] == '\n' {
                        line += 1;
                    }
                    i += 1;
                }
            }
            push(&mut toks, TokKind::BlockComment, start, i, start_line, &b);
            continue;
        }
        // Raw string r"…" / r#"…"# (optionally br…). Raw identifiers
        // (`r#fn`) have no quote after the hashes and fall through to the
        // ident path below.
        if c == 'r' || (c == 'b' && b.get(i + 1) == Some(&'r')) {
            let hash_from = if c == 'b' { i + 2 } else { i + 1 };
            let mut j = hash_from;
            while b.get(j) == Some(&'#') {
                j += 1;
            }
            if b.get(j) == Some(&'"') {
                let hashes = j - hash_from;
                i = j + 1;
                while i < b.len() {
                    if b[i] == '"' && b[i + 1..].iter().take(hashes).all(|&h| h == '#') {
                        i += 1 + hashes;
                        break;
                    }
                    if b[i] == '\n' {
                        line += 1;
                    }
                    i += 1;
                }
                push(&mut toks, TokKind::RawStr, start, i, start_line, &b);
                continue;
            }
        }
        // Ordinary / byte string literal.
        if c == '"' || (c == 'b' && b.get(i + 1) == Some(&'"')) {
            i += if c == 'b' { 2 } else { 1 };
            while i < b.len() {
                if b[i] == '\\' && i + 1 < b.len() {
                    if b[i + 1] == '\n' {
                        line += 1;
                    }
                    i += 2;
                } else if b[i] == '"' {
                    i += 1;
                    break;
                } else {
                    if b[i] == '\n' {
                        line += 1;
                    }
                    i += 1;
                }
            }
            push(&mut toks, TokKind::StrLit, start, i, start_line, &b);
            continue;
        }
        // Char literal vs lifetime: `'x'` / `'\n'` / `b'x'` are literals
        // (closing quote right after one char or an escape); `'a` /
        // `'static` are lifetimes.
        if c == '\'' || (c == 'b' && b.get(i + 1) == Some(&'\'')) {
            let q = if c == 'b' { i + 1 } else { i };
            let is_char = match b.get(q + 1) {
                Some('\\') => true,
                Some(_) => b.get(q + 2) == Some(&'\''),
                None => false,
            };
            if is_char {
                i = q + 1;
                while i < b.len() {
                    if b[i] == '\\' && i + 1 < b.len() {
                        i += 2;
                    } else if b[i] == '\'' {
                        i += 1;
                        break;
                    } else {
                        i += 1;
                    }
                }
                push(&mut toks, TokKind::CharLit, start, i, start_line, &b);
                continue;
            }
            if c == '\'' {
                i += 1;
                while i < b.len() && is_ident_continue(b[i]) {
                    i += 1;
                }
                push(&mut toks, TokKind::Lifetime, start, i, start_line, &b);
                continue;
            }
        }
        // Numeric literal: digits, optional fraction, exponent with sign,
        // alphanumeric suffixes (`0x1F`, `1_000u64`, `1.0e-3`, `0f64`).
        if c.is_ascii_digit() {
            i = lex_number(&b, i);
            push(&mut toks, TokKind::Num, start, i, start_line, &b);
            continue;
        }
        // Identifier / keyword.
        if is_ident_start(c) {
            i += 1;
            while i < b.len() && is_ident_continue(b[i]) {
                i += 1;
            }
            push(&mut toks, TokKind::Ident, start, i, start_line, &b);
            continue;
        }
        // Everything else: one punct char per token.
        i += 1;
        push(&mut toks, TokKind::Punct, start, i, start_line, &b);
    }
    toks
}

/// Consumes one numeric literal starting at `i` (a digit) and returns the
/// exclusive end index.
fn lex_number(b: &[char], mut i: usize) -> usize {
    let consume_alnum = |i: &mut usize| {
        while *i < b.len() && (b[*i].is_ascii_alphanumeric() || b[*i] == '_') {
            // `1e-3` / `2.5E+8`: the sign belongs to the exponent.
            if (b[*i] == 'e' || b[*i] == 'E')
                && matches!(b.get(*i + 1), Some('+') | Some('-'))
                && b.get(*i + 2).is_some_and(|c| c.is_ascii_digit())
            {
                *i += 2;
                continue;
            }
            *i += 1;
        }
    };
    consume_alnum(&mut i);
    // Fractional part only when a digit follows the dot — `0..n` and
    // tuple access `x.0` keep their dots as punctuation.
    if b.get(i) == Some(&'.') && b.get(i + 1).is_some_and(|c| c.is_ascii_digit()) {
        i += 1;
        consume_alnum(&mut i);
    }
    i
}

// ----------------------------------------------------------------------
// Derived views: masking and cfg(test) regions
// ----------------------------------------------------------------------

/// Replaces the *contents* of string literals, char literals, and comments
/// with spaces (newlines kept), so char offsets and line numbers survive
/// but text inside them can never match a rule pattern. Delimiters are
/// kept: quotes, raw-string prefixes/hashes, so shapes like `Counter::new("`
/// still match on the masked text.
pub fn mask_with(src: &str, toks: &[Tok]) -> String {
    let mut out: Vec<char> = src.chars().collect();
    let blank = |out: &mut [char], from: usize, to: usize| {
        for c in out.iter_mut().take(to).skip(from) {
            if *c != '\n' {
                *c = ' ';
            }
        }
    };
    for t in toks {
        match t.kind {
            // Comments are blanked whole, `//`/`/*` markers included.
            TokKind::LineComment | TokKind::BlockComment => blank(&mut out, t.start, t.end),
            // Strings/chars keep their delimiters (and any b/r#/closing-#
            // affixes) and blank the interior.
            TokKind::StrLit | TokKind::CharLit | TokKind::RawStr => {
                let text: Vec<char> = t.text.chars().collect();
                let open = match text.iter().position(|&c| c == '"' || c == '\'') {
                    Some(p) => p,
                    None => continue,
                };
                let quote = text[open];
                // Closing delimiter: last quote char (followed only by raw
                // hashes, which are kept). An unterminated literal has no
                // closer past the opener and blanks to the end.
                let close = match text.iter().rposition(|&c| c == quote) {
                    Some(p) if p > open => p,
                    _ => text.len(),
                };
                blank(&mut out, t.start + open + 1, t.start + close);
            }
            _ => {}
        }
    }
    out.into_iter().collect()
}

/// Lex-and-mask in one call (the [`crate::mask_source`] entry point).
pub fn mask(src: &str) -> String {
    mask_with(src, &lex(src))
}

/// 1-indexed inclusive line ranges covered by `#[cfg(test)]` items, found
/// by real token-tree tracking: each `# [ cfg ( test ) ]` attribute, then
/// any further attributes, then the annotated item's brace tree (or its
/// terminating `;` for a braceless item).
pub fn test_line_regions(toks: &[Tok]) -> Vec<(usize, usize)> {
    let t: Vec<&Tok> = toks.iter().filter(|t| !t.is_comment()).collect();
    let mut regions = Vec::new();
    let mut i = 0usize;
    while i + 6 < t.len() {
        let is_attr = t[i].is_punct('#')
            && t[i + 1].is_punct('[')
            && t[i + 2].is_ident("cfg")
            && t[i + 3].is_punct('(')
            && t[i + 4].is_ident("test")
            && t[i + 5].is_punct(')')
            && t[i + 6].is_punct(']');
        if !is_attr {
            i += 1;
            continue;
        }
        let attr_line = t[i].line;
        let mut j = i + 7;
        // Skip any further attributes between cfg(test) and the item.
        while j + 1 < t.len() && t[j].is_punct('#') && t[j + 1].is_punct('[') {
            let mut depth = 0usize;
            while j < t.len() {
                if t[j].is_punct('[') {
                    depth += 1;
                } else if t[j].is_punct(']') {
                    depth -= 1;
                    if depth == 0 {
                        j += 1;
                        break;
                    }
                }
                j += 1;
            }
        }
        // The annotated item: everything to its matching close brace, or
        // to the `;` of a braceless item (`#[cfg(test)] use …;`).
        let mut end_line = attr_line;
        while j < t.len() {
            if t[j].is_punct(';') {
                end_line = t[j].line;
                j += 1;
                break;
            }
            if t[j].is_punct('{') {
                let mut depth = 0usize;
                while j < t.len() {
                    if t[j].is_punct('{') {
                        depth += 1;
                    } else if t[j].is_punct('}') {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    j += 1;
                }
                end_line = t.get(j).map_or(end_line, |tok| tok.line);
                j += 1;
                break;
            }
            j += 1;
        }
        regions.push((attr_line, end_line.max(attr_line)));
        i = j.max(i + 1);
    }
    regions
}

/// Whether 1-indexed `line` falls inside any of `regions`.
pub fn line_in_regions(regions: &[(usize, usize)], line: usize) -> bool {
    regions.iter().any(|&(a, b)| line >= a && line <= b)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokKind> {
        lex(src).into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_basic_stream_with_lines() {
        let toks = lex("fn f() {\n    x.lock();\n}\n");
        let idents: Vec<(&str, usize)> = toks
            .iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| (t.text.as_str(), t.line))
            .collect();
        assert_eq!(idents, [("fn", 1), ("f", 1), ("x", 2), ("lock", 2)]);
    }

    #[test]
    fn char_literal_vs_lifetime() {
        let toks = lex("let c: char = 'a'; let s: &'static str = x; f::<'b>()");
        let lifetimes: Vec<&str> = toks
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(lifetimes, ["'static", "'b"]);
        let chars: Vec<&str> = toks
            .iter()
            .filter(|t| t.kind == TokKind::CharLit)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(chars, ["'a'"]);
    }

    #[test]
    fn escaped_char_and_byte_char() {
        let toks = lex(r"let a = '\n'; let b = b'x'; let q = '\'';");
        let chars: Vec<&str> = toks
            .iter()
            .filter(|t| t.kind == TokKind::CharLit)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(chars, [r"'\n'", "b'x'", r"'\''"]);
    }

    #[test]
    fn raw_strings_hash_counted() {
        let src = r####"let a = r#"has "quotes" and # inside"#; let b = r"plain"; x.lock()"####;
        let toks = lex(src);
        let raws: Vec<&str> = toks
            .iter()
            .filter(|t| t.kind == TokKind::RawStr)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(raws.len(), 2);
        assert!(raws[0].starts_with("r#\"") && raws[0].ends_with("\"#"));
        // The `.lock()` after the literals still lexes as idents/puncts.
        assert!(toks.iter().any(|t| t.is_ident("lock")));
    }

    #[test]
    fn nested_block_comments() {
        let toks = lex("a /* outer /* inner */ still comment */ b");
        assert_eq!(
            kinds("a /* outer /* inner */ still comment */ b"),
            [TokKind::Ident, TokKind::BlockComment, TokKind::Ident]
        );
        assert!(toks[1].text.contains("inner"));
    }

    #[test]
    fn numbers_swallow_suffix_exponent_and_fraction() {
        let texts: Vec<String> = lex("1.0e-3 + 0x1F + 0f64 + 1_000u64 + 2.5")
            .into_iter()
            .filter(|t| t.kind == TokKind::Num)
            .map(|t| t.text)
            .collect();
        assert_eq!(texts, ["1.0e-3", "0x1F", "0f64", "1_000u64", "2.5"]);
    }

    #[test]
    fn range_and_tuple_dots_stay_punct() {
        let toks = lex("for i in 0..n { x.0 }");
        let dots = toks.iter().filter(|t| t.is_punct('.')).count();
        assert_eq!(dots, 3, "{toks:?}");
    }

    #[test]
    fn multiline_tokens_track_lines() {
        let src = "let s = \"a\nb\"; /* c\nd */ x.lock();\n";
        let toks = lex(src);
        let lock = toks.iter().find(|t| t.is_ident("lock"));
        assert_eq!(lock.map(|t| t.line), Some(3));
    }

    #[test]
    fn masking_is_char_aligned() {
        let src = "let a = \"panic!()\"; // .unwrap()\nr#\"HashMap\"# ;";
        let m = mask(src);
        assert_eq!(m.chars().count(), src.chars().count());
        assert!(!m.contains("panic!"));
        assert!(!m.contains("HashMap"));
        assert!(m.contains("r#\""), "raw prefix survives: {m:?}");
        assert!(m.contains("\"#"), "raw suffix survives: {m:?}");
    }

    #[test]
    fn test_regions_cover_nested_modules() {
        let src = "fn lib() {}\n#[cfg(test)]\nmod outer {\n    mod inner {\n        fn t() {}\n    }\n}\nfn tail() {}\n";
        let regions = test_line_regions(&lex(src));
        assert_eq!(regions, [(2, 7)]);
        assert!(line_in_regions(&regions, 5));
        assert!(!line_in_regions(&regions, 8));
    }

    #[test]
    fn test_region_with_extra_attrs_and_spaced_form() {
        let src = "#[cfg(test)]\n#[allow(dead_code)]\nmod t {\n    fn x() {}\n}\n";
        assert_eq!(test_line_regions(&lex(src)), [(1, 5)]);
        // `#[cfg( test )]` (token-spaced) matches too — the old string
        // scanner missed this form.
        let spaced = "#[cfg( test )]\nmod t {\n    fn x() {}\n}\n";
        assert_eq!(test_line_regions(&lex(spaced)), [(1, 4)]);
    }

    #[test]
    fn braceless_test_item_ends_at_semi() {
        let src = "#[cfg(test)]\nuse helpers::x;\nfn lib() {}\n";
        assert_eq!(test_line_regions(&lex(src)), [(1, 2)]);
    }
}
