//! The log-bucket scheme shared by every histogram in the workspace.
//!
//! Buckets follow the 1–2–5 log series over nine decades, `1, 2, 5, 10, …,
//! 1e9`, plus one overflow bucket — 29 buckets total. The boundaries are
//! **fixed** (no per-histogram configuration): every producer and every
//! consumer (`/metrics` exposition, `trace-summary`, stderr summaries)
//! agrees on the same grid, so bucket counts can be merged across
//! processes and traces without resampling. The unit is whatever the
//! producer records — latencies use microseconds, sizes use counts — and
//! the nine-decade span covers 1 µs to ~17 min of latency or 1 to 1e9 of
//! anything discrete.
//!
//! Percentiles are derived by linear interpolation inside the bucket that
//! contains the requested rank (the standard Prometheus `histogram_quantile`
//! estimator). With ~3 buckets per decade the estimate is within ~±30% of
//! the true value, which is the usual operating precision for log-bucketed
//! latency monitoring.

/// Upper bounds of the finite buckets (ascending 1–2–5 series).
pub const BUCKET_BOUNDS: [f64; 28] = [
    1.0, 2.0, 5.0, 1e1, 2e1, 5e1, 1e2, 2e2, 5e2, 1e3, 2e3, 5e3, 1e4, 2e4, 5e4, 1e5, 2e5, 5e5, 1e6,
    2e6, 5e6, 1e7, 2e7, 5e7, 1e8, 2e8, 5e8, 1e9,
];

/// Total bucket count: the finite bounds plus one overflow bucket.
pub const BUCKET_COUNT: usize = BUCKET_BOUNDS.len() + 1;

/// The bucket index for an observation: the first bound `v` fits under, or
/// the overflow bucket. Non-positive values land in bucket 0; NaN (which
/// cannot be ordered) lands in the overflow bucket so it stays visible.
pub fn bucket_index(v: f64) -> usize {
    if v.is_nan() {
        return BUCKET_COUNT - 1;
    }
    BUCKET_BOUNDS
        .iter()
        .position(|&b| v <= b)
        .unwrap_or(BUCKET_COUNT - 1)
}

/// Estimates the `q`-quantile (`0.0..=1.0`) from per-bucket counts
/// (`counts.len() == BUCKET_COUNT`, non-cumulative) by linear interpolation
/// within the bucket holding the rank. Returns `0.0` for an empty
/// histogram; ranks in the overflow bucket report the largest finite bound
/// (there is no upper edge to interpolate toward).
pub fn percentile(counts: &[u64], q: f64) -> f64 {
    let total: u64 = counts.iter().sum();
    if total == 0 {
        return 0.0;
    }
    let rank = q.clamp(0.0, 1.0) * total as f64;
    let mut cum = 0.0;
    for (i, &c) in counts.iter().enumerate() {
        if c == 0 {
            continue;
        }
        let next = cum + c as f64;
        if next >= rank {
            if i >= BUCKET_BOUNDS.len() {
                return BUCKET_BOUNDS[BUCKET_BOUNDS.len() - 1];
            }
            let lower = if i == 0 { 0.0 } else { BUCKET_BOUNDS[i - 1] };
            let upper = BUCKET_BOUNDS[i];
            let within = ((rank - cum) / c as f64).clamp(0.0, 1.0);
            return lower + (upper - lower) * within;
        }
        cum = next;
    }
    BUCKET_BOUNDS[BUCKET_BOUNDS.len() - 1]
}

/// Formats a bucket bound the way the Prometheus exposition prints `le`
/// labels: integral bounds without a decimal point.
pub fn format_bound(b: f64) -> String {
    if b.fract() == 0.0 && b.abs() < 1e15 {
        format!("{}", b as i64)
    } else {
        format!("{b}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounds_are_strictly_ascending() {
        for w in BUCKET_BOUNDS.windows(2) {
            assert!(w[0] < w[1]);
        }
    }

    #[test]
    fn bucket_index_honours_bounds_and_edges() {
        assert_eq!(bucket_index(0.0), 0);
        assert_eq!(bucket_index(-3.0), 0);
        assert_eq!(bucket_index(1.0), 0); // le="1" is inclusive
        assert_eq!(bucket_index(1.1), 1);
        assert_eq!(bucket_index(5.0), 2);
        assert_eq!(bucket_index(1e9), BUCKET_BOUNDS.len() - 1);
        assert_eq!(bucket_index(2e9), BUCKET_COUNT - 1); // overflow
        assert_eq!(bucket_index(f64::NAN), BUCKET_COUNT - 1);
    }

    #[test]
    fn percentiles_interpolate_within_a_bucket() {
        let mut counts = [0u64; BUCKET_COUNT];
        // 100 observations, all in bucket (2, 5].
        counts[2] = 100;
        assert_eq!(percentile(&counts, 0.0), 2.0);
        let p50 = percentile(&counts, 0.5);
        assert!((p50 - 3.5).abs() < 1e-9, "p50 = {p50}");
        assert_eq!(percentile(&counts, 1.0), 5.0);
    }

    #[test]
    fn percentiles_split_across_buckets() {
        let mut counts = [0u64; BUCKET_COUNT];
        counts[0] = 50; // (0, 1]
        counts[3] = 50; // (5, 10]
        let p25 = percentile(&counts, 0.25);
        assert!((p25 - 0.5).abs() < 1e-9, "p25 = {p25}");
        let p75 = percentile(&counts, 0.75);
        assert!((p75 - 7.5).abs() < 1e-9, "p75 = {p75}");
    }

    #[test]
    fn empty_and_overflow_histograms_stay_finite() {
        let counts = [0u64; BUCKET_COUNT];
        assert_eq!(percentile(&counts, 0.99), 0.0);
        let mut counts = [0u64; BUCKET_COUNT];
        counts[BUCKET_COUNT - 1] = 10;
        assert_eq!(percentile(&counts, 0.5), 1e9);
    }

    #[test]
    fn bound_formatting_drops_trailing_zeros() {
        assert_eq!(format_bound(1.0), "1");
        assert_eq!(format_bound(5e8), "500000000");
        assert_eq!(format_bound(2.5), "2.5");
    }
}
