//! Mini-batch assembly over [`Sample`] slices.

use cdcl_tensor::{PooledBuf, Tensor};
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::generator::Sample;

/// Stacks samples into a `[b, c, h, w]` tensor plus a label vector.
pub fn stack(samples: &[&Sample]) -> (Tensor, Vec<usize>) {
    assert!(!samples.is_empty(), "stack of zero samples");
    let shape = samples[0].image.shape().to_vec();
    let per = samples[0].image.len();
    // Batch staging goes through the tensor pool: the same batch shape
    // recurs every step, so this is a recycled buffer in steady state.
    let mut data = PooledBuf::take_uninit(samples.len() * per);
    let mut labels = Vec::with_capacity(samples.len());
    for (i, s) in samples.iter().enumerate() {
        assert_eq!(s.image.shape(), &shape[..], "inconsistent sample shapes");
        data[i * per..(i + 1) * per].copy_from_slice(s.image.data());
        labels.push(s.label);
    }
    let mut out_shape = vec![samples.len()];
    out_shape.extend_from_slice(&shape);
    (Tensor::from_buf(data, &out_shape), labels)
}

/// Deterministic shuffled mini-batch iterator over an indexed dataset.
pub struct Batcher {
    indices: Vec<usize>,
    batch_size: usize,
    rng: SmallRng,
}

impl Batcher {
    /// New batcher over `n` samples with the given batch size and seed.
    pub fn new(n: usize, batch_size: usize, seed: u64) -> Self {
        assert!(batch_size > 0, "batch_size must be positive");
        Self {
            indices: (0..n).collect(),
            batch_size,
            rng: SmallRng::seed_from_u64(seed),
        }
    }

    /// Reshuffles and returns the epoch's batches of indices. The final
    /// partial batch is kept (never dropped) so small datasets still train.
    pub fn epoch(&mut self) -> Vec<Vec<usize>> {
        self.indices.shuffle(&mut self.rng);
        self.indices
            .chunks(self.batch_size)
            .map(<[usize]>::to_vec)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(label: usize, v: f32) -> Sample {
        Sample {
            image: Tensor::full(&[1, 2, 2], v),
            label,
        }
    }

    #[test]
    fn stack_shapes_and_labels() {
        let a = sample(0, 1.0);
        let b = sample(1, 2.0);
        let (t, labels) = stack(&[&a, &b]);
        assert_eq!(t.shape(), &[2, 1, 2, 2]);
        assert_eq!(labels, vec![0, 1]);
        assert_eq!(t.row(1).data(), &[2.0; 4]);
    }

    #[test]
    #[should_panic(expected = "zero samples")]
    fn stack_empty_panics() {
        let v: Vec<&Sample> = vec![];
        stack(&v);
    }

    #[test]
    fn batcher_covers_every_index_once_per_epoch() {
        let mut b = Batcher::new(10, 3, 42);
        let batches = b.epoch();
        assert_eq!(batches.len(), 4); // 3+3+3+1
        let mut all: Vec<usize> = batches.into_iter().flatten().collect();
        all.sort_unstable();
        assert_eq!(all, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn batcher_is_deterministic_per_seed() {
        let mut a = Batcher::new(20, 5, 1);
        let mut b = Batcher::new(20, 5, 1);
        assert_eq!(a.epoch(), b.epoch());
        let mut c = Batcher::new(20, 5, 2);
        assert_ne!(a.epoch(), c.epoch());
    }

    #[test]
    fn batcher_epochs_differ() {
        let mut b = Batcher::new(30, 10, 3);
        let e1 = b.epoch();
        let e2 = b.epoch();
        assert_ne!(e1, e2, "epochs should reshuffle");
    }
}
