//! Pre-norm transformer encoder stack with self and cross paths.

use cdcl_autograd::{Graph, Param, Var};
use rand::Rng;

use crate::attention::{AttentionMode, InterIntraAttention};
use crate::layers::{LayerNorm, Linear};
use crate::Module;

/// Two-layer GELU MLP (the transformer feed-forward block).
pub struct Mlp {
    fc1: Linear,
    fc2: Linear,
}

impl Mlp {
    /// New MLP `d -> hidden -> d`.
    pub fn new<R: Rng + ?Sized>(rng: &mut R, name: &str, d: usize, hidden: usize) -> Self {
        Self {
            fc1: Linear::new(rng, &format!("{name}.fc1"), d, hidden, true),
            fc2: Linear::new(rng, &format!("{name}.fc2"), hidden, d, true),
        }
    }

    /// Applies the MLP token-wise.
    pub fn forward(&self, g: &mut Graph, x: Var) -> Var {
        let h = self.fc1.forward(g, x);
        let h = g.gelu(h);
        self.fc2.forward(g, h)
    }
}

impl Module for Mlp {
    fn params(&self) -> Vec<Param> {
        let mut p = self.fc1.params();
        p.extend(self.fc2.params());
        p
    }
}

/// One pre-norm encoder layer:
/// `x = x + Attn(LN(x)); x = x + MLP(LN(x))`.
pub struct EncoderLayer {
    attn: InterIntraAttention,
    mlp: Mlp,
    norm1: LayerNorm,
    norm2: LayerNorm,
}

impl EncoderLayer {
    /// New layer for embedding dim `d` with MLP expansion `mlp_ratio`.
    pub fn new<R: Rng + ?Sized>(
        rng: &mut R,
        name: &str,
        d: usize,
        mlp_ratio: usize,
        mode: AttentionMode,
        softmax: bool,
    ) -> Self {
        Self {
            attn: InterIntraAttention::new(rng, &format!("{name}.attn"), d, mode, softmax),
            mlp: Mlp::new(rng, &format!("{name}.mlp"), d, d * mlp_ratio),
            norm1: LayerNorm::new(&format!("{name}.norm1"), d),
            norm2: LayerNorm::new(&format!("{name}.norm2"), d),
        }
    }

    /// The attention block (exposed for freezing checks).
    pub fn attention(&self) -> &InterIntraAttention {
        &self.attn
    }

    /// Retired-task `(K_i, b_i)` parameters of this layer's bank.
    pub fn frozen_params(&self) -> Vec<Param> {
        self.attn.frozen_params()
    }

    /// Instantiates a new task's key/bias projections, freezing old ones.
    pub fn add_task<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        self.attn.add_task(rng);
    }

    /// Self path on a single stream.
    pub fn forward_self(&self, g: &mut Graph, x: Var, task: usize) -> Var {
        let n1 = self.norm1.forward(g, x);
        let a = self.attn.forward_self(g, n1, task);
        let x = g.add(x, a);
        let n2 = self.norm2.forward(g, x);
        let m = self.mlp.forward(g, n2);
        g.add(x, m)
    }

    /// Cross path: updates the `mixed` stream with queries from `mixed` and
    /// keys/values from the (pre-layer) `target` stream, then applies the
    /// layer's MLP — the "mixed signal" arrow of Figure 1.
    pub fn forward_cross(&self, g: &mut Graph, mixed: Var, target: Var, task: usize) -> Var {
        let nq = self.norm1.forward(g, mixed);
        let nk = self.norm1.forward(g, target);
        let a = self.attn.forward_cross(g, nq, nk, task);
        let x = g.add(mixed, a);
        let n2 = self.norm2.forward(g, x);
        let m = self.mlp.forward(g, n2);
        g.add(x, m)
    }
}

impl Module for EncoderLayer {
    fn params(&self) -> Vec<Param> {
        let mut p = self.attn.params();
        p.extend(self.mlp.params());
        p.extend(self.norm1.params());
        p.extend(self.norm2.params());
        p
    }
}

/// A stack of encoder layers.
pub struct Encoder {
    layers: Vec<EncoderLayer>,
}

impl Encoder {
    /// New stack of `depth` layers.
    pub fn new<R: Rng + ?Sized>(
        rng: &mut R,
        d: usize,
        depth: usize,
        mlp_ratio: usize,
        mode: AttentionMode,
        softmax: bool,
    ) -> Self {
        let layers = (0..depth)
            .map(|i| EncoderLayer::new(rng, &format!("enc{i}"), d, mlp_ratio, mode, softmax))
            .collect();
        Self { layers }
    }

    /// Number of layers.
    pub fn depth(&self) -> usize {
        self.layers.len()
    }

    /// The layers (exposed for tests).
    pub fn layers(&self) -> &[EncoderLayer] {
        &self.layers
    }

    /// Instantiates a new task in every layer.
    pub fn add_task<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        for l in &mut self.layers {
            l.add_task(rng);
        }
    }

    /// Retired-task `(K_i, b_i)` parameters across every layer.
    pub fn frozen_params(&self) -> Vec<Param> {
        self.layers
            .iter()
            .flat_map(EncoderLayer::frozen_params)
            .collect()
    }

    /// Self path: a single stream through every layer.
    pub fn forward_self(&self, g: &mut Graph, mut x: Var, task: usize) -> Var {
        for l in &self.layers {
            x = l.forward_self(g, x, task);
        }
        x
    }

    /// Cross path: the target stream advances by self-attention; the mixed
    /// stream advances by cross-attention against the target stream's
    /// *pre-layer* representation (CDTrans-style two-stream weaving).
    /// Returns the final mixed stream.
    pub fn forward_cross(&self, g: &mut Graph, x_src: Var, x_tgt: Var, task: usize) -> Var {
        let mut mixed = x_src;
        let mut tgt = x_tgt;
        for l in &self.layers {
            mixed = l.forward_cross(g, mixed, tgt, task);
            tgt = l.forward_self(g, tgt, task);
        }
        mixed
    }
}

impl Module for Encoder {
    fn params(&self) -> Vec<Param> {
        self.layers.iter().flat_map(Module::params).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdcl_tensor::Tensor;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn enc(rng: &mut SmallRng, d: usize, depth: usize) -> Encoder {
        let mut e = Encoder::new(rng, d, depth, 2, AttentionMode::TaskKeyed, true);
        e.add_task(rng);
        e
    }

    #[test]
    fn self_path_preserves_shape() {
        let mut rng = SmallRng::seed_from_u64(1);
        let e = enc(&mut rng, 8, 2);
        let mut g = Graph::new();
        let x = g.input(Tensor::randn(&mut rng, &[2, 5, 8], 1.0));
        let y = e.forward_self(&mut g, x, 0);
        assert_eq!(g.value(y).shape(), &[2, 5, 8]);
        assert!(g.value(y).all_finite());
    }

    #[test]
    fn cross_path_preserves_shape() {
        let mut rng = SmallRng::seed_from_u64(2);
        let e = enc(&mut rng, 8, 2);
        let mut g = Graph::new();
        let xs = g.input(Tensor::randn(&mut rng, &[2, 5, 8], 1.0));
        let xt = g.input(Tensor::randn(&mut rng, &[2, 5, 8], 1.0));
        let y = e.forward_cross(&mut g, xs, xt, 0);
        assert_eq!(g.value(y).shape(), &[2, 5, 8]);
    }

    #[test]
    fn add_task_grows_every_layer_bank() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut e = enc(&mut rng, 4, 3);
        e.add_task(&mut rng);
        for l in e.layers() {
            assert_eq!(l.attention().bank().num_tasks(), 2);
            assert!(!l.attention().bank().task_trainable(0));
            assert!(l.attention().bank().task_trainable(1));
        }
    }

    #[test]
    fn deeper_encoder_has_more_params() {
        let mut rng = SmallRng::seed_from_u64(4);
        let e1 = enc(&mut rng, 8, 1);
        let e2 = enc(&mut rng, 8, 3);
        assert!(e2.num_parameters() > e1.num_parameters());
        assert_eq!(e2.num_parameters() % e1.num_parameters(), 0);
    }

    #[test]
    fn gradients_flow_through_full_stack() {
        let mut rng = SmallRng::seed_from_u64(5);
        let e = enc(&mut rng, 4, 2);
        for p in e.params() {
            p.zero_grad();
        }
        let mut g = Graph::new();
        let x = g.input(Tensor::randn(&mut rng, &[1, 3, 4], 1.0));
        let y = e.forward_self(&mut g, x, 0);
        let y2 = g.mul(y, y);
        let l = g.mean_all(y2);
        g.backward(l);
        let touched = e
            .params()
            .iter()
            .filter(|p| p.trainable() && p.grad().sq_norm() > 0.0)
            .count();
        // every trainable param should receive gradient in this dense graph
        let trainable = e.params().iter().filter(|p| p.trainable()).count();
        assert_eq!(touched, trainable);
    }
}
