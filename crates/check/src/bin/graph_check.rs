//! `graph-check` — the graph verifier's CI self-check (DESIGN.md §9).
//!
//! Builds the smoke-config CDCL model with two tasks, records a
//! training-shaped graph (self features through the current *and* the
//! retired task's keys, TIL + CIL losses), runs `backward`, and then the
//! full verifier: shape inference over every node plus the gradient-flow
//! audit against the model's expected-frozen set. Exits non-zero (with the
//! verifier's provenance message) on any violation.
//!
//! ```text
//! cargo run --release -p cdcl-check --bin graph-check
//! ```

use std::process::ExitCode;

use cdcl_autograd::Graph;
use cdcl_core::CdclModel;
use cdcl_nn::{BackboneConfig, Module};
use cdcl_tensor::Tensor;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn main() -> ExitCode {
    let mut rng = SmallRng::seed_from_u64(7);
    let mut model = CdclModel::new(&mut rng, BackboneConfig::default());
    model.add_task(&mut rng, 2);
    model.add_task(&mut rng, 2); // freezes task 0's (K_0, b_0)

    for p in model.params() {
        p.zero_grad();
    }

    let mut g = Graph::new();
    let x = g.input(Tensor::randn(&mut rng, &[2, 1, 16, 16], 1.0));
    let labels = [0usize, 1];

    // Current task: TIL + CIL supervised losses (warm-up shape).
    let z1 = model.features_self(&mut g, x, 1);
    let til = model.til_logits(&mut g, z1, 1);
    let til_lp = g.log_softmax_last(til);
    let l_til = g.nll_loss(til_lp, &labels);
    let cil = model.cil_logits(&mut g, z1);
    let cil_lp = g.log_softmax_last(cil);
    let globals: Vec<usize> = labels.iter().map(|&l| model.class_offset(1) + l).collect();
    let l_cil = g.nll_loss(cil_lp, &globals);
    let mut loss = g.add(l_til, l_cil);

    // Retired task: rehearsal-shaped pass through the frozen (K_0, b_0),
    // so the frozen leaves are actually on the tape being audited.
    let z0 = model.features_self(&mut g, x, 0);
    let til0 = model.til_logits(&mut g, z0, 0);
    let til0_lp = g.log_softmax_last(til0);
    let l_old = g.nll_loss(til0_lp, &labels);
    loss = g.add(loss, l_old);

    g.backward(loss);

    let frozen = model.expected_frozen_params();
    match g.verify(loss, &frozen) {
        Ok(report) => {
            println!(
                "graph-check: OK — {} nodes, {} param leaves, {} frozen verified, {} dead",
                report.nodes,
                report.param_leaves,
                report.frozen_verified,
                report.dead_nodes.len()
            );
            if frozen.is_empty() {
                eprintln!("graph-check: expected a non-empty frozen set after two tasks");
                return ExitCode::FAILURE;
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("graph-check: FAIL — {e}");
            ExitCode::FAILURE
        }
    }
}
