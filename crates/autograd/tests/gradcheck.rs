//! Finite-difference validation of every backward rule in the tape.
//!
//! Each test builds a tiny graph whose loss depends on a [`Param`], runs
//! `backward`, and compares the analytic gradient with central differences.

use cdcl_autograd::{finite_diff_grad, Graph, Param};
use cdcl_tensor::{Conv2dSpec, Pool2dSpec, Tensor};
use rand::rngs::SmallRng;
use rand::SeedableRng;

const EPS: f32 = 1e-2;
const TOL: f32 = 2e-2;

fn check(param: &Param, mut loss: impl FnMut() -> f32, analytic: &Tensor) {
    let numeric = finite_diff_grad(param, &mut loss, EPS);
    assert_eq!(analytic.shape(), numeric.shape());
    for (i, (a, n)) in analytic
        .data()
        .iter()
        .zip(numeric.data().iter())
        .enumerate()
    {
        let scale = 1.0 + a.abs().max(n.abs());
        assert!(
            (a - n).abs() / scale < TOL,
            "grad mismatch at {i}: analytic {a} vs numeric {n}"
        );
    }
}

/// Runs `f` once to get the analytic gradient (also zeroing first), then
/// checks it against finite differences of the same loss.
fn check_op(param: &Param, f: impl Fn() -> f32) {
    param.zero_grad();
    let _ = f();
    let analytic = param.grad();
    // The loss closure for finite differences must not touch gradients.
    check(param, || f_no_grad(&f, param), &analytic);
}

fn f_no_grad(f: &impl Fn() -> f32, param: &Param) -> f32 {
    // `f` accumulates into param's grad; save/restore around the probe.
    let saved = param.grad();
    let v = f();
    // restore accumulated grad state
    param.zero_grad();
    param.accumulate_grad(&saved);
    v
}

#[test]
fn grad_add_broadcast_bias() {
    let mut rng = SmallRng::seed_from_u64(1);
    let x = Tensor::randn(&mut rng, &[3, 4], 1.0);
    let p = Param::new("bias", Tensor::randn(&mut rng, &[4], 1.0));
    check_op(&p, || {
        let mut g = Graph::new();
        let xv = g.input(x.clone());
        let bv = g.param(&p);
        let y = g.add(xv, bv);
        let y = g.mul(y, y); // square so the grad isn't constant
        let l = g.mean_all(y);
        g.backward(l);
        g.value(l).item()
    });
}

#[test]
fn grad_sub_and_scale() {
    let mut rng = SmallRng::seed_from_u64(2);
    let x = Tensor::randn(&mut rng, &[2, 3], 1.0);
    let p = Param::new("p", Tensor::randn(&mut rng, &[2, 3], 1.0));
    check_op(&p, || {
        let mut g = Graph::new();
        let xv = g.input(x.clone());
        let pv = g.param(&p);
        let d = g.sub(pv, xv);
        let d = g.scale(d, 3.0);
        let d = g.mul(d, d);
        let l = g.sum_all(d);
        g.backward(l);
        g.value(l).item()
    });
}

#[test]
fn grad_matmul_2d_left_and_right() {
    let mut rng = SmallRng::seed_from_u64(3);
    let a = Param::new("a", Tensor::randn(&mut rng, &[2, 3], 1.0));
    let b = Param::new("b", Tensor::randn(&mut rng, &[3, 4], 1.0));
    let run = |ga: &Param, gb: &Param| {
        let mut g = Graph::new();
        let av = g.param(ga);
        let bv = g.param(gb);
        let c = g.matmul(av, bv);
        let c = g.mul(c, c);
        let l = g.mean_all(c);
        g.backward(l);
        g.value(l).item()
    };
    check_op(&a, || run(&a, &b));
    b.zero_grad();
    check_op(&b, || run(&a, &b));
}

#[test]
fn grad_matmul_batched() {
    let mut rng = SmallRng::seed_from_u64(4);
    let x = Tensor::randn(&mut rng, &[2, 3, 4], 1.0);
    let p = Param::new("w", Tensor::randn(&mut rng, &[2, 4, 2], 1.0));
    check_op(&p, || {
        let mut g = Graph::new();
        let xv = g.input(x.clone());
        let pv = g.param(&p);
        let c = g.matmul(xv, pv);
        let c = g.mul(c, c);
        let l = g.mean_all(c);
        g.backward(l);
        g.value(l).item()
    });
}

#[test]
fn grad_matmul_3d_by_2d() {
    let mut rng = SmallRng::seed_from_u64(5);
    let x = Tensor::randn(&mut rng, &[2, 3, 4], 1.0);
    let p = Param::new("w", Tensor::randn(&mut rng, &[4, 5], 1.0));
    check_op(&p, || {
        let mut g = Graph::new();
        let xv = g.input(x.clone());
        let pv = g.param(&p);
        let c = g.matmul(xv, pv);
        let c = g.mul(c, c);
        let l = g.mean_all(c);
        g.backward(l);
        g.value(l).item()
    });
}

#[test]
fn grad_transpose_and_reshape() {
    let mut rng = SmallRng::seed_from_u64(6);
    let p = Param::new("p", Tensor::randn(&mut rng, &[3, 4], 1.0));
    check_op(&p, || {
        let mut g = Graph::new();
        let pv = g.param(&p);
        let t = g.transpose_last2(pv);
        let r = g.reshape(t, &[2, 6]);
        let r = g.mul(r, r);
        let l = g.sum_all(r);
        g.backward(l);
        g.value(l).item()
    });
}

#[test]
fn grad_concat0() {
    let mut rng = SmallRng::seed_from_u64(7);
    let other = Tensor::randn(&mut rng, &[2, 3], 1.0);
    let p = Param::new("p", Tensor::randn(&mut rng, &[2, 3], 1.0));
    check_op(&p, || {
        let mut g = Graph::new();
        let pv = g.param(&p);
        let ov = g.input(other.clone());
        let c = g.concat0(&[pv, ov]);
        let c = g.mul(c, c);
        let l = g.mean_all(c);
        g.backward(l);
        g.value(l).item()
    });
}

#[test]
fn grad_relu() {
    // Offset values away from 0 so finite differences don't straddle the kink.
    let p = Param::new(
        "p",
        Tensor::from_vec(vec![-1.0, -0.5, 0.5, 1.0, 2.0, -2.0], &[2, 3]),
    );
    check_op(&p, || {
        let mut g = Graph::new();
        let pv = g.param(&p);
        let r = g.relu(pv);
        let r = g.mul(r, r);
        let l = g.sum_all(r);
        g.backward(l);
        g.value(l).item()
    });
}

#[test]
fn grad_gelu() {
    let mut rng = SmallRng::seed_from_u64(8);
    let p = Param::new("p", Tensor::randn(&mut rng, &[2, 5], 1.0));
    check_op(&p, || {
        let mut g = Graph::new();
        let pv = g.param(&p);
        let r = g.gelu(pv);
        let l = g.sum_all(r);
        g.backward(l);
        g.value(l).item()
    });
}

#[test]
fn grad_softmax_last() {
    let mut rng = SmallRng::seed_from_u64(9);
    let w = Tensor::randn(&mut rng, &[3, 4], 1.0);
    let p = Param::new("p", Tensor::randn(&mut rng, &[3, 4], 1.0));
    check_op(&p, || {
        let mut g = Graph::new();
        let pv = g.param(&p);
        let s = g.softmax_last(pv);
        let wv = g.input(w.clone());
        let s = g.mul(s, wv); // weight so grad is informative
        let l = g.sum_all(s);
        g.backward(l);
        g.value(l).item()
    });
}

#[test]
fn grad_log_softmax_last() {
    let mut rng = SmallRng::seed_from_u64(10);
    let w = Tensor::randn(&mut rng, &[2, 5], 1.0);
    let p = Param::new("p", Tensor::randn(&mut rng, &[2, 5], 1.0));
    check_op(&p, || {
        let mut g = Graph::new();
        let pv = g.param(&p);
        let s = g.log_softmax_last(pv);
        let wv = g.input(w.clone());
        let s = g.mul(s, wv);
        let l = g.mean_all(s);
        g.backward(l);
        g.value(l).item()
    });
}

#[test]
fn grad_sum_last() {
    let mut rng = SmallRng::seed_from_u64(11);
    let p = Param::new("p", Tensor::randn(&mut rng, &[2, 3, 4], 1.0));
    check_op(&p, || {
        let mut g = Graph::new();
        let pv = g.param(&p);
        let s = g.sum_last(pv);
        let s = g.mul(s, s);
        let l = g.sum_all(s);
        g.backward(l);
        g.value(l).item()
    });
}

#[test]
fn grad_layer_norm_all_three_inputs() {
    let mut rng = SmallRng::seed_from_u64(12);
    let x = Param::new("x", Tensor::randn(&mut rng, &[3, 6], 1.0));
    let gamma = Param::new("gamma", Tensor::randn(&mut rng, &[6], 0.5).add_scalar(1.0));
    let beta = Param::new("beta", Tensor::randn(&mut rng, &[6], 0.5));
    let w = Tensor::randn(&mut rng, &[3, 6], 1.0);
    let run = || {
        let mut g = Graph::new();
        let xv = g.param(&x);
        let gv = g.param(&gamma);
        let bv = g.param(&beta);
        let y = g.layer_norm(xv, gv, bv, 1e-5);
        let wv = g.input(w.clone());
        let y = g.mul(y, wv);
        let l = g.sum_all(y);
        g.backward(l);
        g.value(l).item()
    };
    check_op(&x, run);
    gamma.zero_grad();
    check_op(&gamma, run);
    beta.zero_grad();
    check_op(&beta, run);
}

#[test]
fn grad_conv2d_weight_bias_and_input() {
    let mut rng = SmallRng::seed_from_u64(13);
    let spec = Conv2dSpec {
        kernel: 3,
        stride: 1,
        padding: 1,
    };
    let x = Param::new("x", Tensor::randn(&mut rng, &[1, 2, 5, 5], 1.0));
    let w = Param::new("w", Tensor::randn(&mut rng, &[3, 2, 3, 3], 0.5));
    let b = Param::new("b", Tensor::randn(&mut rng, &[3], 0.5));
    let run = || {
        let mut g = Graph::new();
        let xv = g.param(&x);
        let wv = g.param(&w);
        let bv = g.param(&b);
        let y = g.conv2d(xv, wv, Some(bv), spec);
        let y = g.mul(y, y);
        let l = g.mean_all(y);
        g.backward(l);
        g.value(l).item()
    };
    check_op(&w, run);
    x.zero_grad();
    check_op(&x, run);
    b.zero_grad();
    check_op(&b, run);
}

#[test]
fn grad_conv2d_strided() {
    let mut rng = SmallRng::seed_from_u64(14);
    let spec = Conv2dSpec {
        kernel: 3,
        stride: 2,
        padding: 1,
    };
    let x = Tensor::randn(&mut rng, &[2, 1, 6, 6], 1.0);
    let w = Param::new("w", Tensor::randn(&mut rng, &[2, 1, 3, 3], 0.5));
    check_op(&w, || {
        let mut g = Graph::new();
        let xv = g.input(x.clone());
        let wv = g.param(&w);
        let y = g.conv2d(xv, wv, None, spec);
        let y = g.mul(y, y);
        let l = g.sum_all(y);
        g.backward(l);
        g.value(l).item()
    });
}

#[test]
fn grad_maxpool2d_routes_to_argmax() {
    // Distinct values so the argmax is stable under the probe perturbation.
    let p = Param::new(
        "x",
        Tensor::from_vec((0..16).map(|v| v as f32).collect(), &[1, 1, 4, 4]),
    );
    check_op(&p, || {
        let mut g = Graph::new();
        let xv = g.param(&p);
        let y = g.maxpool2d(
            xv,
            Pool2dSpec {
                kernel: 2,
                stride: 2,
            },
        );
        let y = g.mul(y, y);
        let l = g.sum_all(y);
        g.backward(l);
        g.value(l).item()
    });
}

#[test]
fn grad_nll_loss() {
    let mut rng = SmallRng::seed_from_u64(15);
    let p = Param::new("logits", Tensor::randn(&mut rng, &[4, 3], 1.0));
    let targets = vec![0usize, 2, 1, 2];
    check_op(&p, || {
        let mut g = Graph::new();
        let pv = g.param(&p);
        let lp = g.log_softmax_last(pv);
        let l = g.nll_loss(lp, &targets);
        g.backward(l);
        g.value(l).item()
    });
}

#[test]
fn grad_ce_soft() {
    let mut rng = SmallRng::seed_from_u64(16);
    let p = Param::new("logits", Tensor::randn(&mut rng, &[3, 4], 1.0));
    let teacher = Tensor::randn(&mut rng, &[3, 4], 1.0).softmax_last();
    check_op(&p, || {
        let mut g = Graph::new();
        let pv = g.param(&p);
        let lp = g.log_softmax_last(pv);
        let l = g.ce_soft(lp, teacher.clone());
        g.backward(l);
        g.value(l).item()
    });
}

#[test]
fn grad_kl_div() {
    let mut rng = SmallRng::seed_from_u64(17);
    let p = Param::new("logits", Tensor::randn(&mut rng, &[3, 4], 1.0));
    let teacher = Tensor::randn(&mut rng, &[3, 4], 1.0).softmax_last();
    check_op(&p, || {
        let mut g = Graph::new();
        let pv = g.param(&p);
        let lq = g.log_softmax_last(pv);
        let l = g.kl_div(lq, teacher.clone());
        g.backward(l);
        g.value(l).item()
    });
}

#[test]
fn grad_mse_both_sides() {
    let mut rng = SmallRng::seed_from_u64(18);
    let a = Param::new("a", Tensor::randn(&mut rng, &[2, 3], 1.0));
    let b = Param::new("b", Tensor::randn(&mut rng, &[2, 3], 1.0));
    let run = || {
        let mut g = Graph::new();
        let av = g.param(&a);
        let bv = g.param(&b);
        let l = g.mse(av, bv);
        g.backward(l);
        g.value(l).item()
    };
    check_op(&a, run);
    b.zero_grad();
    check_op(&b, run);
}

#[test]
fn grad_reused_node_accumulates() {
    // y = p * p uses `p` twice; grad must be 2p.
    let p = Param::new("p", Tensor::from_vec(vec![3.0, -2.0], &[2]));
    p.zero_grad();
    let mut g = Graph::new();
    let pv = g.param(&p);
    let y = g.mul(pv, pv);
    let l = g.sum_all(y);
    g.backward(l);
    cdcl_tensor::assert_close(p.grad().data(), &[6.0, -4.0], 1e-5);
}

#[test]
fn grad_frozen_param_stays_zero() {
    let p = Param::new("p", Tensor::from_vec(vec![1.0, 2.0], &[2]));
    p.set_trainable(false);
    let mut g = Graph::new();
    let pv = g.param(&p);
    let y = g.mul(pv, pv);
    let l = g.sum_all(y);
    g.backward(l);
    assert_eq!(p.grad().data(), &[0.0, 0.0]);
}

#[test]
fn deep_composite_graph_gradcheck() {
    // A miniature of the real model: conv → relu → pool → flatten → linear →
    // layernorm → log-softmax → nll.
    let mut rng = SmallRng::seed_from_u64(19);
    let spec = Conv2dSpec {
        kernel: 3,
        stride: 1,
        padding: 1,
    };
    let x = Tensor::randn(&mut rng, &[2, 1, 4, 4], 1.0);
    let wc = Param::new("wc", Tensor::randn(&mut rng, &[2, 1, 3, 3], 0.5));
    let wl = Param::new("wl", Tensor::randn(&mut rng, &[8, 3], 0.5));
    let gamma = Param::new("gamma", Tensor::ones(&[3]));
    let beta = Param::new("beta", Tensor::zeros(&[3]));
    let targets = vec![0usize, 2];
    let run = || {
        let mut g = Graph::new();
        let xv = g.input(x.clone());
        let wcv = g.param(&wc);
        let c = g.conv2d(xv, wcv, None, spec);
        let c = g.relu(c);
        let c = g.maxpool2d(
            c,
            Pool2dSpec {
                kernel: 2,
                stride: 2,
            },
        );
        let c = g.reshape(c, &[2, 8]);
        let wlv = g.param(&wl);
        let h = g.matmul(c, wlv);
        let gv = g.param(&gamma);
        let bv = g.param(&beta);
        let h = g.layer_norm(h, gv, bv, 1e-5);
        let lp = g.log_softmax_last(h);
        let l = g.nll_loss(lp, &targets);
        g.backward(l);
        g.value(l).item()
    };
    check_op(&wc, run);
    wl.zero_grad();
    check_op(&wl, run);
    gamma.zero_grad();
    check_op(&gamma, run);
}
