//! Snapshot assembly: how the full [`CdclTrainer`] state maps onto the
//! `cdcl-snapshot` container (DESIGN.md §10).
//!
//! Format v1 sections, in file order:
//!
//! | tag    | contents                                                       |
//! |--------|----------------------------------------------------------------|
//! | `META` | [`CdclConfig`] (backbone + hyper-parameters), task cursor, per-task class counts |
//! | `PARM` | every [`Param`]: name, trainable flag, lr-scale, value tensor  |
//! | `OPTM` | AdamW step count + per-param first/second moments              |
//! | `MEMO` | rehearsal-memory capacity + records (§IV-C tuples)             |
//! | `RNGS` | trainer `SmallRng` state + replay cursor                       |
//! | `CENT` | per-task pseudo-label centroids (Eq. 17)                       |
//!
//! Loading is all-or-nothing and paranoid: the container layer already
//! verified every CRC; this layer re-derives the model structure from
//! `META`, then cross-checks *every* restored fact against it — parameter
//! names/shapes/order, the §IV-A freezing contract, optimizer-moment
//! shapes, memory-record label ranges and image shapes, centroid
//! dimensions. Any mismatch returns [`SnapshotError::Malformed`] and the
//! half-built trainer is dropped; the caller never observes partial state.

use std::path::Path;

use cdcl_nn::{AttentionMode, BackboneConfig, Module};
use cdcl_optim::AdamW;
use cdcl_snapshot::{atomic_write, Reader, Snapshot, SnapshotBuilder, SnapshotError, Writer};
use cdcl_tensor::Tensor;
use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::memory::{MemoryRecord, RehearsalMemory};
use crate::model::CdclModel;
use crate::{CdclConfig, CdclTrainer, LossToggles};

const META: [u8; 4] = *b"META";
const PARM: [u8; 4] = *b"PARM";
const OPTM: [u8; 4] = *b"OPTM";
const MEMO: [u8; 4] = *b"MEMO";
const RNGS: [u8; 4] = *b"RNGS";
const CENT: [u8; 4] = *b"CENT";

/// Bound on structural sizes decoded from `META` (embed dim, class counts,
/// …): generous for any real configuration, small enough that a crafted
/// file cannot trigger absurd allocations while rebuilding the model.
const MAX_STRUCT: usize = 1 << 20;
/// Bound on the number of tasks in a snapshot.
const MAX_TASKS: usize = 4096;

fn malformed<T>(msg: impl Into<String>) -> Result<T, SnapshotError> {
    Err(SnapshotError::Malformed(msg.into()))
}

// ----------------------------------------------------------------------
// Section encoders
// ----------------------------------------------------------------------

fn write_meta(t: &CdclTrainer) -> Vec<u8> {
    let mut w = Writer::new();
    let b = &t.config.backbone;
    w.usize(b.in_channels);
    w.usize(b.in_hw.0);
    w.usize(b.in_hw.1);
    w.usize(b.embed_dim);
    w.usize(b.depth);
    w.usize(b.tokenizer_stages);
    w.usize(b.tokenizer_kernel);
    w.usize(b.mlp_ratio);
    w.u8(match b.attention {
        AttentionMode::TaskKeyed => 0,
        AttentionMode::Simple => 1,
    });
    w.u8(u8::from(b.attn_softmax));
    w.usize(t.config.epochs);
    w.usize(t.config.warmup_epochs);
    w.usize(t.config.batch_size);
    w.usize(t.config.memory_size);
    w.usize(t.config.rehearsal_batch);
    w.f32(t.config.warmup_lr);
    w.f32(t.config.peak_lr);
    w.f32(t.config.min_lr);
    w.f32(t.config.weight_decay);
    w.u8(u8::from(t.config.losses.cil));
    w.u8(u8::from(t.config.losses.til));
    w.u8(u8::from(t.config.losses.rehearsal));
    w.u8(u8::from(t.config.cross_attention));
    w.u64(t.config.seed);
    // Task cursor: tasks completed (training resumes at this task id) and
    // the epoch cursor within it. Checkpoints are written at task
    // boundaries, so the epoch cursor is 0 in format v1; the field exists
    // so finer-grained checkpoints stay a payload change, not a format one.
    let tasks = t.model.num_tasks();
    w.usize(tasks);
    w.usize(0);
    let classes: Vec<u64> = (0..tasks).map(|i| t.model.task_classes(i) as u64).collect();
    w.u64_slice(&classes);
    w.usize(t.model.total_classes());
    w.finish()
}

fn write_params(t: &CdclTrainer) -> Vec<u8> {
    let mut w = Writer::new();
    let entries = t.model.state_dict();
    w.usize(entries.len());
    for (name, p) in entries {
        w.str(&name);
        w.u8(u8::from(p.trainable()));
        w.f32(p.lr_scale());
        w.tensor(&p.value());
    }
    w.finish()
}

fn write_optim(t: &CdclTrainer) -> Vec<u8> {
    let mut w = Writer::new();
    let (steps, entries) = t.optimizer.export_state();
    w.i64(i64::from(steps));
    w.usize(entries.len());
    for (name, m, v) in entries {
        w.str(&name);
        w.tensor(&m);
        w.tensor(&v);
    }
    w.finish()
}

fn write_memory(t: &CdclTrainer) -> Vec<u8> {
    let mut w = Writer::new();
    w.usize(t.memory.capacity());
    let records = t.memory.records();
    w.usize(records.len());
    for r in records {
        w.usize(r.task);
        w.usize(r.label);
        w.usize(r.global_label);
        w.f32(r.confidence);
        w.tensor(&r.x_source);
        w.tensor(&r.x_target);
        w.f32_slice(&r.cil_probs_source);
        w.f32_slice(&r.cil_probs_target);
    }
    w.finish()
}

fn write_rng(t: &CdclTrainer) -> Vec<u8> {
    let mut w = Writer::new();
    for s in t.rng.state() {
        w.u64(s);
    }
    w.usize(t.replay_cursor);
    w.finish()
}

fn write_centroids(t: &CdclTrainer) -> Vec<u8> {
    let mut w = Writer::new();
    w.usize(t.centroids.len());
    for c in &t.centroids {
        w.tensor(c);
    }
    w.finish()
}

// ----------------------------------------------------------------------
// Section decoders
// ----------------------------------------------------------------------

/// Decoded `META`: the config plus the structural descriptor.
struct Meta {
    config: CdclConfig,
    task_classes: Vec<usize>,
    total_classes: usize,
}

fn bounded(v: usize, what: &str) -> Result<usize, SnapshotError> {
    if v == 0 || v > MAX_STRUCT {
        return malformed(format!("{what} = {v} out of range"));
    }
    Ok(v)
}

fn finite(v: f32, what: &str) -> Result<f32, SnapshotError> {
    if !v.is_finite() {
        return malformed(format!("{what} is not finite"));
    }
    Ok(v)
}

fn read_meta(payload: &[u8]) -> Result<Meta, SnapshotError> {
    let mut r = Reader::new(payload);
    let backbone = BackboneConfig {
        in_channels: bounded(r.usize()?, "in_channels")?,
        in_hw: (bounded(r.usize()?, "in_h")?, bounded(r.usize()?, "in_w")?),
        embed_dim: bounded(r.usize()?, "embed_dim")?,
        depth: bounded(r.usize()?, "depth")?,
        tokenizer_stages: bounded(r.usize()?, "tokenizer_stages")?,
        tokenizer_kernel: bounded(r.usize()?, "tokenizer_kernel")?,
        mlp_ratio: bounded(r.usize()?, "mlp_ratio")?,
        attention: match r.u8()? {
            0 => AttentionMode::TaskKeyed,
            1 => AttentionMode::Simple,
            v => return malformed(format!("attention mode byte {v}")),
        },
        attn_softmax: r.bool()?,
    };
    if backbone.in_channels * backbone.in_hw.0 * backbone.in_hw.1 > MAX_STRUCT {
        return malformed("input volume out of range");
    }
    let config = CdclConfig {
        backbone,
        epochs: r.usize()?,
        warmup_epochs: r.usize()?,
        batch_size: r.usize()?,
        memory_size: r.usize()?,
        rehearsal_batch: r.usize()?,
        warmup_lr: finite(r.f32()?, "warmup_lr")?,
        peak_lr: finite(r.f32()?, "peak_lr")?,
        min_lr: finite(r.f32()?, "min_lr")?,
        weight_decay: finite(r.f32()?, "weight_decay")?,
        losses: LossToggles {
            cil: r.bool()?,
            til: r.bool()?,
            rehearsal: r.bool()?,
        },
        cross_attention: r.bool()?,
        seed: r.u64()?,
    };
    let tasks = r.usize()?;
    if tasks > MAX_TASKS {
        return malformed(format!("{tasks} tasks"));
    }
    let epoch_cursor = r.usize()?;
    if epoch_cursor != 0 {
        return malformed("format v1 checkpoints only at task boundaries");
    }
    let raw_classes = r.u64_vec()?;
    if raw_classes.len() != tasks {
        return malformed(format!(
            "task cursor {tasks} but {} class counts",
            raw_classes.len()
        ));
    }
    let mut task_classes = Vec::with_capacity(tasks);
    for (i, &c) in raw_classes.iter().enumerate() {
        let c = usize::try_from(c)
            .ok()
            .filter(|&c| (1..=MAX_STRUCT).contains(&c))
            .ok_or_else(|| SnapshotError::Malformed(format!("task {i} class count {c}")))?;
        task_classes.push(c);
    }
    let total_classes = r.usize()?;
    if total_classes != task_classes.iter().sum::<usize>() {
        return malformed("total_classes does not match per-task counts");
    }
    r.finish()?;
    Ok(Meta {
        config,
        task_classes,
        total_classes,
    })
}

fn apply_params(model: &CdclModel, payload: &[u8]) -> Result<(), SnapshotError> {
    let mut r = Reader::new(payload);
    let params = model.params();
    let count = r.usize()?;
    if count != params.len() {
        return malformed(format!(
            "snapshot has {count} params, rebuilt model has {}",
            params.len()
        ));
    }
    for p in &params {
        let name = r.str()?;
        if name != p.name() {
            return malformed(format!(
                "param order mismatch: snapshot `{name}`, model `{}`",
                p.name()
            ));
        }
        let trainable = r.bool()?;
        let lr_scale = finite(r.f32()?, "lr_scale")?;
        if lr_scale <= 0.0 {
            return malformed(format!("lr_scale {lr_scale} on `{name}`"));
        }
        let value = r.tensor()?;
        p.try_set_value(value).map_err(SnapshotError::Malformed)?;
        p.set_trainable(trainable);
        p.set_lr_scale(lr_scale);
    }
    r.finish()?;
    // §IV-A freezing contract, re-checked against the restored flags: every
    // retired `K_i`/`b_i` must be frozen, and nothing else may be. The
    // graph verifier re-audits gradient flow on the first training or
    // serving graph; this is the static half.
    let expected: Vec<usize> = model
        .expected_frozen_params()
        .iter()
        .map(cdcl_autograd::Param::key)
        .collect();
    for p in &params {
        let should_freeze = expected.contains(&p.key());
        if p.trainable() == should_freeze {
            return malformed(format!(
                "freezing contract violated on `{}`: trainable={}, expected {}",
                p.name(),
                p.trainable(),
                !should_freeze
            ));
        }
    }
    Ok(())
}

fn read_optim(
    model: &CdclModel,
    config: &CdclConfig,
    payload: &[u8],
) -> Result<AdamW, SnapshotError> {
    let mut r = Reader::new(payload);
    let steps = r.i64()?;
    let steps = i32::try_from(steps)
        .map_err(|_| SnapshotError::Malformed(format!("optimizer step count {steps}")))?;
    let count = r.usize()?;
    let mut entries = Vec::with_capacity(count.min(MAX_STRUCT));
    for _ in 0..count {
        let name = r.str()?;
        let m = r.tensor()?;
        let v = r.tensor()?;
        entries.push((name, m, v));
    }
    r.finish()?;
    let mut optimizer = AdamW::with_weight_decay(model.params(), config.weight_decay);
    optimizer
        .import_state(steps, entries)
        .map_err(SnapshotError::Malformed)?;
    Ok(optimizer)
}

fn read_memory(
    model: &CdclModel,
    config: &CdclConfig,
    payload: &[u8],
) -> Result<RehearsalMemory, SnapshotError> {
    let mut r = Reader::new(payload);
    let capacity = r.usize()?;
    if capacity != config.memory_size {
        return malformed(format!(
            "memory capacity {capacity} != config memory_size {}",
            config.memory_size
        ));
    }
    let count = r.usize()?;
    if count > capacity {
        return malformed(format!("{count} memory records exceed capacity {capacity}"));
    }
    let tasks = model.num_tasks();
    let total = model.total_classes();
    let image_shape = [
        config.backbone.in_channels,
        config.backbone.in_hw.0,
        config.backbone.in_hw.1,
    ];
    let mut records = Vec::with_capacity(count);
    for i in 0..count {
        let task = r.usize()?;
        let label = r.usize()?;
        let global_label = r.usize()?;
        let confidence = finite(r.f32()?, "record confidence")?;
        let x_source = r.tensor()?;
        let x_target = r.tensor()?;
        let cil_probs_source = r.f32_vec()?;
        let cil_probs_target = r.f32_vec()?;
        if task >= tasks {
            return malformed(format!("memory record {i}: task {task} of {tasks}"));
        }
        if label >= model.task_classes(task) {
            return malformed(format!("memory record {i}: label {label} out of range"));
        }
        if global_label != model.class_offset(task) + label {
            return malformed(format!("memory record {i}: inconsistent global label"));
        }
        if x_source.shape() != image_shape || x_target.shape() != image_shape {
            return malformed(format!("memory record {i}: image shape mismatch"));
        }
        if cil_probs_source.len() > total || cil_probs_target.len() > total {
            return malformed(format!(
                "memory record {i}: stored probs exceed class count"
            ));
        }
        records.push(MemoryRecord {
            task,
            x_source,
            x_target,
            label,
            global_label,
            cil_probs_source,
            cil_probs_target,
            confidence,
        });
    }
    r.finish()?;
    Ok(RehearsalMemory::restore(capacity, records))
}

fn read_rng(payload: &[u8]) -> Result<(SmallRng, usize), SnapshotError> {
    let mut r = Reader::new(payload);
    let mut state = [0u64; 4];
    for s in &mut state {
        *s = r.u64()?;
    }
    let replay_cursor = r.usize()?;
    r.finish()?;
    Ok((SmallRng::from_state(state), replay_cursor))
}

fn read_centroids(model: &CdclModel, payload: &[u8]) -> Result<Vec<Tensor>, SnapshotError> {
    let mut r = Reader::new(payload);
    let count = r.usize()?;
    if count != model.num_tasks() {
        return malformed(format!(
            "{count} centroid sets for {} tasks",
            model.num_tasks()
        ));
    }
    let d = model.backbone().embed_dim();
    let mut out = Vec::with_capacity(count);
    for t in 0..count {
        let c = r.tensor()?;
        let ok = c.shape().len() == 2
            && c.shape()[1] == d
            && (c.shape()[0] == 0 || c.shape()[0] == model.task_classes(t));
        if !ok {
            return malformed(format!("task {t} centroids have shape {:?}", c.shape()));
        }
        out.push(c);
    }
    r.finish()?;
    Ok(out)
}

// ----------------------------------------------------------------------
// Trainer entry points
// ----------------------------------------------------------------------

impl CdclTrainer {
    /// Serializes the complete learner state — every parameter with its
    /// trainable/frozen flag, the task structure, rehearsal memory,
    /// per-task centroids, RNG state, optimizer moments, and the task
    /// cursor — as one snapshot container. Deterministic: the same trainer
    /// state always yields the same bytes.
    pub fn snapshot_bytes(&self) -> Vec<u8> {
        let mut b = SnapshotBuilder::new();
        b.section(META, write_meta(self));
        b.section(PARM, write_params(self));
        b.section(OPTM, write_optim(self));
        b.section(MEMO, write_memory(self));
        b.section(RNGS, write_rng(self));
        b.section(CENT, write_centroids(self));
        b.finish()
    }

    /// Writes [`CdclTrainer::snapshot_bytes`] to `path` through the atomic
    /// write-temp-then-rename helper.
    pub fn save_snapshot(&self, path: &Path) -> Result<(), SnapshotError> {
        atomic_write(path, &self.snapshot_bytes())
    }

    /// Rebuilds a trainer from snapshot bytes. All-or-nothing: the model
    /// structure is re-derived from `META` (replaying `add_task` with the
    /// recorded class counts), then every section is validated against it
    /// before the trainer is assembled — any inconsistency returns a typed
    /// [`SnapshotError`] and nothing escapes. The restored trainer
    /// continues training bitwise-identically to one that never stopped
    /// (asserted by the determinism suite).
    pub fn from_snapshot_bytes(bytes: &[u8]) -> Result<Self, SnapshotError> {
        let snap = Snapshot::parse(bytes)?;
        let meta = read_meta(snap.section(META)?)?;

        // Rebuild the structure with a throwaway RNG — every tensor it
        // initializes is overwritten by `PARM` — then restore the real
        // generator state from `RNGS`.
        let mut scaffold_rng = SmallRng::seed_from_u64(0);
        let mut model = CdclModel::new(&mut scaffold_rng, meta.config.backbone);
        for &classes in &meta.task_classes {
            model.add_task(&mut scaffold_rng, classes);
        }
        if model.total_classes() != meta.total_classes {
            return malformed("rebuilt model disagrees with META on total classes");
        }

        apply_params(&model, snap.section(PARM)?)?;
        let optimizer = read_optim(&model, &meta.config, snap.section(OPTM)?)?;
        let memory = read_memory(&model, &meta.config, snap.section(MEMO)?)?;
        let (rng, replay_cursor) = read_rng(snap.section(RNGS)?)?;
        let centroids = read_centroids(&model, snap.section(CENT)?)?;

        Ok(Self {
            config: meta.config,
            model,
            memory,
            optimizer,
            rng,
            replay_cursor,
            last_pairs: Vec::new(),
            graph_verified: false,
            centroids,
            last_centroids: None,
            step_graph: cdcl_autograd::Graph::new(),
        })
    }

    /// Loads a snapshot file written by [`CdclTrainer::save_snapshot`] (or
    /// the `CDCL_CKPT_DIR` checkpoint hook) and resumes from it.
    pub fn resume_from(path: &Path) -> Result<Self, SnapshotError> {
        let bytes = std::fs::read(path)?;
        Self::from_snapshot_bytes(&bytes)
    }

    /// The task cursor (`META.task_classes.len()`) recorded in snapshot
    /// bytes. Parsing validates every CRC, so a corrupt file in the
    /// checkpoint directory surfaces as a typed error rather than silently
    /// losing the resume race.
    fn peek_task_cursor(bytes: &[u8]) -> Result<usize, SnapshotError> {
        let snap = Snapshot::parse(bytes)?;
        Ok(read_meta(snap.section(META)?)?.task_classes.len())
    }

    /// Resumes from the checkpoint in `dir` with the **largest recorded
    /// task cursor** — read from each candidate's `META` section, not
    /// inferred from file names or directory iteration order. If several
    /// files tie on the newest cursor (e.g. two runs checkpointed into the
    /// same directory), resuming any one of them would be an arbitrary
    /// choice, so this returns [`SnapshotError::AmbiguousLatest`] listing
    /// the tied paths in sorted order; pick one explicitly with
    /// [`CdclTrainer::resume_from`].
    pub fn resume_latest(dir: &Path) -> Result<Self, SnapshotError> {
        let mut snaps: Vec<std::path::PathBuf> = Vec::new();
        for entry in std::fs::read_dir(dir)? {
            let path = entry?.path();
            if path.extension().is_some_and(|e| e == "cdclsnap") {
                snaps.push(path);
            }
        }
        snaps.sort();
        let mut best: Option<(usize, std::path::PathBuf, Vec<u8>)> = None;
        let mut tied: Vec<std::path::PathBuf> = Vec::new();
        for path in snaps {
            let bytes = std::fs::read(&path)?;
            let cursor = Self::peek_task_cursor(&bytes)?;
            match &best {
                Some((newest, _, _)) if cursor < *newest => {}
                Some((newest, _, _)) if cursor == *newest => tied.push(path),
                _ => {
                    tied.clear();
                    best = Some((cursor, path, bytes));
                }
            }
        }
        match best {
            None => malformed(format!("no .cdclsnap files in {}", dir.display())),
            Some((cursor, path, bytes)) => {
                if tied.is_empty() {
                    return Self::from_snapshot_bytes(&bytes);
                }
                let mut candidates: Vec<String> = tied
                    .iter()
                    .chain(std::iter::once(&path))
                    .map(|p| p.display().to_string())
                    .collect();
                candidates.sort();
                Err(SnapshotError::AmbiguousLatest { cursor, candidates })
            }
        }
    }
}
