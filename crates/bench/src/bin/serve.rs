//! `cdcl-serve`: batched TIL/CIL inference over a `cdcl-snapshot` file.
//!
//! Loads a checkpoint written by the trainer (or `save_snapshot`), re-runs
//! the graph verifier over every task's frozen `K_i`/`b_i` before answering
//! anything, then serves JSON-lines prediction requests with a dynamic
//! micro-batching queue — requests accumulate until `--max-batch` is
//! reached, a blank line arrives, or the stream ends, and each flush stacks
//! same-shaped work into one forward pass per `(mode, task)` group.
//!
//! ```text
//! cargo run --release -p cdcl-bench --bin cdcl-serve -- \
//!     --snapshot ckpts/task001.cdclsnap --bench-out BENCH_serve.json \
//!     < requests.jsonl > responses.jsonl
//! ```
//!
//! Request lines (`id` echoes back; `task` is required for `"til"`):
//!
//! ```text
//! {"id": 1, "mode": "til", "task": 0, "image": [0.0, ...]}   // c*h*w floats
//! {"id": 2, "mode": "cil", "image": [0.0, ...]}
//! ```
//!
//! Responses carry `pred` (argmax class — task-local for TIL, global for
//! CIL) and the full probability row; malformed requests get
//! `{"ok": false, "error": ...}` instead of aborting the server, and a
//! batch whose output probabilities contain NaN/Inf is answered with
//! errors (counted in `cdcl_serve_nonfinite_total`) rather than garbage
//! predictions. With `--tcp ADDR` the same protocol runs over a
//! `std::net` accept loop (single-threaded, one connection at a time — the
//! kernel pool already parallelizes the forward pass); a connection
//! opening with `GET /metrics` is answered with the Prometheus exposition
//! of the `cdcl_serve_*` registry metrics. On any stream the bare line
//! `METRICS` returns the registry as one JSON object, and
//! `--metrics-every N` prints a registry summary to stderr every `N`
//! requests. Per-batch latency goes to `cdcl-telemetry` as `serve_batch`
//! events and is summarized in `--bench-out` (`BENCH_serve.json`). The
//! engine lives in `cdcl_bench::serve` so the TCP integration test can
//! drive it in-process.

fn main() {
    let args = cdcl_bench::serve::parse_args();
    cdcl_bench::serve::run(&args);
}
