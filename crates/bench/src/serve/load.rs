//! The `serve-load` generator (DESIGN.md §13): sustained multi-connection
//! load against a running `cdcl-serve --tcp` instance.
//!
//! Each of `--conns` client threads opens one TCP connection and drives
//! `--requests` pipelined JSONL requests through it in windows of
//! `--window` (send a window, terminate it with a blank flush line, read
//! the window's responses back). Every response is verified — `ok:true`,
//! ids echoed in send order, a prediction present — so the run doubles as
//! a correctness check under concurrency: one dropped, duplicated, or
//! reordered response fails the whole run. The report
//! (`BENCH_serve_load.json`) claims sustained RPS over wall-clock and the
//! p50/p95/p99 request round-trip, which is what the CI `bench-diff` soft
//! gate tracks.
//!
//! Request images are generated deterministically from the request id (no
//! RNG, no timestamps), so two runs against the same snapshot exercise
//! identical inputs.

use super::LatencySummary;
use serde::{Deserialize, Serialize};
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Parsed `serve-load` command line.
#[derive(Debug)]
pub struct LoadArgs {
    /// Server address (`host:port`) of a running `cdcl-serve --tcp`.
    pub addr: String,
    /// Concurrent client connections.
    pub conns: usize,
    /// Requests per connection.
    pub requests: usize,
    /// Pipelining window: requests written before the blank flush line.
    pub window: usize,
    /// Target model id (omitted when the server has exactly one model).
    pub model: Option<String>,
    /// `"cil"` or `"til"`.
    pub mode: String,
    /// Task id (TIL mode).
    pub task: usize,
    /// Floats per request image; 0 = probe the server for the expected
    /// length before starting.
    pub image_floats: usize,
    pub bench_out: Option<String>,
}

impl Default for LoadArgs {
    fn default() -> Self {
        Self {
            addr: String::new(),
            conns: 4,
            requests: 200,
            window: 16,
            model: None,
            mode: "cil".to_string(),
            task: 0,
            image_floats: 0,
            bench_out: Some("BENCH_serve_load.json".to_string()),
        }
    }
}

/// The `serve-load` usage text.
pub fn load_usage() -> String {
    "usage: serve-load --addr <host:port>\n\
     \x20   [--conns <n>] [--requests <per-conn>] [--window <n>]\n\
     \x20   [--model <id>] [--mode til|cil] [--task <n>]\n\
     \x20   [--image-floats <n>] [--bench-out <path|none>]"
        .to_string()
}

fn flag_value(argv: &[String], i: usize) -> Result<&str, String> {
    argv.get(i + 1)
        .map(|s| s.as_str())
        .ok_or_else(|| format!("{} needs a value\n{}", argv[i], load_usage()))
}

fn flag_usize(argv: &[String], i: usize) -> Result<usize, String> {
    let v = flag_value(argv, i)?;
    v.parse().map_err(|_| {
        format!(
            "{} expects a non-negative integer, got {v:?}\n{}",
            argv[i],
            load_usage()
        )
    })
}

/// Parses a `serve-load` argument vector; every CLI mistake is a usage
/// error, never a panic.
pub fn parse_load_args_from(argv: &[String]) -> Result<LoadArgs, String> {
    let mut args = LoadArgs::default();
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--addr" => args.addr = flag_value(argv, i)?.to_string(),
            "--conns" => {
                args.conns = flag_usize(argv, i)?;
                if args.conns == 0 {
                    return Err(format!("--conns must be positive\n{}", load_usage()));
                }
            }
            "--requests" => {
                args.requests = flag_usize(argv, i)?;
                if args.requests == 0 {
                    return Err(format!("--requests must be positive\n{}", load_usage()));
                }
            }
            "--window" => {
                args.window = flag_usize(argv, i)?;
                if args.window == 0 {
                    return Err(format!("--window must be positive\n{}", load_usage()));
                }
            }
            "--model" => args.model = Some(flag_value(argv, i)?.to_string()),
            "--mode" => {
                let mode = flag_value(argv, i)?;
                if mode != "til" && mode != "cil" {
                    return Err(format!("--mode expects til or cil\n{}", load_usage()));
                }
                args.mode = mode.to_string();
            }
            "--task" => args.task = flag_usize(argv, i)?,
            "--image-floats" => args.image_floats = flag_usize(argv, i)?,
            "--bench-out" => {
                args.bench_out = match flag_value(argv, i)? {
                    "none" => None,
                    path => Some(path.to_string()),
                };
            }
            other => return Err(format!("unknown argument {other}\n{}", load_usage())),
        }
        i += 2;
    }
    if args.addr.is_empty() {
        return Err(format!("--addr <host:port> is required\n{}", load_usage()));
    }
    Ok(args)
}

/// Server responses as the client sees them (a deserializable mirror of
/// the server's `Response`; absent fields decode to `None`).
#[derive(Debug, Deserialize)]
struct ClientResponse {
    id: u64,
    ok: bool,
    pred: Option<usize>,
    error: Option<String>,
}

/// The `BENCH_serve_load.json` payload.
#[derive(Debug, Serialize)]
pub struct LoadReport {
    pub addr: String,
    pub conns: usize,
    pub requests_per_conn: usize,
    pub window: usize,
    pub image_floats: usize,
    /// Requests sent (all of them got a response, or the run failed).
    pub sent: u64,
    pub ok_responses: u64,
    /// `ok:false` busy responses (admission shed; still counted answered).
    pub busy_responses: u64,
    /// Wall-clock duration of the whole load run.
    pub duration_secs: f64,
    /// Answered requests over wall-clock duration.
    pub rps: f64,
    /// Request round-trip latency (microseconds), measured per pipelined
    /// window from first byte written to last response read.
    pub latency_us: LatencySummary,
}

/// Deterministic pseudo-image: request id and element index hash to a
/// value in `[0, 1)` — stable across runs, no RNG.
fn image_for(id: u64, len: usize) -> Vec<f32> {
    (0..len)
        .map(|j| ((id.wrapping_mul(31).wrapping_add(j as u64 * 7)) % 97) as f32 / 97.0)
        .collect()
}

/// Asks the server how long an image it expects by sending an
/// intentionally empty one and parsing the validation error
/// (`… model expects N (c=…, h=…, w=…)`).
fn probe_image_len(addr: &str, model: Option<&str>) -> Result<usize, String> {
    let conn = TcpStream::connect(addr).map_err(|e| format!("serve-load: connect {addr}: {e}"))?;
    let cloned = conn
        .try_clone()
        .map_err(|e| format!("serve-load: clone probe connection: {e}"))?;
    let mut reader = BufReader::new(cloned);
    let mut writer = BufWriter::new(conn);
    let model_field = match model {
        Some(m) => format!("\"model\":\"{m}\","),
        None => String::new(),
    };
    writeln!(
        writer,
        "{{\"id\":0,{model_field}\"mode\":\"cil\",\"image\":[]}}"
    )
    .and_then(|_| writeln!(writer))
    .and_then(|_| writer.flush())
    .map_err(|e| format!("serve-load: probe write: {e}"))?;
    let mut line = String::new();
    reader
        .read_line(&mut line)
        .map_err(|e| format!("serve-load: probe read: {e}"))?;
    let resp: ClientResponse = serde_json::from_str(line.trim())
        .map_err(|e| format!("serve-load: probe response unparsable: {e} ({line:?})"))?;
    if resp.ok {
        return Ok(0); // a model expecting zero-length images; unlikely
    }
    let err = resp.error.unwrap_or_default();
    let tail = err
        .split("model expects ")
        .nth(1)
        .ok_or_else(|| format!("serve-load: probe failed: {err}"))?;
    let digits: String = tail.chars().take_while(|c| c.is_ascii_digit()).collect();
    digits
        .parse()
        .map_err(|_| format!("serve-load: cannot parse image length from {err:?}"))
}

/// One client connection's worth of load: `requests` pipelined in windows,
/// every response verified for order and integrity. Returns the window
/// round-trip latencies (one sample per request).
fn drive_connection(
    args: &LoadArgs,
    conn_idx: usize,
    image_floats: usize,
    sent: &AtomicU64,
    ok_responses: &AtomicU64,
    busy_responses: &AtomicU64,
) -> Result<Vec<f64>, String> {
    let conn = TcpStream::connect(&args.addr)
        .map_err(|e| format!("conn {conn_idx}: connect {}: {e}", args.addr))?;
    let cloned = conn
        .try_clone()
        .map_err(|e| format!("conn {conn_idx}: clone: {e}"))?;
    let mut reader = BufReader::new(cloned);
    let mut writer = BufWriter::new(conn);
    let mut latencies = Vec::with_capacity(args.requests);
    let model_field = match &args.model {
        Some(m) => format!("\"model\":\"{m}\","),
        None => String::new(),
    };
    let task_field = if args.mode == "til" {
        format!("\"task\":{},", args.task)
    } else {
        String::new()
    };
    let mut line = String::new();
    let mut issued = 0usize;
    while issued < args.requests {
        let window = args.window.min(args.requests - issued);
        let started = Instant::now();
        let mut expected_ids = Vec::with_capacity(window);
        for k in 0..window {
            // Ids are globally unique and encode (connection, sequence) so
            // cross-connection mixups are detectable.
            let id = (conn_idx as u64 + 1) * 1_000_000 + (issued + k) as u64;
            expected_ids.push(id);
            let image = image_for(id, image_floats);
            let image_json: Vec<String> = image.iter().map(|v| format!("{v}")).collect();
            writeln!(
                writer,
                "{{\"id\":{id},{model_field}\"mode\":\"{}\",{task_field}\"image\":[{}]}}",
                args.mode,
                image_json.join(",")
            )
            .map_err(|e| format!("conn {conn_idx}: write: {e}"))?;
        }
        writeln!(writer)
            .and_then(|_| writer.flush())
            .map_err(|e| format!("conn {conn_idx}: flush: {e}"))?;
        // ordering: stat — monotonic telemetry counter; readers tolerate staleness.
        sent.fetch_add(window as u64, Ordering::Relaxed);
        for &expect in &expected_ids {
            line.clear();
            let n = reader
                .read_line(&mut line)
                .map_err(|e| format!("conn {conn_idx}: read: {e}"))?;
            if n == 0 {
                return Err(format!(
                    "conn {conn_idx}: server closed with responses outstanding (dropped request {expect})"
                ));
            }
            let resp: ClientResponse = serde_json::from_str(line.trim())
                .map_err(|e| format!("conn {conn_idx}: garbled response: {e} ({line:?})"))?;
            if resp.id != expect {
                return Err(format!(
                    "conn {conn_idx}: out-of-order response: expected id {expect}, got {}",
                    resp.id
                ));
            }
            if resp.ok {
                if resp.pred.is_none() {
                    return Err(format!(
                        "conn {conn_idx}: ok response without a prediction (id {expect})"
                    ));
                }
                // ordering: stat — monotonic telemetry counter; readers tolerate staleness.
                ok_responses.fetch_add(1, Ordering::Relaxed);
            } else {
                let err = resp.error.unwrap_or_default();
                if err.starts_with("busy") {
                    // ordering: stat — monotonic telemetry counter; readers tolerate staleness.
                    busy_responses.fetch_add(1, Ordering::Relaxed);
                } else {
                    return Err(format!("conn {conn_idx}: request {expect} failed: {err}"));
                }
            }
        }
        let window_us = started.elapsed().as_secs_f64() * 1e6;
        for _ in 0..window {
            latencies.push(window_us);
        }
        issued += window;
    }
    Ok(latencies)
}

/// Runs the full load: `conns` concurrent client threads, every response
/// verified. Errs if any connection saw a dropped, garbled, reordered, or
/// non-busy-failed response.
pub fn run_load(args: &LoadArgs) -> Result<LoadReport, String> {
    let image_floats = if args.image_floats > 0 {
        args.image_floats
    } else {
        probe_image_len(&args.addr, args.model.as_deref())?
    };
    let sent = AtomicU64::new(0);
    let ok_responses = AtomicU64::new(0);
    let busy_responses = AtomicU64::new(0);
    let latencies: Mutex<Vec<f64>> = Mutex::new(Vec::new());
    let errors: Mutex<Vec<String>> = Mutex::new(Vec::new());
    let started = Instant::now();
    std::thread::scope(|s| {
        for conn_idx in 0..args.conns {
            let (sent, ok_responses, busy_responses) = (&sent, &ok_responses, &busy_responses);
            let (latencies, errors) = (&latencies, &errors);
            s.spawn(move || {
                match drive_connection(
                    args,
                    conn_idx,
                    image_floats,
                    sent,
                    ok_responses,
                    busy_responses,
                ) {
                    Ok(lat) => match latencies.lock() {
                        Ok(mut all) => all.extend(lat),
                        Err(poisoned) => poisoned.into_inner().extend(lat),
                    },
                    Err(e) => match errors.lock() {
                        Ok(mut all) => all.push(e),
                        Err(poisoned) => poisoned.into_inner().push(e),
                    },
                }
            });
        }
    });
    let duration_secs = started.elapsed().as_secs_f64();
    let errors = match errors.into_inner() {
        Ok(v) => v,
        Err(poisoned) => poisoned.into_inner(),
    };
    if !errors.is_empty() {
        return Err(errors.join("; "));
    }
    let latencies = match latencies.into_inner() {
        Ok(v) => v,
        Err(poisoned) => poisoned.into_inner(),
    };
    // ordering: stat — monotonic telemetry counter; readers tolerate staleness.
    let ok = ok_responses.load(Ordering::Relaxed);
    let busy = busy_responses.load(Ordering::Relaxed);
    Ok(LoadReport {
        addr: args.addr.clone(),
        conns: args.conns,
        requests_per_conn: args.requests,
        window: args.window,
        image_floats,
        // ordering: stat — monotonic telemetry counter; readers tolerate staleness.
        sent: sent.load(Ordering::Relaxed),
        ok_responses: ok,
        busy_responses: busy,
        duration_secs,
        rps: if duration_secs > 0.0 {
            (ok + busy) as f64 / duration_secs
        } else {
            0.0
        },
        latency_us: LatencySummary::from_samples(latencies),
    })
}
