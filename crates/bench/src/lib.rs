//! Experiment harness shared by the table/figure binaries.
//!
//! Each binary in `src/bin/` regenerates one artifact of the paper's
//! evaluation (see DESIGN.md §5):
//!
//! | binary    | paper artifact |
//! |-----------|----------------|
//! | `table1`  | Table I — Office-31, MNIST↔USPS, VisDA-2017 (TIL + CIL, + TVT static row) |
//! | `table2`  | Table II — Office-Home (12 pairs) |
//! | `table3`  | Table III — DomainNet source→target matrices |
//! | `table4`  | Table IV — loss/attention ablation on MNIST↔USPS |
//! | `figure2` | Figure 2 — per-task accuracy evolution on VisDA-2017 |
//!
//! Every binary accepts `--scale smoke|standard`, an optional
//! `--methods a,b,c` filter, and `--out <path>` for a JSON dump next to the
//! printed table.

pub mod serve;
pub mod traind;

use cdcl_baselines::{
    run_static_uda, BaselineConfig, CdTransSize, CdTransTrainer, DerTrainer, DerVariant,
    HalTrainer, MlsTrainer,
};
use cdcl_core::{run_stream, CdclConfig, CdclTrainer, StreamResult};
use cdcl_data::{CrossDomainStream, Scale};
use serde::Serialize;

/// The continual methods compared in the paper's tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Method {
    /// DER (logit replay).
    Der,
    /// DER++ (logit + label replay).
    DerPlusPlus,
    /// HAL (replay + anchors).
    Hal,
    /// MLS (supervised cross-domain CL).
    Mls,
    /// CDTrans small.
    CdTransS,
    /// CDTrans base.
    CdTransB,
    /// CDCL (ours).
    Cdcl,
}

impl Method {
    /// Every method, in the paper's row order.
    pub const ALL: [Method; 7] = [
        Method::Der,
        Method::DerPlusPlus,
        Method::Hal,
        Method::Mls,
        Method::CdTransS,
        Method::CdTransB,
        Method::Cdcl,
    ];

    /// Row label.
    pub fn label(self) -> &'static str {
        match self {
            Method::Der => "DER",
            Method::DerPlusPlus => "DER++",
            Method::Hal => "HAL",
            Method::Mls => "MLS",
            Method::CdTransS => "CDTrans-S",
            Method::CdTransB => "CDTrans-B",
            Method::Cdcl => "Ours",
        }
    }

    /// Parses a comma-separated `--methods` filter entry.
    pub fn parse(s: &str) -> Option<Method> {
        match s.to_ascii_lowercase().as_str() {
            "der" => Some(Method::Der),
            "der++" | "derpp" => Some(Method::DerPlusPlus),
            "hal" => Some(Method::Hal),
            "mls" | "msl" => Some(Method::Mls),
            "cdtrans-s" | "cdtranss" => Some(Method::CdTransS),
            "cdtrans-b" | "cdtransb" => Some(Method::CdTransB),
            "cdcl" | "ours" => Some(Method::Cdcl),
            _ => None,
        }
    }
}

/// Experiment configuration derived from the CLI.
#[derive(Debug, Clone)]
pub struct ExperimentConfig {
    /// Data scale.
    pub scale: Scale,
    /// Epochs per task.
    pub epochs: usize,
    /// Warm-up epochs per task.
    pub warmup_epochs: usize,
    /// Memory size (records).
    pub memory_size: usize,
    /// Methods to run.
    pub methods: Vec<Method>,
    /// JSON output path.
    pub out: Option<String>,
    /// Run the full pair set where the binary defaults to a subset.
    pub full: bool,
}

impl ExperimentConfig {
    /// Parses the common CLI arguments; unknown flags abort with usage help.
    pub fn from_args() -> Self {
        let mut cfg = Self {
            scale: Scale::Standard,
            epochs: 10,
            warmup_epochs: 3,
            memory_size: 200,
            methods: Method::ALL.to_vec(),
            out: None,
            full: false,
        };
        let args: Vec<String> = std::env::args().skip(1).collect();
        let mut i = 0;
        while i < args.len() {
            match args[i].as_str() {
                "--scale" => {
                    i += 1;
                    cfg.scale = match args.get(i).map(String::as_str) {
                        Some("smoke") => Scale::Smoke,
                        Some("standard") => Scale::Standard,
                        Some("paper") => Scale::Paper,
                        other => panic!("unknown scale {other:?} (smoke|standard|paper)"),
                    };
                    if cfg.scale == Scale::Smoke {
                        cfg.epochs = 8;
                        cfg.warmup_epochs = 2;
                    }
                }
                "--epochs" => {
                    i += 1;
                    cfg.epochs = args[i].parse().expect("--epochs <n>");
                }
                "--warmup" => {
                    i += 1;
                    cfg.warmup_epochs = args[i].parse().expect("--warmup <n>");
                }
                "--memory" => {
                    i += 1;
                    cfg.memory_size = args[i].parse().expect("--memory <n>");
                }
                "--methods" => {
                    i += 1;
                    cfg.methods = args[i]
                        .split(',')
                        .map(|m| Method::parse(m).unwrap_or_else(|| panic!("unknown method {m}")))
                        .collect();
                }
                "--out" => {
                    i += 1;
                    cfg.out = Some(args[i].clone());
                }
                "--full" => cfg.full = true,
                other => panic!(
                    "unknown argument {other}; known: --scale --epochs --warmup --memory --methods --out --full"
                ),
            }
            i += 1;
        }
        cfg
    }

    /// CDCL configuration at this experiment scale.
    pub fn cdcl(&self, stream: &CrossDomainStream) -> CdclConfig {
        let mut c = CdclConfig {
            epochs: self.epochs,
            warmup_epochs: self.warmup_epochs,
            memory_size: self.memory_size,
            ..CdclConfig::default()
        };
        c.backbone.in_channels = stream.image_layout.0;
        c.backbone.in_hw = stream.image_layout.1;
        c
    }

    /// Baseline configuration at this experiment scale.
    pub fn baseline(&self, stream: &CrossDomainStream) -> BaselineConfig {
        let mut c = BaselineConfig {
            epochs: self.epochs,
            warmup_epochs: self.warmup_epochs,
            memory_size: self.memory_size,
            ..BaselineConfig::default()
        };
        c.backbone.in_channels = stream.image_layout.0;
        c.backbone.in_hw = stream.image_layout.1;
        c
    }
}

/// Runs one method over one stream, printing a progress line.
pub fn run_method(
    method: Method,
    stream: &CrossDomainStream,
    cfg: &ExperimentConfig,
) -> StreamResult {
    let start = std::time::Instant::now();
    let result = match method {
        Method::Der => run_stream(
            &mut DerTrainer::new(DerVariant::Der, cfg.baseline(stream)),
            stream,
        ),
        Method::DerPlusPlus => run_stream(
            &mut DerTrainer::new(DerVariant::DerPlusPlus, cfg.baseline(stream)),
            stream,
        ),
        Method::Hal => run_stream(&mut HalTrainer::new(cfg.baseline(stream)), stream),
        Method::Mls => run_stream(&mut MlsTrainer::new(cfg.baseline(stream)), stream),
        Method::CdTransS => run_stream(
            &mut CdTransTrainer::new(CdTransSize::Small, cfg.baseline(stream)),
            stream,
        ),
        Method::CdTransB => run_stream(
            &mut CdTransTrainer::new(CdTransSize::Base, cfg.baseline(stream)),
            stream,
        ),
        Method::Cdcl => run_stream(&mut CdclTrainer::new(cfg.cdcl(stream)), stream),
    };
    eprintln!(
        "[{}] {} TIL {:.1}% CIL {:.1}% ({:.0}s)",
        stream.name,
        method.label(),
        result.til_acc_pct(),
        result.cil_acc_pct(),
        start.elapsed().as_secs_f64()
    );
    result
}

/// Runs the TVT-style static upper bound on one stream.
pub fn run_upper_bound(
    stream: &CrossDomainStream,
    cfg: &ExperimentConfig,
) -> cdcl_baselines::StaticUdaResult {
    let start = std::time::Instant::now();
    let r = run_static_uda(stream, cfg.baseline(stream));
    eprintln!(
        "[{}] TVT(static) TIL {:.1}% ({:.0}s)",
        stream.name,
        r.til_acc_pct(),
        start.elapsed().as_secs_f64()
    );
    r
}

/// Serializable cell of a results dump.
#[derive(Debug, Serialize)]
pub struct ResultCell {
    /// Stream / transfer-pair name.
    pub stream: String,
    /// Method label.
    pub method: String,
    /// TIL average accuracy (percent).
    pub til_acc: f64,
    /// TIL forgetting (percent).
    pub til_fgt: f64,
    /// CIL average accuracy (percent).
    pub cil_acc: f64,
    /// CIL forgetting (percent).
    pub cil_fgt: f64,
}

impl From<&StreamResult> for ResultCell {
    fn from(r: &StreamResult) -> Self {
        Self {
            stream: r.stream.clone(),
            method: r.method.clone(),
            til_acc: r.til_acc_pct(),
            til_fgt: r.til_fgt_pct(),
            cil_acc: r.cil_acc_pct(),
            cil_fgt: r.cil_fgt_pct(),
        }
    }
}

/// Writes a JSON dump when `--out` was given.
pub fn maybe_write_json<T: Serialize>(out: &Option<String>, value: &T) {
    if let Some(path) = out {
        let json = serde_json::to_string_pretty(value).expect("serialize results");
        std::fs::write(path, json).unwrap_or_else(|e| panic!("write {path}: {e}"));
        eprintln!("results written to {path}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn method_parse_round_trips() {
        for m in Method::ALL {
            assert_eq!(Method::parse(&m.label().to_ascii_lowercase()), Some(m));
        }
        assert_eq!(Method::parse("msl"), Some(Method::Mls)); // paper's typo alias
        assert_eq!(Method::parse("nope"), None);
    }

    #[test]
    fn labels_are_unique() {
        let mut labels: Vec<&str> = Method::ALL.iter().map(|m| m.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), Method::ALL.len());
    }
}
