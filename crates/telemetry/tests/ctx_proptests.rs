//! Property tests for the traceparent wire encoding (DESIGN.md §16).
//!
//! Two guarantees back cross-process propagation:
//!
//! 1. **Round trip.** Every valid (non-zero) id pair encodes to a string
//!    that parses back to exactly the same context, and the encoding is
//!    the fixed 55-byte lowercase W3C shape.
//! 2. **Total rejection.** Arbitrary byte salads, single-character
//!    corruptions of a valid encoding, and truncations never crash the
//!    parser — they either fail with a *typed* [`ParseError`] or happen to
//!    form another valid encoding (which must then re-encode to itself).
//!    The daemons feed attacker-reachable wire bytes straight into this
//!    parser, so "reject, never panic" is load-bearing.

use cdcl_telemetry::ctx::{ParseError, TraceContext};
use proptest::prelude::*;
use proptest::{prop_assert, prop_assert_eq, proptest};

/// Non-zero 128-bit trace ids from two 64-bit draws (the vendored
/// proptest has no native u128 strategy).
fn trace_id() -> impl Strategy<Value = u128> {
    (0u64..u64::MAX, 0u64..u64::MAX).prop_map(|(hi, lo)| (((hi as u128) << 64) | lo as u128).max(1))
}

/// Unicode scalar values (surrogate range excluded by construction).
fn any_char() -> impl Strategy<Value = char> {
    (0u32..0xD800).prop_map(|c| char::from_u32(c).unwrap_or('?'))
}

proptest! {
    #[test]
    fn encode_parse_round_trips(trace in trace_id(), span in 1u64..u64::MAX) {
        let ctx = TraceContext { trace_id: trace, span_id: span };
        let wire = ctx.encode();
        prop_assert_eq!(wire.len(), 55);
        prop_assert!(
            wire.bytes()
                .all(|b| b == b'-' || b.is_ascii_digit() || (b'a'..=b'f').contains(&b)),
            "non-lower-hex byte in {wire:?}"
        );
        prop_assert_eq!(TraceContext::parse(&wire), Ok(ctx));
    }

    #[test]
    fn arbitrary_strings_never_panic_the_parser(
        chars in proptest::collection::vec(any_char(), 0..80),
    ) {
        let s: String = chars.into_iter().collect();
        // The only strings that parse are exact encodings; anything that
        // does parse must re-encode to itself (so it really was a valid
        // encoding, not a parser hole). Everything else is a typed error.
        match TraceContext::parse(&s) {
            Ok(ctx) => prop_assert_eq!(ctx.encode(), s),
            Err(_typed) => {}
        }
    }

    #[test]
    fn single_char_corruption_is_rejected_or_reencodes(
        trace in trace_id(),
        span in 1u64..u64::MAX,
        pos in 0usize..55,
        replacement in any_char(),
    ) {
        let wire = TraceContext { trace_id: trace, span_id: span }.encode();
        let mut corrupted: Vec<char> = wire.chars().collect();
        corrupted[pos] = replacement;
        let corrupted: String = corrupted.into_iter().collect();
        match TraceContext::parse(&corrupted) {
            // A hex digit swapped for another hex digit is still a valid
            // (possibly identical) encoding — then it must round-trip.
            Ok(ctx) => prop_assert_eq!(ctx.encode(), corrupted),
            Err(e) => prop_assert!(
                matches!(
                    e,
                    ParseError::Length { .. }
                        | ParseError::Separator
                        | ParseError::Version
                        | ParseError::TraceIdHex
                        | ParseError::SpanIdHex
                        | ParseError::Flags
                        | ParseError::ZeroId
                ),
                "unexpected error {e:?} for {corrupted:?}"
            ),
        }
    }

    #[test]
    fn truncations_are_length_errors(
        trace in trace_id(),
        span in 1u64..u64::MAX,
        cut in 0usize..55,
    ) {
        let wire = TraceContext { trace_id: trace, span_id: span }.encode();
        prop_assert_eq!(
            TraceContext::parse(&wire[..cut]),
            Err(ParseError::Length { got: cut })
        );
    }
}
