//! Reductions and the softmax family, all along the **last** axis (the only
//! axis the model reduces over), plus whole-tensor reductions.

use crate::pool::PooledBuf;
use crate::Tensor;

impl Tensor {
    /// Splits the tensor into `(rows, cols)` where `cols` is the last-axis
    /// length and `rows` is everything else flattened.
    fn rows_cols(&self) -> (usize, usize) {
        assert!(self.ndim() >= 1, "last-axis reduction on a scalar");
        let cols = self.shape()[self.ndim() - 1];
        let rows = self.len() / cols.max(1);
        (rows, cols)
    }

    /// Sum along the last axis; the axis is dropped.
    pub fn sum_last(&self) -> Tensor {
        let (rows, cols) = self.rows_cols();
        let mut out = PooledBuf::take_uninit(rows);
        for r in 0..rows {
            out[r] = self.data()[r * cols..(r + 1) * cols].iter().sum();
        }
        Tensor::from_buf(out, &self.shape()[..self.ndim() - 1])
    }

    /// Mean along the last axis; the axis is dropped.
    pub fn mean_last(&self) -> Tensor {
        let (_, cols) = self.rows_cols();
        self.sum_last().scale(1.0 / cols as f32)
    }

    /// Max along the last axis; the axis is dropped.
    pub fn max_last(&self) -> Tensor {
        let (rows, cols) = self.rows_cols();
        let mut out = PooledBuf::take_uninit(rows);
        for r in 0..rows {
            out[r] = self.data()[r * cols..(r + 1) * cols]
                .iter()
                .copied()
                .fold(f32::NEG_INFINITY, f32::max);
        }
        Tensor::from_buf(out, &self.shape()[..self.ndim() - 1])
    }

    /// Index of the maximum along the last axis (first maximum wins).
    pub fn argmax_last(&self) -> Vec<usize> {
        let (rows, cols) = self.rows_cols();
        let mut out = Vec::with_capacity(rows);
        for r in 0..rows {
            let row = &self.data()[r * cols..(r + 1) * cols];
            let mut best = 0;
            for (j, v) in row.iter().enumerate() {
                if *v > row[best] {
                    best = j;
                }
            }
            out.push(best);
        }
        out
    }

    /// Numerically stable softmax along the last axis.
    pub fn softmax_last(&self) -> Tensor {
        let (rows, cols) = self.rows_cols();
        // Every element is written below, so no fill on the recycled buffer.
        let mut out = PooledBuf::take_uninit(self.len());
        for r in 0..rows {
            let row = &self.data()[r * cols..(r + 1) * cols];
            let m = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let dst = &mut out[r * cols..(r + 1) * cols];
            let mut z = 0.0;
            for (d, v) in dst.iter_mut().zip(row.iter()) {
                *d = (v - m).exp();
                z += *d;
            }
            let inv = 1.0 / z;
            dst.iter_mut().for_each(|d| *d *= inv);
        }
        Tensor::from_buf(out, self.shape())
    }

    /// Numerically stable log-softmax along the last axis.
    pub fn log_softmax_last(&self) -> Tensor {
        let (rows, cols) = self.rows_cols();
        let mut out = PooledBuf::take_uninit(self.len());
        for r in 0..rows {
            let row = &self.data()[r * cols..(r + 1) * cols];
            let m = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let lse = m + row.iter().map(|v| (v - m).exp()).sum::<f32>().ln();
            for (d, v) in out[r * cols..(r + 1) * cols].iter_mut().zip(row.iter()) {
                *d = v - lse;
            }
        }
        Tensor::from_buf(out, self.shape())
    }

    /// L2-normalizes each last-axis row (used for cosine distances in the
    /// pseudo-labeling step). Rows with near-zero norm are left unchanged.
    pub fn l2_normalize_last(&self) -> Tensor {
        let (rows, cols) = self.rows_cols();
        let mut out = self.clone();
        for r in 0..rows {
            let row = &mut out.data_mut()[r * cols..(r + 1) * cols];
            let norm = row.iter().map(|v| v * v).sum::<f32>().sqrt();
            if norm > 1e-12 {
                row.iter_mut().for_each(|v| *v /= norm);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assert_close;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn sum_and_mean_last() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        assert_eq!(t.sum_last().data(), &[6.0, 15.0]);
        assert_close(t.mean_last().data(), &[2.0, 5.0], 1e-6);
    }

    #[test]
    fn max_and_argmax_last() {
        let t = Tensor::from_vec(vec![1.0, 9.0, 3.0, 7.0, 5.0, 6.0], &[2, 3]);
        assert_eq!(t.max_last().data(), &[9.0, 7.0]);
        assert_eq!(t.argmax_last(), vec![1, 0]);
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let mut rng = SmallRng::seed_from_u64(11);
        let t = Tensor::randn(&mut rng, &[4, 7], 3.0);
        let s = t.softmax_last();
        for r in 0..4 {
            let sum: f32 = s.row(r).sum();
            assert!((sum - 1.0).abs() < 1e-5, "row {r} sums to {sum}");
        }
        assert!(s.data().iter().all(|v| *v >= 0.0));
    }

    #[test]
    fn softmax_is_shift_invariant() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[1, 3]);
        let s1 = t.softmax_last();
        let s2 = t.add_scalar(100.0).softmax_last();
        assert_close(s1.data(), s2.data(), 1e-5);
    }

    #[test]
    fn softmax_handles_large_logits() {
        let t = Tensor::from_vec(vec![1000.0, 0.0], &[1, 2]);
        let s = t.softmax_last();
        assert!(s.all_finite());
        assert!((s.data()[0] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn log_softmax_matches_log_of_softmax() {
        let mut rng = SmallRng::seed_from_u64(12);
        let t = Tensor::randn(&mut rng, &[3, 5], 2.0);
        let a = t.log_softmax_last();
        let b = t.softmax_last().map(|v| v.ln());
        assert_close(a.data(), b.data(), 1e-4);
    }

    #[test]
    fn l2_normalize_unit_norm() {
        let t = Tensor::from_vec(vec![3.0, 4.0, 0.0, 0.0], &[2, 2]);
        let n = t.l2_normalize_last();
        assert_close(n.row(0).data(), &[0.6, 0.8], 1e-6);
        // zero row untouched
        assert_eq!(n.row(1).data(), &[0.0, 0.0]);
    }

    #[test]
    fn reductions_on_3d_keep_leading_shape() {
        let t = Tensor::ones(&[2, 3, 4]);
        assert_eq!(t.sum_last().shape(), &[2, 3]);
        assert_eq!(t.sum_last().data(), &[4.0; 6]);
    }
}
