//! Offline stand-in for [`serde`](https://crates.io/crates/serde).
//!
//! The build environment has no crates.io access, so this crate provides the
//! minimal serialization model the workspace needs: a JSON-shaped [`Value`]
//! tree, [`Serialize`]/[`Deserialize`] traits converting to and from it, and
//! derive macros (re-exported from `serde_derive`) for structs with named
//! fields and fieldless enums. `serde_json` (also vendored) renders and
//! parses the tree.
//!
//! This is *not* API-compatible with real serde beyond the surface the
//! workspace uses: `#[derive(Serialize, Deserialize)]`, and
//! `serde_json::{to_string, to_string_pretty, from_str}`.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::BTreeMap;
use std::fmt;

/// A JSON-shaped value tree — the intermediate representation between typed
/// data and text.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (JSON does not distinguish int from float).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object; insertion order is preserved.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a field of an object value.
    pub fn field(&self, name: &str) -> Option<&Value> {
        match self {
            Value::Obj(pairs) => pairs.iter().find(|(k, _)| k == name).map(|(_, v)| v),
            _ => None,
        }
    }
}

/// Serialization / deserialization error.
#[derive(Debug, Clone)]
pub struct Error(pub String);

impl Error {
    /// New error with the given message.
    pub fn msg(m: impl Into<String>) -> Self {
        Self(m.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serde error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Conversion into the [`Value`] tree.
pub trait Serialize {
    /// Serializes `self` into a value tree.
    fn to_value(&self) -> Value;
}

/// Conversion from the [`Value`] tree.
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a value tree.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

/// Reads a struct field during derived deserialization. A missing field is
/// presented as [`Value::Null`] so `Option` fields default to `None`.
pub fn from_field<T: Deserialize>(v: &Value, name: &str) -> Result<T, Error> {
    match v.field(name) {
        Some(f) => T::from_value(f).map_err(|e| Error::msg(format!("field `{name}`: {}", e.0))),
        None => {
            T::from_value(&Value::Null).map_err(|_| Error::msg(format!("missing field `{name}`")))
        }
    }
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

macro_rules! impl_num {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Num(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Num(n) => Ok(*n as $t),
                    other => Err(Error::msg(format!(
                        "expected number, got {other:?}"
                    ))),
                }
            }
        }
    )*};
}

impl_num!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::msg(format!("expected bool, got {other:?}"))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::msg(format!("expected string, got {other:?}"))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => Ok(Some(T::from_value(other)?)),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Arr(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::msg(format!("expected array, got {other:?}"))),
        }
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Obj(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Obj(pairs) => pairs
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            other => Err(Error::msg(format!("expected object, got {other:?}"))),
        }
    }
}

macro_rules! impl_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Arr(vec![$(self.$n.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Arr(items) => {
                        let expect = [$($n),+].len();
                        if items.len() != expect {
                            return Err(Error::msg(format!(
                                "expected {expect}-tuple, got {} items", items.len()
                            )));
                        }
                        Ok(($($t::from_value(&items[$n])?,)+))
                    }
                    other => Err(Error::msg(format!("expected array, got {other:?}"))),
                }
            }
        }
    )*};
}

impl_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}
