//! Baselines for the CDCL comparison tables (paper §V-B), all built on the
//! *same* backbone substrate as CDCL so the tables isolate algorithmic
//! differences:
//!
//! * [`DerTrainer`] — DER / DER++ (Buzzega et al.): reservoir memory with
//!   dark-knowledge logit replay (MSE), plus replayed-label CE for DER++.
//!   Like all single-domain CL baselines it can only train on the labelled
//!   source stream; its target accuracy is whatever transfers incidentally.
//! * [`HalTrainer`] — HAL (Chaudhry et al.): DER++-style replay plus anchor
//!   points whose embeddings are anchored across updates.
//! * [`MlsTrainer`] — MLS (Simon et al.): supervised cross-domain continual
//!   learning — replayed-feature alignment, no unsupervised adaptation.
//! * [`CdTransTrainer`] — CDTrans-S/B (Xu et al.): a strong *static* UDA
//!   cross-attention method (pseudo-labels + cross-attention) with no
//!   task-specific parameters and no rehearsal; sequential fine-tuning makes
//!   its feature alignment collapse in the continual protocol, as Tables
//!   I–III of the paper show.
//! * [`StaticUda`](run_static_uda) — the TVT-style upper bound: the same UDA
//!   machinery trained *jointly* on all tasks at once (no continual
//!   constraint), quantifying the catastrophic-forgetting gap.

mod cdtrans;
mod config;
mod der;
mod hal;
mod mls;
pub(crate) mod shared;
mod static_uda;

pub use cdtrans::{CdTransSize, CdTransTrainer};
pub use config::BaselineConfig;
pub use der::{DerTrainer, DerVariant};
pub use hal::HalTrainer;
pub use mls::MlsTrainer;
pub use static_uda::{run_static_uda, StaticUdaResult};
