//! End-to-end regression tests of the graph verifier (DESIGN.md §9) against
//! a *trained* CDCL learner: after `grow_task`, a backward pass must leave
//! every retired `(K_i, b_i)` with a bitwise-zero gradient, the verifier
//! must confirm it, and flipping one retired key trainable must be caught
//! with name + var provenance. Also pins the verifier's purity contract:
//! running it must not perturb a single parameter or gradient byte.

use cdcl::autograd::{CheckError, Graph, Param};
use cdcl::core::{CdclConfig, CdclTrainer, ContinualLearner};
use cdcl::data::{mnist_usps, MnistUspsDirection, Scale};
use cdcl::nn::Module;
use cdcl::tensor::Tensor;
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Trains two smoke-scale tasks (the trainer itself runs the verifier once
/// per task under the `graph_check` span) and returns the trainer.
fn trained_two_tasks() -> CdclTrainer {
    let stream = mnist_usps(MnistUspsDirection::MnistToUsps, Scale::Smoke);
    let mut config = CdclConfig::smoke();
    config.epochs = 2;
    config.warmup_epochs = 1;
    let mut trainer = CdclTrainer::new(config);
    for task in stream.tasks.iter().take(2) {
        trainer.learn_task(task);
    }
    trainer
}

/// Records a training-shaped graph over both tasks' key slots so the frozen
/// leaves are on the tape, runs backward, and returns `(graph, loss)`.
fn backward_over_both_tasks(
    trainer: &CdclTrainer,
    rng: &mut SmallRng,
) -> (Graph, cdcl::autograd::Var) {
    let model = trainer.model();
    for p in model.params() {
        p.zero_grad();
    }
    let mut g = Graph::new();
    let x = g.input(Tensor::randn(rng, &[2, 1, 16, 16], 1.0));
    let labels = [0usize, 1];
    let z1 = model.features_self(&mut g, x, 1);
    let til1 = model.til_logits(&mut g, z1, 1);
    let lp1 = g.log_softmax_last(til1);
    let l1 = g.nll_loss(lp1, &labels);
    let z0 = model.features_self(&mut g, x, 0);
    let til0 = model.til_logits(&mut g, z0, 0);
    let lp0 = g.log_softmax_last(til0);
    let l0 = g.nll_loss(lp0, &labels);
    let loss = g.add(l1, l0);
    g.backward(loss);
    (g, loss)
}

#[test]
fn frozen_task_keys_get_zero_grad_after_growth_and_verifier_confirms() {
    let trainer = trained_two_tasks();
    let frozen = trainer.model().expected_frozen_params();
    assert!(
        !frozen.is_empty(),
        "two grown tasks must retire at least one (K_i, b_i) pair"
    );
    for p in &frozen {
        assert!(!p.trainable(), "{} should be frozen after growth", p.name());
    }

    let mut rng = SmallRng::seed_from_u64(11);
    let (g, loss) = backward_over_both_tasks(&trainer, &mut rng);
    for p in &frozen {
        assert_eq!(
            p.grad_norm_sq(),
            0.0,
            "frozen {} accumulated gradient through backward",
            p.name()
        );
    }
    let report = g
        .verify(loss, &frozen)
        .unwrap_or_else(|e| panic!("verifier rejected a healthy trained graph: {e}"));
    assert_eq!(report.frozen_verified, frozen.len());
    assert!(report.param_leaves >= frozen.len());
}

#[test]
fn deliberately_unfrozen_old_key_is_caught_with_provenance() {
    let trainer = trained_two_tasks();
    let frozen = trainer.model().expected_frozen_params();
    let victim: &Param = &frozen[0];
    victim.set_trainable(true);

    let mut rng = SmallRng::seed_from_u64(12);
    let (g, loss) = backward_over_both_tasks(&trainer, &mut rng);
    let err = g
        .verify(loss, &frozen)
        .expect_err("verifier must reject a trainable retired key");
    match &err {
        CheckError::FrozenParamTrainable { name, var } => {
            assert_eq!(name, &victim.name());
            assert!(
                var.is_some(),
                "retired key is on the tape, so provenance must name its var"
            );
        }
        other => panic!("expected FrozenParamTrainable, got {other}"),
    }
    assert!(
        err.to_string().contains(&victim.name()),
        "message must carry the offending param's name: {err}"
    );
    victim.set_trainable(false);
}

#[test]
fn verifier_is_pure_params_and_grads_bitwise_unchanged() {
    let trainer = trained_two_tasks();
    let mut rng = SmallRng::seed_from_u64(13);
    let (g, loss) = backward_over_both_tasks(&trainer, &mut rng);

    let snapshot: Vec<(String, Vec<f32>, Vec<f32>)> = trainer
        .model()
        .params()
        .into_iter()
        .map(|p| {
            (
                p.name(),
                p.value().data().to_vec(),
                p.grad().data().to_vec(),
            )
        })
        .collect();

    let frozen = trainer.model().expected_frozen_params();
    g.verify(loss, &frozen)
        .unwrap_or_else(|e| panic!("verifier rejected a healthy trained graph: {e}"));

    for (p, (name, value, grad)) in trainer.model().params().into_iter().zip(&snapshot) {
        assert_eq!(&p.name(), name);
        assert_eq!(
            p.value().data(),
            &value[..],
            "verify mutated value of {name}"
        );
        assert_eq!(p.grad().data(), &grad[..], "verify mutated grad of {name}");
    }
}
