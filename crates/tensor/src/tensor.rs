//! The [`Tensor`] type: a contiguous, row-major, CPU `f32` array.

use std::fmt;

use rand::Rng;

use crate::pool::PooledBuf;
use crate::shape::{
    broadcast_shapes, broadcast_strides, num_elements, offset_of, strides_for, unravel, Shape,
};

/// A dense, contiguous, row-major `f32` tensor.
///
/// All operations allocate fresh output tensors; in-place variants are
/// provided where training loops need them (`add_assign_scaled`, `fill`).
/// Storage lives in a [`PooledBuf`], so "allocate" usually means "pop a
/// recycled buffer from the size-classed pool" (see `pool` module /
/// DESIGN.md §12) — dropping a tensor returns its bytes for the next step.
pub struct Tensor {
    data: PooledBuf,
    shape: Shape,
}

impl Clone for Tensor {
    fn clone(&self) -> Self {
        Self {
            data: self.data.clone(),
            shape: self.shape.clone(),
        }
    }
}

impl PartialEq for Tensor {
    fn eq(&self, other: &Self) -> bool {
        self.shape == other.shape && self.data[..] == other.data[..]
    }
}

impl Tensor {
    // ---------------------------------------------------------------------
    // Constructors
    // ---------------------------------------------------------------------

    /// Builds a tensor from a flat row-major buffer. The buffer joins the
    /// pool's recycling regime when the tensor is dropped.
    pub fn from_vec(data: Vec<f32>, shape: &[usize]) -> Self {
        assert_eq!(
            data.len(),
            num_elements(shape),
            "buffer of {} elements does not fit shape {shape:?}",
            data.len()
        );
        Self {
            data: PooledBuf::from_vec(data),
            shape: shape.to_vec(),
        }
    }

    /// Builds a tensor directly over a pooled buffer (no copy).
    pub fn from_buf(data: PooledBuf, shape: &[usize]) -> Self {
        assert_eq!(
            data.len(),
            num_elements(shape),
            "buffer of {} elements does not fit shape {shape:?}",
            data.len()
        );
        Self {
            data,
            shape: shape.to_vec(),
        }
    }

    /// A tensor with **unspecified** (but initialised) contents, taken from
    /// the pool. Every element must be overwritten before it is read —
    /// callers that cannot guarantee that want [`Tensor::zeros`]. Kernels
    /// use this for outputs they fully compute, which is what keeps the
    /// pool bitwise-transparent.
    pub fn uninit(shape: &[usize]) -> Self {
        Self {
            data: PooledBuf::take_uninit(num_elements(shape)),
            shape: shape.to_vec(),
        }
    }

    /// A scalar (rank-0) tensor.
    pub fn scalar(v: f32) -> Self {
        let mut data = PooledBuf::take_uninit(1);
        data[0] = v;
        Self {
            data,
            shape: vec![],
        }
    }

    /// All-zero tensor.
    pub fn zeros(shape: &[usize]) -> Self {
        Self {
            data: PooledBuf::take_zeroed(num_elements(shape)),
            shape: shape.to_vec(),
        }
    }

    /// All-one tensor.
    pub fn ones(shape: &[usize]) -> Self {
        Self::full(shape, 1.0)
    }

    /// Tensor filled with `v`.
    pub fn full(shape: &[usize], v: f32) -> Self {
        let mut data = PooledBuf::take_uninit(num_elements(shape));
        data.iter_mut().for_each(|x| *x = v);
        Self {
            data,
            shape: shape.to_vec(),
        }
    }

    /// Identity matrix of size `n`.
    pub fn eye(n: usize) -> Self {
        let mut t = Self::zeros(&[n, n]);
        for i in 0..n {
            t.data[i * n + i] = 1.0;
        }
        t
    }

    /// Samples i.i.d. `N(0, std^2)` entries (Box–Muller, seeded by `rng`).
    pub fn randn<R: Rng + ?Sized>(rng: &mut R, shape: &[usize], std: f32) -> Self {
        let n = num_elements(shape);
        let mut data = PooledBuf::take_uninit(n);
        let mut i = 0;
        while i < n {
            let u1: f32 = rng.random::<f32>().max(1e-12);
            let u2: f32 = rng.random::<f32>();
            let r = (-2.0 * u1.ln()).sqrt();
            let theta = 2.0 * std::f32::consts::PI * u2;
            data[i] = r * theta.cos() * std;
            i += 1;
            if i < n {
                data[i] = r * theta.sin() * std;
                i += 1;
            }
        }
        Self::from_buf(data, shape)
    }

    /// Samples i.i.d. `U(lo, hi)` entries.
    pub fn uniform<R: Rng + ?Sized>(rng: &mut R, shape: &[usize], lo: f32, hi: f32) -> Self {
        let n = num_elements(shape);
        let mut data = PooledBuf::take_uninit(n);
        for x in data.iter_mut() {
            *x = rng.random_range(lo..hi);
        }
        Self::from_buf(data, shape)
    }

    /// One-hot matrix `[labels.len(), classes]`.
    pub fn one_hot(labels: &[usize], classes: usize) -> Self {
        let mut t = Self::zeros(&[labels.len(), classes]);
        for (row, &l) in labels.iter().enumerate() {
            assert!(l < classes, "label {l} out of range for {classes} classes");
            t.data[row * classes + l] = 1.0;
        }
        t
    }

    // ---------------------------------------------------------------------
    // Accessors
    // ---------------------------------------------------------------------

    /// The tensor's shape (outermost dimension first).
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Number of dimensions.
    pub fn ndim(&self) -> usize {
        self.shape.len()
    }

    /// Total element count.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the tensor holds no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the flat row-major buffer.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the flat row-major buffer.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor, returning its buffer (detached from the pool).
    pub fn into_vec(self) -> Vec<f32> {
        self.data.into_vec()
    }

    /// Value of a rank-0 or single-element tensor.
    pub fn item(&self) -> f32 {
        assert_eq!(self.len(), 1, "item() on tensor of shape {:?}", self.shape);
        self.data[0]
    }

    /// Element at a multi-index.
    pub fn at(&self, idx: &[usize]) -> f32 {
        assert_eq!(idx.len(), self.ndim(), "index rank mismatch");
        let strides = strides_for(&self.shape);
        self.data[offset_of(idx, &strides)]
    }

    /// True when every element is finite.
    pub fn all_finite(&self) -> bool {
        self.data.iter().all(|v| v.is_finite())
    }

    // ---------------------------------------------------------------------
    // Shape manipulation
    // ---------------------------------------------------------------------

    /// Reinterprets the buffer with a new shape of equal element count.
    pub fn reshape(&self, shape: &[usize]) -> Self {
        assert_eq!(
            self.len(),
            num_elements(shape),
            "reshape {:?} -> {shape:?} changes element count",
            self.shape
        );
        Self {
            data: self.data.clone(),
            shape: shape.to_vec(),
        }
    }

    /// Swaps the last two dimensions (copying). Requires rank >= 2.
    pub fn transpose_last2(&self) -> Self {
        let nd = self.ndim();
        assert!(nd >= 2, "transpose_last2 needs rank >= 2, got {nd}");
        let (r, c) = (self.shape[nd - 2], self.shape[nd - 1]);
        let batch = self.len() / (r * c);
        let mut out_shape = self.shape.clone();
        out_shape.swap(nd - 2, nd - 1);
        let mut out = PooledBuf::take_uninit(self.len());
        for b in 0..batch {
            let src = &self.data[b * r * c..(b + 1) * r * c];
            let dst = &mut out[b * r * c..(b + 1) * r * c];
            for i in 0..r {
                for j in 0..c {
                    dst[j * r + i] = src[i * c + j];
                }
            }
        }
        Self::from_buf(out, &out_shape)
    }

    /// Concatenates tensors along dimension 0. All shapes must agree on the
    /// remaining dimensions.
    pub fn concat0(parts: &[&Tensor]) -> Self {
        assert!(!parts.is_empty(), "concat0 of zero tensors");
        let tail = &parts[0].shape[1..];
        let mut rows = 0;
        for p in parts {
            assert_eq!(&p.shape[1..], tail, "concat0 trailing shape mismatch");
            rows += p.shape[0];
        }
        let mut data = PooledBuf::take_uninit(rows * num_elements(tail));
        let mut off = 0;
        for p in parts {
            data[off..off + p.len()].copy_from_slice(&p.data);
            off += p.len();
        }
        let mut shape = vec![rows];
        shape.extend_from_slice(tail);
        Self::from_buf(data, &shape)
    }

    /// Selects rows (dimension-0 slices) by index, in order. Indices may
    /// repeat.
    pub fn select_rows(&self, indices: &[usize]) -> Self {
        assert!(self.ndim() >= 1, "select_rows on scalar");
        let row = self.len() / self.shape[0].max(1);
        let mut data = PooledBuf::take_uninit(indices.len() * row);
        for (k, &i) in indices.iter().enumerate() {
            assert!(i < self.shape[0], "row index {i} out of range");
            data[k * row..(k + 1) * row].copy_from_slice(&self.data[i * row..(i + 1) * row]);
        }
        let mut shape = self.shape.clone();
        shape[0] = indices.len();
        Self::from_buf(data, &shape)
    }

    /// Extracts row `i` (dimension-0 slice), dropping the leading dimension.
    pub fn row(&self, i: usize) -> Self {
        assert!(self.ndim() >= 1 && i < self.shape[0], "row out of range");
        let row = self.len() / self.shape[0];
        let mut data = PooledBuf::take_uninit(row);
        data.copy_from_slice(&self.data[i * row..(i + 1) * row]);
        Self::from_buf(data, &self.shape[1..])
    }

    // ---------------------------------------------------------------------
    // Element-wise arithmetic (broadcasting)
    // ---------------------------------------------------------------------

    fn binary(&self, rhs: &Tensor, f: impl Fn(f32, f32) -> f32) -> Tensor {
        if self.shape == rhs.shape {
            // Fast path: same shape, tight loop over a recycled buffer.
            let mut data = PooledBuf::take_uninit(self.len());
            for ((o, a), b) in data.iter_mut().zip(self.data.iter()).zip(rhs.data.iter()) {
                *o = f(*a, *b);
            }
            return Tensor::from_buf(data, &self.shape);
        }
        let out_shape = broadcast_shapes(&self.shape, &rhs.shape);
        let sa = broadcast_strides(&self.shape, &out_shape);
        let sb = broadcast_strides(&rhs.shape, &out_shape);
        let n = num_elements(&out_shape);
        let mut data = PooledBuf::take_uninit(n);
        for (flat, o) in data.iter_mut().enumerate() {
            let idx = unravel(flat, &out_shape);
            let a = self.data[offset_of(&idx, &sa)];
            let b = rhs.data[offset_of(&idx, &sb)];
            *o = f(a, b);
        }
        Tensor::from_buf(data, &out_shape)
    }

    /// Element-wise sum with broadcasting.
    pub fn add(&self, rhs: &Tensor) -> Tensor {
        self.binary(rhs, |a, b| a + b)
    }

    /// Element-wise difference with broadcasting.
    pub fn sub(&self, rhs: &Tensor) -> Tensor {
        self.binary(rhs, |a, b| a - b)
    }

    /// Element-wise product with broadcasting.
    pub fn mul(&self, rhs: &Tensor) -> Tensor {
        self.binary(rhs, |a, b| a * b)
    }

    /// Element-wise quotient with broadcasting.
    pub fn div(&self, rhs: &Tensor) -> Tensor {
        self.binary(rhs, |a, b| a / b)
    }

    /// Applies `f` to every element.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        let mut data = PooledBuf::take_uninit(self.len());
        for (o, v) in data.iter_mut().zip(self.data.iter()) {
            *o = f(*v);
        }
        Tensor::from_buf(data, &self.shape)
    }

    /// Multiplies every element by `c`.
    pub fn scale(&self, c: f32) -> Tensor {
        self.map(|v| v * c)
    }

    /// Adds `c` to every element.
    pub fn add_scalar(&self, c: f32) -> Tensor {
        self.map(|v| v + c)
    }

    /// `max(v, 0)` element-wise.
    pub fn relu(&self) -> Tensor {
        self.map(|v| v.max(0.0))
    }

    /// In-place `self += c * other` (shapes must match exactly). Used by
    /// optimizers and gradient accumulation, where allocation churn matters.
    pub fn add_assign_scaled(&mut self, other: &Tensor, c: f32) {
        assert_eq!(self.shape, other.shape, "add_assign_scaled shape mismatch");
        for (a, b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += c * b;
        }
    }

    /// In-place fill.
    pub fn fill(&mut self, v: f32) {
        self.data.iter_mut().for_each(|x| *x = v);
    }

    /// Sums `grad` (shaped like a broadcast result) back down to `target`
    /// shape — the adjoint of broadcasting. Used by autograd.
    pub fn reduce_to_shape(&self, target: &[usize]) -> Tensor {
        if self.shape == target {
            return self.clone();
        }
        let mut out = Tensor::zeros(target);
        let st = broadcast_strides(target, &self.shape);
        for flat in 0..self.len() {
            let idx = unravel(flat, &self.shape);
            out.data[offset_of(&idx, &st)] += self.data[flat];
        }
        out
    }

    // ---------------------------------------------------------------------
    // Scalar summaries
    // ---------------------------------------------------------------------

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all elements (0 for an empty tensor).
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Maximum element (NaN-free input assumed); `-inf` for empty.
    pub fn max(&self) -> f32 {
        self.data.iter().copied().fold(f32::NEG_INFINITY, f32::max)
    }

    /// Squared L2 norm.
    pub fn sq_norm(&self) -> f32 {
        self.data.iter().map(|v| v * v).sum()
    }
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor{:?}", self.shape)?;
        if self.len() <= 16 {
            write!(f, " {:?}", &self.data[..])
        } else {
            write!(
                f,
                " [{:.4}, {:.4}, .., {:.4}] (n={})",
                self.data[0],
                self.data[1],
                self.data[self.len() - 1],
                self.len()
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn from_vec_checks_len() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        assert_eq!(t.shape(), &[2, 2]);
        assert_eq!(t.at(&[1, 0]), 3.0);
    }

    #[test]
    #[should_panic(expected = "does not fit shape")]
    fn from_vec_bad_len_panics() {
        Tensor::from_vec(vec![1.0, 2.0, 3.0], &[2, 2]);
    }

    #[test]
    fn eye_is_identity() {
        let i = Tensor::eye(3);
        assert_eq!(i.at(&[0, 0]), 1.0);
        assert_eq!(i.at(&[0, 1]), 0.0);
        assert_eq!(i.sum(), 3.0);
    }

    #[test]
    fn one_hot_rows() {
        let t = Tensor::one_hot(&[2, 0], 3);
        assert_eq!(t.data(), &[0.0, 0.0, 1.0, 1.0, 0.0, 0.0]);
    }

    #[test]
    fn uninit_has_shape_and_full_writes_all() {
        let mut t = Tensor::uninit(&[4, 4]);
        t.fill(3.0);
        assert_eq!(t.sum(), 48.0);
        let f = Tensor::full(&[2, 2], 0.5);
        assert_eq!(f.data(), &[0.5, 0.5, 0.5, 0.5]);
    }

    #[test]
    fn zeros_are_zero_even_from_recycled_buffers() {
        // Dirty a pooled buffer, drop it, and check zeros() re-zeroes.
        for _ in 0..4 {
            let t = Tensor::full(&[64], 9.0);
            drop(t);
            let z = Tensor::zeros(&[64]);
            assert!(z.data().iter().all(|v| *v == 0.0));
        }
    }

    #[test]
    fn add_broadcast_bias() {
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let b = Tensor::from_vec(vec![10.0, 20.0], &[2]);
        let y = x.add(&b);
        assert_eq!(y.data(), &[11.0, 22.0, 13.0, 24.0]);
    }

    #[test]
    fn broadcast_middle_dim() {
        let x = Tensor::ones(&[2, 1, 3]);
        let y = Tensor::from_vec(vec![1.0, 2.0], &[2, 1]).reshape(&[2, 1]);
        let z = x.mul(&y.reshape(&[2, 1, 1]));
        assert_eq!(z.shape(), &[2, 1, 3]);
        assert_eq!(z.data(), &[1.0, 1.0, 1.0, 2.0, 2.0, 2.0]);
    }

    #[test]
    fn reduce_to_shape_is_broadcast_adjoint() {
        let g = Tensor::ones(&[2, 3]);
        let r = g.reduce_to_shape(&[3]);
        assert_eq!(r.data(), &[2.0, 2.0, 2.0]);
        let r0 = g.reduce_to_shape(&[]);
        assert_eq!(r0.item(), 6.0);
    }

    #[test]
    fn transpose_last2_matrix() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let tt = t.transpose_last2();
        assert_eq!(tt.shape(), &[3, 2]);
        assert_eq!(tt.data(), &[1.0, 4.0, 2.0, 5.0, 3.0, 6.0]);
    }

    #[test]
    fn transpose_last2_batched() {
        let t = Tensor::from_vec((0..12).map(|v| v as f32).collect(), &[2, 2, 3]);
        let tt = t.transpose_last2();
        assert_eq!(tt.shape(), &[2, 3, 2]);
        assert_eq!(tt.at(&[1, 2, 0]), t.at(&[1, 0, 2]));
    }

    #[test]
    fn transpose_twice_is_identity() {
        let mut rng = SmallRng::seed_from_u64(7);
        let t = Tensor::randn(&mut rng, &[3, 4, 5], 1.0);
        assert_eq!(t.transpose_last2().transpose_last2(), t);
    }

    #[test]
    fn concat_and_select_rows() {
        let a = Tensor::from_vec(vec![1.0, 2.0], &[1, 2]);
        let b = Tensor::from_vec(vec![3.0, 4.0, 5.0, 6.0], &[2, 2]);
        let c = Tensor::concat0(&[&a, &b]);
        assert_eq!(c.shape(), &[3, 2]);
        let s = c.select_rows(&[2, 0]);
        assert_eq!(s.data(), &[5.0, 6.0, 1.0, 2.0]);
        assert_eq!(c.row(1).data(), &[3.0, 4.0]);
    }

    #[test]
    fn randn_moments_roughly_standard() {
        let mut rng = SmallRng::seed_from_u64(42);
        let t = Tensor::randn(&mut rng, &[10_000], 1.0);
        assert!(t.mean().abs() < 0.05, "mean {}", t.mean());
        let var = t.map(|v| v * v).mean() - t.mean() * t.mean();
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn uniform_bounds() {
        let mut rng = SmallRng::seed_from_u64(3);
        let t = Tensor::uniform(&mut rng, &[1000], -0.5, 0.5);
        assert!(t.max() < 0.5);
        assert!(t.data().iter().all(|v| *v >= -0.5));
    }

    #[test]
    fn add_assign_scaled_updates_in_place() {
        let mut a = Tensor::ones(&[2]);
        let b = Tensor::from_vec(vec![1.0, 2.0], &[2]);
        a.add_assign_scaled(&b, 0.5);
        assert_eq!(a.data(), &[1.5, 2.0]);
    }

    #[test]
    fn finite_check() {
        let mut t = Tensor::ones(&[2]);
        assert!(t.all_finite());
        t.data_mut()[0] = f32::NAN;
        assert!(!t.all_finite());
    }
}
