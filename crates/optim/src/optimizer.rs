//! First-order optimizers operating on [`Param`] cells.

use cdcl_autograd::Param;
use cdcl_tensor::Tensor;

/// Common optimizer interface.
pub trait Optimizer {
    /// Applies one update step at learning rate `lr`, then leaves gradients
    /// untouched (call [`Optimizer::zero_grad`] to clear them).
    fn step(&mut self, lr: f32);

    /// Clears every managed parameter's gradient.
    fn zero_grad(&self);

    /// Replaces the managed parameter set (used after a model grows — e.g.
    /// when the CIL head gains classes or a new task's `K_i`/`b_i` appear).
    /// Optimizer state for surviving parameters is preserved; state for new
    /// parameters starts fresh.
    fn rebind(&mut self, params: Vec<Param>);

    /// The parameters currently managed.
    fn params(&self) -> &[Param];
}

/// Plain stochastic gradient descent with optional momentum.
pub struct Sgd {
    params: Vec<Param>,
    momentum: f32,
    velocity: Vec<Tensor>,
}

impl Sgd {
    /// New SGD over `params` with `momentum` (0 disables it).
    pub fn new(params: Vec<Param>, momentum: f32) -> Self {
        let velocity = params.iter().map(|p| Tensor::zeros(&p.shape())).collect();
        Self {
            params,
            momentum,
            velocity,
        }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, lr: f32) {
        for (p, v) in self.params.iter().zip(self.velocity.iter_mut()) {
            if !p.trainable() {
                continue;
            }
            let lr = lr * p.lr_scale();
            p.apply_update(|value, grad| {
                if self.momentum > 0.0 {
                    // v = m*v + g ; w -= lr * v. The moment buffer updates
                    // in place — zero allocations per step (f32 `v*m` is
                    // commutative, so this is bitwise-identical to the old
                    // `scale` + `add_assign_scaled` form).
                    for (vi, gi) in v.data_mut().iter_mut().zip(grad.data()) {
                        *vi = *vi * self.momentum + gi;
                    }
                    value.add_assign_scaled(v, -lr);
                } else {
                    value.add_assign_scaled(grad, -lr);
                }
            });
        }
    }

    fn zero_grad(&self) {
        for p in &self.params {
            p.zero_grad();
        }
    }

    fn rebind(&mut self, params: Vec<Param>) {
        let mut velocity = Vec::with_capacity(params.len());
        for p in &params {
            let existing = self
                .params
                .iter()
                .position(|q| q.same(p))
                .map(|i| self.velocity[i].clone());
            velocity.push(existing.unwrap_or_else(|| Tensor::zeros(&p.shape())));
        }
        self.params = params;
        self.velocity = velocity;
    }

    fn params(&self) -> &[Param] {
        &self.params
    }
}

/// Per-parameter Adam moments.
struct AdamState {
    m: Tensor,
    v: Tensor,
}

/// Adam optimizer (Kingma & Ba). `AdamW` extends it with decoupled weight
/// decay.
pub struct Adam {
    params: Vec<Param>,
    state: Vec<AdamState>,
    beta1: f32,
    beta2: f32,
    eps: f32,
    /// Decoupled weight-decay coefficient (0 = plain Adam).
    weight_decay: f32,
    t: i32,
}

impl Adam {
    /// Plain Adam with default betas `(0.9, 0.999)`.
    pub fn new(params: Vec<Param>) -> Self {
        Self::with_config(params, 0.9, 0.999, 1e-8, 0.0)
    }

    /// Fully configurable constructor.
    pub fn with_config(
        params: Vec<Param>,
        beta1: f32,
        beta2: f32,
        eps: f32,
        weight_decay: f32,
    ) -> Self {
        let state = params
            .iter()
            .map(|p| AdamState {
                m: Tensor::zeros(&p.shape()),
                v: Tensor::zeros(&p.shape()),
            })
            .collect();
        Self {
            params,
            state,
            beta1,
            beta2,
            eps,
            weight_decay,
            t: 0,
        }
    }

    /// Number of steps taken.
    pub fn steps(&self) -> i32 {
        self.t
    }

    /// `state_dict()`-style export for checkpointing: the global step count
    /// plus one `(name, m, v)` moment pair per managed parameter, in
    /// parameter order.
    pub fn export_state(&self) -> (i32, Vec<(String, Tensor, Tensor)>) {
        let entries = self
            .params
            .iter()
            .zip(self.state.iter())
            .map(|(p, s)| (p.name(), s.m.clone(), s.v.clone()))
            .collect();
        (self.t, entries)
    }

    /// Restores state exported by [`Adam::export_state`]. Entries must match
    /// the managed parameters exactly — same count, same order, same names,
    /// same shapes — so a snapshot written for a different model (or a
    /// corrupted one) is rejected instead of silently mis-applied.
    pub fn import_state(
        &mut self,
        t: i32,
        entries: Vec<(String, Tensor, Tensor)>,
    ) -> Result<(), String> {
        if entries.len() != self.params.len() {
            return Err(format!(
                "optimizer state has {} entries, model has {} params",
                entries.len(),
                self.params.len()
            ));
        }
        if t < 0 {
            return Err(format!("negative optimizer step count {t}"));
        }
        let mut state = Vec::with_capacity(entries.len());
        for (p, (name, m, v)) in self.params.iter().zip(entries) {
            if p.name() != name {
                return Err(format!(
                    "optimizer state entry `{name}` does not match param `{}`",
                    p.name()
                ));
            }
            let shape = p.shape();
            if m.shape() != shape.as_slice() || v.shape() != shape.as_slice() {
                return Err(format!(
                    "optimizer moment shape mismatch on `{name}`: param {:?}, m {:?}, v {:?}",
                    shape,
                    m.shape(),
                    v.shape()
                ));
            }
            state.push(AdamState { m, v });
        }
        self.state = state;
        self.t = t;
        Ok(())
    }
}

impl Optimizer for Adam {
    fn step(&mut self, lr: f32) {
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t);
        let bc2 = 1.0 - self.beta2.powi(self.t);
        for (p, s) in self.params.iter().zip(self.state.iter_mut()) {
            if !p.trainable() {
                continue;
            }
            let lr = lr * p.lr_scale();
            p.apply_update(|value, grad| {
                for i in 0..grad.len() {
                    let g = grad.data()[i];
                    let m = self.beta1 * s.m.data()[i] + (1.0 - self.beta1) * g;
                    let v = self.beta2 * s.v.data()[i] + (1.0 - self.beta2) * g * g;
                    s.m.data_mut()[i] = m;
                    s.v.data_mut()[i] = v;
                    let m_hat = m / bc1;
                    let v_hat = v / bc2;
                    let mut update = -lr * m_hat / (v_hat.sqrt() + self.eps);
                    if self.weight_decay > 0.0 {
                        // Decoupled decay (AdamW): shrink weights directly.
                        update -= lr * self.weight_decay * value.data()[i];
                    }
                    value.data_mut()[i] += update;
                }
            });
        }
    }

    fn zero_grad(&self) {
        for p in &self.params {
            p.zero_grad();
        }
    }

    fn rebind(&mut self, params: Vec<Param>) {
        let mut state = Vec::with_capacity(params.len());
        for p in &params {
            let existing = self.params.iter().position(|q| q.same(p));
            match existing {
                Some(i) => state.push(AdamState {
                    m: self.state[i].m.clone(),
                    v: self.state[i].v.clone(),
                }),
                None => state.push(AdamState {
                    m: Tensor::zeros(&p.shape()),
                    v: Tensor::zeros(&p.shape()),
                }),
            }
        }
        self.params = params;
        self.state = state;
    }

    fn params(&self) -> &[Param] {
        &self.params
    }
}

/// AdamW: Adam with decoupled weight decay — the paper's optimizer (§V-B).
pub struct AdamW(Adam);

impl AdamW {
    /// AdamW with the usual defaults and `weight_decay = 0.01`.
    pub fn new(params: Vec<Param>) -> Self {
        Self(Adam::with_config(params, 0.9, 0.999, 1e-8, 0.01))
    }

    /// AdamW with a custom decay coefficient.
    pub fn with_weight_decay(params: Vec<Param>, weight_decay: f32) -> Self {
        Self(Adam::with_config(params, 0.9, 0.999, 1e-8, weight_decay))
    }

    /// See [`Adam::export_state`].
    pub fn export_state(&self) -> (i32, Vec<(String, Tensor, Tensor)>) {
        self.0.export_state()
    }

    /// See [`Adam::import_state`].
    pub fn import_state(
        &mut self,
        t: i32,
        entries: Vec<(String, Tensor, Tensor)>,
    ) -> Result<(), String> {
        self.0.import_state(t, entries)
    }
}

impl Optimizer for AdamW {
    fn step(&mut self, lr: f32) {
        self.0.step(lr);
    }

    fn zero_grad(&self) {
        self.0.zero_grad();
    }

    fn rebind(&mut self, params: Vec<Param>) {
        self.0.rebind(params);
    }

    fn params(&self) -> &[Param] {
        self.0.params()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Quadratic bowl: loss = 0.5 * ||w - target||², grad = w - target.
    fn quadratic_step(p: &Param, target: &[f32]) {
        let w = p.value();
        let grad = Tensor::from_vec(
            w.data()
                .iter()
                .zip(target.iter())
                .map(|(w, t)| w - t)
                .collect(),
            w.shape(),
        );
        p.zero_grad();
        p.accumulate_grad(&grad);
    }

    fn converges<O: Optimizer>(mut opt: O, p: &Param, lr: f32, iters: usize) -> f32 {
        let target = [1.0f32, -2.0, 3.0];
        for _ in 0..iters {
            quadratic_step(p, &target);
            opt.step(lr);
        }
        p.value()
            .data()
            .iter()
            .zip(target.iter())
            .map(|(w, t)| (w - t).abs())
            .fold(0.0, f32::max)
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let p = Param::new("w", Tensor::zeros(&[3]));
        let err = converges(Sgd::new(vec![p.clone()], 0.0), &p, 0.1, 200);
        assert!(err < 1e-3, "err {err}");
    }

    #[test]
    fn sgd_momentum_converges() {
        let p = Param::new("w", Tensor::zeros(&[3]));
        let err = converges(Sgd::new(vec![p.clone()], 0.9), &p, 0.05, 200);
        assert!(err < 1e-3, "err {err}");
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let p = Param::new("w", Tensor::zeros(&[3]));
        let err = converges(Adam::new(vec![p.clone()]), &p, 0.05, 2000);
        assert!(err < 1e-2, "err {err}");
    }

    #[test]
    fn adamw_decays_weights_without_gradient() {
        let p = Param::new("w", Tensor::full(&[2], 10.0));
        let mut opt = AdamW::with_weight_decay(vec![p.clone()], 0.1);
        p.zero_grad(); // zero grad: only decay acts
        for _ in 0..10 {
            opt.step(0.1);
        }
        assert!(p.value().data()[0] < 10.0, "decay must shrink weights");
        // plain Adam with zero grad must not move the weights
        let q = Param::new("q", Tensor::full(&[2], 10.0));
        let mut plain = Adam::new(vec![q.clone()]);
        q.zero_grad();
        for _ in 0..10 {
            plain.step(0.1);
        }
        assert_eq!(q.value().data(), &[10.0, 10.0]);
    }

    #[test]
    fn frozen_params_are_skipped() {
        let p = Param::new("w", Tensor::full(&[1], 5.0));
        p.set_trainable(false);
        p.accumulate_grad(&Tensor::ones(&[1])); // ignored: frozen
        p.set_trainable(false);
        let mut opt = Sgd::new(vec![p.clone()], 0.0);
        opt.step(1.0);
        assert_eq!(p.value().data(), &[5.0]);
    }

    #[test]
    fn rebind_preserves_state_for_surviving_params() {
        let a = Param::new("a", Tensor::zeros(&[1]));
        let b = Param::new("b", Tensor::zeros(&[1]));
        let mut opt = Adam::new(vec![a.clone()]);
        // run one step to build state on `a`
        a.accumulate_grad(&Tensor::ones(&[1]));
        opt.step(0.1);
        let after_one_step = a.value().data()[0];
        opt.rebind(vec![a.clone(), b.clone()]);
        assert_eq!(opt.params().len(), 2);
        // stepping again continues from existing momentum rather than jumping
        a.zero_grad();
        a.accumulate_grad(&Tensor::ones(&[1]));
        b.accumulate_grad(&Tensor::ones(&[1]));
        opt.step(0.1);
        assert!(a.value().data()[0] < after_one_step);
        assert!(b.value().data()[0] < 0.0);
    }

    #[test]
    fn adam_state_round_trips_through_export_import() {
        let p = Param::new("w", Tensor::zeros(&[3]));
        let mut opt = Adam::new(vec![p.clone()]);
        quadratic_step(&p, &[1.0, -2.0, 3.0]);
        opt.step(0.05);
        quadratic_step(&p, &[1.0, -2.0, 3.0]);
        opt.step(0.05);
        let (t, entries) = opt.export_state();
        assert_eq!(t, 2);

        let mut fresh = Adam::new(vec![p.clone()]);
        fresh
            .import_state(t, entries.clone())
            .expect("matching state must import");
        let (t2, entries2) = fresh.export_state();
        assert_eq!(t2, t);
        for ((n1, m1, v1), (n2, m2, v2)) in entries.iter().zip(entries2.iter()) {
            assert_eq!(n1, n2);
            assert_eq!(m1.data(), m2.data());
            assert_eq!(v1.data(), v2.data());
        }
    }

    #[test]
    fn adam_import_rejects_mismatched_state() {
        let p = Param::new("w", Tensor::zeros(&[3]));
        let mut opt = Adam::new(vec![p.clone()]);
        // Wrong count.
        assert!(opt.import_state(0, Vec::new()).is_err());
        // Wrong name.
        let bad = vec![("q".to_string(), Tensor::zeros(&[3]), Tensor::zeros(&[3]))];
        assert!(opt.import_state(0, bad).is_err());
        // Wrong shape.
        let bad = vec![("w".to_string(), Tensor::zeros(&[2]), Tensor::zeros(&[3]))];
        assert!(opt.import_state(0, bad).is_err());
        // Negative step count.
        let ok = vec![("w".to_string(), Tensor::zeros(&[3]), Tensor::zeros(&[3]))];
        assert!(opt.import_state(-1, ok.clone()).is_err());
        assert!(opt.import_state(0, ok).is_ok());
    }

    #[test]
    fn zero_grad_clears_all() {
        let a = Param::new("a", Tensor::zeros(&[2]));
        a.accumulate_grad(&Tensor::ones(&[2]));
        let opt = Sgd::new(vec![a.clone()], 0.0);
        opt.zero_grad();
        assert_eq!(a.grad().sq_norm(), 0.0);
    }
}
