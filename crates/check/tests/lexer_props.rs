//! Property-based tests for the token-level lexer behind the lint and
//! analysis passes (DESIGN.md §14).
//!
//! The invariants the rest of the engine leans on:
//!
//! 1. `lex` never panics, whatever bytes it is fed (the linter must
//!    survive any file in the tree, including broken work-in-progress).
//! 2. `mask` is shape-preserving: same char count, newlines in the same
//!    places — line/column provenance computed on the masked text maps
//!    1:1 onto the original.
//! 3. Tokens tile: spans are in order, non-overlapping, within bounds.

use cdcl_check::lexer::{lex, mask, TokKind};
use proptest::prelude::*;

/// Fragments biased toward the constructs the lexer special-cases, so
/// random concatenations routinely produce raw strings, nested comments,
/// lifetimes next to char literals, and unterminated variants of each.
const FRAGMENTS: [&str; 16] = [
    "fn f() { }",
    "// line comment\n",
    "/* block /* nested */ still */",
    "/* unterminated",
    "let s = \"str with // not a comment\";",
    "let r = r#\"raw \" quote\"#;",
    "let r2 = r##\"sharp \"# inside\"##;",
    "let b = b\"bytes\";",
    "let c = 'x';",
    "let e = '\\n';",
    "fn g<'a>(x: &'a str) -> &'a str { x }",
    "let n = 0x1f_u64 + 1.5e-3;",
    "\"unterminated string",
    "#[cfg(test)]\nmod t { fn h() {} }",
    "\n",
    "'",
];

/// A soup of fragments plus raw printable-ASCII noise.
fn source_from(picks: Vec<usize>, noise: Vec<u8>) -> String {
    let mut s = String::new();
    for (i, p) in picks.iter().enumerate() {
        s.push_str(FRAGMENTS[p % FRAGMENTS.len()]);
        if let Some(b) = noise.get(i) {
            s.push((32 + (b % 95)) as char); // printable ASCII
        }
    }
    s
}

proptest! {
    /// Invariants 1 + 3: lexing arbitrary fragment soups never panics and
    /// the token spans tile the input in order without overlap.
    #[test]
    fn lex_total_and_spans_ordered(
        picks in prop::collection::vec(0usize..1000, 0..12),
        noise in prop::collection::vec(0u8..255, 0..12),
    ) {
        let src = source_from(picks, noise);
        let toks = lex(&src);
        let n_chars = src.chars().count();
        let mut prev_end = 0usize;
        for t in &toks {
            prop_assert!(t.start <= t.end, "span inverted");
            prop_assert!(t.end <= n_chars, "span out of bounds");
            prop_assert!(t.start >= prev_end, "overlapping tokens");
            prev_end = t.end;
        }
    }

    /// Invariant 2: masking is shape-preserving — identical char count and
    /// identical newline positions, so (line, column) survives masking.
    #[test]
    fn mask_preserves_shape(
        picks in prop::collection::vec(0usize..1000, 0..12),
        noise in prop::collection::vec(0u8..255, 0..12),
    ) {
        let src = source_from(picks, noise);
        let masked = mask(&src);
        prop_assert_eq!(masked.chars().count(), src.chars().count());
        let nl_src: Vec<usize> = src
            .chars().enumerate().filter(|(_, c)| *c == '\n').map(|(i, _)| i).collect();
        let nl_masked: Vec<usize> = masked
            .chars().enumerate().filter(|(_, c)| *c == '\n').map(|(i, _)| i).collect();
        prop_assert_eq!(nl_src, nl_masked);
    }

    /// Comment interiors never leak through the mask, wherever the comment
    /// lands relative to surrounding code.
    #[test]
    fn comments_blanked(pre in 0usize..1000, post in 0usize..1000) {
        let p = FRAGMENTS[pre % FRAGMENTS.len()];
        let q = FRAGMENTS[post % FRAGMENTS.len()];
        // A fragment ending inside an unterminated construct may swallow
        // the comment opener legitimately; anchor on fragments that
        // terminate cleanly.
        if p.contains("unterminated") || p.ends_with('\'') {
            return Ok(());
        }
        let src = format!("{p}\n/* SECRETWORD */ let x = 1; // SECRETWORD\n{q}");
        let masked = mask(&src);
        prop_assert!(!masked.contains("SECRETWORD"), "mask leaked: {masked:?}");
        prop_assert!(masked.contains("let x = 1;"));
    }
}

/// Deterministic spot-checks for the exact constructs the proptests only
/// cover probabilistically.
#[test]
fn string_interiors_blanked_delimiters_kept() {
    let masked = mask("let s = \"inner panic!\"; let c = 'q';");
    assert!(!masked.contains("panic!"), "{masked:?}");
    assert!(!masked.contains("inner"), "{masked:?}");
    assert!(masked.contains('"'), "{masked:?}");
    assert!(masked.contains("let s ="), "{masked:?}");
}

#[test]
fn lifetime_vs_char_disambiguation() {
    let toks = lex("fn f<'a>(x: &'a u8) { let c = 'a'; let d = '\\u{41}'; }");
    let lifetimes = toks.iter().filter(|t| t.kind == TokKind::Lifetime).count();
    let chars = toks.iter().filter(|t| t.kind == TokKind::CharLit).count();
    assert_eq!(lifetimes, 2, "{toks:?}");
    assert_eq!(chars, 2, "{toks:?}");
}

#[test]
fn raw_string_hash_counting() {
    // The `"#` inside must not close an `r##"` string.
    let src = r####"let s = r##"contains "# inside"##; let after = 1;"####;
    let toks = lex(src);
    let raw: Vec<_> = toks.iter().filter(|t| t.kind == TokKind::RawStr).collect();
    assert_eq!(raw.len(), 1, "{toks:?}");
    assert!(toks.iter().any(|t| t.is_ident("after")));
}

#[test]
fn nested_block_comments_close_correctly() {
    let toks = lex("/* a /* b */ c */ fn real() {}");
    assert!(toks.iter().any(|t| t.is_ident("real")));
    assert_eq!(
        toks.iter()
            .filter(|t| t.kind == TokKind::BlockComment)
            .count(),
        1
    );
}

#[test]
fn nested_cfg_test_modules_resolve_to_outermost_region() {
    let src = "fn live() {}\n#[cfg(test)]\nmod outer {\n    fn a() {}\n    #[cfg(test)]\n    mod inner {\n        fn b() {}\n    }\n}\nfn also_live() {}\n";
    let toks = lex(src);
    let regions = cdcl_check::lexer::test_line_regions(&toks);
    use cdcl_check::lexer::line_in_regions;
    assert!(!line_in_regions(&regions, 1)); // fn live
    assert!(line_in_regions(&regions, 4)); // fn a
    assert!(line_in_regions(&regions, 7)); // fn b
    assert!(!line_in_regions(&regions, 10)); // fn also_live
}
