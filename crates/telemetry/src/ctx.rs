//! Distributed trace context (DESIGN.md §16): 128-bit trace ids, 64-bit
//! span ids, a W3C-traceparent-style text encoding for crossing process
//! boundaries, and a thread-local current-span stack so existing
//! [`crate::span`] call sites pick up parentage without signature churn.
//!
//! The wire form is the W3C `traceparent` header value,
//!
//! ```text
//! 00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01
//! ```
//!
//! version `00`, 32 lower-hex trace-id digits, 16 lower-hex span-id
//! digits, and the sampled flag (always `01`: unsampled spans are never
//! encoded — they stay process-local sentinels). [`TraceContext::parse`]
//! rejects every malformed form with a typed [`ParseError`]; a daemon
//! must never die because a peer sent a garbled `trace=` field.
//!
//! Everything here runs **only when tracing is enabled**: id generation
//! and the sampling roll are reached solely from [`crate::span`] /
//! [`attach`] behind [`crate::enabled`], so an untraced run performs no
//! clock reads, no RNG draws, and stays bitwise identical to a build
//! without this module.

use std::cell::RefCell;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

/// Environment variable holding the head sampling rate in `[0.0, 1.0]`.
/// Applied once per trace at root-span creation; descendants (local and
/// remote) inherit the root's verdict. Defaults to `1.0` (keep all).
pub const SAMPLE_ENV: &str = "CDCL_TRACE_SAMPLE";

/// The identity of one span within one trace.
///
/// `trace_id == 0` never appears on the wire: it is the process-local
/// "this trace was not sampled" sentinel kept on the context stack so an
/// unsampled root's descendants do not re-roll the sampling decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceContext {
    /// 128-bit id shared by every span of one distributed trace.
    pub trace_id: u128,
    /// 64-bit id of this particular span.
    pub span_id: u64,
}

/// Why a traceparent string failed to parse. Every variant carries enough
/// to log the rejection without echoing attacker-controlled bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParseError {
    /// Not the fixed 55-byte `00-<32 hex>-<16 hex>-01` shape.
    Length { got: usize },
    /// Separators are not at positions 2, 35 and 52.
    Separator,
    /// Leading version field is not `00`.
    Version,
    /// The 32-digit trace-id field holds a non-(lower-)hex byte.
    TraceIdHex,
    /// The 16-digit span-id field holds a non-(lower-)hex byte.
    SpanIdHex,
    /// Trailing flags field is not `01` (we only emit sampled spans).
    Flags,
    /// All-zero trace or span id (forbidden by W3C; zero is our sentinel).
    ZeroId,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::Length { got } => {
                write!(f, "traceparent must be 55 bytes, got {got}")
            }
            ParseError::Separator => write!(f, "traceparent separators misplaced"),
            ParseError::Version => write!(f, "unsupported traceparent version"),
            ParseError::TraceIdHex => write!(f, "trace id is not 32 lower-hex digits"),
            ParseError::SpanIdHex => write!(f, "span id is not 16 lower-hex digits"),
            ParseError::Flags => write!(f, "unsupported traceparent flags"),
            ParseError::ZeroId => write!(f, "all-zero trace or span id"),
        }
    }
}

/// Lower-hex decode of exactly `s.len()` digits into a u128. Returns
/// `None` on any byte outside `[0-9a-f]` — uppercase is rejected, the
/// W3C grammar is lowercase-only and we never emit anything else.
fn hex_decode(s: &str) -> Option<u128> {
    let mut acc: u128 = 0;
    for b in s.bytes() {
        let digit = match b {
            b'0'..=b'9' => b - b'0',
            b'a'..=b'f' => b - b'a' + 10,
            _ => return None,
        };
        acc = (acc << 4) | u128::from(digit);
    }
    Some(acc)
}

impl TraceContext {
    /// True for the process-local "unsampled" sentinel.
    #[inline]
    pub fn is_sampled(&self) -> bool {
        self.trace_id != 0
    }

    /// Renders the wire form: `00-<trace_id:032x>-<span_id:016x>-01`.
    /// Callers must not encode the unsampled sentinel (checked by the
    /// producers, which only propagate sampled contexts).
    pub fn encode(&self) -> String {
        format!("00-{:032x}-{:016x}-01", self.trace_id, self.span_id)
    }

    /// Parses the wire form, rejecting every malformed variant with a
    /// typed error. Accepts exactly what [`TraceContext::encode`] emits.
    pub fn parse(s: &str) -> Result<Self, ParseError> {
        if s.len() != 55 {
            return Err(ParseError::Length { got: s.len() });
        }
        let bytes = s.as_bytes();
        if bytes[2] != b'-' || bytes[35] != b'-' || bytes[52] != b'-' {
            return Err(ParseError::Separator);
        }
        if &s[0..2] != "00" {
            return Err(ParseError::Version);
        }
        if &s[53..55] != "01" {
            return Err(ParseError::Flags);
        }
        let trace_id = hex_decode(&s[3..35]).ok_or(ParseError::TraceIdHex)?;
        let span_id = hex_decode(&s[36..52]).ok_or(ParseError::SpanIdHex)? as u64;
        if trace_id == 0 || span_id == 0 {
            return Err(ParseError::ZeroId);
        }
        Ok(TraceContext { trace_id, span_id })
    }
}

/// Global splitmix64 state for id generation. Seeded lazily from the wall
/// clock and the pid on first use — which only ever happens with tracing
/// enabled, so untraced runs never read the clock here.
static ID_STATE: AtomicU64 = AtomicU64::new(0);

/// One splitmix64 step over the shared state. Statistically unique ids
/// are all we need; this is not a security boundary.
fn next_id() -> u64 {
    // ordering: lazy-init — zero means "not yet seeded"; the CAS below
    // publishes nothing but the seed value itself.
    let seeded = ID_STATE.load(Ordering::Relaxed);
    if seeded == 0 {
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0x9e37_79b9_7f4a_7c15);
        let seed = (nanos ^ (u64::from(std::process::id()) << 32)) | 1;
        // ordering: stat — racing first-seeders may both store; either
        // seed is fine, uniqueness comes from the mixing below.
        let _ = ID_STATE.compare_exchange(0, seed, Ordering::Relaxed, Ordering::Relaxed);
    }
    loop {
        // ordering: stat — id draws need uniqueness, not ordering; CAS
        // keeps concurrent draws from returning the same stream position.
        let cur = ID_STATE.load(Ordering::Relaxed);
        let next = cur.wrapping_add(0x9e37_79b9_7f4a_7c15);
        // ordering: stat — claims one stream position; no memory is
        // published through the generator state.
        if ID_STATE
            .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            .is_ok()
        {
            let mut z = next;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            return z ^ (z >> 31);
        }
    }
}

/// Never-zero span id (zero is reserved/forbidden on the wire).
fn fresh_span_id() -> u64 {
    loop {
        let id = next_id();
        if id != 0 {
            return id;
        }
    }
}

/// Never-zero 128-bit trace id from two generator draws.
fn fresh_trace_id() -> u128 {
    loop {
        let id = (u128::from(next_id()) << 64) | u128::from(next_id());
        if id != 0 {
            return id;
        }
    }
}

/// One-shot resolution of [`SAMPLE_ENV`], clamped to `[0.0, 1.0]`.
fn sample_rate() -> f64 {
    static RATE: OnceLock<f64> = OnceLock::new();
    *RATE.get_or_init(|| {
        std::env::var(SAMPLE_ENV)
            .ok()
            .and_then(|v| v.parse::<f64>().ok())
            .filter(|r| r.is_finite())
            .map(|r| r.clamp(0.0, 1.0))
            .unwrap_or(1.0)
    })
}

/// Rolls the head-sampling decision for a new root span.
fn roll_sampled() -> bool {
    let rate = sample_rate();
    if rate >= 1.0 {
        return true;
    }
    if rate <= 0.0 {
        return false;
    }
    // 53 uniform bits → [0,1): plenty of resolution for a sampling rate.
    let u = (next_id() >> 11) as f64 / (1u64 << 53) as f64;
    u < rate
}

thread_local! {
    /// The current-span stack: top is the context new spans inherit.
    /// Unsampled roots push the zero sentinel so their whole subtree
    /// consistently skips id generation.
    static STACK: RefCell<Vec<TraceContext>> = const { RefCell::new(Vec::new()) };
}

/// The innermost *sampled* context on this thread, if any. `None` both
/// when no span is open and when the open trace was not sampled.
///
/// Named `active` (not `current`) so the bare-name call graph in the
/// workspace lock-order analyzer keeps `ModelSlot::current` unique.
pub fn active() -> Option<TraceContext> {
    STACK.with(|s| s.borrow().last().copied().filter(TraceContext::is_sampled))
}

/// Derives the context for a span opening on this thread and pushes it:
/// child of the stack top when one is open (inheriting an unsampled
/// verdict as-is), otherwise a fresh root that rolls [`SAMPLE_ENV`].
/// Returns `(ctx, parent_span_id)`. Callers must pair with [`pop`].
pub(crate) fn push_child() -> (TraceContext, Option<u64>) {
    let (ctx, parent) = match STACK.with(|s| s.borrow().last().copied()) {
        Some(parent) if parent.is_sampled() => (
            TraceContext {
                trace_id: parent.trace_id,
                span_id: fresh_span_id(),
            },
            Some(parent.span_id),
        ),
        Some(_unsampled) => (
            TraceContext {
                trace_id: 0,
                span_id: 0,
            },
            None,
        ),
        None => {
            if roll_sampled() {
                (
                    TraceContext {
                        trace_id: fresh_trace_id(),
                        span_id: fresh_span_id(),
                    },
                    None,
                )
            } else {
                (
                    TraceContext {
                        trace_id: 0,
                        span_id: 0,
                    },
                    None,
                )
            }
        }
    };
    STACK.with(|s| s.borrow_mut().push(ctx));
    (ctx, parent)
}

/// Pops the context pushed by [`push_child`] / [`attach`].
pub(crate) fn pop() {
    STACK.with(|s| {
        s.borrow_mut().pop();
    });
}

/// Adopts a remote parent: spans opened on this thread while the guard
/// lives become children of `ctx` (the context decoded from a wire
/// `trace=` field). Drop restores the previous stack top.
#[must_use = "the remote parent detaches when the guard drops"]
pub fn attach(ctx: TraceContext) -> RemoteGuard {
    STACK.with(|s| s.borrow_mut().push(ctx));
    RemoteGuard { _priv: () }
}

/// Scope guard returned by [`attach`].
pub struct RemoteGuard {
    _priv: (),
}

impl Drop for RemoteGuard {
    fn drop(&mut self) {
        pop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_parse_round_trip() {
        let ctx = TraceContext {
            trace_id: 0x0af7_6519_16cd_43dd_8448_eb21_1c80_319c,
            span_id: 0xb7ad_6b71_6920_3331,
        };
        let wire = ctx.encode();
        assert_eq!(
            wire,
            "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01"
        );
        assert_eq!(TraceContext::parse(&wire), Ok(ctx));
    }

    #[test]
    fn malformed_traceparents_are_rejected_with_typed_errors() {
        let ok = "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01";
        assert!(TraceContext::parse(ok).is_ok());
        let cases: &[(&str, ParseError)] = &[
            ("", ParseError::Length { got: 0 }),
            ("00-abc-def-01", ParseError::Length { got: 13 }),
            (
                "00_0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01",
                ParseError::Separator,
            ),
            (
                "01-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01",
                ParseError::Version,
            ),
            (
                "00-0AF7651916CD43DD8448EB211C80319C-b7ad6b7169203331-01",
                ParseError::TraceIdHex,
            ),
            (
                "00-0af7651916cd43dd8448eb211c80319c-B7AD6B7169203331-01",
                ParseError::SpanIdHex,
            ),
            (
                "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-00",
                ParseError::Flags,
            ),
            (
                "00-00000000000000000000000000000000-b7ad6b7169203331-01",
                ParseError::ZeroId,
            ),
            (
                "00-0af7651916cd43dd8448eb211c80319c-0000000000000000-01",
                ParseError::ZeroId,
            ),
        ];
        for (input, want) in cases {
            assert_eq!(TraceContext::parse(input), Err(*want), "input {input:?}");
        }
    }

    #[test]
    fn attach_scopes_the_remote_parent() {
        let remote = TraceContext {
            trace_id: 42,
            span_id: 7,
        };
        assert_eq!(active(), None);
        {
            let _g = attach(remote);
            assert_eq!(active(), Some(remote));
            {
                let _inner = attach(TraceContext {
                    trace_id: 42,
                    span_id: 9,
                });
                assert_eq!(active().map(|c| c.span_id), Some(9));
            }
            assert_eq!(active(), Some(remote));
        }
        assert_eq!(active(), None);
    }

    #[test]
    fn unsampled_sentinel_is_invisible_to_current() {
        let _g = attach(TraceContext {
            trace_id: 0,
            span_id: 0,
        });
        assert_eq!(active(), None);
        // A child derived under the sentinel inherits "unsampled" and
        // never generates ids.
        let (child, parent) = push_child();
        assert!(!child.is_sampled());
        assert_eq!(parent, None);
        pop();
    }

    #[test]
    fn children_inherit_the_trace_and_link_to_the_parent_span() {
        let root = TraceContext {
            trace_id: 0xdead_beef,
            span_id: 0x1234,
        };
        let _g = attach(root);
        let (child, parent) = push_child();
        assert_eq!(child.trace_id, root.trace_id);
        assert_ne!(child.span_id, 0);
        assert_ne!(child.span_id, root.span_id);
        assert_eq!(parent, Some(root.span_id));
        let (grandchild, gparent) = push_child();
        assert_eq!(grandchild.trace_id, root.trace_id);
        assert_eq!(gparent, Some(child.span_id));
        pop();
        pop();
    }

    #[test]
    fn generated_ids_are_nonzero_and_distinct() {
        let a = fresh_trace_id();
        let b = fresh_trace_id();
        assert_ne!(a, 0);
        assert_ne!(a, b);
        let s1 = fresh_span_id();
        let s2 = fresh_span_id();
        assert_ne!(s1, 0);
        assert_ne!(s1, s2);
    }
}
