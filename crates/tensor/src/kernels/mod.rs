//! Execution kernels: blocked, transpose-aware, multi-threaded GEMM.
//!
//! Every matrix product in the workspace funnels through the three kernels
//! here:
//!
//! * [`gemm_nn`] — `C += A·B`
//! * [`gemm_nt`] — `C += A·Bᵀ` with `B` stored row-major `[n,k]`
//! * [`gemm_tn`] — `C += Aᵀ·B` with `A` stored row-major `[k,m]`
//!
//! The `nt`/`tn` variants read the transposed operand in its original
//! layout, so callers never materialise a transposed copy: attention scores
//! (`Q·Kᵀ`), linear/matmul backward (`dA = g·Bᵀ`, `dB = Aᵀ·g`), and the
//! conv backward all hit these directly.
//!
//! # Determinism
//!
//! All three kernels accumulate each output element with a **single
//! accumulator in ascending inner-index (`p`) order** — the same floating-
//! point rounding sequence as the textbook triple loop. Cache blocking only
//! reorders *which element* is advanced next, never the order of one
//! element's own chain, and the thread pool (see [`mod@pool`]) assigns each
//! output row to exactly one worker. Results are therefore bitwise
//! identical for any thread count and any blocking parameters.
//!
//! # Blocking parameters
//!
//! * `nn`/`tn` stream `B` rows; the inner dimension is blocked by
//!   [`KC`] = 256 so the active `KC×n` panel of `B` stays in L1/L2 while it
//!   is swept over all output rows a thread owns.
//! * `nt` is a row-by-row dot product; `B` rows are blocked by [`JB`] = 64
//!   so a `JB×k` panel of `B` is reused across consecutive output rows.

pub mod counters;
pub mod pool;

pub use counters::{counter_snapshot, publish_registry, reset_counters, KernelCounters};
pub use pool::{num_threads, par_chunks_mut, par_map_ranges, set_num_threads};

/// Inner-dimension (`p`) block size for the streaming kernels.
const KC: usize = 256;

/// `B`-row block size for the dot-product (`nt`) kernel.
const JB: usize = 64;

/// `C[m,n] += A[m,k] · B[k,n]`, threaded over output rows.
pub fn gemm_nn(out: &mut [f32], a: &[f32], b: &[f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(out.len(), m * n);
    counters::record_gemm((m * k * n) as u64);
    par_chunks_mut(out, n.max(1), k.saturating_mul(n), |i, row| {
        gemm_nn_row(row, &a[i * k..(i + 1) * k], b, k, n);
    });
}

/// One output row of `nn`: `row[n] += a_row[k] · B[k,n]`, `p` ascending.
fn gemm_nn_row(row: &mut [f32], a_row: &[f32], b: &[f32], k: usize, n: usize) {
    for p0 in (0..k).step_by(KC) {
        let p1 = (p0 + KC).min(k);
        for p in p0..p1 {
            let a_ip = a_row[p];
            let b_row = &b[p * n..(p + 1) * n];
            for (o, &b_pj) in row.iter_mut().zip(b_row) {
                *o += a_ip * b_pj;
            }
        }
    }
}

/// `C[m,n] += A[m,k] · B[n,k]ᵀ`, threaded over output rows. `B` is read in
/// its stored `[n,k]` layout — no transposed copy exists at any point.
pub fn gemm_nt(out: &mut [f32], a: &[f32], b: &[f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), n * k);
    debug_assert_eq!(out.len(), m * n);
    counters::record_gemm((m * k * n) as u64);
    par_chunks_mut(out, n.max(1), k.saturating_mul(n), |i, row| {
        gemm_nt_row(row, &a[i * k..(i + 1) * k], b, k);
    });
}

/// One output row of `nt`: `row[j] += dot(a_row, b_row_j)`, `p` ascending.
///
/// Eight `j`-chains are interleaved so the CPU pipelines eight independent
/// FMA streams instead of stalling on one accumulator's latency. Each
/// element still has exactly one accumulator advanced in ascending `p`
/// order, so the bitwise-determinism contract is unchanged.
fn gemm_nt_row(row: &mut [f32], a_row: &[f32], b: &[f32], k: usize) {
    for j0 in (0..row.len()).step_by(JB) {
        let j1 = (j0 + JB).min(row.len());
        let mut j = j0;
        while j + 8 <= j1 {
            let b0 = &b[j * k..(j + 1) * k];
            let b1 = &b[(j + 1) * k..(j + 2) * k];
            let b2 = &b[(j + 2) * k..(j + 3) * k];
            let b3 = &b[(j + 3) * k..(j + 4) * k];
            let b4 = &b[(j + 4) * k..(j + 5) * k];
            let b5 = &b[(j + 5) * k..(j + 6) * k];
            let b6 = &b[(j + 6) * k..(j + 7) * k];
            let b7 = &b[(j + 7) * k..(j + 8) * k];
            let (mut s0, mut s1) = (row[j], row[j + 1]);
            let (mut s2, mut s3) = (row[j + 2], row[j + 3]);
            let (mut s4, mut s5) = (row[j + 4], row[j + 5]);
            let (mut s6, mut s7) = (row[j + 6], row[j + 7]);
            for (p, &x) in a_row.iter().enumerate() {
                s0 += x * b0[p];
                s1 += x * b1[p];
                s2 += x * b2[p];
                s3 += x * b3[p];
                s4 += x * b4[p];
                s5 += x * b5[p];
                s6 += x * b6[p];
                s7 += x * b7[p];
            }
            row[j] = s0;
            row[j + 1] = s1;
            row[j + 2] = s2;
            row[j + 3] = s3;
            row[j + 4] = s4;
            row[j + 5] = s5;
            row[j + 6] = s6;
            row[j + 7] = s7;
            j += 8;
        }
        while j < j1 {
            let b_row = &b[j * k..(j + 1) * k];
            let mut acc = row[j];
            for (&x, &y) in a_row.iter().zip(b_row) {
                acc += x * y;
            }
            row[j] = acc;
            j += 1;
        }
    }
}

/// `C[m,n] += A[k,m]ᵀ · B[k,n]`, threaded over output rows. `A` is read in
/// its stored `[k,m]` layout — no transposed copy exists at any point.
pub fn gemm_tn(out: &mut [f32], a: &[f32], b: &[f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(a.len(), k * m);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(out.len(), m * n);
    counters::record_gemm((m * k * n) as u64);
    par_chunks_mut(out, n.max(1), k.saturating_mul(n), |i, row| {
        gemm_tn_row(row, a, b, i, k, m, n);
    });
}

/// One output row of `tn`: `row[n] += A[:,i] · B[k,n]`, `p` ascending.
fn gemm_tn_row(row: &mut [f32], a: &[f32], b: &[f32], i: usize, k: usize, m: usize, n: usize) {
    for p0 in (0..k).step_by(KC) {
        let p1 = (p0 + KC).min(k);
        for p in p0..p1 {
            let a_pi = a[p * m + i];
            let b_row = &b[p * n..(p + 1) * n];
            for (o, &b_pj) in row.iter_mut().zip(b_row) {
                *o += a_pi * b_pj;
            }
        }
    }
}

/// Batched `C[b,m,n] += A[b,m,k] · B[b,k,n]`, threaded over `b·m` rows.
pub fn gemm_nn_batched(
    out: &mut [f32],
    a: &[f32],
    b: &[f32],
    batch: usize,
    m: usize,
    k: usize,
    n: usize,
) {
    debug_assert_eq!(a.len(), batch * m * k);
    debug_assert_eq!(b.len(), batch * k * n);
    debug_assert_eq!(out.len(), batch * m * n);
    counters::record_gemm((batch * m * k * n) as u64);
    par_chunks_mut(out, n.max(1), k.saturating_mul(n), |r, row| {
        let (bi, i) = (r / m, r % m);
        let a_row = &a[(bi * m + i) * k..(bi * m + i + 1) * k];
        gemm_nn_row(row, a_row, &b[bi * k * n..(bi + 1) * k * n], k, n);
    });
}

/// Batched `C[b,m,n] += A[b,m,k] · B[b,n,k]ᵀ`, threaded over `b·m` rows.
pub fn gemm_nt_batched(
    out: &mut [f32],
    a: &[f32],
    b: &[f32],
    batch: usize,
    m: usize,
    k: usize,
    n: usize,
) {
    debug_assert_eq!(a.len(), batch * m * k);
    debug_assert_eq!(b.len(), batch * n * k);
    debug_assert_eq!(out.len(), batch * m * n);
    counters::record_gemm((batch * m * k * n) as u64);
    par_chunks_mut(out, n.max(1), k.saturating_mul(n), |r, row| {
        let (bi, i) = (r / m, r % m);
        let a_row = &a[(bi * m + i) * k..(bi * m + i + 1) * k];
        gemm_nt_row(row, a_row, &b[bi * n * k..(bi + 1) * n * k], k);
    });
}

/// Batched `C[b,m,n] += A[b,k,m]ᵀ · B[b,k,n]`, threaded over `b·m` rows.
pub fn gemm_tn_batched(
    out: &mut [f32],
    a: &[f32],
    b: &[f32],
    batch: usize,
    m: usize,
    k: usize,
    n: usize,
) {
    debug_assert_eq!(a.len(), batch * k * m);
    debug_assert_eq!(b.len(), batch * k * n);
    debug_assert_eq!(out.len(), batch * m * n);
    counters::record_gemm((batch * m * k * n) as u64);
    par_chunks_mut(out, n.max(1), k.saturating_mul(n), |r, row| {
        let (bi, i) = (r / m, r % m);
        gemm_tn_row(
            row,
            &a[bi * k * m..(bi + 1) * k * m],
            &b[bi * k * n..(bi + 1) * k * n],
            i,
            k,
            m,
            n,
        );
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Textbook triple loop, single-threaded, `p` ascending — the reference
    /// rounding chain every kernel must match bitwise.
    fn reference_nn(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            for p in 0..k {
                for j in 0..n {
                    out[i * n + j] += a[i * k + p] * b[p * n + j];
                }
            }
        }
        out
    }

    fn transpose(x: &[f32], rows: usize, cols: usize) -> Vec<f32> {
        let mut t = vec![0.0f32; rows * cols];
        for r in 0..rows {
            for c in 0..cols {
                t[c * rows + r] = x[r * cols + c];
            }
        }
        t
    }

    fn fill(len: usize, seed: u32) -> Vec<f32> {
        // Small deterministic pseudo-random values with varied signs.
        (0..len)
            .map(|i| {
                let h = (i as u32).wrapping_mul(2654435761).wrapping_add(seed);
                ((h >> 8) as f32 / (1 << 24) as f32) * 2.0 - 1.0
            })
            .collect()
    }

    #[test]
    fn nn_matches_reference_bitwise_across_thread_counts() {
        let (m, k, n) = (17, 300, 13);
        let a = fill(m * k, 1);
        let b = fill(k * n, 2);
        let expected = reference_nn(&a, &b, m, k, n);
        for threads in [1usize, 2, 8] {
            set_num_threads(threads);
            let mut out = vec![0.0f32; m * n];
            gemm_nn(&mut out, &a, &b, m, k, n);
            assert_eq!(out, expected, "threads={threads}");
        }
        set_num_threads(0);
    }

    #[test]
    fn nt_matches_transposed_reference_bitwise() {
        let (m, k, n) = (9, 270, 11);
        let a = fill(m * k, 3);
        let b = fill(n * k, 4); // stored [n,k]
        let bt = transpose(&b, n, k); // [k,n]
        let expected = reference_nn(&a, &bt, m, k, n);
        for threads in [1usize, 2, 8] {
            set_num_threads(threads);
            let mut out = vec![0.0f32; m * n];
            gemm_nt(&mut out, &a, &b, m, k, n);
            assert_eq!(out, expected, "threads={threads}");
        }
        set_num_threads(0);
    }

    #[test]
    fn tn_matches_transposed_reference_bitwise() {
        let (m, k, n) = (8, 300, 10);
        let a = fill(k * m, 5); // stored [k,m]
        let at = transpose(&a, k, m); // [m,k]
        let b = fill(k * n, 6);
        let expected = reference_nn(&at, &b, m, k, n);
        for threads in [1usize, 2, 8] {
            set_num_threads(threads);
            let mut out = vec![0.0f32; m * n];
            gemm_tn(&mut out, &a, &b, m, k, n);
            assert_eq!(out, expected, "threads={threads}");
        }
        set_num_threads(0);
    }

    #[test]
    fn batched_kernels_match_per_slice() {
        let (batch, m, k, n) = (3, 5, 40, 7);
        let a = fill(batch * m * k, 7);
        let b = fill(batch * k * n, 8);
        let mut out = vec![0.0f32; batch * m * n];
        gemm_nn_batched(&mut out, &a, &b, batch, m, k, n);
        for bi in 0..batch {
            let expected = reference_nn(
                &a[bi * m * k..(bi + 1) * m * k],
                &b[bi * k * n..(bi + 1) * k * n],
                m,
                k,
                n,
            );
            assert_eq!(
                &out[bi * m * n..(bi + 1) * m * n],
                &expected[..],
                "batch {bi}"
            );
        }
    }

    #[test]
    fn kernels_accumulate_into_existing_output() {
        let (m, k, n) = (2, 3, 2);
        // Small integers: every product and partial sum is exact in f32, so
        // the two chains below differ by exactly the 1.0 offset.
        let a: Vec<f32> = (1..=(m * k) as i32).map(|v| v as f32).collect();
        let b: Vec<f32> = (1..=(k * n) as i32).map(|v| v as f32).collect();
        let mut base = vec![1.0f32; m * n];
        gemm_nn(&mut base, &a, &b, m, k, n);
        let mut plain = vec![0.0f32; m * n];
        gemm_nn(&mut plain, &a, &b, m, k, n);
        for (x, y) in base.iter().zip(plain.iter()) {
            // Accumulation starts from the existing value, not from zero.
            assert_eq!(*x, 1.0 + *y);
        }
    }
}
