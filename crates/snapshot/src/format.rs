//! The snapshot container: magic, format version, CRC-protected section
//! table, then the section payloads (DESIGN.md §10).
//!
//! ```text
//! offset  size  field
//! 0       8     magic  "CDCLSNAP"
//! 8       4     format version (u32 LE)
//! 12      4     section count  (u32 LE)
//! 16      16×n  section table: tag [u8;4], payload len (u64 LE),
//!               payload CRC-32 (u32 LE)
//! 16+16n  4     header CRC-32 over bytes [0, 16+16n)
//! …             payloads, concatenated in table order, nothing between
//!               them and nothing after the last
//! ```
//!
//! Every byte of a snapshot is covered by exactly one integrity check: the
//! header CRC covers magic/version/count/table, each payload byte is covered
//! by its section CRC, and total length is pinned by the table (trailing
//! bytes are an error). A single-byte substitution or a truncation anywhere
//! is therefore always detected — the property the corruption proptests
//! exercise.

use crate::crc::crc32;
use crate::SnapshotError;

/// File magic: the first 8 bytes of every snapshot.
pub const MAGIC: [u8; 8] = *b"CDCLSNAP";

/// Current format version. Bump on any layout change; readers reject other
/// versions (see DESIGN.md §10 for the compatibility policy).
pub const FORMAT_VERSION: u32 = 1;

/// Fixed header prefix: magic + version + count.
const HEADER_PREFIX: usize = 16;
/// Bytes per section-table entry: tag + len + crc.
const TABLE_ENTRY: usize = 16;
/// Upper bound on the section count (format v1 defines 6 sections; the
/// bound only guards against absurd counts in corrupt files).
const MAX_SECTIONS: u32 = 256;

/// Accumulates tagged sections and serializes the container.
#[derive(Default)]
pub struct SnapshotBuilder {
    sections: Vec<([u8; 4], Vec<u8>)>,
}

impl SnapshotBuilder {
    /// Empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one section. Order is preserved and becomes the file order.
    pub fn section(&mut self, tag: [u8; 4], payload: Vec<u8>) {
        self.sections.push((tag, payload));
    }

    /// Serializes the container: header, CRC-protected table, payloads.
    pub fn finish(self) -> Vec<u8> {
        let table_len = self.sections.len() * TABLE_ENTRY;
        let payload_len: usize = self.sections.iter().map(|(_, p)| p.len()).sum();
        let mut out = Vec::with_capacity(HEADER_PREFIX + table_len + 4 + payload_len);
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        out.extend_from_slice(&(self.sections.len() as u32).to_le_bytes());
        for (tag, payload) in &self.sections {
            out.extend_from_slice(tag);
            out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
            out.extend_from_slice(&crc32(payload).to_le_bytes());
        }
        let header_crc = crc32(&out);
        out.extend_from_slice(&header_crc.to_le_bytes());
        for (_, payload) in &self.sections {
            out.extend_from_slice(payload);
        }
        out
    }
}

/// A fully-validated snapshot: every CRC checked, every bound verified.
/// Construction via [`Snapshot::parse`] is the only way to obtain one, so
/// holding a `Snapshot` *is* the proof the container is intact.
pub struct Snapshot<'a> {
    sections: Vec<([u8; 4], &'a [u8])>,
}

impl<'a> Snapshot<'a> {
    /// Parses and validates `bytes`. Checks, in order: length for the fixed
    /// header, magic, version, section count sanity, length for the table,
    /// the header CRC, each payload's bounds and CRC, duplicate tags, and
    /// finally that no trailing bytes follow the last payload.
    pub fn parse(bytes: &'a [u8]) -> Result<Self, SnapshotError> {
        if bytes.len() < HEADER_PREFIX {
            return Err(SnapshotError::Truncated {
                needed: HEADER_PREFIX,
                have: bytes.len(),
            });
        }
        if bytes[..8] != MAGIC {
            return Err(SnapshotError::BadMagic);
        }
        let version = u32::from_le_bytes([bytes[8], bytes[9], bytes[10], bytes[11]]);
        if version != FORMAT_VERSION {
            return Err(SnapshotError::UnsupportedVersion {
                found: version,
                supported: FORMAT_VERSION,
            });
        }
        let count = u32::from_le_bytes([bytes[12], bytes[13], bytes[14], bytes[15]]);
        if count > MAX_SECTIONS {
            return Err(SnapshotError::Malformed(format!("{count} sections")));
        }
        let table_end = HEADER_PREFIX + count as usize * TABLE_ENTRY;
        let payloads_start = table_end + 4;
        if bytes.len() < payloads_start {
            return Err(SnapshotError::Truncated {
                needed: payloads_start,
                have: bytes.len(),
            });
        }
        let stored_header_crc = u32::from_le_bytes([
            bytes[table_end],
            bytes[table_end + 1],
            bytes[table_end + 2],
            bytes[table_end + 3],
        ]);
        if crc32(&bytes[..table_end]) != stored_header_crc {
            return Err(SnapshotError::HeaderCorrupt);
        }

        let mut sections = Vec::with_capacity(count as usize);
        let mut pos = payloads_start;
        for i in 0..count as usize {
            let e = HEADER_PREFIX + i * TABLE_ENTRY;
            let tag: [u8; 4] = [bytes[e], bytes[e + 1], bytes[e + 2], bytes[e + 3]];
            let len = u64::from_le_bytes([
                bytes[e + 4],
                bytes[e + 5],
                bytes[e + 6],
                bytes[e + 7],
                bytes[e + 8],
                bytes[e + 9],
                bytes[e + 10],
                bytes[e + 11],
            ]);
            let stored_crc =
                u32::from_le_bytes([bytes[e + 12], bytes[e + 13], bytes[e + 14], bytes[e + 15]]);
            let len = usize::try_from(len)
                .ok()
                .filter(|l| pos.checked_add(*l).is_some_and(|end| end <= bytes.len()))
                .ok_or(SnapshotError::Truncated {
                    needed: len as usize,
                    have: bytes.len().saturating_sub(pos),
                })?;
            let payload = &bytes[pos..pos + len];
            if crc32(payload) != stored_crc {
                return Err(SnapshotError::SectionCorrupt { tag: tag_name(tag) });
            }
            if sections.iter().any(|(t, _)| *t == tag) {
                return Err(SnapshotError::Malformed(format!(
                    "duplicate section `{}`",
                    tag_name(tag)
                )));
            }
            sections.push((tag, payload));
            pos += len;
        }
        if pos != bytes.len() {
            return Err(SnapshotError::TrailingData {
                extra: bytes.len() - pos,
            });
        }
        Ok(Self { sections })
    }

    /// The (validated) payload of section `tag`.
    pub fn section(&self, tag: [u8; 4]) -> Result<&'a [u8], SnapshotError> {
        self.sections
            .iter()
            .find(|(t, _)| *t == tag)
            .map(|(_, p)| *p)
            .ok_or(SnapshotError::MissingSection { tag: tag_name(tag) })
    }

    /// Tags present, in file order.
    pub fn tags(&self) -> Vec<[u8; 4]> {
        self.sections.iter().map(|(t, _)| *t).collect()
    }
}

fn tag_name(tag: [u8; 4]) -> String {
    tag.iter()
        .map(|&b| {
            if b.is_ascii_graphic() {
                char::from(b)
            } else {
                '?'
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<u8> {
        let mut b = SnapshotBuilder::new();
        b.section(*b"META", vec![1, 2, 3]);
        b.section(*b"PARM", vec![0; 64]);
        b.section(*b"EMTY", Vec::new());
        b.finish()
    }

    #[test]
    fn build_parse_round_trip() {
        let bytes = sample();
        let snap = Snapshot::parse(&bytes).unwrap();
        assert_eq!(snap.tags(), vec![*b"META", *b"PARM", *b"EMTY"]);
        assert_eq!(snap.section(*b"META").unwrap(), &[1, 2, 3]);
        assert_eq!(snap.section(*b"PARM").unwrap().len(), 64);
        assert_eq!(snap.section(*b"EMTY").unwrap(), &[] as &[u8]);
        assert!(matches!(
            snap.section(*b"NOPE"),
            Err(SnapshotError::MissingSection { .. })
        ));
    }

    #[test]
    fn builds_are_deterministic() {
        assert_eq!(sample(), sample());
    }

    #[test]
    fn wrong_magic_and_version_are_typed_errors() {
        let mut bytes = sample();
        bytes[0] ^= 0xFF;
        assert!(matches!(
            Snapshot::parse(&bytes),
            Err(SnapshotError::BadMagic)
        ));
        let mut bytes = sample();
        bytes[8] = 99; // version — caught before the header CRC is checked
        assert!(matches!(
            Snapshot::parse(&bytes),
            Err(SnapshotError::UnsupportedVersion { found: 99, .. })
        ));
    }

    #[test]
    fn every_single_byte_flip_is_detected() {
        let bytes = sample();
        for i in 0..bytes.len() {
            let mut m = bytes.clone();
            m[i] ^= 0x40;
            assert!(
                Snapshot::parse(&m).is_err(),
                "flip at byte {i}/{} went undetected",
                bytes.len()
            );
        }
    }

    #[test]
    fn every_truncation_is_detected() {
        let bytes = sample();
        for cut in 0..bytes.len() {
            assert!(
                Snapshot::parse(&bytes[..cut]).is_err(),
                "truncation to {cut} bytes went undetected"
            );
        }
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut bytes = sample();
        bytes.push(0);
        assert!(matches!(
            Snapshot::parse(&bytes),
            Err(SnapshotError::TrailingData { extra: 1 })
        ));
    }

    #[test]
    fn duplicate_tags_are_rejected() {
        let mut b = SnapshotBuilder::new();
        b.section(*b"META", vec![1]);
        b.section(*b"META", vec![2]);
        let bytes = b.finish();
        assert!(matches!(
            Snapshot::parse(&bytes),
            Err(SnapshotError::Malformed(_))
        ));
    }
}
