//! Concurrency properties of the metrics registry: totals are exact under
//! contention and histogram invariants hold for arbitrary observation sets.

use cdcl_obs::{CounterCore, HistogramCore, Registry};
use proptest::collection::vec;
use proptest::prelude::*;
use std::sync::Arc;

proptest! {
    /// N threads × M increments lose nothing: the counter ends at exactly
    /// the sum of per-thread contributions.
    #[test]
    fn counter_increments_are_exact_under_contention(
        threads in 1usize..8,
        per_thread in vec(1u64..200, 1..8),
    ) {
        let core = Arc::new(CounterCore::default());
        let mut handles = Vec::new();
        for t in 0..threads {
            let core = Arc::clone(&core);
            let amounts = per_thread.clone();
            handles.push(std::thread::spawn(move || {
                for (i, &n) in amounts.iter().enumerate() {
                    // Vary per-thread order a little so interleavings differ.
                    let n = n + ((t + i) % 3) as u64;
                    core.add(n);
                }
            }));
        }
        let mut expected = 0u64;
        for t in 0..threads {
            for (i, &n) in per_thread.iter().enumerate() {
                expected += n + ((t + i) % 3) as u64;
            }
        }
        for h in handles {
            h.join().unwrap();
        }
        prop_assert_eq!(core.get(), expected);
    }

    /// Histogram count always equals the sum of bucket counts, and the sum
    /// of observations is preserved, even when observed from many threads.
    #[test]
    fn histogram_count_equals_bucket_sum_under_contention(
        threads in 1usize..8,
        values in vec(0.0f64..1e7, 1..32),
    ) {
        let core = Arc::new(HistogramCore::default());
        let mut handles = Vec::new();
        for _ in 0..threads {
            let core = Arc::clone(&core);
            let values = values.clone();
            handles.push(std::thread::spawn(move || {
                for &v in &values {
                    core.observe(v);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let counts = core.bucket_counts();
        let total = threads as u64 * values.len() as u64;
        prop_assert_eq!(counts.iter().sum::<u64>(), total);
        prop_assert_eq!(core.count(), total);
        let expected_sum: f64 = values.iter().sum::<f64>() * threads as f64;
        let err = (core.sum() - expected_sum).abs();
        // CAS-loop summation is exact per update; only f64 rounding of the
        // running total differs from the reference order.
        prop_assert!(err <= expected_sum.abs() * 1e-9 + 1e-6, "sum drift {err}");
    }

    /// Concurrent registration of the same name from many threads yields
    /// one shared core: every thread's increments land in the same counter.
    #[test]
    fn concurrent_registration_converges_to_one_core(
        threads in 2usize..8,
        per_thread in 1u64..100,
    ) {
        let registry = Arc::new(Registry::new());
        let mut handles = Vec::new();
        for _ in 0..threads {
            let registry = Arc::clone(&registry);
            handles.push(std::thread::spawn(move || {
                let c = registry.counter("cdcl_prop_shared_total", "shared");
                for _ in 0..per_thread {
                    c.add(1);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let c = registry.counter("cdcl_prop_shared_total", "shared");
        prop_assert_eq!(c.get(), threads as u64 * per_thread);
        // Exactly one exposition block for the name.
        let text = registry.render_prometheus();
        let occurrences = text.matches("# TYPE cdcl_prop_shared_total counter").count();
        prop_assert_eq!(occurrences, 1);
    }

    /// Percentiles of a registry histogram stay within the observed range
    /// (bucket interpolation never extrapolates past the data's bucket).
    #[test]
    fn percentiles_stay_in_bucketed_range(values in vec(0.1f64..1e6, 1..64)) {
        let r = Registry::new();
        let h = r.histogram("cdcl_prop_range_us", "range check");
        for &v in &values {
            h.observe(v);
        }
        let p50 = h.percentile(0.5);
        let p99 = h.percentile(0.99);
        prop_assert!(p50 <= p99 + 1e-9, "p50 {p50} > p99 {p99}");
        // Upper bound: the bucket above the max observation.
        let max = values.iter().cloned().fold(f64::MIN, f64::max);
        let cap = cdcl_obs::hist::BUCKET_BOUNDS[cdcl_obs::hist::bucket_index(max)
            .min(cdcl_obs::hist::BUCKET_BOUNDS.len() - 1)];
        prop_assert!(p99 <= cap + 1e-9, "p99 {p99} above bucket cap {cap}");
    }
}
