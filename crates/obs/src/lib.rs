//! Live metrics for the CDCL workspace (DESIGN.md §11).
//!
//! Where `cdcl-telemetry` streams *events* to a file for post-hoc analysis,
//! this crate aggregates *state* in memory so a running trainer or
//! `cdcl-serve` can answer "what is your p99 batch latency / steps-per-sec
//! / memory occupancy **right now**". Three metric kinds live in one global
//! [`Registry`]:
//!
//! * [`Counter`] — monotone `u64` (`*_total` names);
//! * [`Gauge`] — last-write-wins `f64`;
//! * [`Histogram`] — log-bucketed distribution on the fixed 1–2–5 grid of
//!   [`hist`], with p50/p90/p99 derived by bucket interpolation.
//!
//! The layer is **off by default** and costs one relaxed atomic load per
//! record site when disabled — the same contract `cdcl-telemetry`
//! established. Enable with `CDCL_METRICS=1` (or [`set_enabled`] from
//! tests/servers). Recording never takes a lock: counters and bucket slots
//! are `AtomicU64` updated with relaxed `fetch_add`; the registry mutex is
//! touched only at first registration and at exposition time. Metrics only
//! *observe* — they never branch the data path — so training with metrics
//! on is bitwise identical to metrics off (proven by
//! `tests/integration_metrics.rs`).
//!
//! Metric handles are `const`-constructible statics, registered into the
//! global registry on first use:
//!
//! ```
//! static REQS: cdcl_obs::Counter =
//!     cdcl_obs::Counter::new("cdcl_doc_requests_total", "Requests answered");
//! cdcl_obs::set_enabled(true);
//! REQS.inc();
//! assert_eq!(REQS.get(), 1);
//! # cdcl_obs::set_enabled(false);
//! ```
//!
//! Naming discipline (enforced by `cdcl-lint`'s `metric-names` rule):
//! `snake_case`, prefixed `cdcl_`, counters end in `_total`, and names
//! appear only at `static` registration sites — record sites go through the
//! typed handles, never ad-hoc string lookups.
//!
//! Exposition comes in two encodings: [`Registry::render_prometheus`]
//! (text format v0.0.4, scraped from `cdcl-serve`'s `/metrics` endpoint)
//! and [`Registry::render_json`] (one-line JSON, answered to the `METRICS`
//! stdin verb). See DESIGN.md §11 for the full grammar.

pub mod hist;
pub mod lockhook;

use hist::BUCKET_COUNT;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, Once, OnceLock};
use std::time::Instant;

/// The environment variable that activates the metrics layer.
pub const METRICS_ENV: &str = "CDCL_METRICS";

/// Fast-path flag: true iff the metrics layer is recording.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// One-shot resolution of the `CDCL_METRICS` environment variable.
static ENV_INIT: Once = Once::new();

fn ensure_env_init() {
    ENV_INIT.call_once(|| {
        if let Ok(v) = std::env::var(METRICS_ENV) {
            if !v.is_empty() && v != "0" {
                // ordering: flag — advisory enable bit; record sites only
                // gate work on it, data consistency comes from the atomics
                // themselves.
                ENABLED.store(true, Ordering::Release);
            }
        }
    });
}

/// True when the metrics layer is recording. Producers gate any work that
/// exists only to feed metrics (loss reads, counter snapshots, timers)
/// behind this, so a metrics-off run does no extra work at all.
#[inline]
pub fn enabled() -> bool {
    // ordering: flag — a stale read merely delays the first recorded
    // sample past an enable/disable flip; no data hangs off the bit.
    if ENABLED.load(Ordering::Relaxed) {
        return true;
    }
    ensure_env_init();
    // ordering: flag — re-read after idempotent env resolution; same advisory bit.
    ENABLED.load(Ordering::Relaxed)
}

/// Turns the metrics layer on or off explicitly, overriding whatever
/// `CDCL_METRICS` resolved to. Servers call `set_enabled(true)` at startup
/// (a serving process always wants its own metrics); tests use it to keep
/// per-process environment state out of the picture.
pub fn set_enabled(on: bool) {
    ensure_env_init();
    // ordering: flag — see `enabled`; Release is stronger than required.
    ENABLED.store(on, Ordering::Release);
}

/// Poison-tolerant lock: a panicked writer cannot corrupt the registry
/// (entries are append-only), so taking over a poisoned mutex is sound and
/// keeps this crate free of panic paths.
fn lock_entries(m: &Mutex<Vec<Entry>>) -> MutexGuard<'_, Vec<Entry>> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

// ----------------------------------------------------------------------
// Cores: the shared atomic state behind each metric
// ----------------------------------------------------------------------

/// Monotone counter state. Core methods do not check [`enabled`] — gating
/// lives in the static [`Counter`] handle, so tests and collectors can
/// drive cores directly.
#[derive(Debug, Default)]
pub struct CounterCore {
    value: AtomicU64,
}

impl CounterCore {
    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        // ordering: stat — monotone report-only counter; no memory is
        // published through it.
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Overwrites the count. For mirroring an external always-on atomic
    /// (the kernel counters) into the registry at collection time; ordinary
    /// producers use [`CounterCore::add`].
    #[inline]
    pub fn store(&self, v: u64) {
        // ordering: stat — collection-time mirror of an always-on counter.
        self.value.store(v, Ordering::Relaxed);
    }

    /// Current count.
    pub fn get(&self) -> u64 {
        // ordering: stat — exposition read; a torn-in-time snapshot only
        // skews the report.
        self.value.load(Ordering::Relaxed)
    }
}

/// Last-write-wins `f64` gauge state (stored as raw bits).
#[derive(Debug, Default)]
pub struct GaugeCore {
    bits: AtomicU64,
}

impl GaugeCore {
    /// Sets the gauge.
    #[inline]
    pub fn set(&self, v: f64) {
        // ordering: stat — last-write-wins gauge bits, report-only.
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value (`0.0` before the first set).
    pub fn get(&self) -> f64 {
        // ordering: stat — exposition read of the gauge bits.
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

/// A sampled trace exemplar attached to a histogram: the distributed-trace
/// identity of the observation that landed in the highest bucket seen so
/// far (ties keep the freshest), so a latency spike in the exposition
/// links straight to the trace that caused it (DESIGN.md §16).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Exemplar {
    /// Bucket index the exemplar observation fell into.
    pub bucket: usize,
    /// 128-bit trace id of the observation's span.
    pub trace_id: u128,
    /// 64-bit span id of the observation's span.
    pub span_id: u64,
}

/// Log-bucketed histogram state on the fixed [`hist`] grid: one atomic slot
/// per bucket plus an atomic `f64` sum (CAS loop — still lock-free). The
/// optional trace exemplar sits behind a mutex, but that path is reached
/// only when `cdcl-telemetry` tracing is enabled *and* a sampled span is
/// open on the observing thread — untraced serving never touches it.
#[derive(Debug)]
pub struct HistogramCore {
    buckets: [AtomicU64; BUCKET_COUNT],
    sum_bits: AtomicU64,
    exemplar: Mutex<Option<Exemplar>>,
}

impl Default for HistogramCore {
    fn default() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum_bits: AtomicU64::new(0f64.to_bits()),
            exemplar: Mutex::new(None),
        }
    }
}

impl HistogramCore {
    /// Records one observation.
    #[inline]
    pub fn observe(&self, v: f64) {
        let idx = hist::bucket_index(v);
        // ordering: stat — bucket slots and the CAS'd sum are report-only
        // aggregates; the loop retries on contention, it never publishes.
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        let mut cur = self.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + v).to_bits();
            // ordering: stat — float-add retry loop on the same sum.
            match self.sum_bits.compare_exchange_weak(
                cur,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(seen) => cur = seen,
            }
        }
        if cdcl_telemetry::enabled() {
            if let Some(c) = cdcl_telemetry::ctx::active() {
                self.record_exemplar(idx, c);
            }
        }
    }

    /// Keeps the exemplar of the worst (highest) bucket observed so far;
    /// within the same bucket the freshest observation wins. Cold: only
    /// reached from traced, sampled observations.
    #[cold]
    fn record_exemplar(&self, bucket: usize, c: cdcl_telemetry::ctx::TraceContext) {
        // Poison-tolerant like the registry locks: the slot is a single
        // `Option` overwrite, so taking over a poisoned mutex is sound.
        let mut slot = match self.exemplar.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        if slot.as_ref().is_none_or(|e| bucket >= e.bucket) {
            *slot = Some(Exemplar {
                bucket,
                trace_id: c.trace_id,
                span_id: c.span_id,
            });
        }
    }

    /// The current max-bucket trace exemplar, if any traced observation
    /// has been recorded.
    pub fn exemplar(&self) -> Option<Exemplar> {
        match self.exemplar.lock() {
            Ok(g) => *g,
            Err(poisoned) => *poisoned.into_inner(),
        }
    }

    /// Non-cumulative per-bucket counts.
    pub fn bucket_counts(&self) -> [u64; BUCKET_COUNT] {
        // ordering: stat — exposition snapshot of the bucket slots.
        std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed))
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.bucket_counts().iter().sum()
    }

    /// Sum of all observations.
    pub fn sum(&self) -> f64 {
        // ordering: stat — exposition read of the accumulated sum.
        f64::from_bits(self.sum_bits.load(Ordering::Relaxed))
    }

    /// Interpolated `q`-quantile (see [`hist::percentile`]).
    pub fn percentile(&self, q: f64) -> f64 {
        hist::percentile(&self.bucket_counts(), q)
    }
}

// ----------------------------------------------------------------------
// Registry
// ----------------------------------------------------------------------

/// The shared state behind one registered metric.
#[derive(Debug, Clone)]
enum Core {
    Counter(Arc<CounterCore>),
    Gauge(Arc<GaugeCore>),
    Histogram(Arc<HistogramCore>),
}

impl Core {
    fn kind(&self) -> &'static str {
        match self {
            Core::Counter(_) => "counter",
            Core::Gauge(_) => "gauge",
            Core::Histogram(_) => "histogram",
        }
    }
}

#[derive(Debug)]
struct Entry {
    name: String,
    /// `Some((key, value))` for one series of a labeled family (per-model
    /// serving metrics); `None` for the ordinary unlabeled metrics.
    label: Option<(String, String)>,
    help: String,
    core: Core,
}

/// One row of [`Registry::sorted`]: `(name, label, help, core)`.
type SortedEntry = (String, Option<(String, String)>, String, Core);

/// The lazily-built `label value -> core` cache behind each metric family.
type FamilyCache<C> = OnceLock<Mutex<Vec<(String, Arc<C>)>>>;

/// Label values are interpolated into Prometheus sample lines and JSON
/// keys; characters that could break either encoding are replaced with
/// `_` at registration time.
fn sanitize_label_value(v: &str) -> String {
    v.chars()
        .map(|c| match c {
            '"' | '\\' | '\n' | '{' | '}' => '_',
            c => c,
        })
        .collect()
}

/// A set of named metrics with deterministic (name-sorted) exposition.
/// Most code uses the process-wide [`global`] registry through static
/// handles; tests build private instances.
#[derive(Debug, Default)]
pub struct Registry {
    entries: Mutex<Vec<Entry>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn register(
        &self,
        name: &str,
        label: Option<(&str, &str)>,
        help: &str,
        make: impl FnOnce() -> Core,
    ) -> Core {
        let label = label.map(|(k, v)| (k.to_string(), sanitize_label_value(v)));
        let mut entries = lock_entries(&self.entries);
        if let Some(e) = entries.iter().find(|e| e.name == name && e.label == label) {
            return e.core.clone();
        }
        let core = make();
        entries.push(Entry {
            name: name.to_string(),
            label,
            help: help.to_string(),
            core: core.clone(),
        });
        core
    }

    /// Registers (or finds) the counter `name`. A name already registered
    /// as a different kind keeps its original kind; the caller gets a
    /// detached core so recording still works, but only the first
    /// registration is exposed — `debug_assert!`ed as a programming bug.
    pub fn counter(&self, name: &str, help: &str) -> Arc<CounterCore> {
        self.counter_entry(name, None, help)
    }

    /// Registers (or finds) one `{label_key="label_value"}` series of the
    /// counter family `name` (per-model serving metrics).
    pub fn labeled_counter(
        &self,
        name: &str,
        help: &str,
        label_key: &str,
        label_value: &str,
    ) -> Arc<CounterCore> {
        self.counter_entry(name, Some((label_key, label_value)), help)
    }

    fn counter_entry(
        &self,
        name: &str,
        label: Option<(&str, &str)>,
        help: &str,
    ) -> Arc<CounterCore> {
        match self.register(name, label, help, || Core::Counter(Arc::default())) {
            Core::Counter(c) => c,
            other => {
                debug_assert!(
                    false,
                    "metric `{name}` already registered as {}",
                    other.kind()
                );
                Arc::default()
            }
        }
    }

    /// Registers (or finds) the gauge `name`.
    pub fn gauge(&self, name: &str, help: &str) -> Arc<GaugeCore> {
        self.gauge_entry(name, None, help)
    }

    /// Registers (or finds) one labeled series of the gauge family `name`.
    pub fn labeled_gauge(
        &self,
        name: &str,
        help: &str,
        label_key: &str,
        label_value: &str,
    ) -> Arc<GaugeCore> {
        self.gauge_entry(name, Some((label_key, label_value)), help)
    }

    fn gauge_entry(&self, name: &str, label: Option<(&str, &str)>, help: &str) -> Arc<GaugeCore> {
        match self.register(name, label, help, || Core::Gauge(Arc::default())) {
            Core::Gauge(g) => g,
            other => {
                debug_assert!(
                    false,
                    "metric `{name}` already registered as {}",
                    other.kind()
                );
                Arc::default()
            }
        }
    }

    /// Registers (or finds) the histogram `name`.
    pub fn histogram(&self, name: &str, help: &str) -> Arc<HistogramCore> {
        self.histogram_entry(name, None, help)
    }

    /// Registers (or finds) one labeled series of the histogram family
    /// `name`.
    pub fn labeled_histogram(
        &self,
        name: &str,
        help: &str,
        label_key: &str,
        label_value: &str,
    ) -> Arc<HistogramCore> {
        self.histogram_entry(name, Some((label_key, label_value)), help)
    }

    fn histogram_entry(
        &self,
        name: &str,
        label: Option<(&str, &str)>,
        help: &str,
    ) -> Arc<HistogramCore> {
        match self.register(name, label, help, || Core::Histogram(Arc::default())) {
            Core::Histogram(h) => h,
            other => {
                debug_assert!(
                    false,
                    "metric `{name}` already registered as {}",
                    other.kind()
                );
                Arc::default()
            }
        }
    }

    /// Snapshots the entries sorted by name, then label value (exposition
    /// is deterministic regardless of registration order; all series of a
    /// labeled family are contiguous).
    fn sorted(&self) -> Vec<SortedEntry> {
        let entries = lock_entries(&self.entries);
        let mut v: Vec<SortedEntry> = entries
            .iter()
            .map(|e| {
                (
                    e.name.clone(),
                    e.label.clone(),
                    e.help.clone(),
                    e.core.clone(),
                )
            })
            .collect();
        v.sort_by(|a, b| a.0.cmp(&b.0).then_with(|| a.1.cmp(&b.1)));
        v
    }

    /// Prometheus text exposition (format v0.0.4). Histograms render
    /// cumulative `_bucket{le=...}` lines, `_sum`/`_count`, plus derived
    /// `_p50`/`_p90`/`_p99` gauges from bucket interpolation. Labeled
    /// families share one `# HELP`/`# TYPE` block; each series carries its
    /// `{key="value"}` pair on every sample line.
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        let mut prev_name: Option<String> = None;
        for (name, label, help, core) in self.sorted() {
            let first_of_name = prev_name.as_deref() != Some(name.as_str());
            if first_of_name {
                out.push_str(&format!("# HELP {name} {help}\n"));
                out.push_str(&format!("# TYPE {name} {}\n", core.kind()));
            }
            let suffix = match &label {
                Some((k, v)) => format!("{{{k}=\"{v}\"}}"),
                None => String::new(),
            };
            match core {
                Core::Counter(c) => out.push_str(&format!("{name}{suffix} {}\n", c.get())),
                Core::Gauge(g) => out.push_str(&format!("{name}{suffix} {}\n", fmt_f64(g.get()))),
                Core::Histogram(h) => {
                    let counts = h.bucket_counts();
                    let mut cum = 0u64;
                    for (i, &c) in counts.iter().enumerate() {
                        cum += c;
                        let le = if i < hist::BUCKET_BOUNDS.len() {
                            hist::format_bound(hist::BUCKET_BOUNDS[i])
                        } else {
                            "+Inf".to_string()
                        };
                        let le_labels = match &label {
                            Some((k, v)) => format!("{{{k}=\"{v}\",le=\"{le}\"}}"),
                            None => format!("{{le=\"{le}\"}}"),
                        };
                        out.push_str(&format!("{name}_bucket{le_labels} {cum}\n"));
                    }
                    out.push_str(&format!("{name}_sum{suffix} {}\n", fmt_f64(h.sum())));
                    out.push_str(&format!("{name}_count{suffix} {cum}\n"));
                    for (psuffix, q) in [("p50", 0.50), ("p90", 0.90), ("p99", 0.99)] {
                        let v = hist::percentile(&counts, q);
                        if first_of_name {
                            out.push_str(&format!("# TYPE {name}_{psuffix} gauge\n"));
                        }
                        out.push_str(&format!("{name}_{psuffix}{suffix} {}\n", fmt_f64(v)));
                    }
                }
            }
            prev_name = Some(name);
        }
        out
    }

    /// One-line JSON exposition: `{"counters":{...},"gauges":{...},
    /// "histograms":{name:{count,sum,p50,p90,p99,buckets:[[le,n],...]}}}`
    /// with only non-empty buckets listed (non-cumulative counts). A
    /// labeled series keys as `name{key="value"}` (quotes escaped).
    pub fn render_json(&self) -> String {
        let mut counters = String::new();
        let mut gauges = String::new();
        let mut hists = String::new();
        for (base, label, _, core) in self.sorted() {
            let name = match &label {
                Some((k, v)) => format!("{base}{{{k}=\\\"{v}\\\"}}"),
                None => base,
            };
            match core {
                Core::Counter(c) => {
                    push_sep(&mut counters);
                    counters.push_str(&format!("\"{name}\":{}", c.get()));
                }
                Core::Gauge(g) => {
                    push_sep(&mut gauges);
                    gauges.push_str(&format!("\"{name}\":{}", fmt_f64_json(g.get())));
                }
                Core::Histogram(h) => {
                    push_sep(&mut hists);
                    let counts = h.bucket_counts();
                    let buckets: Vec<String> = counts
                        .iter()
                        .enumerate()
                        .filter(|&(_, &c)| c > 0)
                        .map(|(i, &c)| {
                            let le = if i < hist::BUCKET_BOUNDS.len() {
                                hist::format_bound(hist::BUCKET_BOUNDS[i])
                            } else {
                                "\"+Inf\"".to_string()
                            };
                            format!("[{le},{c}]")
                        })
                        .collect();
                    // The exemplar field appears only when a traced,
                    // sampled observation recorded one — untraced runs
                    // keep the exposition byte-identical to pre-tracing.
                    let exemplar = match h.exemplar() {
                        Some(e) => {
                            let le = if e.bucket < hist::BUCKET_BOUNDS.len() {
                                hist::format_bound(hist::BUCKET_BOUNDS[e.bucket])
                            } else {
                                "\"+Inf\"".to_string()
                            };
                            format!(
                                ",\"exemplar\":{{\"trace\":\"{:032x}\",\"span\":\"{:016x}\",\"le\":{le}}}",
                                e.trace_id, e.span_id
                            )
                        }
                        None => String::new(),
                    };
                    hists.push_str(&format!(
                        "\"{name}\":{{\"count\":{},\"sum\":{},\"p50\":{},\"p90\":{},\"p99\":{},\"buckets\":[{}]{exemplar}}}",
                        h.count(),
                        fmt_f64_json(h.sum()),
                        fmt_f64_json(h.percentile(0.50)),
                        fmt_f64_json(h.percentile(0.90)),
                        fmt_f64_json(h.percentile(0.99)),
                        buckets.join(",")
                    ));
                }
            }
        }
        format!(
            "{{\"counters\":{{{counters}}},\"gauges\":{{{gauges}}},\"histograms\":{{{hists}}}}}"
        )
    }
}

fn push_sep(buf: &mut String) {
    if !buf.is_empty() {
        buf.push(',');
    }
}

/// Prometheus float formatting: integral values without a decimal point.
fn fmt_f64(v: f64) -> String {
    hist::format_bound(v)
}

/// JSON float formatting: JSON has no NaN/Inf, so non-finite values render
/// as strings (the `cdcl-telemetry` convention).
fn fmt_f64_json(v: f64) -> String {
    if v.is_finite() {
        hist::format_bound(v)
    } else if v.is_nan() {
        "\"NaN\"".to_string()
    } else if v > 0.0 {
        "\"inf\"".to_string()
    } else {
        "\"-inf\"".to_string()
    }
}

/// The process-wide registry every static handle registers into.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

// ----------------------------------------------------------------------
// Static handles
// ----------------------------------------------------------------------

/// A `const`-constructible counter handle. Declare as a `static`; the
/// metric registers into [`global`] on first use. Recording is gated on
/// [`enabled`] (one relaxed load when off).
pub struct Counter {
    name: &'static str,
    help: &'static str,
    core: OnceLock<Arc<CounterCore>>,
}

impl Counter {
    /// Declares a counter (name discipline: `cdcl_*_total`, snake_case).
    pub const fn new(name: &'static str, help: &'static str) -> Self {
        Self {
            name,
            help,
            core: OnceLock::new(),
        }
    }

    fn core(&self) -> &Arc<CounterCore> {
        self.core
            .get_or_init(|| global().counter(self.name, self.help))
    }

    /// Adds `n` (no-op when the layer is disabled).
    #[inline]
    pub fn add(&self, n: u64) {
        if enabled() {
            self.core().add(n);
        }
    }

    /// Adds 1.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Mirrors an externally maintained monotone value (see
    /// [`CounterCore::store`]).
    #[inline]
    pub fn store(&self, v: u64) {
        if enabled() {
            self.core().store(v);
        }
    }

    /// Current count (registers the metric if needed; reads even when
    /// disabled).
    pub fn get(&self) -> u64 {
        self.core().get()
    }
}

/// A `const`-constructible gauge handle (see [`Counter`] for the
/// registration contract).
pub struct Gauge {
    name: &'static str,
    help: &'static str,
    core: OnceLock<Arc<GaugeCore>>,
}

impl Gauge {
    /// Declares a gauge.
    pub const fn new(name: &'static str, help: &'static str) -> Self {
        Self {
            name,
            help,
            core: OnceLock::new(),
        }
    }

    fn core(&self) -> &Arc<GaugeCore> {
        self.core
            .get_or_init(|| global().gauge(self.name, self.help))
    }

    /// Sets the gauge (no-op when the layer is disabled).
    #[inline]
    pub fn set(&self, v: f64) {
        if enabled() {
            self.core().set(v);
        }
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        self.core().get()
    }
}

/// A `const`-constructible histogram handle on the fixed [`hist`] grid.
pub struct Histogram {
    name: &'static str,
    help: &'static str,
    core: OnceLock<Arc<HistogramCore>>,
}

impl Histogram {
    /// Declares a histogram.
    pub const fn new(name: &'static str, help: &'static str) -> Self {
        Self {
            name,
            help,
            core: OnceLock::new(),
        }
    }

    fn core(&self) -> &Arc<HistogramCore> {
        self.core
            .get_or_init(|| global().histogram(self.name, self.help))
    }

    /// Records one observation (no-op when the layer is disabled).
    #[inline]
    pub fn observe(&self, v: f64) {
        if enabled() {
            self.core().observe(v);
        }
    }

    /// Starts a timer whose drop records the elapsed time **in
    /// microseconds**. When the layer is disabled the clock is never read.
    #[inline]
    pub fn time(&self) -> HistTimer<'_> {
        HistTimer {
            start: enabled().then(Instant::now),
            hist: self,
        }
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.core().count()
    }

    /// Sum of all observations.
    pub fn sum(&self) -> f64 {
        self.core().sum()
    }

    /// Interpolated `q`-quantile.
    pub fn percentile(&self, q: f64) -> f64 {
        self.core().percentile(q)
    }
}

/// Scoped timer from [`Histogram::time`]: records µs on drop.
pub struct HistTimer<'a> {
    start: Option<Instant>,
    hist: &'a Histogram,
}

impl Drop for HistTimer<'_> {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            self.hist
                .core()
                .observe(start.elapsed().as_secs_f64() * 1e6);
        }
    }
}

// ----------------------------------------------------------------------
// Labeled families
// ----------------------------------------------------------------------

/// Poison-tolerant family-cache lock (same reasoning as the registry).
fn lock_family<T>(m: &Mutex<Vec<(String, T)>>) -> MutexGuard<'_, Vec<(String, T)>> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// A `const`-constructible **family** of counters sharing one name and one
/// label key, fanned out by label value — the per-model serving series
/// (`cdcl_serve_model_requests_total{model="…"}`). [`CounterFamily::with`]
/// resolves a value to its [`CounterCore`]; callers cache the `Arc` (one
/// resolution per model slot), so record sites stay lock-free. Cores record
/// unconditionally — holders that need the disabled-layer fast path gate on
/// [`enabled`] themselves (the servers that use families always enable the
/// layer at startup).
pub struct CounterFamily {
    name: &'static str,
    help: &'static str,
    label: &'static str,
    cores: FamilyCache<CounterCore>,
}

impl CounterFamily {
    /// Declares a counter family (name discipline as [`Counter::new`];
    /// `label` is the label *key*, e.g. `"model"`).
    pub const fn new(name: &'static str, help: &'static str, label: &'static str) -> Self {
        Self {
            name,
            help,
            label,
            cores: OnceLock::new(),
        }
    }

    /// The series for `value`, registering it on first use.
    pub fn with(&self, value: &str) -> Arc<CounterCore> {
        let cache = self.cores.get_or_init(|| Mutex::new(Vec::new()));
        let mut cache = lock_family(cache);
        if let Some((_, core)) = cache.iter().find(|(v, _)| v == value) {
            return core.clone();
        }
        let core = global().labeled_counter(self.name, self.help, self.label, value);
        cache.push((value.to_string(), core.clone()));
        core
    }
}

/// A `const`-constructible family of gauges (see [`CounterFamily`]).
pub struct GaugeFamily {
    name: &'static str,
    help: &'static str,
    label: &'static str,
    cores: FamilyCache<GaugeCore>,
}

impl GaugeFamily {
    /// Declares a gauge family.
    pub const fn new(name: &'static str, help: &'static str, label: &'static str) -> Self {
        Self {
            name,
            help,
            label,
            cores: OnceLock::new(),
        }
    }

    /// The series for `value`, registering it on first use.
    pub fn with(&self, value: &str) -> Arc<GaugeCore> {
        let cache = self.cores.get_or_init(|| Mutex::new(Vec::new()));
        let mut cache = lock_family(cache);
        if let Some((_, core)) = cache.iter().find(|(v, _)| v == value) {
            return core.clone();
        }
        let core = global().labeled_gauge(self.name, self.help, self.label, value);
        cache.push((value.to_string(), core.clone()));
        core
    }
}

/// A `const`-constructible family of histograms (see [`CounterFamily`]).
pub struct HistogramFamily {
    name: &'static str,
    help: &'static str,
    label: &'static str,
    cores: FamilyCache<HistogramCore>,
}

impl HistogramFamily {
    /// Declares a histogram family.
    pub const fn new(name: &'static str, help: &'static str, label: &'static str) -> Self {
        Self {
            name,
            help,
            label,
            cores: OnceLock::new(),
        }
    }

    /// The series for `value`, registering it on first use.
    pub fn with(&self, value: &str) -> Arc<HistogramCore> {
        let cache = self.cores.get_or_init(|| Mutex::new(Vec::new()));
        let mut cache = lock_family(cache);
        if let Some((_, core)) = cache.iter().find(|(v, _)| v == value) {
            return core.clone();
        }
        let core = global().labeled_histogram(self.name, self.help, self.label, value);
        cache.push((value.to_string(), core.clone()));
        core
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex as StdMutex;

    /// `ENABLED` is process-global; tests that toggle it must not overlap.
    static TEST_GUARD: StdMutex<()> = StdMutex::new(());

    fn guard() -> std::sync::MutexGuard<'static, ()> {
        match TEST_GUARD.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    #[test]
    fn disabled_handles_record_nothing() {
        let _g = guard();
        set_enabled(false);
        static C: Counter = Counter::new("cdcl_test_disabled_total", "x");
        static H: Histogram = Histogram::new("cdcl_test_disabled_us", "x");
        C.inc();
        H.observe(5.0);
        drop(H.time());
        assert_eq!(C.get(), 0);
        assert_eq!(H.count(), 0);
    }

    #[test]
    fn enabled_handles_register_globally_and_record() {
        let _g = guard();
        set_enabled(true);
        static C: Counter = Counter::new("cdcl_test_enabled_total", "x");
        static G: Gauge = Gauge::new("cdcl_test_enabled_gauge", "x");
        C.add(3);
        G.set(1.5);
        set_enabled(false);
        assert_eq!(C.get(), 3);
        assert_eq!(G.get(), 1.5);
        let text = global().render_prometheus();
        assert!(text.contains("cdcl_test_enabled_total 3"));
        assert!(text.contains("cdcl_test_enabled_gauge 1.5"));
    }

    #[test]
    fn duplicate_registration_returns_the_same_core() {
        let r = Registry::new();
        let a = r.counter("dup_total", "first");
        let b = r.counter("dup_total", "second help ignored");
        a.add(2);
        b.add(3);
        assert_eq!(a.get(), 5);
        assert!(r.render_prometheus().contains("# HELP dup_total first\n"));
    }

    #[test]
    fn golden_prometheus_exposition() {
        let r = Registry::new();
        let c = r.counter("cdcl_golden_requests_total", "Requests answered");
        let g = r.gauge("cdcl_golden_loss", "Last loss");
        let h = r.histogram("cdcl_golden_latency_us", "Batch latency");
        c.add(42);
        g.set(0.5);
        h.observe(1.0); // bucket le="1"
        h.observe(3.0); // bucket le="5"
        h.observe(3.0);
        h.observe(2e9); // overflow

        let text = r.render_prometheus();
        let expected_head = "\
# HELP cdcl_golden_latency_us Batch latency
# TYPE cdcl_golden_latency_us histogram
cdcl_golden_latency_us_bucket{le=\"1\"} 1
cdcl_golden_latency_us_bucket{le=\"2\"} 1
cdcl_golden_latency_us_bucket{le=\"5\"} 3
cdcl_golden_latency_us_bucket{le=\"10\"} 3
";
        assert!(
            text.starts_with(expected_head),
            "exposition head mismatch:\n{text}"
        );
        // Cumulative counts reach the overflow bucket.
        assert!(text.contains("cdcl_golden_latency_us_bucket{le=\"1000000000\"} 3\n"));
        assert!(text.contains("cdcl_golden_latency_us_bucket{le=\"+Inf\"} 4\n"));
        assert!(text.contains("cdcl_golden_latency_us_sum 2000000007\n"));
        assert!(text.contains("cdcl_golden_latency_us_count 4\n"));
        // Derived quantile gauges are typed and present.
        assert!(text.contains("# TYPE cdcl_golden_latency_us_p50 gauge\n"));
        assert!(text.contains("cdcl_golden_latency_us_p99 "));
        // Name-sorted: the counter and gauge follow the histogram block.
        let pos_c = text.find("# HELP cdcl_golden_loss").unwrap();
        let pos_r = text.find("# HELP cdcl_golden_requests_total").unwrap();
        assert!(pos_c < pos_r);
        assert!(text.contains(
            "# TYPE cdcl_golden_requests_total counter\ncdcl_golden_requests_total 42\n"
        ));
        assert!(text.contains("# TYPE cdcl_golden_loss gauge\ncdcl_golden_loss 0.5\n"));
    }

    #[test]
    fn golden_json_exposition() {
        let r = Registry::new();
        r.counter("cdcl_j_total", "c").add(7);
        r.gauge("cdcl_j_gauge", "g").set(2.5);
        let h = r.histogram("cdcl_j_us", "h");
        h.observe(3.0);
        h.observe(3.0);
        let json = r.render_json();
        assert_eq!(
            json,
            "{\"counters\":{\"cdcl_j_total\":7},\"gauges\":{\"cdcl_j_gauge\":2.5},\
             \"histograms\":{\"cdcl_j_us\":{\"count\":2,\"sum\":6,\"p50\":3.5,\"p90\":4.7,\
             \"p99\":4.97,\"buckets\":[[5,2]]}}}"
                .replace("             ", "")
        );
    }

    #[test]
    fn histogram_exemplar_keeps_the_max_bucket_trace() {
        let _g = guard();
        let path =
            std::env::temp_dir().join(format!("cdcl-obs-exemplar-{}.jsonl", std::process::id()));
        cdcl_telemetry::set_trace_file(Some(&path));
        let r = Registry::new();
        let h = r.histogram("cdcl_x_us", "h");
        // Untraced observation (no span open on this thread): no exemplar,
        // even with the sink installed.
        h.observe(1.0);
        assert_eq!(h.exemplar(), None);
        let attach = |trace_id: u128, span_id: u64| {
            cdcl_telemetry::ctx::attach(cdcl_telemetry::ctx::TraceContext { trace_id, span_id })
        };
        {
            let _a = attach(0xaaa, 1);
            h.observe(2.0);
        }
        {
            let _a = attach(0xbbb, 2);
            h.observe(500.0);
        }
        {
            // A later observation in a *lower* bucket must not displace
            // the max-bucket exemplar.
            let _a = attach(0xccc, 3);
            h.observe(3.0);
        }
        cdcl_telemetry::set_trace_file(None);
        std::fs::remove_file(&path).ok();
        let e = h
            .exemplar()
            .expect("traced observations record an exemplar");
        assert_eq!(e.trace_id, 0xbbb);
        assert_eq!(e.span_id, 2);
        let json = r.render_json();
        assert!(
            json.contains(
                "\"exemplar\":{\"trace\":\"00000000000000000000000000000bbb\",\
                 \"span\":\"0000000000000002\",\"le\":500}"
            ),
            "json exposition lacks the exemplar: {json}"
        );
        // With tracing back off, fresh histograms render without the field
        // (the golden expositions above depend on this).
        h.observe(900.0);
        assert_eq!(h.exemplar().expect("kept").trace_id, 0xbbb);
    }

    #[test]
    fn histogram_count_equals_bucket_sum_and_sum_accumulates() {
        let h = HistogramCore::default();
        for i in 0..100 {
            h.observe(i as f64);
        }
        let counts = h.bucket_counts();
        assert_eq!(counts.iter().sum::<u64>(), h.count());
        assert_eq!(h.count(), 100);
        assert_eq!(h.sum(), (0..100).sum::<i32>() as f64);
    }

    #[test]
    fn non_finite_json_values_render_as_strings() {
        assert_eq!(fmt_f64_json(f64::NAN), "\"NaN\"");
        assert_eq!(fmt_f64_json(f64::INFINITY), "\"inf\"");
        assert_eq!(fmt_f64_json(f64::NEG_INFINITY), "\"-inf\"");
        assert_eq!(fmt_f64_json(2.0), "2");
    }

    #[test]
    fn labeled_series_share_one_help_type_block() {
        let r = Registry::new();
        r.labeled_counter(
            "cdcl_lab_requests_total",
            "Per-model requests",
            "model",
            "beta",
        )
        .add(2);
        r.labeled_counter(
            "cdcl_lab_requests_total",
            "Per-model requests",
            "model",
            "alpha",
        )
        .add(5);
        let text = r.render_prometheus();
        assert_eq!(
            text,
            "# HELP cdcl_lab_requests_total Per-model requests\n\
             # TYPE cdcl_lab_requests_total counter\n\
             cdcl_lab_requests_total{model=\"alpha\"} 5\n\
             cdcl_lab_requests_total{model=\"beta\"} 2\n"
        );
    }

    #[test]
    fn labeled_histogram_merges_label_with_le_and_keys_json() {
        let r = Registry::new();
        let h = r.labeled_histogram("cdcl_lab_lat_us", "lat", "model", "m1");
        h.observe(3.0);
        let text = r.render_prometheus();
        assert!(text.contains("cdcl_lab_lat_us_bucket{model=\"m1\",le=\"5\"} 1\n"));
        assert!(text.contains("cdcl_lab_lat_us_sum{model=\"m1\"} 3\n"));
        assert!(text.contains("cdcl_lab_lat_us_count{model=\"m1\"} 1\n"));
        assert!(text.contains("cdcl_lab_lat_us_p50{model=\"m1\"} "));
        let json = r.render_json();
        assert!(
            json.contains("\"cdcl_lab_lat_us{model=\\\"m1\\\"}\":{\"count\":1"),
            "labeled JSON key missing: {json}"
        );
    }

    #[test]
    fn labeled_and_unlabeled_same_name_stay_distinct() {
        let r = Registry::new();
        let plain = r.counter("cdcl_lab_mixed_total", "c");
        let labeled = r.labeled_counter("cdcl_lab_mixed_total", "c", "model", "x");
        plain.add(1);
        labeled.add(10);
        let text = r.render_prometheus();
        assert!(text.contains("cdcl_lab_mixed_total 1\n"));
        assert!(text.contains("cdcl_lab_mixed_total{model=\"x\"} 10\n"));
    }

    #[test]
    fn family_handles_cache_per_value_cores() {
        let _g = guard();
        static FAM: CounterFamily =
            CounterFamily::new("cdcl_test_family_total", "per-model", "model");
        let a = FAM.with("m0");
        let b = FAM.with("m0");
        let c = FAM.with("m1");
        a.add(2);
        b.add(3);
        c.add(7);
        assert_eq!(FAM.with("m0").get(), 5, "same value resolves one core");
        assert_eq!(FAM.with("m1").get(), 7);
    }

    #[test]
    fn hostile_label_values_are_sanitized() {
        let r = Registry::new();
        r.labeled_counter("cdcl_lab_esc_total", "c", "model", "a\"b\\c\nd{e}")
            .add(1);
        let text = r.render_prometheus();
        assert!(
            text.contains("cdcl_lab_esc_total{model=\"a_b_c_d_e_\"} 1\n"),
            "unsanitized label leaked: {text}"
        );
    }
}
