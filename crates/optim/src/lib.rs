//! Optimizers and learning-rate schedules for the CDCL reproduction.
//!
//! The paper trains with AdamW and a warm-up + cosine-annealing learning
//! rate: "CDCL uses AdamW optimizer with a warm-up learning-rate λ = 1e-5, a
//! cosine annealing learning-rate starting at λ = 5e-5 and a minimum
//! learning-rate of λ = 1e-6" (§V-B). [`WarmupCosine`] reproduces exactly
//! that curve; [`AdamW`] implements decoupled weight decay (Loshchilov &
//! Hutter). SGD and Adam are provided for the baselines.

mod optimizer;
mod schedule;

pub use optimizer::{Adam, AdamW, Optimizer, Sgd};
pub use schedule::{ConstantLr, LrSchedule, WarmupCosine};
