//! Synthetic cross-domain continual-learning benchmarks.
//!
//! The paper evaluates on five image UDA suites (MNIST↔USPS, VisDA-2017,
//! Office-31, Office-Home, DomainNet). Those datasets are not available in
//! this environment, so this crate provides *domain-pair generators* that
//! reproduce the **structure** the algorithms interact with (DESIGN.md §2):
//!
//! * Each benchmark owns a set of latent class prototypes. Every *domain*
//!   (source or target) is a fixed random rendering of those latents into a
//!   pixel grid — a linear mixing followed by a per-domain nonlinearity,
//!   contrast, brightness, and noise.
//! * The source and target renderings share a common component whose weight
//!   shrinks with the configured `domain_gap`: near pairs (MNIST↔USPS,
//!   DSLR↔Webcam analogues) keep most of the structure, far pairs
//!   (Amazon→DSLR, quickdraw) keep little. This is what makes unsupervised
//!   adaptation *possible but not free*, the property every experiment
//!   shape depends on.
//! * Classes are split into disjoint sequential tasks exactly as in the
//!   paper (10→5×2, 12→4×3, 30→5×6, 65→13×5, 345→15×23), which produces the
//!   paper's task drift; the source/target rendering difference produces
//!   its domain drift (§III).
//!
//! Labels of target-domain samples are carried in the [`Sample`] struct but
//! are only for *evaluation* — learners must never read them during
//! training (the trainers in `cdcl-core`/`cdcl-baselines` don't).

mod batch;
mod benchmarks;
mod generator;

pub use batch::{stack, Batcher};
pub use benchmarks::{
    domain_net, mnist_usps, office31, office_home, visda, DomainNetDomain, MnistUspsDirection,
    Office31Domain, OfficeHomeDomain, Scale,
};
pub use generator::{CrossDomainStream, DomainPairConfig, Sample, TaskData};
