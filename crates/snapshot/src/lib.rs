//! `cdcl-snapshot`: the versioned, checksummed binary persistence layer
//! (DESIGN.md §10).
//!
//! A snapshot file is `magic + format version + section table + payloads`:
//! every section carries a CRC-32 and the header that names the sections is
//! itself CRC-protected, so a truncated or bit-flipped file is rejected
//! *before* any state is interpreted. The contract for readers:
//!
//! * **Typed failures, never panics.** Every decoding path returns
//!   [`SnapshotError`]; the `cdcl-lint` no-panic rule applies to this crate
//!   with no allowlisted exceptions.
//! * **All-or-nothing.** [`format::Snapshot::parse`] validates every
//!   checksum and bound up front; callers only see fully-verified section
//!   payloads, so a corrupt file can never half-restore a model.
//! * **Versioned.** [`format::FORMAT_VERSION`] gates compatibility: readers
//!   reject newer (or unknown older) versions with
//!   [`SnapshotError::UnsupportedVersion`] instead of misinterpreting bytes.
//! * **Atomic writes.** All file writes go through
//!   [`atomic::atomic_write`] (write temp + fsync + rename), enforced by the
//!   `atomic-write` lint rule, so a crash mid-checkpoint leaves the previous
//!   snapshot intact.
//!
//! The crate is deliberately low-level and zero-dependency (only
//! `cdcl-tensor` for the tensor payloads): section *contents* — which model
//! fields go where — are owned by `cdcl-core`, keeping the dependency graph
//! acyclic (`tensor → … → core → snapshot` would be a cycle; instead
//! `snapshot` sits next to `tensor` and `core` depends on it).

pub mod atomic;
pub mod crc;
pub mod format;
pub mod wire;

use std::fmt;

pub use atomic::atomic_write;
pub use format::{Snapshot, SnapshotBuilder, FORMAT_VERSION, MAGIC};
pub use wire::{Reader, Writer};

/// Everything that can go wrong loading (or writing) a snapshot. Loading is
/// paranoid by design: any inconsistency maps to a variant here — never a
/// panic and never a partially-applied state.
#[derive(Debug)]
pub enum SnapshotError {
    /// Underlying filesystem failure.
    Io(std::io::Error),
    /// The file ends before a required structure: `needed` bytes wanted,
    /// `have` remained.
    Truncated { needed: usize, have: usize },
    /// The first 8 bytes are not [`MAGIC`] — not a snapshot file.
    BadMagic,
    /// The format version is not one this reader understands.
    UnsupportedVersion { found: u32, supported: u32 },
    /// The header (magic/version/section table) failed its CRC.
    HeaderCorrupt,
    /// A section payload failed its CRC.
    SectionCorrupt { tag: String },
    /// A section required by the loader is absent.
    MissingSection { tag: String },
    /// Bytes after the last section — the file is not exactly the header
    /// plus its declared payloads.
    TrailingData { extra: usize },
    /// Structurally valid container, semantically invalid contents (bad
    /// lengths, out-of-range ids, shape mismatches, …).
    Malformed(String),
    /// `resume_latest` found several checkpoints sharing the newest task
    /// cursor. Resuming any of them would make the choice depend on file
    /// naming (historically: directory iteration order), so the caller
    /// must pick one explicitly with `resume_from`. `candidates` holds the
    /// tied paths in sorted order.
    AmbiguousLatest {
        cursor: usize,
        candidates: Vec<String>,
    },
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Io(e) => write!(f, "snapshot io error: {e}"),
            Self::Truncated { needed, have } => {
                write!(f, "snapshot truncated: needed {needed} bytes, have {have}")
            }
            Self::BadMagic => write!(f, "not a snapshot file (bad magic)"),
            Self::UnsupportedVersion { found, supported } => write!(
                f,
                "unsupported snapshot format version {found} (this reader supports {supported})"
            ),
            Self::HeaderCorrupt => write!(f, "snapshot header failed its CRC-32 check"),
            Self::SectionCorrupt { tag } => {
                write!(f, "snapshot section `{tag}` failed its CRC-32 check")
            }
            Self::MissingSection { tag } => write!(f, "snapshot section `{tag}` is missing"),
            Self::TrailingData { extra } => {
                write!(
                    f,
                    "snapshot has {extra} trailing bytes after the last section"
                )
            }
            Self::Malformed(msg) => write!(f, "malformed snapshot: {msg}"),
            Self::AmbiguousLatest { cursor, candidates } => write!(
                f,
                "ambiguous latest checkpoint: {} files share task cursor {cursor} ({}); \
                 resume one explicitly with resume_from",
                candidates.len(),
                candidates.join(", ")
            ),
        }
    }
}

impl std::error::Error for SnapshotError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for SnapshotError {
    fn from(e: std::io::Error) -> Self {
        Self::Io(e)
    }
}
