//! Lock-acquisition hook for the runtime lock-order witness
//! (DESIGN.md §14).
//!
//! `cdcl-obs` is the workspace's leaf crate — everything above it (the
//! tensor pool, the serve registry) can call in without a dependency
//! cycle, so the *hook point* lives here while the recorder and the
//! static-graph validation live in `cdcl-check::witness`.
//!
//! Cost when no hook is installed (every production run): one
//! `OnceLock::get` — a single acquire load — per lock acquisition, and a
//! boolean test per guard drop. Tests install a recorder with
//! [`install`]; the hook is process-global and permanent once set, which
//! is exactly what a test-run-wide witness wants.

use std::ops::{Deref, DerefMut};
use std::sync::OnceLock;

/// What happened to a witnessed lock.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockEvent {
    Acquired,
    Released,
}

/// The hook signature: event plus the lock's canonical label — the same
/// `&'static str` the static lock-order pass reads from the call site.
pub type LockHook = fn(LockEvent, &'static str);

static HOOK: OnceLock<LockHook> = OnceLock::new();

/// Installs the process-global hook. Returns `false` if one was already
/// installed (the existing hook stays; installing the same recorder twice
/// is the common, harmless case across tests in one binary).
pub fn install(hook: LockHook) -> bool {
    HOOK.set(hook).is_ok()
}

fn emit(ev: LockEvent, name: &'static str) {
    if let Some(hook) = HOOK.get() {
        hook(ev, name);
    }
}

/// An RAII wrapper that reports `Acquired` when constructed through
/// [`witness_acquired`] and `Released` when dropped, while deref-ing
/// straight to the underlying guard's target so call sites read exactly
/// like the bare guard (`*write_lock(&slot, "x") = next` still compiles).
pub struct Witnessed<G> {
    guard: G,
    name: &'static str,
    /// Snapshot of "was a hook installed at acquisition" so the release
    /// event fires iff the acquire event did.
    hooked: bool,
}

/// Wraps an already-acquired guard, emitting the `Acquired` event.
pub fn witness_acquired<G>(guard: G, name: &'static str) -> Witnessed<G> {
    let hooked = HOOK.get().is_some();
    if hooked {
        emit(LockEvent::Acquired, name);
    }
    Witnessed {
        guard,
        name,
        hooked,
    }
}

impl<G> Drop for Witnessed<G> {
    fn drop(&mut self) {
        if self.hooked {
            emit(LockEvent::Released, self.name);
        }
    }
}

impl<G: Deref> Deref for Witnessed<G> {
    type Target = G::Target;
    fn deref(&self) -> &Self::Target {
        &self.guard
    }
}

impl<G: DerefMut> DerefMut for Witnessed<G> {
    fn deref_mut(&mut self) -> &mut Self::Target {
        &mut self.guard
    }
}
