//! Regenerates **Table II**: TIL and CIL average accuracy on the
//! Office-Home analogue's 12 transfer pairs.
//!
//! Office-Home is the heaviest per-pair suite (13 tasks × 12 pairs), so by
//! default a representative 4-pair subset runs; pass `--full` for all 12
//! pairs as in the paper.
//!
//! ```text
//! cargo run --release -p cdcl-bench --bin table2 -- --scale standard --full
//! ```

use cdcl_bench::{
    maybe_write_json, run_method, run_upper_bound, ExperimentConfig, Method, ResultCell,
};
use cdcl_data::{office_home, OfficeHomeDomain};
use cdcl_metrics::{format_table, TableRow};

fn main() {
    let cfg = ExperimentConfig::from_args();
    let all_pairs: Vec<(OfficeHomeDomain, OfficeHomeDomain)> = OfficeHomeDomain::ALL
        .iter()
        .flat_map(|&s| {
            OfficeHomeDomain::ALL
                .iter()
                .filter(move |&&t| t != s)
                .map(move |&t| (s, t))
        })
        .collect();
    let pairs: Vec<(OfficeHomeDomain, OfficeHomeDomain)> = if cfg.full {
        all_pairs
    } else {
        use OfficeHomeDomain::*;
        vec![
            (Art, Clipart),
            (Clipart, Product),
            (Product, RealWorld),
            (RealWorld, Art),
        ]
    };

    let mut columns = Vec::new();
    let mut streams = Vec::new();
    for (s, t) in &pairs {
        columns.push(format!("{}->{}", s.label(), t.label()));
        streams.push(office_home(*s, *t, cfg.scale));
    }
    let column_refs: Vec<&str> = columns.iter().map(String::as_str).collect();

    let mut cells: Vec<ResultCell> = Vec::new();
    let mut til_rows = Vec::new();
    let mut cil_rows = Vec::new();
    let mut ours_til_fgt = Vec::new();
    let mut ours_cil_fgt = Vec::new();
    for method in &cfg.methods {
        let mut til = Vec::new();
        let mut cil = Vec::new();
        for stream in &streams {
            let r = run_method(*method, stream, &cfg);
            til.push(r.til_acc_pct());
            cil.push(r.cil_acc_pct());
            if *method == Method::Cdcl {
                ours_til_fgt.push(r.til_fgt_pct());
                ours_cil_fgt.push(r.cil_fgt_pct());
            }
            cells.push(ResultCell::from(&r));
        }
        til_rows.push(TableRow::new(method.label(), til));
        cil_rows.push(TableRow::new(method.label(), cil));
    }
    if !ours_til_fgt.is_empty() {
        til_rows.push(TableRow::new("Ours (FGT)", ours_til_fgt));
        cil_rows.push(TableRow::new("Ours (FGT)", ours_cil_fgt));
    }
    let mut tvt = Vec::new();
    for stream in &streams {
        tvt.push(run_upper_bound(stream, &cfg).til_acc_pct());
    }
    til_rows.push(TableRow::new("TVT (Static UDA)", tvt));

    let competing: Vec<usize> = (0..cfg.methods.len()).collect();
    println!(
        "{}",
        format_table(
            "Table II (TIL): ACC on Office-Home",
            &column_refs,
            &til_rows,
            &competing
        )
    );
    println!(
        "{}",
        format_table(
            "Table II (CIL): ACC on Office-Home",
            &column_refs,
            &cil_rows,
            &competing
        )
    );
    maybe_write_json(&cfg.out, &cells);
}
