//! Property-based tests for the size-classed buffer pool (DESIGN.md §12).
//!
//! These drive owned [`BufferPool`] instances — not the process-wide pool —
//! so hit/miss accounting is exact even when the test harness runs suites
//! in parallel (other tests allocating through the global pool would
//! otherwise pollute the counters).

use cdcl_tensor::pool::BufferPool;
use proptest::prelude::*;

proptest! {
    /// Routing invariant: whatever class serves the request, the caller
    /// always gets exactly `n` elements backed by capacity >= `n`, for any
    /// request size (including sub-MIN_CLASS and over-MAX_CLASS bypasses).
    #[test]
    fn take_returns_buffer_geq_requested_len(n in 0usize..100_000) {
        let pool = BufferPool::new();
        let a = pool.take_uninit(n);
        prop_assert_eq!(a.len(), n);
        prop_assert!(a.capacity() >= n);
        let z = pool.take_zeroed(n);
        prop_assert_eq!(z.len(), n);
        prop_assert!(z.iter().all(|v| *v == 0.0));
    }

    /// Recycling a buffer and re-requesting a *smaller-or-equal* size from
    /// the same class must still satisfy the length/capacity contract —
    /// this is the capacity-based give-routing guarantee (a buffer filed
    /// under class `c` always has capacity >= `class_size(c)`).
    #[test]
    fn recycled_buffers_still_satisfy_requests(
        first in 1usize..10_000,
        second in 1usize..10_000,
    ) {
        let pool = BufferPool::new();
        pool.give(pool.take_uninit(first));
        let b = pool.take_uninit(second);
        prop_assert_eq!(b.len(), second);
        prop_assert!(b.capacity() >= second);
    }

    /// Two live handles never alias: writing a distinct pattern through one
    /// must never show through the other, across an arbitrary interleaving
    /// of takes and gives.
    #[test]
    fn live_handles_never_alias(sizes in prop::collection::vec(1usize..4096, 2..8)) {
        let pool = BufferPool::new();
        // Prime the free lists so later takes are recycles.
        let primed: Vec<Vec<f32>> = sizes.iter().map(|&n| pool.take_uninit(n)).collect();
        for v in primed {
            pool.give(v);
        }
        let mut live: Vec<Vec<f32>> = Vec::new();
        for (tag, &n) in sizes.iter().enumerate() {
            let mut v = pool.take_uninit(n);
            v.iter_mut().for_each(|x| *x = tag as f32);
            live.push(v);
        }
        for (tag, v) in live.iter().enumerate() {
            prop_assert!(
                v.iter().all(|x| *x == tag as f32),
                "buffer {} contaminated by another live handle", tag
            );
        }
    }

    /// Steady state: once each shape in the working set has been seen once,
    /// every subsequent round is a 100% hit rate with zero new heap bytes —
    /// the zero-alloc contract the trainer's step loop relies on.
    #[test]
    fn repeated_shape_workload_hits_every_time(
        shapes in prop::collection::vec(1usize..50_000, 1..6),
        rounds in 2usize..10,
    ) {
        let pool = BufferPool::new();
        // Warm-up round: populate one buffer per shape.
        let warm: Vec<Vec<f32>> = shapes.iter().map(|&n| pool.take_uninit(n)).collect();
        for v in warm {
            pool.give(v);
        }
        let warm_stats = pool.stats();
        for _ in 0..rounds {
            let taken: Vec<Vec<f32>> = shapes.iter().map(|&n| pool.take_zeroed(n)).collect();
            for v in taken {
                pool.give(v);
            }
        }
        let delta = pool.stats().delta_since(&warm_stats);
        prop_assert!(delta.misses == 0, "steady state must not touch the allocator");
        prop_assert_eq!(delta.alloc_bytes, 0);
        prop_assert_eq!(delta.hits, (shapes.len() * rounds) as u64);
        prop_assert!((delta.hit_rate() - 1.0).abs() < f64::EPSILON);
    }
}
