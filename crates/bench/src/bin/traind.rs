//! `cdcl-traind`: online trainer daemon with task-free drift detection,
//! closing the train→serve loop (DESIGN.md §15).
//!
//! Ingests labeled-source / unlabeled-target sample batches as JSON lines
//! (blank line = commit one window), scores each committed window's target
//! samples against the archived per-task Eq.-17 centroids, and feeds the
//! distance into a CUSUM/EWMA drift detector. A sustained excursion
//! declares a new task at the window where the statistic left zero; the
//! staged windows from that boundary onward then run one online round
//! through the full `CdclTrainer` pipeline (fresh `(K_i, b_i)`, warm-up,
//! adaptation, pseudo-labeling, rehearsal, `CDCL_CKPT_DIR` checkpoints),
//! and the post-round snapshot is atomically published to `--publish-dir`
//! and `RELOAD`ed into every `--notify` cdcl-serve instance.
//!
//! ```text
//! cargo run --release -p cdcl-bench --bin cdcl-traind -- \
//!     --listen 127.0.0.1:7401 --publish-dir publish \
//!     --notify 127.0.0.1:7400 --ckpt-dir ckpts
//! ```
//!
//! Without `--listen` the same protocol runs over stdin/stdout. Drift
//! thresholds come from the `CDCL_TRAIND_*` environment (see README);
//! `STATUS` / `METRICS` verbs and HTTP `GET /metrics` scrapes work on any
//! connection. The engine lives in `cdcl_bench::traind` so the
//! integration tests can drive it in-process; `traind-stream` is the
//! companion two-task stream driver used by CI.

fn main() {
    let args = cdcl_bench::traind::parse_args();
    cdcl_bench::traind::run(args);
}
