//! Tape-based reverse-mode automatic differentiation over [`cdcl_tensor`].
//!
//! Every forward pass builds a fresh [`Graph`] (the tape). Model parameters
//! live *outside* the tape in [`Param`] cells; registering a parameter with
//! [`Graph::param`] returns a [`Var`] whose gradient, after
//! [`Graph::backward`], is accumulated back into the cell where the optimizer
//! finds it. This is the classic define-by-run design (PyTorch-style),
//! chosen because the CDCL training loop (Algorithm 1 of the paper) switches
//! between self-attention, cross-attention, and rehearsal sub-graphs from
//! epoch to epoch — a static graph would be awkward.
//!
//! The operator set is exactly what the paper's model needs: broadcasting
//! arithmetic, (batched) matmul, conv2d / maxpool2d, ReLU / GELU, softmax /
//! log-softmax, layer-norm, sequence reductions, and the loss heads
//! (negative log-likelihood, soft-target cross-entropy, KL divergence, MSE).
//! Every operator's backward rule is validated against central finite
//! differences in this crate's tests.
//!
//! ```
//! use cdcl_autograd::{Graph, Param};
//! use cdcl_tensor::Tensor;
//!
//! let w = Param::new("w", Tensor::from_vec(vec![2.0], &[1, 1]));
//! let mut g = Graph::new();
//! let x = g.input(Tensor::from_vec(vec![3.0], &[1, 1]));
//! let wv = g.param(&w);
//! let y = g.matmul(x, wv);
//! let loss = g.sum_all(y); // loss = w * x
//! g.backward(loss);
//! assert_eq!(w.grad().data(), &[3.0]); // d(wx)/dw = x
//! ```

mod check;
mod graph;
mod param;
mod verify;

pub use check::finite_diff_grad;
pub use graph::{Graph, Var};
pub use param::Param;
pub use verify::{CheckError, GraphReport};
