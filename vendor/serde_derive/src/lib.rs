//! Derive macros for the vendored `serde` stand-in.
//!
//! Supports exactly what the workspace uses: structs with named fields and
//! fieldless (unit-variant) enums, no generics, no `#[serde(...)]`
//! attributes. The input token stream is parsed by hand — no `syn`/`quote`,
//! because the build environment cannot fetch them.

use proc_macro::{Delimiter, TokenStream, TokenTree};

enum Item {
    Struct { name: String, fields: Vec<String> },
    Enum { name: String, variants: Vec<String> },
}

/// Extracts the item name plus field/variant names from a derive input.
fn parse_item(input: TokenStream) -> Item {
    let mut iter = input.into_iter().peekable();
    // Skip outer attributes and visibility.
    let mut kind: Option<String> = None;
    while let Some(tt) = iter.next() {
        match tt {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                // Attribute: consume the following [...] group.
                let _ = iter.next();
            }
            TokenTree::Ident(id) => {
                let s = id.to_string();
                if s == "pub" {
                    // Optional `pub(...)` restriction.
                    if let Some(TokenTree::Group(g)) = iter.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            let _ = iter.next();
                        }
                    }
                } else if s == "struct" || s == "enum" {
                    kind = Some(s);
                    break;
                }
            }
            _ => {}
        }
    }
    let kind = kind.expect("derive input must be a struct or enum");
    let name = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected item name, got {other:?}"),
    };
    let body = loop {
        match iter.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => break g.stream(),
            Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
                panic!("derive(Serialize/Deserialize) stand-in does not support generics")
            }
            Some(_) => continue,
            None => panic!("expected {{ ... }} body on `{name}`"),
        }
    };
    if kind == "struct" {
        Item::Struct {
            name,
            fields: parse_named_fields(body),
        }
    } else {
        Item::Enum {
            name,
            variants: parse_unit_variants(body),
        }
    }
}

/// Field names of a named-field struct body.
fn parse_named_fields(body: TokenStream) -> Vec<String> {
    let mut fields = Vec::new();
    let mut iter = body.into_iter().peekable();
    loop {
        // Skip attributes / doc comments and visibility.
        let field = loop {
            match iter.next() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    let _ = iter.next();
                }
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    if let Some(TokenTree::Group(g)) = iter.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            let _ = iter.next();
                        }
                    }
                }
                Some(TokenTree::Ident(id)) => break Some(id.to_string()),
                Some(other) => panic!("unexpected token in struct body: {other:?}"),
                None => break None,
            }
        };
        let Some(field) = field else { break };
        match iter.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("expected `:` after field `{field}`, got {other:?}"),
        }
        fields.push(field);
        // Skip the type: consume until a comma at angle-bracket depth 0.
        let mut depth = 0i32;
        loop {
            match iter.next() {
                Some(TokenTree::Punct(p)) => match p.as_char() {
                    '<' => depth += 1,
                    '>' => depth -= 1,
                    ',' if depth == 0 => break,
                    _ => {}
                },
                Some(_) => {}
                None => break,
            }
        }
    }
    fields
}

/// Variant names of a fieldless enum body.
fn parse_unit_variants(body: TokenStream) -> Vec<String> {
    let mut variants = Vec::new();
    let mut iter = body.into_iter().peekable();
    while let Some(tt) = iter.next() {
        match tt {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                let _ = iter.next();
            }
            TokenTree::Ident(id) => {
                variants.push(id.to_string());
                // Reject data-carrying variants.
                if let Some(TokenTree::Group(_)) = iter.peek() {
                    panic!(
                        "derive stand-in supports only fieldless enum variants \
                         (variant `{id}` carries data)"
                    );
                }
                // Consume optional `= discriminant` and the trailing comma.
                for next in iter.by_ref() {
                    if let TokenTree::Punct(p) = &next {
                        if p.as_char() == ',' {
                            break;
                        }
                    }
                }
            }
            TokenTree::Punct(p) if p.as_char() == ',' => {}
            other => panic!("unexpected token in enum body: {other:?}"),
        }
    }
    variants
}

/// `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let code = match parse_item(input) {
        Item::Struct { name, fields } => {
            let entries: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from({f:?}), \
                         ::serde::Serialize::to_value(&self.{f})),"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         ::serde::Value::Obj(::std::vec![{entries}])\n\
                     }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|v| format!("{name}::{v} => {v:?},"))
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         ::serde::Value::Str(::std::string::String::from(\
                             match self {{ {arms} }}))\n\
                     }}\n\
                 }}"
            )
        }
    };
    code.parse().expect("generated Serialize impl must parse")
}

/// `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let code = match parse_item(input) {
        Item::Struct { name, fields } => {
            let inits: String = fields
                .iter()
                .map(|f| format!("{f}: ::serde::from_field(v, {f:?})?,"))
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) \
                         -> ::std::result::Result<Self, ::serde::Error> {{\n\
                         ::std::result::Result::Ok(Self {{ {inits} }})\n\
                     }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|v| format!("{v:?} => ::std::result::Result::Ok({name}::{v}),"))
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) \
                         -> ::std::result::Result<Self, ::serde::Error> {{\n\
                         match v {{\n\
                             ::serde::Value::Str(s) => match s.as_str() {{\n\
                                 {arms}\n\
                                 other => ::std::result::Result::Err(\
                                     ::serde::Error::msg(::std::format!(\
                                         \"unknown variant `{{other}}` of {name}\"))),\n\
                             }},\n\
                             other => ::std::result::Result::Err(\
                                 ::serde::Error::msg(::std::format!(\
                                     \"expected string for {name}, got {{other:?}}\"))),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
    };
    code.parse().expect("generated Deserialize impl must parse")
}
