//! The `cdcl_serve_*` observability surface (DESIGN.md §11, §13).
//!
//! Process-wide statics cover the whole server; the `*Family` handles fan
//! the per-model series out by `{model="…"}` label. Every [`super::registry::ModelSlot`]
//! resolves its family cores once at registration, so per-request recording
//! never takes the registry lock.

use cdcl_obs::{Counter, CounterFamily, GaugeFamily, Histogram, HistogramFamily};

pub(crate) static REQUESTS_TOTAL: Counter = Counter::new(
    "cdcl_serve_requests_total",
    "Prediction requests received (including malformed ones)",
);
pub(crate) static FAILED_TOTAL: Counter = Counter::new(
    "cdcl_serve_failed_total",
    "Requests answered with an error response",
);
pub(crate) static BUSY_TOTAL: Counter = Counter::new(
    "cdcl_serve_busy_total",
    "Requests shed by admission control (per-model quota or queue cap) \
     with an ok:false busy response instead of unbounded queueing",
);
pub(crate) static NONFINITE_TOTAL: Counter = Counter::new(
    "cdcl_serve_nonfinite_total",
    "Requests whose output probabilities contained NaN/Inf (answered as errors)",
);
pub(crate) static BATCHES_TOTAL: Counter = Counter::new(
    "cdcl_serve_batches_total",
    "Forward-pass micro-batches executed",
);
pub(crate) static ACCEPT_ERRORS_TOTAL: Counter = Counter::new(
    "cdcl_serve_accept_errors_total",
    "Failed accept()/clone() calls on the TCP listener that were logged \
     and survived (EMFILE, ECONNABORTED, ...) instead of killing the server",
);
pub(crate) static RELOADS_TOTAL: Counter = Counter::new(
    "cdcl_serve_reloads_total",
    "Successful RELOAD verbs: snapshot versions atomically hot-swapped \
     into the registry",
);
pub(crate) static BATCH_LATENCY_US: Histogram = Histogram::new(
    "cdcl_serve_batch_latency_us",
    "Forward-pass latency per micro-batch (microseconds)",
);
pub(crate) static BATCH_SIZE: Histogram =
    Histogram::new("cdcl_serve_batch_size", "Requests per executed micro-batch");
pub(crate) static QUEUE_DEPTH: Histogram = Histogram::new(
    "cdcl_serve_queue_depth",
    "Pending queue length at each flush (before grouping)",
);
pub(crate) static SERVE_ALLOC_BYTES: Counter = Counter::new(
    "cdcl_serve_alloc_bytes_total",
    "Heap bytes allocated by the tensor pool while staging request batches \
     (zero growth in steady state: recycled pool buffers cover every flush)",
);

// ------------------------------------------------------------------
// Per-model families (one series per registry model id)
// ------------------------------------------------------------------

pub(crate) static MODEL_REQUESTS_TOTAL: CounterFamily = CounterFamily::new(
    "cdcl_serve_model_requests_total",
    "Prediction requests routed to this model",
    "model",
);
pub(crate) static MODEL_FAILED_TOTAL: CounterFamily = CounterFamily::new(
    "cdcl_serve_model_failed_total",
    "Requests for this model answered with an error response",
    "model",
);
pub(crate) static MODEL_BUSY_TOTAL: CounterFamily = CounterFamily::new(
    "cdcl_serve_model_busy_total",
    "Requests for this model shed by its in-flight quota",
    "model",
);
pub(crate) static MODEL_RELOADS_TOTAL: CounterFamily = CounterFamily::new(
    "cdcl_serve_model_reloads_total",
    "Snapshot versions hot-swapped into this model's slot",
    "model",
);
pub(crate) static MODEL_LATENCY_US: HistogramFamily = HistogramFamily::new(
    "cdcl_serve_model_latency_us",
    "Forward-pass latency per micro-batch of this model (microseconds)",
    "model",
);
pub(crate) static MODEL_INFLIGHT: GaugeFamily = GaugeFamily::new(
    "cdcl_serve_model_inflight",
    "Admitted requests currently queued or executing for this model",
    "model",
);
