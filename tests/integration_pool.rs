//! Buffer-pool contract, end to end (DESIGN.md §12): recycling tensor
//! storage through the size-classed pool must be **bitwise invisible** —
//! the pool decides where buffers live, never what a caller reads from
//! them — and must actually hit in steady state.
//!
//! Everything runs inside one `#[test]` so the process-wide
//! `CDCL_POOL`-style runtime toggle and the global pool counters are never
//! raced by a sibling test thread.

use cdcl::core::{CdclConfig, CdclTrainer, ContinualLearner};
use cdcl::data::{mnist_usps, MnistUspsDirection, Scale};
use cdcl::nn::Module;
use cdcl::tensor::kernels;
use cdcl::tensor::pool;

/// Trains two tasks single-threaded and returns the final parameters, both
/// TIL accuracies, and the pool-counter delta over the *second* task — the
/// steady-state window, after task 0 has warmed the free lists.
fn train() -> (Vec<(String, Vec<f32>)>, f64, f64, pool::PoolStats) {
    let stream = mnist_usps(MnistUspsDirection::MnistToUsps, Scale::Smoke);
    let mut config = CdclConfig::smoke();
    config.epochs = 3;
    config.warmup_epochs = 1;
    let mut trainer = CdclTrainer::new(config);
    trainer.learn_task(&stream.tasks[0]);
    let warm = pool::pool_stats();
    trainer.learn_task(&stream.tasks[1]);
    let steady = pool::pool_stats().delta_since(&warm);
    let acc0 = trainer.eval_til(0, &stream.tasks[0].target_test);
    let acc1 = trainer.eval_til(1, &stream.tasks[1].target_test);
    let params = trainer
        .model()
        .params()
        .into_iter()
        .map(|p| (p.name(), p.value().data().to_vec()))
        .collect();
    (params, acc0, acc1, steady)
}

#[test]
fn pooled_and_plain_allocation_are_bitwise_identical_and_pool_hits() {
    kernels::set_num_threads(1);

    // A: pool on (the default). Task 0 warms the free lists; the delta
    // over task 1 is the steady-state window.
    pool::set_enabled(true);
    let (pooled_params, pooled_acc0, pooled_acc1, steady) = train();
    assert!(
        steady.hits + steady.misses > 0,
        "training never touched the pool — the storage plumbing is broken"
    );
    assert!(
        steady.hit_rate() >= 0.90,
        "steady-state pool hit rate {:.4} below the 90% contract \
         ({} hits / {} misses)",
        steady.hit_rate(),
        steady.hits,
        steady.misses
    );

    // B: pool off — every buffer is a fresh heap Vec, as under CDCL_POOL=0.
    pool::set_enabled(false);
    let (plain_params, plain_acc0, plain_acc1, _) = train();
    pool::set_enabled(true);
    kernels::set_num_threads(0);

    assert_eq!(
        pooled_acc0, plain_acc0,
        "eval_til(0) diverged with pool off"
    );
    assert_eq!(
        pooled_acc1, plain_acc1,
        "eval_til(1) diverged with pool off"
    );
    assert_eq!(pooled_params.len(), plain_params.len());
    for ((name, pooled), (plain_name, plain)) in pooled_params.iter().zip(plain_params.iter()) {
        assert_eq!(name, plain_name);
        // Bitwise equality on the raw f32 data — no tolerance. Any read of
        // recycled-buffer garbage anywhere in the stack shows up here.
        assert_eq!(pooled, plain, "param {name} diverged with pool off");
    }
}
