//! The CDCL learner — the paper's primary contribution.
//!
//! * [`CdclModel`] assembles the shared [`cdcl_nn::Backbone`] with the
//!   multi-head TIL output and the growing single-head CIL output, and
//!   manages per-task `K_i`/`b_i` instantiation and freezing (§IV-A).
//! * [`pseudo`] implements the intra-task center-aware pseudo-labeling of
//!   §IV-B: TIL-softmax-weighted centroids (Eq. 17), nearest-centroid
//!   pseudo-labels (Eq. 18), and the matched pair set `P` (Eq. 19).
//! * [`RehearsalMemory`] stores `(x_S, x_T, y_S, logits)` records selected
//!   by intra-task confidence and rebalanced to `⌊|M|/t⌋` records per task
//!   (§IV-C).
//! * [`CdclTrainer`] runs Algorithm 1: warm-up on the source, pseudo-label
//!   refresh each epoch, the CIL/TIL loss triples (Eqs. 9–16), and the
//!   rehearsal losses (Eqs. 20–23).
//! * [`protocol`] defines the [`ContinualLearner`] trait shared with every
//!   baseline and the R-matrix evaluation loop of §V-C.
//! * [`drift`] scores incoming unlabeled windows against the archived
//!   Eq.-17 centroids and infers task boundaries when none are given — the
//!   task-free control loop driven by the `cdcl-traind` daemon.

mod config;
pub mod drift;
mod health;
mod memory;
mod model;
pub mod protocol;
pub mod pseudo;
mod snapshot;
mod trainer;

pub use config::{CdclConfig, LossToggles};
pub use drift::{DriftConfig, DriftDecision, DriftDetector};
pub use memory::{MemoryRecord, RehearsalMemory};
pub use model::CdclModel;
pub use protocol::{run_stream, ContinualLearner, StreamResult};
pub use trainer::{CdclTrainer, DriftScore};
