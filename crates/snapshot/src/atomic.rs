//! Crash-safe file writes: write to a temp file in the same directory,
//! fsync, then rename over the final path.
//!
//! This module is the *only* place in `crates/snapshot` allowed to call
//! `File::create`/`fs::rename` — the `atomic-write` rule of `cdcl-lint`
//! flags raw filesystem writes anywhere else in the crate, so every
//! snapshot on disk is either the complete old file or the complete new
//! file, never a torn intermediate.

use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};

use crate::SnapshotError;

/// The sibling temp path used while writing `path`: same directory (so the
/// final rename never crosses a filesystem), `.tmp` appended to the name.
fn temp_sibling(path: &Path) -> PathBuf {
    let mut name = path
        .file_name()
        .map(|n| n.to_os_string())
        .unwrap_or_default();
    name.push(".tmp");
    path.with_file_name(name)
}

/// Writes `bytes` to `path` atomically: create `<path>.tmp`, write, fsync,
/// rename onto `path`. On any error the final path is untouched (a stale
/// temp file may remain; the next write truncates it).
pub fn atomic_write(path: &Path, bytes: &[u8]) -> Result<(), SnapshotError> {
    let tmp = temp_sibling(path);
    let mut file = fs::File::create(&tmp)?;
    file.write_all(bytes)?;
    // Flush to stable storage before the rename publishes the file: a crash
    // after rename but before writeback must not surface a hollow snapshot.
    file.sync_all()?;
    drop(file);
    fs::rename(&tmp, path)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("cdcl-snapshot-{}-{name}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn writes_and_overwrites() {
        let dir = scratch_dir("write");
        let path = dir.join("snap.cdclsnap");
        atomic_write(&path, b"first").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"first");
        atomic_write(&path, b"second, longer contents").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"second, longer contents");
        // No temp file left behind on the success path.
        assert!(!temp_sibling(&path).exists());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_parent_directory_is_a_typed_error() {
        let path = scratch_dir("missing")
            .join("no-such-subdir")
            .join("snap.cdclsnap");
        assert!(matches!(
            atomic_write(&path, b"x"),
            Err(SnapshotError::Io(_))
        ));
        assert!(!path.exists());
    }

    #[test]
    fn temp_sibling_stays_in_the_same_directory() {
        let t = temp_sibling(Path::new("/a/b/task000.cdclsnap"));
        assert_eq!(t, Path::new("/a/b/task000.cdclsnap.tmp"));
    }
}
