//! # CDCL — Cross-Domain Continual Learning, in Rust
//!
//! A from-scratch reproduction of *"Towards Cross-Domain Continual
//! Learning"* (de Carvalho et al., ICDE 2024): a continual learner that
//! adapts a labelled **source** domain to an unlabelled **target** domain on
//! every task of a sequential stream, without forgetting the feature
//! alignment of earlier tasks.
//!
//! This umbrella crate re-exports the whole workspace:
//!
//! * [`tensor`] / [`autograd`] — the numeric substrate (dense CPU tensors,
//!   tape-based reverse-mode AD).
//! * [`nn`] — the model zoo: CCT convolutional tokenizer, the paper's
//!   inter- intra-task cross-attention with frozen per-task keys, encoder
//!   stack, sequence pooling, TIL/CIL heads.
//! * [`optim`] — AdamW and the warm-up + cosine schedule of §V-B.
//! * [`data`] — synthetic cross-domain benchmark analogues (MNIST↔USPS,
//!   Office-31, Office-Home, VisDA-2017, DomainNet).
//! * [`metrics`] — the R-matrix protocol: average accuracy and forgetting.
//! * [`core`] — the CDCL learner itself (Algorithm 1).
//! * [`snapshot`] — the versioned, CRC-checksummed persistence container
//!   behind `CDCL_CKPT_DIR` checkpoints and `cdcl-serve`.
//! * [`obs`] — the always-on metrics registry (`CDCL_METRICS`): counters,
//!   gauges, log-bucketed histograms with derived percentiles, exposed as
//!   Prometheus text or JSON (live at `cdcl-serve`'s `/metrics`).
//! * [`baselines`] — DER, DER++, HAL, MLS, CDTrans-S/B, and the TVT-style
//!   static upper bound.
//!
//! ## Quickstart
//!
//! ```
//! use cdcl::core::{run_stream, CdclConfig, CdclTrainer};
//! use cdcl::data::{mnist_usps, MnistUspsDirection, Scale};
//!
//! // A tiny stream: 5 sequential 2-class tasks, labelled MNIST-like source,
//! // unlabelled USPS-like target.
//! let stream = mnist_usps(MnistUspsDirection::MnistToUsps, Scale::Smoke);
//! let mut config = CdclConfig::smoke();
//! config.epochs = 2; // doc-test budget; use the defaults for real runs
//! config.warmup_epochs = 1;
//! let mut learner = CdclTrainer::new(config);
//! let result = run_stream(&mut learner, &stream);
//! assert_eq!(result.til.num_tasks(), 5);
//! println!("TIL ACC {:.1}%  FGT {:.1}%", result.til_acc_pct(), result.til_fgt_pct());
//! ```

pub use cdcl_autograd as autograd;
pub use cdcl_baselines as baselines;
pub use cdcl_core as core;
pub use cdcl_data as data;
pub use cdcl_metrics as metrics;
pub use cdcl_nn as nn;
pub use cdcl_obs as obs;
pub use cdcl_optim as optim;
pub use cdcl_snapshot as snapshot;
pub use cdcl_telemetry as telemetry;
pub use cdcl_tensor as tensor;
