//! Atomic-ordering contract audit (DESIGN.md §14).
//!
//! Every `Ordering::<level>` use site in library code must be covered by a
//! *contract comment* declaring why that ordering is sufficient:
//!
//! ```text
//! // ordering: stat — counters are telemetry only; no data is published
//! self.hits.fetch_add(1, Ordering::Relaxed);
//! ```
//!
//! The grammar is `// ordering: <category> — <free text>`, with four
//! categories:
//!
//! * `stat` — pure statistics (counters, gauges); torn or stale reads only
//!   skew a report. Any ordering is sound, `Relaxed` expected.
//! * `flag` — an advisory state flag (enabled bits, stop signals, quota
//!   counters) where a stale read is handled by the surrounding protocol
//!   (typically a mutex or a re-check). Any ordering accepted.
//! * `lazy-init` — idempotent racy initialisation: double-computation is
//!   benign, so `Relaxed` is sound.
//! * `publish` — the atomic *publishes non-atomic data* to another thread.
//!   This is the one category with hard requirements: `Relaxed` is an
//!   **error** (the classic store→load publication bug), as is a `store`
//!   with `Acquire` or a `load` with `Release`.
//!
//! One comment covers the whole contiguous cluster of ordering-bearing
//! statements below it — annotating all four lines of a stats block once
//! is the intended style. An undocumented site is an error; the shared
//! `lint-allow.txt` is the escape hatch of last resort.
//!
//! Sites are found on the token stream (`Ordering` `::` `<level>`), so
//! `use` imports, `cmp::Ordering::Less`, and mentions inside strings or
//! comments can never trip the audit, and `#[cfg(test)]` items are
//! excluded by the same token-tree regions as every other pass.

use crate::lexer::{lex, line_in_regions, test_line_regions, Tok, TokKind};
use crate::Finding;
use std::collections::BTreeMap;

/// The five atomic memory orderings.
const LEVELS: [&str; 5] = ["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

/// The contract categories, in documentation order.
pub const CATEGORIES: [&str; 4] = ["stat", "flag", "lazy-init", "publish"];

/// Atomic methods whose ordering argument we classify as store-side,
/// load-side, or read-modify-write.
const ATOMIC_METHODS: [&str; 11] = [
    "compare_exchange",
    "compare_exchange_weak",
    "fetch_add",
    "fetch_and",
    "fetch_or",
    "fetch_sub",
    "fetch_update",
    "fetch_xor",
    "load",
    "store",
    "swap",
];

/// One `Ordering::<level>` use site.
#[derive(Debug)]
struct Site {
    line: usize,
    level: String,
    /// Nearest atomic method called earlier in the same statement.
    method: Option<String>,
}

/// A statement containing at least one ordering site.
#[derive(Debug)]
struct Stmt {
    start_line: usize,
    end_line: usize,
    sites: Vec<Site>,
}

/// Audits one file; returns findings for undocumented sites, unknown
/// contract categories, and publication contracts with unsound levels.
pub fn audit_source(rel_path: &str, source: &str) -> Vec<Finding> {
    let all = lex(source);
    let regions = test_line_regions(&all);

    // Comment text per line (start line for multi-line block comments).
    let mut comments: BTreeMap<usize, String> = BTreeMap::new();
    for t in &all {
        if t.is_comment() {
            comments.entry(t.line).or_default().push_str(&t.text);
        }
    }
    // Lines bearing non-comment code (the upward walk stops at these).
    let mut code_lines: BTreeMap<usize, ()> = BTreeMap::new();
    let toks: Vec<&Tok> = all.iter().filter(|t| !t.is_comment()).collect();
    for t in &toks {
        code_lines.insert(t.line, ());
    }

    // Collect ordering-bearing statements.
    let mut stmts: Vec<Stmt> = Vec::new();
    let mut cur_start = toks.first().map_or(1, |t| t.line);
    let mut cur_sites: Vec<Site> = Vec::new();
    let mut last_method: Option<String> = None;
    let mut i = 0usize;
    while i < toks.len() {
        let t = toks[i];
        if t.is_punct(';') || t.is_punct('{') || t.is_punct('}') {
            if !cur_sites.is_empty() {
                stmts.push(Stmt {
                    start_line: cur_start,
                    end_line: t.line,
                    sites: std::mem::take(&mut cur_sites),
                });
            }
            cur_start = toks.get(i + 1).map_or(t.line, |n| n.line);
            last_method = None;
            i += 1;
            continue;
        }
        if t.kind == TokKind::Ident
            && ATOMIC_METHODS.contains(&t.text.as_str())
            && toks.get(i + 1).is_some_and(|n| n.is_punct('('))
        {
            last_method = Some(t.text.clone());
        }
        if t.is_ident("Ordering")
            && toks.get(i + 1).is_some_and(|n| n.is_punct(':'))
            && toks.get(i + 2).is_some_and(|n| n.is_punct(':'))
            && toks
                .get(i + 3)
                .is_some_and(|n| n.kind == TokKind::Ident && LEVELS.contains(&n.text.as_str()))
        {
            let lvl = toks[i + 3];
            if !line_in_regions(&regions, lvl.line) {
                cur_sites.push(Site {
                    line: lvl.line,
                    level: lvl.text.clone(),
                    method: last_method.clone(),
                });
            }
            i += 4;
            continue;
        }
        i += 1;
    }
    if !cur_sites.is_empty() {
        let end = toks.last().map_or(cur_start, |t| t.line);
        stmts.push(Stmt {
            start_line: cur_start,
            end_line: end,
            sites: cur_sites,
        });
    }

    // Line → statement-start for every line of an ordering-bearing
    // statement (the upward walk skips over sibling clusters).
    let mut covered: BTreeMap<usize, usize> = BTreeMap::new();
    for s in &stmts {
        for l in s.start_line..=s.end_line {
            covered.insert(l, s.start_line);
        }
    }

    let src_lines: Vec<&str> = source.lines().collect();
    let excerpt = |line: usize| -> String {
        src_lines
            .get(line.saturating_sub(1))
            .map_or(String::new(), |l| l.trim().to_string())
    };

    let mut findings = Vec::new();
    for s in &stmts {
        let contract = find_contract(s, &comments, &code_lines, &covered);
        for site in &s.sites {
            let needle = format!("Ordering::{}", site.level);
            match &contract {
                None => findings.push(Finding {
                    file: rel_path.to_string(),
                    line: site.line,
                    rule: "atomic-ordering",
                    needle,
                    excerpt: format!(
                        "undocumented atomic ordering — add `// ordering: \
                         <stat|flag|lazy-init|publish> — why` ({})",
                        excerpt(site.line)
                    ),
                }),
                Some(cat) if !CATEGORIES.contains(&cat.as_str()) => findings.push(Finding {
                    file: rel_path.to_string(),
                    line: site.line,
                    rule: "atomic-ordering",
                    needle,
                    excerpt: format!(
                        "unknown ordering-contract category `{cat}` \
                         (expected stat|flag|lazy-init|publish)"
                    ),
                }),
                Some(cat) if cat == "publish" => {
                    if let Some(problem) = publish_problem(site) {
                        findings.push(Finding {
                            file: rel_path.to_string(),
                            line: site.line,
                            rule: "atomic-ordering",
                            needle,
                            excerpt: format!("{problem} ({})", excerpt(site.line)),
                        });
                    }
                }
                Some(_) => {}
            }
        }
    }
    findings.sort_by_key(|f| f.line);
    findings
}

/// Why a `publish`-contract site is unsound, if it is.
fn publish_problem(site: &Site) -> Option<String> {
    if site.level == "Relaxed" {
        return Some(
            "`Relaxed` on a publication site — a Relaxed store→load pair \
             publishes no non-atomic data; use Release (store) / Acquire (load)"
                .to_string(),
        );
    }
    match site.method.as_deref() {
        Some("store") if site.level == "Acquire" => {
            Some("`store(Acquire)` is invalid — publication stores need Release".to_string())
        }
        Some("load") if site.level == "Release" => {
            Some("`load(Release)` is invalid — publication loads need Acquire".to_string())
        }
        _ => None,
    }
}

/// Resolves the contract covering statement `s`: a trailing comment on one
/// of its own lines, or the nearest comment-only line walking upward —
/// skipping sibling ordering-bearing statements so one comment covers a
/// whole cluster. A blank line or unrelated code line ends the search.
fn find_contract(
    s: &Stmt,
    comments: &BTreeMap<usize, String>,
    code_lines: &BTreeMap<usize, ()>,
    covered: &BTreeMap<usize, usize>,
) -> Option<String> {
    for l in s.start_line..=s.end_line {
        if let Some(cat) = comments.get(&l).and_then(|c| parse_contract(c)) {
            return Some(cat);
        }
    }
    let mut l = s.start_line.saturating_sub(1);
    while l > 0 {
        if let Some(&start) = covered.get(&l) {
            if start <= l {
                // A sibling cluster: a contract may trail on its lines.
                for cl in start..=l {
                    if let Some(cat) = comments.get(&cl).and_then(|c| parse_contract(c)) {
                        return Some(cat);
                    }
                }
                l = start.saturating_sub(1);
                continue;
            }
        }
        match comments.get(&l) {
            Some(c) if !code_lines.contains_key(&l) => {
                if let Some(cat) = parse_contract(c) {
                    return Some(cat);
                }
                l -= 1;
            }
            // Code line without a contract, or a blank line: stop.
            _ => return None,
        }
    }
    None
}

/// Extracts the category from a contract comment, if present:
/// `// ordering: stat — …` → `stat`.
fn parse_contract(comment: &str) -> Option<String> {
    let rest = comment.split("ordering:").nth(1)?;
    let cat: String = rest
        .trim_start()
        .chars()
        .take_while(|c| c.is_ascii_alphanumeric() || *c == '-')
        .collect();
    if cat.is_empty() {
        None
    } else {
        Some(cat)
    }
}

/// Audits every `.rs` file under `crates/*/src`.
pub fn audit_workspace(root: &std::path::Path) -> Vec<Finding> {
    let mut findings = Vec::new();
    for path in crate::collect_rs_files(root) {
        let rel = crate::rel_path(root, &path);
        if let Ok(src) = std::fs::read_to_string(&path) {
            findings.extend(audit_source(&rel, &src));
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;

    fn audit(src: &str) -> Vec<Finding> {
        audit_source("crates/x/src/lib.rs", src)
    }

    #[test]
    fn undocumented_site_is_flagged() {
        let src = "fn f(x: &AtomicU64) -> u64 { x.load(Ordering::Relaxed) }";
        let f = audit(src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "atomic-ordering");
        assert!(f[0].excerpt.contains("undocumented"));
    }

    #[test]
    fn trailing_and_preceding_contracts_cover() {
        let trailing =
            "fn f(x: &AtomicU64) { x.store(0, Ordering::Relaxed); // ordering: stat — counter\n}";
        assert!(audit(trailing).is_empty());
        let preceding = "
            fn f(x: &AtomicU64) {
                // ordering: stat — counter only
                x.store(0, Ordering::Relaxed);
            }
        ";
        assert!(audit(preceding).is_empty());
    }

    #[test]
    fn one_comment_covers_a_cluster() {
        let src = "
            fn f(s: &S) {
                // ordering: stat — all four are report-only counters
                s.hits.store(0, Ordering::Relaxed);
                s.misses.store(0, Ordering::Relaxed);
                s.alloc
                    .fetch_add(1, Ordering::Relaxed);
                s.resident.store(0, Ordering::Relaxed);
            }
        ";
        assert!(audit(src).is_empty(), "{:?}", audit(src));
    }

    #[test]
    fn blank_line_breaks_the_cluster() {
        let src = "
            fn f(s: &S) {
                // ordering: stat — covers only the adjacent statement
                s.hits.store(0, Ordering::Relaxed);

                s.other.store(0, Ordering::Relaxed);
            }
        ";
        let f = audit(src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].line, 6);
    }

    #[test]
    fn relaxed_publication_is_an_error() {
        let src = "
            fn f(x: &AtomicPtr<T>) {
                // ordering: publish — hands the buffer to the reader
                x.store(p, Ordering::Relaxed);
            }
        ";
        let f = audit(src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].excerpt.contains("Relaxed"), "{f:?}");
        // Release on the same contract is sound.
        let ok = "
            fn f(x: &AtomicPtr<T>) {
                // ordering: publish — hands the buffer to the reader
                x.store(p, Ordering::Release);
            }
        ";
        assert!(audit(ok).is_empty());
    }

    #[test]
    fn inverted_publish_levels_are_errors() {
        let store = "
            // ordering: publish — x
            fn f(x: &AtomicU64) { x.store(1, Ordering::Acquire); }
        ";
        // (contract inside the fn, store side)
        let src = "
            fn f(x: &AtomicU64) {
                // ordering: publish — x
                x.store(1, Ordering::Acquire);
            }
        ";
        assert_eq!(audit(src).len(), 1);
        let load = "
            fn f(x: &AtomicU64) {
                // ordering: publish — x
                let v = x.load(Ordering::Release);
            }
        ";
        assert_eq!(audit(load).len(), 1);
        let _ = store;
    }

    #[test]
    fn unknown_category_is_an_error() {
        let src = "
            fn f(x: &AtomicU64) {
                // ordering: because-i-said-so
                x.store(1, Ordering::Relaxed);
            }
        ";
        let f = audit(src);
        assert_eq!(f.len(), 1);
        assert!(f[0].excerpt.contains("unknown"));
    }

    #[test]
    fn imports_cmp_strings_and_tests_do_not_trip() {
        let src = "
            use std::sync::atomic::{AtomicU64, Ordering};
            fn f(a: u32, b: u32) -> std::cmp::Ordering { a.cmp(&b) }
            fn g() -> &'static str { \"Ordering::Relaxed\" }
            // Ordering::Relaxed mentioned in a comment
            #[cfg(test)]
            mod tests {
                fn t(x: &AtomicU64) { x.store(1, Ordering::Relaxed); }
            }
        ";
        assert!(audit(src).is_empty(), "{:?}", audit(src));
    }

    #[test]
    fn cas_pair_shares_one_statement_and_contract() {
        let src = "
            fn f(x: &AtomicU64) {
                // ordering: stat — float add loop, value is report-only
                while x
                    .compare_exchange_weak(c, n, Ordering::Relaxed, Ordering::Relaxed)
                    .is_err()
                {}
            }
        ";
        assert!(audit(src).is_empty(), "{:?}", audit(src));
    }
}
