//! Model assembly: backbone + TIL multi-head + growing CIL head, with
//! per-task key management.

use cdcl_autograd::{Graph, Param, Var};
use cdcl_nn::{Backbone, BackboneConfig, GrowingLinear, Module, TilHeads};
use cdcl_tensor::Tensor;
use rand::rngs::SmallRng;
use rand::Rng;

/// The CDCL network of Figure 1: shared tokenizer/encoder/pooling, one TIL
/// head per task, one growing CIL head, and per-task `K_i`/`b_i` inside
/// every attention layer.
pub struct CdclModel {
    backbone: Backbone,
    til: TilHeads,
    cil: GrowingLinear,
    /// Global class-id offset of each task (for CIL labels).
    class_offsets: Vec<usize>,
}

impl CdclModel {
    /// Builds the model with no tasks yet.
    pub fn new(rng: &mut SmallRng, config: BackboneConfig) -> Self {
        let backbone = Backbone::new(rng, config);
        let d = backbone.embed_dim();
        Self {
            backbone,
            til: TilHeads::new(d),
            cil: GrowingLinear::new(rng, "cil", d, 0),
            class_offsets: Vec::new(),
        }
    }

    /// Registers a new task with `classes` classes: instantiates fresh
    /// `K_i`/`b_i` (freezing previous tasks'), appends a TIL head, and grows
    /// the CIL head.
    pub fn add_task<R: Rng + ?Sized>(&mut self, rng: &mut R, classes: usize) {
        self.backbone.add_task(rng);
        self.til.add_task(rng, classes);
        self.class_offsets.push(self.cil.classes());
        self.cil.grow(rng, classes);
    }

    /// Number of tasks registered so far.
    pub fn num_tasks(&self) -> usize {
        self.til.num_tasks()
    }

    /// Total classes across all tasks.
    pub fn total_classes(&self) -> usize {
        self.cil.classes()
    }

    /// Global class-id offset of `task`.
    pub fn class_offset(&self, task: usize) -> usize {
        self.class_offsets[task]
    }

    /// Classes of one task — with [`CdclModel::num_tasks`] this is the full
    /// structural descriptor needed to rebuild the model (snapshot loaders
    /// replay `add_task` with these counts before restoring parameters).
    pub fn task_classes(&self, task: usize) -> usize {
        self.til.task_classes(task)
    }

    /// The shared backbone.
    pub fn backbone(&self) -> &Backbone {
        &self.backbone
    }

    /// Every parameter the CDCL freezing contract requires non-trainable:
    /// the `(K_i, b_i)` projections of all retired tasks in every attention
    /// layer. The trainer hands this set to the graph verifier, which fails
    /// if any of them is trainable or accumulated gradient.
    pub fn expected_frozen_params(&self) -> Vec<Param> {
        self.backbone.frozen_params()
    }

    /// Pooled features `a(x)` via the self path using `task`'s keys.
    pub fn features_self(&self, g: &mut Graph, x: Var, task: usize) -> Var {
        self.backbone.features_self(g, x, task)
    }

    /// Mixed features via the cross path (source queries, target values).
    pub fn features_cross(&self, g: &mut Graph, x_src: Var, x_tgt: Var, task: usize) -> Var {
        self.backbone.features_cross(g, x_src, x_tgt, task)
    }

    /// TIL logits of `task` for pooled features.
    pub fn til_logits(&self, g: &mut Graph, z: Var, task: usize) -> Var {
        self.til.forward(g, z, task)
    }

    /// CIL logits over all known classes.
    pub fn cil_logits(&self, g: &mut Graph, z: Var) -> Var {
        self.cil.forward(g, z)
    }

    /// Inference-only TIL probabilities for a batch of images.
    pub fn predict_til(&self, images: &Tensor, task: usize) -> Tensor {
        let mut g = Graph::new();
        let x = g.input(images.clone());
        let z = self.features_self(&mut g, x, task);
        let logits = self.til_logits(&mut g, z, task);
        g.value(logits).softmax_last()
    }

    /// Inference-only CIL probabilities (uses the *latest* task's keys, as
    /// the paper prescribes for `f^CIL`).
    pub fn predict_cil(&self, images: &Tensor) -> Tensor {
        let latest = self.num_tasks() - 1;
        let mut g = Graph::new();
        let x = g.input(images.clone());
        let z = self.features_self(&mut g, x, latest);
        let logits = self.cil_logits(&mut g, z);
        g.value(logits).softmax_last()
    }

    /// Inference-only pooled features (for pseudo-label centroids).
    pub fn extract_features(&self, images: &Tensor, task: usize) -> Tensor {
        let mut g = Graph::new();
        let x = g.input(images.clone());
        let z = self.features_self(&mut g, x, task);
        g.value(z).clone()
    }
}

impl Module for CdclModel {
    fn params(&self) -> Vec<Param> {
        let mut p = self.backbone.params();
        p.extend(self.til.params());
        p.extend(self.cil.params());
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn model() -> (SmallRng, CdclModel) {
        let mut rng = SmallRng::seed_from_u64(1);
        let m = CdclModel::new(&mut rng, BackboneConfig::default());
        (rng, m)
    }

    #[test]
    fn add_task_tracks_offsets_and_heads() {
        let (mut rng, mut m) = model();
        m.add_task(&mut rng, 2);
        m.add_task(&mut rng, 3);
        assert_eq!(m.num_tasks(), 2);
        assert_eq!(m.total_classes(), 5);
        assert_eq!(m.class_offset(0), 0);
        assert_eq!(m.class_offset(1), 2);
    }

    #[test]
    fn predictions_have_expected_shapes() {
        let (mut rng, mut m) = model();
        m.add_task(&mut rng, 2);
        m.add_task(&mut rng, 3);
        let imgs = Tensor::randn(&mut rng, &[4, 1, 16, 16], 1.0);
        assert_eq!(m.predict_til(&imgs, 0).shape(), &[4, 2]);
        assert_eq!(m.predict_til(&imgs, 1).shape(), &[4, 3]);
        assert_eq!(m.predict_cil(&imgs).shape(), &[4, 5]);
        assert_eq!(m.extract_features(&imgs, 1).shape(), &[4, 32]);
    }

    #[test]
    fn til_probabilities_are_distributions() {
        let (mut rng, mut m) = model();
        m.add_task(&mut rng, 3);
        let imgs = Tensor::randn(&mut rng, &[2, 1, 16, 16], 1.0);
        let p = m.predict_til(&imgs, 0);
        let sums = p.sum_last();
        for s in sums.data() {
            assert!((s - 1.0).abs() < 1e-4);
        }
    }

    #[test]
    fn old_task_keys_frozen_after_growth() {
        let (mut rng, mut m) = model();
        m.add_task(&mut rng, 2);
        m.add_task(&mut rng, 2);
        let frozen = m.params().iter().filter(|p| !p.trainable()).count();
        assert!(frozen > 0, "task-0 keys must be frozen");
        // The verifier's expected-frozen set must be exactly the
        // non-trainable params: nothing frozen that should train, nothing
        // trainable that should be frozen.
        let expected = m.expected_frozen_params();
        assert_eq!(expected.len(), frozen);
        assert!(expected.iter().all(|p| !p.trainable()));
        assert!(expected
            .iter()
            .all(|p| p.name().contains("key0") || p.name().contains("bias0")));
    }

    #[test]
    fn expected_frozen_params_empty_with_single_task() {
        let (mut rng, mut m) = model();
        m.add_task(&mut rng, 2);
        assert!(m.expected_frozen_params().is_empty());
    }
}
