//! Offline stand-in for [`serde_json`](https://crates.io/crates/serde_json).
//!
//! Renders and parses JSON over the vendored `serde` crate's [`Value`] tree.
//! Supports [`to_string`], [`to_string_pretty`], and [`from_str`] — the
//! surface the workspace uses. Numbers are stored as `f64`; integral values
//! within `f64`'s exact-integer window print without a decimal point, so
//! `usize`/`i64` fields round-trip textually.

use serde::{Deserialize, Error, Serialize, Value};

/// Serializes `value` to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes `value` to 2-space-indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Deserializes a `T` from JSON text.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut parser = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error::msg(format!(
            "trailing characters at byte {}",
            parser.pos
        )));
    }
    T::from_value(&value)
}

// ---------------------------------------------------------------------------
// Printer
// ---------------------------------------------------------------------------

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Num(n) => write_number(out, *n),
        Value::Str(s) => write_string(out, s),
        Value::Arr(items) => write_seq(out, indent, depth, '[', ']', items.len(), |out, i| {
            write_value(out, &items[i], indent, depth + 1)
        }),
        Value::Obj(pairs) => write_seq(out, indent, depth, '{', '}', pairs.len(), |out, i| {
            let (k, v) = &pairs[i];
            write_string(out, k);
            out.push(':');
            if indent.is_some() {
                out.push(' ');
            }
            write_value(out, v, indent, depth + 1)
        }),
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(width) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', width * (depth + 1)));
        }
        item(out, i);
    }
    if let Some(width) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', width * depth));
    }
    out.push(close);
}

/// JSON's exact-integer window for `f64` (±2^53).
const EXACT_INT_BOUND: f64 = 9_007_199_254_740_992.0;

fn write_number(out: &mut String, n: f64) {
    if !n.is_finite() {
        // JSON has no Infinity/NaN; mirror serde_json's lossy choice of null.
        out.push_str("null");
    } else if n.fract() == 0.0 && n.abs() < EXACT_INT_BOUND {
        out.push_str(&format!("{}", n as i64));
    } else {
        out.push_str(&format!("{n}"));
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::msg(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Arr(items));
                        }
                        _ => {
                            return Err(Error::msg(format!(
                                "expected `,` or `]` at byte {}",
                                self.pos
                            )))
                        }
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut pairs = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Obj(pairs));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let value = self.parse_value()?;
                    pairs.push((key, value));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Obj(pairs));
                        }
                        _ => {
                            return Err(Error::msg(format!(
                                "expected `,` or `}}` at byte {}",
                                self.pos
                            )))
                        }
                    }
                }
            }
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            other => Err(Error::msg(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::msg("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error::msg("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'b' => s.push('\u{8}'),
                        b'f' => s.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error::msg("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| Error::msg("invalid \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::msg("invalid \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not produced by our printer;
                            // map lone surrogates to the replacement char.
                            s.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => {
                            return Err(Error::msg(format!("invalid escape `\\{}`", other as char)))
                        }
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 code point.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error::msg("invalid UTF-8 in string"))?;
                    let c = rest.chars().next().unwrap();
                    s.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b) if b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| Error::msg(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(to_string(&42usize).unwrap(), "42");
        assert_eq!(to_string(&-3i64).unwrap(), "-3");
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&"a\"b\n").unwrap(), r#""a\"b\n""#);
        assert_eq!(from_str::<usize>("42").unwrap(), 42);
        assert_eq!(from_str::<f64>("1.5e3").unwrap(), 1500.0);
        assert_eq!(from_str::<String>(r#""a\"b\n""#).unwrap(), "a\"b\n");
        assert_eq!(from_str::<Option<u32>>("null").unwrap(), None);
    }

    #[test]
    fn nested_structures_round_trip() {
        let v: Vec<Vec<f64>> = vec![vec![1.0, 2.5], vec![], vec![-3.0]];
        let json = to_string(&v).unwrap();
        assert_eq!(json, "[[1,2.5],[],[-3]]");
        let back: Vec<Vec<f64>> = from_str(&json).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn pretty_print_indents() {
        let v: Vec<u32> = vec![1, 2];
        assert_eq!(to_string_pretty(&v).unwrap(), "[\n  1,\n  2\n]");
    }

    #[test]
    fn object_parse_preserves_fields() {
        let v: Value = from_str(r#"{"a": 1, "b": [true, null], "c": "x"}"#).unwrap();
        assert_eq!(v.field("a"), Some(&Value::Num(1.0)));
        assert_eq!(
            v.field("b"),
            Some(&Value::Arr(vec![Value::Bool(true), Value::Null]))
        );
        assert_eq!(v.field("c"), Some(&Value::Str("x".into())));
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(from_str::<u32>("1 2").is_err());
        assert!(from_str::<Vec<u32>>("[1,]").is_err());
    }
}
