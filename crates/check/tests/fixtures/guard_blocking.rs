// Planted violation for the guard-blocking pass: a socket read while a
// mutex guard is live, inside a blocking-sensitive scope (the self-test
// maps this file to a crates/bench/src/serve/ path). Never compiled.
use std::io::Read;
use std::net::TcpStream;
use std::sync::Mutex;

pub fn drain(m: &Mutex<Vec<u8>>, conn: &mut TcpStream) {
    let g = m.lock();
    let mut buf = [0u8; 16];
    let _ = conn.read(&mut buf);
    let _ = g;
}
