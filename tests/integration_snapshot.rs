//! End-to-end snapshot persistence (DESIGN.md §10): a trained CDCL learner
//! round-trips through the versioned container **losslessly** — save →
//! load → save reproduces the exact bytes, and a restored learner's
//! TIL/CIL predictions are bitwise-identical to the original at every
//! thread count. Plus the typed-failure surface: wrong magic, wrong
//! version, and truncation come back as the matching [`SnapshotError`]
//! variant, never a panic.

use cdcl::core::{CdclConfig, CdclTrainer, ContinualLearner};
use cdcl::data::{mnist_usps, stack, MnistUspsDirection, Sample, Scale};
use cdcl::snapshot::SnapshotError;
use cdcl::tensor::kernels;
use cdcl::tensor::Tensor;

/// Trains the canonical two-task smoke workload (same as the determinism
/// suite) and returns the learner plus a stacked test batch per task.
fn trained_with_batches() -> (CdclTrainer, Vec<Tensor>) {
    let stream = mnist_usps(MnistUspsDirection::MnistToUsps, Scale::Smoke);
    let mut config = CdclConfig::smoke();
    config.epochs = 3;
    config.warmup_epochs = 1;
    let mut trainer = CdclTrainer::new(config);
    for task in stream.tasks.iter().take(2) {
        trainer.learn_task(task);
    }
    let batches = stream
        .tasks
        .iter()
        .take(2)
        .map(|t| {
            let refs: Vec<&Sample> = t.target_test.iter().take(8).collect();
            stack(&refs).0
        })
        .collect();
    (trainer, batches)
}

fn bits(t: &Tensor) -> Vec<u32> {
    t.data().iter().map(|v| v.to_bits()).collect()
}

#[test]
fn save_load_save_is_byte_identical() {
    kernels::set_num_threads(1);
    let (trainer, _) = trained_with_batches();
    let first = trainer.snapshot_bytes();
    let loaded = CdclTrainer::from_snapshot_bytes(&first)
        .unwrap_or_else(|e| panic!("own snapshot rejected: {e}"));
    let second = loaded.snapshot_bytes();
    assert_eq!(first, second, "save -> load -> save must be byte-identical");

    // Same through the file path (atomic write + resume_from).
    let dir = std::env::temp_dir().join(format!("cdcl-snap-it-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    let path = dir.join("roundtrip.cdclsnap");
    trainer.save_snapshot(&path).expect("save snapshot");
    let resumed = CdclTrainer::resume_from(&path).expect("resume from file");
    assert_eq!(resumed.snapshot_bytes(), first);
    std::fs::remove_dir_all(&dir).ok();
    kernels::set_num_threads(0);
}

#[test]
fn restored_predictions_are_bitwise_identical_across_thread_counts() {
    kernels::set_num_threads(1);
    let (trainer, batches) = trained_with_batches();
    let snapshot = trainer.snapshot_bytes();

    // Reference probabilities from the original, un-serialized learner.
    let reference_til: Vec<Vec<u32>> = (0..2)
        .map(|t| bits(&trainer.model().predict_til(&batches[t], t)))
        .collect();
    let reference_cil: Vec<Vec<u32>> = batches
        .iter()
        .map(|b| bits(&trainer.model().predict_cil(b)))
        .collect();
    drop(trainer);

    for threads in [1usize, 8] {
        kernels::set_num_threads(threads);
        let restored = CdclTrainer::from_snapshot_bytes(&snapshot)
            .unwrap_or_else(|e| panic!("load failed at {threads} threads: {e}"));
        for t in 0..2 {
            assert_eq!(
                bits(&restored.model().predict_til(&batches[t], t)),
                reference_til[t],
                "predict_til({t}) diverged after restore at {threads} threads"
            );
            assert_eq!(
                bits(&restored.model().predict_cil(&batches[t])),
                reference_cil[t],
                "predict_cil diverged after restore at {threads} threads"
            );
        }
    }
    kernels::set_num_threads(0);
}

#[test]
fn loader_failures_are_typed() {
    kernels::set_num_threads(1);
    let (trainer, _) = trained_with_batches();
    let good = trainer.snapshot_bytes();
    kernels::set_num_threads(0);

    // Wrong magic.
    let mut bad = good.clone();
    bad[0] ^= 0xFF;
    assert!(matches!(
        CdclTrainer::from_snapshot_bytes(&bad),
        Err(SnapshotError::BadMagic)
    ));

    // Unsupported future version (byte 8 is the low byte of the LE u32).
    let mut bad = good.clone();
    bad[8] = 0xFE;
    assert!(matches!(
        CdclTrainer::from_snapshot_bytes(&bad),
        Err(SnapshotError::UnsupportedVersion { .. })
    ));

    // Truncated inside the fixed header.
    assert!(matches!(
        CdclTrainer::from_snapshot_bytes(&good[..7]),
        Err(SnapshotError::Truncated { .. })
    ));

    // Trailing bytes beyond the pinned container length.
    let mut bad = good.clone();
    bad.push(0);
    assert!(matches!(
        CdclTrainer::from_snapshot_bytes(&bad),
        Err(SnapshotError::TrailingData { .. })
    ));

    // Missing file surfaces as a typed I/O error, not a panic.
    let missing = std::env::temp_dir().join("cdcl-no-such-snapshot.cdclsnap");
    assert!(matches!(
        CdclTrainer::resume_from(&missing),
        Err(SnapshotError::Io(_))
    ));
}
