//! Intra-task center-aware pseudo-labeling (paper §IV-B).
//!
//! After the warm-up stage, target-domain category centroids are built from
//! the model's *intra-task* (TIL) predictions as a weighted average of
//! pooled features (Eq. 17); pseudo-labels come from the nearest centroid
//! under cosine distance (Eq. 18); and the pair set `P` keeps, for each
//! target sample, the nearest source feature whose ground-truth label
//! matches the pseudo-label (Eq. 19) — discarding mismatches as noise.

use cdcl_tensor::Tensor;

/// Weighted class centroids (Eq. 17):
/// `c_k = Σ_i p_ik z_i / Σ_i p_ik`, where `p = softmax(TIL logits)` on the
/// target samples and `z` are pooled features.
///
/// `probs: [n, k]`, `features: [n, d]` → `[k, d]`. Classes that receive no
/// probability mass fall back to the global feature mean (never NaN).
pub fn weighted_centroids(probs: &Tensor, features: &Tensor) -> Tensor {
    assert_eq!(probs.ndim(), 2, "probs must be [n, k]");
    assert_eq!(features.ndim(), 2, "features must be [n, d]");
    assert_eq!(probs.shape()[0], features.shape()[0], "row count mismatch");
    let (n, k) = (probs.shape()[0], probs.shape()[1]);
    let d = features.shape()[1];
    let mut out = vec![0.0; k * d];
    let mut mass = vec![0.0f32; k];
    for i in 0..n {
        for c in 0..k {
            let w = probs.data()[i * k + c];
            mass[c] += w;
            for j in 0..d {
                out[c * d + j] += w * features.data()[i * d + j];
            }
        }
    }
    // Global mean fallback for empty classes.
    let mut mean = vec![0.0; d];
    for i in 0..n {
        for (j, m) in mean.iter_mut().enumerate() {
            *m += features.data()[i * d + j];
        }
    }
    for m in &mut mean {
        *m /= n.max(1) as f32;
    }
    for c in 0..k {
        if mass[c] > 1e-8 {
            for j in 0..d {
                out[c * d + j] /= mass[c];
            }
        } else {
            out[c * d..(c + 1) * d].copy_from_slice(&mean);
        }
    }
    Tensor::from_vec(out, &[k, d])
}

/// Nearest-centroid pseudo-labels under cosine distance (Eq. 18).
/// `features: [n, d]`, `centroids: [k, d]` → `n` labels in `0..k`.
pub fn nearest_centroid_labels(features: &Tensor, centroids: &Tensor) -> Vec<usize> {
    let fn_ = features.l2_normalize_last();
    let cn = centroids.l2_normalize_last();
    // cosine similarity = normalized dot product; nearest = max similarity.
    let sims = fn_.matmul(&cn.transpose_last2()); // [n, k]
    sims.argmax_last()
}

/// One matched source/target pair of Eq. 19.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pair {
    /// Index into the source sample set.
    pub source: usize,
    /// Index into the target sample set.
    pub target: usize,
    /// The shared (ground-truth source = pseudo target) task-local label.
    pub label: usize,
}

/// Builds the pair set `P` (Eq. 19): for every target sample, the nearest
/// (cosine) source feature whose ground-truth label equals the target's
/// pseudo-label. Targets whose pseudo-label has no source sample are
/// dropped — they are the "noise" the paper discards.
pub fn build_pairs(
    source_features: &Tensor,
    source_labels: &[usize],
    target_features: &Tensor,
    pseudo_labels: &[usize],
) -> Vec<Pair> {
    assert_eq!(source_features.shape()[0], source_labels.len());
    assert_eq!(target_features.shape()[0], pseudo_labels.len());
    let sn = source_features.l2_normalize_last();
    let tn = target_features.l2_normalize_last();
    let sims = tn.matmul(&sn.transpose_last2()); // [n_t, n_s]
    let n_s = source_labels.len();
    let mut pairs = Vec::with_capacity(pseudo_labels.len());
    for (t, &pl) in pseudo_labels.iter().enumerate() {
        let row = &sims.data()[t * n_s..(t + 1) * n_s];
        let mut best: Option<(usize, f32)> = None;
        for (s, &sl) in source_labels.iter().enumerate() {
            if sl != pl {
                continue;
            }
            if best.is_none_or(|(_, bv)| row[s] > bv) {
                best = Some((s, row[s]));
            }
        }
        if let Some((s, _)) = best {
            pairs.push(Pair {
                source: s,
                target: t,
                label: pl,
            });
        }
    }
    pairs
}

/// Fraction of samples whose pseudo-label changed between two assignment
/// rounds. The trainer's two-round center-aware fit emits this as the
/// `pseudo_flip_rate` telemetry scalar: a high flip rate means the
/// centroids have not stabilised and the pseudo-labels are still noisy.
pub fn label_flip_rate(prev: &[usize], next: &[usize]) -> f64 {
    assert_eq!(prev.len(), next.len(), "flip rate needs aligned rounds");
    if prev.is_empty() {
        return 0.0;
    }
    let flips = prev.iter().zip(next).filter(|(a, b)| a != b).count();
    flips as f64 / prev.len() as f64
}

/// Fraction of pseudo-labels matching the (hidden) ground truth — used by
/// tests and diagnostics only; the learner itself never sees target labels.
pub fn pseudo_label_accuracy(pseudo: &[usize], truth: &[usize]) -> f64 {
    assert_eq!(pseudo.len(), truth.len());
    if pseudo.is_empty() {
        return 0.0;
    }
    let hits = pseudo.iter().zip(truth).filter(|(a, b)| a == b).count();
    hits as f64 / pseudo.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn centroids_of_onehot_probs_are_class_means() {
        // Two classes, two samples each.
        let feats = Tensor::from_vec(
            vec![
                1.0, 0.0, //
                3.0, 0.0, //
                0.0, 2.0, //
                0.0, 4.0,
            ],
            &[4, 2],
        );
        let probs = Tensor::one_hot(&[0, 0, 1, 1], 2);
        let c = weighted_centroids(&probs, &feats);
        cdcl_tensor::assert_close(c.data(), &[2.0, 0.0, 0.0, 3.0], 1e-6);
    }

    #[test]
    fn soft_probs_interpolate_centroids() {
        let feats = Tensor::from_vec(vec![2.0, 0.0], &[1, 2]);
        let probs = Tensor::from_vec(vec![0.5, 0.5], &[1, 2]);
        let c = weighted_centroids(&probs, &feats);
        // both classes get the same single weighted feature
        cdcl_tensor::assert_close(c.data(), &[2.0, 0.0, 2.0, 0.0], 1e-6);
    }

    #[test]
    fn empty_class_falls_back_to_mean_not_nan() {
        let feats = Tensor::from_vec(vec![1.0, 1.0, 3.0, 3.0], &[2, 2]);
        let probs = Tensor::one_hot(&[0, 0], 3); // class 1, 2 empty
        let c = weighted_centroids(&probs, &feats);
        assert!(c.all_finite());
        cdcl_tensor::assert_close(&c.data()[2..4], &[2.0, 2.0], 1e-6);
    }

    #[test]
    fn nearest_centroid_assigns_by_cosine() {
        let centroids = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0], &[2, 2]);
        // Cosine ignores magnitude: (10, 1) is still class 0.
        let feats = Tensor::from_vec(vec![10.0, 1.0, 0.1, 0.5], &[2, 2]);
        assert_eq!(nearest_centroid_labels(&feats, &centroids), vec![0, 1]);
    }

    #[test]
    fn pairs_match_labels_and_proximity() {
        // sources: two class-0 (one near, one far), one class-1
        let src = Tensor::from_vec(
            vec![
                1.0, 0.0, //
                0.7, 0.7, //
                0.0, 1.0,
            ],
            &[3, 2],
        );
        let src_labels = vec![0, 0, 1];
        let tgt = Tensor::from_vec(vec![0.9, 0.1], &[1, 2]);
        let pseudo = vec![0];
        let pairs = build_pairs(&src, &src_labels, &tgt, &pseudo);
        assert_eq!(pairs.len(), 1);
        assert_eq!(pairs[0].source, 0, "nearest same-label source wins");
        assert_eq!(pairs[0].label, 0);
    }

    #[test]
    fn pairs_drop_targets_with_unmatched_pseudo_labels() {
        let src = Tensor::from_vec(vec![1.0, 0.0], &[1, 2]);
        let src_labels = vec![0];
        let tgt = Tensor::from_vec(vec![0.0, 1.0, 1.0, 0.0], &[2, 2]);
        let pseudo = vec![1, 0]; // class 1 has no source sample
        let pairs = build_pairs(&src, &src_labels, &tgt, &pseudo);
        assert_eq!(pairs.len(), 1);
        assert_eq!(pairs[0].target, 1);
    }

    #[test]
    fn pseudo_accuracy_counts_hits() {
        assert_eq!(pseudo_label_accuracy(&[0, 1, 1], &[0, 1, 0]), 2.0 / 3.0);
        assert_eq!(pseudo_label_accuracy(&[], &[]), 0.0);
    }

    #[test]
    fn flip_rate_counts_changed_labels() {
        assert_eq!(label_flip_rate(&[0, 1, 2, 1], &[0, 2, 2, 0]), 0.5);
        assert_eq!(label_flip_rate(&[1, 1], &[1, 1]), 0.0);
        assert_eq!(label_flip_rate(&[], &[]), 0.0);
    }

    #[test]
    #[should_panic(expected = "aligned rounds")]
    fn flip_rate_rejects_misaligned_rounds() {
        label_flip_rate(&[0], &[0, 1]);
    }

    #[test]
    fn well_separated_clusters_recovered_end_to_end() {
        // Generate two well-separated clusters in both "domains", run the
        // full centroid -> pseudo-label pipeline with noisy initial probs,
        // and check pseudo-labels beat chance comfortably.
        let mut rng = SmallRng::seed_from_u64(9);
        let mut feats = Vec::new();
        let mut truth = Vec::new();
        for i in 0..40 {
            let class = i % 2;
            let base = if class == 0 { [3.0, 0.0] } else { [0.0, 3.0] };
            let noise = Tensor::randn(&mut rng, &[2], 0.4);
            feats.extend_from_slice(&[base[0] + noise.data()[0], base[1] + noise.data()[1]]);
            truth.push(class);
        }
        let feats = Tensor::from_vec(feats, &[40, 2]);
        // noisy-but-informative probabilities: 70% on the true class
        let mut probs = Vec::new();
        for &t in &truth {
            probs.extend_from_slice(if t == 0 { &[0.7, 0.3] } else { &[0.3, 0.7] });
        }
        let probs = Tensor::from_vec(probs, &[40, 2]);
        let c = weighted_centroids(&probs, &feats);
        let pseudo = nearest_centroid_labels(&feats, &c);
        assert!(pseudo_label_accuracy(&pseudo, &truth) > 0.9);
    }
}
