//! Regenerates **Table III**: the DomainNet source→target matrices (rows =
//! source domain, columns = target domain) for each method, TIL and CIL,
//! plus the TVT static row.
//!
//! The full matrix is 30 pairs × 15 tasks; by default a representative
//! 6-pair subset runs (one near pair, one quickdraw pair, and the pairs the
//! paper calls out), pass `--full` for the complete 6×6 matrix.
//!
//! ```text
//! cargo run --release -p cdcl-bench --bin table3 -- --scale standard
//! ```

use cdcl_bench::{maybe_write_json, run_method, ExperimentConfig, ResultCell};
use cdcl_data::{domain_net, DomainNetDomain};
use cdcl_metrics::{format_table, TableRow};

fn main() {
    let cfg = ExperimentConfig::from_args();
    use DomainNetDomain::*;
    let pairs: Vec<(DomainNetDomain, DomainNetDomain)> = if cfg.full {
        DomainNetDomain::ALL
            .iter()
            .flat_map(|&s| {
                DomainNetDomain::ALL
                    .iter()
                    .filter(move |&&t| t != s)
                    .map(move |&t| (s, t))
            })
            .collect()
    } else {
        vec![
            (Real, Clipart),
            (Clipart, Real),
            (Real, Sketch),
            (Quickdraw, Real),
            (Infograph, Painting),
            (Sketch, Clipart),
        ]
    };

    let mut columns = Vec::new();
    let mut streams = Vec::new();
    for (s, t) in &pairs {
        columns.push(format!("{}->{}", s.label(), t.label()));
        streams.push(domain_net(*s, *t, cfg.scale));
    }
    let column_refs: Vec<&str> = columns.iter().map(String::as_str).collect();

    let mut cells: Vec<ResultCell> = Vec::new();
    let mut til_rows = Vec::new();
    let mut cil_rows = Vec::new();
    for method in &cfg.methods {
        let mut til = Vec::new();
        let mut cil = Vec::new();
        for stream in &streams {
            let r = run_method(*method, stream, &cfg);
            til.push(r.til_acc_pct());
            cil.push(r.cil_acc_pct());
            cells.push(ResultCell::from(&r));
        }
        til_rows.push(TableRow::new(method.label(), til));
        cil_rows.push(TableRow::new(method.label(), cil));
    }

    let competing: Vec<usize> = (0..cfg.methods.len()).collect();
    println!(
        "{}",
        format_table(
            "Table III (TIL): ACC on DomainNet (source->target)",
            &column_refs,
            &til_rows,
            &competing
        )
    );
    println!(
        "{}",
        format_table(
            "Table III (CIL): ACC on DomainNet (source->target)",
            &column_refs,
            &cil_rows,
            &competing
        )
    );
    maybe_write_json(&cfg.out, &cells);
}
