//! `persistence-smoke`: proves the crash-safe checkpoint/resume contract
//! end to end, across real process boundaries.
//!
//! The contract (DESIGN.md §10): training that is interrupted at a task
//! boundary and resumed from the `CDCL_CKPT_DIR` checkpoint must finish
//! **bitwise identical** — every parameter and every final R-matrix entry —
//! to a run that was never interrupted.
//!
//! Three phases, so CI can genuinely kill the process between them:
//!
//! ```text
//! persistence-smoke --ckpt-dir ckpts --phase interrupt   # task 0, then exit
//! persistence-smoke --ckpt-dir ckpts --phase resume      # resume, task 1, diff
//! persistence-smoke --ckpt-dir ckpts                     # both, in-process
//! ```
//!
//! The `resume` phase re-trains the uninterrupted reference in-process
//! (checkpointing disabled) and exits non-zero on the first mismatch.
//! `--emit-requests <path>` additionally dumps JSONL prediction requests
//! from the final task's test samples for piping into `cdcl-serve`.

use cdcl_core::{CdclConfig, CdclTrainer, ContinualLearner};
use cdcl_data::{mnist_usps, CrossDomainStream, MnistUspsDirection, Sample, Scale};
use cdcl_nn::Module;
use serde::Serialize;
use std::io::Write;
use std::path::{Path, PathBuf};

/// Tasks trained by the smoke stream.
const TASKS: usize = 2;

#[derive(Debug, PartialEq, Eq, Clone, Copy)]
enum Phase {
    /// Train task 0 with checkpointing, then exit (the "crash").
    Interrupt,
    /// Resume from the task-0 checkpoint, train task 1, diff against an
    /// uninterrupted in-process reference run.
    Resume,
    /// Both phases in one process (still crosses a trainer drop/rebuild).
    Full,
}

struct Args {
    ckpt_dir: PathBuf,
    phase: Phase,
    emit_requests: Option<PathBuf>,
}

fn parse_args() -> Args {
    let mut args = Args {
        ckpt_dir: PathBuf::new(),
        phase: Phase::Full,
        emit_requests: None,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--ckpt-dir" => {
                i += 1;
                args.ckpt_dir = PathBuf::from(&argv[i]);
            }
            "--phase" => {
                i += 1;
                args.phase = match argv[i].as_str() {
                    "interrupt" => Phase::Interrupt,
                    "resume" => Phase::Resume,
                    "full" => Phase::Full,
                    other => panic!("unknown phase {other} (interrupt|resume|full)"),
                };
            }
            "--emit-requests" => {
                i += 1;
                args.emit_requests = Some(PathBuf::from(&argv[i]));
            }
            other => panic!("unknown argument {other}; known: --ckpt-dir --phase --emit-requests"),
        }
        i += 1;
    }
    assert!(
        !args.ckpt_dir.as_os_str().is_empty(),
        "--ckpt-dir <dir> is required"
    );
    args
}

/// The fixed smoke workload — must match the determinism suite so the
/// bitwise claim is checked against the same configuration CI trusts.
fn smoke_stream() -> CrossDomainStream {
    mnist_usps(MnistUspsDirection::MnistToUsps, Scale::Smoke)
}

fn smoke_config() -> CdclConfig {
    let mut config = CdclConfig::smoke();
    config.epochs = 3;
    config.warmup_epochs = 1;
    config
}

/// Final parameter tensors plus the final R-matrix row (TIL accuracy on
/// every seen task, and the CIL accuracies) of a trained learner.
struct FinalState {
    params: Vec<(String, Vec<f32>)>,
    til_row: Vec<f64>,
    cil_row: Vec<f64>,
}

fn final_state(trainer: &CdclTrainer, stream: &CrossDomainStream) -> FinalState {
    let params = trainer
        .model()
        .params()
        .into_iter()
        .map(|p| (p.name(), p.value().data().to_vec()))
        .collect();
    let til_row = (0..TASKS)
        .map(|t| trainer.eval_til(t, &stream.tasks[t].target_test))
        .collect();
    let cil_row = (0..TASKS)
        .map(|t| trainer.eval_cil(t, &stream.tasks[t].target_test))
        .collect();
    FinalState {
        params,
        til_row,
        cil_row,
    }
}

/// Trains all `TASKS` tasks start-to-finish with checkpointing disabled —
/// the uninterrupted reference.
fn run_uninterrupted(stream: &CrossDomainStream) -> CdclTrainer {
    std::env::remove_var("CDCL_CKPT_DIR");
    let mut trainer = CdclTrainer::new(smoke_config());
    for task in stream.tasks.iter().take(TASKS) {
        trainer.learn_task(task);
    }
    trainer
}

/// Trains task 0 only, checkpointing into `ckpt_dir` (the trainer writes
/// `task000.cdclsnap` atomically at the task boundary).
fn run_interrupted(stream: &CrossDomainStream, ckpt_dir: &Path) {
    std::fs::create_dir_all(ckpt_dir)
        .unwrap_or_else(|e| panic!("create {}: {e}", ckpt_dir.display()));
    std::env::set_var("CDCL_CKPT_DIR", ckpt_dir);
    let mut trainer = CdclTrainer::new(smoke_config());
    trainer.learn_task(&stream.tasks[0]);
    // The trainer is dropped here without ever seeing task 1 — the process
    // (or phase) ends, and only the durable checkpoint survives.
}

/// Resumes from the task-0 checkpoint and finishes training. Checkpointing
/// stays enabled so the resumed run also writes `task001.cdclsnap` — the
/// artifact `cdcl-serve` loads.
fn run_resumed(stream: &CrossDomainStream, ckpt_dir: &Path) -> CdclTrainer {
    std::env::set_var("CDCL_CKPT_DIR", ckpt_dir);
    let ckpt = ckpt_dir.join("task000.cdclsnap");
    let mut trainer = CdclTrainer::resume_from(&ckpt)
        .unwrap_or_else(|e| panic!("resume from {}: {e}", ckpt.display()));
    trainer.learn_task(&stream.tasks[1]);
    trainer
}

/// Diffs the resumed run against the reference; returns mismatch count.
fn diff(reference: &FinalState, resumed: &FinalState) -> usize {
    let mut mismatches = 0;
    if reference.params.len() != resumed.params.len() {
        eprintln!(
            "FAIL param count: reference {} vs resumed {}",
            reference.params.len(),
            resumed.params.len()
        );
        return 1;
    }
    for ((name_a, data_a), (name_b, data_b)) in reference.params.iter().zip(&resumed.params) {
        if name_a != name_b {
            eprintln!("FAIL param order: {name_a} vs {name_b}");
            mismatches += 1;
            continue;
        }
        if data_a != data_b {
            let first = data_a
                .iter()
                .zip(data_b)
                .position(|(a, b)| a.to_bits() != b.to_bits());
            eprintln!("FAIL param {name_a}: first differing element at {first:?}");
            mismatches += 1;
        }
    }
    for t in 0..TASKS {
        if reference.til_row[t].to_bits() != resumed.til_row[t].to_bits() {
            eprintln!(
                "FAIL R-matrix TIL[{t}]: reference {} vs resumed {}",
                reference.til_row[t], resumed.til_row[t]
            );
            mismatches += 1;
        }
        if reference.cil_row[t].to_bits() != resumed.cil_row[t].to_bits() {
            eprintln!(
                "FAIL R-matrix CIL[{t}]: reference {} vs resumed {}",
                reference.cil_row[t], resumed.cil_row[t]
            );
            mismatches += 1;
        }
    }
    mismatches
}

#[derive(Serialize)]
struct ServeRequest {
    id: u64,
    mode: String,
    task: Option<usize>,
    image: Vec<f32>,
}

/// Writes JSONL `cdcl-serve` requests built from the test samples: a TIL
/// request per task plus CIL requests, blank-line separated into two
/// micro-batches.
fn emit_requests(path: &Path, stream: &CrossDomainStream) {
    let per_task = 4usize;
    let mut out = String::new();
    let mut id = 0u64;
    let push = |req: &ServeRequest, out: &mut String| {
        out.push_str(&serde_json::to_string(req).expect("serialize request"));
        out.push('\n');
    };
    for (t, task) in stream.tasks.iter().take(TASKS).enumerate() {
        for sample in task.target_test.iter().take(per_task) {
            id += 1;
            push(
                &ServeRequest {
                    id,
                    mode: "til".to_string(),
                    task: Some(t),
                    image: sample.image.data().to_vec(),
                },
                &mut out,
            );
        }
    }
    out.push('\n'); // flush boundary between the TIL and CIL micro-batches
    let cil_samples: Vec<&Sample> = stream
        .tasks
        .iter()
        .take(TASKS)
        .flat_map(|t| t.target_test.iter().take(per_task))
        .collect();
    for sample in cil_samples {
        id += 1;
        push(
            &ServeRequest {
                id,
                mode: "cil".to_string(),
                task: None,
                image: sample.image.data().to_vec(),
            },
            &mut out,
        );
    }
    let mut file =
        std::fs::File::create(path).unwrap_or_else(|e| panic!("create {}: {e}", path.display()));
    file.write_all(out.as_bytes())
        .unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
    eprintln!(
        "persistence-smoke: {id} serve requests written to {}",
        path.display()
    );
}

fn main() {
    let args = parse_args();
    let stream = smoke_stream();

    if args.phase == Phase::Interrupt {
        run_interrupted(&stream, &args.ckpt_dir);
        let ckpt = args.ckpt_dir.join("task000.cdclsnap");
        assert!(ckpt.is_file(), "checkpoint {} missing", ckpt.display());
        eprintln!(
            "persistence-smoke: task 0 trained, checkpoint at {} — exiting before task 1",
            ckpt.display()
        );
        return;
    }

    if args.phase == Phase::Full {
        run_interrupted(&stream, &args.ckpt_dir);
    }
    let resumed = run_resumed(&stream, &args.ckpt_dir);
    let resumed_state = final_state(&resumed, &stream);
    drop(resumed);

    let reference = run_uninterrupted(&stream);
    let reference_state = final_state(&reference, &stream);

    let mismatches = diff(&reference_state, &resumed_state);
    if let Some(path) = &args.emit_requests {
        emit_requests(path, &stream);
    }
    if mismatches > 0 {
        eprintln!("persistence-smoke: FAILED with {mismatches} mismatch(es)");
        std::process::exit(1);
    }
    println!(
        "persistence-smoke: OK — interrupted+resumed run is bitwise-identical \
         ({} params, TIL row {:?}, CIL row {:?})",
        reference_state.params.len(),
        reference_state.til_row,
        reference_state.cil_row
    );
}
