//! Property tests of the graph verifier (DESIGN.md §9): for randomly built
//! graphs, the shape `Graph::check_shapes` *infers* for every node must
//! equal the shape the kernels actually *executed* — and the agreement must
//! hold at every thread count, since inference is purely symbolic while
//! execution goes through the parallel kernel pool.

use cdcl_autograd::{Graph, Param, Var};
use cdcl_tensor::kernels;
use cdcl_tensor::{Conv2dSpec, Pool2dSpec, Tensor};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Op codes drawn by proptest; each grows the chain by one node while
/// keeping the running value rank-2 so every op stays applicable.
const OP_KINDS: usize = 10;

/// Applies op `code` to `cur` (shape `[r, c]`), returning the new var and
/// its new (r, c). Extra leaves are fed from `rng` so values vary per case.
fn apply_op(
    g: &mut Graph,
    rng: &mut SmallRng,
    cur: Var,
    r: usize,
    c: usize,
    code: usize,
) -> (Var, usize, usize) {
    match code % OP_KINDS {
        0 => (g.relu(cur), r, c),
        1 => (g.gelu(cur), r, c),
        2 => (g.softmax_last(cur), r, c),
        3 => {
            let other = g.input(Tensor::randn(rng, &[r, c], 0.5));
            (g.add(cur, other), r, c)
        }
        4 => {
            let other = g.input(Tensor::randn(rng, &[r, c], 0.5));
            (g.mul(cur, other), r, c)
        }
        5 => {
            let other = g.input(Tensor::randn(rng, &[r, c], 0.5));
            (g.sub(cur, other), r, c)
        }
        6 => {
            let c2 = 1 + (code / OP_KINDS) % 3;
            let w = g.input(Tensor::randn(rng, &[c, c2], 0.5));
            (g.matmul(cur, w), r, c2)
        }
        7 => {
            let r2 = 1 + (code / OP_KINDS) % 3;
            let w = g.input(Tensor::randn(rng, &[r2, c], 0.5));
            (g.matmul_nt(cur, w), r, r2)
        }
        8 => (g.transpose_last2(cur), c, r),
        _ => (g.reshape(cur, &[c, r]), c, r),
    }
}

/// Builds a random op chain and returns `(graph, loss, chain-node shapes)`.
fn build_chain(seed: u64, r0: usize, c0: usize, codes: &[usize]) -> (Graph, Var, Vec<Vec<usize>>) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut g = Graph::new();
    let p = Param::new("chain.p", Tensor::randn(&mut rng, &[r0, c0], 0.5));
    let mut cur = g.param(&p);
    let mut chain = vec![cur];
    let (mut r, mut c) = (r0, c0);
    for &code in codes {
        let (next, nr, nc) = apply_op(&mut g, &mut rng, cur, r, c, code);
        cur = next;
        r = nr;
        c = nc;
        chain.push(cur);
    }
    // Join through concat + softmax so the tail exercises the multi-input
    // and last-axis rules too, then reduce to a scalar loss.
    let doubled = g.concat0(&[cur, cur]);
    let lp = g.log_softmax_last(doubled);
    let s = g.sum_last(lp);
    let loss = g.mean_all(s);
    chain.extend([doubled, lp, s, loss]);
    let shapes = chain.iter().map(|&v| g.value(v).shape().to_vec()).collect();
    (g, loss, shapes)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// For any random chain, the verifier's inferred shapes agree with the
    /// executed node shapes at 1 and 8 threads, and execution itself is
    /// thread-count invariant.
    #[test]
    fn inferred_shapes_match_executed_at_any_thread_count(
        seed in 0u64..1000,
        r0 in 1usize..4,
        c0 in 1usize..4,
        codes in prop::collection::vec(0usize..30, 1..8),
    ) {
        let mut per_thread = Vec::new();
        for threads in [1usize, 8] {
            kernels::set_num_threads(threads);
            let (mut g, loss, shapes) = build_chain(seed, r0, c0, &codes);
            // Inference must agree with what the kernels produced…
            prop_assert!(g.check_shapes().is_ok(), "at {} threads", threads);
            // …and stay valid after backward extends nothing but grads.
            g.backward(loss);
            prop_assert!(g.check_shapes().is_ok(), "post-backward at {} threads", threads);
            per_thread.push(shapes);
        }
        kernels::set_num_threads(0);
        prop_assert_eq!(&per_thread[0], &per_thread[1]);
    }

    /// Same property through the conv → pool → flatten → classifier path,
    /// whose inference rules (im2col spec, argmax bookkeeping) are the most
    /// intricate in the verifier.
    #[test]
    fn conv_pool_chain_inference_matches_execution(
        seed in 0u64..1000,
        batch in 1usize..3,
        cin in 1usize..3,
        cout in 1usize..4,
        side in 6usize..10,
        kernel in 2usize..4,
    ) {
        for threads in [1usize, 8] {
            kernels::set_num_threads(threads);
            let mut rng = SmallRng::seed_from_u64(seed);
            let mut g = Graph::new();
            let x = g.input(Tensor::randn(&mut rng, &[batch, cin, side, side], 0.5));
            let w = g.input(Tensor::randn(&mut rng, &[cout, cin, kernel, kernel], 0.5));
            let b = g.input(Tensor::randn(&mut rng, &[cout], 0.5));
            let spec = Conv2dSpec { kernel, stride: 1, padding: 1 };
            let y = g.conv2d(x, w, Some(b), spec);
            let y = g.relu(y);
            let y = g.maxpool2d(y, Pool2dSpec { kernel: 2, stride: 2 });
            let conv_side = side + 2 - kernel + 1;
            let out_side = (conv_side - 2) / 2 + 1;
            let flat = g.reshape(y, &[batch, cout * out_side * out_side]);
            let head = g.input(Tensor::randn(&mut rng, &[cout * out_side * out_side, 3], 0.5));
            let logits = g.matmul(flat, head);
            let lp = g.log_softmax_last(logits);
            let targets: Vec<usize> = (0..batch).map(|i| i % 3).collect();
            let loss = g.nll_loss(lp, &targets);
            prop_assert!(g.check_shapes().is_ok(), "at {} threads", threads);
            g.backward(loss);
            prop_assert!(g.check_shapes().is_ok(), "post-backward at {} threads", threads);
        }
        kernels::set_num_threads(0);
    }
}
