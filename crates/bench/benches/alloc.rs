//! Steady-state allocation profile of the training step (DESIGN.md §12).
//!
//! Drives a realistic forward + backward + SGD step — conv tokenizer,
//! attention encoder, TIL head, nll loss — through a *persistent*
//! [`Graph`] with `reset_for_step` between iterations, exactly like the
//! trainer's step loop, and measures the tensor-pool counters:
//!
//! * `allocs_per_step` / `alloc_bytes_per_step` — pool misses after
//!   warm-up (the zero-alloc contract: ~0 once every shape has been seen);
//! * `pool_hit_rate` — fraction of buffer requests recycled in the
//!   measured window;
//! * `resident_bytes` — what the free lists pin at steady state;
//! * the same step with the pool disabled (`CDCL_POOL=0` path), as the
//!   baseline the pool is saving against.
//!
//! Writes `BENCH_alloc.json` at the workspace root; CI soft-gates it with
//! `bench-diff` (hit rate must not drop, allocs/step must not rise).

use std::time::Duration;

use cdcl_autograd::Graph;
use cdcl_nn::{AttentionMode, Backbone, BackboneConfig, Module, TilHeads};
use cdcl_optim::{Optimizer, Sgd};
use cdcl_tensor::{pool, Tensor};
use criterion::{black_box, criterion_group, Criterion};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use serde::Serialize;

const BATCH: usize = 8;
const HW: usize = 16;
const EMBED: usize = 32;
const CLASSES: usize = 4;
const WARMUP_STEPS: usize = 5;
const MEASURED_STEPS: usize = 20;

struct TrainRig {
    backbone: Backbone,
    heads: TilHeads,
    opt: Sgd,
    graph: Graph,
    img: Tensor,
    labels: Vec<usize>,
}

fn rig() -> TrainRig {
    let mut rng = SmallRng::seed_from_u64(7);
    let config = BackboneConfig {
        in_channels: 1,
        in_hw: (HW, HW),
        embed_dim: EMBED,
        depth: 2,
        tokenizer_stages: 2,
        tokenizer_kernel: 3,
        mlp_ratio: 2,
        attention: AttentionMode::TaskKeyed,
        attn_softmax: true,
    };
    let mut backbone = Backbone::new(&mut rng, config);
    backbone.add_task(&mut rng);
    let mut heads = TilHeads::new(EMBED);
    heads.add_task(&mut rng, CLASSES);
    let mut params = backbone.params();
    params.extend(heads.params());
    let opt = Sgd::new(params, 0.9);
    let img = Tensor::randn(&mut rng, &[BATCH, 1, HW, HW], 1.0);
    let labels: Vec<usize> = (0..BATCH).map(|i| i % CLASSES).collect();
    TrainRig {
        backbone,
        heads,
        opt,
        graph: Graph::new(),
        img,
        labels,
    }
}

/// One full training step on the persistent graph — the trainer's
/// reset / record / backward / update cycle.
fn step(r: &mut TrainRig) -> f32 {
    r.graph.reset_for_step();
    let x = r.graph.input(r.img.clone());
    let z = r.backbone.features_self(&mut r.graph, x, 0);
    let logits = r.heads.forward(&mut r.graph, z, 0);
    let lp = r.graph.log_softmax_last(logits);
    let loss = r.graph.nll_loss(lp, &r.labels);
    r.graph.backward(loss);
    r.opt.step(0.05);
    r.opt.zero_grad();
    r.graph.value(loss).data()[0]
}

#[derive(Serialize)]
struct ModeResult {
    mode: String,
    allocs_per_step: f64,
    alloc_bytes_per_step: f64,
    pool_hit_rate: f64,
    resident_bytes: f64,
}

#[derive(Serialize)]
struct Report {
    bench: String,
    batch: usize,
    hw: usize,
    embed_dim: usize,
    warmup_steps: usize,
    measured_steps: usize,
    note: String,
    results: Vec<ModeResult>,
}

/// Runs warm-up then measured steps at the given pool setting and returns
/// the per-step counter deltas over the measured window.
fn profile(pooled: bool) -> ModeResult {
    pool::set_enabled(pooled);
    let mut r = rig();
    for _ in 0..WARMUP_STEPS {
        black_box(step(&mut r));
    }
    let before = pool::pool_stats();
    for _ in 0..MEASURED_STEPS {
        black_box(step(&mut r));
    }
    let delta = pool::pool_stats().delta_since(&before);
    pool::set_enabled(true);
    ModeResult {
        mode: if pooled { "pooled" } else { "unpooled" }.to_string(),
        allocs_per_step: delta.misses as f64 / MEASURED_STEPS as f64,
        alloc_bytes_per_step: delta.alloc_bytes as f64 / MEASURED_STEPS as f64,
        pool_hit_rate: delta.hit_rate(),
        resident_bytes: delta.resident_bytes as f64,
    }
}

fn bench_step(c: &mut Criterion) {
    let mut group = c.benchmark_group("train_step");
    for pooled in [true, false] {
        pool::set_enabled(pooled);
        let mut r = rig();
        for _ in 0..WARMUP_STEPS {
            black_box(step(&mut r));
        }
        let id = if pooled { "pooled" } else { "unpooled" };
        group.bench_function(id, |bench| bench.iter(|| black_box(step(&mut r))));
    }
    pool::set_enabled(true);
    group.finish();
}

fn emit_json() {
    let results = vec![profile(true), profile(false)];
    let report = Report {
        bench: "alloc".to_string(),
        batch: BATCH,
        hw: HW,
        embed_dim: EMBED,
        warmup_steps: WARMUP_STEPS,
        measured_steps: MEASURED_STEPS,
        note: "pool counters over the measured window; unpooled mode counts every \
               buffer as a miss (the allocation volume the pool recycles)"
            .to_string(),
        results,
    };
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_alloc.json");
    let json = serde_json::to_string_pretty(&report).expect("serialize bench report");
    std::fs::write(path, json).expect("write BENCH_alloc.json");
    println!("wrote {path}");
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_millis(400))
        .warm_up_time(Duration::from_millis(100));
    targets = bench_step
}

fn main() {
    benches();
    emit_json();
}
