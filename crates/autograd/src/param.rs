//! Trainable parameter cells shared between modules, graphs, and optimizers.

use std::fmt;
use std::sync::{Arc, RwLock};

use cdcl_tensor::Tensor;

struct ParamInner {
    name: String,
    value: Tensor,
    grad: Tensor,
    trainable: bool,
    lr_scale: f32,
}

/// A named, reference-counted trainable tensor with an accumulated gradient.
///
/// Cloning a `Param` is cheap and aliases the same storage — modules hand
/// clones to optimizers and graphs. Storage is `Arc<RwLock>`, so a model is
/// `Send + Sync` and read-only passes (evaluation, feature extraction) can
/// run on the worker threads of `cdcl_tensor::kernels::pool`. Training
/// steps remain sequential; the lock is uncontended there and its overhead
/// is noise next to the GEMMs.
#[derive(Clone)]
pub struct Param {
    inner: Arc<RwLock<ParamInner>>,
}

impl Param {
    /// Creates a trainable parameter with a zeroed gradient.
    pub fn new(name: impl Into<String>, value: Tensor) -> Self {
        let grad = Tensor::zeros(value.shape());
        Self {
            inner: Arc::new(RwLock::new(ParamInner {
                name: name.into(),
                value,
                grad,
                trainable: true,
                lr_scale: 1.0,
            })),
        }
    }

    /// Parameter name (for diagnostics).
    pub fn name(&self) -> String {
        self.inner.read().expect("param lock poisoned").name.clone()
    }

    /// Snapshot of the current value.
    pub fn value(&self) -> Tensor {
        self.inner
            .read()
            .expect("param lock poisoned")
            .value
            .clone()
    }

    /// Snapshot of the accumulated gradient.
    pub fn grad(&self) -> Tensor {
        self.inner.read().expect("param lock poisoned").grad.clone()
    }

    /// Shape of the parameter.
    pub fn shape(&self) -> Vec<usize> {
        self.inner
            .read()
            .expect("param lock poisoned")
            .value
            .shape()
            .to_vec()
    }

    /// Number of scalar entries.
    pub fn num_elements(&self) -> usize {
        self.inner.read().expect("param lock poisoned").value.len()
    }

    /// Overwrites the value (e.g. when loading a checkpoint).
    pub fn set_value(&self, value: Tensor) {
        let mut inner = self.inner.write().expect("param lock poisoned");
        assert_eq!(
            inner.value.shape(),
            value.shape(),
            "set_value shape mismatch on {}",
            inner.name
        );
        inner.value = value;
    }

    /// Fallible [`Param::set_value`] for checkpoint loaders: a shape
    /// mismatch is reported instead of panicking, so a corrupt snapshot can
    /// be rejected with a typed error.
    pub fn try_set_value(&self, value: Tensor) -> Result<(), String> {
        let mut inner = self.inner.write().expect("param lock poisoned");
        if inner.value.shape() != value.shape() {
            return Err(format!(
                "shape mismatch on {}: have {:?}, snapshot has {:?}",
                inner.name,
                inner.value.shape(),
                value.shape()
            ));
        }
        inner.value = value;
        Ok(())
    }

    /// Per-parameter learning-rate multiplier (default 1). Freshly created
    /// task-specific projections use a boost so they can adapt within a
    /// small per-task epoch budget.
    pub fn lr_scale(&self) -> f32 {
        self.inner.read().expect("param lock poisoned").lr_scale
    }

    /// Sets the per-parameter learning-rate multiplier.
    pub fn set_lr_scale(&self, scale: f32) {
        assert!(scale > 0.0, "lr_scale must be positive");
        self.inner.write().expect("param lock poisoned").lr_scale = scale;
    }

    /// Whether the optimizer and backward pass may touch this parameter.
    pub fn trainable(&self) -> bool {
        self.inner.read().expect("param lock poisoned").trainable
    }

    /// Freezes (`false`) or unfreezes (`true`) the parameter. Frozen
    /// parameters ignore gradient accumulation entirely — this is how the
    /// paper's task-specific `K_i`/`b_i` projections of past tasks are kept
    /// intact (§IV-A: "previously learned K and b are frozen").
    pub fn set_trainable(&self, trainable: bool) {
        self.inner.write().expect("param lock poisoned").trainable = trainable;
    }

    /// Adds `g` into the stored gradient (no-op when frozen).
    pub fn accumulate_grad(&self, g: &Tensor) {
        let mut inner = self.inner.write().expect("param lock poisoned");
        if !inner.trainable {
            return;
        }
        assert_eq!(
            inner.grad.shape(),
            g.shape(),
            "gradient shape mismatch on {}",
            inner.name
        );
        inner.grad.add_assign_scaled(g, 1.0);
    }

    /// Sum of squared entries of the accumulated gradient, computed in
    /// place under the read lock (no tensor clone). Telemetry sums this
    /// across parameters and feeds `sqrt` of the total to the NaN/Inf
    /// watchdog; a non-finite gradient anywhere makes the result
    /// non-finite, so a single scalar check covers the whole model.
    pub fn grad_norm_sq(&self) -> f64 {
        self.inner
            .read()
            .expect("param lock poisoned")
            .grad
            .data()
            .iter()
            .map(|&g| f64::from(g) * f64::from(g))
            .sum()
    }

    /// Clears the accumulated gradient.
    pub fn zero_grad(&self) {
        self.inner
            .write()
            .expect("param lock poisoned")
            .grad
            .fill(0.0);
    }

    /// Runs `f(value, grad)` with mutable access to the value — the hook
    /// optimizers use to apply an update in place.
    pub fn apply_update(&self, f: impl FnOnce(&mut Tensor, &Tensor)) {
        let inner = &mut *self.inner.write().expect("param lock poisoned");
        f(&mut inner.value, &inner.grad);
    }

    /// Identity key: two clones of the same parameter compare equal.
    pub fn key(&self) -> usize {
        Arc::as_ptr(&self.inner) as *const () as usize
    }

    /// True when `other` aliases the same storage.
    pub fn same(&self, other: &Param) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
    }
}

impl fmt::Debug for Param {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let inner = self.inner.read().expect("param lock poisoned");
        write!(
            f,
            "Param({} {:?} trainable={})",
            inner.name,
            inner.value.shape(),
            inner.trainable
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_alias_storage() {
        let p = Param::new("w", Tensor::zeros(&[2]));
        let q = p.clone();
        q.set_value(Tensor::from_vec(vec![1.0, 2.0], &[2]));
        assert_eq!(p.value().data(), &[1.0, 2.0]);
        assert!(p.same(&q));
        assert_eq!(p.key(), q.key());
    }

    #[test]
    fn grad_accumulates_and_zeroes() {
        let p = Param::new("w", Tensor::zeros(&[2]));
        let g = Tensor::from_vec(vec![1.0, -1.0], &[2]);
        p.accumulate_grad(&g);
        p.accumulate_grad(&g);
        assert_eq!(p.grad().data(), &[2.0, -2.0]);
        p.zero_grad();
        assert_eq!(p.grad().data(), &[0.0, 0.0]);
    }

    #[test]
    fn grad_norm_sq_reflects_accumulated_grads() {
        let p = Param::new("w", Tensor::zeros(&[2]));
        assert_eq!(p.grad_norm_sq(), 0.0);
        p.accumulate_grad(&Tensor::from_vec(vec![3.0, 4.0], &[2]));
        assert!((p.grad_norm_sq() - 25.0).abs() < 1e-9);
        // A poisoned gradient makes the norm non-finite (watchdog-visible).
        p.accumulate_grad(&Tensor::from_vec(vec![f32::NAN, 0.0], &[2]));
        assert!(p.grad_norm_sq().is_nan());
    }

    #[test]
    fn frozen_param_ignores_grads() {
        let p = Param::new("k", Tensor::zeros(&[2]));
        p.set_trainable(false);
        p.accumulate_grad(&Tensor::ones(&[2]));
        assert_eq!(p.grad().data(), &[0.0, 0.0]);
        assert!(!p.trainable());
        p.set_trainable(true);
        p.accumulate_grad(&Tensor::ones(&[2]));
        assert_eq!(p.grad().data(), &[1.0, 1.0]);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn set_value_rejects_shape_change() {
        let p = Param::new("w", Tensor::zeros(&[2]));
        p.set_value(Tensor::zeros(&[3]));
    }

    #[test]
    fn apply_update_mutates_value() {
        let p = Param::new("w", Tensor::ones(&[2]));
        p.accumulate_grad(&Tensor::from_vec(vec![0.5, 1.0], &[2]));
        p.apply_update(|v, g| v.add_assign_scaled(g, -1.0));
        assert_eq!(p.value().data(), &[0.5, 0.0]);
    }
}
