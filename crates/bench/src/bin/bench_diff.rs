//! `bench-diff`: regression gate between two `BENCH_*.json` files.
//!
//! Compares a committed baseline against a freshly generated bench report,
//! field by field, and emits a Markdown delta table. Only fields with a
//! known "better" direction are *gated*: throughput-like keys
//! (`*ops_per_sec`, `throughput*`, `*rps`, `speedup`) must not drop by more
//! than `--tolerance`, and latency-like keys (path contains `latency`) must
//! not rise by more than it. Everything else numeric is reported as
//! informational. Exit status: `0` clean, `1` regression beyond tolerance
//! (`--soft` downgrades that to a warning + exit 0), `2` usage/IO error.
//!
//! ```text
//! bench-diff BENCH_kernels.baseline.json BENCH_kernels.json \
//!     --tolerance 0.10 --out bench-diff.md
//! bench-diff --self-test     # verifies the gate trips on a synthetic regression
//! ```
//!
//! Rows are matched by a structural path: object fields join with `.`, and
//! array elements of objects are labelled by their identifying fields
//! (`kernel`, `name`, `n`, `batch`, ...) so reordering results between runs
//! does not misalign the comparison.

use serde::Value;

/// Relative change direction that counts as a regression.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Direction {
    HigherBetter,
    LowerBetter,
    Info,
}

/// One compared numeric leaf.
#[derive(Debug)]
struct Delta {
    path: String,
    baseline: f64,
    current: f64,
    direction: Direction,
}

impl Delta {
    /// Signed relative change, `current` vs `baseline`.
    fn rel(&self) -> f64 {
        if self.baseline == 0.0 {
            if self.current == 0.0 {
                0.0
            } else {
                f64::INFINITY * self.current.signum()
            }
        } else {
            (self.current - self.baseline) / self.baseline.abs()
        }
    }

    /// Whether this row violates the tolerance in its gated direction.
    fn regressed(&self, tolerance: f64) -> bool {
        match self.direction {
            Direction::HigherBetter => self.rel() < -tolerance,
            Direction::LowerBetter => self.rel() > tolerance,
            Direction::Info => false,
        }
    }
}

/// Classifies a leaf path into a gating direction by its last key.
fn direction_for(path: &str) -> Direction {
    let key = path.rsplit('.').next().unwrap_or(path);
    if key.ends_with("ops_per_sec")
        || key.starts_with("throughput")
        || key.ends_with("rps")
        || key == "speedup"
        || key.ends_with("hit_rate")
    {
        Direction::HigherBetter
    } else if path.contains("latency")
        || path.contains("_stage_")
        || path.contains("_to_visible")
        || path.contains("e2e")
        || key.ends_with("per_step")
        || key == "lag"
        || matches!(key, "p50" | "p90" | "p95" | "p99")
    {
        // Allocation-profile keys (`allocs_per_step`, `alloc_bytes_per_step`)
        // gate downward: the zero-alloc steady state must not regress.
        Direction::LowerBetter
    } else {
        Direction::Info
    }
}

/// Keys that identify an array element of an object (used to build stable
/// row labels so result reordering cannot misalign the diff).
const LABEL_KEYS: [&str; 7] = ["kernel", "name", "bench", "mode", "n", "batch", "d"];

fn element_label(v: &Value, index: usize) -> String {
    if let Value::Obj(fields) = v {
        let parts: Vec<String> = LABEL_KEYS
            .iter()
            .filter_map(|&k| {
                fields
                    .iter()
                    .find(|(name, _)| name == k)
                    .map(|(_, fv)| match fv {
                        Value::Str(s) => format!("{k}={s}"),
                        Value::Num(n) => format!("{k}={n}"),
                        other => format!("{k}={other:?}"),
                    })
            })
            .collect();
        if !parts.is_empty() {
            return format!("[{}]", parts.join(","));
        }
    }
    format!("[{index}]")
}

/// Flattens every numeric leaf to a `(path, value)` pair.
fn flatten(v: &Value, path: &str, out: &mut Vec<(String, f64)>) {
    match v {
        Value::Num(n) => out.push((path.to_string(), *n)),
        Value::Obj(fields) => {
            for (k, fv) in fields {
                let sub = if path.is_empty() {
                    k.clone()
                } else {
                    format!("{path}.{k}")
                };
                flatten(fv, &sub, out);
            }
        }
        Value::Arr(items) => {
            for (i, item) in items.iter().enumerate() {
                let sub = format!("{path}{}", element_label(item, i));
                flatten(item, &sub, out);
            }
        }
        _ => {}
    }
}

/// Pairs up baseline/current leaves by path (baseline order, unmatched
/// paths reported separately).
fn compare(baseline: &Value, current: &Value) -> (Vec<Delta>, Vec<String>, Vec<String>) {
    let mut base_leaves = Vec::new();
    let mut cur_leaves = Vec::new();
    flatten(baseline, "", &mut base_leaves);
    flatten(current, "", &mut cur_leaves);
    let mut deltas = Vec::new();
    let mut missing = Vec::new();
    for (path, bval) in &base_leaves {
        match cur_leaves.iter().find(|(p, _)| p == path) {
            Some((_, cval)) => deltas.push(Delta {
                path: path.clone(),
                baseline: *bval,
                current: *cval,
                direction: direction_for(path),
            }),
            None => missing.push(path.clone()),
        }
    }
    let added: Vec<String> = cur_leaves
        .iter()
        .filter(|(p, _)| !base_leaves.iter().any(|(bp, _)| bp == p))
        .map(|(p, _)| p.clone())
        .collect();
    (deltas, missing, added)
}

fn fmt_val(v: f64) -> String {
    if v.abs() >= 1000.0 {
        format!("{v:.0}")
    } else {
        format!("{v:.4}")
    }
}

/// Renders the Markdown delta table. Gated rows come first; informational
/// rows are listed only when they moved by more than `tolerance` (the table
/// stays readable on large reports).
fn render_markdown(
    deltas: &[Delta],
    missing: &[String],
    added: &[String],
    tolerance: f64,
) -> String {
    let mut out = String::new();
    out.push_str("# bench-diff\n\n");
    out.push_str(&format!("Tolerance: {:.1}%\n\n", tolerance * 100.0));
    out.push_str("| metric | baseline | current | delta | status |\n");
    out.push_str("|---|---|---|---|---|\n");
    let mut rows: Vec<&Delta> = deltas
        .iter()
        .filter(|d| d.direction != Direction::Info || d.rel().abs() > tolerance)
        .collect();
    rows.sort_by(|a, b| {
        (a.direction == Direction::Info)
            .cmp(&(b.direction == Direction::Info))
            .then(a.path.cmp(&b.path))
    });
    for d in rows {
        let status = if d.regressed(tolerance) {
            "**REGRESSED**"
        } else if d.direction == Direction::Info {
            "info"
        } else {
            "ok"
        };
        out.push_str(&format!(
            "| {} | {} | {} | {:+.1}% | {status} |\n",
            d.path,
            fmt_val(d.baseline),
            fmt_val(d.current),
            d.rel() * 100.0
        ));
    }
    for p in missing {
        out.push_str(&format!("| {p} | present | missing | — | **MISSING** |\n"));
    }
    if !added.is_empty() {
        out.push_str(&format!(
            "\n{} new metric path(s) not in the baseline.\n",
            added.len()
        ));
    }
    let regressions = deltas.iter().filter(|d| d.regressed(tolerance)).count();
    out.push_str(&format!(
        "\n{} gated metric(s), {} regression(s) beyond tolerance.\n",
        deltas
            .iter()
            .filter(|d| d.direction != Direction::Info)
            .count(),
        regressions
    ));
    out
}

/// A synthetic baseline/current pair carrying a 50% throughput drop and a
/// 3x latency rise; `--self-test` asserts the gate trips on it.
fn self_test() -> bool {
    let baseline: Value = serde_json::from_str(
        r#"{"results":[{"kernel":"gemm_nn","n":64,"threaded_ops_per_sec":2.0e9,"speedup":3.0}],
            "latency_us":{"p50":120.0},"note":"synthetic"}"#,
    )
    .expect("self-test baseline parses");
    let current: Value = serde_json::from_str(
        r#"{"results":[{"kernel":"gemm_nn","n":64,"threaded_ops_per_sec":1.0e9,"speedup":3.1}],
            "latency_us":{"p50":360.0},"note":"synthetic"}"#,
    )
    .expect("self-test current parses");
    let (deltas, missing, added) = compare(&baseline, &current);
    let regressions: Vec<&Delta> = deltas.iter().filter(|d| d.regressed(0.10)).collect();
    let throughput_caught = regressions
        .iter()
        .any(|d| d.path.ends_with("threaded_ops_per_sec"));
    let latency_caught = regressions.iter().any(|d| d.path == "latency_us.p50");
    let speedup_clean = deltas
        .iter()
        .any(|d| d.path.ends_with("speedup") && !d.regressed(0.10));
    println!("{}", render_markdown(&deltas, &missing, &added, 0.10));
    throughput_caught && latency_caught && speedup_clean && missing.is_empty() && added.is_empty()
}

struct Args {
    baseline: Option<String>,
    current: Option<String>,
    tolerance: f64,
    soft: bool,
    out: Option<String>,
    self_test: bool,
}

fn parse_args() -> Args {
    let mut args = Args {
        baseline: None,
        current: None,
        tolerance: 0.10,
        soft: false,
        out: None,
        self_test: false,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--tolerance" => {
                i += 1;
                args.tolerance = argv[i].parse().expect("--tolerance <fraction>");
            }
            "--soft" => args.soft = true,
            "--out" => {
                i += 1;
                args.out = Some(argv[i].clone());
            }
            "--self-test" => args.self_test = true,
            path if !path.starts_with("--") => {
                if args.baseline.is_none() {
                    args.baseline = Some(path.to_string());
                } else if args.current.is_none() {
                    args.current = Some(path.to_string());
                } else {
                    usage_exit(&format!("unexpected extra argument {path}"));
                }
            }
            other => usage_exit(&format!("unknown flag {other}")),
        }
        i += 1;
    }
    args
}

fn usage_exit(msg: &str) -> ! {
    eprintln!(
        "bench-diff: {msg}\nusage: bench-diff <baseline.json> <current.json> \
         [--tolerance 0.10] [--soft] [--out diff.md] | bench-diff --self-test"
    );
    std::process::exit(2)
}

fn load(path: &str) -> Value {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| usage_exit(&format!("cannot read {path}: {e}")));
    serde_json::from_str(&text).unwrap_or_else(|e| usage_exit(&format!("cannot parse {path}: {e}")))
}

fn main() {
    let args = parse_args();
    if args.self_test {
        if self_test() {
            eprintln!("bench-diff: self-test ok (synthetic regression trips the gate)");
            return;
        }
        eprintln!("bench-diff: self-test FAILED");
        std::process::exit(1);
    }
    let (Some(baseline_path), Some(current_path)) = (&args.baseline, &args.current) else {
        usage_exit("need <baseline.json> and <current.json>")
    };
    let baseline = load(baseline_path);
    let current = load(current_path);
    let (deltas, missing, added) = compare(&baseline, &current);
    let table = render_markdown(&deltas, &missing, &added, args.tolerance);
    println!("{table}");
    if let Some(out) = &args.out {
        std::fs::write(out, &table)
            .unwrap_or_else(|e| usage_exit(&format!("cannot write {out}: {e}")));
    }
    let regressions = deltas
        .iter()
        .filter(|d| d.regressed(args.tolerance))
        .count()
        + missing.len();
    if regressions > 0 {
        if args.soft {
            eprintln!(
                "bench-diff: WARNING: {regressions} regression(s) beyond {:.1}% \
                 (soft mode, not failing)",
                args.tolerance * 100.0
            );
        } else {
            eprintln!(
                "bench-diff: {regressions} regression(s) beyond {:.1}%",
                args.tolerance * 100.0
            );
            std::process::exit(1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(json: &str) -> Value {
        serde_json::from_str(json).expect("test json parses")
    }

    #[test]
    fn throughput_drop_beyond_tolerance_regresses() {
        let base = v(r#"{"r":[{"kernel":"k","threaded_ops_per_sec":100.0}]}"#);
        let cur = v(r#"{"r":[{"kernel":"k","threaded_ops_per_sec":80.0}]}"#);
        let (deltas, _, _) = compare(&base, &cur);
        assert_eq!(deltas.len(), 1);
        assert!(deltas[0].regressed(0.10));
        assert!(!deltas[0].regressed(0.25));
    }

    #[test]
    fn latency_rise_regresses_and_drop_does_not() {
        let base = v(r#"{"latency_us":{"p50":100.0,"p95":200.0}}"#);
        let cur = v(r#"{"latency_us":{"p50":150.0,"p95":120.0}}"#);
        let (deltas, _, _) = compare(&base, &cur);
        let p50 = deltas.iter().find(|d| d.path.ends_with("p50")).unwrap();
        let p95 = deltas.iter().find(|d| d.path.ends_with("p95")).unwrap();
        assert!(p50.regressed(0.10));
        assert!(!p95.regressed(0.10));
    }

    #[test]
    fn alloc_profile_keys_gate_in_the_right_direction() {
        // Hit rate dropping and allocs/step rising are regressions...
        let base = v(r#"{"pool_hit_rate":0.99,"allocs_per_step":1.0,"alloc_bytes_per_step":64.0}"#);
        let cur =
            v(r#"{"pool_hit_rate":0.50,"allocs_per_step":40.0,"alloc_bytes_per_step":4096.0}"#);
        let (deltas, _, _) = compare(&base, &cur);
        assert!(deltas.iter().all(|d| d.regressed(0.10)), "{deltas:?}");
        // ...while the reverse direction is an improvement, not a trip.
        let (deltas, _, _) = compare(&cur, &base);
        assert!(deltas.iter().all(|d| !d.regressed(0.10)), "{deltas:?}");
    }

    #[test]
    fn trace_stage_keys_gate_downward() {
        // BENCH_trace.json paths: end-to-end latency, publish lag, and the
        // per-stage breakdown (`*_stage_ms.mean`) all gate lower-better.
        let base = v(
            r#"{"e2e_ms":{"mean":100.0},"reload_stage_ms":{"mean":5.0},"publish_to_visible_ms":{"mean":6.0},"lag":2.0,"e2e_windows":3.0}"#,
        );
        let cur = v(
            r#"{"e2e_ms":{"mean":200.0},"reload_stage_ms":{"mean":50.0},"publish_to_visible_ms":{"mean":60.0},"lag":9.0,"e2e_windows":30.0}"#,
        );
        let (deltas, _, _) = compare(&base, &cur);
        assert!(deltas.iter().all(|d| d.regressed(0.10)), "{deltas:?}");
        let (deltas, _, _) = compare(&cur, &base);
        assert!(deltas.iter().all(|d| !d.regressed(0.10)), "{deltas:?}");
    }

    #[test]
    fn info_fields_never_gate() {
        let base = v(r#"{"cores":8.0,"requests":100.0}"#);
        let cur = v(r#"{"cores":1.0,"requests":5.0}"#);
        let (deltas, _, _) = compare(&base, &cur);
        assert!(deltas.iter().all(|d| !d.regressed(0.10)));
    }

    #[test]
    fn rows_match_by_label_not_order() {
        let base = v(r#"{"r":[{"kernel":"a","speedup":2.0},{"kernel":"b","speedup":4.0}]}"#);
        let cur = v(r#"{"r":[{"kernel":"b","speedup":4.0},{"kernel":"a","speedup":2.0}]}"#);
        let (deltas, missing, added) = compare(&base, &cur);
        assert_eq!(deltas.len(), 2);
        assert!(missing.is_empty() && added.is_empty());
        assert!(deltas.iter().all(|d| d.rel() == 0.0));
    }

    #[test]
    fn missing_paths_are_reported() {
        let base = v(r#"{"a":{"speedup":2.0},"b":1.0}"#);
        let cur = v(r#"{"a":{"speedup":2.0}}"#);
        let (_, missing, _) = compare(&base, &cur);
        assert_eq!(missing, vec!["b".to_string()]);
    }

    #[test]
    fn self_test_catches_the_synthetic_regression() {
        assert!(self_test());
    }

    #[test]
    fn markdown_marks_regressions() {
        let base = v(r#"{"throughput_rps":100.0}"#);
        let cur = v(r#"{"throughput_rps":50.0}"#);
        let (deltas, missing, added) = compare(&base, &cur);
        let md = render_markdown(&deltas, &missing, &added, 0.10);
        assert!(md.contains("**REGRESSED**"), "{md}");
        assert!(md.contains("-50.0%"), "{md}");
    }
}
