//! The continual-learning evaluation protocol shared by CDCL and every
//! baseline: learn tasks sequentially, after each task evaluate the target
//! test set of every task seen so far (§V-C), and fill TIL and CIL
//! R-matrices.

use cdcl_data::{CrossDomainStream, Sample, TaskData};
use cdcl_metrics::RMatrix;

/// A learner that consumes the cross-domain task stream.
pub trait ContinualLearner {
    /// Human-readable method name (table row label).
    fn name(&self) -> String;

    /// Trains on one task (labelled source + unlabelled target).
    /// Implementations must not read `target_train`/`target_test` labels.
    fn learn_task(&mut self, task: &TaskData);

    /// Task-incremental accuracy on `test` given the task identity.
    fn eval_til(&self, task_id: usize, test: &[Sample]) -> f64;

    /// Class-incremental accuracy on `test` (no task identity at
    /// inference; predictions range over all classes seen so far).
    fn eval_cil(&self, task_id: usize, test: &[Sample]) -> f64;
}

/// TIL and CIL R-matrices of one full stream run.
#[derive(Debug, Clone)]
pub struct StreamResult {
    /// Stream name.
    pub stream: String,
    /// Method name.
    pub method: String,
    /// Task-incremental R-matrix.
    pub til: RMatrix,
    /// Class-incremental R-matrix.
    pub cil: RMatrix,
}

impl StreamResult {
    /// TIL average accuracy in percent (as the paper reports).
    pub fn til_acc_pct(&self) -> f64 {
        self.til.acc() * 100.0
    }

    /// TIL forgetting in percent.
    pub fn til_fgt_pct(&self) -> f64 {
        self.til.fgt() * 100.0
    }

    /// CIL average accuracy in percent.
    pub fn cil_acc_pct(&self) -> f64 {
        self.cil.acc() * 100.0
    }

    /// CIL forgetting in percent.
    pub fn cil_fgt_pct(&self) -> f64 {
        self.cil.fgt() * 100.0
    }
}

/// Runs the full protocol: for each task — learn, then evaluate every task
/// seen so far in both scenarios.
pub fn run_stream<L: ContinualLearner + ?Sized>(
    learner: &mut L,
    stream: &CrossDomainStream,
) -> StreamResult {
    let mut til = RMatrix::new();
    let mut cil = RMatrix::new();
    for (i, task) in stream.tasks.iter().enumerate() {
        learner.learn_task(task);
        let mut til_row = Vec::with_capacity(i + 1);
        let mut cil_row = Vec::with_capacity(i + 1);
        for (j, seen) in stream.tasks.iter().take(i + 1).enumerate() {
            til_row.push(learner.eval_til(j, &seen.target_test));
            cil_row.push(learner.eval_cil(j, &seen.target_test));
        }
        til.push_row(til_row);
        cil.push_row(cil_row);
    }
    StreamResult {
        stream: stream.name.clone(),
        method: learner.name(),
        til,
        cil,
    }
}

/// Counts correct argmax predictions against task-local labels.
pub fn accuracy_from_predictions(predicted: &[usize], test: &[Sample]) -> f64 {
    assert_eq!(predicted.len(), test.len());
    if test.is_empty() {
        return 0.0;
    }
    let hits = predicted
        .iter()
        .zip(test.iter())
        .filter(|(p, s)| **p == s.label)
        .count();
    hits as f64 / test.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdcl_data::{mnist_usps, MnistUspsDirection, Scale};
    use cdcl_tensor::Tensor;

    /// A learner that always predicts class 0 — exercises the protocol
    /// plumbing without training anything.
    struct Zero {
        tasks_seen: usize,
    }

    impl ContinualLearner for Zero {
        fn name(&self) -> String {
            "zero".into()
        }
        fn learn_task(&mut self, _task: &cdcl_data::TaskData) {
            self.tasks_seen += 1;
        }
        fn eval_til(&self, _task_id: usize, test: &[Sample]) -> f64 {
            accuracy_from_predictions(&vec![0; test.len()], test)
        }
        fn eval_cil(&self, _task_id: usize, _test: &[Sample]) -> f64 {
            0.0
        }
    }

    #[test]
    fn run_stream_fills_triangular_matrices() {
        let stream = mnist_usps(MnistUspsDirection::MnistToUsps, Scale::Smoke);
        let mut learner = Zero { tasks_seen: 0 };
        let result = run_stream(&mut learner, &stream);
        assert_eq!(learner.tasks_seen, 5);
        assert_eq!(result.til.num_tasks(), 5);
        assert_eq!(result.cil.num_tasks(), 5);
        // always-0 learner gets the base rate of class 0 in 2-class tasks
        let acc = result.til.acc();
        assert!(acc > 0.2 && acc < 0.8, "base-rate accuracy, got {acc}");
        assert_eq!(result.cil.acc(), 0.0);
    }

    #[test]
    fn accuracy_from_predictions_counts() {
        let mk = |l| Sample {
            image: Tensor::zeros(&[1, 1, 1]),
            label: l,
        };
        let test = vec![mk(0), mk(1), mk(1)];
        assert!((accuracy_from_predictions(&[0, 1, 0], &test) - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(accuracy_from_predictions(&[], &[]), 0.0);
    }
}
