//! Live metrics for the CDCL workspace (DESIGN.md §11).
//!
//! Where `cdcl-telemetry` streams *events* to a file for post-hoc analysis,
//! this crate aggregates *state* in memory so a running trainer or
//! `cdcl-serve` can answer "what is your p99 batch latency / steps-per-sec
//! / memory occupancy **right now**". Three metric kinds live in one global
//! [`Registry`]:
//!
//! * [`Counter`] — monotone `u64` (`*_total` names);
//! * [`Gauge`] — last-write-wins `f64`;
//! * [`Histogram`] — log-bucketed distribution on the fixed 1–2–5 grid of
//!   [`hist`], with p50/p90/p99 derived by bucket interpolation.
//!
//! The layer is **off by default** and costs one relaxed atomic load per
//! record site when disabled — the same contract `cdcl-telemetry`
//! established. Enable with `CDCL_METRICS=1` (or [`set_enabled`] from
//! tests/servers). Recording never takes a lock: counters and bucket slots
//! are `AtomicU64` updated with relaxed `fetch_add`; the registry mutex is
//! touched only at first registration and at exposition time. Metrics only
//! *observe* — they never branch the data path — so training with metrics
//! on is bitwise identical to metrics off (proven by
//! `tests/integration_metrics.rs`).
//!
//! Metric handles are `const`-constructible statics, registered into the
//! global registry on first use:
//!
//! ```
//! static REQS: cdcl_obs::Counter =
//!     cdcl_obs::Counter::new("cdcl_doc_requests_total", "Requests answered");
//! cdcl_obs::set_enabled(true);
//! REQS.inc();
//! assert_eq!(REQS.get(), 1);
//! # cdcl_obs::set_enabled(false);
//! ```
//!
//! Naming discipline (enforced by `cdcl-lint`'s `metric-names` rule):
//! `snake_case`, prefixed `cdcl_`, counters end in `_total`, and names
//! appear only at `static` registration sites — record sites go through the
//! typed handles, never ad-hoc string lookups.
//!
//! Exposition comes in two encodings: [`Registry::render_prometheus`]
//! (text format v0.0.4, scraped from `cdcl-serve`'s `/metrics` endpoint)
//! and [`Registry::render_json`] (one-line JSON, answered to the `METRICS`
//! stdin verb). See DESIGN.md §11 for the full grammar.

pub mod hist;

use hist::BUCKET_COUNT;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, Once, OnceLock};
use std::time::Instant;

/// The environment variable that activates the metrics layer.
pub const METRICS_ENV: &str = "CDCL_METRICS";

/// Fast-path flag: true iff the metrics layer is recording.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// One-shot resolution of the `CDCL_METRICS` environment variable.
static ENV_INIT: Once = Once::new();

fn ensure_env_init() {
    ENV_INIT.call_once(|| {
        if let Ok(v) = std::env::var(METRICS_ENV) {
            if !v.is_empty() && v != "0" {
                ENABLED.store(true, Ordering::Release);
            }
        }
    });
}

/// True when the metrics layer is recording. Producers gate any work that
/// exists only to feed metrics (loss reads, counter snapshots, timers)
/// behind this, so a metrics-off run does no extra work at all.
#[inline]
pub fn enabled() -> bool {
    if ENABLED.load(Ordering::Relaxed) {
        return true;
    }
    ensure_env_init();
    ENABLED.load(Ordering::Relaxed)
}

/// Turns the metrics layer on or off explicitly, overriding whatever
/// `CDCL_METRICS` resolved to. Servers call `set_enabled(true)` at startup
/// (a serving process always wants its own metrics); tests use it to keep
/// per-process environment state out of the picture.
pub fn set_enabled(on: bool) {
    ensure_env_init();
    ENABLED.store(on, Ordering::Release);
}

/// Poison-tolerant lock: a panicked writer cannot corrupt the registry
/// (entries are append-only), so taking over a poisoned mutex is sound and
/// keeps this crate free of panic paths.
fn lock_entries(m: &Mutex<Vec<Entry>>) -> MutexGuard<'_, Vec<Entry>> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

// ----------------------------------------------------------------------
// Cores: the shared atomic state behind each metric
// ----------------------------------------------------------------------

/// Monotone counter state. Core methods do not check [`enabled`] — gating
/// lives in the static [`Counter`] handle, so tests and collectors can
/// drive cores directly.
#[derive(Debug, Default)]
pub struct CounterCore {
    value: AtomicU64,
}

impl CounterCore {
    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Overwrites the count. For mirroring an external always-on atomic
    /// (the kernel counters) into the registry at collection time; ordinary
    /// producers use [`CounterCore::add`].
    #[inline]
    pub fn store(&self, v: u64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Current count.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Last-write-wins `f64` gauge state (stored as raw bits).
#[derive(Debug, Default)]
pub struct GaugeCore {
    bits: AtomicU64,
}

impl GaugeCore {
    /// Sets the gauge.
    #[inline]
    pub fn set(&self, v: f64) {
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value (`0.0` before the first set).
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

/// Log-bucketed histogram state on the fixed [`hist`] grid: one atomic slot
/// per bucket plus an atomic `f64` sum (CAS loop — still lock-free).
#[derive(Debug)]
pub struct HistogramCore {
    buckets: [AtomicU64; BUCKET_COUNT],
    sum_bits: AtomicU64,
}

impl Default for HistogramCore {
    fn default() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum_bits: AtomicU64::new(0f64.to_bits()),
        }
    }
}

impl HistogramCore {
    /// Records one observation.
    #[inline]
    pub fn observe(&self, v: f64) {
        self.buckets[hist::bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        let mut cur = self.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + v).to_bits();
            match self.sum_bits.compare_exchange_weak(
                cur,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Non-cumulative per-bucket counts.
    pub fn bucket_counts(&self) -> [u64; BUCKET_COUNT] {
        std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed))
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.bucket_counts().iter().sum()
    }

    /// Sum of all observations.
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.sum_bits.load(Ordering::Relaxed))
    }

    /// Interpolated `q`-quantile (see [`hist::percentile`]).
    pub fn percentile(&self, q: f64) -> f64 {
        hist::percentile(&self.bucket_counts(), q)
    }
}

// ----------------------------------------------------------------------
// Registry
// ----------------------------------------------------------------------

/// The shared state behind one registered metric.
#[derive(Debug, Clone)]
enum Core {
    Counter(Arc<CounterCore>),
    Gauge(Arc<GaugeCore>),
    Histogram(Arc<HistogramCore>),
}

impl Core {
    fn kind(&self) -> &'static str {
        match self {
            Core::Counter(_) => "counter",
            Core::Gauge(_) => "gauge",
            Core::Histogram(_) => "histogram",
        }
    }
}

#[derive(Debug)]
struct Entry {
    name: String,
    help: String,
    core: Core,
}

/// A set of named metrics with deterministic (name-sorted) exposition.
/// Most code uses the process-wide [`global`] registry through static
/// handles; tests build private instances.
#[derive(Debug, Default)]
pub struct Registry {
    entries: Mutex<Vec<Entry>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn register(&self, name: &str, help: &str, make: impl FnOnce() -> Core) -> Core {
        let mut entries = lock_entries(&self.entries);
        if let Some(e) = entries.iter().find(|e| e.name == name) {
            return e.core.clone();
        }
        let core = make();
        entries.push(Entry {
            name: name.to_string(),
            help: help.to_string(),
            core: core.clone(),
        });
        core
    }

    /// Registers (or finds) the counter `name`. A name already registered
    /// as a different kind keeps its original kind; the caller gets a
    /// detached core so recording still works, but only the first
    /// registration is exposed — `debug_assert!`ed as a programming bug.
    pub fn counter(&self, name: &str, help: &str) -> Arc<CounterCore> {
        match self.register(name, help, || Core::Counter(Arc::default())) {
            Core::Counter(c) => c,
            other => {
                debug_assert!(
                    false,
                    "metric `{name}` already registered as {}",
                    other.kind()
                );
                Arc::default()
            }
        }
    }

    /// Registers (or finds) the gauge `name`.
    pub fn gauge(&self, name: &str, help: &str) -> Arc<GaugeCore> {
        match self.register(name, help, || Core::Gauge(Arc::default())) {
            Core::Gauge(g) => g,
            other => {
                debug_assert!(
                    false,
                    "metric `{name}` already registered as {}",
                    other.kind()
                );
                Arc::default()
            }
        }
    }

    /// Registers (or finds) the histogram `name`.
    pub fn histogram(&self, name: &str, help: &str) -> Arc<HistogramCore> {
        match self.register(name, help, || Core::Histogram(Arc::default())) {
            Core::Histogram(h) => h,
            other => {
                debug_assert!(
                    false,
                    "metric `{name}` already registered as {}",
                    other.kind()
                );
                Arc::default()
            }
        }
    }

    /// Snapshots the entries sorted by name (exposition is deterministic
    /// regardless of registration order).
    fn sorted(&self) -> Vec<(String, String, Core)> {
        let entries = lock_entries(&self.entries);
        let mut v: Vec<(String, String, Core)> = entries
            .iter()
            .map(|e| (e.name.clone(), e.help.clone(), e.core.clone()))
            .collect();
        v.sort_by(|a, b| a.0.cmp(&b.0));
        v
    }

    /// Prometheus text exposition (format v0.0.4). Histograms render
    /// cumulative `_bucket{le=...}` lines, `_sum`/`_count`, plus derived
    /// `_p50`/`_p90`/`_p99` gauges from bucket interpolation.
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        for (name, help, core) in self.sorted() {
            out.push_str(&format!("# HELP {name} {help}\n"));
            out.push_str(&format!("# TYPE {name} {}\n", core.kind()));
            match core {
                Core::Counter(c) => out.push_str(&format!("{name} {}\n", c.get())),
                Core::Gauge(g) => out.push_str(&format!("{name} {}\n", fmt_f64(g.get()))),
                Core::Histogram(h) => {
                    let counts = h.bucket_counts();
                    let mut cum = 0u64;
                    for (i, &c) in counts.iter().enumerate() {
                        cum += c;
                        let le = if i < hist::BUCKET_BOUNDS.len() {
                            hist::format_bound(hist::BUCKET_BOUNDS[i])
                        } else {
                            "+Inf".to_string()
                        };
                        out.push_str(&format!("{name}_bucket{{le=\"{le}\"}} {cum}\n"));
                    }
                    out.push_str(&format!("{name}_sum {}\n", fmt_f64(h.sum())));
                    out.push_str(&format!("{name}_count {cum}\n"));
                    for (suffix, q) in [("p50", 0.50), ("p90", 0.90), ("p99", 0.99)] {
                        let v = hist::percentile(&counts, q);
                        out.push_str(&format!("# TYPE {name}_{suffix} gauge\n"));
                        out.push_str(&format!("{name}_{suffix} {}\n", fmt_f64(v)));
                    }
                }
            }
        }
        out
    }

    /// One-line JSON exposition: `{"counters":{...},"gauges":{...},
    /// "histograms":{name:{count,sum,p50,p90,p99,buckets:[[le,n],...]}}}`
    /// with only non-empty buckets listed (non-cumulative counts).
    pub fn render_json(&self) -> String {
        let mut counters = String::new();
        let mut gauges = String::new();
        let mut hists = String::new();
        for (name, _, core) in self.sorted() {
            match core {
                Core::Counter(c) => {
                    push_sep(&mut counters);
                    counters.push_str(&format!("\"{name}\":{}", c.get()));
                }
                Core::Gauge(g) => {
                    push_sep(&mut gauges);
                    gauges.push_str(&format!("\"{name}\":{}", fmt_f64_json(g.get())));
                }
                Core::Histogram(h) => {
                    push_sep(&mut hists);
                    let counts = h.bucket_counts();
                    let buckets: Vec<String> = counts
                        .iter()
                        .enumerate()
                        .filter(|&(_, &c)| c > 0)
                        .map(|(i, &c)| {
                            let le = if i < hist::BUCKET_BOUNDS.len() {
                                hist::format_bound(hist::BUCKET_BOUNDS[i])
                            } else {
                                "\"+Inf\"".to_string()
                            };
                            format!("[{le},{c}]")
                        })
                        .collect();
                    hists.push_str(&format!(
                        "\"{name}\":{{\"count\":{},\"sum\":{},\"p50\":{},\"p90\":{},\"p99\":{},\"buckets\":[{}]}}",
                        h.count(),
                        fmt_f64_json(h.sum()),
                        fmt_f64_json(h.percentile(0.50)),
                        fmt_f64_json(h.percentile(0.90)),
                        fmt_f64_json(h.percentile(0.99)),
                        buckets.join(",")
                    ));
                }
            }
        }
        format!(
            "{{\"counters\":{{{counters}}},\"gauges\":{{{gauges}}},\"histograms\":{{{hists}}}}}"
        )
    }
}

fn push_sep(buf: &mut String) {
    if !buf.is_empty() {
        buf.push(',');
    }
}

/// Prometheus float formatting: integral values without a decimal point.
fn fmt_f64(v: f64) -> String {
    hist::format_bound(v)
}

/// JSON float formatting: JSON has no NaN/Inf, so non-finite values render
/// as strings (the `cdcl-telemetry` convention).
fn fmt_f64_json(v: f64) -> String {
    if v.is_finite() {
        hist::format_bound(v)
    } else if v.is_nan() {
        "\"NaN\"".to_string()
    } else if v > 0.0 {
        "\"inf\"".to_string()
    } else {
        "\"-inf\"".to_string()
    }
}

/// The process-wide registry every static handle registers into.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

// ----------------------------------------------------------------------
// Static handles
// ----------------------------------------------------------------------

/// A `const`-constructible counter handle. Declare as a `static`; the
/// metric registers into [`global`] on first use. Recording is gated on
/// [`enabled`] (one relaxed load when off).
pub struct Counter {
    name: &'static str,
    help: &'static str,
    core: OnceLock<Arc<CounterCore>>,
}

impl Counter {
    /// Declares a counter (name discipline: `cdcl_*_total`, snake_case).
    pub const fn new(name: &'static str, help: &'static str) -> Self {
        Self {
            name,
            help,
            core: OnceLock::new(),
        }
    }

    fn core(&self) -> &Arc<CounterCore> {
        self.core
            .get_or_init(|| global().counter(self.name, self.help))
    }

    /// Adds `n` (no-op when the layer is disabled).
    #[inline]
    pub fn add(&self, n: u64) {
        if enabled() {
            self.core().add(n);
        }
    }

    /// Adds 1.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Mirrors an externally maintained monotone value (see
    /// [`CounterCore::store`]).
    #[inline]
    pub fn store(&self, v: u64) {
        if enabled() {
            self.core().store(v);
        }
    }

    /// Current count (registers the metric if needed; reads even when
    /// disabled).
    pub fn get(&self) -> u64 {
        self.core().get()
    }
}

/// A `const`-constructible gauge handle (see [`Counter`] for the
/// registration contract).
pub struct Gauge {
    name: &'static str,
    help: &'static str,
    core: OnceLock<Arc<GaugeCore>>,
}

impl Gauge {
    /// Declares a gauge.
    pub const fn new(name: &'static str, help: &'static str) -> Self {
        Self {
            name,
            help,
            core: OnceLock::new(),
        }
    }

    fn core(&self) -> &Arc<GaugeCore> {
        self.core
            .get_or_init(|| global().gauge(self.name, self.help))
    }

    /// Sets the gauge (no-op when the layer is disabled).
    #[inline]
    pub fn set(&self, v: f64) {
        if enabled() {
            self.core().set(v);
        }
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        self.core().get()
    }
}

/// A `const`-constructible histogram handle on the fixed [`hist`] grid.
pub struct Histogram {
    name: &'static str,
    help: &'static str,
    core: OnceLock<Arc<HistogramCore>>,
}

impl Histogram {
    /// Declares a histogram.
    pub const fn new(name: &'static str, help: &'static str) -> Self {
        Self {
            name,
            help,
            core: OnceLock::new(),
        }
    }

    fn core(&self) -> &Arc<HistogramCore> {
        self.core
            .get_or_init(|| global().histogram(self.name, self.help))
    }

    /// Records one observation (no-op when the layer is disabled).
    #[inline]
    pub fn observe(&self, v: f64) {
        if enabled() {
            self.core().observe(v);
        }
    }

    /// Starts a timer whose drop records the elapsed time **in
    /// microseconds**. When the layer is disabled the clock is never read.
    #[inline]
    pub fn time(&self) -> HistTimer<'_> {
        HistTimer {
            start: enabled().then(Instant::now),
            hist: self,
        }
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.core().count()
    }

    /// Sum of all observations.
    pub fn sum(&self) -> f64 {
        self.core().sum()
    }

    /// Interpolated `q`-quantile.
    pub fn percentile(&self, q: f64) -> f64 {
        self.core().percentile(q)
    }
}

/// Scoped timer from [`Histogram::time`]: records µs on drop.
pub struct HistTimer<'a> {
    start: Option<Instant>,
    hist: &'a Histogram,
}

impl Drop for HistTimer<'_> {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            self.hist
                .core()
                .observe(start.elapsed().as_secs_f64() * 1e6);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex as StdMutex;

    /// `ENABLED` is process-global; tests that toggle it must not overlap.
    static TEST_GUARD: StdMutex<()> = StdMutex::new(());

    fn guard() -> std::sync::MutexGuard<'static, ()> {
        match TEST_GUARD.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    #[test]
    fn disabled_handles_record_nothing() {
        let _g = guard();
        set_enabled(false);
        static C: Counter = Counter::new("cdcl_test_disabled_total", "x");
        static H: Histogram = Histogram::new("cdcl_test_disabled_us", "x");
        C.inc();
        H.observe(5.0);
        drop(H.time());
        assert_eq!(C.get(), 0);
        assert_eq!(H.count(), 0);
    }

    #[test]
    fn enabled_handles_register_globally_and_record() {
        let _g = guard();
        set_enabled(true);
        static C: Counter = Counter::new("cdcl_test_enabled_total", "x");
        static G: Gauge = Gauge::new("cdcl_test_enabled_gauge", "x");
        C.add(3);
        G.set(1.5);
        set_enabled(false);
        assert_eq!(C.get(), 3);
        assert_eq!(G.get(), 1.5);
        let text = global().render_prometheus();
        assert!(text.contains("cdcl_test_enabled_total 3"));
        assert!(text.contains("cdcl_test_enabled_gauge 1.5"));
    }

    #[test]
    fn duplicate_registration_returns_the_same_core() {
        let r = Registry::new();
        let a = r.counter("dup_total", "first");
        let b = r.counter("dup_total", "second help ignored");
        a.add(2);
        b.add(3);
        assert_eq!(a.get(), 5);
        assert!(r.render_prometheus().contains("# HELP dup_total first\n"));
    }

    #[test]
    fn golden_prometheus_exposition() {
        let r = Registry::new();
        let c = r.counter("cdcl_golden_requests_total", "Requests answered");
        let g = r.gauge("cdcl_golden_loss", "Last loss");
        let h = r.histogram("cdcl_golden_latency_us", "Batch latency");
        c.add(42);
        g.set(0.5);
        h.observe(1.0); // bucket le="1"
        h.observe(3.0); // bucket le="5"
        h.observe(3.0);
        h.observe(2e9); // overflow

        let text = r.render_prometheus();
        let expected_head = "\
# HELP cdcl_golden_latency_us Batch latency
# TYPE cdcl_golden_latency_us histogram
cdcl_golden_latency_us_bucket{le=\"1\"} 1
cdcl_golden_latency_us_bucket{le=\"2\"} 1
cdcl_golden_latency_us_bucket{le=\"5\"} 3
cdcl_golden_latency_us_bucket{le=\"10\"} 3
";
        assert!(
            text.starts_with(expected_head),
            "exposition head mismatch:\n{text}"
        );
        // Cumulative counts reach the overflow bucket.
        assert!(text.contains("cdcl_golden_latency_us_bucket{le=\"1000000000\"} 3\n"));
        assert!(text.contains("cdcl_golden_latency_us_bucket{le=\"+Inf\"} 4\n"));
        assert!(text.contains("cdcl_golden_latency_us_sum 2000000007\n"));
        assert!(text.contains("cdcl_golden_latency_us_count 4\n"));
        // Derived quantile gauges are typed and present.
        assert!(text.contains("# TYPE cdcl_golden_latency_us_p50 gauge\n"));
        assert!(text.contains("cdcl_golden_latency_us_p99 "));
        // Name-sorted: the counter and gauge follow the histogram block.
        let pos_c = text.find("# HELP cdcl_golden_loss").unwrap();
        let pos_r = text.find("# HELP cdcl_golden_requests_total").unwrap();
        assert!(pos_c < pos_r);
        assert!(text.contains(
            "# TYPE cdcl_golden_requests_total counter\ncdcl_golden_requests_total 42\n"
        ));
        assert!(text.contains("# TYPE cdcl_golden_loss gauge\ncdcl_golden_loss 0.5\n"));
    }

    #[test]
    fn golden_json_exposition() {
        let r = Registry::new();
        r.counter("cdcl_j_total", "c").add(7);
        r.gauge("cdcl_j_gauge", "g").set(2.5);
        let h = r.histogram("cdcl_j_us", "h");
        h.observe(3.0);
        h.observe(3.0);
        let json = r.render_json();
        assert_eq!(
            json,
            "{\"counters\":{\"cdcl_j_total\":7},\"gauges\":{\"cdcl_j_gauge\":2.5},\
             \"histograms\":{\"cdcl_j_us\":{\"count\":2,\"sum\":6,\"p50\":3.5,\"p90\":4.7,\
             \"p99\":4.97,\"buckets\":[[5,2]]}}}"
                .replace("             ", "")
        );
    }

    #[test]
    fn histogram_count_equals_bucket_sum_and_sum_accumulates() {
        let h = HistogramCore::default();
        for i in 0..100 {
            h.observe(i as f64);
        }
        let counts = h.bucket_counts();
        assert_eq!(counts.iter().sum::<u64>(), h.count());
        assert_eq!(h.count(), 100);
        assert_eq!(h.sum(), (0..100).sum::<i32>() as f64);
    }

    #[test]
    fn non_finite_json_values_render_as_strings() {
        assert_eq!(fmt_f64_json(f64::NAN), "\"NaN\"");
        assert_eq!(fmt_f64_json(f64::INFINITY), "\"inf\"");
        assert_eq!(fmt_f64_json(f64::NEG_INFINITY), "\"-inf\"");
        assert_eq!(fmt_f64_json(2.0), "2");
    }
}
