//! Property tests for the task-free drift detector (DESIGN.md §15).
//!
//! Three guarantees back the `cdcl-traind` boundary inference:
//!
//! 1. **No false alarms under within-task noise.** Any score sequence whose
//!    spread stays within the CUSUM slack `k` can never detect, at any
//!    seed: the baseline is always a convex combination of observed scores
//!    (calibration mean, then EWMA), so every deviation is bounded by the
//!    spread and the statistic never leaves zero.
//! 2. **Guaranteed detection under a forced shift.** After a clean phase,
//!    any sustained shift whose per-window deviation exceeds `k + δ`
//!    detects within `⌈h/δ⌉ + sustain − 1` windows, and the reported
//!    boundary is exactly the first shifted window (the baseline freezes
//!    the moment the statistic leaves zero, so the shift cannot drag it).
//! 3. **Hysteresis cannot flap.** Against a shadow reimplementation of the
//!    recurrence: the streak only re-arms when `S` falls below
//!    `rearm_ratio · h` (in the dead band it holds), and a fired detection
//!    latches — every later window repeats the same boundary no matter
//!    what the scores do.

use cdcl_core::{DriftConfig, DriftDecision, DriftDetector};
use proptest::collection::vec;
use proptest::prelude::*;
use proptest::{prop_assert, prop_assert_eq, proptest};

fn any_config() -> impl Strategy<Value = DriftConfig> {
    (
        (1usize..5, 1usize..4, 0usize..2),
        0.05f64..1.0,
        0.01f64..0.5,
        0.01f64..1.0,
        0.0f64..0.95,
    )
        .prop_map(
            |((calibration, sustain, two_sided), ewma_alpha, cusum_k, cusum_h, rearm_ratio)| {
                DriftConfig {
                    calibration,
                    ewma_alpha,
                    cusum_k,
                    cusum_h,
                    rearm_ratio,
                    sustain,
                    two_sided: two_sided == 1,
                }
            },
        )
}

proptest! {
    /// Property 1: scores confined to a band of width ≤ k never detect —
    /// the within-task noise floor is below the slack by construction, so
    /// no seed, length, or config can produce a false new-task declaration.
    #[test]
    fn within_task_noise_never_detects(
        config in any_config(),
        center in -5.0f64..5.0,
        unit_noise in vec(0.0f64..1.0, 1..80),
    ) {
        let mut det = DriftDetector::new(config);
        let spread = config.cusum_k; // band width exactly the slack
        for &u in &unit_noise {
            let decision = det.observe(center + u * spread);
            prop_assert!(
                !matches!(decision, DriftDecision::Detected { .. }),
                "false detection ({decision:?}) with statistic {} on a band of width {spread}",
                det.statistic()
            );
            prop_assert_eq!(det.statistic(), 0.0);
        }
        prop_assert_eq!(det.detected_boundary(), None);
    }

    /// Property 2: a sustained shift whose deviation beats the slack by δ
    /// per window is always detected within `⌈h/δ⌉ + sustain − 1` shifted
    /// windows, and the boundary is the first shifted window. `direction`
    /// exercises both signs in two-sided mode (a collapse toward the
    /// centroids is as detectable as an excursion away from them).
    #[test]
    fn forced_shift_always_detects_at_the_switch(
        config in any_config(),
        center in -5.0f64..5.0,
        clean_extra in 0usize..6,
        delta in 0.01f64..0.5,
        direction in 0usize..2,
    ) {
        let mut det = DriftDetector::new(config);
        // Clean phase: constant scores pin the baseline to `center`.
        let clean = config.calibration + clean_extra;
        for _ in 0..clean {
            det.observe(center);
        }
        let baseline = det.baseline();
        prop_assert!((baseline - center).abs() < 1e-9);
        // Shift phase: every window deviates by k + δ from the (about to
        // freeze) baseline. One-sided only sees upward shifts, so pin the
        // direction there.
        let signed = if direction == 1 && config.two_sided { -1.0 } else { 1.0 };
        let shifted = baseline + signed * (config.cusum_k + delta);
        let budget = (config.cusum_h / delta).ceil() as usize + config.sustain - 1;
        let mut detected = None;
        for w in 0..budget {
            if let DriftDecision::Detected { boundary } = det.observe(shifted) {
                detected = Some((w, boundary));
                break;
            }
        }
        let (lag, boundary) = detected.unwrap_or_else(|| {
            panic!(
                "no detection after {budget} shifted windows (S = {}, h = {})",
                det.statistic(),
                config.cusum_h
            )
        });
        prop_assert!(
            boundary == clean,
            "boundary {boundary} should be the first shifted window {clean} (detected {lag} windows in)"
        );
    }

    /// Property 3: the detector matches a shadow reimplementation of the
    /// recurrence window for window — in particular the streak holds in the
    /// dead band `[rearm·h, h)` and only re-arms below it — and once fired
    /// it latches: every subsequent verdict repeats the same boundary.
    #[test]
    fn hysteresis_matches_shadow_and_never_flaps(
        config in any_config(),
        scores in vec(-3.0f64..3.0, 1..120),
    ) {
        let mut det = DriftDetector::new(config);
        // Shadow state.
        let (mut calibrated, mut calib_sum) = (0usize, 0.0f64);
        let (mut baseline, mut statistic) = (0.0f64, 0.0f64);
        let (mut streak, mut excursion) = (0usize, None::<usize>);
        let mut fired = None::<usize>;
        for (index, &score) in scores.iter().enumerate() {
            let decision = det.observe(score);
            if let Some(boundary) = fired {
                // Latch: no score sequence may un-detect or move the boundary.
                prop_assert_eq!(decision, DriftDecision::Detected { boundary });
                continue;
            }
            if calibrated < config.calibration {
                calibrated += 1;
                calib_sum += score;
                baseline = calib_sum / calibrated as f64;
                prop_assert_eq!(decision, DriftDecision::Calibrating);
                continue;
            }
            let was_zero = statistic == 0.0;
            let deviation = if config.two_sided {
                (score - baseline).abs()
            } else {
                score - baseline
            };
            statistic = (statistic + deviation - config.cusum_k).max(0.0);
            if statistic == 0.0 {
                excursion = None;
                streak = 0;
                baseline += config.ewma_alpha * (score - baseline);
                prop_assert_eq!(decision, DriftDecision::Clean);
            } else {
                if was_zero {
                    excursion = Some(index);
                }
                let streak_before = streak;
                if statistic >= config.cusum_h {
                    streak += 1;
                } else if statistic < config.cusum_h * config.rearm_ratio {
                    streak = 0;
                } else {
                    // Dead band: the streak must hold exactly.
                    prop_assert_eq!(det.streak(), streak_before);
                }
                if streak >= config.sustain {
                    let boundary = excursion.unwrap_or(index);
                    fired = Some(boundary);
                    prop_assert_eq!(decision, DriftDecision::Detected { boundary });
                } else {
                    prop_assert_eq!(decision, DriftDecision::Suspect { streak });
                }
            }
            prop_assert_eq!(det.statistic(), statistic);
            prop_assert_eq!(det.baseline(), baseline);
            prop_assert_eq!(det.streak(), streak);
        }
        prop_assert_eq!(det.detected_boundary(), fired);
    }
}
