//! `cdcl-serve` observability, driven over a real TCP round-trip: a JSONL
//! connection feeds the batcher, then an HTTP `GET /metrics` scrape on the
//! same listener must return Prometheus text with batch-latency histogram
//! buckets, derived p50/p99 gauges, and the per-model labeled families.
//! Also covers the `METRICS` stdin verb and the NaN/Inf output watchdog.

use cdcl_bench::serve::registry::SnapshotRegistry;
use cdcl_bench::serve::{run_tcp, serve_stream, ServeArgs, ServeStats};
use cdcl_core::{CdclConfig, CdclTrainer, ContinualLearner};
use cdcl_data::{mnist_usps, MnistUspsDirection, Scale};
use std::io::{BufReader, Read, Write};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::sync::Mutex;

/// Registry state is process-global; tests must not overlap.
static SERVE_GUARD: Mutex<()> = Mutex::new(());

/// Trains one smoke task (warm-up only — enough to serve predictions).
fn smoke_trainer() -> CdclTrainer {
    let stream = mnist_usps(MnistUspsDirection::MnistToUsps, Scale::Smoke);
    let mut config = CdclConfig::smoke();
    config.epochs = 1;
    config.warmup_epochs = 1;
    let mut trainer = CdclTrainer::new(config);
    trainer.learn_task(&stream.tasks[0]);
    trainer
}

/// A single-model registry serving `trainer` under the id `default`.
fn smoke_registry(trainer: CdclTrainer) -> SnapshotRegistry {
    let srv = SnapshotRegistry::new(0);
    srv.insert_trainer("default", trainer, None)
        .expect("register smoke model");
    srv
}

fn serve_args(max_batch: usize, conns: usize) -> ServeArgs {
    ServeArgs {
        max_batch,
        bench_out: None,
        conns,
        ..ServeArgs::default()
    }
}

/// A valid request line with a zero image of the model's input shape.
fn request_line(trainer: &CdclTrainer, id: u64, mode: &str) -> String {
    let (c, h, w) = trainer.input_dims();
    let zeros = vec!["0.0"; c * h * w].join(",");
    match mode {
        "til" => format!(r#"{{"id":{id},"mode":"til","task":0,"image":[{zeros}]}}"#),
        _ => format!(r#"{{"id":{id},"mode":"cil","image":[{zeros}]}}"#),
    }
}

#[test]
fn tcp_round_trip_then_metrics_scrape() {
    let _g = SERVE_GUARD.lock().unwrap_or_else(|p| p.into_inner());
    cdcl_obs::set_enabled(true);
    let trainer = smoke_trainer();
    let lines: Vec<String> = (1..=3u64)
        .map(|id| request_line(&trainer, id, if id % 2 == 0 { "cil" } else { "til" }))
        .collect();
    let srv = smoke_registry(trainer);
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind ephemeral port");
    let addr = listener.local_addr().expect("local addr");
    let args = serve_args(2, 2);
    let stats = ServeStats::default();

    std::thread::scope(|s| {
        let (srv, args, stats) = (&srv, &args, &stats);
        s.spawn(move || {
            run_tcp(srv, listener, args, stats);
            assert!(stats.requests() >= 3, "server saw the JSONL requests");
            assert!(stats.batch_count() > 0, "server executed batches");
        });

        // Connection 1: three JSONL requests (max_batch=2 forces two
        // flushes), then EOF.
        let mut conn = TcpStream::connect(addr).expect("connect");
        for line in &lines {
            writeln!(conn, "{line}").expect("send request");
        }
        conn.shutdown(Shutdown::Write).expect("half-close");
        let mut responses = String::new();
        BufReader::new(conn)
            .read_to_string(&mut responses)
            .expect("read responses");
        let lines: Vec<&str> = responses.lines().collect();
        assert_eq!(lines.len(), 3, "one response per request: {responses}");
        for line in &lines {
            assert!(line.contains("\"ok\":true"), "request failed: {line}");
            assert!(
                line.contains("\"model\":\"default\"") && line.contains("\"version\":1"),
                "response must name the answering model/version: {line}"
            );
        }

        // Connection 2: an HTTP scrape on the same listener.
        let mut conn = TcpStream::connect(addr).expect("connect for scrape");
        write!(conn, "GET /metrics HTTP/1.0\r\nHost: test\r\n\r\n").expect("send scrape");
        let mut scrape = String::new();
        BufReader::new(conn)
            .read_to_string(&mut scrape)
            .expect("read scrape");

        assert!(
            scrape.starts_with("HTTP/1.0 200 OK"),
            "bad status line: {scrape}"
        );
        assert!(scrape.contains("# TYPE cdcl_serve_batch_latency_us histogram"));
        assert!(
            scrape.contains("cdcl_serve_batch_latency_us_bucket{le=\""),
            "latency histogram buckets missing:\n{scrape}"
        );
        assert!(scrape.contains("cdcl_serve_batch_latency_us_bucket{le=\"+Inf\"}"));
        assert!(scrape.contains("cdcl_serve_batch_latency_us_p50 "));
        assert!(scrape.contains("cdcl_serve_batch_latency_us_p99 "));
        assert!(scrape.contains("cdcl_serve_requests_total"));
        assert!(scrape.contains("cdcl_serve_batch_size"));
        assert!(scrape.contains("cdcl_serve_queue_depth"));
        // Per-model labeled families carry the registry id.
        assert!(
            scrape.contains("cdcl_serve_model_requests_total{model=\"default\"}"),
            "per-model request series missing:\n{scrape}"
        );
        assert!(scrape.contains("cdcl_serve_model_latency_us_bucket{model=\"default\",le=\""));
        assert!(scrape.contains("cdcl_serve_model_inflight{model=\"default\"}"));
        // The scrape publishes the kernel counters too.
        assert!(scrape.contains("cdcl_kernel_gemm_calls_total"));
    });
}

#[test]
fn metrics_verb_answers_registry_json_inline() {
    let _g = SERVE_GUARD.lock().unwrap_or_else(|p| p.into_inner());
    cdcl_obs::set_enabled(true);
    let trainer = smoke_trainer();
    let input = format!("{}\nMETRICS\n", request_line(&trainer, 7, "cil"));
    let srv = smoke_registry(trainer);
    let mut reader = std::io::Cursor::new(input.into_bytes());
    let mut out = Vec::new();
    let stats = ServeStats::default();
    serve_stream(&srv, &mut reader, &mut out, &serve_args(8, 1), &stats)
        .expect("serve in-memory stream");
    let text = String::from_utf8(out).expect("utf8 output");
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), 2, "prediction + metrics lines: {text}");
    assert!(lines[0].contains("\"id\":7"));
    assert!(lines[1].starts_with("{\"ok\":true,\"metrics\":{\"counters\":{"));
    assert!(lines[1].contains("\"cdcl_serve_batch_latency_us\":{\"count\":"));
}

#[test]
fn nonfinite_outputs_become_errors_not_predictions() {
    let _g = SERVE_GUARD.lock().unwrap_or_else(|p| p.into_inner());
    cdcl_obs::set_enabled(true);
    // Drive the per-row watchdog directly: in debug builds the autograd
    // graph asserts finiteness on every node, so NaN probabilities cannot
    // come out of a real forward pass here — but a release-mode numeric
    // blow-up lands exactly on this screening path.
    let stats = ServeStats::default();
    let bad = cdcl_bench::serve::row_response(9, false, 0, &[0.5, f32::NAN], &stats);
    let line = serde_json::to_string(&bad).expect("serialize response");
    assert!(
        line.contains("\"ok\":false") && line.contains("non-finite"),
        "garbage prediction shipped instead of an error: {line}"
    );
    assert_eq!(stats.failed(), 1);
    let good = cdcl_bench::serve::row_response(10, true, 0, &[0.25, 0.75], &stats);
    let line = serde_json::to_string(&good).expect("serialize response");
    assert!(line.contains("\"ok\":true") && line.contains("\"pred\":1"));
    assert_eq!(stats.failed(), 1, "finite rows pass the watchdog");
    // The cumulative process-wide counter recorded the event.
    let exposition = cdcl_obs::global().render_prometheus();
    let count: u64 = exposition
        .lines()
        .find(|l| l.starts_with("cdcl_serve_nonfinite_total "))
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|v| v.parse().ok())
        .expect("nonfinite counter present");
    assert!(count >= 1);
}
