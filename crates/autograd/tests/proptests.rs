//! Property-based tests of the autodiff engine: algebraic identities that
//! must hold for *any* input, complementing the pointwise finite-difference
//! checks in `gradcheck.rs`.

use cdcl_autograd::{Graph, Param};
use cdcl_tensor::Tensor;
use proptest::prelude::*;

fn small_matrix() -> impl Strategy<Value = Tensor> {
    (1usize..4, 1usize..4).prop_flat_map(|(r, c)| {
        prop::collection::vec(-3.0f32..3.0, r * c)
            .prop_map(move |data| Tensor::from_vec(data, &[r, c]))
    })
}

/// Runs `build` on a fresh graph and returns the gradient it produces on
/// `p` (zeroing first).
fn grad_of(
    p: &Param,
    build: impl Fn(&mut Graph, cdcl_autograd::Var) -> cdcl_autograd::Var,
) -> Tensor {
    p.zero_grad();
    let mut g = Graph::new();
    let pv = g.param(p);
    let loss = build(&mut g, pv);
    g.backward(loss);
    p.grad()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// d(sum(x))/dx == 1 everywhere.
    #[test]
    fn grad_of_sum_is_ones(t in small_matrix()) {
        let p = Param::new("p", t.clone());
        let grad = grad_of(&p, |g, pv| g.sum_all(pv));
        let ones = Tensor::ones(t.shape());
        prop_assert_eq!(grad.data(), ones.data());
    }

    /// Gradients are linear in the loss: backward of (a·L) gives a·∇L.
    #[test]
    fn grad_scales_with_loss(t in small_matrix(), a in 0.5f32..4.0) {
        let p = Param::new("p", t);
        let g1 = grad_of(&p, |g, pv| {
            let y = g.mul(pv, pv);
            g.sum_all(y)
        });
        let g2 = grad_of(&p, move |g, pv| {
            let y = g.mul(pv, pv);
            let s = g.sum_all(y);
            g.scale(s, a)
        });
        for (x, y) in g1.data().iter().zip(g2.data().iter()) {
            prop_assert!((a * x - y).abs() < 1e-3 * (1.0 + y.abs()), "{} vs {}", a * x, y);
        }
    }

    /// Backward of a sum of losses equals the sum of separate backwards.
    #[test]
    fn grad_of_sum_of_losses_accumulates(t in small_matrix()) {
        let p = Param::new("p", t);
        let combined = grad_of(&p, |g, pv| {
            let sq = g.mul(pv, pv);
            let l1 = g.sum_all(sq);
            let l2 = g.sum_all(pv);
            g.add(l1, l2)
        });
        let part1 = grad_of(&p, |g, pv| {
            let sq = g.mul(pv, pv);
            g.sum_all(sq)
        });
        let part2 = grad_of(&p, |g, pv| g.sum_all(pv));
        for ((c, a), b) in combined.data().iter().zip(part1.data()).zip(part2.data()) {
            prop_assert!((c - (a + b)).abs() < 1e-4);
        }
    }

    /// Constants (inputs) block gradient flow: a loss that only touches an
    /// input leaves the parameter untouched.
    #[test]
    fn inputs_block_gradients(t in small_matrix()) {
        let p = Param::new("p", t.clone());
        p.zero_grad();
        let mut g = Graph::new();
        let _pv = g.param(&p);
        let x = g.input(t);
        let y = g.mul(x, x);
        let loss = g.sum_all(y);
        g.backward(loss);
        prop_assert_eq!(p.grad().sq_norm(), 0.0);
    }

    /// Softmax gradient rows are orthogonal to the all-ones vector (softmax
    /// outputs sum to a constant, so uniform upstream gradients vanish).
    #[test]
    fn softmax_grad_vanishes_for_uniform_upstream(t in small_matrix()) {
        let p = Param::new("p", t);
        let grad = grad_of(&p, |g, pv| {
            let s = g.softmax_last(pv);
            g.sum_all(s) // uniform upstream gradient of 1 on every element
        });
        prop_assert!(grad.sq_norm() < 1e-8, "norm {}", grad.sq_norm());
    }

    /// log-softmax + NLL equals the classic cross-entropy gradient
    /// (softmax(p) - onehot) / batch.
    #[test]
    fn nll_gradient_is_softmax_minus_onehot(
        rows in 1usize..4,
        cols in 2usize..5,
        seed in 0u64..100,
    ) {
        use rand::rngs::SmallRng;
        use rand::SeedableRng;
        let mut rng = SmallRng::seed_from_u64(seed);
        let t = Tensor::randn(&mut rng, &[rows, cols], 1.0);
        let targets: Vec<usize> = (0..rows).map(|i| i % cols).collect();
        let p = Param::new("logits", t.clone());
        let grad = grad_of(&p, |g, pv| {
            let lp = g.log_softmax_last(pv);
            g.nll_loss(lp, &targets)
        });
        let soft = t.softmax_last();
        let onehot = Tensor::one_hot(&targets, cols);
        let expected = soft.sub(&onehot).scale(1.0 / rows as f32);
        for (a, b) in grad.data().iter().zip(expected.data().iter()) {
            prop_assert!((a - b).abs() < 1e-4, "{a} vs {b}");
        }
    }
}
