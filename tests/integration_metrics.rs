//! End-to-end `cdcl-obs`: a metrics-on smoke run must populate the global
//! registry (trainer health metrics + published kernel counters, visible in
//! both expositions, with a `health` event in the trace when telemetry is
//! also on), and the metrics layer must not perturb training — metrics-off
//! and metrics-on runs are **bitwise identical**.

use std::path::PathBuf;
use std::sync::Mutex;

use cdcl::core::{CdclConfig, CdclTrainer, ContinualLearner};
use cdcl::data::{mnist_usps, MnistUspsDirection, Scale};
use cdcl::nn::Module;
use cdcl::{obs, telemetry};

/// The metrics registry (and the telemetry sink) are process-global; tests
/// that toggle them must not overlap.
static METRICS_GUARD: Mutex<()> = Mutex::new(());

fn tmp_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("cdcl-metrics-{tag}-{}.jsonl", std::process::id()))
}

/// Trains two tasks of the smoke stream and evaluates both scenarios,
/// returning the final parameter tensors.
fn train_two_tasks() -> Vec<(String, Vec<f32>)> {
    let stream = mnist_usps(MnistUspsDirection::MnistToUsps, Scale::Smoke);
    let mut config = CdclConfig::smoke();
    config.epochs = 3;
    config.warmup_epochs = 1;
    let mut trainer = CdclTrainer::new(config);
    for task in stream.tasks.iter().take(2) {
        trainer.learn_task(task);
    }
    trainer.eval_til(0, &stream.tasks[0].target_test);
    trainer.eval_cil(0, &stream.tasks[0].target_test);
    trainer
        .model()
        .params()
        .into_iter()
        .map(|p| (p.name(), p.value().data().to_vec()))
        .collect()
}

/// Parses the value of a plain `name value` sample line from the
/// Prometheus exposition.
fn sample(exposition: &str, name: &str) -> f64 {
    exposition
        .lines()
        .find(|l| l.starts_with(name) && l[name.len()..].starts_with(' '))
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| panic!("sample `{name}` missing from exposition:\n{exposition}"))
}

#[test]
fn metrics_on_run_populates_the_registry_and_health_trace() {
    let _g = METRICS_GUARD.lock().unwrap_or_else(|p| p.into_inner());
    let path = tmp_path("health");
    telemetry::set_trace_file(Some(&path));
    obs::set_enabled(true);
    train_two_tasks();
    obs::set_enabled(false);
    telemetry::set_trace_file(None); // flushes and closes
    let trace = std::fs::read_to_string(&path).expect("trace file readable");
    std::fs::remove_file(&path).ok();

    let text = obs::global().render_prometheus();
    // Trainer counters and gauges carry real values.
    assert!(sample(&text, "cdcl_train_steps_total") > 0.0);
    assert!(sample(&text, "cdcl_train_tasks_total") >= 2.0);
    let occupancy = sample(&text, "cdcl_train_memory_occupancy");
    let capacity = sample(&text, "cdcl_train_memory_capacity");
    assert!(occupancy > 0.0 && occupancy <= capacity);
    for gauge in [
        "cdcl_train_loss",
        "cdcl_train_grad_norm",
        "cdcl_train_pair_agreement",
        "cdcl_train_pseudo_flip_rate",
    ] {
        sample(&text, gauge); // present (values are run-dependent)
    }
    // Step timers filled their histograms, with derived percentiles.
    assert!(text.contains("# TYPE cdcl_train_warmup_step_us histogram"));
    assert!(sample(&text, "cdcl_train_warmup_step_us_count") > 0.0);
    assert!(sample(&text, "cdcl_train_adaptation_step_us_count") > 0.0);
    assert!(sample(&text, "cdcl_train_adaptation_step_us_p99") > 0.0);
    // Kernel counters were published into the registry at task end.
    assert!(sample(&text, "cdcl_kernel_gemm_calls_total") > 0.0);
    // The JSON exposition sees the same registry.
    let json = obs::global().render_json();
    assert!(json.contains("\"cdcl_train_steps_total\""), "{json}");
    assert!(json.contains("\"cdcl_train_adaptation_step_us\""), "{json}");

    // With telemetry also on, each adaptation epoch folded a registry
    // snapshot into the trace as a `health` event.
    let health: Vec<&str> = trace
        .lines()
        .filter(|l| l.contains("\"ev\":\"health\""))
        .collect();
    assert!(!health.is_empty(), "no health events in trace");
    let last = health.last().unwrap();
    assert!(last.contains("\"steps_total\":"), "{last}");
    assert!(last.contains("\"adaptation_step_us_p99\":"), "{last}");
}

#[test]
fn metrics_do_not_perturb_training() {
    let _g = METRICS_GUARD.lock().unwrap_or_else(|p| p.into_inner());
    obs::set_enabled(false);
    let baseline = train_two_tasks();
    obs::set_enabled(true);
    let metered = train_two_tasks();
    obs::set_enabled(false);

    assert_eq!(baseline.len(), metered.len());
    for ((name, a), (metered_name, b)) in baseline.iter().zip(metered.iter()) {
        assert_eq!(name, metered_name);
        // Bitwise equality on the raw f32 data: the metrics layer only
        // *observes* training — it must never change a single bit of it.
        assert_eq!(a, b, "param {name} diverged under metrics");
    }
}
