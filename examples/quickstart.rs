//! Quickstart: train CDCL on the MNIST→USPS analogue and print the
//! continual-learning metrics.
//!
//! ```text
//! cargo run --release -p cdcl --example quickstart
//! ```

use cdcl::core::{run_stream, CdclConfig, CdclTrainer};
use cdcl::data::{mnist_usps, MnistUspsDirection, Scale};

fn main() {
    // 10 digit classes split into 5 sequential tasks of 2 classes each.
    // Each task ships labelled source images (MNIST-like rendering) and
    // UNLABELLED target images (USPS-like rendering).
    let stream = mnist_usps(MnistUspsDirection::MnistToUsps, Scale::Standard);
    println!(
        "stream `{}`: {} tasks x {} classes",
        stream.name,
        stream.num_tasks(),
        stream.tasks[0].num_classes()
    );

    // The default config is the paper's recipe (AdamW, flat warm-up then
    // cosine annealing, fixed-size rehearsal memory), scaled to CPU.
    let config = CdclConfig::default();
    let mut learner = CdclTrainer::new(config);

    // learn task 1, evaluate tasks 1..1; learn task 2, evaluate 1..2; ...
    let result = run_stream(&mut learner, &stream);

    println!("\nTask-incremental (task id given at inference):");
    println!("  average accuracy : {:.1}%", result.til_acc_pct());
    println!("  forgetting       : {:.1}%", result.til_fgt_pct());
    println!("Class-incremental (no task id at inference):");
    println!("  average accuracy : {:.1}%", result.cil_acc_pct());
    println!("  forgetting       : {:.1}%", result.cil_fgt_pct());

    println!("\nR-matrix (TIL): rows = after learning task i, cols = accuracy on task j");
    for i in 0..result.til.num_tasks() {
        let row: Vec<String> = (0..=i)
            .map(|j| format!("{:5.1}", result.til.at(i, j) * 100.0))
            .collect();
        println!("  after task {i}: [{}]", row.join(", "));
    }

    println!(
        "\nrehearsal memory: {} / {} records",
        learner.memory().len(),
        learner.memory().capacity()
    );
}
