//! CDTrans-S/B (Xu et al., 2021): the state-of-the-art *static* UDA
//! cross-attention transformer, dropped unchanged into the continual
//! protocol. It has the full UDA machinery — source warm-up, center-aware
//! pseudo-labels, and source↔target cross-attention — but **no**
//! task-specific parameters and **no** rehearsal: every new task fine-tunes
//! the same weights, so the feature alignment of earlier tasks is destroyed
//! (the feature-alignment catastrophic forgetting the paper demonstrates in
//! Tables I–III, where CDTrans collapses despite being the strongest static
//! method).

use cdcl_autograd::{Graph, Var};
use cdcl_core::protocol::ContinualLearner;
use cdcl_core::pseudo::{build_pairs, nearest_centroid_labels, weighted_centroids, Pair};
use cdcl_core::CdclModel;
use cdcl_data::{stack, Batcher, Sample, TaskData};
use cdcl_nn::Module;
use cdcl_optim::{AdamW, LrSchedule, Optimizer, WarmupCosine};
use cdcl_tensor::Tensor;
use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::shared::{eval_cil_model, eval_til_model, stack_batch, EVAL_CHUNK};
use crate::BaselineConfig;

/// Model size: the paper compares a Small and a Base CDTrans.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CdTransSize {
    /// Shallower encoder.
    Small,
    /// Deeper encoder.
    Base,
}

/// The CDTrans learner.
pub struct CdTransTrainer {
    size: CdTransSize,
    config: BaselineConfig,
    model: CdclModel,
    optimizer: AdamW,
    rng: SmallRng,
}

impl CdTransTrainer {
    /// Builds a CDTrans learner of the given size.
    pub fn new(size: CdTransSize, config: BaselineConfig) -> Self {
        let mut config = config.normalized();
        if size == CdTransSize::Base {
            config.backbone.depth += 1;
        }
        let mut rng = SmallRng::seed_from_u64(config.seed);
        let model = CdclModel::new(&mut rng, config.backbone);
        let optimizer = AdamW::new(model.params());
        Self {
            size,
            config,
            model,
            optimizer,
            rng,
        }
    }

    /// The underlying model.
    pub fn model(&self) -> &CdclModel {
        &self.model
    }

    fn extract_features(&self, samples: &[Sample], task: usize) -> Tensor {
        let mut parts = Vec::new();
        for chunk in (0..samples.len()).collect::<Vec<_>>().chunks(EVAL_CHUNK) {
            let (imgs, _) = stack_batch(samples, chunk);
            parts.push(self.model.extract_features(&imgs, task));
        }
        let refs: Vec<&Tensor> = parts.iter().collect();
        Tensor::concat0(&refs)
    }

    fn til_probabilities(&self, samples: &[Sample], task: usize) -> Tensor {
        let mut parts = Vec::new();
        for chunk in (0..samples.len()).collect::<Vec<_>>().chunks(EVAL_CHUNK) {
            let (imgs, _) = stack_batch(samples, chunk);
            parts.push(self.model.predict_til(&imgs, task));
        }
        let refs: Vec<&Tensor> = parts.iter().collect();
        Tensor::concat0(&refs)
    }

    fn refresh_pairs(&self, task: &TaskData) -> Vec<Pair> {
        let t = task.task_id;
        let src_feats = self.extract_features(&task.source_train, t);
        let src_labels: Vec<usize> = task.source_train.iter().map(|s| s.label).collect();
        let tgt_feats = self.extract_features(&task.target_train, t);
        let tgt_probs = self.til_probabilities(&task.target_train, t);
        let centroids = weighted_centroids(&tgt_probs, &tgt_feats);
        let pseudo = nearest_centroid_labels(&tgt_feats, &centroids);
        let hard = Tensor::one_hot(&pseudo, centroids.shape()[0]);
        let centroids = weighted_centroids(&hard, &tgt_feats);
        let pseudo = nearest_centroid_labels(&tgt_feats, &centroids);
        let pairs = build_pairs(&src_feats, &src_labels, &tgt_feats, &pseudo);
        if !pairs.is_empty() {
            return pairs;
        }
        (0..task.target_train.len().min(task.source_train.len()))
            .map(|i| Pair {
                source: i,
                target: i,
                label: task.source_train[i].label,
            })
            .collect()
    }

    fn warmup_step(&mut self, task: &TaskData, idx: &[usize], lr: f32) {
        let t = task.task_id;
        let (imgs, labels) = stack_batch(&task.source_train, idx);
        let globals: Vec<usize> = labels
            .iter()
            .map(|&l| self.model.class_offset(t) + l)
            .collect();
        let mut g = Graph::new();
        let x = g.input(imgs);
        let z = self.model.features_self(&mut g, x, t);
        let til = self.model.til_logits(&mut g, z, t);
        let cil = self.model.cil_logits(&mut g, z);
        let lp_til = g.log_softmax_last(til);
        let lp_cil = g.log_softmax_last(cil);
        let l1 = g.nll_loss(lp_til, &labels);
        let l2 = g.nll_loss(lp_cil, &globals);
        let loss = g.add(l1, l2);
        self.optimizer.zero_grad();
        g.backward(loss);
        self.optimizer.step(lr);
    }

    fn adaptation_step(&mut self, task: &TaskData, pairs: &[Pair], lr: f32) {
        let t = task.task_id;
        let src_refs: Vec<&Sample> = pairs.iter().map(|p| &task.source_train[p.source]).collect();
        let tgt_refs: Vec<&Sample> = pairs.iter().map(|p| &task.target_train[p.target]).collect();
        let (src_imgs, _) = stack(&src_refs);
        let (tgt_imgs, _) = stack(&tgt_refs);
        let labels: Vec<usize> = pairs.iter().map(|p| p.label).collect();
        let globals: Vec<usize> = labels
            .iter()
            .map(|&l| self.model.class_offset(t) + l)
            .collect();
        let mut g = Graph::new();
        let xs = g.input(src_imgs);
        let xt = g.input(tgt_imgs);
        let zs = self.model.features_self(&mut g, xs, t);
        let zt = self.model.features_self(&mut g, xt, t);
        let zm = self.model.features_cross(&mut g, xs, xt, t);

        // CDTrans's three-branch objective: source CE, target pseudo-CE,
        // and mixed-branch distillation toward the target branch.
        let triple = |g: &mut Graph, til: bool, labels: &[usize]| -> Var {
            let (ls, lt, lm) = if til {
                (
                    self.model.til_logits(g, zs, t),
                    self.model.til_logits(g, zt, t),
                    self.model.til_logits(g, zm, t),
                )
            } else {
                (
                    self.model.cil_logits(g, zs),
                    self.model.cil_logits(g, zt),
                    self.model.cil_logits(g, zm),
                )
            };
            let lp_s = g.log_softmax_last(ls);
            let lp_t = g.log_softmax_last(lt);
            let lp_m = g.log_softmax_last(lm);
            let l1 = g.nll_loss(lp_s, labels);
            let l2 = g.nll_loss(lp_t, labels);
            let teacher = g.value(lm).softmax_last();
            let l3 = g.ce_soft(lp_t, teacher);
            let teacher_t = g.value(lt).softmax_last();
            let l4 = g.ce_soft(lp_m, teacher_t);
            let l3 = g.scale(l3, 0.5);
            let l4 = g.scale(l4, 0.5);
            let a = g.add(l1, l2);
            let b = g.add(l3, l4);
            g.add(a, b)
        };
        let l_til = triple(&mut g, true, &labels);
        let l_cil = triple(&mut g, false, &globals);
        let loss = g.add(l_til, l_cil);
        self.optimizer.zero_grad();
        g.backward(loss);
        self.optimizer.step(lr);
    }
}

impl ContinualLearner for CdTransTrainer {
    fn name(&self) -> String {
        match self.size {
            CdTransSize::Small => "CDTrans-S".into(),
            CdTransSize::Base => "CDTrans-B".into(),
        }
    }

    fn learn_task(&mut self, task: &TaskData) {
        self.model.add_task(&mut self.rng, task.num_classes());
        self.optimizer.rebind(self.model.params());
        let schedule = WarmupCosine {
            warmup_lr: self.config.peak_lr * 0.5,
            peak_lr: self.config.peak_lr,
            min_lr: self.config.min_lr,
            warmup_epochs: self.config.warmup_epochs,
            total_epochs: self.config.epochs,
        };
        let mut src_batcher = Batcher::new(
            task.source_train.len(),
            self.config.batch_size,
            self.config.seed ^ ((task.task_id as u64) << 12),
        );
        for epoch in 0..self.config.epochs {
            let lr = schedule.lr(epoch);
            if epoch < self.config.warmup_epochs {
                for batch in src_batcher.epoch() {
                    self.warmup_step(task, &batch, lr);
                }
            } else {
                let pairs = self.refresh_pairs(task);
                let mut pair_batcher = Batcher::new(
                    pairs.len(),
                    self.config.batch_size,
                    self.config.seed ^ ((task.task_id as u64) << 12 | epoch as u64),
                );
                for batch in pair_batcher.epoch() {
                    let subset: Vec<Pair> = batch.iter().map(|&i| pairs[i]).collect();
                    self.adaptation_step(task, &subset, lr);
                }
            }
        }
    }

    fn eval_til(&self, task_id: usize, test: &[Sample]) -> f64 {
        eval_til_model(&self.model, task_id, test)
    }

    fn eval_cil(&self, task_id: usize, test: &[Sample]) -> f64 {
        eval_cil_model(&self.model, task_id, test)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_differ_in_depth_and_name() {
        let s = CdTransTrainer::new(CdTransSize::Small, BaselineConfig::smoke());
        let b = CdTransTrainer::new(CdTransSize::Base, BaselineConfig::smoke());
        assert_eq!(s.name(), "CDTrans-S");
        assert_eq!(b.name(), "CDTrans-B");
        assert!(b.model().backbone().num_parameters() > s.model().backbone().num_parameters());
    }
}
