//! `serve-load`: the load generator for `cdcl-serve --tcp` (DESIGN.md §13).
//!
//! Drives `--conns` concurrent client connections, each pipelining
//! `--requests` JSONL prediction requests in windows of `--window`, and
//! verifies every response (ids echoed in order, `ok:true` with a
//! prediction, no drops). Writes `BENCH_serve_load.json` with sustained
//! RPS over wall-clock and p50/p95/p99 request round-trip latency — the
//! series the CI `bench-diff` soft gate tracks.
//!
//! ```text
//! cargo run --release -p cdcl-bench --bin cdcl-serve -- \
//!     --snapshot ckpts/task001.cdclsnap --tcp 127.0.0.1:7071 --conns 4 &
//! cargo run --release -p cdcl-bench --bin serve-load -- \
//!     --addr 127.0.0.1:7071 --conns 4 --requests 200 --window 16
//! ```
//!
//! The image length is probed from the server when `--image-floats` is
//! omitted, so the generator needs no knowledge of the snapshot's input
//! shape.

use cdcl_bench::serve::load;

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = load::parse_load_args_from(&argv).unwrap_or_else(|e| {
        eprintln!("serve-load: {e}");
        std::process::exit(2);
    });
    match load::run_load(&args) {
        Ok(report) => {
            cdcl_bench::maybe_write_json(&args.bench_out, &report);
            eprintln!(
                "serve-load: {} requests over {} conns in {:.2}s -> {:.1} rps, latency_us p50 {:.0} p99 {:.0} ({} busy)",
                report.sent,
                report.conns,
                report.duration_secs,
                report.rps,
                report.latency_us.p50,
                report.latency_us.p99,
                report.busy_responses
            );
        }
        Err(e) => {
            eprintln!("serve-load: FAILED: {e}");
            std::process::exit(1);
        }
    }
}
