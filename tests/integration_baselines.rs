//! End-to-end tests of the baseline learners.

use cdcl::baselines::{
    run_static_uda, BaselineConfig, CdTransSize, CdTransTrainer, DerTrainer, DerVariant,
    HalTrainer, MlsTrainer,
};
use cdcl::core::protocol::ContinualLearner;
use cdcl::core::run_stream;
use cdcl::data::{mnist_usps, MnistUspsDirection, Scale};

fn smoke_stream() -> cdcl::data::CrossDomainStream {
    mnist_usps(MnistUspsDirection::MnistToUsps, Scale::Smoke)
}

fn two_task_config() -> BaselineConfig {
    let mut c = BaselineConfig::smoke();
    c.epochs = 10;
    c.warmup_epochs = 3;
    c
}

#[test]
fn der_learns_source_supervised_tasks() {
    let stream = smoke_stream();
    let mut t = DerTrainer::new(DerVariant::DerPlusPlus, two_task_config());
    for task in stream.tasks.iter().take(2) {
        t.learn_task(task);
    }
    // MNIST<->USPS is a near pair: source-only training should transfer
    // clearly above chance on the current task's target test set.
    let acc = t.eval_til(1, &stream.tasks[1].target_test);
    assert!(acc > 0.55, "DER++ near-domain transfer too weak: {acc}");
    assert!(t.memory_len() > 0);
}

#[test]
fn hal_and_mls_run_two_tasks() {
    let stream = smoke_stream();
    let mut hal = HalTrainer::new(two_task_config());
    let mut mls = MlsTrainer::new(two_task_config());
    for task in stream.tasks.iter().take(2) {
        hal.learn_task(task);
        mls.learn_task(task);
    }
    for (name, acc) in [
        ("HAL", hal.eval_til(1, &stream.tasks[1].target_test)),
        ("MLS", mls.eval_til(1, &stream.tasks[1].target_test)),
    ] {
        assert!((0.0..=1.0).contains(&acc), "{name} out of range");
        assert!(acc > 0.5, "{name} below chance on current task: {acc}");
    }
}

#[test]
fn cdtrans_adapts_current_task_but_has_no_cl_mechanism() {
    let stream = smoke_stream();
    let mut t = CdTransTrainer::new(CdTransSize::Small, two_task_config());
    t.learn_task(&stream.tasks[0]);
    let fresh = t.eval_til(0, &stream.tasks[0].target_test);
    assert!(fresh > 0.6, "CDTrans should ace its first task: {fresh}");
    // No frozen task parameters exist anywhere in the model.
    use cdcl::nn::Module;
    assert!(t.model().params().iter().all(|p| p.trainable()));
}

#[test]
fn static_upper_bound_beats_sequential_cdtrans() {
    // The TVT-style joint trainer sees all tasks at once; sequential
    // CDTrans forgets. The gap is the paper's headline motivation.
    let stream = smoke_stream();
    let cfg = two_task_config();
    let upper = run_static_uda(&stream, cfg);
    let mut seq = CdTransTrainer::new(CdTransSize::Small, cfg);
    let seq_result = run_stream(&mut seq, &stream);
    assert!(
        upper.til_acc_pct() > seq_result.til_acc_pct(),
        "static {:.1}% must beat sequential {:.1}%",
        upper.til_acc_pct(),
        seq_result.til_acc_pct()
    );
    assert_eq!(upper.per_task_til.len(), stream.num_tasks());
}

#[test]
fn all_baselines_fill_the_protocol_matrices() {
    let stream = smoke_stream();
    let mut cfg = BaselineConfig::smoke();
    cfg.epochs = 2;
    cfg.warmup_epochs = 1;
    let mut learners: Vec<Box<dyn ContinualLearner>> = vec![
        Box::new(DerTrainer::new(DerVariant::Der, cfg)),
        Box::new(HalTrainer::new(cfg)),
        Box::new(MlsTrainer::new(cfg)),
        Box::new(CdTransTrainer::new(CdTransSize::Small, cfg)),
    ];
    for learner in &mut learners {
        let r = run_stream(learner.as_mut(), &stream);
        assert_eq!(r.til.num_tasks(), 5, "{}", r.method);
        assert!(r.til.acc() >= 0.0 && r.til.acc() <= 1.0);
        assert!(r.cil.acc() >= 0.0 && r.cil.acc() <= 1.0);
    }
}
