//! Admission control: per-model in-flight quotas (DESIGN.md §13).
//!
//! A request is *admitted* when it enters a connection's pending queue and
//! stays admitted until its response has been computed — so the quota
//! bounds queued + executing work per model across **all** connections,
//! which is exactly the unbounded-queueing failure mode the backpressure
//! exists to prevent. Shed requests are answered `ok:false` with a
//! `busy: …` error instead of waiting.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// One model's admission state. `max_inflight == 0` means unlimited.
#[derive(Debug, Default)]
pub struct Admission {
    max_inflight: usize,
    inflight: AtomicUsize,
}

impl Admission {
    /// A quota of `max_inflight` concurrently admitted requests
    /// (0 = unlimited).
    pub fn new(max_inflight: usize) -> Self {
        Self {
            max_inflight,
            inflight: AtomicUsize::new(0),
        }
    }

    /// Tries to admit one request; the returned [`Ticket`] releases the
    /// slot on drop. `None` means the model is at quota and the request
    /// must be shed.
    pub fn try_acquire(self: &Arc<Self>) -> Option<Ticket> {
        // ordering: flag — inflight ticket counter; AcqRel makes admit/release atomic handoffs.
        let prev = self.inflight.fetch_add(1, Ordering::AcqRel);
        if self.max_inflight > 0 && prev >= self.max_inflight {
            // ordering: flag — rollback of the optimistic increment above.
            self.inflight.fetch_sub(1, Ordering::AcqRel);
            return None;
        }
        Some(Ticket {
            admission: Arc::clone(self),
        })
    }

    /// Requests currently admitted (queued or executing).
    pub fn inflight(&self) -> usize {
        // ordering: flag — snapshot for metrics/limit checks; staleness only over- or under-admits by one.
        self.inflight.load(Ordering::Acquire)
    }

    /// The configured quota (0 = unlimited).
    pub fn max_inflight(&self) -> usize {
        self.max_inflight
    }
}

/// RAII admission slot: dropping it (response written, or request thrown
/// away on a dropped connection) frees one unit of the model's quota.
#[derive(Debug)]
pub struct Ticket {
    admission: Arc<Admission>,
}

impl Drop for Ticket {
    fn drop(&mut self) {
        // ordering: flag — ticket release on drop; pairs with the AcqRel in try_admit.
        self.admission.inflight.fetch_sub(1, Ordering::AcqRel);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quota_bounds_inflight_and_tickets_release() {
        let a = Arc::new(Admission::new(2));
        let t1 = a.try_acquire().expect("first admit");
        let _t2 = a.try_acquire().expect("second admit");
        assert_eq!(a.inflight(), 2);
        assert!(a.try_acquire().is_none(), "third request must be shed");
        assert_eq!(a.inflight(), 2, "failed acquire leaks no slot");
        drop(t1);
        assert_eq!(a.inflight(), 1);
        let _t3 = a.try_acquire().expect("freed slot admits again");
    }

    #[test]
    fn zero_quota_is_unlimited() {
        let a = Arc::new(Admission::new(0));
        let tickets: Vec<_> = (0..64).map(|_| a.try_acquire()).collect();
        assert!(tickets.iter().all(|t| t.is_some()));
        assert_eq!(a.inflight(), 64);
    }

    #[test]
    fn contended_acquire_never_exceeds_quota() {
        let a = Arc::new(Admission::new(3));
        let admitted = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..8 {
                let a = &a;
                let admitted = &admitted;
                s.spawn(move || {
                    for _ in 0..200 {
                        if let Some(t) = a.try_acquire() {
                            let now = a.inflight();
                            assert!(now <= 3, "quota exceeded: {now}");
                            admitted.fetch_add(1, Ordering::Relaxed);
                            drop(t);
                        }
                    }
                });
            }
        });
        assert_eq!(a.inflight(), 0, "all tickets released");
        assert!(admitted.load(Ordering::Relaxed) > 0);
    }
}
