//! Dense `f32` tensor kernels for the CDCL reproduction.
//!
//! This crate is the numeric substrate underneath everything else in the
//! workspace: it provides a contiguous, row-major, CPU-only tensor type with
//! exactly the operator set the paper's model needs — broadcasting
//! element-wise arithmetic, 2-D and batched matrix multiplication (plain and
//! transpose-fused), `conv2d` and `maxpool2d` (via `im2col`),
//! numerically-stable softmax family reductions, and seeded random
//! initialisation.
//!
//! Design notes (see `DESIGN.md` at the workspace root):
//!
//! * Tensors are **always contiguous**. General permutations copy, but the
//!   hot transpose patterns never do: `A·Bᵀ` and `Aᵀ·B` go through the
//!   fused [`Tensor::matmul_nt`] / [`Tensor::matmul_tn`] kernels, which
//!   read the transposed operand in its stored layout. Only genuinely
//!   layout-changing permutations (e.g. `[b,d,n] -> [b,n,d]` after the
//!   tokenizer) still materialise a copy.
//! * Heavy kernels (GEMM, `im2col` convolution) are **multi-threaded** via
//!   the scoped pool in [`kernels::pool`], sized from `CDCL_THREADS` or the
//!   machine's available parallelism. Every output row is reduced by
//!   exactly one thread in a fixed order, so results are bitwise identical
//!   at every thread count; `CDCL_THREADS=1` runs fully inline.
//! * Shapes are checked eagerly and violations panic with a descriptive
//!   message. Shape errors in a training loop are programming bugs, not
//!   recoverable conditions, mirroring the convention of mainstream numeric
//!   libraries.
//! * All randomness flows through caller-provided [`rand::Rng`] values so
//!   every experiment in the workspace is reproducible from a `u64` seed.
//!
//! # Quick example
//!
//! ```
//! use cdcl_tensor::Tensor;
//!
//! let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
//! let b = Tensor::eye(2);
//! let c = a.matmul(&b);
//! assert_eq!(c.data(), a.data());
//! let s = c.softmax_last();
//! assert!((s.data()[0] + s.data()[1] - 1.0).abs() < 1e-6);
//! ```

pub mod check;
mod conv;
pub mod kernels;
mod matmul;
pub mod pool;
mod reduce;
mod shape;
mod tensor;

pub use check::ShapeError;
pub use conv::{col2im, im2col, Conv2dSpec, Im2col, MaxPoolResult, Pool2dSpec};
pub use pool::{PoolStats, PooledBuf};
pub use shape::{broadcast_shapes, num_elements, strides_for, Shape};
pub use tensor::Tensor;

/// Absolute tolerance used by the crate's own tests when comparing floats.
pub const TEST_EPS: f32 = 1e-4;

/// Asserts that two float slices are element-wise close; used across the
/// workspace's test suites.
pub fn assert_close(actual: &[f32], expected: &[f32], tol: f32) {
    assert_eq!(
        actual.len(),
        expected.len(),
        "length mismatch: {} vs {}",
        actual.len(),
        expected.len()
    );
    for (i, (a, e)) in actual.iter().zip(expected.iter()).enumerate() {
        assert!((a - e).abs() <= tol, "element {i}: {a} vs {e} (tol {tol})");
    }
}
