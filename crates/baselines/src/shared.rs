//! Plumbing shared by the baseline trainers.

use cdcl_autograd::{Graph, Var};
use cdcl_core::protocol::accuracy_from_predictions;
use cdcl_core::CdclModel;
use cdcl_data::{stack, Sample};
use cdcl_tensor::Tensor;

/// Inference chunk size.
pub(crate) const EVAL_CHUNK: usize = 32;

/// Stacks the indexed subset of `samples`.
pub(crate) fn stack_batch(samples: &[Sample], idx: &[usize]) -> (Tensor, Vec<usize>) {
    let refs: Vec<&Sample> = idx.iter().map(|&i| &samples[i]).collect();
    stack(&refs)
}

/// Stacks raw image tensors `[c,h,w]` into a `[b,c,h,w]` batch.
pub(crate) fn stack_images(images: &[&Tensor]) -> Tensor {
    assert!(!images.is_empty());
    let shape = images[0].shape().to_vec();
    let mut data = Vec::with_capacity(images.len() * images[0].len());
    for img in images {
        assert_eq!(img.shape(), &shape[..]);
        data.extend_from_slice(img.data());
    }
    let mut s = vec![images.len()];
    s.extend_from_slice(&shape);
    Tensor::from_vec(data, &s)
}

/// TIL accuracy of a [`CdclModel`]-based learner.
pub(crate) fn eval_til_model(model: &CdclModel, task_id: usize, test: &[Sample]) -> f64 {
    let mut predictions = Vec::with_capacity(test.len());
    for chunk in (0..test.len()).collect::<Vec<_>>().chunks(EVAL_CHUNK) {
        let (imgs, _) = stack_batch(test, chunk);
        predictions.extend(model.predict_til(&imgs, task_id).argmax_last());
    }
    accuracy_from_predictions(&predictions, test)
}

/// CIL accuracy of a [`CdclModel`]-based learner.
pub(crate) fn eval_cil_model(model: &CdclModel, task_id: usize, test: &[Sample]) -> f64 {
    if test.is_empty() {
        return 0.0;
    }
    let offset = model.class_offset(task_id);
    let mut hits = 0usize;
    for chunk in (0..test.len()).collect::<Vec<_>>().chunks(EVAL_CHUNK) {
        let (imgs, labels) = stack_batch(test, chunk);
        let pred = model.predict_cil(&imgs).argmax_last();
        for (p, l) in pred.iter().zip(labels.iter()) {
            if *p == offset + l {
                hits += 1;
            }
        }
    }
    hits as f64 / test.len() as f64
}

/// A `[total, k]` 0/1 selection matrix whose columns pick the first `k`
/// classes — used to narrow a grown CIL logit vector down to the width a
/// memory record was stored with (`logits × selector`).
pub(crate) fn selector_matrix(total: usize, k: usize) -> Tensor {
    assert!(k <= total, "cannot select {k} of {total} columns");
    let mut m = Tensor::zeros(&[total, k]);
    for i in 0..k {
        m.data_mut()[i * k + i] = 1.0;
    }
    m
}

/// Narrows `logits: [b, total]` to its first `k` columns on the tape.
pub(crate) fn narrow_logits(g: &mut Graph, logits: Var, total: usize, k: usize) -> Var {
    if total == k {
        return logits;
    }
    let sel = g.input(selector_matrix(total, k));
    g.matmul(logits, sel)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn selector_picks_leading_columns() {
        let s = selector_matrix(4, 2);
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 4]);
        let y = x.matmul(&s);
        assert_eq!(y.data(), &[1.0, 2.0]);
    }

    #[test]
    fn narrow_is_identity_when_widths_match() {
        let mut g = Graph::new();
        let x = g.input(Tensor::from_vec(vec![1.0, 2.0], &[1, 2]));
        let y = narrow_logits(&mut g, x, 2, 2);
        assert_eq!(g.value(y).data(), &[1.0, 2.0]);
    }

    #[test]
    fn stack_images_builds_batch() {
        let a = Tensor::full(&[1, 2, 2], 1.0);
        let b = Tensor::full(&[1, 2, 2], 2.0);
        let s = stack_images(&[&a, &b]);
        assert_eq!(s.shape(), &[2, 1, 2, 2]);
    }
}
