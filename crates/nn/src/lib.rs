//! Neural-network modules for the CDCL reproduction.
//!
//! The module zoo is exactly the paper's model (§IV-A, Figure 1):
//!
//! * [`ConvTokenizer`] — the CCT-style convolutional tokenizer of Eq. 1
//!   (`MaxPool(ReLU(Conv2d(x)))` stacked), which replaces ViT patch
//!   embedding and emits a `[b, n, d]` token sequence.
//! * [`TaskKeyBank`] + [`InterIntraAttention`] — the *inter- intra-task
//!   cross-attention* of Eqs. 2–3: global query/value projections shared by
//!   every task, per-task key/bias projections `K_i`, `b_i` that are frozen
//!   once their task finishes.
//! * [`EncoderLayer`] / [`Encoder`] — pre-norm transformer encoder stack with
//!   a *self* path (single-domain input) and a *cross* path (source queries
//!   against target keys/values, producing the mixed signal of Figure 1).
//! * [`SeqPool`] — the attention-based sequence pooling of Eqs. 4–6.
//! * [`TilHeads`] (multi-head, one per task) and [`GrowingLinear`] (the
//!   single growing CIL head) — Eqs. 7–8.
//! * [`Backbone`] — tokenizer + encoder + pooling glued together, shared by
//!   CDCL and every baseline so comparisons isolate the algorithm.
//!
//! All modules expose their parameters through [`Module::params`] for the
//! optimizers in `cdcl-optim`.

mod attention;
mod backbone;
mod encoder;
mod heads;
mod init;
mod layers;

pub use attention::{AttentionMode, InterIntraAttention, TaskKeyBank};
pub use backbone::{Backbone, BackboneConfig};
pub use encoder::{Encoder, EncoderLayer, Mlp};
pub use heads::{GrowingLinear, TilHeads};
pub use init::{kaiming_std, xavier_uniform};
pub use layers::{Conv2dLayer, ConvTokenizer, LayerNorm, Linear, SeqPool};

use cdcl_autograd::Param;

/// Anything that owns trainable parameters.
pub trait Module {
    /// All parameters of the module (clones alias the underlying storage).
    fn params(&self) -> Vec<Param>;

    /// Total scalar parameter count.
    fn num_parameters(&self) -> usize {
        self.params().iter().map(Param::num_elements).sum()
    }

    /// `state_dict()`-style export: every parameter keyed by its name, in
    /// the same deterministic order as [`Module::params`]. Snapshot writers
    /// iterate this; loaders match entries back by position + name.
    fn state_dict(&self) -> Vec<(String, Param)> {
        self.params().into_iter().map(|p| (p.name(), p)).collect()
    }
}
