//! The tape: forward operator construction and the reverse pass.
//!
//! Nodes are appended in topological order by construction, so the backward
//! pass is a single reverse sweep. Gradients are accumulated per node and
//! finally pushed into [`Param`] cells.

use cdcl_tensor::{col2im, Conv2dSpec, Im2col, Pool2dSpec, PooledBuf, Tensor};

use crate::Param;

/// Handle to a node on the tape. Cheap to copy; only valid for the graph
/// that produced it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Var(pub(crate) usize);

/// GELU tanh-approximation constants.
const GELU_C: f32 = 0.797_884_6; // sqrt(2/pi)
const GELU_A: f32 = 0.044_715;

pub(crate) enum Op {
    /// Constant input (no gradient flows out of the graph).
    Input,
    /// Leaf bound to an external parameter cell.
    Leaf(Param),
    Add(Var, Var),
    Sub(Var, Var),
    Mul(Var, Var),
    Scale(Var, f32),
    AddScalar(Var),
    Matmul(Var, Var),
    /// Fused `a · bᵀ` (`b` read in stored layout; no transposed copy).
    MatmulNT(Var, Var),
    TransposeLast2(Var),
    Reshape(Var),
    Concat0(Vec<Var>),
    Relu(Var),
    Gelu(Var),
    SoftmaxLast(Var),
    LogSoftmaxLast(Var),
    SumLast(Var),
    MeanAll(Var),
    SumAll(Var),
    LayerNorm {
        x: Var,
        gamma: Var,
        beta: Var,
        /// Cached per-row normalized activations (x - mean) * inv_std.
        xhat: Tensor,
        /// Cached per-row inverse standard deviations, shape = rows.
        inv_std: Tensor,
    },
    Conv2d {
        w: Var,
        bias: Option<Var>,
        info: ConvSaved,
    },
    MaxPool2d {
        x: Var,
        argmax: Vec<usize>,
        /// Pool geometry, kept so the verifier can re-infer the output shape.
        spec: Pool2dSpec,
    },
    /// Negative log-likelihood of integer targets given log-probabilities.
    Nll {
        logp: Var,
        targets: Vec<usize>,
    },
    /// `-mean_rows Σ_j probs_ij · logp_ij` with constant soft targets.
    CeSoft {
        logp: Var,
        probs: Tensor,
    },
    /// `mean_rows Σ_j p_ij (ln p_ij − logq_ij)` with constant teacher `p`.
    KlDiv {
        logq: Var,
        p: Tensor,
    },
    Mse(Var, Var),
}

pub(crate) struct Node {
    pub(crate) value: Tensor,
    pub(crate) op: Op,
}

/// A single forward pass's computation tape.
///
/// A `Graph` is also a per-step **arena**: [`Graph::reset_for_step`] clears
/// the tape while keeping the node array's capacity (and the backward
/// pass's gradient scratch), so a training loop that holds one `Graph` and
/// resets it each step records every subsequent tape without growing the
/// heap — dropped node tensors return their buffers to the tensor pool,
/// where the next step's ops pick them back up.
#[derive(Default)]
pub struct Graph {
    pub(crate) nodes: Vec<Node>,
    /// Recycled per-node gradient slots for [`Graph::backward`]; parked
    /// empty between calls, capacity retained across steps.
    grads_scratch: Vec<Option<Tensor>>,
}

impl Graph {
    /// Creates an empty tape.
    pub fn new() -> Self {
        Self::default()
    }

    /// Clears the tape for the next training step, retaining allocated
    /// capacity (the arena lifecycle, DESIGN.md §12). Node tensors dropped
    /// here return their storage to the tensor pool; the `Node` array and
    /// gradient scratch keep their capacity, so steady-state steps record
    /// and differentiate without touching the allocator.
    pub fn reset_for_step(&mut self) {
        self.nodes.clear();
    }

    /// Number of nodes recorded so far.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when no nodes have been recorded.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The forward value of a node.
    pub fn value(&self, v: Var) -> &Tensor {
        &self.nodes[v.0].value
    }

    /// Overwrites a node's forward value in place, bypassing every kernel
    /// check. Exists solely so negative tests can present the verifier with
    /// an inconsistent tape — the eager forward pass would otherwise fail
    /// inside a tensor kernel before [`Graph::check_shapes`] ever runs.
    #[doc(hidden)]
    pub fn corrupt_node_for_tests(&mut self, v: Var, value: Tensor) {
        self.nodes[v.0].value = value;
    }

    fn push(&mut self, value: Tensor, op: Op) -> Var {
        debug_assert!(value.all_finite(), "non-finite forward value");
        self.nodes.push(Node { value, op });
        Var(self.nodes.len() - 1)
    }

    // ------------------------------------------------------------------
    // Leaves
    // ------------------------------------------------------------------

    /// Records a constant: no gradient is propagated past it.
    pub fn input(&mut self, t: Tensor) -> Var {
        self.push(t, Op::Input)
    }

    /// Registers a parameter; its gradient is accumulated into the cell by
    /// [`Graph::backward`].
    pub fn param(&mut self, p: &Param) -> Var {
        self.push(p.value(), Op::Leaf(p.clone()))
    }

    // ------------------------------------------------------------------
    // Arithmetic
    // ------------------------------------------------------------------

    /// Broadcasting element-wise sum.
    pub fn add(&mut self, a: Var, b: Var) -> Var {
        let v = self.value(a).add(self.value(b));
        self.push(v, Op::Add(a, b))
    }

    /// Broadcasting element-wise difference.
    pub fn sub(&mut self, a: Var, b: Var) -> Var {
        let v = self.value(a).sub(self.value(b));
        self.push(v, Op::Sub(a, b))
    }

    /// Broadcasting element-wise product.
    pub fn mul(&mut self, a: Var, b: Var) -> Var {
        let v = self.value(a).mul(self.value(b));
        self.push(v, Op::Mul(a, b))
    }

    /// Multiplies by a constant.
    pub fn scale(&mut self, a: Var, c: f32) -> Var {
        let v = self.value(a).scale(c);
        self.push(v, Op::Scale(a, c))
    }

    /// Adds a constant.
    pub fn add_scalar(&mut self, a: Var, c: f32) -> Var {
        let v = self.value(a).add_scalar(c);
        self.push(v, Op::AddScalar(a))
    }

    // ------------------------------------------------------------------
    // Linear algebra / shape
    // ------------------------------------------------------------------

    /// Matrix product; supports the rank combinations of
    /// [`Tensor::matmul`].
    pub fn matmul(&mut self, a: Var, b: Var) -> Var {
        let v = self.value(a).matmul(self.value(b));
        self.push(v, Op::Matmul(a, b))
    }

    /// Fused `a · bᵀ`; supports the rank combinations of
    /// [`Tensor::matmul_nt`]. Forward and backward both read `b` in its
    /// stored layout, so no transposed tensor is ever materialised (use
    /// this for attention scores `Q·Kᵀ` instead of
    /// `matmul(q, transpose_last2(k))`).
    pub fn matmul_nt(&mut self, a: Var, b: Var) -> Var {
        let v = self.value(a).matmul_nt(self.value(b));
        self.push(v, Op::MatmulNT(a, b))
    }

    /// Swaps the last two axes.
    pub fn transpose_last2(&mut self, a: Var) -> Var {
        let v = self.value(a).transpose_last2();
        self.push(v, Op::TransposeLast2(a))
    }

    /// Reshapes without changing element count.
    pub fn reshape(&mut self, a: Var, shape: &[usize]) -> Var {
        let v = self.value(a).reshape(shape);
        self.push(v, Op::Reshape(a))
    }

    /// Concatenates along dimension 0.
    pub fn concat0(&mut self, parts: &[Var]) -> Var {
        let tensors: Vec<&Tensor> = parts.iter().map(|p| self.value(*p)).collect();
        let v = Tensor::concat0(&tensors);
        self.push(v, Op::Concat0(parts.to_vec()))
    }

    // ------------------------------------------------------------------
    // Non-linearities
    // ------------------------------------------------------------------

    /// Rectified linear unit.
    pub fn relu(&mut self, a: Var) -> Var {
        let v = self.value(a).relu();
        self.push(v, Op::Relu(a))
    }

    /// GELU (tanh approximation).
    pub fn gelu(&mut self, a: Var) -> Var {
        let v = self.value(a).map(|x| {
            let u = GELU_C * (x + GELU_A * x * x * x);
            0.5 * x * (1.0 + u.tanh())
        });
        self.push(v, Op::Gelu(a))
    }

    /// Softmax along the last axis.
    pub fn softmax_last(&mut self, a: Var) -> Var {
        let v = self.value(a).softmax_last();
        self.push(v, Op::SoftmaxLast(a))
    }

    /// Log-softmax along the last axis.
    pub fn log_softmax_last(&mut self, a: Var) -> Var {
        let v = self.value(a).log_softmax_last();
        self.push(v, Op::LogSoftmaxLast(a))
    }

    // ------------------------------------------------------------------
    // Reductions
    // ------------------------------------------------------------------

    /// Sum over the last axis (axis dropped).
    pub fn sum_last(&mut self, a: Var) -> Var {
        let v = self.value(a).sum_last();
        self.push(v, Op::SumLast(a))
    }

    /// Mean of all elements (scalar output).
    pub fn mean_all(&mut self, a: Var) -> Var {
        let v = Tensor::scalar(self.value(a).mean());
        self.push(v, Op::MeanAll(a))
    }

    /// Sum of all elements (scalar output).
    pub fn sum_all(&mut self, a: Var) -> Var {
        let v = Tensor::scalar(self.value(a).sum());
        self.push(v, Op::SumAll(a))
    }

    // ------------------------------------------------------------------
    // Normalization
    // ------------------------------------------------------------------

    /// Layer normalization over the last axis with affine parameters
    /// `gamma`, `beta` of shape `[d]`.
    pub fn layer_norm(&mut self, x: Var, gamma: Var, beta: Var, eps: f32) -> Var {
        let xv = self.value(x);
        assert!(xv.ndim() >= 1, "layer_norm needs rank >= 1");
        let d = xv.shape()[xv.ndim() - 1];
        let rows = xv.len() / d;
        // Both buffers are fully written below, so the recycled storage
        // needs no fill.
        let mut xhat = PooledBuf::take_uninit(xv.len());
        let mut inv_std = PooledBuf::take_uninit(rows);
        for r in 0..rows {
            let row = &xv.data()[r * d..(r + 1) * d];
            let mean = row.iter().sum::<f32>() / d as f32;
            let var = row.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / d as f32;
            let inv = 1.0 / (var + eps).sqrt();
            inv_std[r] = inv;
            for (o, v) in xhat[r * d..(r + 1) * d].iter_mut().zip(row.iter()) {
                *o = (v - mean) * inv;
            }
        }
        let xhat = Tensor::from_buf(xhat, xv.shape());
        let out = xhat.mul(self.value(gamma)).add(self.value(beta));
        let inv_std = Tensor::from_buf(inv_std, &[rows]);
        self.push(
            out,
            Op::LayerNorm {
                x,
                gamma,
                beta,
                xhat,
                inv_std,
            },
        )
    }

    // ------------------------------------------------------------------
    // Convolution / pooling
    // ------------------------------------------------------------------

    /// 2-D convolution (`x: [b,ci,h,w]`, `w: [co,ci,k,k]`, optional
    /// `bias: [co]`).
    pub fn conv2d(&mut self, x: Var, w: Var, bias: Option<Var>, spec: Conv2dSpec) -> Var {
        let (out, info) = self
            .value(x)
            .conv2d(self.value(w), bias.map(|b| self.value(b)), spec);
        // The saved im2col buffer lets the backward pass skip re-unrolling
        // the input patches.
        self.push(
            out,
            Op::Conv2d {
                w,
                bias,
                info: ConvSaved { x, inner: info },
            },
        )
    }

    /// Max pooling over `x: [b,c,h,w]`.
    pub fn maxpool2d(&mut self, x: Var, spec: Pool2dSpec) -> Var {
        let r = self.value(x).maxpool2d(spec);
        self.push(
            r.out,
            Op::MaxPool2d {
                x,
                argmax: r.argmax,
                spec,
            },
        )
    }

    // ------------------------------------------------------------------
    // Losses (scalar outputs)
    // ------------------------------------------------------------------

    /// Mean negative log-likelihood of integer `targets` under
    /// log-probabilities `logp: [b, u]`.
    pub fn nll_loss(&mut self, logp: Var, targets: &[usize]) -> Var {
        let lp = self.value(logp);
        assert_eq!(lp.ndim(), 2, "nll_loss expects [batch, classes]");
        let (b, u) = (lp.shape()[0], lp.shape()[1]);
        assert_eq!(targets.len(), b, "nll_loss target count mismatch");
        let mut acc = 0.0;
        for (i, &t) in targets.iter().enumerate() {
            assert!(t < u, "target {t} out of range ({u} classes)");
            acc -= lp.data()[i * u + t];
        }
        let v = Tensor::scalar(acc / b as f32);
        self.push(
            v,
            Op::Nll {
                logp,
                targets: targets.to_vec(),
            },
        )
    }

    /// Soft-target cross-entropy `-mean_rows Σ probs · logp` where `probs`
    /// is a constant distribution per row (`[b, u]`).
    pub fn ce_soft(&mut self, logp: Var, probs: Tensor) -> Var {
        let lp = self.value(logp);
        assert_eq!(lp.shape(), probs.shape(), "ce_soft shape mismatch");
        let b = lp.shape()[0] as f32;
        let total: f32 = lp
            .data()
            .iter()
            .zip(probs.data().iter())
            .map(|(l, p)| l * p)
            .sum();
        let v = Tensor::scalar(-total / b);
        self.push(v, Op::CeSoft { logp, probs })
    }

    /// KL divergence `mean_rows Σ p (ln p − logq)` between a constant teacher
    /// distribution `p` and student log-probabilities `logq` (`[b, u]`).
    pub fn kl_div(&mut self, logq: Var, p: Tensor) -> Var {
        let lq = self.value(logq);
        assert_eq!(lq.shape(), p.shape(), "kl_div shape mismatch");
        let b = lq.shape()[0] as f32;
        let total: f32 = lq
            .data()
            .iter()
            .zip(p.data().iter())
            .map(|(l, p)| if *p > 0.0 { p * (p.ln() - l) } else { 0.0 })
            .sum();
        let v = Tensor::scalar(total / b);
        self.push(v, Op::KlDiv { logq, p })
    }

    /// Mean squared error between two equally-shaped nodes.
    pub fn mse(&mut self, a: Var, b: Var) -> Var {
        let (av, bv) = (self.value(a), self.value(b));
        assert_eq!(av.shape(), bv.shape(), "mse shape mismatch");
        let n = av.len() as f32;
        let total: f32 = av
            .data()
            .iter()
            .zip(bv.data().iter())
            .map(|(x, y)| (x - y) * (x - y))
            .sum();
        let v = Tensor::scalar(total / n);
        self.push(v, Op::Mse(a, b))
    }

    // ------------------------------------------------------------------
    // Backward
    // ------------------------------------------------------------------

    /// Reverse pass from scalar `loss`: accumulates gradients into every
    /// [`Param`] leaf reachable from it. May be called once per recorded
    /// tape (i.e. once between [`Graph::reset_for_step`] calls).
    ///
    /// Debug builds run the pre-execution shape verifier
    /// ([`Graph::check_shapes`]) over the whole tape first, so a structural
    /// bug surfaces as a typed report with op provenance instead of an
    /// index error deep in a kernel.
    pub fn backward(&mut self, loss: Var) {
        #[cfg(debug_assertions)]
        if let Err(e) = self.check_shapes() {
            // lint-allow: verifier escalation — a failed graph check is a
            // programming bug and must fail fast (see lint-allow.txt).
            panic!("{e}");
        }
        assert_eq!(
            self.value(loss).len(),
            1,
            "backward expects a scalar loss, got {:?}",
            self.value(loss).shape()
        );
        // Reuse the parked gradient scratch: its capacity survives
        // reset_for_step, so steady-state backward passes allocate nothing.
        let mut grads: Vec<Option<Tensor>> = std::mem::take(&mut self.grads_scratch);
        grads.clear();
        grads.resize_with(self.nodes.len(), || None);
        grads[loss.0] = Some(Tensor::ones(self.value(loss).shape()));

        for i in (0..=loss.0).rev() {
            let Some(g) = grads[i].take() else { continue };
            match &self.nodes[i].op {
                Op::Input => {}
                Op::Leaf(p) => p.accumulate_grad(&g),
                Op::Add(a, b) => {
                    let (a, b) = (*a, *b);
                    let ga = g.reduce_to_shape(self.nodes[a.0].value.shape());
                    let gb = g.reduce_to_shape(self.nodes[b.0].value.shape());
                    accum(&mut grads, a, ga);
                    accum(&mut grads, b, gb);
                }
                Op::Sub(a, b) => {
                    let (a, b) = (*a, *b);
                    let ga = g.reduce_to_shape(self.nodes[a.0].value.shape());
                    let gb = g.scale(-1.0).reduce_to_shape(self.nodes[b.0].value.shape());
                    accum(&mut grads, a, ga);
                    accum(&mut grads, b, gb);
                }
                Op::Mul(a, b) => {
                    let (a, b) = (*a, *b);
                    let ga = g
                        .mul(&self.nodes[b.0].value)
                        .reduce_to_shape(self.nodes[a.0].value.shape());
                    let gb = g
                        .mul(&self.nodes[a.0].value)
                        .reduce_to_shape(self.nodes[b.0].value.shape());
                    accum(&mut grads, a, ga);
                    accum(&mut grads, b, gb);
                }
                Op::Scale(a, c) => {
                    let (a, c) = (*a, *c);
                    accum(&mut grads, a, g.scale(c));
                }
                Op::AddScalar(a) => {
                    let a = *a;
                    accum(&mut grads, a, g);
                }
                Op::Matmul(a, b) => {
                    let (a, b) = (*a, *b);
                    let av = &self.nodes[a.0].value;
                    let bv = &self.nodes[b.0].value;
                    let (ga, gb) = matmul_backward(av, bv, &g);
                    accum(&mut grads, a, ga);
                    accum(&mut grads, b, gb);
                }
                Op::MatmulNT(a, b) => {
                    let (a, b) = (*a, *b);
                    let av = &self.nodes[a.0].value;
                    let bv = &self.nodes[b.0].value;
                    let (ga, gb) = matmul_nt_backward(av, bv, &g);
                    accum(&mut grads, a, ga);
                    accum(&mut grads, b, gb);
                }
                Op::TransposeLast2(a) => {
                    let a = *a;
                    accum(&mut grads, a, g.transpose_last2());
                }
                Op::Reshape(a) => {
                    let a = *a;
                    let shape = self.nodes[a.0].value.shape().to_vec();
                    accum(&mut grads, a, g.reshape(&shape));
                }
                Op::Concat0(parts) => {
                    let parts = parts.clone();
                    let mut offset = 0;
                    for p in parts {
                        let rows = self.nodes[p.0].value.shape()[0];
                        let idx: Vec<usize> = (offset..offset + rows).collect();
                        accum(&mut grads, p, g.select_rows(&idx));
                        offset += rows;
                    }
                }
                Op::Relu(a) => {
                    let a = *a;
                    let mask = self.nodes[a.0]
                        .value
                        .map(|v| if v > 0.0 { 1.0 } else { 0.0 });
                    accum(&mut grads, a, g.mul(&mask));
                }
                Op::Gelu(a) => {
                    let a = *a;
                    let deriv = self.nodes[a.0].value.map(|x| {
                        let u = GELU_C * (x + GELU_A * x * x * x);
                        let t = u.tanh();
                        0.5 * (1.0 + t)
                            + 0.5 * x * (1.0 - t * t) * GELU_C * (1.0 + 3.0 * GELU_A * x * x)
                    });
                    accum(&mut grads, a, g.mul(&deriv));
                }
                Op::SoftmaxLast(a) => {
                    let a = *a;
                    let y = &self.nodes[i].value;
                    // dx = (g - sum(g*y, last)) * y
                    let gy = g.mul(y);
                    let mut s_shape = y.shape().to_vec();
                    if let Some(last) = s_shape.last_mut() {
                        *last = 1;
                    }
                    let s = gy.sum_last().reshape(&s_shape);
                    accum(&mut grads, a, g.sub(&s).mul(y));
                }
                Op::LogSoftmaxLast(a) => {
                    let a = *a;
                    let y = &self.nodes[i].value;
                    let soft = y.map(f32::exp);
                    let mut s_shape = y.shape().to_vec();
                    if let Some(last) = s_shape.last_mut() {
                        *last = 1;
                    }
                    let s = g.sum_last().reshape(&s_shape);
                    accum(&mut grads, a, g.sub(&soft.mul(&s)));
                }
                Op::SumLast(a) => {
                    let a = *a;
                    let x_shape = self.nodes[a.0].value.shape().to_vec();
                    let mut g_shape = x_shape.clone();
                    if let Some(last) = g_shape.last_mut() {
                        *last = 1;
                    }
                    let expanded = g.reshape(&g_shape).add(&Tensor::zeros(&x_shape));
                    accum(&mut grads, a, expanded);
                }
                Op::MeanAll(a) => {
                    let a = *a;
                    let shape = self.nodes[a.0].value.shape().to_vec();
                    let n = self.nodes[a.0].value.len() as f32;
                    accum(&mut grads, a, Tensor::full(&shape, g.item() / n));
                }
                Op::SumAll(a) => {
                    let a = *a;
                    let shape = self.nodes[a.0].value.shape().to_vec();
                    accum(&mut grads, a, Tensor::full(&shape, g.item()));
                }
                Op::LayerNorm {
                    x,
                    gamma,
                    beta,
                    xhat,
                    inv_std,
                } => {
                    let (x, gamma, beta) = (*x, *gamma, *beta);
                    let gamma_v = &self.nodes[gamma.0].value;
                    let d = xhat.shape()[xhat.ndim() - 1];
                    let rows = xhat.len() / d;
                    // dbeta / dgamma reduce over rows.
                    let dgamma = g.mul(xhat).reduce_to_shape(gamma_v.shape());
                    let dbeta = g.reduce_to_shape(gamma_v.shape());
                    // dxhat = g * gamma (broadcast), then the classic LN rule.
                    let dxhat = g.mul(gamma_v);
                    // Every element of dx is written below (all rows, all j).
                    let mut dx = PooledBuf::take_uninit(xhat.len());
                    for r in 0..rows {
                        let dxh = &dxhat.data()[r * d..(r + 1) * d];
                        let xh = &xhat.data()[r * d..(r + 1) * d];
                        let sum_dxh: f32 = dxh.iter().sum();
                        let sum_dxh_xh: f32 = dxh.iter().zip(xh.iter()).map(|(a, b)| a * b).sum();
                        let inv = inv_std.data()[r];
                        for j in 0..d {
                            dx[r * d + j] =
                                inv / d as f32 * (d as f32 * dxh[j] - sum_dxh - xh[j] * sum_dxh_xh);
                        }
                    }
                    let dx = Tensor::from_buf(dx, xhat.shape());
                    accum(&mut grads, x, dx);
                    accum(&mut grads, gamma, dgamma);
                    accum(&mut grads, beta, dbeta);
                }
                Op::Conv2d { w, bias, info } => {
                    let (w, bias) = (*w, *bias);
                    let wv = &self.nodes[w.0].value;
                    let (c_out, c_in, k) = (wv.shape()[0], wv.shape()[1], wv.shape()[2]);
                    let inner = &info.inner;
                    let (oh, ow) = inner.out_hw;
                    let b = inner.batch;
                    let w2 = wv.reshape(&[c_out, c_in * k * k]);
                    let mut dw = Tensor::zeros(&[c_out, c_in * k * k]);
                    let mut dcols = Tensor::zeros(inner.cols.shape());
                    let col_rows = c_in * k * k;
                    let col_cols = oh * ow;
                    for bi in 0..b {
                        let gy = g.row(bi).reshape(&[c_out, oh * ow]);
                        // dW += gy × cols_iᵀ — fused nt, cols stay in place.
                        // The per-image accumulation order is fixed (bi
                        // ascending), keeping dW bitwise deterministic.
                        let cols_i = inner.cols.row(bi);
                        dw.add_assign_scaled(&gy.matmul_nt(&cols_i), 1.0);
                        // dcols_i = W2ᵀ × gy — fused tn, no transposed W2.
                        let dc = w2.matmul_tn(&gy);
                        dcols.data_mut()[bi * col_rows * col_cols..(bi + 1) * col_rows * col_cols]
                            .copy_from_slice(dc.data());
                    }
                    let dx = col2im(&dcols, inner);
                    accum(&mut grads, info.x, dx);
                    accum(&mut grads, w, dw.reshape(&[c_out, c_in, k, k]));
                    if let Some(bias) = bias {
                        // db[c] = Σ_{b,oh,ow} g — accumulated, so zeroed.
                        let mut db = PooledBuf::take_zeroed(c_out);
                        let gd = g.data();
                        for bi in 0..b {
                            for (c, slot) in db.iter_mut().enumerate() {
                                let base = (bi * c_out + c) * oh * ow;
                                *slot += gd[base..base + oh * ow].iter().sum::<f32>();
                            }
                        }
                        accum(&mut grads, bias, Tensor::from_buf(db, &[c_out]));
                    }
                }
                Op::MaxPool2d { x, argmax, .. } => {
                    let x = *x;
                    let x_shape = self.nodes[x.0].value.shape().to_vec();
                    let mut dx = Tensor::zeros(&x_shape);
                    for (o, &src) in argmax.iter().enumerate() {
                        dx.data_mut()[src] += g.data()[o];
                    }
                    accum(&mut grads, x, dx);
                }
                Op::Nll { logp, targets } => {
                    let logp = *logp;
                    let shape = self.nodes[logp.0].value.shape().to_vec();
                    let (b, u) = (shape[0], shape[1]);
                    let mut dl = Tensor::zeros(&shape);
                    let scale = g.item() / b as f32;
                    for (i, &t) in targets.iter().enumerate() {
                        dl.data_mut()[i * u + t] = -scale;
                    }
                    accum(&mut grads, logp, dl);
                }
                Op::CeSoft { logp, probs } => {
                    let logp = *logp;
                    let b = probs.shape()[0] as f32;
                    let dl = probs.scale(-g.item() / b);
                    accum(&mut grads, logp, dl);
                }
                Op::KlDiv { logq, p } => {
                    let logq = *logq;
                    let b = p.shape()[0] as f32;
                    let dl = p.scale(-g.item() / b);
                    accum(&mut grads, logq, dl);
                }
                Op::Mse(a, b) => {
                    let (a, b) = (*a, *b);
                    let av = &self.nodes[a.0].value;
                    let bv = &self.nodes[b.0].value;
                    let n = av.len() as f32;
                    let diff = av.sub(bv).scale(2.0 * g.item() / n);
                    accum(&mut grads, a, diff.clone());
                    accum(&mut grads, b, diff.scale(-1.0));
                }
            }
        }
        // Park the scratch for the next backward. Leftover gradients of
        // nodes above the loss drop here, returning buffers to the pool.
        grads.clear();
        self.grads_scratch = grads;
    }
}

fn accum(grads: &mut [Option<Tensor>], v: Var, g: Tensor) {
    match &mut grads[v.0] {
        Some(existing) => existing.add_assign_scaled(&g, 1.0),
        slot => *slot = Some(g),
    }
}

/// Gradients of `c = a @ b` for the three supported rank combinations:
/// `da = g·bᵀ` and `db = aᵀ·g`, both through the fused `nt`/`tn` kernels so
/// no transposed tensor is materialised.
fn matmul_backward(a: &Tensor, b: &Tensor, g: &Tensor) -> (Tensor, Tensor) {
    match (a.ndim(), b.ndim()) {
        (2, 2) | (3, 3) => (g.matmul_nt(b), a.matmul_tn(g)),
        (3, 2) => {
            let (bs, m, k) = (a.shape()[0], a.shape()[1], a.shape()[2]);
            let n = b.shape()[1];
            let ga = g.matmul_nt(b);
            let a2 = a.reshape(&[bs * m, k]);
            let g2 = g.reshape(&[bs * m, n]);
            let gb = a2.matmul_tn(&g2);
            (ga, gb)
        }
        _ => unreachable!("ranks validated at forward time"),
    }
}

/// Gradients of `c = a · bᵀ`: `da = g·b` (plain `nn` — `b` is already in the
/// layout the product needs) and `db = gᵀ·a` via the fused `tn` kernel.
fn matmul_nt_backward(a: &Tensor, b: &Tensor, g: &Tensor) -> (Tensor, Tensor) {
    match (a.ndim(), b.ndim()) {
        (2, 2) | (3, 3) => (g.matmul(b), g.matmul_tn(a)),
        (3, 2) => {
            // Shared right operand: flatten batch into rows for db.
            let (bs, m, k) = (a.shape()[0], a.shape()[1], a.shape()[2]);
            let n = b.shape()[0];
            let ga = g.matmul(b);
            let a2 = a.reshape(&[bs * m, k]);
            let g2 = g.reshape(&[bs * m, n]);
            let gb = g2.matmul_tn(&a2);
            (ga, gb)
        }
        _ => unreachable!("ranks validated at forward time"),
    }
}

/// Saved forward state of a conv2d node: the image's tape index plus the
/// im2col buffer produced during the forward pass.
pub(crate) struct ConvSaved {
    pub(crate) x: Var,
    pub(crate) inner: Im2col,
}
