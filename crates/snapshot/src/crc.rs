//! CRC-32 (IEEE 802.3 polynomial, the zlib/PNG variant), table-driven.
//!
//! Pure Rust, no dependencies; a 1 KiB table is built once at first use.
//! CRC-32 detects every single-bit and every ≤32-bit burst error, which is
//! exactly the corruption class the snapshot proptests inject.

use std::sync::OnceLock;

/// Reflected polynomial of CRC-32/ISO-HDLC.
const POLY: u32 = 0xEDB8_8320;

fn table() -> &'static [u32; 256] {
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, slot) in t.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 { POLY ^ (c >> 1) } else { c >> 1 };
            }
            *slot = c;
        }
        t
    })
}

/// CRC-32 of `bytes` (init `0xFFFF_FFFF`, final xor `0xFFFF_FFFF`).
pub fn crc32(bytes: &[u8]) -> u32 {
    let t = table();
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = t[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_known_vectors() {
        // The canonical check value for CRC-32/ISO-HDLC.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn detects_every_single_byte_substitution() {
        let base = b"cdcl snapshot integrity".to_vec();
        let c0 = crc32(&base);
        for i in 0..base.len() {
            let mut m = base.clone();
            m[i] ^= 0x01;
            assert_ne!(crc32(&m), c0, "flip at byte {i} undetected");
            let mut m = base.clone();
            m[i] = m[i].wrapping_add(0x80);
            assert_ne!(crc32(&m), c0, "high-bit flip at byte {i} undetected");
        }
    }
}
