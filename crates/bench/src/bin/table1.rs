//! Regenerates **Table I**: TIL and CIL average accuracy (and CDCL's
//! forgetting) on Office-31 (6 transfer pairs), MNIST↔USPS (2 directions),
//! and VisDA-2017, plus the TVT static-UDA upper-bound row.
//!
//! ```text
//! cargo run --release -p cdcl-bench --bin table1 -- --scale standard
//! ```

use cdcl_bench::{
    maybe_write_json, run_method, run_upper_bound, ExperimentConfig, Method, ResultCell,
};
use cdcl_data::{
    mnist_usps, office31, visda, CrossDomainStream, MnistUspsDirection, Office31Domain,
};
use cdcl_metrics::{format_table, TableRow};

fn streams(cfg: &ExperimentConfig) -> Vec<(&'static str, CrossDomainStream)> {
    use Office31Domain::*;
    vec![
        ("A->D", office31(Amazon, Dslr, cfg.scale)),
        ("A->W", office31(Amazon, Webcam, cfg.scale)),
        ("D->A", office31(Dslr, Amazon, cfg.scale)),
        ("D->W", office31(Dslr, Webcam, cfg.scale)),
        ("W->A", office31(Webcam, Amazon, cfg.scale)),
        ("W->D", office31(Webcam, Dslr, cfg.scale)),
        (
            "MN->US",
            mnist_usps(MnistUspsDirection::MnistToUsps, cfg.scale),
        ),
        (
            "US->MN",
            mnist_usps(MnistUspsDirection::UspsToMnist, cfg.scale),
        ),
        ("VisDA", visda(cfg.scale)),
    ]
}

fn main() {
    let cfg = ExperimentConfig::from_args();
    let streams = streams(&cfg);
    let columns: Vec<&str> = streams.iter().map(|(c, _)| *c).collect();

    let mut cells: Vec<ResultCell> = Vec::new();
    let mut til_rows: Vec<TableRow> = Vec::new();
    let mut cil_rows: Vec<TableRow> = Vec::new();
    let mut ours_til_fgt: Vec<f64> = Vec::new();
    let mut ours_cil_fgt: Vec<f64> = Vec::new();

    for method in &cfg.methods {
        let mut til = Vec::new();
        let mut cil = Vec::new();
        for (_, stream) in &streams {
            let r = run_method(*method, stream, &cfg);
            til.push(r.til_acc_pct());
            cil.push(r.cil_acc_pct());
            if *method == Method::Cdcl {
                ours_til_fgt.push(r.til_fgt_pct());
                ours_cil_fgt.push(r.cil_fgt_pct());
            }
            cells.push(ResultCell::from(&r));
        }
        til_rows.push(TableRow::new(method.label(), til));
        cil_rows.push(TableRow::new(method.label(), cil));
    }
    if !ours_til_fgt.is_empty() {
        til_rows.push(TableRow::new("Ours (FGT)", ours_til_fgt));
        cil_rows.push(TableRow::new("Ours (FGT)", ours_cil_fgt));
    }

    // TVT static upper bound (excluded from the best-of comparison).
    let mut tvt = Vec::new();
    for (_, stream) in &streams {
        tvt.push(run_upper_bound(stream, &cfg).til_acc_pct());
    }
    til_rows.push(TableRow::new("TVT (Static UDA)", tvt));

    let competing: Vec<usize> = (0..cfg.methods.len()).collect();
    println!(
        "{}",
        format_table(
            "Table I (TIL): ACC on Office-31, MNIST<->USPS, VisDA-2017",
            &columns,
            &til_rows,
            &competing
        )
    );
    println!(
        "{}",
        format_table(
            "Table I (CIL): ACC on Office-31, MNIST<->USPS, VisDA-2017",
            &columns,
            &cil_rows,
            &competing
        )
    );
    maybe_write_json(&cfg.out, &cells);
}
