//! Shape arithmetic: dimension products, row-major strides, and NumPy-style
//! broadcasting rules.

/// A tensor shape: dimension sizes, outermost first (row-major).
pub type Shape = Vec<usize>;

/// Number of elements implied by a shape. The empty shape denotes a scalar
/// and has one element.
pub fn num_elements(shape: &[usize]) -> usize {
    shape.iter().product()
}

/// Row-major strides for a contiguous tensor of the given shape.
pub fn strides_for(shape: &[usize]) -> Vec<usize> {
    let mut strides = vec![0; shape.len()];
    let mut acc = 1;
    for i in (0..shape.len()).rev() {
        strides[i] = acc;
        acc *= shape[i];
    }
    strides
}

/// Computes the broadcast result shape of two operand shapes following the
/// NumPy rule: align trailing dimensions; each pair must be equal or one of
/// them must be 1.
///
/// Panics with a descriptive message when the shapes are incompatible; the
/// non-panicking rule lives in [`crate::check::try_broadcast_shapes`].
pub fn broadcast_shapes(a: &[usize], b: &[usize]) -> Shape {
    crate::check::enforce_shape(crate::check::try_broadcast_shapes(a, b))
}

/// Strides for iterating an operand of shape `shape` as if it had been
/// broadcast to `out_shape`: broadcast dimensions get stride 0.
pub(crate) fn broadcast_strides(shape: &[usize], out_shape: &[usize]) -> Vec<usize> {
    let strides = strides_for(shape);
    let ndim = out_shape.len();
    let mut out = vec![0; ndim];
    for (i, o) in out.iter_mut().enumerate() {
        let from_end = ndim - 1 - i;
        if from_end < shape.len() {
            let j = shape.len() - 1 - from_end;
            *o = if shape[j] == 1 { 0 } else { strides[j] };
        }
    }
    out
}

/// Converts a flat row-major index in `shape` to its multi-index.
pub(crate) fn unravel(mut flat: usize, shape: &[usize]) -> Vec<usize> {
    let mut idx = vec![0; shape.len()];
    for i in (0..shape.len()).rev() {
        idx[i] = flat % shape[i];
        flat /= shape[i];
    }
    idx
}

/// Dot product of a multi-index with strides — the flat offset.
pub(crate) fn offset_of(idx: &[usize], strides: &[usize]) -> usize {
    idx.iter().zip(strides.iter()).map(|(i, s)| i * s).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strides_row_major() {
        assert_eq!(strides_for(&[2, 3, 4]), vec![12, 4, 1]);
        assert_eq!(strides_for(&[5]), vec![1]);
        assert_eq!(strides_for(&[]), Vec::<usize>::new());
    }

    #[test]
    fn num_elements_basic() {
        assert_eq!(num_elements(&[2, 3, 4]), 24);
        assert_eq!(num_elements(&[]), 1);
        assert_eq!(num_elements(&[0, 3]), 0);
    }

    #[test]
    fn broadcast_equal_shapes() {
        assert_eq!(broadcast_shapes(&[2, 3], &[2, 3]), vec![2, 3]);
    }

    #[test]
    fn broadcast_trailing_ones() {
        assert_eq!(broadcast_shapes(&[2, 1, 4], &[3, 1]), vec![2, 3, 4]);
        assert_eq!(broadcast_shapes(&[4], &[2, 3, 4]), vec![2, 3, 4]);
        assert_eq!(broadcast_shapes(&[2, 3, 4], &[1]), vec![2, 3, 4]);
    }

    #[test]
    fn broadcast_scalar() {
        assert_eq!(broadcast_shapes(&[], &[2, 2]), vec![2, 2]);
    }

    #[test]
    #[should_panic(expected = "cannot broadcast")]
    fn broadcast_incompatible_panics() {
        broadcast_shapes(&[2, 3], &[4, 3]);
    }

    #[test]
    fn broadcast_strides_zeroes_expanded_dims() {
        // shape [3,1] broadcast into [2,3,4]: leading dim absent (stride 0),
        // middle dim real (stride 1), trailing dim broadcast (stride 0).
        assert_eq!(broadcast_strides(&[3, 1], &[2, 3, 4]), vec![0, 1, 0]);
        assert_eq!(broadcast_strides(&[2, 3, 4], &[2, 3, 4]), vec![12, 4, 1]);
    }

    #[test]
    fn unravel_round_trip() {
        let shape = [2usize, 3, 4];
        let strides = strides_for(&shape);
        for flat in 0..num_elements(&shape) {
            let idx = unravel(flat, &shape);
            assert_eq!(offset_of(&idx, &strides), flat);
        }
    }
}
