//! Regenerates **Table IV**: the ablation study — dropping each loss block
//! (`L^CIL`, `L^TIL`, `L_R`) and replacing the inter- intra-task
//! cross-attention with standard simple attention — on MN→US and US→MN,
//! reporting TIL and CIL ACC for each variant.
//!
//! ```text
//! cargo run --release -p cdcl-bench --bin table4 -- --scale standard
//! ```

use cdcl_bench::{maybe_write_json, ExperimentConfig, ResultCell};
use cdcl_core::{run_stream, CdclConfig, CdclTrainer};
use cdcl_data::{mnist_usps, MnistUspsDirection};
use cdcl_metrics::{format_table, TableRow};
use cdcl_nn::AttentionMode;

struct Variant {
    label: &'static str,
    configure: fn(&mut CdclConfig),
}

fn main() {
    let cfg = ExperimentConfig::from_args();
    let variants: Vec<Variant> = vec![
        Variant {
            label: "Full CDCL",
            configure: |_| {},
        },
        Variant {
            label: "A: no L_CIL",
            configure: |c| c.losses.cil = false,
        },
        Variant {
            label: "B: no L_TIL",
            configure: |c| c.losses.til = false,
        },
        Variant {
            label: "C: no L_R",
            configure: |c| c.losses.rehearsal = false,
        },
        Variant {
            label: "Simple attention",
            configure: |c| {
                c.backbone.attention = AttentionMode::Simple;
                c.cross_attention = false;
            },
        },
    ];
    let streams = [
        mnist_usps(MnistUspsDirection::MnistToUsps, cfg.scale),
        mnist_usps(MnistUspsDirection::UspsToMnist, cfg.scale),
    ];

    let mut rows = Vec::new();
    let mut cells: Vec<ResultCell> = Vec::new();
    for v in &variants {
        let mut values = Vec::new();
        for stream in &streams {
            let mut conf = cfg.cdcl(stream);
            (v.configure)(&mut conf);
            let start = std::time::Instant::now();
            let r = run_stream(&mut CdclTrainer::new(conf), stream);
            eprintln!(
                "[{}] {} TIL {:.1}% CIL {:.1}% ({:.0}s)",
                stream.name,
                v.label,
                r.til_acc_pct(),
                r.cil_acc_pct(),
                start.elapsed().as_secs_f64()
            );
            values.push(r.til_acc_pct());
            values.push(r.cil_acc_pct());
            cells.push(ResultCell::from(&r));
        }
        rows.push(TableRow::new(v.label, values));
    }

    let competing: Vec<usize> = (0..rows.len()).collect();
    println!(
        "{}",
        format_table(
            "Table IV: loss/attention ablation on MNIST<->USPS",
            &["MN->US TIL", "MN->US CIL", "US->MN TIL", "US->MN CIL"],
            &rows,
            &competing
        )
    );
    maybe_write_json(&cfg.out, &cells);
}
