//! Cross-crate protocol tests: the R-matrix evaluation loop, the metric
//! definitions, and property-based checks tying them together.

use cdcl::core::{run_stream, CdclConfig, CdclTrainer, ContinualLearner};
use cdcl::data::{visda, Sample, Scale};
use cdcl::metrics::RMatrix;
use proptest::prelude::*;

#[test]
fn full_stream_protocol_on_visda() {
    let stream = visda(Scale::Smoke);
    let mut cfg = CdclConfig::smoke();
    cfg.backbone.in_channels = 3;
    cfg.epochs = 4;
    cfg.warmup_epochs = 1;
    let mut trainer = CdclTrainer::new(cfg);
    let r = run_stream(&mut trainer, &stream);
    assert_eq!(r.til.num_tasks(), 4);
    assert_eq!(r.stream, "visda-2017");
    assert_eq!(r.method, "CDCL");
    // Figure-2 style series must have the staircase lengths.
    let series = r.til.series();
    for (j, s) in series.iter().enumerate() {
        assert_eq!(s.accuracies.len(), 4 - j);
    }
    // row_mean_std summarises each row
    assert_eq!(r.til.row_mean_std().len(), 4);
}

#[test]
fn learner_rejects_label_free_misuse() {
    // eval_til on an unknown task id must panic rather than silently
    // misreport — guards against protocol bugs in experiment binaries.
    let stream = visda(Scale::Smoke);
    let mut cfg = CdclConfig::smoke();
    cfg.backbone.in_channels = 3;
    cfg.epochs = 2;
    cfg.warmup_epochs = 1;
    let mut trainer = CdclTrainer::new(cfg);
    trainer.learn_task(&stream.tasks[0]);
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        trainer.eval_til(3, &stream.tasks[0].target_test)
    }));
    assert!(result.is_err(), "unknown task id must panic");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// ACC is always the mean of the final row; FGT is bounded by the
    /// maximum accuracy spread.
    #[test]
    fn rmatrix_metric_bounds(rows in 1usize..6, seed in 0u64..1000) {
        let mut r = RMatrix::new();
        let mut state = seed;
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 33) % 1000) as f64 / 1000.0
        };
        for i in 0..rows {
            r.push_row((0..=i).map(|_| next()).collect());
        }
        prop_assert!(r.acc() >= 0.0 && r.acc() <= 1.0);
        prop_assert!(r.fgt() >= -1.0 && r.fgt() <= 1.0);
        prop_assert_eq!(r.series().len(), rows);
    }

    /// Forgetting is zero whenever accuracy never decreases.
    #[test]
    fn monotone_rmatrix_has_nonpositive_fgt(rows in 2usize..6) {
        let mut r = RMatrix::new();
        for i in 0..rows {
            // accuracy on every task improves with each new task
            r.push_row((0..=i).map(|_| 0.2 + 0.1 * i as f64).collect());
        }
        prop_assert!(r.fgt() <= 0.0, "fgt {}", r.fgt());
    }

    /// The accuracy helper is permutation-consistent.
    #[test]
    fn accuracy_counts_are_permutation_invariant(labels in prop::collection::vec(0usize..3, 1..20)) {
        use cdcl::core::protocol::accuracy_from_predictions;
        use cdcl::tensor::Tensor;
        let test: Vec<Sample> = labels.iter().map(|&l| Sample {
            image: Tensor::zeros(&[1, 1, 1]),
            label: l,
        }).collect();
        let perfect = accuracy_from_predictions(&labels, &test);
        prop_assert_eq!(perfect, 1.0);
        let wrong: Vec<usize> = labels.iter().map(|&l| (l + 1) % 3).collect();
        prop_assert_eq!(accuracy_from_predictions(&wrong, &test), 0.0);
    }
}
