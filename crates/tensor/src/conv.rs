//! 2-D convolution and max-pooling over NCHW tensors.
//!
//! `conv2d` is implemented by `im2col` + GEMM — the standard CPU strategy —
//! and the [`Im2col`] buffer is exposed so the autograd layer can reuse it in
//! the backward pass instead of recomputing it.
//!
//! The unroll, the per-image GEMM, and the scatter-back adjoint are all
//! parallelised per image through [`crate::kernels::pool`]: each image's
//! slice of the output is written by exactly one thread, so results are
//! bitwise identical at every thread count.

use crate::kernels;
use crate::pool::PooledBuf;
use crate::Tensor;

/// Static parameters of a 2-D convolution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Conv2dSpec {
    /// Kernel height/width (square kernels only — all the paper's tokenizers
    /// use square kernels).
    pub kernel: usize,
    /// Stride in both dimensions.
    pub stride: usize,
    /// Zero padding on every side.
    pub padding: usize,
}

impl Conv2dSpec {
    /// Output spatial size for an input of `(h, w)`.
    pub fn out_hw(&self, h: usize, w: usize) -> (usize, usize) {
        assert!(
            h + 2 * self.padding >= self.kernel && w + 2 * self.padding >= self.kernel,
            "conv2d kernel {} larger than padded input {}x{}",
            self.kernel,
            h + 2 * self.padding,
            w + 2 * self.padding
        );
        (
            (h + 2 * self.padding - self.kernel) / self.stride + 1,
            (w + 2 * self.padding - self.kernel) / self.stride + 1,
        )
    }
}

/// Static parameters of a max-pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pool2dSpec {
    /// Pooling window (square).
    pub kernel: usize,
    /// Stride in both dimensions.
    pub stride: usize,
}

impl Pool2dSpec {
    /// Output spatial size for an input of `(h, w)`.
    pub fn out_hw(&self, h: usize, w: usize) -> (usize, usize) {
        assert!(
            h >= self.kernel && w >= self.kernel,
            "pool kernel {} larger than input {h}x{w}",
            self.kernel
        );
        (
            (h - self.kernel) / self.stride + 1,
            (w - self.kernel) / self.stride + 1,
        )
    }
}

/// The unrolled-patch matrix of one conv2d call, kept for the backward pass.
///
/// Layout: `[batch, c_in * k * k, out_h * out_w]` flattened per image, i.e.
/// for each image, `cols` is a `(c_in·k·k) × (out_h·out_w)` matrix.
pub struct Im2col {
    /// Unrolled patches per image.
    pub cols: Tensor,
    /// Batch size.
    pub batch: usize,
    /// Input channels.
    pub c_in: usize,
    /// Input spatial size.
    pub in_hw: (usize, usize),
    /// Output spatial size.
    pub out_hw: (usize, usize),
    /// Conv parameters.
    pub spec: Conv2dSpec,
}

/// Result of a max-pool forward: values plus the flat input index each output
/// element came from (for routing gradients).
pub struct MaxPoolResult {
    /// Pooled tensor `[b, c, oh, ow]`.
    pub out: Tensor,
    /// For each output element, the flat index into the input buffer that
    /// produced it.
    pub argmax: Vec<usize>,
}

/// Unrolls `x: [b, c, h, w]` into patch columns.
pub fn im2col(x: &Tensor, spec: Conv2dSpec) -> Im2col {
    assert_eq!(x.ndim(), 4, "conv2d expects NCHW, got {:?}", x.shape());
    let (b, c, h, w) = (x.shape()[0], x.shape()[1], x.shape()[2], x.shape()[3]);
    let (oh, ow) = spec.out_hw(h, w);
    let k = spec.kernel;
    let col_rows = c * k * k;
    let col_cols = oh * ow;
    // Every element (including zero padding) is written below, so the
    // recycled buffer needs no fill.
    let mut cols = PooledBuf::take_uninit(b * col_rows * col_cols);
    let xd = x.data();
    kernels::par_chunks_mut(
        &mut cols,
        col_rows * col_cols,
        col_rows * col_cols,
        |bi, dst| {
            let img = &xd[bi * c * h * w..(bi + 1) * c * h * w];
            for ci in 0..c {
                for ki in 0..k {
                    for kj in 0..k {
                        let row = (ci * k + ki) * k + kj;
                        for oi in 0..oh {
                            let ii = (oi * spec.stride + ki) as isize - spec.padding as isize;
                            for oj in 0..ow {
                                let jj = (oj * spec.stride + kj) as isize - spec.padding as isize;
                                let v =
                                    if ii >= 0 && jj >= 0 && (ii as usize) < h && (jj as usize) < w
                                    {
                                        img[ci * h * w + ii as usize * w + jj as usize]
                                    } else {
                                        0.0
                                    };
                                dst[row * col_cols + oi * ow + oj] = v;
                            }
                        }
                    }
                }
            }
        },
    );
    Im2col {
        cols: Tensor::from_buf(cols, &[b, col_rows, col_cols]),
        batch: b,
        c_in: c,
        in_hw: (h, w),
        out_hw: (oh, ow),
        spec,
    }
}

/// Scatters patch-column gradients back to input-image gradients — the
/// adjoint of [`im2col`].
pub fn col2im(cols_grad: &Tensor, info: &Im2col) -> Tensor {
    let (b, c) = (info.batch, info.c_in);
    let (h, w) = info.in_hw;
    let (oh, ow) = info.out_hw;
    let k = info.spec.kernel;
    let col_rows = c * k * k;
    let col_cols = oh * ow;
    assert_eq!(cols_grad.shape(), &[b, col_rows, col_cols]);
    // The scatter below *accumulates*, so zero is the semantic initial value.
    let mut out = PooledBuf::take_zeroed(b * c * h * w);
    let gd = cols_grad.data();
    kernels::par_chunks_mut(&mut out, c * h * w, col_rows * col_cols, |bi, img| {
        let src = &gd[bi * col_rows * col_cols..(bi + 1) * col_rows * col_cols];
        for ci in 0..c {
            for ki in 0..k {
                for kj in 0..k {
                    let row = (ci * k + ki) * k + kj;
                    for oi in 0..oh {
                        let ii = (oi * info.spec.stride + ki) as isize - info.spec.padding as isize;
                        if ii < 0 || ii as usize >= h {
                            continue;
                        }
                        for oj in 0..ow {
                            let jj =
                                (oj * info.spec.stride + kj) as isize - info.spec.padding as isize;
                            if jj < 0 || jj as usize >= w {
                                continue;
                            }
                            img[ci * h * w + ii as usize * w + jj as usize] +=
                                src[row * col_cols + oi * ow + oj];
                        }
                    }
                }
            }
        }
    });
    Tensor::from_buf(out, &[b, c, h, w])
}

impl Tensor {
    /// 2-D convolution. `self: [b, c_in, h, w]`, `weight: [c_out, c_in, k, k]`,
    /// optional `bias: [c_out]`. Returns `([b, c_out, oh, ow], im2col)`; the
    /// returned [`Im2col`] lets callers run the backward pass cheaply.
    pub fn conv2d(
        &self,
        weight: &Tensor,
        bias: Option<&Tensor>,
        spec: Conv2dSpec,
    ) -> (Tensor, Im2col) {
        // Ranks, kernel/channel agreement, and the bias shape all validated
        // through the shared inference rules (crate::check), so a runtime
        // violation prints exactly what the graph verifier would.
        crate::check::enforce_shape(crate::check::infer_conv2d(
            self.shape(),
            weight.shape(),
            bias.map(Tensor::shape),
            &spec,
        ));
        let (c_out, c_in) = (weight.shape()[0], weight.shape()[1]);
        let info = im2col(self, spec);
        let (oh, ow) = info.out_hw;
        let b = info.batch;
        // weight as [c_out, c_in*k*k] × cols [b, c_in*k*k, oh*ow], written
        // straight into each image's output slice (no per-image allocation).
        let kk = c_in * spec.kernel * spec.kernel;
        let w2 = weight.reshape(&[c_out, kk]);
        let mut out = Tensor::zeros(&[b, c_out, oh * ow]);
        let cols = info.cols.data();
        kernels::par_chunks_mut(
            out.data_mut(),
            c_out * oh * ow,
            c_out * kk * oh * ow,
            |bi, dst| {
                let cols_i = &cols[bi * kk * oh * ow..(bi + 1) * kk * oh * ow];
                kernels::gemm_nn(dst, w2.data(), cols_i, c_out, kk, oh * ow);
            },
        );
        let mut out = out.reshape(&[b, c_out, oh, ow]);
        if let Some(bias) = bias {
            let bd = bias.data();
            let od = out.data_mut();
            for bi in 0..b {
                for (co, &bv) in bd.iter().enumerate() {
                    let base = (bi * c_out + co) * oh * ow;
                    for v in &mut od[base..base + oh * ow] {
                        *v += bv;
                    }
                }
            }
        }
        (out, info)
    }

    /// Max pooling over `self: [b, c, h, w]`.
    pub fn maxpool2d(&self, spec: Pool2dSpec) -> MaxPoolResult {
        crate::check::enforce_shape(crate::check::infer_maxpool2d(self.shape(), &spec));
        let (b, c, h, w) = (
            self.shape()[0],
            self.shape()[1],
            self.shape()[2],
            self.shape()[3],
        );
        let (oh, ow) = spec.out_hw(h, w);
        let mut out = PooledBuf::take_uninit(b * c * oh * ow);
        let mut argmax = vec![0usize; b * c * oh * ow];
        let xd = self.data();
        for bi in 0..b {
            for ci in 0..c {
                let base = (bi * c + ci) * h * w;
                for oi in 0..oh {
                    for oj in 0..ow {
                        let mut best = f32::NEG_INFINITY;
                        let mut best_idx = 0;
                        for ki in 0..spec.kernel {
                            for kj in 0..spec.kernel {
                                let ii = oi * spec.stride + ki;
                                let jj = oj * spec.stride + kj;
                                let idx = base + ii * w + jj;
                                if xd[idx] > best {
                                    best = xd[idx];
                                    best_idx = idx;
                                }
                            }
                        }
                        let o = (bi * c + ci) * oh * ow + oi * ow + oj;
                        out[o] = best;
                        argmax[o] = best_idx;
                    }
                }
            }
        }
        MaxPoolResult {
            out: Tensor::from_buf(out, &[b, c, oh, ow]),
            argmax,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assert_close;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    /// Direct (quadruple-loop) convolution for cross-checking im2col+GEMM.
    fn conv2d_naive(x: &Tensor, w: &Tensor, b: Option<&Tensor>, spec: Conv2dSpec) -> Tensor {
        let (bs, c_in, h, wd) = (x.shape()[0], x.shape()[1], x.shape()[2], x.shape()[3]);
        let c_out = w.shape()[0];
        let (oh, ow) = spec.out_hw(h, wd);
        let mut out = Tensor::zeros(&[bs, c_out, oh, ow]);
        for bi in 0..bs {
            for co in 0..c_out {
                for oi in 0..oh {
                    for oj in 0..ow {
                        let mut acc = b.map_or(0.0, |b| b.data()[co]);
                        for ci in 0..c_in {
                            for ki in 0..spec.kernel {
                                for kj in 0..spec.kernel {
                                    let ii =
                                        (oi * spec.stride + ki) as isize - spec.padding as isize;
                                    let jj =
                                        (oj * spec.stride + kj) as isize - spec.padding as isize;
                                    if ii < 0 || jj < 0 || ii as usize >= h || jj as usize >= wd {
                                        continue;
                                    }
                                    acc += x.at(&[bi, ci, ii as usize, jj as usize])
                                        * w.at(&[co, ci, ki, kj]);
                                }
                            }
                        }
                        let idx = ((bi * c_out + co) * oh + oi) * ow + oj;
                        out.data_mut()[idx] = acc;
                    }
                }
            }
        }
        out
    }

    #[test]
    fn conv2d_matches_naive_reference() {
        let mut rng = SmallRng::seed_from_u64(21);
        for &(stride, padding) in &[(1usize, 0usize), (1, 1), (2, 1)] {
            let spec = Conv2dSpec {
                kernel: 3,
                stride,
                padding,
            };
            let x = Tensor::randn(&mut rng, &[2, 3, 8, 8], 1.0);
            let w = Tensor::randn(&mut rng, &[4, 3, 3, 3], 0.5);
            let b = Tensor::randn(&mut rng, &[4], 0.5);
            let (got, _) = x.conv2d(&w, Some(&b), spec);
            let want = conv2d_naive(&x, &w, Some(&b), spec);
            assert_eq!(got.shape(), want.shape());
            assert_close(got.data(), want.data(), 1e-3);
        }
    }

    #[test]
    fn conv2d_identity_kernel_preserves_input() {
        // 1x1 kernel with weight 1 on a single channel copies the image.
        let x = Tensor::from_vec((0..16).map(|v| v as f32).collect(), &[1, 1, 4, 4]);
        let w = Tensor::ones(&[1, 1, 1, 1]);
        let (y, _) = x.conv2d(
            &w,
            None,
            Conv2dSpec {
                kernel: 1,
                stride: 1,
                padding: 0,
            },
        );
        assert_eq!(y.data(), x.data());
    }

    #[test]
    fn conv2d_output_shape() {
        let spec = Conv2dSpec {
            kernel: 7,
            stride: 2,
            padding: 3,
        };
        assert_eq!(spec.out_hw(28, 28), (14, 14));
        let spec = Conv2dSpec {
            kernel: 3,
            stride: 1,
            padding: 1,
        };
        assert_eq!(spec.out_hw(16, 16), (16, 16));
    }

    #[test]
    fn col2im_adjoint_of_im2col() {
        // <im2col(x), g> == <x, col2im(g)> — the defining adjoint property.
        let mut rng = SmallRng::seed_from_u64(22);
        let spec = Conv2dSpec {
            kernel: 3,
            stride: 2,
            padding: 1,
        };
        let x = Tensor::randn(&mut rng, &[2, 2, 6, 6], 1.0);
        let info = im2col(&x, spec);
        let g = Tensor::randn(&mut rng, info.cols.shape(), 1.0);
        let lhs: f32 = info
            .cols
            .data()
            .iter()
            .zip(g.data().iter())
            .map(|(a, b)| a * b)
            .sum();
        let back = col2im(&g, &info);
        let rhs: f32 = x
            .data()
            .iter()
            .zip(back.data().iter())
            .map(|(a, b)| a * b)
            .sum();
        assert!((lhs - rhs).abs() < 1e-2, "{lhs} vs {rhs}");
    }

    #[test]
    fn maxpool_values_and_indices() {
        let x = Tensor::from_vec(
            vec![
                1.0, 2.0, 5.0, 6.0, //
                3.0, 4.0, 7.0, 8.0, //
                9.0, 10.0, 13.0, 14.0, //
                11.0, 12.0, 15.0, 16.0,
            ],
            &[1, 1, 4, 4],
        );
        let r = x.maxpool2d(Pool2dSpec {
            kernel: 2,
            stride: 2,
        });
        assert_eq!(r.out.shape(), &[1, 1, 2, 2]);
        assert_eq!(r.out.data(), &[4.0, 8.0, 12.0, 16.0]);
        assert_eq!(r.argmax, vec![5, 7, 13, 15]);
    }

    #[test]
    fn maxpool_overlapping_windows() {
        let x = Tensor::from_vec((0..9).map(|v| v as f32).collect(), &[1, 1, 3, 3]);
        let r = x.maxpool2d(Pool2dSpec {
            kernel: 2,
            stride: 1,
        });
        assert_eq!(r.out.shape(), &[1, 1, 2, 2]);
        assert_eq!(r.out.data(), &[4.0, 5.0, 7.0, 8.0]);
    }

    #[test]
    #[should_panic(expected = "channel mismatch")]
    fn conv2d_channel_mismatch_panics() {
        let x = Tensor::zeros(&[1, 2, 4, 4]);
        let w = Tensor::zeros(&[1, 3, 3, 3]);
        x.conv2d(
            &w,
            None,
            Conv2dSpec {
                kernel: 3,
                stride: 1,
                padding: 1,
            },
        );
    }
}
