//! Matrix multiplication kernels: plain 2-D GEMM and the batched variants
//! attention needs (`[b,m,k] × [b,k,n]` and `[b,m,k] × [k,n]`).

use crate::Tensor;

/// Naive but cache-friendly (ikj-ordered) single-threaded GEMM:
/// `out[m,n] += a[m,k] * b[k,n]`.
fn gemm_into(out: &mut [f32], a: &[f32], b: &[f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(out.len(), m * n);
    for i in 0..m {
        let a_row = &a[i * k..(i + 1) * k];
        let out_row = &mut out[i * n..(i + 1) * n];
        for (p, &a_ip) in a_row.iter().enumerate() {
            if a_ip == 0.0 {
                continue;
            }
            let b_row = &b[p * n..(p + 1) * n];
            for (o, &b_pj) in out_row.iter_mut().zip(b_row.iter()) {
                *o += a_ip * b_pj;
            }
        }
    }
}

impl Tensor {
    /// Matrix/batched-matrix product. Supported rank combinations:
    ///
    /// * `[m,k] × [k,n] -> [m,n]`
    /// * `[b,m,k] × [b,k,n] -> [b,m,n]`
    /// * `[b,m,k] × [k,n] -> [b,m,n]` (shared right operand, e.g. a `Linear`
    ///   applied token-wise)
    ///
    /// Panics on inner-dimension mismatch or unsupported ranks.
    pub fn matmul(&self, rhs: &Tensor) -> Tensor {
        match (self.ndim(), rhs.ndim()) {
            (2, 2) => {
                let (m, k) = (self.shape()[0], self.shape()[1]);
                let (k2, n) = (rhs.shape()[0], rhs.shape()[1]);
                assert_eq!(k, k2, "matmul inner dims: {k} vs {k2}");
                let mut out = vec![0.0; m * n];
                gemm_into(&mut out, self.data(), rhs.data(), m, k, n);
                Tensor::from_vec(out, &[m, n])
            }
            (3, 3) => {
                let (b, m, k) = (self.shape()[0], self.shape()[1], self.shape()[2]);
                let (b2, k2, n) = (rhs.shape()[0], rhs.shape()[1], rhs.shape()[2]);
                assert_eq!(b, b2, "batched matmul batch dims: {b} vs {b2}");
                assert_eq!(k, k2, "matmul inner dims: {k} vs {k2}");
                let mut out = vec![0.0; b * m * n];
                for i in 0..b {
                    gemm_into(
                        &mut out[i * m * n..(i + 1) * m * n],
                        &self.data()[i * m * k..(i + 1) * m * k],
                        &rhs.data()[i * k * n..(i + 1) * k * n],
                        m,
                        k,
                        n,
                    );
                }
                Tensor::from_vec(out, &[b, m, n])
            }
            (3, 2) => {
                // Shared right operand: flatten batch into rows.
                let (b, m, k) = (self.shape()[0], self.shape()[1], self.shape()[2]);
                let (k2, n) = (rhs.shape()[0], rhs.shape()[1]);
                assert_eq!(k, k2, "matmul inner dims: {k} vs {k2}");
                let mut out = vec![0.0; b * m * n];
                gemm_into(&mut out, self.data(), rhs.data(), b * m, k, n);
                Tensor::from_vec(out, &[b, m, n])
            }
            (a, b) => panic!("unsupported matmul ranks: {a} x {b}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assert_close;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn matmul_2d_known_values() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let b = Tensor::from_vec(vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0], &[3, 2]);
        let c = a.matmul(&b);
        assert_eq!(c.shape(), &[2, 2]);
        assert_close(c.data(), &[58.0, 64.0, 139.0, 154.0], 1e-6);
    }

    #[test]
    fn matmul_identity() {
        let mut rng = SmallRng::seed_from_u64(1);
        let a = Tensor::randn(&mut rng, &[4, 4], 1.0);
        let c = a.matmul(&Tensor::eye(4));
        assert_close(c.data(), a.data(), 1e-6);
    }

    #[test]
    fn matmul_batched_matches_per_slice() {
        let mut rng = SmallRng::seed_from_u64(2);
        let a = Tensor::randn(&mut rng, &[3, 2, 5], 1.0);
        let b = Tensor::randn(&mut rng, &[3, 5, 4], 1.0);
        let c = a.matmul(&b);
        assert_eq!(c.shape(), &[3, 2, 4]);
        for i in 0..3 {
            let ci = a.row(i).matmul(&b.row(i));
            assert_close(c.row(i).data(), ci.data(), 1e-5);
        }
    }

    #[test]
    fn matmul_3d_by_2d_shared_rhs() {
        let mut rng = SmallRng::seed_from_u64(3);
        let a = Tensor::randn(&mut rng, &[2, 3, 4], 1.0);
        let w = Tensor::randn(&mut rng, &[4, 6], 1.0);
        let c = a.matmul(&w);
        assert_eq!(c.shape(), &[2, 3, 6]);
        for i in 0..2 {
            assert_close(c.row(i).data(), a.row(i).matmul(&w).data(), 1e-5);
        }
    }

    #[test]
    fn matmul_associativity_small() {
        let mut rng = SmallRng::seed_from_u64(4);
        let a = Tensor::randn(&mut rng, &[3, 3], 0.5);
        let b = Tensor::randn(&mut rng, &[3, 3], 0.5);
        let c = Tensor::randn(&mut rng, &[3, 3], 0.5);
        let l = a.matmul(&b).matmul(&c);
        let r = a.matmul(&b.matmul(&c));
        assert_close(l.data(), r.data(), 1e-4);
    }

    #[test]
    #[should_panic(expected = "inner dims")]
    fn matmul_dim_mismatch_panics() {
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[4, 2]);
        a.matmul(&b);
    }

    #[test]
    fn transpose_product_identity() {
        // (A B)^T == B^T A^T
        let mut rng = SmallRng::seed_from_u64(5);
        let a = Tensor::randn(&mut rng, &[3, 5], 1.0);
        let b = Tensor::randn(&mut rng, &[5, 2], 1.0);
        let lhs = a.matmul(&b).transpose_last2();
        let rhs = b.transpose_last2().matmul(&a.transpose_last2());
        assert_close(lhs.data(), rhs.data(), 1e-5);
    }
}
