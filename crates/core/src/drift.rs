//! Task-free drift detection over nearest-centroid distances (DESIGN.md §15).
//!
//! The paper's protocol assumes task boundaries are given; the online
//! trainer daemon (`cdcl-traind`) has to infer them. Each committed window
//! of unlabeled target samples is reduced to one scalar — the distance of
//! the window to the nearest archived per-task Eq.-17 centroid set
//! ([`crate::CdclTrainer::drift_score`]) — and fed to this detector, which
//! is a plain CUSUM chart over an EWMA baseline with a hysteresis dead
//! band:
//!
//! * **Calibration.** The first [`DriftConfig::calibration`] scores set the
//!   baseline to their running mean. No detection can fire while
//!   calibrating.
//! * **CUSUM.** Afterwards each score updates
//!   `S ← max(0, S + dev − k)` with slack `k` ([`DriftConfig::cusum_k`]),
//!   where `dev = |score − baseline|` by default
//!   ([`DriftConfig::two_sided`]) or the signed `score − baseline` in
//!   one-sided mode. Two-sided is the task-free default because a domain
//!   shift can move the nearest-centroid distance in *either* direction —
//!   off-distribution inputs can collapse the feature map and land
//!   spuriously close to the archived centroids, so a drop in distance is
//!   as suspicious as a rise. While `S == 0` the window is *clean* and
//!   the baseline EWMA-tracks slow within-task variation
//!   (`baseline ← baseline + α·(score − baseline)`); the moment `S` leaves
//!   zero the baseline freezes, so a genuine shift cannot drag the
//!   reference along with it.
//! * **Sustain + hysteresis.** A window with `S ≥ h`
//!   ([`DriftConfig::cusum_h`]) extends the over-threshold streak; the
//!   streak only resets when `S` falls back below `rearm_ratio · h`
//!   — in the dead band between the two levels it *holds*, so an `S`
//!   oscillating around `h` cannot flap the decision. After
//!   [`DriftConfig::sustain`] streak windows the detector latches
//!   [`DriftDecision::Detected`] and stays latched until [`DriftDetector::reset`].
//! * **Boundary attribution.** The reported boundary is the window index at
//!   which `S` last left zero — under a pure shift this is exactly the
//!   first post-change window, so the daemon can claim every staged window
//!   from the boundary onward as data of the new task.
//!
//! Everything is plain `f64` arithmetic over the observed scores: no
//! clocks, no randomness, no allocation — the same score sequence always
//! yields the same decisions (the determinism contract of DESIGN.md §9
//! extends to boundary inference).

use std::fmt;

/// Tuning knobs for [`DriftDetector`]. Defaults are conservative enough for
/// the synthetic `domain_gap` streams in the test suite; operators override
/// them through the `CDCL_TRAIND_*` environment rows (see README).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DriftConfig {
    /// Windows used to establish the initial baseline (running mean).
    pub calibration: usize,
    /// EWMA step for baseline tracking on clean (`S == 0`) windows.
    pub ewma_alpha: f64,
    /// CUSUM slack: per-window excess below `k` never accumulates.
    pub cusum_k: f64,
    /// CUSUM decision threshold: `S ≥ h` extends the detection streak.
    pub cusum_h: f64,
    /// Accumulate `|score − baseline|` (any distribution change) instead
    /// of the signed `score − baseline` (upward shifts only).
    pub two_sided: bool,
    /// Hysteresis: the streak re-arms (resets) only once `S` falls below
    /// `rearm_ratio * cusum_h`; in between, the streak holds.
    pub rearm_ratio: f64,
    /// Consecutive-ish (dead-band tolerant) over-threshold windows required
    /// before `Detected` fires.
    pub sustain: usize,
}

impl Default for DriftConfig {
    fn default() -> Self {
        Self {
            calibration: 3,
            ewma_alpha: 0.2,
            // Scaled for the nearest-centroid cosine distances drift_score
            // produces on the synthetic streams (typically 0.05–0.3 with
            // within-task window noise well under 0.01).
            cusum_k: 0.015,
            cusum_h: 0.04,
            rearm_ratio: 0.5,
            sustain: 2,
            two_sided: true,
        }
    }
}

impl DriftConfig {
    /// Builds a config from the `CDCL_TRAIND_*` environment variables,
    /// falling back to the default for any variable that is unset or does
    /// not parse. Out-of-range values are clamped to the nearest sane
    /// bound so a typo degrades sensitivity instead of wedging the daemon.
    pub fn from_env() -> Self {
        let d = Self::default();
        let mut cfg = Self {
            calibration: env_usize("CDCL_TRAIND_CALIBRATION", d.calibration),
            ewma_alpha: env_f64("CDCL_TRAIND_EWMA_ALPHA", d.ewma_alpha),
            cusum_k: env_f64("CDCL_TRAIND_CUSUM_K", d.cusum_k),
            cusum_h: env_f64("CDCL_TRAIND_CUSUM_H", d.cusum_h),
            rearm_ratio: env_f64("CDCL_TRAIND_REARM", d.rearm_ratio),
            sustain: env_usize("CDCL_TRAIND_SUSTAIN", d.sustain),
            two_sided: env_bool("CDCL_TRAIND_TWO_SIDED", d.two_sided),
        };
        cfg.sanitize();
        cfg
    }

    /// Clamps every field to its valid range (see field docs).
    pub fn sanitize(&mut self) {
        let d = Self::default();
        self.calibration = self.calibration.max(1);
        if !(self.ewma_alpha > 0.0 && self.ewma_alpha <= 1.0) {
            self.ewma_alpha = d.ewma_alpha;
        }
        if self.cusum_k.is_nan() || self.cusum_k < 0.0 {
            self.cusum_k = d.cusum_k;
        }
        if self.cusum_h.is_nan() || self.cusum_h <= 0.0 {
            self.cusum_h = d.cusum_h;
        }
        if !(self.rearm_ratio >= 0.0 && self.rearm_ratio < 1.0) {
            self.rearm_ratio = d.rearm_ratio;
        }
        self.sustain = self.sustain.max(1);
    }
}

fn env_usize(var: &str, default: usize) -> usize {
    std::env::var(var)
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(default)
}

fn env_f64(var: &str, default: f64) -> f64 {
    std::env::var(var)
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .filter(|v: &f64| v.is_finite())
        .unwrap_or(default)
}

fn env_bool(var: &str, default: bool) -> bool {
    match std::env::var(var) {
        Ok(v) => matches!(v.trim(), "1" | "true" | "yes" | "on"),
        Err(_) => default,
    }
}

/// Per-window verdict from [`DriftDetector::observe`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DriftDecision {
    /// Still establishing the baseline; detection cannot fire.
    Calibrating,
    /// `S == 0`: the window is consistent with the current task.
    Clean,
    /// `S > 0`: an excursion is in progress. `streak` counts the
    /// over-threshold windows accumulated toward `sustain` (0 while `S`
    /// has not yet reached `h`, or after a re-arm).
    Suspect { streak: usize },
    /// Sustained drift: a new task starts at window index `boundary`
    /// (the window where `S` left zero). Latched until [`DriftDetector::reset`].
    Detected { boundary: usize },
}

impl DriftDecision {
    /// Stable lower-case label for protocol acks and metrics.
    pub fn label(&self) -> &'static str {
        match self {
            DriftDecision::Calibrating => "calibrating",
            DriftDecision::Clean => "clean",
            DriftDecision::Suspect { .. } => "suspect",
            DriftDecision::Detected { .. } => "detected",
        }
    }
}

impl fmt::Display for DriftDecision {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// The sliding drift detector described in the module docs. One instance
/// per model; feed it one score per committed window via [`Self::observe`]
/// and call [`Self::reset`] after handling a detection (e.g. after an
/// online training round has archived the new task's centroids).
#[derive(Debug, Clone)]
pub struct DriftDetector {
    config: DriftConfig,
    /// Global committed-window counter; never reset, so boundaries are
    /// stable indices into the daemon's staging ring.
    windows: usize,
    calibrated: usize,
    calib_sum: f64,
    baseline: f64,
    statistic: f64,
    streak: usize,
    /// Window index where `S` last left zero (`None` while clean).
    excursion_start: Option<usize>,
    /// Latched boundary once `Detected` fires.
    fired: Option<usize>,
}

impl DriftDetector {
    /// A fresh detector starting in calibration.
    pub fn new(mut config: DriftConfig) -> Self {
        config.sanitize();
        Self {
            config,
            windows: 0,
            calibrated: 0,
            calib_sum: 0.0,
            baseline: 0.0,
            statistic: 0.0,
            streak: 0,
            excursion_start: None,
            fired: None,
        }
    }

    /// Feeds the score of one committed window and returns the verdict.
    /// Non-finite scores are treated as maximally suspicious clean-side
    /// no-ops: they neither move the baseline nor the statistic.
    pub fn observe(&mut self, score: f64) -> DriftDecision {
        let index = self.windows;
        self.windows += 1;
        if let Some(boundary) = self.fired {
            return DriftDecision::Detected { boundary };
        }
        if !score.is_finite() {
            return if self.calibrated < self.config.calibration {
                DriftDecision::Calibrating
            } else if self.statistic == 0.0 {
                DriftDecision::Clean
            } else {
                DriftDecision::Suspect {
                    streak: self.streak,
                }
            };
        }
        if self.calibrated < self.config.calibration {
            self.calibrated += 1;
            self.calib_sum += score;
            self.baseline = self.calib_sum / self.calibrated as f64;
            return DriftDecision::Calibrating;
        }
        let was_zero = self.statistic == 0.0;
        let deviation = if self.config.two_sided {
            (score - self.baseline).abs()
        } else {
            score - self.baseline
        };
        self.statistic = (self.statistic + deviation - self.config.cusum_k).max(0.0);
        if self.statistic == 0.0 {
            // Clean window: track slow within-task variation; the
            // excursion bookkeeping and streak re-arm.
            self.excursion_start = None;
            self.streak = 0;
            self.baseline += self.config.ewma_alpha * (score - self.baseline);
            return DriftDecision::Clean;
        }
        if was_zero {
            self.excursion_start = Some(index);
        }
        if self.statistic >= self.config.cusum_h {
            self.streak += 1;
            if self.streak >= self.config.sustain {
                let boundary = self.excursion_start.unwrap_or(index);
                self.fired = Some(boundary);
                return DriftDecision::Detected { boundary };
            }
        } else if self.statistic < self.config.cusum_h * self.config.rearm_ratio {
            // Below the re-arm level the streak resets; in the dead band
            // [rearm·h, h) it holds — no flapping at the threshold.
            self.streak = 0;
        }
        DriftDecision::Suspect {
            streak: self.streak,
        }
    }

    /// Clears the latch and restarts calibration against the *new* task's
    /// score distribution. The global window counter keeps running so
    /// boundaries stay comparable across rounds.
    pub fn reset(&mut self) {
        self.calibrated = 0;
        self.calib_sum = 0.0;
        self.baseline = 0.0;
        self.statistic = 0.0;
        self.streak = 0;
        self.excursion_start = None;
        self.fired = None;
    }

    /// The active configuration (post-sanitize).
    pub fn config(&self) -> &DriftConfig {
        &self.config
    }

    /// Committed windows observed over the detector's lifetime.
    pub fn windows(&self) -> usize {
        self.windows
    }

    /// Current EWMA/calibration baseline.
    pub fn baseline(&self) -> f64 {
        self.baseline
    }

    /// Current CUSUM statistic `S`.
    pub fn statistic(&self) -> f64 {
        self.statistic
    }

    /// Current over-threshold streak.
    pub fn streak(&self) -> usize {
        self.streak
    }

    /// True while the baseline is still being established.
    pub fn is_calibrating(&self) -> bool {
        self.calibrated < self.config.calibration
    }

    /// The latched boundary, if a detection has fired since the last reset.
    pub fn detected_boundary(&self) -> Option<usize> {
        self.fired
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// One-sided config: most tests pin the classic signed recurrence so
    /// negative scores can drain `S` (see `rearm_below_the_band…`).
    fn cfg() -> DriftConfig {
        DriftConfig {
            calibration: 3,
            ewma_alpha: 0.2,
            cusum_k: 0.1,
            cusum_h: 1.0,
            rearm_ratio: 0.5,
            sustain: 2,
            two_sided: false,
        }
    }

    #[test]
    fn constant_scores_stay_clean_forever() {
        let mut det = DriftDetector::new(cfg());
        for i in 0..100 {
            let d = det.observe(0.3);
            if i < 3 {
                assert_eq!(d, DriftDecision::Calibrating);
            } else {
                assert_eq!(d, DriftDecision::Clean);
            }
        }
        assert_eq!(det.detected_boundary(), None);
        assert!((det.baseline() - 0.3).abs() < 1e-12);
    }

    #[test]
    fn sustained_shift_detects_at_the_first_shifted_window() {
        let mut det = DriftDetector::new(cfg());
        for _ in 0..6 {
            det.observe(0.2);
        }
        // Shift of +0.7 over baseline 0.2 with k=0.1 accumulates 0.6/window:
        // S = 0.6, 1.2 (streak 1), 1.8 (streak 2 => detect).
        assert_eq!(det.observe(0.9), DriftDecision::Suspect { streak: 0 });
        assert_eq!(det.observe(0.9), DriftDecision::Suspect { streak: 1 });
        assert_eq!(det.observe(0.9), DriftDecision::Detected { boundary: 6 });
        // Latched, boundary stable.
        assert_eq!(det.observe(0.2), DriftDecision::Detected { boundary: 6 });
        assert_eq!(det.detected_boundary(), Some(6));
    }

    #[test]
    fn dead_band_holds_the_streak() {
        let mut det = DriftDetector::new(DriftConfig {
            sustain: 3,
            ..cfg()
        });
        for _ in 0..3 {
            det.observe(0.0); // windows 0-2: baseline 0
        }
        det.observe(1.05); // window 3: S = 0.95 < h — excursion starts, streak 0
        assert_eq!(det.streak(), 0);
        det.observe(0.25); // S = 1.10 >= h: streak 1
        assert_eq!(det.streak(), 1);
        det.observe(0.0); // S = 1.00 >= h: streak 2
        assert_eq!(det.streak(), 2);
        det.observe(0.0); // S = 0.90 — dead band [0.5, 1.0): streak holds
        assert_eq!(det.streak(), 2);
        // One more over-threshold window completes sustain=3; the boundary
        // is window 3, where S left zero.
        let d = det.observe(0.30); // S = 1.10
        assert_eq!(d, DriftDecision::Detected { boundary: 3 });
    }

    #[test]
    fn rearm_below_the_band_resets_the_streak() {
        let mut det = DriftDetector::new(cfg());
        for _ in 0..3 {
            det.observe(0.0);
        }
        det.observe(1.2); // S = 1.1: streak 1
        assert_eq!(det.streak(), 1);
        // Crash S below rearm (0.5): 1.1 - 0.8 - 0.1 = 0.2 -> streak re-arms.
        det.observe(-0.8);
        assert_eq!(det.streak(), 0);
        assert_eq!(det.detected_boundary(), None);
    }

    #[test]
    fn reset_restarts_calibration_and_clears_the_latch() {
        let mut det = DriftDetector::new(cfg());
        for _ in 0..3 {
            det.observe(0.1);
        }
        det.observe(5.0);
        det.observe(5.0);
        assert!(det.detected_boundary().is_some());
        det.reset();
        assert_eq!(det.detected_boundary(), None);
        assert!(det.is_calibrating());
        // Windows counter keeps running across resets.
        assert_eq!(det.windows(), 5);
        assert_eq!(det.observe(5.0), DriftDecision::Calibrating);
    }

    #[test]
    fn two_sided_detects_a_downward_shift() {
        let mut det = DriftDetector::new(DriftConfig {
            two_sided: true,
            ..cfg()
        });
        for _ in 0..6 {
            det.observe(2.0);
        }
        // Collapse to 0.8: |dev| = 1.2, k = 0.1 accumulates 1.1/window:
        // S = 1.1 (streak 1), 2.2 (streak 2 => detect at the first
        // shifted window). One-sided would have kept S at 0 forever.
        assert_eq!(det.observe(0.8), DriftDecision::Suspect { streak: 1 });
        assert_eq!(det.observe(0.8), DriftDecision::Detected { boundary: 6 });
        let mut one_sided = DriftDetector::new(cfg());
        for _ in 0..6 {
            one_sided.observe(2.0);
        }
        assert_eq!(one_sided.observe(0.8), DriftDecision::Clean);
    }

    #[test]
    fn non_finite_scores_are_inert() {
        let mut det = DriftDetector::new(cfg());
        for _ in 0..3 {
            det.observe(0.2);
        }
        let b = det.baseline();
        assert_eq!(det.observe(f64::NAN), DriftDecision::Clean);
        assert_eq!(det.observe(f64::INFINITY), DriftDecision::Clean);
        assert_eq!(det.baseline(), b);
        assert_eq!(det.statistic(), 0.0);
    }

    #[test]
    fn config_sanitize_clamps_nonsense() {
        let mut c = DriftConfig {
            calibration: 0,
            ewma_alpha: -1.0,
            cusum_k: f64::NAN,
            cusum_h: 0.0,
            rearm_ratio: 1.5,
            sustain: 0,
            two_sided: true,
        };
        c.sanitize();
        let d = DriftConfig::default();
        assert_eq!(c.calibration, 1);
        assert_eq!(c.ewma_alpha, d.ewma_alpha);
        assert_eq!(c.cusum_k, d.cusum_k);
        assert_eq!(c.cusum_h, d.cusum_h);
        assert_eq!(c.rearm_ratio, d.rearm_ratio);
        assert_eq!(c.sustain, 1);
    }
}
