// Planted violation for the atomic-ordering pass: an Ordering site with
// no `// ordering:` contract comment and no allowlist entry. Never compiled.
use std::sync::atomic::{AtomicU64, Ordering};

pub static COUNT: AtomicU64 = AtomicU64::new(0);

pub fn bump() {
    COUNT.fetch_add(1, Ordering::Relaxed);
}
