//! `cdcl-serve`: multi-tenant batched TIL/CIL inference over a registry of
//! `cdcl-snapshot` files (DESIGN.md §13).
//!
//! Loads one checkpoint per `--model <id>=<path>` (or one under the id
//! `default` via `--snapshot <path>`), re-runs the graph verifier over
//! every task's frozen `K_i`/`b_i` before answering anything, then serves
//! JSON-lines prediction requests with a dynamic micro-batching queue —
//! requests accumulate until `--max-batch` is reached, a blank line
//! arrives, or the stream ends, and each flush stacks same-shaped work
//! into one forward pass per `(model version, mode, task)` group.
//!
//! ```text
//! cargo run --release -p cdcl-bench --bin cdcl-serve -- \
//!     --snapshot ckpts/task001.cdclsnap --bench-out BENCH_serve.json \
//!     < requests.jsonl > responses.jsonl
//! ```
//!
//! Request lines (`id` echoes back; `task` is required for `"til"`;
//! `model` may be omitted when exactly one model is loaded):
//!
//! ```text
//! {"id": 1, "mode": "til", "task": 0, "image": [0.0, ...]}   // c*h*w floats
//! {"id": 2, "model": "default", "mode": "cil", "image": [0.0, ...]}
//! ```
//!
//! Responses carry `pred` (argmax class — task-local for TIL, global for
//! CIL), the answering `model`/`version`, and the full probability row;
//! malformed requests get `{"ok": false, "error": ...}` instead of
//! aborting the server, and a batch whose output probabilities contain
//! NaN/Inf is answered with errors (counted in
//! `cdcl_serve_nonfinite_total`) rather than garbage predictions. With
//! `--tcp ADDR` the same protocol runs over a `std::net` accept loop with
//! `--threads` workers; a failed accept is logged and counted
//! (`cdcl_serve_accept_errors_total`), never fatal, and a connection
//! opening with `GET /metrics` is answered with the Prometheus exposition
//! of the `cdcl_serve_*` registry metrics (including the per-model
//! `cdcl_serve_model_*{model="…"}` families). On any stream the bare
//! line `METRICS` returns the registry as one JSON object, `MODELS` lists
//! the loaded models/versions, and `RELOAD <model> <path>` atomically
//! hot-swaps a newer snapshot into a model's slot — in-flight requests
//! complete on the version they started with. Admission control
//! (`--max-inflight`, `--max-queue`) sheds excess load with
//! `{"ok":false,"error":"busy: …"}` responses instead of queueing
//! unboundedly. `--metrics-every N` prints a registry summary to stderr
//! every `N` requests. Per-batch latency goes to `cdcl-telemetry` as
//! `serve_batch` events and is summarized in `--bench-out`
//! (`BENCH_serve.json`, with throughput measured over wall-clock serving
//! time). The engine lives in `cdcl_bench::serve` so the integration
//! tests can drive it in-process; `serve-load` is the companion load
//! generator.

fn main() {
    let args = cdcl_bench::serve::parse_args();
    cdcl_bench::serve::run(&args);
}
