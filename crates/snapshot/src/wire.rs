//! Little-endian primitive encoding: the [`Writer`]/[`Reader`] pair used for
//! every section payload.
//!
//! The reader is a bounds-checked cursor: every read validates the remaining
//! length *before* touching (or allocating for) the bytes, so corrupt length
//! prefixes can neither panic nor trigger absurd allocations. All multi-byte
//! integers are little-endian; `f32` round-trips via `to_le_bytes`/
//! `from_le_bytes`, which is bitwise-exact (NaN payloads included) — the
//! foundation of the save→load→save byte-identity guarantee.

use cdcl_tensor::Tensor;

use crate::SnapshotError;

/// Appends primitives to a byte buffer.
#[derive(Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// Fresh, empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// The encoded bytes.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }

    /// One raw byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Little-endian `u32`.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Little-endian `u64`.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Little-endian `i64`.
    pub fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// `usize` as a `u64` (the format is 64-bit regardless of host).
    pub fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// Little-endian IEEE-754 `f32` (bit-exact).
    pub fn f32(&mut self, v: f32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Length-prefixed UTF-8 string.
    pub fn str(&mut self, s: &str) {
        self.usize(s.len());
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Length-prefixed `f32` slice.
    pub fn f32_slice(&mut self, v: &[f32]) {
        self.usize(v.len());
        for &x in v {
            self.f32(x);
        }
    }

    /// Length-prefixed `u64` slice.
    pub fn u64_slice(&mut self, v: &[u64]) {
        self.usize(v.len());
        for &x in v {
            self.u64(x);
        }
    }

    /// Tensor: rank, dims, then the raw `f32` data (row-major, exactly
    /// `∏ dims` entries).
    pub fn tensor(&mut self, t: &Tensor) {
        let shape = t.shape();
        self.u32(shape.len() as u32);
        for &d in shape {
            self.usize(d);
        }
        for &x in t.data() {
            self.f32(x);
        }
    }
}

/// Sane upper bound on a tensor's rank; real model tensors are rank ≤ 4.
const MAX_RANK: usize = 16;

/// Bounds-checked cursor over a section payload.
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Cursor over `buf`, starting at offset 0.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        if self.remaining() < n {
            return Err(SnapshotError::Truncated {
                needed: n,
                have: self.remaining(),
            });
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// One raw byte.
    pub fn u8(&mut self) -> Result<u8, SnapshotError> {
        Ok(self.take(1)?[0])
    }

    /// A `u8` that must be 0 or 1, as a `bool`.
    pub fn bool(&mut self) -> Result<bool, SnapshotError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            v => Err(SnapshotError::Malformed(format!("bool byte was {v}"))),
        }
    }

    /// Little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, SnapshotError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, SnapshotError> {
        let b = self.take(8)?;
        let mut a = [0u8; 8];
        a.copy_from_slice(b);
        Ok(u64::from_le_bytes(a))
    }

    /// Little-endian `i64`.
    pub fn i64(&mut self) -> Result<i64, SnapshotError> {
        Ok(self.u64()? as i64)
    }

    /// A `u64` that must fit the host's `usize`.
    pub fn usize(&mut self) -> Result<usize, SnapshotError> {
        usize::try_from(self.u64()?)
            .map_err(|_| SnapshotError::Malformed("64-bit count exceeds host usize".into()))
    }

    /// A length prefix for `elem_size`-byte elements; validated against the
    /// remaining bytes *before* any allocation.
    fn checked_len(&mut self, elem_size: usize) -> Result<usize, SnapshotError> {
        let n = self.usize()?;
        let bytes = n
            .checked_mul(elem_size)
            .ok_or_else(|| SnapshotError::Malformed("length prefix overflows".into()))?;
        if bytes > self.remaining() {
            return Err(SnapshotError::Truncated {
                needed: bytes,
                have: self.remaining(),
            });
        }
        Ok(n)
    }

    /// Little-endian IEEE-754 `f32` (bit-exact).
    pub fn f32(&mut self) -> Result<f32, SnapshotError> {
        let b = self.take(4)?;
        Ok(f32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<String, SnapshotError> {
        let n = self.checked_len(1)?;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| SnapshotError::Malformed("string is not UTF-8".into()))
    }

    /// Length-prefixed `f32` vector.
    pub fn f32_vec(&mut self) -> Result<Vec<f32>, SnapshotError> {
        let n = self.checked_len(4)?;
        let bytes = self.take(n * 4)?;
        Ok(bytes
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
            .collect())
    }

    /// Length-prefixed `u64` vector.
    pub fn u64_vec(&mut self) -> Result<Vec<u64>, SnapshotError> {
        let n = self.checked_len(8)?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(self.u64()?);
        }
        Ok(out)
    }

    /// Tensor written by [`Writer::tensor`]. The element count is recomputed
    /// with overflow checks and validated against the remaining bytes before
    /// the data buffer is allocated.
    pub fn tensor(&mut self) -> Result<Tensor, SnapshotError> {
        let rank = self.u32()? as usize;
        if rank > MAX_RANK {
            return Err(SnapshotError::Malformed(format!("tensor rank {rank}")));
        }
        let mut shape = Vec::with_capacity(rank);
        let mut numel: usize = 1;
        for _ in 0..rank {
            let d = self.usize()?;
            numel = numel
                .checked_mul(d)
                .ok_or_else(|| SnapshotError::Malformed("tensor shape overflows".into()))?;
            shape.push(d);
        }
        let bytes = numel
            .checked_mul(4)
            .ok_or_else(|| SnapshotError::Malformed("tensor byte size overflows".into()))?;
        if bytes > self.remaining() {
            return Err(SnapshotError::Truncated {
                needed: bytes,
                have: self.remaining(),
            });
        }
        let raw = self.take(bytes)?;
        let data: Vec<f32> = raw
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
            .collect();
        Ok(Tensor::from_vec(data, &shape))
    }

    /// Asserts the payload was consumed exactly — trailing bytes in a
    /// section mean the writer and reader disagree on the layout.
    pub fn finish(self) -> Result<(), SnapshotError> {
        if self.remaining() != 0 {
            return Err(SnapshotError::Malformed(format!(
                "{} unread bytes at end of section",
                self.remaining()
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        let mut w = Writer::new();
        w.u8(7);
        w.u32(0xDEAD_BEEF);
        w.u64(u64::MAX - 1);
        w.i64(-42);
        w.usize(12345);
        w.f32(-0.0);
        w.f32(f32::NAN);
        w.str("enc0.attn.bank.key1.w");
        w.f32_slice(&[1.0, 2.5, -3.0]);
        w.u64_slice(&[9, 8]);
        let bytes = w.finish();

        let mut r = Reader::new(&bytes);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64().unwrap(), u64::MAX - 1);
        assert_eq!(r.i64().unwrap(), -42);
        assert_eq!(r.usize().unwrap(), 12345);
        // Bit-exact: -0.0 and NaN survive.
        assert_eq!(r.f32().unwrap().to_bits(), (-0.0f32).to_bits());
        assert!(r.f32().unwrap().is_nan());
        assert_eq!(r.str().unwrap(), "enc0.attn.bank.key1.w");
        assert_eq!(r.f32_vec().unwrap(), vec![1.0, 2.5, -3.0]);
        assert_eq!(r.u64_vec().unwrap(), vec![9, 8]);
        r.finish().unwrap();
    }

    #[test]
    fn tensors_round_trip_including_empty() {
        for t in [
            Tensor::from_vec(vec![1.0, -2.0, 3.5, 0.25, 5.0, -6.0], &[2, 3]),
            Tensor::zeros(&[3]),
            Tensor::from_vec(Vec::new(), &[0, 4]),
        ] {
            let mut w = Writer::new();
            w.tensor(&t);
            let bytes = w.finish();
            let mut r = Reader::new(&bytes);
            let back = r.tensor().unwrap();
            r.finish().unwrap();
            assert_eq!(back.shape(), t.shape());
            assert_eq!(back.data(), t.data());
        }
    }

    #[test]
    fn oversized_length_prefixes_are_rejected_before_allocation() {
        let mut w = Writer::new();
        w.usize(usize::MAX / 2); // bogus huge length
        let bytes = w.finish();
        assert!(matches!(
            Reader::new(&bytes).f32_vec(),
            Err(SnapshotError::Truncated { .. }) | Err(SnapshotError::Malformed(_))
        ));
        assert!(matches!(
            Reader::new(&bytes).str(),
            Err(SnapshotError::Truncated { .. })
        ));
    }

    #[test]
    fn truncated_reads_report_needed_bytes() {
        let mut w = Writer::new();
        w.u32(5);
        let bytes = w.finish();
        let mut r = Reader::new(&bytes);
        r.u8().unwrap();
        match r.u64() {
            Err(SnapshotError::Truncated { needed: 8, have: 3 }) => {}
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn unread_trailing_bytes_fail_finish() {
        let mut w = Writer::new();
        w.u32(1);
        w.u32(2);
        let bytes = w.finish();
        let mut r = Reader::new(&bytes);
        r.u32().unwrap();
        assert!(matches!(r.finish(), Err(SnapshotError::Malformed(_))));
    }

    #[test]
    fn bogus_tensor_rank_is_rejected() {
        let mut w = Writer::new();
        w.u32(1_000_000);
        let bytes = w.finish();
        assert!(matches!(
            Reader::new(&bytes).tensor(),
            Err(SnapshotError::Malformed(_))
        ));
    }
}
