//! Central-finite-difference gradient checking, used by the workspace's test
//! suites to validate every backward rule.

use cdcl_tensor::Tensor;

use crate::Param;

/// Numerically estimates `d loss / d param` by central differences.
///
/// `loss` must recompute the full forward pass from the parameter's current
/// value (it is invoked `2 * param.num_elements()` times). Keep the tensors
/// involved tiny.
pub fn finite_diff_grad(param: &Param, mut loss: impl FnMut() -> f32, eps: f32) -> Tensor {
    let base = param.value();
    let n = base.len();
    let mut grad = vec![0.0; n];
    for (i, slot) in grad.iter_mut().enumerate() {
        let mut plus = base.clone();
        plus.data_mut()[i] += eps;
        param.set_value(plus);
        let lp = loss();

        let mut minus = base.clone();
        minus.data_mut()[i] -= eps;
        param.set_value(minus);
        let lm = loss();

        *slot = (lp - lm) / (2.0 * eps);
    }
    param.set_value(base.clone());
    Tensor::from_vec(grad, base.shape())
}
