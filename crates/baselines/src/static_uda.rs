//! The TVT-style static UDA upper bound (paper Tables I–III, bottom row).
//!
//! The same UDA machinery as CDTrans/CDCL — source warm-up, center-aware
//! pseudo-labels, cross-attention alignment — but trained **jointly on every
//! task's data at once**, with no continual constraint. The gap between this
//! row and the continual methods is the catastrophic-forgetting cost the
//! paper highlights.

use cdcl_autograd::Graph;
use cdcl_core::pseudo::{build_pairs, nearest_centroid_labels, weighted_centroids, Pair};
use cdcl_core::CdclModel;
use cdcl_data::{stack, Batcher, CrossDomainStream, Sample};
use cdcl_nn::Module;
use cdcl_optim::{AdamW, LrSchedule, Optimizer, WarmupCosine};
use cdcl_tensor::Tensor;
use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::shared::EVAL_CHUNK;
use crate::BaselineConfig;

/// Per-task and average accuracies of the static upper bound.
#[derive(Debug, Clone)]
pub struct StaticUdaResult {
    /// Stream name.
    pub stream: String,
    /// Accuracy on each task's target test set, task-restricted logits
    /// (the TIL-style number reported in the paper's TVT row).
    pub per_task_til: Vec<f64>,
    /// Accuracy with unrestricted logits (CIL-style).
    pub per_task_cil: Vec<f64>,
}

impl StaticUdaResult {
    /// Average TIL-style accuracy in percent.
    pub fn til_acc_pct(&self) -> f64 {
        100.0 * self.per_task_til.iter().sum::<f64>() / self.per_task_til.len().max(1) as f64
    }

    /// Average CIL-style accuracy in percent.
    pub fn cil_acc_pct(&self) -> f64 {
        100.0 * self.per_task_cil.iter().sum::<f64>() / self.per_task_cil.len().max(1) as f64
    }
}

/// Globally-labelled flattened pool of every task's data.
struct JointPool {
    source: Vec<Sample>,
    target: Vec<Sample>,
    /// Class offset of each original task.
    offsets: Vec<usize>,
}

fn flatten(stream: &CrossDomainStream) -> JointPool {
    let mut source = Vec::new();
    let mut target = Vec::new();
    let mut offsets = Vec::with_capacity(stream.tasks.len());
    let mut offset = 0;
    for task in &stream.tasks {
        offsets.push(offset);
        for s in &task.source_train {
            source.push(Sample {
                image: s.image.clone(),
                label: offset + s.label,
            });
        }
        for s in &task.target_train {
            target.push(Sample {
                image: s.image.clone(),
                label: offset + s.label, // hidden; evaluation only
            });
        }
        offset += task.num_classes();
    }
    JointPool {
        source,
        target,
        offsets,
    }
}

fn batch_images(samples: &[Sample], idx: &[usize]) -> (Tensor, Vec<usize>) {
    let refs: Vec<&Sample> = idx.iter().map(|&i| &samples[i]).collect();
    stack(&refs)
}

/// Trains the joint UDA model and evaluates it per task.
pub fn run_static_uda(stream: &CrossDomainStream, config: BaselineConfig) -> StaticUdaResult {
    let config = config.normalized();
    let mut rng = SmallRng::seed_from_u64(config.seed);
    let pool = flatten(stream);
    let total_classes: usize = stream.tasks.iter().map(|t| t.num_classes()).sum();

    // One "task" holding every class: the static setting.
    let mut model = CdclModel::new(&mut rng, config.backbone);
    model.add_task(&mut rng, total_classes);
    let mut optimizer = AdamW::new(model.params());
    let schedule = WarmupCosine {
        warmup_lr: config.peak_lr * 0.5,
        peak_lr: config.peak_lr,
        min_lr: config.min_lr,
        warmup_epochs: config.warmup_epochs,
        total_epochs: config.epochs,
    };

    let extract = |model: &CdclModel, samples: &[Sample]| -> Tensor {
        let mut parts = Vec::new();
        for chunk in (0..samples.len()).collect::<Vec<_>>().chunks(EVAL_CHUNK) {
            let (imgs, _) = batch_images(samples, chunk);
            parts.push(model.extract_features(&imgs, 0));
        }
        let refs: Vec<&Tensor> = parts.iter().collect();
        Tensor::concat0(&refs)
    };
    let til_probs = |model: &CdclModel, samples: &[Sample]| -> Tensor {
        let mut parts = Vec::new();
        for chunk in (0..samples.len()).collect::<Vec<_>>().chunks(EVAL_CHUNK) {
            let (imgs, _) = batch_images(samples, chunk);
            parts.push(model.predict_til(&imgs, 0));
        }
        let refs: Vec<&Tensor> = parts.iter().collect();
        Tensor::concat0(&refs)
    };

    let mut src_batcher = Batcher::new(pool.source.len(), config.batch_size, config.seed ^ 0xBEEF);
    for epoch in 0..config.epochs {
        let lr = schedule.lr(epoch);
        if epoch < config.warmup_epochs {
            for batch in src_batcher.epoch() {
                let (imgs, labels) = batch_images(&pool.source, &batch);
                let mut g = Graph::new();
                let x = g.input(imgs);
                let z = model.features_self(&mut g, x, 0);
                let logits = model.til_logits(&mut g, z, 0);
                let lp = g.log_softmax_last(logits);
                let loss = g.nll_loss(lp, &labels);
                optimizer.zero_grad();
                g.backward(loss);
                optimizer.step(lr);
            }
        } else {
            let src_feats = extract(&model, &pool.source);
            let src_labels: Vec<usize> = pool.source.iter().map(|s| s.label).collect();
            let tgt_feats = extract(&model, &pool.target);
            let probs = til_probs(&model, &pool.target);
            let centroids = weighted_centroids(&probs, &tgt_feats);
            let pseudo = nearest_centroid_labels(&tgt_feats, &centroids);
            let hard = Tensor::one_hot(&pseudo, centroids.shape()[0]);
            let centroids = weighted_centroids(&hard, &tgt_feats);
            let pseudo = nearest_centroid_labels(&tgt_feats, &centroids);
            let pairs = build_pairs(&src_feats, &src_labels, &tgt_feats, &pseudo);
            let pairs = if pairs.is_empty() {
                (0..pool.target.len().min(pool.source.len()))
                    .map(|i| Pair {
                        source: i,
                        target: i,
                        label: pool.source[i].label,
                    })
                    .collect()
            } else {
                pairs
            };
            let mut pb = Batcher::new(pairs.len(), config.batch_size, config.seed ^ epoch as u64);
            for batch in pb.epoch() {
                let src_refs: Vec<&Sample> = batch
                    .iter()
                    .map(|&i| &pool.source[pairs[i].source])
                    .collect();
                let tgt_refs: Vec<&Sample> = batch
                    .iter()
                    .map(|&i| &pool.target[pairs[i].target])
                    .collect();
                let labels: Vec<usize> = batch.iter().map(|&i| pairs[i].label).collect();
                let (src_imgs, _) = stack(&src_refs);
                let (tgt_imgs, _) = stack(&tgt_refs);
                let mut g = Graph::new();
                let xs = g.input(src_imgs);
                let xt = g.input(tgt_imgs);
                let zs = model.features_self(&mut g, xs, 0);
                let zt = model.features_self(&mut g, xt, 0);
                let zm = model.features_cross(&mut g, xs, xt, 0);
                let ls = model.til_logits(&mut g, zs, 0);
                let lt = model.til_logits(&mut g, zt, 0);
                let lm = model.til_logits(&mut g, zm, 0);
                let lp_s = g.log_softmax_last(ls);
                let lp_t = g.log_softmax_last(lt);
                let lp_m = g.log_softmax_last(lm);
                let l1 = g.nll_loss(lp_s, &labels);
                let l2 = g.nll_loss(lp_t, &labels);
                let teacher_m = g.value(lm).softmax_last();
                let teacher_t = g.value(lt).softmax_last();
                let l3 = g.ce_soft(lp_t, teacher_m);
                let l4 = g.ce_soft(lp_m, teacher_t);
                let l3 = g.scale(l3, 0.5);
                let l4 = g.scale(l4, 0.5);
                let a = g.add(l1, l2);
                let b = g.add(l3, l4);
                let loss = g.add(a, b);
                optimizer.zero_grad();
                g.backward(loss);
                optimizer.step(lr);
            }
        }
    }

    // Per-task evaluation.
    let mut per_task_til = Vec::with_capacity(stream.tasks.len());
    let mut per_task_cil = Vec::with_capacity(stream.tasks.len());
    for (j, task) in stream.tasks.iter().enumerate() {
        let offset = pool.offsets[j];
        let u = task.num_classes();
        let mut til_hits = 0usize;
        let mut cil_hits = 0usize;
        for chunk in (0..task.target_test.len())
            .collect::<Vec<_>>()
            .chunks(EVAL_CHUNK)
        {
            let refs: Vec<&Sample> = chunk.iter().map(|&i| &task.target_test[i]).collect();
            let (imgs, labels) = stack(&refs);
            let probs = model.predict_til(&imgs, 0); // [b, total]
            let total = probs.shape()[1];
            for (i, &local) in labels.iter().enumerate() {
                let row = &probs.data()[i * total..(i + 1) * total];
                // TIL-style: restrict to the task's class block.
                let block = &row[offset..offset + u];
                let mut best = 0;
                for (c, v) in block.iter().enumerate() {
                    if *v > block[best] {
                        best = c;
                    }
                }
                if best == local {
                    til_hits += 1;
                }
                // CIL-style: global argmax.
                let mut gbest = 0;
                for (c, v) in row.iter().enumerate() {
                    if *v > row[gbest] {
                        gbest = c;
                    }
                }
                if gbest == offset + local {
                    cil_hits += 1;
                }
            }
        }
        let n = task.target_test.len().max(1) as f64;
        per_task_til.push(til_hits as f64 / n);
        per_task_cil.push(cil_hits as f64 / n);
    }
    StaticUdaResult {
        stream: stream.name.clone(),
        per_task_til,
        per_task_cil,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdcl_data::{mnist_usps, MnistUspsDirection, Scale};

    #[test]
    fn flatten_globalizes_labels() {
        let stream = mnist_usps(MnistUspsDirection::MnistToUsps, Scale::Smoke);
        let pool = flatten(&stream);
        assert_eq!(pool.offsets, vec![0, 2, 4, 6, 8]);
        let max_label = pool.source.iter().map(|s| s.label).max().unwrap();
        assert_eq!(max_label, 9);
        assert_eq!(
            pool.source.len(),
            stream
                .tasks
                .iter()
                .map(|t| t.source_train.len())
                .sum::<usize>()
        );
    }
}
