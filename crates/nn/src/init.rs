//! Weight initialisation helpers.

use cdcl_tensor::Tensor;
use rand::Rng;

/// Xavier/Glorot uniform initialisation: `U(-a, a)` with
/// `a = sqrt(6 / (fan_in + fan_out))`.
pub fn xavier_uniform<R: Rng + ?Sized>(
    rng: &mut R,
    shape: &[usize],
    fan_in: usize,
    fan_out: usize,
) -> Tensor {
    let a = (6.0 / (fan_in + fan_out) as f32).sqrt();
    Tensor::uniform(rng, shape, -a, a)
}

/// Kaiming/He standard deviation for ReLU fan-in initialisation.
pub fn kaiming_std(fan_in: usize) -> f32 {
    (2.0 / fan_in as f32).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn xavier_bounds_match_fan() {
        let mut rng = SmallRng::seed_from_u64(1);
        let t = xavier_uniform(&mut rng, &[100, 100], 100, 100);
        let bound = (6.0f32 / 200.0).sqrt();
        assert!(t.max() <= bound);
        assert!(t.data().iter().all(|v| *v >= -bound));
        // Not degenerate: spans a reasonable fraction of the range.
        assert!(t.max() > bound * 0.8);
    }

    #[test]
    fn kaiming_std_value() {
        assert!((kaiming_std(8) - 0.5).abs() < 1e-6);
    }
}
