//! Plain-text table rendering for the experiment binaries, mirroring the
//! layout of the paper's tables (methods as rows, transfer pairs as
//! columns, best entry highlighted).

use serde::{Deserialize, Serialize};

/// One row of an experiment table: a method name plus one value per column.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TableRow {
    /// Method label, e.g. `"DER"`, `"Ours (ACC)"`.
    pub label: String,
    /// One value per column; `None` renders as `-`.
    pub values: Vec<Option<f64>>,
}

impl TableRow {
    /// Convenience constructor from fully-populated values.
    pub fn new(label: impl Into<String>, values: Vec<f64>) -> Self {
        Self {
            label: label.into(),
            values: values.into_iter().map(Some).collect(),
        }
    }
}

/// Renders a paper-style table. `highlight_rows` lists the row indices that
/// compete for the per-column bold marker (`*`), so upper-bound rows (TVT)
/// and forgetting rows can be excluded from the comparison, as in the paper.
pub fn format_table(
    title: &str,
    columns: &[&str],
    rows: &[TableRow],
    highlight_rows: &[usize],
) -> String {
    let label_w = rows
        .iter()
        .map(|r| r.label.len())
        .chain(std::iter::once("Method".len()))
        .max()
        .unwrap_or(6)
        .max(6);
    let col_w = columns.iter().map(|c| c.len()).max().unwrap_or(6).max(7);

    // Per-column winner among the highlighted rows.
    let mut best: Vec<Option<usize>> = vec![None; columns.len()];
    for (c, slot) in best.iter_mut().enumerate() {
        let mut best_v = f64::NEG_INFINITY;
        for &r in highlight_rows {
            if let Some(Some(v)) = rows.get(r).and_then(|row| row.values.get(c)) {
                if *v > best_v {
                    best_v = *v;
                    *slot = Some(r);
                }
            }
        }
    }

    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    out.push_str(&format!("{:label_w$}", "Method"));
    for c in columns {
        out.push_str(&format!(" | {c:>col_w$}"));
    }
    out.push('\n');
    out.push_str(&"-".repeat(label_w + columns.len() * (col_w + 3)));
    out.push('\n');
    for (ri, row) in rows.iter().enumerate() {
        out.push_str(&format!("{:label_w$}", row.label));
        for (ci, v) in row.values.iter().enumerate() {
            match v {
                Some(v) => {
                    let marker = if best[ci] == Some(ri) { "*" } else { " " };
                    out.push_str(&format!(" | {:>w$.2}{marker}", v, w = col_w - 1));
                }
                None => out.push_str(&format!(" | {:>col_w$}", "-")),
            }
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_headers_and_values() {
        let rows = vec![
            TableRow::new("DER", vec![4.45, 4.20]),
            TableRow::new("Ours", vec![26.22, 22.43]),
        ];
        let t = format_table("Table I", &["A->D", "A->W"], &rows, &[0, 1]);
        assert!(t.contains("Table I"));
        assert!(t.contains("A->D"));
        assert!(t.contains("DER"));
        assert!(t.contains("26.22*"), "winner gets the star:\n{t}");
        assert!(t.contains("4.45 "), "loser unstarred:\n{t}");
    }

    #[test]
    fn missing_values_render_dash() {
        let rows = vec![TableRow {
            label: "X".into(),
            values: vec![None, Some(1.0)],
        }];
        let t = format_table("T", &["a", "b"], &rows, &[0]);
        assert!(t.contains('-'));
    }

    #[test]
    fn excluded_rows_never_win() {
        let rows = vec![
            TableRow::new("Ours", vec![10.0]),
            TableRow::new("TVT (upper bound)", vec![99.0]),
        ];
        let t = format_table("T", &["col"], &rows, &[0]);
        assert!(t.contains("10.00*"));
        assert!(!t.contains("99.00*"));
    }
}
