//! Regenerates **Figure 2**: the evolution of CDCL's per-task target
//! accuracy on VisDA-2017 as training progresses through the task sequence,
//! for both the TIL and CIL scenarios, with the mean ± std band over
//! previously-learned tasks (the paper's shaded region).
//!
//! Output: an ASCII series per scenario plus the row mean/std table.
//!
//! ```text
//! cargo run --release -p cdcl-bench --bin figure2 -- --scale standard
//! ```

use cdcl_bench::{maybe_write_json, ExperimentConfig};
use cdcl_core::{run_stream, CdclTrainer};
use cdcl_data::visda;
use cdcl_metrics::RMatrix;
use serde::Serialize;

#[derive(Serialize)]
struct FigureDump {
    til_series: Vec<cdcl_metrics::AccSeries>,
    cil_series: Vec<cdcl_metrics::AccSeries>,
    til_band: Vec<(f64, f64)>,
    cil_band: Vec<(f64, f64)>,
}

fn print_scenario(name: &str, r: &RMatrix) {
    println!("--- {name} ---");
    for s in r.series() {
        let pts: Vec<String> = s
            .accuracies
            .iter()
            .map(|a| format!("{:5.1}", a * 100.0))
            .collect();
        println!(
            "task {} accuracy after tasks {}..T: [{}]",
            s.task,
            s.task,
            pts.join(", ")
        );
    }
    println!("mean ± std of learned-task accuracy after each task (the shaded band):");
    for (i, (mean, std)) in r.row_mean_std().iter().enumerate() {
        let bar_len = (mean * 40.0).round() as usize;
        println!(
            "after task {i}: {:5.1}% ± {:4.1}  |{}|",
            mean * 100.0,
            std * 100.0,
            "#".repeat(bar_len)
        );
    }
    println!();
}

fn main() {
    let cfg = ExperimentConfig::from_args();
    let stream = visda(cfg.scale);
    let start = std::time::Instant::now();
    let result = run_stream(&mut CdclTrainer::new(cfg.cdcl(&stream)), &stream);
    eprintln!(
        "[visda] CDCL TIL {:.1}% CIL {:.1}% ({:.0}s)",
        result.til_acc_pct(),
        result.cil_acc_pct(),
        start.elapsed().as_secs_f64()
    );

    println!("Figure 2: evolution of CDCL's ACC on VisDA-2017\n");
    print_scenario("TIL", &result.til);
    print_scenario("CIL", &result.cil);

    maybe_write_json(
        &cfg.out,
        &FigureDump {
            til_series: result.til.series(),
            cil_series: result.cil.series(),
            til_band: result.til.row_mean_std(),
            cil_band: result.cil.row_mean_std(),
        },
    );
}
