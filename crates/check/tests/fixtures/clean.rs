// Negative fixture: consistent lock order, no blocking calls under guards,
// and a documented atomic — both passes must report nothing here. Never
// compiled.
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

pub static HITS: AtomicU64 = AtomicU64::new(0);

pub struct S {
    pub outer: Mutex<u32>,
    pub inner: Mutex<u32>,
}

pub fn nested_consistent(s: &S) {
    let go = s.outer.lock();
    let gi = s.inner.lock();
    // ordering: stat — monotonic counter; readers tolerate staleness.
    HITS.fetch_add(1, Ordering::Relaxed);
    let _ = (go, gi);
}

pub fn reader(s: &S) {
    let go = s.outer.lock();
    drop(go);
    let gi = s.inner.lock();
    let _ = gi;
}
