//! Sequence helpers (`shuffle`).

use crate::Rng;

/// In-place random reordering of slices.
pub trait SliceRandom {
    /// Fisher–Yates shuffle driven by `rng`.
    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
}

impl<T> SliceRandom for [T] {
    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = rng.random_range(0..=i);
            self.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::SmallRng;
    use crate::SeedableRng;

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = SmallRng::seed_from_u64(5);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements should not shuffle to identity");
    }

    #[test]
    fn shuffle_deterministic_per_seed() {
        let mut a: Vec<usize> = (0..20).collect();
        let mut b: Vec<usize> = (0..20).collect();
        a.shuffle(&mut SmallRng::seed_from_u64(3));
        b.shuffle(&mut SmallRng::seed_from_u64(3));
        assert_eq!(a, b);
    }
}
