//! The `cdcl-serve` engine: multi-tenant batched TIL/CIL inference over a
//! registry of snapshots (DESIGN.md §13).
//!
//! This module tree is the whole server minus `main` — the `cdcl-serve`
//! bin is a thin wrapper, and the integration tests drive [`run_tcp`] /
//! [`serve_stream`] in-process. The pieces:
//!
//! * [`registry`] — the [`SnapshotRegistry`]: many `.cdclsnap` models
//!   keyed by model-id, each behind an `RwLock<Arc<LoadedModel>>` so the
//!   `RELOAD` verb swaps versions atomically while in-flight requests
//!   finish on the version they started with;
//! * [`admission`] — per-model in-flight quotas: beyond `--max-inflight`
//!   admitted requests a model sheds load with `ok:false` / `busy: …`
//!   instead of queueing unboundedly (plus the `--max-queue` cap on any
//!   one connection's pending queue);
//! * [`metrics`] — the `cdcl_serve_*` registry series, including the
//!   per-model `cdcl_serve_model_*{model="…"}` families;
//! * [`load`] — the `serve-load` generator measuring sustained RPS and
//!   tail latency against the threaded accept loop
//!   (`BENCH_serve_load.json`).
//!
//! The TCP accept loop runs `--threads` workers over one nonblocking
//! listener; a failed `accept()`/`try_clone()` is logged and counted
//! (`cdcl_serve_accept_errors_total`), never fatal. Heavy compute stays in
//! the zero-dep kernel pool — connection workers only stage batches and
//! run forward passes, which parallelize internally. Observability
//! (DESIGN.md §11): every micro-batch feeds the global and per-model
//! histograms/counters, `GET /metrics` on the listener answers the
//! Prometheus exposition, the bare line `METRICS` returns the registry as
//! one JSON object, `MODELS` lists the loaded models/versions, and
//! `--metrics-every N` prints a summary to stderr every `N` requests.
//! Output probabilities are screened per batch: a row containing NaN/Inf
//! becomes an error response and bumps `cdcl_serve_nonfinite_total`.

pub mod admission;
pub mod load;
pub mod metrics;
pub mod registry;

use cdcl_core::CdclTrainer;
use cdcl_telemetry as telemetry;
use cdcl_tensor::{pool, PooledBuf, Tensor};
use metrics::{
    ACCEPT_ERRORS_TOTAL, BATCHES_TOTAL, BATCH_LATENCY_US, BATCH_SIZE, BUSY_TOTAL, FAILED_TOTAL,
    NONFINITE_TOTAL, QUEUE_DEPTH, REQUESTS_TOTAL, SERVE_ALLOC_BYTES,
};
use registry::{LoadedModel, ModelSlot, SnapshotRegistry, DEFAULT_MODEL};
use serde::{Deserialize, Serialize};
use std::io::{BufRead, BufReader, BufWriter, ErrorKind, Write};
use std::net::{TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// One JSON-lines prediction request.
#[derive(Debug, Deserialize)]
pub struct Request {
    /// Client-chosen id, echoed in the response (0 when omitted).
    pub id: Option<u64>,
    /// Registry model id; may be omitted when exactly one model is loaded.
    pub model: Option<String>,
    /// `"til"` or `"cil"`.
    pub mode: Option<String>,
    /// Task id (TIL only).
    pub task: Option<usize>,
    /// Flattened `c*h*w` image.
    pub image: Option<Vec<f32>>,
    /// Optional traceparent (`00-<trace>-<span>-01`) of the caller's span:
    /// echoed in the response and recorded as a fan-in link on the batch
    /// span that absorbs this request (DESIGN.md §16).
    pub trace: Option<String>,
}

/// One JSON-lines prediction response.
#[derive(Debug, Serialize)]
pub struct Response {
    pub id: u64,
    pub ok: bool,
    /// Registry id of the model that answered.
    pub model: Option<String>,
    /// Snapshot version that answered (bumped by every `RELOAD`).
    pub version: Option<u64>,
    pub mode: Option<String>,
    pub task: Option<usize>,
    /// Argmax class: task-local for TIL, global for CIL.
    pub pred: Option<usize>,
    /// Full probability row (softmax).
    pub probs: Option<Vec<f32>>,
    pub error: Option<String>,
    /// The request's `trace` field, echoed verbatim (`null` when absent —
    /// the vendored serde has no skip-if-none, see DESIGN.md §16).
    pub trace: Option<String>,
}

impl Response {
    fn failure(id: u64, error: String) -> Self {
        Self {
            id,
            ok: false,
            model: None,
            version: None,
            mode: None,
            task: None,
            pred: None,
            probs: None,
            error: Some(error),
            trace: None,
        }
    }
}

/// Latency summary written to `--bench-out` (per forward micro-batch for
/// `BENCH_serve.json`, per request round-trip for `BENCH_serve_load.json`).
#[derive(Debug, Serialize)]
pub struct LatencySummary {
    pub mean: f64,
    pub p50: f64,
    pub p95: f64,
    pub p99: f64,
    pub max: f64,
}

impl LatencySummary {
    /// Sorts and folds raw microsecond samples.
    pub fn from_samples(mut lat: Vec<f64>) -> Self {
        lat.sort_by(|a, b| a.total_cmp(b));
        let pct = |q: f64| -> f64 {
            if lat.is_empty() {
                return 0.0;
            }
            let idx = ((lat.len() as f64 - 1.0) * q).round() as usize;
            lat[idx]
        };
        Self {
            mean: if lat.is_empty() {
                0.0
            } else {
                lat.iter().sum::<f64>() / lat.len() as f64
            },
            p50: pct(0.50),
            p95: pct(0.95),
            p99: pct(0.99),
            max: lat.last().copied().unwrap_or(0.0),
        }
    }
}

/// The `BENCH_serve.json` payload.
#[derive(Debug, Serialize)]
pub struct ServeReport {
    pub snapshot: String,
    pub models: usize,
    pub tasks: usize,
    pub total_classes: usize,
    pub max_batch: usize,
    pub requests: u64,
    pub failed_requests: u64,
    pub busy_requests: u64,
    pub batches: u64,
    pub mean_batch_size: f64,
    pub latency_us: LatencySummary,
    /// Wall-clock serving duration (listener open → loop exit).
    pub wall_secs: f64,
    /// Served requests over **wall-clock** serving time — not summed
    /// per-batch forward latency, which ignores queueing/IO time and
    /// double-counts once batches run concurrently on the threaded loop.
    pub throughput_rps: f64,
}

/// Running serve statistics, shared by every connection worker.
#[derive(Debug, Default)]
pub struct ServeStats {
    requests: AtomicU64,
    failed: AtomicU64,
    busy: AtomicU64,
    /// `(batch_size, latency_us)` per forward pass.
    batches: Mutex<Vec<(usize, f64)>>,
}

impl ServeStats {
    /// Requests seen (including malformed and shed ones).
    pub fn requests(&self) -> u64 {
        // ordering: stat — monotonic telemetry counter; readers tolerate staleness.
        self.requests.load(Ordering::Relaxed)
    }

    /// Requests answered with a non-busy error response.
    pub fn failed(&self) -> u64 {
        // ordering: stat — monotonic telemetry counter; readers tolerate staleness.
        self.failed.load(Ordering::Relaxed)
    }

    /// Requests shed by admission control (`busy: …` responses).
    pub fn busy(&self) -> u64 {
        // ordering: stat — monotonic telemetry counter; readers tolerate staleness.
        self.busy.load(Ordering::Relaxed)
    }

    fn inc_requests(&self) {
        // ordering: stat — monotonic telemetry counter; readers tolerate staleness.
        self.requests.fetch_add(1, Ordering::Relaxed);
    }

    fn inc_failed(&self) {
        // ordering: stat — monotonic telemetry counter; readers tolerate staleness.
        self.failed.fetch_add(1, Ordering::Relaxed);
    }

    fn inc_busy(&self) {
        // ordering: stat — monotonic telemetry counter; readers tolerate staleness.
        self.busy.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one executed forward pass.
    pub fn add_batch(&self, batch_size: usize, latency_us: f64) {
        lock_batches(&self.batches, "serve.batches").push((batch_size, latency_us));
    }

    /// Forward passes executed so far.
    pub fn batch_count(&self) -> u64 {
        lock_batches(&self.batches, "serve.batches").len() as u64
    }

    /// Requests that went through a forward pass.
    pub fn served(&self) -> u64 {
        lock_batches(&self.batches, "serve.batches")
            .iter()
            .map(|&(n, _)| n as u64)
            .sum()
    }

    /// Folds the run into the `--bench-out` report. `wall_secs` is the
    /// wall-clock duration of the serving loop — the denominator of the
    /// throughput claim.
    pub fn report(
        &self,
        snapshot: &str,
        trainer: &CdclTrainer,
        max_batch: usize,
        models: usize,
        wall_secs: f64,
    ) -> ServeReport {
        let batches = lock_batches(&self.batches, "serve.batches").clone();
        let served: u64 = batches.iter().map(|&(n, _)| n as u64).sum();
        let lat: Vec<f64> = batches.iter().map(|&(_, us)| us).collect();
        ServeReport {
            snapshot: snapshot.to_string(),
            models,
            tasks: trainer.model().num_tasks(),
            total_classes: trainer.model().total_classes(),
            max_batch,
            requests: self.requests(),
            failed_requests: self.failed(),
            busy_requests: self.busy(),
            batches: batches.len() as u64,
            mean_batch_size: if batches.is_empty() {
                0.0
            } else {
                served as f64 / batches.len() as f64
            },
            latency_us: LatencySummary::from_samples(lat),
            wall_secs,
            throughput_rps: if wall_secs > 0.0 {
                served as f64 / wall_secs
            } else {
                0.0
            },
        }
    }
}

/// Poison-tolerant batch-list lock: holders only push, so a panicked
/// holder cannot leave the Vec inconsistent.
fn lock_batches<'m>(
    m: &'m Mutex<Vec<(usize, f64)>>,
    name: &'static str,
) -> cdcl_obs::lockhook::Witnessed<std::sync::MutexGuard<'m, Vec<(usize, f64)>>> {
    let guard = match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    };
    cdcl_obs::lockhook::witness_acquired(guard, name)
}

/// Parsed `cdcl-serve` command line.
#[derive(Debug)]
pub struct ServeArgs {
    /// `(model_id, snapshot_path)` pairs, registration order preserved;
    /// `--snapshot P` is shorthand for `--model default=P`.
    pub models: Vec<(String, PathBuf)>,
    pub tcp: Option<String>,
    pub max_batch: usize,
    pub bench_out: Option<String>,
    /// TCP mode: exit after this many connections (0 = forever).
    pub conns: usize,
    /// Stderr metrics summary every N requests (0 = never).
    pub metrics_every: usize,
    /// TCP accept-loop workers.
    pub threads: usize,
    /// Per-model admitted-request quota (0 = unlimited).
    pub max_inflight: usize,
    /// Per-connection pending-queue cap; beyond it requests are shed busy.
    pub max_queue: usize,
    /// Allow starting with zero models: the registry is then populated
    /// entirely through `RELOAD` (the `cdcl-traind` publish loop).
    pub empty_ok: bool,
}

impl Default for ServeArgs {
    fn default() -> Self {
        Self {
            models: Vec::new(),
            tcp: None,
            max_batch: 32,
            bench_out: Some("BENCH_serve.json".to_string()),
            conns: 1,
            metrics_every: 0,
            threads: 4,
            max_inflight: 0,
            max_queue: 256,
            empty_ok: false,
        }
    }
}

/// The `cdcl-serve` usage text printed on any CLI error.
pub fn serve_usage() -> String {
    "usage: cdcl-serve --snapshot <path.cdclsnap> | --model <id>=<path.cdclsnap> ... | --empty-ok\n\
     \x20   [--tcp <addr>] [--threads <n>] [--conns <n>]\n\
     \x20   [--max-batch <n>] [--max-inflight <n>] [--max-queue <n>]\n\
     \x20   [--bench-out <path|none>] [--metrics-every <n>]"
        .to_string()
}

/// Returns the value following flag `argv[i]`, or a usage error when the
/// flag is the last argument — the bug class where `--snapshot` as the
/// final token used to die with an out-of-bounds panic.
fn flag_value(argv: &[String], i: usize) -> Result<&str, String> {
    argv.get(i + 1)
        .map(|s| s.as_str())
        .ok_or_else(|| format!("{} needs a value\n{}", argv[i], serve_usage()))
}

fn flag_usize(argv: &[String], i: usize) -> Result<usize, String> {
    let v = flag_value(argv, i)?;
    v.parse().map_err(|_| {
        format!(
            "{} expects a non-negative integer, got {v:?}\n{}",
            argv[i],
            serve_usage()
        )
    })
}

/// Parses a `cdcl-serve` argument vector. All CLI mistakes — a flag
/// missing its value, a malformed number, an unknown flag, no model —
/// come back as a usage error, never a panic.
pub fn parse_args_from(argv: &[String]) -> Result<ServeArgs, String> {
    let mut args = ServeArgs::default();
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--snapshot" => {
                let path = flag_value(argv, i)?;
                args.models
                    .push((DEFAULT_MODEL.to_string(), PathBuf::from(path)));
            }
            "--model" => {
                let spec = flag_value(argv, i)?;
                let (id, path) = spec.split_once('=').ok_or_else(|| {
                    format!(
                        "--model expects <id>=<path>, got {spec:?}\n{}",
                        serve_usage()
                    )
                })?;
                if !registry::valid_model_id(id) {
                    return Err(format!(
                        "invalid model id {id:?} (1-64 chars of [A-Za-z0-9._-])\n{}",
                        serve_usage()
                    ));
                }
                args.models.push((id.to_string(), PathBuf::from(path)));
            }
            "--tcp" => args.tcp = Some(flag_value(argv, i)?.to_string()),
            "--max-batch" => {
                args.max_batch = flag_usize(argv, i)?;
                if args.max_batch == 0 {
                    return Err(format!("--max-batch must be positive\n{}", serve_usage()));
                }
            }
            "--bench-out" => {
                args.bench_out = match flag_value(argv, i)? {
                    "none" => None,
                    path => Some(path.to_string()),
                };
            }
            "--conns" => args.conns = flag_usize(argv, i)?,
            "--metrics-every" => args.metrics_every = flag_usize(argv, i)?,
            "--threads" => {
                args.threads = flag_usize(argv, i)?;
                if args.threads == 0 {
                    return Err(format!("--threads must be positive\n{}", serve_usage()));
                }
            }
            "--empty-ok" => {
                args.empty_ok = true;
                i += 1;
                continue;
            }
            "--max-inflight" => args.max_inflight = flag_usize(argv, i)?,
            "--max-queue" => {
                args.max_queue = flag_usize(argv, i)?;
                if args.max_queue == 0 {
                    return Err(format!("--max-queue must be positive\n{}", serve_usage()));
                }
            }
            other => {
                return Err(format!("unknown argument {other}\n{}", serve_usage()));
            }
        }
        i += 2;
    }
    if args.models.is_empty() && !args.empty_ok {
        return Err(format!(
            "--snapshot <path.cdclsnap> (or --model <id>=<path>) is required\n{}",
            serve_usage()
        ));
    }
    let mut seen: Vec<&str> = Vec::new();
    for (id, _) in &args.models {
        if seen.contains(&id.as_str()) {
            return Err(format!("model id {id:?} given twice\n{}", serve_usage()));
        }
        seen.push(id);
    }
    Ok(args)
}

/// Parses `std::env::args`, exiting with the usage text on any CLI error
/// (bench binaries fail fast, but with a diagnosis — not an out-of-bounds
/// panic).
pub fn parse_args() -> ServeArgs {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    parse_args_from(&argv).unwrap_or_else(|e| {
        eprintln!("cdcl-serve: {e}");
        std::process::exit(2);
    })
}

/// Validates one parsed request against the model version that will serve
/// it. Returns the batching key `(is_til, task)` on success.
fn validate(trainer: &CdclTrainer, req: &Request) -> Result<(bool, usize), String> {
    let model = trainer.model();
    let (c, h, w) = trainer.input_dims();
    let image = req.image.as_ref().ok_or("missing `image`")?;
    if image.len() != c * h * w {
        return Err(format!(
            "image has {} floats, model expects {} (c={c}, h={h}, w={w})",
            image.len(),
            c * h * w
        ));
    }
    if !image.iter().all(|v| v.is_finite()) {
        return Err("image contains non-finite values".to_string());
    }
    match req.mode.as_deref() {
        Some("til") => {
            let task = req.task.ok_or("`til` requests need `task`")?;
            if task >= model.num_tasks() {
                return Err(format!(
                    "task {task} out of range (snapshot has {} tasks)",
                    model.num_tasks()
                ));
            }
            Ok((true, task))
        }
        Some("cil") => Ok((false, 0)),
        other => Err(format!(
            "unknown mode {other:?} (expected \"til\" or \"cil\")"
        )),
    }
}

fn argmax(row: &[f32]) -> usize {
    let mut best = 0;
    for (i, &v) in row.iter().enumerate() {
        if v > row[best] {
            best = i;
        }
    }
    best
}

/// One queued request: either admitted (holding its model slot and
/// admission ticket until the response is computed) or already rejected
/// (unknown model, quota, queue cap) and awaiting its in-order response.
enum Pending {
    Admitted {
        id: u64,
        req: Request,
        slot: Arc<ModelSlot>,
        /// Held for its `Drop`: releases the admission slot when the flush
        /// clears this entry (or the connection is torn down).
        _ticket: admission::Ticket,
    },
    Rejected {
        id: u64,
        error: String,
        /// True for load-shedding rejections (counted busy, not failed).
        busy: bool,
        /// The slot the request routed to, when it resolved that far.
        slot: Option<Arc<ModelSlot>>,
        /// The request's traceparent, echoed on the rejection response.
        trace: Option<String>,
    },
}

/// One `(model version, mode, task)` micro-batch within a flush.
struct Group {
    model: Arc<LoadedModel>,
    slot: Arc<ModelSlot>,
    is_til: bool,
    task: usize,
    members: Vec<usize>,
}

/// Runs the accumulated queue: answers rejected entries in place, groups
/// admitted ones by `(model version, mode, task)`, executes one forward
/// pass per group against the version captured at flush time (a concurrent
/// `RELOAD` cannot tear a batch), screens outputs for NaN/Inf, and writes
/// responses in arrival order.
fn flush_batch(
    pending: &mut Vec<Pending>,
    out: &mut dyn Write,
    stats: &ServeStats,
) -> std::io::Result<()> {
    if pending.is_empty() {
        return Ok(());
    }
    QUEUE_DEPTH.observe(pending.len() as f64);
    // Drain in place at the end (not `mem::take`) so the connection's
    // request-staging Vec keeps its capacity across flushes.
    let queue: &[Pending] = pending;
    let mut responses: Vec<Option<Response>> = (0..queue.len()).map(|_| None).collect();
    // Model versions captured once per slot per flush, so every member of
    // a group validates and executes against the same immutable snapshot.
    let mut captured: Vec<(*const ModelSlot, Arc<LoadedModel>)> = Vec::new();
    let mut groups: Vec<Group> = Vec::new();
    for (i, entry) in queue.iter().enumerate() {
        stats.inc_requests();
        REQUESTS_TOTAL.inc();
        match entry {
            Pending::Rejected {
                id,
                error,
                busy,
                slot,
                trace,
            } => {
                if *busy {
                    stats.inc_busy();
                    BUSY_TOTAL.inc();
                    if let Some(slot) = slot {
                        slot.metrics.requests.add(1);
                        slot.metrics.busy.add(1);
                    }
                } else {
                    stats.inc_failed();
                    FAILED_TOTAL.inc();
                    if let Some(slot) = slot {
                        slot.metrics.requests.add(1);
                        slot.metrics.failed.add(1);
                    }
                }
                let mut resp = Response::failure(*id, error.clone());
                resp.trace = trace.clone();
                responses[i] = Some(resp);
            }
            Pending::Admitted { id, req, slot, .. } => {
                slot.metrics.requests.add(1);
                let key = Arc::as_ptr(slot);
                let model = match captured.iter().find(|(p, _)| *p == key) {
                    Some((_, m)) => m.clone(),
                    None => {
                        let m = slot.current();
                        captured.push((key, m.clone()));
                        m
                    }
                };
                match validate(&model.trainer, req) {
                    Ok((is_til, task)) => {
                        match groups.iter_mut().find(|g| {
                            Arc::ptr_eq(&g.model, &model) && g.is_til == is_til && g.task == task
                        }) {
                            Some(g) => g.members.push(i),
                            None => groups.push(Group {
                                model,
                                slot: slot.clone(),
                                is_til,
                                task,
                                members: vec![i],
                            }),
                        }
                    }
                    Err(e) => {
                        stats.inc_failed();
                        FAILED_TOTAL.inc();
                        slot.metrics.failed.add(1);
                        let mut resp = Response::failure(*id, e);
                        resp.model = Some(model.id.clone());
                        resp.version = Some(model.version);
                        resp.trace = req.trace.clone();
                        responses[i] = Some(resp);
                    }
                }
            }
        }
    }

    for g in &groups {
        let trainer = &g.model.trainer;
        let (c, h, w) = trainer.input_dims();
        let n = g.members.len();
        // Batch staging comes from the tensor pool; after warm-up the same
        // batch shapes recur, so this is a recycled buffer and the
        // `cdcl_serve_alloc_bytes_total` delta below stays zero. `validate`
        // guaranteed every member image is exactly `c*h*w` long.
        let alloc_before = pool::pool_stats().alloc_bytes;
        let mut data = PooledBuf::take_uninit(n * c * h * w);
        SERVE_ALLOC_BYTES.add(pool::pool_stats().alloc_bytes.saturating_sub(alloc_before));
        for (row, &i) in g.members.iter().enumerate() {
            let img = match &queue[i] {
                Pending::Admitted { req, .. } => req.image.as_deref().unwrap_or(&[]),
                Pending::Rejected { .. } => &[],
            };
            data[row * c * h * w..row * c * h * w + img.len()].copy_from_slice(img);
        }
        let images = Tensor::from_buf(data, &[n, c, h, w]);
        // Requests that carried a traceparent become fan-in links on the
        // batch event: a batch serves many traces, so they are links, not
        // parents. If this version was armed by a traced RELOAD and this is
        // its first batch, a `first_serve` marker span (child of the reload
        // span) brackets the forward pass — the trace's terminal stage.
        let mut links: Vec<telemetry::ctx::TraceContext> = Vec::new();
        let first_serve = if telemetry::enabled() {
            for &i in &g.members {
                if let Pending::Admitted { req, .. } = &queue[i] {
                    if let Some(c) = req
                        .trace
                        .as_deref()
                        .and_then(|tp| telemetry::ctx::TraceContext::parse(tp).ok())
                    {
                        links.push(c);
                    }
                }
            }
            g.slot.take_pending_first_serve(g.model.version)
        } else {
            None
        };
        // Tuple fields drop in declaration order: the span pops before the
        // remote-parent guard detaches, keeping the stack LIFO.
        let _first_serve = first_serve.map(|c| {
            let guard = telemetry::ctx::attach(c);
            let span = telemetry::span("first_serve").task(g.task);
            (span, guard)
        });
        let started = Instant::now();
        let probs = if g.is_til {
            trainer.model().predict_til(&images, g.task)
        } else {
            trainer.model().predict_cil(&images)
        };
        let latency_us = started.elapsed().as_secs_f64() * 1e6;
        stats.add_batch(n, latency_us);
        BATCHES_TOTAL.inc();
        BATCH_SIZE.observe(n as f64);
        BATCH_LATENCY_US.observe(latency_us);
        g.slot.metrics.latency_us.observe(latency_us);
        if telemetry::enabled() {
            let mut ev = telemetry::Event::new("serve_batch")
                .name(if g.is_til { "til" } else { "cil" })
                .task(g.task)
                .str_field("model", &g.model.id)
                .u64_field("version", g.model.version)
                .u64_field("batch", n as u64)
                .f64_field("latency_us", latency_us)
                .links("links", &links);
            if let Some(c) = telemetry::ctx::active() {
                ev = ev.trace_fields(c, None);
            }
            ev.emit();
        }
        let classes = probs.shape()[1];
        for (row, &i) in g.members.iter().enumerate() {
            let (id, trace) = match &queue[i] {
                Pending::Admitted { id, req, .. } => (*id, req.trace.clone()),
                Pending::Rejected { id, trace, .. } => (*id, trace.clone()),
            };
            let p = &probs.data()[row * classes..(row + 1) * classes];
            let mut resp = row_response(id, g.is_til, g.task, p, stats);
            if !resp.ok {
                g.slot.metrics.failed.add(1);
            }
            resp.model = Some(g.model.id.clone());
            resp.version = Some(g.model.version);
            resp.trace = trace;
            responses[i] = Some(resp);
        }
    }

    // Dropping the entries releases every admission ticket; refresh the
    // per-model in-flight gauges afterwards.
    let mut touched: Vec<Arc<ModelSlot>> = Vec::new();
    for entry in queue.iter() {
        let slot = match entry {
            Pending::Admitted { slot, .. } => Some(slot),
            Pending::Rejected { slot, .. } => slot.as_ref(),
        };
        if let Some(slot) = slot {
            if !touched.iter().any(|s| Arc::ptr_eq(s, slot)) {
                touched.push(slot.clone());
            }
        }
    }
    pending.clear();
    for slot in &touched {
        slot.metrics.inflight.set(slot.admission.inflight() as f64);
    }
    for resp in responses.into_iter().flatten() {
        let line = serde_json::to_string(&resp).expect("serialize response");
        writeln!(out, "{line}")?;
    }
    out.flush()
}

/// Builds the response for one probability row, running the NaN/Inf
/// watchdog: a corrupted snapshot or numeric blow-up must surface as an
/// error response (and bump `cdcl_serve_nonfinite_total`), not a
/// confidently-wrong argmax. Public so the integration test can exercise
/// the screening directly — in debug builds the autograd graph asserts
/// finiteness on every node, so non-finite probabilities cannot be
/// produced through a real forward pass there; this path is the
/// release-mode guard.
#[doc(hidden)]
pub fn row_response(id: u64, is_til: bool, task: usize, p: &[f32], stats: &ServeStats) -> Response {
    if !p.iter().all(|v| v.is_finite()) {
        stats.inc_failed();
        FAILED_TOTAL.inc();
        NONFINITE_TOTAL.inc();
        if telemetry::enabled() {
            telemetry::Event::new("serve")
                .name("nonfinite_output")
                .task(task)
                .u64_field("request_id", id)
                .emit();
        }
        return Response::failure(
            id,
            "model produced non-finite output probabilities".to_string(),
        );
    }
    Response {
        id,
        ok: true,
        model: None,
        version: None,
        mode: Some(if is_til { "til" } else { "cil" }.to_string()),
        task: is_til.then_some(task),
        pred: Some(argmax(p)),
        probs: Some(p.to_vec()),
        error: None,
        trace: None,
    }
}

/// One-line registry summary for `--metrics-every` stderr reporting.
fn metrics_summary_line(stats: &ServeStats) -> String {
    format!(
        "cdcl-serve: metrics: {} requests ({} failed, {} busy, {} nonfinite), {} batches, latency_us p50 {:.0} p99 {:.0}, batch_size p50 {:.1}",
        stats.requests(),
        stats.failed(),
        stats.busy(),
        NONFINITE_TOTAL.get(),
        stats.batch_count(),
        BATCH_LATENCY_US.percentile(0.50),
        BATCH_LATENCY_US.percentile(0.99),
        BATCH_SIZE.percentile(0.50),
    )
}

/// Renders the registry for exposition, mirroring the kernel counters in
/// first so `/metrics` and `METRICS` always see current GEMM volume.
fn registry_prometheus() -> String {
    cdcl_tensor::kernels::publish_registry();
    cdcl_obs::global().render_prometheus()
}

fn registry_json() -> String {
    cdcl_tensor::kernels::publish_registry();
    cdcl_obs::global().render_json()
}

/// JSON-escapes a message for the hand-assembled verb responses.
fn json_str(s: &str) -> String {
    serde_json::to_string(s).expect("serialize string")
}

/// The serve loop over one request stream: queue lines, flush at
/// `max_batch`, on a blank line, and at end-of-stream. Verbs on any
/// stream: `METRICS` (registry as one JSON object), `MODELS` (loaded
/// models/versions), and `RELOAD <model> <path>` (atomic hot-swap: the
/// snapshot is loaded and fully verified before the swap, so failure
/// leaves the serving version untouched). `first_line` carries a line the
/// caller already consumed while sniffing the protocol (TCP dispatch);
/// stdio passes `None`.
fn serve_lines(
    srv: &SnapshotRegistry,
    first_line: Option<String>,
    reader: &mut dyn BufRead,
    writer: &mut dyn Write,
    args: &ServeArgs,
    stats: &ServeStats,
) -> std::io::Result<()> {
    let mut pending: Vec<Pending> = Vec::new();
    let mut line = String::new();
    let mut reported_at = 0u64;
    let mut first = first_line;
    loop {
        let current = match first.take() {
            Some(l) => l,
            None => {
                line.clear();
                if reader.read_line(&mut line)? == 0 {
                    break; // EOF
                }
                line.clone()
            }
        };
        let trimmed = current.trim();
        if trimmed.is_empty() {
            flush_batch(&mut pending, writer, stats)?;
        } else if trimmed == "METRICS" {
            // Flush first so the answer reflects every request seen so far.
            flush_batch(&mut pending, writer, stats)?;
            writeln!(writer, "{{\"ok\":true,\"metrics\":{}}}", registry_json())?;
            writer.flush()?;
        } else if trimmed == "MODELS" || trimmed.starts_with("MODELS ") {
            // `MODELS trace=<traceparent>` is the publisher's traced
            // read-back verification; the suffix (malformed or not) is
            // accepted and otherwise ignored so pre-tracing peers and
            // hand-typed verbs behave identically.
            flush_batch(&mut pending, writer, stats)?;
            writeln!(writer, "{{\"ok\":true,\"models\":{}}}", srv.models_json())?;
            writer.flush()?;
        } else if let Some(rest) = trimmed.strip_prefix("RELOAD") {
            // In-flight requests must complete on the version they were
            // admitted against: flush before swapping.
            flush_batch(&mut pending, writer, stats)?;
            let mut parts: Vec<&str> = rest.split_whitespace().collect();
            // An optional trailing `trace=<traceparent>` joins the
            // publisher's trace; malformed values are dropped (never an
            // error) so the verb grammar stays compatible both ways.
            let remote = if parts.len() == 3 && parts[2].starts_with("trace=") {
                let c = telemetry::ctx::TraceContext::parse(&parts[2]["trace=".len()..]).ok();
                parts.pop();
                c
            } else {
                None
            };
            let reply = if parts.len() != 2 {
                format!(
                    "{{\"ok\":false,\"verb\":\"reload\",\"error\":{}}}",
                    json_str("RELOAD expects: RELOAD <model> <path.cdclsnap>")
                )
            } else {
                // Locals drop in reverse order: the `reload` span pops
                // before the remote-parent guard detaches.
                let _remote_guard = remote.map(telemetry::ctx::attach);
                let reload_span = telemetry::span("reload");
                match srv.load(parts[0], Path::new(parts[1])) {
                    Ok((slot, version)) => {
                        // Arm the first-serve marker: the next batch on this
                        // version completes the publish→visible trace.
                        if let Some(c) = reload_span.context() {
                            slot.set_pending_first_serve(version, c);
                        }
                        let m = slot.current();
                        format!(
                            "{{\"ok\":true,\"verb\":\"reload\",\"model\":\"{}\",\"version\":{},\"tasks\":{},\"centroid_tasks\":{}}}",
                            slot.id(),
                            version,
                            m.trainer.model().num_tasks(),
                            m.trainer
                                .task_centroids()
                                .iter()
                                .filter(|c| c.shape()[0] > 0)
                                .count()
                        )
                    }
                    Err(e) => format!(
                        "{{\"ok\":false,\"verb\":\"reload\",\"error\":{}}}",
                        json_str(&e)
                    ),
                }
            };
            writeln!(writer, "{reply}")?;
            writer.flush()?;
        } else {
            match serde_json::from_str::<Request>(trimmed) {
                Ok(req) => {
                    let id = req.id.unwrap_or(0);
                    if pending.len() >= args.max_queue {
                        pending.push(Pending::Rejected {
                            id,
                            error: format!("busy: queue full ({} pending)", args.max_queue),
                            busy: true,
                            slot: None,
                            trace: req.trace.clone(),
                        });
                    } else {
                        match srv.get(req.model.as_deref()) {
                            Ok(slot) => match slot.admission.try_acquire() {
                                Some(ticket) => {
                                    slot.metrics.inflight.set(slot.admission.inflight() as f64);
                                    pending.push(Pending::Admitted {
                                        id,
                                        req,
                                        slot,
                                        _ticket: ticket,
                                    });
                                }
                                None => {
                                    let error = format!(
                                        "busy: model {} at in-flight quota ({})",
                                        slot.id(),
                                        slot.admission.max_inflight()
                                    );
                                    pending.push(Pending::Rejected {
                                        id,
                                        error,
                                        busy: true,
                                        slot: Some(slot),
                                        trace: req.trace.clone(),
                                    });
                                }
                            },
                            Err(e) => pending.push(Pending::Rejected {
                                id,
                                error: e,
                                busy: false,
                                slot: None,
                                trace: req.trace.clone(),
                            }),
                        }
                    }
                    if pending.len() >= args.max_batch {
                        flush_batch(&mut pending, writer, stats)?;
                    }
                }
                Err(e) => {
                    stats.inc_requests();
                    stats.inc_failed();
                    REQUESTS_TOTAL.inc();
                    FAILED_TOTAL.inc();
                    let resp = Response::failure(0, format!("bad request line: {e}"));
                    let out = serde_json::to_string(&resp).expect("serialize response");
                    writeln!(writer, "{out}")?;
                    writer.flush()?;
                }
            }
        }
        if args.metrics_every > 0 && stats.requests() >= reported_at + args.metrics_every as u64 {
            reported_at = stats.requests();
            eprintln!("{}", metrics_summary_line(stats));
        }
    }
    flush_batch(&mut pending, writer, stats)
}

/// The serve loop over one already-open stream (stdio mode, tests).
pub fn serve_stream(
    srv: &SnapshotRegistry,
    reader: &mut dyn BufRead,
    writer: &mut dyn Write,
    args: &ServeArgs,
    stats: &ServeStats,
) -> std::io::Result<()> {
    serve_lines(srv, None, reader, writer, args, stats)
}

/// Answers an HTTP `GET /metrics` scrape: consumes the request headers,
/// writes a minimal HTTP/1.0 response carrying the Prometheus exposition,
/// and lets the connection close.
fn serve_http_metrics(
    request_line: &str,
    reader: &mut dyn BufRead,
    writer: &mut dyn Write,
) -> std::io::Result<()> {
    // Drain headers until the blank line so the client sees a clean close.
    let mut line = String::new();
    loop {
        line.clear();
        if reader.read_line(&mut line)? == 0 || line.trim().is_empty() {
            break;
        }
    }
    let path = request_line.split_whitespace().nth(1).unwrap_or("");
    let (status, body) = if path == "/metrics" {
        ("200 OK", registry_prometheus())
    } else {
        (
            "404 Not Found",
            format!("no such path {path}; try /metrics\n"),
        )
    };
    write!(
        writer,
        "HTTP/1.0 {status}\r\nContent-Type: text/plain; version=0.0.4\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )?;
    writer.flush()
}

/// Handles one accepted connection: sniffs the first line (HTTP `GET` →
/// `/metrics` scrape, anything else → the JSONL protocol) and runs it to
/// completion. All failures are connection-local.
fn handle_conn(srv: &SnapshotRegistry, conn: TcpStream, args: &ServeArgs, stats: &ServeStats) {
    // Accepted sockets can inherit the listener's nonblocking flag on some
    // platforms; the per-connection protocol wants plain blocking IO.
    if let Err(e) = conn.set_nonblocking(false) {
        ACCEPT_ERRORS_TOTAL.inc();
        eprintln!("cdcl-serve: cannot configure accepted connection (dropping it): {e}");
        return;
    }
    let peer = conn.peer_addr().map(|a| a.to_string());
    let cloned = match conn.try_clone() {
        Ok(c) => c,
        Err(e) => {
            // A failed clone (EMFILE under fd pressure) costs this
            // connection, never the server.
            ACCEPT_ERRORS_TOTAL.inc();
            eprintln!("cdcl-serve: cannot clone connection {peer:?} (dropping it): {e}");
            return;
        }
    };
    let mut reader = BufReader::new(cloned);
    let mut writer = BufWriter::new(conn);
    let mut first = String::new();
    let result = match reader.read_line(&mut first) {
        Ok(0) => Ok(()),
        Ok(_) if first.starts_with("GET ") => serve_http_metrics(&first, &mut reader, &mut writer),
        Ok(_) => serve_lines(srv, Some(first), &mut reader, &mut writer, args, stats),
        Err(e) => Err(e),
    };
    if let Err(e) = result {
        eprintln!("cdcl-serve: connection {peer:?} dropped: {e}");
    }
}

/// The TCP accept loop: `args.threads` workers share one nonblocking
/// listener, each accepting and serving connections independently — heavy
/// compute inside a connection still fans out through the kernel pool.
/// Exits after `args.conns` connections in total (0 = run forever).
///
/// A failed `accept()` (transient `EMFILE`, `ECONNABORTED`, …) is logged,
/// counted in `cdcl_serve_accept_errors_total`, and survived: one bad
/// accept must never kill a server holding live connections.
pub fn run_tcp(
    srv: &SnapshotRegistry,
    listener: TcpListener,
    args: &ServeArgs,
    stats: &ServeStats,
) {
    if let Err(e) = listener.set_nonblocking(true) {
        eprintln!("cdcl-serve: cannot set listener nonblocking: {e}");
        return;
    }
    let stop = AtomicBool::new(false);
    let accepted = AtomicUsize::new(0);
    let workers = args.threads.max(1);
    std::thread::scope(|s| {
        for _ in 0..workers {
            let (listener, stop, accepted) = (&listener, &stop, &accepted);
            s.spawn(move || loop {
                // ordering: flag — stop latch; pairs with the Release store below, and a late accept is harmless.
                if stop.load(Ordering::Acquire) {
                    break;
                }
                match listener.accept() {
                    Ok((conn, _)) => {
                        // ordering: flag — admission count gating the stop latch; AcqRel orders it with the latch store.
                        let n = accepted.fetch_add(1, Ordering::AcqRel) + 1;
                        if args.conns > 0 && n >= args.conns {
                            // ordering: flag — stop latch publication; pairs with the Acquire load above.
                            stop.store(true, Ordering::Release);
                        }
                        if args.conns > 0 && n > args.conns {
                            // A racing worker over-accepted past the
                            // connection budget; close it unserved.
                            continue;
                        }
                        handle_conn(srv, conn, args, stats);
                    }
                    Err(e) if e.kind() == ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(1));
                    }
                    Err(e) => {
                        ACCEPT_ERRORS_TOTAL.inc();
                        eprintln!("cdcl-serve: accept failed (continuing): {e}");
                        std::thread::sleep(Duration::from_millis(5));
                    }
                }
            });
        }
    });
}

/// The full `cdcl-serve` entry point: load + re-verify every model of the
/// registry, serve stdio or TCP, then write the bench report.
pub fn run(args: &ServeArgs) {
    cdcl_obs::set_enabled(true);
    let srv = SnapshotRegistry::new(args.max_inflight);
    for (id, path) in &args.models {
        match srv.load(id, path) {
            Ok((slot, version)) => {
                let m = slot.current();
                eprintln!(
                    "cdcl-serve: loaded model {id} v{version} from {} ({} tasks, {} classes), frozen params re-verified",
                    path.display(),
                    m.trainer.model().num_tasks(),
                    m.trainer.model().total_classes()
                );
            }
            Err(e) => {
                eprintln!("cdcl-serve: model {id}: {e}");
                std::process::exit(2);
            }
        }
    }

    let stats = ServeStats::default();
    let serving = Instant::now();
    match &args.tcp {
        None => {
            let stdin = std::io::stdin();
            let stdout = std::io::stdout();
            let mut reader = BufReader::new(stdin.lock());
            let mut writer = BufWriter::new(stdout.lock());
            serve_stream(&srv, &mut reader, &mut writer, args, &stats).expect("serve stdin/stdout");
        }
        Some(addr) => {
            let listener =
                TcpListener::bind(addr).unwrap_or_else(|e| panic!("cdcl-serve: bind {addr}: {e}"));
            eprintln!(
                "cdcl-serve: listening on {addr} ({} workers, {} models)",
                args.threads,
                srv.len()
            );
            run_tcp(&srv, listener, args, &stats);
        }
    }
    let wall_secs = serving.elapsed().as_secs_f64();

    let Some(primary) = srv.primary() else {
        // `--empty-ok` server that exited before any RELOAD populated it:
        // there is no model to describe, so there is no report to write.
        telemetry::flush();
        eprintln!(
            "cdcl-serve: exiting with no models loaded ({} requests seen)",
            stats.requests()
        );
        return;
    };
    let m = primary.current();
    let snapshot_label = m
        .path
        .as_ref()
        .map(|p| p.display().to_string())
        .unwrap_or_else(|| primary.id().to_string());
    let report = stats.report(
        &snapshot_label,
        &m.trainer,
        args.max_batch,
        srv.len(),
        wall_secs,
    );
    crate::maybe_write_json(&args.bench_out, &report);
    telemetry::flush();
    eprintln!(
        "cdcl-serve: {} requests ({} failed, {} busy) in {} batches, mean batch {:.2}, p50 {:.0}us, {:.1} rps over {:.2}s wall",
        report.requests,
        report.failed_requests,
        report.busy_requests,
        report.batches,
        report.mean_batch_size,
        report.latency_us.p50,
        report.throughput_rps,
        report.wall_secs,
    );
}
