//! `cdcl-analyze` — the concurrency-soundness passes (DESIGN.md §14).
//!
//! Usage (from anywhere in the workspace):
//!
//! ```text
//! cargo run -p cdcl-check --bin cdcl-analyze [-- --json | --self-test]
//! ```
//!
//! Runs the token-level lock-order/deadlock analysis and the
//! atomic-ordering audit over every `.rs` file under `crates/*/src` and
//! exits non-zero on any finding. `--json` prints findings as one JSON
//! object per line (same shape as `cdcl-lint --json`). `--graph` dumps
//! the lock-order edge list instead of auditing. `--self-test`
//! instead feeds the planted violations under `crates/check/tests/fixtures/`
//! through both passes and fails unless every plant trips and the clean
//! fixture stays clean — the CI gate that proves the analyzer can still
//! see the bugs it exists to catch.

use std::path::Path;
use std::process::ExitCode;

use cdcl_check::{atomics, lockorder, Finding};

fn run_workspace(root: &Path, json: bool, graph: bool) -> ExitCode {
    let report = lockorder::analyze_workspace(root);
    if graph {
        for e in &report.edges {
            println!(
                "{} -> {}  ({}:{} via {})",
                e.from, e.to, e.file, e.line, e.via
            );
        }
        return ExitCode::SUCCESS;
    }
    let mut findings = report.findings.clone();
    findings.extend(atomics::audit_workspace(root));
    findings.sort();

    for f in &findings {
        if json {
            println!("{}", f.to_json());
        } else {
            println!("{f}");
        }
    }
    if !json {
        println!(
            "cdcl-analyze: {} finding(s); lock graph: {} fn(s), {} edge(s)",
            findings.len(),
            report.fns.len(),
            report.edges.len()
        );
    }
    if findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// One self-test case: a fixture file fed to a pass under a fake
/// workspace-relative path, with an expectation on what it reports.
struct Case {
    fixture: &'static str,
    /// Path the analyzer believes the file lives at (scope rules key off
    /// this, e.g. guard-blocking only fires inside its watched dirs).
    mapped: &'static str,
    /// Rule name that must appear (None = must be completely clean).
    expect_rule: Option<&'static str>,
}

const CASES: [Case; 5] = [
    Case {
        fixture: "lock_cycle.rs",
        mapped: "crates/fixture/src/lock_cycle.rs",
        expect_rule: Some("lock-order"),
    },
    Case {
        fixture: "guard_blocking.rs",
        mapped: "crates/bench/src/serve/fixture_guard_blocking.rs",
        expect_rule: Some("guard-blocking"),
    },
    Case {
        fixture: "atomic_undocumented.rs",
        mapped: "crates/fixture/src/atomic_undocumented.rs",
        expect_rule: Some("atomic-ordering"),
    },
    Case {
        fixture: "atomic_relaxed_publish.rs",
        mapped: "crates/fixture/src/atomic_relaxed_publish.rs",
        expect_rule: Some("atomic-ordering"),
    },
    Case {
        fixture: "clean.rs",
        mapped: "crates/bench/src/serve/fixture_clean.rs",
        expect_rule: None,
    },
];

fn fixture_findings(mapped: &str, source: &str) -> Vec<Finding> {
    let report = lockorder::analyze_sources(&[(mapped.to_string(), source.to_string())]);
    let mut findings = report.findings;
    findings.extend(atomics::audit_source(mapped, source));
    findings
}

fn run_self_test(root: &Path) -> ExitCode {
    let dir = root.join("crates/check/tests/fixtures");
    let mut failures = 0usize;
    for case in &CASES {
        let path = dir.join(case.fixture);
        let source = match std::fs::read_to_string(&path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("self-test: cannot read {}: {e}", path.display());
                failures += 1;
                continue;
            }
        };
        let findings = fixture_findings(case.mapped, &source);
        match case.expect_rule {
            Some(rule) => {
                if findings.iter().any(|f| f.rule == rule) {
                    println!("self-test: {} trips {rule} — ok", case.fixture);
                } else {
                    eprintln!(
                        "self-test: {} did NOT trip {rule}; findings: {:?}",
                        case.fixture,
                        findings.iter().map(|f| &f.rule).collect::<Vec<_>>()
                    );
                    failures += 1;
                }
            }
            None => {
                if findings.is_empty() {
                    println!("self-test: {} stays clean — ok", case.fixture);
                } else {
                    eprintln!(
                        "self-test: clean fixture {} produced findings:",
                        case.fixture
                    );
                    for f in &findings {
                        eprintln!("  {f}");
                    }
                    failures += 1;
                }
            }
        }
    }
    if failures == 0 {
        println!("cdcl-analyze --self-test: all {} cases pass", CASES.len());
        ExitCode::SUCCESS
    } else {
        eprintln!("cdcl-analyze --self-test: {failures} case(s) failed");
        ExitCode::FAILURE
    }
}

fn main() -> ExitCode {
    // CARGO_MANIFEST_DIR = crates/check; the workspace root is two up.
    let manifest = Path::new(env!("CARGO_MANIFEST_DIR"));
    let Some(root) = manifest.parent().and_then(Path::parent) else {
        eprintln!("cdcl-analyze: cannot locate workspace root from {manifest:?}");
        return ExitCode::FAILURE;
    };

    let mut json = false;
    let mut self_test = false;
    let mut graph = false;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--json" => json = true,
            "--self-test" => self_test = true,
            "--graph" => graph = true,
            other => {
                eprintln!(
                    "cdcl-analyze: unknown flag {other} (expected --json, --graph or --self-test)"
                );
                return ExitCode::FAILURE;
            }
        }
    }

    if self_test {
        run_self_test(root)
    } else {
        run_workspace(root, json, graph)
    }
}
