// Planted violation for the atomic-ordering pass: a site whose contract
// declares the `publish` category but uses Relaxed, which cannot order the
// published data with the flag. Never compiled.
use std::sync::atomic::{AtomicUsize, Ordering};

pub static PTR: AtomicUsize = AtomicUsize::new(0);

pub fn publish(p: usize) {
    // ordering: publish — hands the initialised block to readers.
    PTR.store(p, Ordering::Relaxed);
}
