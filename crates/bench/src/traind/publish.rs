//! The traind publish loop (DESIGN.md §15): after every finished online
//! round the new learner state is atomically written to `--publish-dir`
//! as `task{NNN}.cdclsnap` and every `--notify` address receives a
//! `RELOAD <model> <path>` verb, followed by a `MODELS` read-back that
//! verifies the registry really serves the new version with the expected
//! task and centroid counts. All of this runs **outside** the daemon's
//! state lock — a slow or dead serve instance can delay publication, never
//! ingest.

use super::metrics;
use super::TraindArgs;
use cdcl_telemetry as telemetry;
use serde::Value;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::time::Instant;

/// Typed field lookups over the vendored [`serde::Value`] tree.
fn field_bool(v: &Value, name: &str) -> Option<bool> {
    match v.field(name) {
        Some(Value::Bool(b)) => Some(*b),
        _ => None,
    }
}

fn field_u64(v: &Value, name: &str) -> Option<u64> {
    match v.field(name) {
        Some(Value::Num(n)) => Some(*n as u64),
        _ => None,
    }
}

fn field_str<'v>(v: &'v Value, name: &str) -> Option<&'v str> {
    match v.field(name) {
        Some(Value::Str(s)) => Some(s.as_str()),
        _ => None,
    }
}

/// What one finished online round hands to the publish loop.
pub struct RoundArtifact {
    /// Task id the round trained (names the published file).
    pub task: usize,
    /// Inferred stage-window boundary (`None` for the bootstrap round).
    pub boundary: Option<usize>,
    /// Full snapshot bytes of the post-round learner.
    pub bytes: Vec<u8>,
    /// Task count a verified reload must report.
    pub expected_tasks: usize,
    /// Non-empty centroid-set count a verified reload must report.
    pub expected_centroid_tasks: usize,
}

/// A verified reload on one notify target.
#[derive(Debug)]
pub struct ReloadAck {
    pub addr: String,
    pub version: u64,
    pub tasks: u64,
    pub centroid_tasks: u64,
}

/// Result of one publish attempt: the snapshot path, the per-target reload
/// verdicts, and the write→last-verified-ack latency.
#[derive(Debug)]
pub struct PublishOutcome {
    pub path: PathBuf,
    /// Write succeeded and every notify target verified the reload.
    pub ok: bool,
    pub publish_us: f64,
    pub reloads: Vec<Result<ReloadAck, String>>,
}

/// Publishes one round: atomic snapshot write, then `RELOAD` + `MODELS`
/// verification against every notify target.
pub fn publish_round(args: &TraindArgs, round: &RoundArtifact) -> PublishOutcome {
    let _s = telemetry::span("publish").task(round.task);
    let started = Instant::now();
    let path = args
        .publish_dir
        .join(format!("task{:03}.cdclsnap", round.task));
    let mut ok = true;
    let mut reloads = Vec::new();
    match cdcl_snapshot::atomic_write(&path, &round.bytes) {
        Ok(()) => {
            // RELOAD carries an absolute path: the serve process resolves
            // it from its own working directory.
            let reload_path = std::fs::canonicalize(&path).unwrap_or_else(|_| path.clone());
            for addr in &args.notify {
                let result = notify_one(addr, &args.model, &reload_path, round);
                ok &= result.is_ok();
                reloads.push(result);
            }
        }
        Err(e) => {
            ok = false;
            reloads.push(Err(format!("snapshot write {}: {e}", path.display())));
        }
    }
    let publish_us = started.elapsed().as_secs_f64() * 1e6;
    if ok {
        metrics::PUBLISH_TOTAL.inc();
    } else {
        metrics::PUBLISH_FAILED_TOTAL.inc();
    }
    metrics::PUBLISH_LATENCY_US.observe(publish_us);
    if telemetry::enabled() {
        telemetry::Event::new("traind")
            .name("published")
            .task(round.task)
            .str_field("path", &path.display().to_string())
            .u64_field("ok", u64::from(ok))
            .u64_field("targets", args.notify.len() as u64)
            .f64_field("publish_us", publish_us)
            .emit();
    }
    PublishOutcome {
        path,
        ok,
        publish_us,
        reloads,
    }
}

/// Issues `RELOAD` to one serve instance and verifies through `MODELS`
/// that the slot now serves the expected task/centroid counts.
fn notify_one(
    addr: &str,
    model: &str,
    path: &std::path::Path,
    round: &RoundArtifact,
) -> Result<ReloadAck, String> {
    let conn = TcpStream::connect(addr).map_err(|e| format!("{addr}: connect: {e}"))?;
    let cloned = conn
        .try_clone()
        .map_err(|e| format!("{addr}: clone: {e}"))?;
    let mut reader = BufReader::new(cloned);
    let mut writer = BufWriter::new(conn);

    // The enclosing `publish` span's context rides the wire so the
    // serve-side reload joins this window's trace. Absent entirely when
    // tracing is off or the trace unsampled — the wire bytes then match
    // pre-§16 peers, which also ignore the extra field when present.
    let trace_suffix = match telemetry::ctx::active() {
        Some(c) => format!(" trace={}", c.encode()),
        None => String::new(),
    };
    writeln!(writer, "RELOAD {model} {}{trace_suffix}", path.display())
        .and_then(|()| writer.flush())
        .map_err(|e| format!("{addr}: send RELOAD: {e}"))?;
    let mut line = String::new();
    reader
        .read_line(&mut line)
        .map_err(|e| format!("{addr}: read RELOAD reply: {e}"))?;
    let reply: Value = serde_json::from_str(line.trim())
        .map_err(|e| format!("{addr}: bad RELOAD reply {:?}: {e}", line.trim()))?;
    if field_bool(&reply, "ok") != Some(true) {
        return Err(format!("{addr}: RELOAD refused: {}", line.trim()));
    }
    let version = field_u64(&reply, "version")
        .ok_or_else(|| format!("{addr}: RELOAD reply lacks version: {}", line.trim()))?;

    writeln!(writer, "MODELS{trace_suffix}")
        .and_then(|()| writer.flush())
        .map_err(|e| format!("{addr}: send MODELS: {e}"))?;
    line.clear();
    reader
        .read_line(&mut line)
        .map_err(|e| format!("{addr}: read MODELS reply: {e}"))?;
    let models: Value = serde_json::from_str(line.trim())
        .map_err(|e| format!("{addr}: bad MODELS reply {:?}: {e}", line.trim()))?;
    let rows = match models.field("models") {
        Some(Value::Arr(rows)) => rows.as_slice(),
        _ => &[],
    };
    let row = rows
        .iter()
        .find(|r| field_str(r, "model") == Some(model))
        .ok_or_else(|| format!("{addr}: MODELS does not list {model}: {}", line.trim()))?;
    let served_version = field_u64(row, "version");
    let tasks = field_u64(row, "tasks");
    let centroid_tasks = field_u64(row, "centroid_tasks");
    if served_version != Some(version) {
        return Err(format!(
            "{addr}: reload not visible: RELOAD said v{version}, MODELS serves {served_version:?}"
        ));
    }
    if tasks != Some(round.expected_tasks as u64)
        || centroid_tasks != Some(round.expected_centroid_tasks as u64)
    {
        return Err(format!(
            "{addr}: reload did not advance the model: expected {} tasks / {} centroid tasks, \
             MODELS reports {tasks:?} / {centroid_tasks:?}",
            round.expected_tasks, round.expected_centroid_tasks
        ));
    }
    Ok(ReloadAck {
        addr: addr.to_string(),
        version,
        tasks: tasks.unwrap_or(0),
        centroid_tasks: centroid_tasks.unwrap_or(0),
    })
}
