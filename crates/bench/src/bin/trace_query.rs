//! Merges distributed `CDCL_TRACE` span files into per-trace trees and a
//! critical-path report (DESIGN.md §16).
//!
//! Each process in the training/serving loop (cdcl-traind, cdcl-serve)
//! writes its own JSONL trace. Phase events carry `trace`/`span`/`parent`
//! ids plus `wall_ms` (UNIX-epoch milliseconds at span close) and
//! `dur_ms`, so spans from different processes on the same host merge onto
//! one absolute time axis: a span's start is `wall_ms - dur_ms`. The tool
//! groups spans by 128-bit trace id, rebuilds each span tree (the
//! `publish → reload` edge crosses the process boundary via the wire
//! `trace=` field), computes the critical path of the slowest complete
//! trace, and folds per-stage durations into `BENCH_trace.json` — whose
//! `e2e_ms` / `*_stage_ms` keys the `bench-diff` gate classifies as
//! lower-better.
//!
//! ```text
//! trace-query traind-trace.jsonl serve-trace.jsonl \
//!     --out BENCH_trace.json [--require-complete]
//! ```
//!
//! A trace is **complete** when it contains the full cross-process chain:
//! a `window_commit` root, a `publish` span, and a `reload` span observed
//! by the serve process. `first_serve` (the first batch executed on the
//! reloaded version) additionally closes the publish-to-visible loop.

use serde::{Serialize, Value};
use std::collections::BTreeMap;

/// One span parsed from a trace file, on the absolute wall-clock axis.
#[derive(Debug, Clone)]
struct SpanRec {
    name: String,
    span_id: u64,
    parent: Option<u64>,
    /// UNIX-epoch milliseconds (`wall_ms - dur_ms`).
    start_ms: f64,
    /// UNIX-epoch milliseconds (`wall_ms`).
    end_ms: f64,
    dur_ms: f64,
    /// Index into the input file list (provenance for the report).
    src: usize,
}

/// All spans of one trace id, with derived structure.
#[derive(Debug, Default)]
struct Trace {
    spans: Vec<SpanRec>,
    /// Fan-in links observed on batch events of this trace (requests
    /// absorbed by a batch that served the trace's `first_serve`).
    linked_requests: usize,
}

impl Trace {
    /// Spans named `name`, in file order.
    fn named<'t>(&'t self, name: &'t str) -> impl Iterator<Item = &'t SpanRec> {
        self.spans.iter().filter(move |s| s.name == name)
    }

    /// Sum of durations across all spans named `name`.
    fn stage_ms(&self, name: &str) -> f64 {
        self.named(name).map(|s| s.dur_ms).sum()
    }

    /// The root: a `window_commit` span when present, else the span whose
    /// parent is absent from the trace with the earliest start.
    fn root(&self) -> Option<&SpanRec> {
        if let Some(r) = self.named("window_commit").next() {
            return Some(r);
        }
        let ids: Vec<u64> = self.spans.iter().map(|s| s.span_id).collect();
        self.spans
            .iter()
            .filter(|s| match s.parent {
                None => true,
                Some(p) => !ids.contains(&p),
            })
            .min_by(|a, b| a.start_ms.total_cmp(&b.start_ms))
    }

    /// Contains the full traind → wire → serve chain.
    fn is_complete(&self) -> bool {
        ["window_commit", "publish", "reload"]
            .iter()
            .all(|n| self.named(n).next().is_some())
    }

    /// Root start → latest span end, the end-to-end trace extent.
    fn e2e_ms(&self) -> Option<f64> {
        let root = self.root()?;
        let last_end = self
            .spans
            .iter()
            .map(|s| s.end_ms)
            .fold(f64::NEG_INFINITY, f64::max);
        Some((last_end - root.start_ms).max(0.0))
    }

    /// `publish` start → `first_serve` end: how long a committed window
    /// takes to become visible to request traffic.
    fn publish_to_visible_ms(&self) -> Option<f64> {
        let publish = self.named("publish").next()?;
        let first = self.named("first_serve").next()?;
        Some((first.end_ms - publish.start_ms).max(0.0))
    }

    /// The critical path: from the root, repeatedly descend into the
    /// child whose end time is latest. Cross-process children (`reload`
    /// under `publish`, `first_serve` under `reload`) may end after their
    /// parent closed — exactly why the path follows ends, not durations.
    fn critical_path(&self) -> Vec<&SpanRec> {
        let Some(root) = self.root() else {
            return Vec::new();
        };
        let mut path = vec![root];
        let mut cur = root;
        loop {
            let next = self
                .spans
                .iter()
                .filter(|s| s.parent == Some(cur.span_id))
                .max_by(|a, b| a.end_ms.total_cmp(&b.end_ms));
            match next {
                Some(child) => {
                    path.push(child);
                    cur = child;
                }
                None => break,
            }
        }
        path
    }
}

/// Exact percentiles over raw per-trace samples (trace counts are small —
/// tens per smoke run — so the log-bucket grid would only blur them).
#[derive(Debug, Default, Clone, Serialize)]
struct Pctl {
    n: usize,
    mean: f64,
    p50: f64,
    p99: f64,
    max: f64,
}

impl Pctl {
    fn from_samples(mut v: Vec<f64>) -> Self {
        if v.is_empty() {
            return Self::default();
        }
        v.sort_by(|a, b| a.total_cmp(b));
        let pct = |q: f64| v[((v.len() as f64 - 1.0) * q).round() as usize];
        Self {
            n: v.len(),
            mean: v.iter().sum::<f64>() / v.len() as f64,
            p50: pct(0.50),
            p99: pct(0.99),
            max: *v.last().unwrap_or(&0.0),
        }
    }
}

/// The `BENCH_trace.json` payload. Key names are load-bearing: the
/// `bench-diff` gate treats `e2e*` keys and `*_stage_*` paths as
/// lower-better latencies.
#[derive(Debug, Default, Serialize)]
struct TraceBench {
    files: usize,
    events: usize,
    malformed: usize,
    spans: usize,
    traces: usize,
    complete_traces: usize,
    linked_requests: usize,
    e2e_ms: Pctl,
    publish_to_visible_ms: Pctl,
    ingest_stage_ms: Pctl,
    drift_detect_stage_ms: Pctl,
    online_round_stage_ms: Pctl,
    publish_stage_ms: Pctl,
    reload_stage_ms: Pctl,
    first_serve_stage_ms: Pctl,
}

fn num(v: &Value, key: &str) -> Option<f64> {
    match v.field(key)? {
        Value::Num(n) => Some(*n),
        _ => None,
    }
}

fn str_field<'a>(v: &'a Value, key: &str) -> Option<&'a str> {
    match v.field(key)? {
        Value::Str(s) => Some(s),
        _ => None,
    }
}

/// Merged view of every input file, keyed by trace id.
#[derive(Debug, Default)]
struct Merged {
    traces: BTreeMap<u128, Trace>,
    events: usize,
    malformed: usize,
}

/// Folds one file's lines into the merge. `src` indexes the file list.
fn fold_file(merged: &mut Merged, src: usize, lines: impl Iterator<Item = String>) {
    for line in lines {
        if line.trim().is_empty() {
            continue;
        }
        let Ok(v) = serde_json::from_str::<Value>(&line) else {
            merged.malformed += 1;
            continue;
        };
        merged.events += 1;
        let Some(trace_id) = str_field(&v, "trace").and_then(|s| u128::from_str_radix(s, 16).ok())
        else {
            continue; // untraced event
        };
        let trace = merged.traces.entry(trace_id).or_default();
        if let Some(Value::Arr(links)) = v.field("links") {
            trace.linked_requests += links.len();
        }
        if str_field(&v, "ev") != Some("phase") {
            continue;
        }
        let (Some(name), Some(span_hex), Some(wall_ms), Some(dur_ms)) = (
            str_field(&v, "name"),
            str_field(&v, "span"),
            num(&v, "wall_ms"),
            num(&v, "dur_ms"),
        ) else {
            continue;
        };
        let Ok(span_id) = u64::from_str_radix(span_hex, 16) else {
            continue;
        };
        let parent = str_field(&v, "parent").and_then(|s| u64::from_str_radix(s, 16).ok());
        trace.spans.push(SpanRec {
            name: name.to_string(),
            span_id,
            parent,
            start_ms: wall_ms - dur_ms,
            end_ms: wall_ms,
            dur_ms,
            src,
        });
    }
}

/// Folds the merge into the benchmark aggregates.
fn bench(merged: &Merged, files: usize) -> TraceBench {
    let complete: Vec<&Trace> = merged.traces.values().filter(|t| t.is_complete()).collect();
    let stage = |name: &str| -> Pctl {
        Pctl::from_samples(
            complete
                .iter()
                .map(|t| t.stage_ms(name))
                .filter(|ms| *ms > 0.0)
                .collect(),
        )
    };
    TraceBench {
        files,
        events: merged.events,
        malformed: merged.malformed,
        spans: merged.traces.values().map(|t| t.spans.len()).sum(),
        traces: merged.traces.len(),
        complete_traces: complete.len(),
        linked_requests: merged.traces.values().map(|t| t.linked_requests).sum(),
        e2e_ms: Pctl::from_samples(complete.iter().filter_map(|t| t.e2e_ms()).collect()),
        publish_to_visible_ms: Pctl::from_samples(
            complete
                .iter()
                .filter_map(|t| t.publish_to_visible_ms())
                .collect(),
        ),
        ingest_stage_ms: stage("ingest"),
        drift_detect_stage_ms: stage("drift_detect"),
        online_round_stage_ms: stage("online_round"),
        publish_stage_ms: stage("publish"),
        reload_stage_ms: stage("reload"),
        first_serve_stage_ms: stage("first_serve"),
    }
}

/// Renders the Markdown report: totals, the per-stage latency table, and
/// the critical path of the slowest complete trace.
fn render_markdown(merged: &Merged, b: &TraceBench, files: &[String]) -> String {
    let mut out = String::new();
    out.push_str("# Distributed trace report\n\n");
    out.push_str(&format!(
        "{} events across {} file(s) ({} malformed), {} spans in {} traces \
         ({} complete cross-process), {} fan-in request links\n\n",
        b.events, b.files, b.malformed, b.spans, b.traces, b.complete_traces, b.linked_requests
    ));
    out.push_str("## Per-stage latency over complete traces (ms)\n\n");
    out.push_str("| stage | traces | mean | p50 | p99 | max |\n");
    out.push_str("|-------|-------:|-----:|----:|----:|----:|\n");
    let rows: [(&str, &Pctl); 8] = [
        ("ingest", &b.ingest_stage_ms),
        ("drift_detect", &b.drift_detect_stage_ms),
        ("online_round", &b.online_round_stage_ms),
        ("publish", &b.publish_stage_ms),
        ("reload", &b.reload_stage_ms),
        ("first_serve", &b.first_serve_stage_ms),
        ("publish→visible", &b.publish_to_visible_ms),
        ("end-to-end", &b.e2e_ms),
    ];
    for (name, p) in rows {
        out.push_str(&format!(
            "| {} | {} | {:.2} | {:.2} | {:.2} | {:.2} |\n",
            name, p.n, p.mean, p.p50, p.p99, p.max
        ));
    }
    // Critical path of the slowest complete trace: the one worth staring
    // at when the publish-to-visible latency regresses.
    let slowest = merged
        .traces
        .iter()
        .filter(|(_, t)| t.is_complete())
        .max_by(|a, b| {
            a.1.e2e_ms()
                .unwrap_or(0.0)
                .total_cmp(&b.1.e2e_ms().unwrap_or(0.0))
        });
    if let Some((id, trace)) = slowest {
        let path = trace.critical_path();
        if let Some(root) = path.first() {
            out.push_str(&format!(
                "\n## Critical path of slowest complete trace `{id:032x}` \
                 ({:.2} ms end-to-end)\n\n",
                trace.e2e_ms().unwrap_or(0.0)
            ));
            out.push_str("| span | source | start offset (ms) | duration (ms) |\n");
            out.push_str("|------|--------|------------------:|--------------:|\n");
            for s in &path {
                let src = files.get(s.src).map_or("?", |f| f.as_str());
                out.push_str(&format!(
                    "| {} | {} | {:.2} | {:.2} |\n",
                    s.name,
                    src,
                    s.start_ms - root.start_ms,
                    s.dur_ms
                ));
            }
        }
    }
    out
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut files: Vec<String> = Vec::new();
    let mut out_json: Option<String> = None;
    let mut require_complete = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--out" => {
                out_json = args.get(i + 1).cloned();
                i += 2;
            }
            "--require-complete" => {
                require_complete = true;
                i += 1;
            }
            "--help" | "-h" => {
                eprintln!(
                    "usage: trace-query <trace.jsonl>... [--out BENCH_trace.json] [--require-complete]"
                );
                return;
            }
            a => {
                files.push(a.to_string());
                i += 1;
            }
        }
    }
    if files.is_empty() {
        eprintln!(
            "usage: trace-query <trace.jsonl>... [--out BENCH_trace.json] [--require-complete]"
        );
        std::process::exit(2);
    }
    let mut merged = Merged::default();
    for (src, path) in files.iter().enumerate() {
        let text = std::fs::read_to_string(path)
            .unwrap_or_else(|e| panic!("cannot read trace {path}: {e}"));
        fold_file(&mut merged, src, text.lines().map(str::to_string));
    }
    let b = bench(&merged, files.len());
    print!("{}", render_markdown(&merged, &b, &files));
    if let Some(path) = out_json {
        let json = serde_json::to_string_pretty(&b).expect("bench serializes");
        std::fs::write(&path, json).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
        eprintln!("wrote {path}");
    }
    if require_complete && b.complete_traces == 0 {
        eprintln!(
            "error: no complete cross-process trace (need window_commit + publish + reload \
             sharing one trace id)"
        );
        std::process::exit(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lines<'a>(raw: &'a [&'a str]) -> impl Iterator<Item = String> + 'a {
        raw.iter().map(|s| (*s).to_string())
    }

    /// A two-process trace: traind emits window_commit (span 1, root) with
    /// children ingest/drift_detect/online_round/publish (spans 2-5);
    /// serve emits reload (span 6, parent 5 = publish) and first_serve
    /// (span 7, parent 6). wall_ms is the span END on the shared axis.
    const TRACE: &str = "0000000000000000000000000000abcd";
    fn traind_lines() -> Vec<&'static str> {
        vec![
            r#"{"seq":1,"ms":1.0,"wall_ms":1010.0,"ev":"phase","name":"ingest","trace":"0000000000000000000000000000abcd","span":"0000000000000002","parent":"0000000000000001","start_ms":0.0,"dur_ms":10.0}"#,
            r#"{"seq":2,"ms":2.0,"wall_ms":1030.0,"ev":"phase","name":"drift_detect","trace":"0000000000000000000000000000abcd","span":"0000000000000003","parent":"0000000000000001","start_ms":0.0,"dur_ms":20.0}"#,
            r#"{"seq":3,"ms":3.0,"wall_ms":1130.0,"ev":"phase","name":"online_round","trace":"0000000000000000000000000000abcd","span":"0000000000000004","parent":"0000000000000001","start_ms":0.0,"dur_ms":100.0}"#,
            r#"{"seq":4,"ms":4.0,"wall_ms":1190.0,"ev":"phase","name":"publish","trace":"0000000000000000000000000000abcd","span":"0000000000000005","parent":"0000000000000001","start_ms":0.0,"dur_ms":60.0}"#,
            r#"{"seq":5,"ms":5.0,"wall_ms":1195.0,"ev":"phase","name":"window_commit","trace":"0000000000000000000000000000abcd","span":"0000000000000001","start_ms":0.0,"dur_ms":195.0}"#,
        ]
    }
    fn serve_lines() -> Vec<&'static str> {
        vec![
            r#"{"seq":1,"ms":1.0,"wall_ms":1180.0,"ev":"phase","name":"reload","trace":"0000000000000000000000000000abcd","span":"0000000000000006","parent":"0000000000000005","start_ms":0.0,"dur_ms":40.0}"#,
            r#"{"seq":2,"ms":2.0,"wall_ms":1250.0,"ev":"serve_batch","name":"cil","trace":"0000000000000000000000000000abcd","span":"0000000000000007","parent":"0000000000000006","links":["00-000000000000000000000000000000aa-00000000000000aa-01"],"batch":2}"#,
            r#"{"seq":3,"ms":3.0,"wall_ms":1250.0,"ev":"phase","name":"first_serve","trace":"0000000000000000000000000000abcd","span":"0000000000000007","parent":"0000000000000006","start_ms":0.0,"dur_ms":5.0}"#,
        ]
    }

    fn merged_fixture() -> Merged {
        let mut m = Merged::default();
        fold_file(&mut m, 0, lines(&traind_lines()));
        fold_file(&mut m, 1, lines(&serve_lines()));
        m
    }

    #[test]
    fn merges_files_into_one_complete_trace() {
        let m = merged_fixture();
        assert_eq!(m.traces.len(), 1);
        assert_eq!(m.malformed, 0);
        let t = m.traces.values().next().expect("one trace");
        assert_eq!(t.spans.len(), 7);
        assert!(t.is_complete());
        assert_eq!(t.linked_requests, 1);
        let root = t.root().expect("root");
        assert_eq!(root.name, "window_commit");
        assert_eq!(root.span_id, 1);
        // window_commit runs 1000 → 1195; first_serve ends at 1250 on the
        // serve side, so the trace extends past its root.
        assert!((t.e2e_ms().expect("e2e") - 250.0).abs() < 1e-9);
        assert!((t.publish_to_visible_ms().expect("ptv") - 120.0).abs() < 1e-9);
    }

    #[test]
    fn critical_path_follows_latest_ends_across_processes() {
        let m = merged_fixture();
        let t = m.traces.values().next().expect("one trace");
        let names: Vec<&str> = t.critical_path().iter().map(|s| s.name.as_str()).collect();
        // publish (ends 1190) beats online_round (ends 1130) among the
        // root's children; then the cross-process reload → first_serve.
        assert_eq!(
            names,
            vec!["window_commit", "publish", "reload", "first_serve"]
        );
        let path = t.critical_path();
        assert_eq!(path[2].src, 1, "reload comes from the serve file");
    }

    #[test]
    fn bench_aggregates_have_the_gated_keys() {
        let m = merged_fixture();
        let b = bench(&m, 2);
        assert_eq!(b.traces, 1);
        assert_eq!(b.complete_traces, 1);
        assert_eq!(b.spans, 7);
        assert!((b.publish_stage_ms.p50 - 60.0).abs() < 1e-9);
        assert!((b.reload_stage_ms.p50 - 40.0).abs() < 1e-9);
        assert!((b.first_serve_stage_ms.p99 - 5.0).abs() < 1e-9);
        let json = serde_json::to_string(&b).expect("serializes");
        for key in [
            "\"e2e_ms\"",
            "\"publish_to_visible_ms\"",
            "\"ingest_stage_ms\"",
            "\"drift_detect_stage_ms\"",
            "\"online_round_stage_ms\"",
            "\"publish_stage_ms\"",
            "\"reload_stage_ms\"",
            "\"first_serve_stage_ms\"",
        ] {
            assert!(json.contains(key), "{key} missing from {json}");
        }
    }

    #[test]
    fn incomplete_traces_are_counted_but_not_aggregated() {
        let mut m = Merged::default();
        // traind-only trace: no reload ever observed.
        fold_file(&mut m, 0, lines(&traind_lines()));
        let b = bench(&m, 1);
        assert_eq!(b.traces, 1);
        assert_eq!(b.complete_traces, 0);
        assert_eq!(b.e2e_ms.n, 0);
        let md = render_markdown(&m, &b, &["traind.jsonl".to_string()]);
        assert!(md.contains("0 complete"), "{md}");
        assert!(!md.contains("Critical path"), "{md}");
    }

    #[test]
    fn markdown_reports_stages_and_critical_path() {
        let m = merged_fixture();
        let b = bench(&m, 2);
        let files = ["traind.jsonl".to_string(), "serve.jsonl".to_string()];
        let md = render_markdown(&m, &b, &files);
        assert!(md.contains("1 complete"), "{md}");
        assert!(md.contains(&format!(
            "Critical path of slowest complete trace `{TRACE}`"
        )));
        assert!(md.contains("| reload | serve.jsonl |"), "{md}");
        assert!(md.contains("| end-to-end | 1 | 250.00 |"), "{md}");
    }

    #[test]
    fn garbage_and_untraced_lines_are_tolerated() {
        let mut m = Merged::default();
        fold_file(
            &mut m,
            0,
            lines(&[
                "not json",
                r#"{"seq":1,"ms":1.0,"ev":"scalar","name":"loss_total","task":0,"value":1.0}"#,
                r#"{"seq":2,"ms":2.0,"wall_ms":9.0,"ev":"phase","name":"warmup","task":0,"dur_ms":3.0}"#,
            ]),
        );
        assert_eq!(m.malformed, 1);
        assert_eq!(m.events, 2);
        assert!(m.traces.is_empty());
    }
}
