//! The `cdcl-serve` engine: batched TIL/CIL inference over a snapshot.
//!
//! This module is the whole server minus `main` — the `cdcl-serve` bin is a
//! thin wrapper, and the TCP integration test (`tests/serve_metrics.rs`)
//! drives [`run_tcp`] in-process against an ephemeral listener. See the bin
//! docs for the JSONL protocol; this module adds the observability surface
//! (DESIGN.md §11):
//!
//! * every micro-batch feeds the `cdcl_serve_*` registry metrics
//!   (batch-size / latency / queue-depth histograms, request counters);
//! * a TCP connection whose first line is an HTTP `GET /metrics` request is
//!   answered with the Prometheus exposition instead of JSONL;
//! * the bare line `METRICS` on any JSONL stream returns the registry as
//!   one JSON object (`{"ok":true,"metrics":...}`);
//! * `--metrics-every N` prints a one-line registry summary to stderr every
//!   `N` requests (stdio mode's stdout belongs to the response stream);
//! * output probabilities are screened per batch: a row containing NaN/Inf
//!   becomes an error response and bumps `cdcl_serve_nonfinite_total`
//!   instead of shipping a garbage prediction.

use cdcl_autograd::Graph;
use cdcl_core::CdclTrainer;
use cdcl_telemetry as telemetry;
use cdcl_tensor::{pool, PooledBuf, Tensor};
use serde::{Deserialize, Serialize};
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::TcpListener;
use std::path::PathBuf;
use std::time::Instant;

static REQUESTS_TOTAL: cdcl_obs::Counter = cdcl_obs::Counter::new(
    "cdcl_serve_requests_total",
    "Prediction requests received (including malformed ones)",
);
static FAILED_TOTAL: cdcl_obs::Counter = cdcl_obs::Counter::new(
    "cdcl_serve_failed_total",
    "Requests answered with an error response",
);
static NONFINITE_TOTAL: cdcl_obs::Counter = cdcl_obs::Counter::new(
    "cdcl_serve_nonfinite_total",
    "Requests whose output probabilities contained NaN/Inf (answered as errors)",
);
static BATCHES_TOTAL: cdcl_obs::Counter = cdcl_obs::Counter::new(
    "cdcl_serve_batches_total",
    "Forward-pass micro-batches executed",
);
static BATCH_LATENCY_US: cdcl_obs::Histogram = cdcl_obs::Histogram::new(
    "cdcl_serve_batch_latency_us",
    "Forward-pass latency per micro-batch (microseconds)",
);
static BATCH_SIZE: cdcl_obs::Histogram =
    cdcl_obs::Histogram::new("cdcl_serve_batch_size", "Requests per executed micro-batch");
static QUEUE_DEPTH: cdcl_obs::Histogram = cdcl_obs::Histogram::new(
    "cdcl_serve_queue_depth",
    "Pending queue length at each flush (before grouping)",
);
static SERVE_ALLOC_BYTES: cdcl_obs::Counter = cdcl_obs::Counter::new(
    "cdcl_serve_alloc_bytes_total",
    "Heap bytes allocated by the tensor pool while staging request batches \
     (zero growth in steady state: recycled pool buffers cover every flush)",
);

/// One JSON-lines prediction request.
#[derive(Debug, Deserialize)]
pub struct Request {
    /// Client-chosen id, echoed in the response (0 when omitted).
    pub id: Option<u64>,
    /// `"til"` or `"cil"`.
    pub mode: Option<String>,
    /// Task id (TIL only).
    pub task: Option<usize>,
    /// Flattened `c*h*w` image.
    pub image: Option<Vec<f32>>,
}

/// One JSON-lines prediction response.
#[derive(Debug, Serialize)]
pub struct Response {
    pub id: u64,
    pub ok: bool,
    pub mode: Option<String>,
    pub task: Option<usize>,
    /// Argmax class: task-local for TIL, global for CIL.
    pub pred: Option<usize>,
    /// Full probability row (softmax).
    pub probs: Option<Vec<f32>>,
    pub error: Option<String>,
}

impl Response {
    fn failure(id: u64, error: String) -> Self {
        Self {
            id,
            ok: false,
            mode: None,
            task: None,
            pred: None,
            probs: None,
            error: Some(error),
        }
    }
}

/// Latency/throughput summary written to `--bench-out`.
#[derive(Debug, Serialize)]
pub struct LatencySummary {
    pub mean: f64,
    pub p50: f64,
    pub p95: f64,
    pub max: f64,
}

/// The `BENCH_serve.json` payload.
#[derive(Debug, Serialize)]
pub struct ServeReport {
    pub snapshot: String,
    pub tasks: usize,
    pub total_classes: usize,
    pub max_batch: usize,
    pub requests: u64,
    pub failed_requests: u64,
    pub batches: u64,
    pub mean_batch_size: f64,
    pub latency_us: LatencySummary,
    pub throughput_rps: f64,
}

/// Running serve statistics; one entry per executed micro-batch.
#[derive(Debug, Default)]
pub struct ServeStats {
    pub requests: u64,
    pub failed: u64,
    /// `(batch_size, latency_us)` per forward pass.
    pub batches: Vec<(usize, f64)>,
}

impl ServeStats {
    /// Folds the run into the `--bench-out` report.
    pub fn report(&self, snapshot: &str, trainer: &CdclTrainer, max_batch: usize) -> ServeReport {
        let mut lat: Vec<f64> = self.batches.iter().map(|&(_, us)| us).collect();
        lat.sort_by(|a, b| a.total_cmp(b));
        let pct = |q: f64| -> f64 {
            if lat.is_empty() {
                return 0.0;
            }
            let idx = ((lat.len() as f64 - 1.0) * q).round() as usize;
            lat[idx]
        };
        let total_us: f64 = lat.iter().sum();
        let served: u64 = self.batches.iter().map(|&(n, _)| n as u64).sum();
        ServeReport {
            snapshot: snapshot.to_string(),
            tasks: trainer.model().num_tasks(),
            total_classes: trainer.model().total_classes(),
            max_batch,
            requests: self.requests,
            failed_requests: self.failed,
            batches: self.batches.len() as u64,
            mean_batch_size: if self.batches.is_empty() {
                0.0
            } else {
                served as f64 / self.batches.len() as f64
            },
            latency_us: LatencySummary {
                mean: if lat.is_empty() {
                    0.0
                } else {
                    total_us / lat.len() as f64
                },
                p50: pct(0.50),
                p95: pct(0.95),
                max: lat.last().copied().unwrap_or(0.0),
            },
            throughput_rps: if total_us > 0.0 {
                served as f64 / (total_us / 1e6)
            } else {
                0.0
            },
        }
    }
}

/// Parsed `cdcl-serve` command line.
pub struct ServeArgs {
    pub snapshot: PathBuf,
    pub tcp: Option<String>,
    pub max_batch: usize,
    pub bench_out: Option<String>,
    /// TCP mode: exit after this many connections (0 = forever).
    pub conns: usize,
    /// Stdio mode: stderr metrics summary every N requests (0 = never).
    pub metrics_every: usize,
}

/// Parses `std::env::args` (panics with usage on unknown flags — bench
/// binaries fail fast).
pub fn parse_args() -> ServeArgs {
    let mut args = ServeArgs {
        snapshot: PathBuf::new(),
        tcp: None,
        max_batch: 32,
        bench_out: Some("BENCH_serve.json".to_string()),
        conns: 1,
        metrics_every: 0,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--snapshot" => {
                i += 1;
                args.snapshot = PathBuf::from(&argv[i]);
            }
            "--tcp" => {
                i += 1;
                args.tcp = Some(argv[i].clone());
            }
            "--max-batch" => {
                i += 1;
                args.max_batch = argv[i].parse().expect("--max-batch <n>");
                assert!(args.max_batch > 0, "--max-batch must be positive");
            }
            "--bench-out" => {
                i += 1;
                args.bench_out = match argv[i].as_str() {
                    "none" => None,
                    path => Some(path.to_string()),
                };
            }
            "--conns" => {
                i += 1;
                args.conns = argv[i].parse().expect("--conns <n>");
            }
            "--metrics-every" => {
                i += 1;
                args.metrics_every = argv[i].parse().expect("--metrics-every <n>");
            }
            other => panic!(
                "unknown argument {other}; known: --snapshot --tcp --max-batch --bench-out --conns --metrics-every"
            ),
        }
        i += 1;
    }
    assert!(
        !args.snapshot.as_os_str().is_empty(),
        "--snapshot <path.cdclsnap> is required"
    );
    args
}

/// Re-verifies every restored task through the graph verifier before the
/// server answers anything: one forward-only graph per task (through that
/// task's `K_i`/`b_i` and TIL head) is checked for shape consistency and
/// the frozen contract over `expected_frozen_params()`. A snapshot that
/// passed the loader's structural validation but violates the freezing
/// invariants is refused here.
pub fn reverify_frozen(trainer: &CdclTrainer) -> Result<(), String> {
    let model = trainer.model();
    let frozen = model.expected_frozen_params();
    let (c, (h, w)) = (
        trainer.config().backbone.in_channels,
        trainer.config().backbone.in_hw,
    );
    for t in 0..model.num_tasks() {
        let mut g = Graph::new();
        let x = g.input(Tensor::zeros(&[1, c, h, w]));
        let z = model.features_self(&mut g, x, t);
        let til = model.til_logits(&mut g, z, t);
        let lp = g.log_softmax_last(til);
        let loss = g.nll_loss(lp, &[0]);
        g.verify(loss, &frozen)
            .map_err(|e| format!("snapshot failed graph re-verification for task {t}: {e}"))?;
    }
    if telemetry::enabled() {
        telemetry::Event::new("serve")
            .name("frozen_reverified")
            .u64_field("tasks", model.num_tasks() as u64)
            .u64_field("frozen_params", frozen.len() as u64)
            .emit();
    }
    Ok(())
}

/// Validates one parsed request against the loaded model. Returns the
/// batching key `(is_til, task)` on success.
fn validate(trainer: &CdclTrainer, req: &Request) -> Result<(bool, usize), String> {
    let model = trainer.model();
    let (c, (h, w)) = (
        trainer.config().backbone.in_channels,
        trainer.config().backbone.in_hw,
    );
    let image = req.image.as_ref().ok_or("missing `image`")?;
    if image.len() != c * h * w {
        return Err(format!(
            "image has {} floats, model expects {} (c={c}, h={h}, w={w})",
            image.len(),
            c * h * w
        ));
    }
    if !image.iter().all(|v| v.is_finite()) {
        return Err("image contains non-finite values".to_string());
    }
    match req.mode.as_deref() {
        Some("til") => {
            let task = req.task.ok_or("`til` requests need `task`")?;
            if task >= model.num_tasks() {
                return Err(format!(
                    "task {task} out of range (snapshot has {} tasks)",
                    model.num_tasks()
                ));
            }
            Ok((true, task))
        }
        Some("cil") => Ok((false, 0)),
        other => Err(format!(
            "unknown mode {other:?} (expected \"til\" or \"cil\")"
        )),
    }
}

fn argmax(row: &[f32]) -> usize {
    let mut best = 0;
    for (i, &v) in row.iter().enumerate() {
        if v > row[best] {
            best = i;
        }
    }
    best
}

/// Runs the accumulated queue: groups by `(mode, task)`, executes one
/// forward pass per group, screens outputs for NaN/Inf, and writes
/// responses in arrival order.
fn flush_batch(
    trainer: &CdclTrainer,
    pending: &mut Vec<(u64, Request)>,
    out: &mut dyn Write,
    stats: &mut ServeStats,
) -> std::io::Result<()> {
    if pending.is_empty() {
        return Ok(());
    }
    QUEUE_DEPTH.observe(pending.len() as f64);
    // Drain in place at the end (not `mem::take`) so the connection's
    // request-staging Vec keeps its capacity across flushes.
    let queue: &[(u64, Request)] = pending;
    let mut responses: Vec<Option<Response>> = (0..queue.len()).map(|_| None).collect();
    // (key, member indexes into `queue`), insertion-ordered for determinism.
    let mut groups: Vec<((bool, usize), Vec<usize>)> = Vec::new();
    for (i, (id, req)) in queue.iter().enumerate() {
        stats.requests += 1;
        REQUESTS_TOTAL.inc();
        match validate(trainer, req) {
            Ok(key) => match groups.iter_mut().find(|(k, _)| *k == key) {
                Some((_, members)) => members.push(i),
                None => groups.push((key, vec![i])),
            },
            Err(e) => {
                stats.failed += 1;
                FAILED_TOTAL.inc();
                responses[i] = Some(Response::failure(*id, e));
            }
        }
    }

    let (c, (h, w)) = (
        trainer.config().backbone.in_channels,
        trainer.config().backbone.in_hw,
    );
    for ((is_til, task), members) in groups {
        let n = members.len();
        // Batch staging comes from the tensor pool; after warm-up the same
        // batch shapes recur, so this is a recycled buffer and the
        // `cdcl_serve_alloc_bytes_total` delta below stays zero. `validate`
        // guaranteed every member image is exactly `c*h*w` long.
        let alloc_before = pool::pool_stats().alloc_bytes;
        let mut data = PooledBuf::take_uninit(n * c * h * w);
        SERVE_ALLOC_BYTES.add(pool::pool_stats().alloc_bytes.saturating_sub(alloc_before));
        for (row, &i) in members.iter().enumerate() {
            let img = queue[i].1.image.as_deref().unwrap_or(&[]);
            data[row * c * h * w..row * c * h * w + img.len()].copy_from_slice(img);
        }
        let images = Tensor::from_buf(data, &[n, c, h, w]);
        let started = Instant::now();
        let probs = if is_til {
            trainer.model().predict_til(&images, task)
        } else {
            trainer.model().predict_cil(&images)
        };
        let latency_us = started.elapsed().as_secs_f64() * 1e6;
        stats.batches.push((n, latency_us));
        BATCHES_TOTAL.inc();
        BATCH_SIZE.observe(n as f64);
        BATCH_LATENCY_US.observe(latency_us);
        if telemetry::enabled() {
            telemetry::Event::new("serve_batch")
                .name(if is_til { "til" } else { "cil" })
                .task(task)
                .u64_field("batch", n as u64)
                .f64_field("latency_us", latency_us)
                .emit();
        }
        let classes = probs.shape()[1];
        for (row, &i) in members.iter().enumerate() {
            let p = &probs.data()[row * classes..(row + 1) * classes];
            responses[i] = Some(row_response(queue[i].0, is_til, task, p, stats));
        }
    }

    pending.clear();
    for resp in responses.into_iter().flatten() {
        let line = serde_json::to_string(&resp).expect("serialize response");
        writeln!(out, "{line}")?;
    }
    out.flush()
}

/// Builds the response for one probability row, running the NaN/Inf
/// watchdog: a corrupted snapshot or numeric blow-up must surface as an
/// error response (and bump `cdcl_serve_nonfinite_total`), not a
/// confidently-wrong argmax. Public so the integration test can exercise
/// the screening directly — in debug builds the autograd graph asserts
/// finiteness on every node, so non-finite probabilities cannot be
/// produced through a real forward pass there; this path is the
/// release-mode guard.
#[doc(hidden)]
pub fn row_response(
    id: u64,
    is_til: bool,
    task: usize,
    p: &[f32],
    stats: &mut ServeStats,
) -> Response {
    if !p.iter().all(|v| v.is_finite()) {
        stats.failed += 1;
        FAILED_TOTAL.inc();
        NONFINITE_TOTAL.inc();
        if telemetry::enabled() {
            telemetry::Event::new("serve")
                .name("nonfinite_output")
                .task(task)
                .u64_field("request_id", id)
                .emit();
        }
        return Response::failure(
            id,
            "model produced non-finite output probabilities".to_string(),
        );
    }
    Response {
        id,
        ok: true,
        mode: Some(if is_til { "til" } else { "cil" }.to_string()),
        task: is_til.then_some(task),
        pred: Some(argmax(p)),
        probs: Some(p.to_vec()),
        error: None,
    }
}

/// One-line registry summary for `--metrics-every` stderr reporting.
fn metrics_summary_line(stats: &ServeStats) -> String {
    format!(
        "cdcl-serve: metrics: {} requests ({} failed, {} nonfinite), {} batches, latency_us p50 {:.0} p99 {:.0}, batch_size p50 {:.1}",
        stats.requests,
        stats.failed,
        NONFINITE_TOTAL.get(),
        stats.batches.len(),
        BATCH_LATENCY_US.percentile(0.50),
        BATCH_LATENCY_US.percentile(0.99),
        BATCH_SIZE.percentile(0.50),
    )
}

/// Renders the registry for exposition, mirroring the kernel counters in
/// first so `/metrics` and `METRICS` always see current GEMM volume.
fn registry_prometheus() -> String {
    cdcl_tensor::kernels::publish_registry();
    cdcl_obs::global().render_prometheus()
}

fn registry_json() -> String {
    cdcl_tensor::kernels::publish_registry();
    cdcl_obs::global().render_json()
}

/// The serve loop over one request stream: queue lines, flush at
/// `max_batch`, on a blank line, and at end-of-stream. The bare line
/// `METRICS` answers with the registry as one JSON object. `first_line`
/// carries a line the caller already consumed while sniffing the protocol
/// (TCP dispatch); stdio passes `None`.
fn serve_lines(
    trainer: &CdclTrainer,
    first_line: Option<String>,
    reader: &mut dyn BufRead,
    writer: &mut dyn Write,
    args: &ServeArgs,
    stats: &mut ServeStats,
) -> std::io::Result<()> {
    let mut pending: Vec<(u64, Request)> = Vec::new();
    let mut line = String::new();
    let mut reported_at = 0u64;
    let mut first = first_line;
    loop {
        let current = match first.take() {
            Some(l) => l,
            None => {
                line.clear();
                if reader.read_line(&mut line)? == 0 {
                    break; // EOF
                }
                line.clone()
            }
        };
        let trimmed = current.trim();
        if trimmed.is_empty() {
            flush_batch(trainer, &mut pending, writer, stats)?;
        } else if trimmed == "METRICS" {
            // Flush first so the answer reflects every request seen so far.
            flush_batch(trainer, &mut pending, writer, stats)?;
            writeln!(writer, "{{\"ok\":true,\"metrics\":{}}}", registry_json())?;
            writer.flush()?;
        } else {
            match serde_json::from_str::<Request>(trimmed) {
                Ok(req) => {
                    let id = req.id.unwrap_or(0);
                    pending.push((id, req));
                }
                Err(e) => {
                    stats.requests += 1;
                    stats.failed += 1;
                    REQUESTS_TOTAL.inc();
                    FAILED_TOTAL.inc();
                    let resp = Response::failure(0, format!("bad request line: {e}"));
                    let out = serde_json::to_string(&resp).expect("serialize response");
                    writeln!(writer, "{out}")?;
                    writer.flush()?;
                }
            }
            if pending.len() >= args.max_batch {
                flush_batch(trainer, &mut pending, writer, stats)?;
            }
        }
        if args.metrics_every > 0 && stats.requests >= reported_at + args.metrics_every as u64 {
            reported_at = stats.requests;
            eprintln!("{}", metrics_summary_line(stats));
        }
    }
    flush_batch(trainer, &mut pending, writer, stats)
}

/// The serve loop over one already-open stream (stdio mode, tests).
pub fn serve_stream(
    trainer: &CdclTrainer,
    reader: &mut dyn BufRead,
    writer: &mut dyn Write,
    args: &ServeArgs,
    stats: &mut ServeStats,
) -> std::io::Result<()> {
    serve_lines(trainer, None, reader, writer, args, stats)
}

/// Answers an HTTP `GET /metrics` scrape: consumes the request headers,
/// writes a minimal HTTP/1.0 response carrying the Prometheus exposition,
/// and lets the connection close.
fn serve_http_metrics(
    request_line: &str,
    reader: &mut dyn BufRead,
    writer: &mut dyn Write,
) -> std::io::Result<()> {
    // Drain headers until the blank line so the client sees a clean close.
    let mut line = String::new();
    loop {
        line.clear();
        if reader.read_line(&mut line)? == 0 || line.trim().is_empty() {
            break;
        }
    }
    let path = request_line.split_whitespace().nth(1).unwrap_or("");
    let (status, body) = if path == "/metrics" {
        ("200 OK", registry_prometheus())
    } else {
        (
            "404 Not Found",
            format!("no such path {path}; try /metrics\n"),
        )
    };
    write!(
        writer,
        "HTTP/1.0 {status}\r\nContent-Type: text/plain; version=0.0.4\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )?;
    writer.flush()
}

/// The TCP accept loop: JSONL connections run the serve protocol; a
/// connection opening with an HTTP `GET` is answered as a `/metrics`
/// scrape. Exits after `args.conns` connections (0 = run forever). The
/// loop is single-threaded — the kernel pool already parallelizes the
/// forward pass, and a serial accept loop keeps responses deterministic.
pub fn run_tcp(
    trainer: &CdclTrainer,
    listener: TcpListener,
    args: &ServeArgs,
    stats: &mut ServeStats,
) {
    let mut served = 0usize;
    for conn in listener.incoming() {
        let conn = conn.expect("accept connection");
        let peer = conn.peer_addr().map(|a| a.to_string());
        let mut reader = BufReader::new(conn.try_clone().expect("clone connection"));
        let mut writer = BufWriter::new(conn);
        let mut first = String::new();
        let result = match reader.read_line(&mut first) {
            Ok(0) => Ok(()),
            Ok(_) if first.starts_with("GET ") => {
                serve_http_metrics(&first, &mut reader, &mut writer)
            }
            Ok(_) => serve_lines(trainer, Some(first), &mut reader, &mut writer, args, stats),
            Err(e) => Err(e),
        };
        if let Err(e) = result {
            eprintln!("cdcl-serve: connection {peer:?} dropped: {e}");
        }
        served += 1;
        if args.conns > 0 && served >= args.conns {
            break;
        }
    }
}

/// The full `cdcl-serve` entry point: load + re-verify the snapshot, serve
/// stdio or TCP, then write the bench report.
pub fn run(args: &ServeArgs) {
    cdcl_obs::set_enabled(true);
    let trainer = match CdclTrainer::resume_from(&args.snapshot) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cdcl-serve: cannot load {}: {e}", args.snapshot.display());
            std::process::exit(2);
        }
    };
    if let Err(e) = reverify_frozen(&trainer) {
        eprintln!("cdcl-serve: {e}");
        std::process::exit(3);
    }
    eprintln!(
        "cdcl-serve: loaded {} ({} tasks, {} classes), frozen params re-verified",
        args.snapshot.display(),
        trainer.model().num_tasks(),
        trainer.model().total_classes()
    );

    let mut stats = ServeStats::default();
    match &args.tcp {
        None => {
            let stdin = std::io::stdin();
            let stdout = std::io::stdout();
            let mut reader = BufReader::new(stdin.lock());
            let mut writer = BufWriter::new(stdout.lock());
            serve_stream(&trainer, &mut reader, &mut writer, args, &mut stats)
                .expect("serve stdin/stdout");
        }
        Some(addr) => {
            let listener =
                TcpListener::bind(addr).unwrap_or_else(|e| panic!("cdcl-serve: bind {addr}: {e}"));
            eprintln!("cdcl-serve: listening on {addr}");
            run_tcp(&trainer, listener, args, &mut stats);
        }
    }

    let report = stats.report(
        &args.snapshot.display().to_string(),
        &trainer,
        args.max_batch,
    );
    crate::maybe_write_json(&args.bench_out, &report);
    telemetry::flush();
    eprintln!(
        "cdcl-serve: {} requests ({} failed) in {} batches, mean batch {:.2}, p50 {:.0}us, throughput {:.1} rps",
        report.requests,
        report.failed_requests,
        report.batches,
        report.mean_batch_size,
        report.latency_us.p50,
        report.throughput_rps
    );
}
