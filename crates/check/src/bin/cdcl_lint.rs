//! `cdcl-lint` — the workspace invariant linter (DESIGN.md §9).
//!
//! Usage (from anywhere in the workspace):
//!
//! ```text
//! cargo run -p cdcl-check --bin cdcl-lint [-- --json | --allow-stale]
//! ```
//!
//! Scans every `.rs` file under `crates/*/src`, prints each violation with
//! file/line/rule provenance, and exits non-zero if any violation is not
//! vetted by `lint-allow.txt` at the workspace root — or if an allowlist
//! entry matched nothing (stale entries hide future regressions behind
//! dead vetting; delete them, or pass `--allow-stale` while mid-refactor).
//! `--json` emits one JSON object per finding
//! (`{"file","line","rule","needle","excerpt"}`) for the CI artifact.
//! Run by the CI `static-analysis` job.

use std::path::Path;
use std::process::ExitCode;

use cdcl_check::{lint_workspace, Allowlist};

fn main() -> ExitCode {
    // CARGO_MANIFEST_DIR = crates/check; the workspace root is two up.
    let manifest = Path::new(env!("CARGO_MANIFEST_DIR"));
    let Some(root) = manifest.parent().and_then(Path::parent) else {
        eprintln!("cdcl-lint: cannot locate workspace root from {manifest:?}");
        return ExitCode::FAILURE;
    };

    let mut json = false;
    let mut allow_stale = false;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--json" => json = true,
            "--allow-stale" => allow_stale = true,
            other => {
                eprintln!("cdcl-lint: unknown flag {other} (expected --json or --allow-stale)");
                return ExitCode::FAILURE;
            }
        }
    }

    let allow_path = root.join("lint-allow.txt");
    let allow = match std::fs::read_to_string(&allow_path) {
        Ok(text) => Allowlist::parse(&text),
        Err(_) => Allowlist::default(),
    };

    let (violations, allowed) = lint_workspace(root, &allow);

    for f in &violations {
        if json {
            println!("{}", f.to_json());
        } else {
            println!("{f}");
        }
    }
    let stale = allow.unused(&allowed);
    for entry in &stale {
        eprintln!("stale lint-allow entry (matched nothing): {entry}");
    }
    if !json {
        println!(
            "cdcl-lint: {} violation(s), {} allowlisted, {} stale allow entr(ies)",
            violations.len(),
            allowed.len(),
            stale.len()
        );
    }
    if violations.is_empty() && (stale.is_empty() || allow_stale) {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
