//! Head-to-head on a near-domain Office-31 pair (DSLR→Webcam analogue):
//! CDCL vs the continual-learning and static-UDA baselines, plus the
//! joint-training upper bound — a one-column slice of the paper's Table I.
//!
//! ```text
//! cargo run --release -p cdcl --example compare_baselines
//! ```

use cdcl::baselines::{
    run_static_uda, BaselineConfig, CdTransSize, CdTransTrainer, DerTrainer, DerVariant,
    HalTrainer, MlsTrainer,
};
use cdcl::core::protocol::ContinualLearner;
use cdcl::core::{run_stream, CdclConfig, CdclTrainer};
use cdcl::data::{office31, Office31Domain, Scale};

fn main() {
    let stream = office31(
        Office31Domain::Dslr,
        Office31Domain::Webcam,
        Scale::Standard,
    );
    println!(
        "benchmark `{}`: {} tasks x {} classes\n",
        stream.name,
        stream.num_tasks(),
        stream.tasks[0].num_classes()
    );

    let mut base = BaselineConfig::default();
    base.backbone.in_channels = 3;
    let mut cdcl_cfg = CdclConfig::default();
    cdcl_cfg.backbone.in_channels = 3;

    let mut learners: Vec<Box<dyn ContinualLearner>> = vec![
        Box::new(DerTrainer::new(DerVariant::Der, base)),
        Box::new(DerTrainer::new(DerVariant::DerPlusPlus, base)),
        Box::new(HalTrainer::new(base)),
        Box::new(MlsTrainer::new(base)),
        Box::new(CdTransTrainer::new(CdTransSize::Small, base)),
        Box::new(CdclTrainer::new(cdcl_cfg)),
    ];

    println!(
        "{:12} {:>8} {:>8} {:>8} {:>8}",
        "method", "TIL ACC", "TIL FGT", "CIL ACC", "CIL FGT"
    );
    for learner in &mut learners {
        let r = run_stream(learner.as_mut(), &stream);
        println!(
            "{:12} {:7.1}% {:7.1}% {:7.1}% {:7.1}%",
            r.method,
            r.til_acc_pct(),
            r.til_fgt_pct(),
            r.cil_acc_pct(),
            r.cil_fgt_pct()
        );
    }

    let upper = run_static_uda(&stream, base);
    println!(
        "{:12} {:7.1}%       -        -       -   (joint training on all tasks)",
        "TVT-static",
        upper.til_acc_pct()
    );
}
