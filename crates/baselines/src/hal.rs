//! HAL — Hindsight Anchor Learning (Chaudhry et al., 2020), simplified to
//! its two active ingredients: experience replay with label CE, plus
//! per-class *anchor points* whose embeddings are pinned to their values at
//! the end of the task that created them, reducing forgetting of key data
//! points.

use cdcl_core::protocol::ContinualLearner;
use cdcl_core::CdclModel;
use cdcl_data::{Batcher, Sample, TaskData};
use cdcl_nn::Module;
use cdcl_optim::{AdamW, LrSchedule, Optimizer, WarmupCosine};
use cdcl_tensor::Tensor;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::shared::{eval_cil_model, eval_til_model, stack_batch, stack_images};
use crate::BaselineConfig;

/// A replay record (image + global label).
struct ReplayRecord {
    image: Tensor,
    global_label: usize,
}

/// An anchor: an image plus its embedding snapshot.
struct Anchor {
    image: Tensor,
    embedding: Tensor,
}

/// The HAL learner.
pub struct HalTrainer {
    config: BaselineConfig,
    model: CdclModel,
    optimizer: AdamW,
    memory: Vec<ReplayRecord>,
    anchors: Vec<Anchor>,
    seen: usize,
    rng: SmallRng,
}

impl HalTrainer {
    /// Builds a HAL learner.
    pub fn new(config: BaselineConfig) -> Self {
        let config = config.normalized();
        let mut rng = SmallRng::seed_from_u64(config.seed);
        let model = CdclModel::new(&mut rng, config.backbone);
        let optimizer = AdamW::new(model.params());
        Self {
            config,
            model,
            optimizer,
            memory: Vec::new(),
            anchors: Vec::new(),
            seen: 0,
            rng,
        }
    }

    /// Number of stored anchors.
    pub fn anchor_count(&self) -> usize {
        self.anchors.len()
    }

    fn train_step(&mut self, task: &TaskData, idx: &[usize], lr: f32) {
        let t = task.task_id;
        let (imgs, labels) = stack_batch(&task.source_train, idx);
        let globals: Vec<usize> = labels
            .iter()
            .map(|&l| self.model.class_offset(t) + l)
            .collect();
        let mut g = cdcl_autograd::Graph::new();
        let x = g.input(imgs);
        let z = self.model.features_self(&mut g, x, t);
        let til = self.model.til_logits(&mut g, z, t);
        let cil = self.model.cil_logits(&mut g, z);
        let lp_til = g.log_softmax_last(til);
        let lp_cil = g.log_softmax_last(cil);
        let l_til = g.nll_loss(lp_til, &labels);
        let l_cil = g.nll_loss(lp_cil, &globals);
        let mut loss = g.add(l_til, l_cil);

        // Replay CE on stored labels.
        if !self.memory.is_empty() && self.config.replay_batch > 0 {
            let picks: Vec<usize> = (0..self.config.replay_batch.min(self.memory.len()))
                .map(|_| self.rng.random_range(0..self.memory.len()))
                .collect();
            let imgs: Vec<&Tensor> = picks.iter().map(|&i| &self.memory[i].image).collect();
            let labels_r: Vec<usize> = picks.iter().map(|&i| self.memory[i].global_label).collect();
            let xr = g.input(stack_images(&imgs));
            let zr = self.model.features_self(&mut g, xr, t);
            let cil_r = self.model.cil_logits(&mut g, zr);
            let lp = g.log_softmax_last(cil_r);
            let l_ce = g.nll_loss(lp, &labels_r);
            let l_ce = g.scale(l_ce, self.config.beta);
            loss = g.add(loss, l_ce);
        }

        // Anchor penalty: keep anchor embeddings where they were.
        if !self.anchors.is_empty() {
            let imgs: Vec<&Tensor> = self.anchors.iter().map(|a| &a.image).collect();
            let snapshots: Vec<&Tensor> = self.anchors.iter().map(|a| &a.embedding).collect();
            let xa = g.input(stack_images(&imgs));
            let za = self.model.features_self(&mut g, xa, t);
            let snap = {
                let mut data = Vec::new();
                for s in &snapshots {
                    data.extend_from_slice(s.data());
                }
                Tensor::from_vec(data, &[snapshots.len(), snapshots[0].len()])
            };
            let snap_v = g.input(snap);
            let l_anchor = g.mse(za, snap_v);
            let l_anchor = g.scale(l_anchor, self.config.lambda);
            loss = g.add(loss, l_anchor);
        }

        self.optimizer.zero_grad();
        g.backward(loss);
        self.optimizer.step(lr);
    }

    fn finish_task(&mut self, task: &TaskData) {
        let t = task.task_id;
        // Reservoir replay memory.
        for s in &task.source_train {
            let record = ReplayRecord {
                image: s.image.clone(),
                global_label: self.model.class_offset(t) + s.label,
            };
            if self.memory.len() < self.config.memory_size {
                self.memory.push(record);
            } else if self.config.memory_size > 0 {
                let j = self.rng.random_range(0..=self.seen);
                if j < self.config.memory_size {
                    self.memory[j] = record;
                }
            }
            self.seen += 1;
        }
        // One anchor per class: the first sample of each class, with its
        // end-of-task embedding snapshot.
        for class in 0..task.num_classes() {
            if let Some(s) = task.source_train.iter().find(|s| s.label == class) {
                let imgs = stack_images(&[&s.image]);
                let emb = self.model.extract_features(&imgs, t).row(0);
                self.anchors.push(Anchor {
                    image: s.image.clone(),
                    embedding: emb,
                });
            }
        }
    }
}

impl ContinualLearner for HalTrainer {
    fn name(&self) -> String {
        "HAL".into()
    }

    fn learn_task(&mut self, task: &TaskData) {
        self.model.add_task(&mut self.rng, task.num_classes());
        self.optimizer.rebind(self.model.params());
        let schedule = WarmupCosine {
            warmup_lr: self.config.peak_lr,
            peak_lr: self.config.peak_lr,
            min_lr: self.config.min_lr,
            warmup_epochs: 0,
            total_epochs: self.config.epochs,
        };
        let mut batcher = Batcher::new(
            task.source_train.len(),
            self.config.batch_size,
            self.config.seed ^ ((task.task_id as u64) << 24),
        );
        for epoch in 0..self.config.epochs {
            let lr = schedule.lr(epoch);
            for batch in batcher.epoch() {
                self.train_step(task, &batch, lr);
            }
        }
        self.finish_task(task);
    }

    fn eval_til(&self, task_id: usize, test: &[Sample]) -> f64 {
        eval_til_model(&self.model, task_id, test)
    }

    fn eval_cil(&self, task_id: usize, test: &[Sample]) -> f64 {
        eval_cil_model(&self.model, task_id, test)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn anchors_accumulate_per_task() {
        let mut c = BaselineConfig::smoke();
        c.epochs = 1;
        let mut t = HalTrainer::new(c);
        let stream = cdcl_data::mnist_usps(
            cdcl_data::MnistUspsDirection::MnistToUsps,
            cdcl_data::Scale::Smoke,
        );
        t.learn_task(&stream.tasks[0]);
        assert_eq!(t.anchor_count(), 2);
        t.learn_task(&stream.tasks[1]);
        assert_eq!(t.anchor_count(), 4);
        assert_eq!(t.name(), "HAL");
    }
}
