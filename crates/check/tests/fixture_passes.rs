//! The concurrency passes against their planted fixtures and the live
//! workspace (DESIGN.md §14).
//!
//! Mirrors `cdcl-analyze --self-test` as a cargo test, then asserts the
//! real tree is clean — the same pair of gates CI runs, kept here so
//! `cargo test` alone catches a regression in either direction (a pass
//! going blind, or a new violation landing in the tree).

use std::path::{Path, PathBuf};

use cdcl_check::{atomics, lockorder};

fn fixtures_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

fn workspace_root() -> PathBuf {
    let manifest = Path::new(env!("CARGO_MANIFEST_DIR"));
    match manifest.parent().and_then(Path::parent) {
        Some(root) => root.to_path_buf(),
        None => PathBuf::from("."),
    }
}

fn read_fixture(name: &str) -> String {
    let path = fixtures_dir().join(name);
    match std::fs::read_to_string(&path) {
        Ok(s) => s,
        Err(e) => unreachable!("fixture {name} must exist: {e}"),
    }
}

#[test]
fn lock_cycle_fixture_trips_lock_order() {
    let src = read_fixture("lock_cycle.rs");
    let report =
        lockorder::analyze_sources(&[("crates/fixture/src/lock_cycle.rs".to_string(), src)]);
    assert!(
        report.findings.iter().any(|f| f.rule == "lock-order"),
        "expected a lock-order cycle, got {:?}",
        report.findings
    );
    assert!(report.has_edge("a", "b") && report.has_edge("b", "a"));
}

#[test]
fn guard_blocking_fixture_trips_in_scope_only() {
    let src = read_fixture("guard_blocking.rs");
    // Mapped into the watched serve/ directory: must fire.
    let in_scope = lockorder::analyze_sources(&[(
        "crates/bench/src/serve/fixture_guard_blocking.rs".to_string(),
        src.clone(),
    )]);
    assert!(
        in_scope.findings.iter().any(|f| f.rule == "guard-blocking"),
        "expected guard-blocking in scope, got {:?}",
        in_scope.findings
    );
    // The same code outside the blocking-sensitive scopes is advisory-free.
    let out_of_scope =
        lockorder::analyze_sources(&[("crates/fixture/src/other.rs".to_string(), src)]);
    assert!(
        !out_of_scope
            .findings
            .iter()
            .any(|f| f.rule == "guard-blocking"),
        "guard-blocking must be scope-limited, got {:?}",
        out_of_scope.findings
    );
}

#[test]
fn atomic_fixtures_trip_audit() {
    let undoc = read_fixture("atomic_undocumented.rs");
    let f1 = atomics::audit_source("crates/fixture/src/atomic_undocumented.rs", &undoc);
    assert!(
        f1.iter().any(|f| f.rule == "atomic-ordering"),
        "undocumented site must be flagged, got {f1:?}"
    );

    let publish = read_fixture("atomic_relaxed_publish.rs");
    let f2 = atomics::audit_source("crates/fixture/src/atomic_relaxed_publish.rs", &publish);
    assert!(
        f2.iter()
            .any(|f| f.rule == "atomic-ordering" && f.excerpt.contains("publish")),
        "Relaxed publication must be flagged, got {f2:?}"
    );
}

#[test]
fn clean_fixture_stays_clean() {
    let src = read_fixture("clean.rs");
    let rel = "crates/bench/src/serve/fixture_clean.rs".to_string();
    let report = lockorder::analyze_sources(&[(rel.clone(), src.clone())]);
    assert!(report.findings.is_empty(), "{:?}", report.findings);
    let audit = atomics::audit_source(&rel, &src);
    assert!(audit.is_empty(), "{audit:?}");
}

/// The live tree is concurrency-clean: no lock-order cycles, no guards
/// across blocking calls in the watched scopes, every atomic documented.
#[test]
fn workspace_passes_are_clean() {
    let root = workspace_root();
    let report = lockorder::analyze_workspace(&root);
    assert!(
        report.findings.is_empty(),
        "lock-order findings: {:#?}",
        report.findings
    );
    let audit = atomics::audit_workspace(&root);
    assert!(audit.is_empty(), "atomic-ordering findings: {audit:#?}");
    // The instrumented wrappers must be visible to the graph: these are
    // the canonical labels the runtime witness reports under.
    let labels: std::collections::BTreeSet<&str> = report
        .fns
        .iter()
        .flat_map(|f| f.acquisitions.iter().map(|a| a.label.as_str()))
        .collect();
    for expected in [
        "pool.classes",
        "registry.models",
        "registry.current",
        "serve.batches",
    ] {
        assert!(
            labels.contains(expected),
            "label {expected} missing from {labels:?}"
        );
    }
}
