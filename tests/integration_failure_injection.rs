//! Failure-injection tests: degenerate configurations the trainers must
//! survive without panicking or producing NaNs.

use cdcl::core::{run_stream, CdclConfig, CdclTrainer, ContinualLearner};
use cdcl::data::{DomainPairConfig, Sample, TaskData};
use cdcl::tensor::Tensor;

fn tiny_stream(classes: usize, tasks: usize) -> cdcl::data::CrossDomainStream {
    DomainPairConfig {
        name: "tiny".into(),
        num_classes: classes,
        tasks,
        channels: 1,
        hw: (16, 16),
        latent_dim: 8,
        domain_gap: 0.2,
        task_drift: 0.4,
        within_class_std: 0.3,
        source_noise_std: 0.05,
        target_noise_std: 0.05,
        train_per_class: 6,
        target_train_per_class: 6,
        test_per_class: 4,
        seed: 11,
    }
    .generate()
}

fn fast_config() -> CdclConfig {
    let mut c = CdclConfig::smoke();
    c.epochs = 3;
    c.warmup_epochs = 1;
    c
}

#[test]
fn zero_memory_trains_without_rehearsal() {
    let stream = tiny_stream(4, 2);
    let mut config = fast_config();
    config.memory_size = 0;
    let mut trainer = CdclTrainer::new(config);
    let r = run_stream(&mut trainer, &stream);
    assert_eq!(trainer.memory().len(), 0);
    assert!(r.til.acc() >= 0.0);
}

#[test]
fn single_class_tasks_are_degenerate_but_stable() {
    // 1 class per task: CE losses are trivially minimised; nothing may NaN.
    let stream = tiny_stream(2, 2);
    let mut trainer = CdclTrainer::new(fast_config());
    let r = run_stream(&mut trainer, &stream);
    // single answer per task -> TIL accuracy 1.0 by construction... only if
    // there are 1-class tasks; 2 classes over 2 tasks gives exactly that.
    assert_eq!(stream.tasks[0].num_classes(), 1);
    assert!((r.til.acc() - 1.0).abs() < 1e-9);
}

#[test]
fn single_task_stream_has_zero_forgetting() {
    let stream = tiny_stream(4, 1);
    let mut trainer = CdclTrainer::new(fast_config());
    let r = run_stream(&mut trainer, &stream);
    assert_eq!(r.til.fgt(), 0.0);
    assert_eq!(r.til.num_tasks(), 1);
}

#[test]
fn tiny_batches_and_memory_one() {
    let stream = tiny_stream(4, 2);
    let mut config = fast_config();
    config.batch_size = 1;
    config.memory_size = 1;
    config.rehearsal_batch = 1;
    let mut trainer = CdclTrainer::new(config);
    let r = run_stream(&mut trainer, &stream);
    assert!(trainer.memory().len() <= 1);
    assert!(r.til.acc() >= 0.0 && r.til.acc() <= 1.0);
}

#[test]
fn all_warmup_no_adaptation_epochs() {
    // warmup == epochs: the pseudo-label/adaptation stage never runs; the
    // memory falls back to index pairing and the learner stays functional.
    let stream = tiny_stream(4, 2);
    let mut config = fast_config();
    config.epochs = 2;
    config.warmup_epochs = 2;
    let mut trainer = CdclTrainer::new(config);
    let r = run_stream(&mut trainer, &stream);
    assert!(
        !trainer.memory().is_empty(),
        "fallback pairing must fill memory"
    );
    assert!(r.til.acc() >= 0.0);
}

#[test]
fn evaluating_on_empty_test_set_is_zero() {
    let stream = tiny_stream(4, 2);
    let mut trainer = CdclTrainer::new(fast_config());
    trainer.learn_task(&stream.tasks[0]);
    assert_eq!(trainer.eval_cil(0, &[]), 0.0);
}

#[test]
fn handcrafted_task_with_uneven_sets_trains() {
    // Source and target sets of different sizes (the usual real-data case).
    let mk = |label: usize, v: f32| Sample {
        image: Tensor::full(&[1, 16, 16], v),
        label,
    };
    let task = TaskData {
        task_id: 0,
        global_classes: vec![0, 1],
        source_train: vec![
            mk(0, 0.1),
            mk(1, 0.9),
            mk(0, 0.15),
            mk(1, 0.85),
            mk(0, 0.12),
        ],
        target_train: vec![mk(0, 0.2), mk(1, 0.8), mk(1, 0.78)],
        target_test: vec![mk(0, 0.18), mk(1, 0.82)],
    };
    let mut trainer = CdclTrainer::new(fast_config());
    trainer.learn_task(&task);
    let acc = trainer.eval_til(0, &task.target_test);
    assert!((0.0..=1.0).contains(&acc));
}
