//! Live training metrics (DESIGN.md §11) and the periodic `health` event.
//!
//! These statics are the trainer's half of the `cdcl-obs` registry: step
//! timers as log-bucketed histograms, the drift signals from Eqs. 17–19
//! (`pair_agreement`, `pseudo_flip_rate`) as gauges, and rehearsal-memory
//! occupancy. All record sites gate on [`cdcl_obs::enabled`], so a
//! metrics-off run does no extra work (and stays bitwise identical —
//! `tests/integration_metrics.rs`).
//!
//! When *both* telemetry and metrics are on, [`emit_health_event`] folds a
//! registry snapshot into the trace once per epoch: a single `health` JSONL
//! line a human (or `trace-summary`) can read to see where a run stood at
//! that moment, without replaying every `scalar` event.

use cdcl_obs::{Counter, Gauge, Histogram};
use cdcl_telemetry as telemetry;

pub(crate) static WARMUP_STEP_US: Histogram = Histogram::new(
    "cdcl_train_warmup_step_us",
    "Warm-up optimizer step duration (microseconds)",
);
pub(crate) static ADAPTATION_STEP_US: Histogram = Histogram::new(
    "cdcl_train_adaptation_step_us",
    "Adaptation optimizer step duration (microseconds)",
);
pub(crate) static LOSS: Gauge = Gauge::new("cdcl_train_loss", "Most recent total training loss");
pub(crate) static GRAD_NORM: Gauge =
    Gauge::new("cdcl_train_grad_norm", "Most recent global gradient norm");
pub(crate) static PAIR_AGREEMENT: Gauge = Gauge::new(
    "cdcl_train_pair_agreement",
    "Eq. 19 agreement: fraction of target samples with a matched source pair",
);
pub(crate) static PSEUDO_FLIP_RATE: Gauge = Gauge::new(
    "cdcl_train_pseudo_flip_rate",
    "Fraction of pseudo-labels that flipped between centroid rounds (Eq. 17)",
);
pub(crate) static MEMORY_OCCUPANCY: Gauge = Gauge::new(
    "cdcl_train_memory_occupancy",
    "Rehearsal-memory records currently stored",
);
pub(crate) static MEMORY_CAPACITY: Gauge = Gauge::new(
    "cdcl_train_memory_capacity",
    "Rehearsal-memory record capacity",
);
pub(crate) static STEPS_TOTAL: Counter = Counter::new(
    "cdcl_train_steps_total",
    "Optimizer steps taken (warm-up + adaptation)",
);
pub(crate) static TASKS_TOTAL: Counter = Counter::new(
    "cdcl_train_tasks_total",
    "Tasks completed by the continual learner",
);

/// Emits one `health` trace event summarising the registry: last
/// loss/grad-norm, the Eq. 17–19 drift gauges, memory occupancy, step
/// counts, step-timer percentiles, and the kernel counters (mirrored into
/// the registry on the way). Requires both layers on — with telemetry off
/// there is no trace to write to; with metrics off the registry is empty.
pub(crate) fn emit_health_event(task: usize, epoch: usize) {
    if !(telemetry::enabled() && cdcl_obs::enabled()) {
        return;
    }
    cdcl_tensor::kernels::publish_registry();
    let kernel = cdcl_tensor::kernels::counter_snapshot();
    telemetry::Event::new("health")
        .task(task)
        .epoch(epoch)
        .f64_field("loss", LOSS.get())
        .f64_field("grad_norm", GRAD_NORM.get())
        .f64_field("pair_agreement", PAIR_AGREEMENT.get())
        .f64_field("pseudo_flip_rate", PSEUDO_FLIP_RATE.get())
        .f64_field("memory_occupancy", MEMORY_OCCUPANCY.get())
        .f64_field("memory_capacity", MEMORY_CAPACITY.get())
        .u64_field("steps_total", STEPS_TOTAL.get())
        .u64_field("tasks_total", TASKS_TOTAL.get())
        .u64_field("gemm_calls_total", kernel.gemm_calls)
        .f64_field("warmup_step_us_p50", WARMUP_STEP_US.percentile(0.50))
        .f64_field(
            "adaptation_step_us_p50",
            ADAPTATION_STEP_US.percentile(0.50),
        )
        .f64_field(
            "adaptation_step_us_p99",
            ADAPTATION_STEP_US.percentile(0.99),
        )
        .emit();
}
