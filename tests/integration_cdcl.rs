//! End-to-end tests of the CDCL learner on smoke-scale streams.

use cdcl::core::{run_stream, CdclConfig, CdclTrainer, ContinualLearner};
use cdcl::data::{mnist_usps, office31, MnistUspsDirection, Office31Domain, Scale};
use cdcl::nn::Module;

#[test]
fn cdcl_learns_two_tasks_above_chance() {
    let stream = mnist_usps(MnistUspsDirection::MnistToUsps, Scale::Smoke);
    let mut trainer = CdclTrainer::new(CdclConfig::smoke());
    for task in stream.tasks.iter().take(2) {
        trainer.learn_task(task);
    }
    // 2-class tasks: chance = 50%. After training, both tasks should be
    // clearly above chance in the TIL scenario on the *target* domain.
    let acc0 = trainer.eval_til(0, &stream.tasks[0].target_test);
    let acc1 = trainer.eval_til(1, &stream.tasks[1].target_test);
    assert!(acc1 > 0.6, "current task target acc {acc1} <= 0.6");
    assert!(acc0 > 0.5, "previous task target acc {acc0} fell to chance");
}

#[test]
fn memory_fills_and_respects_quota() {
    let stream = mnist_usps(MnistUspsDirection::MnistToUsps, Scale::Smoke);
    let mut config = CdclConfig::smoke();
    config.memory_size = 20;
    config.epochs = 3;
    config.warmup_epochs = 1;
    let mut trainer = CdclTrainer::new(config);
    trainer.learn_task(&stream.tasks[0]);
    let after_one = trainer.memory().len();
    assert!(after_one > 0 && after_one <= 20);
    trainer.learn_task(&stream.tasks[1]);
    // quota = 20/2 = 10 per task
    assert!(trainer.memory().task_records(0).count() <= 10);
    assert!(trainer.memory().task_records(1).count() <= 10);
    assert!(trainer.memory().len() <= 20);
}

#[test]
fn frozen_task_keys_do_not_move() {
    let stream = mnist_usps(MnistUspsDirection::MnistToUsps, Scale::Smoke);
    let mut config = CdclConfig::smoke();
    config.epochs = 3;
    config.warmup_epochs = 1;
    let mut trainer = CdclTrainer::new(config);
    trainer.learn_task(&stream.tasks[0]);

    // Snapshot every parameter that is frozen once task 1 begins.
    trainer.learn_task(&stream.tasks[1]);
    let frozen: Vec<_> = trainer
        .model()
        .params()
        .into_iter()
        .filter(|p| !p.trainable())
        .map(|p| (p.clone(), p.value()))
        .collect();
    assert!(!frozen.is_empty(), "task-0 keys should be frozen");

    trainer.learn_task(&stream.tasks[2]);
    for (p, before) in frozen {
        assert_eq!(
            p.value().data(),
            before.data(),
            "frozen param {} moved during task 2",
            p.name()
        );
    }
}

#[test]
fn til_beats_cil_and_metrics_are_bounded() {
    let stream = mnist_usps(MnistUspsDirection::MnistToUsps, Scale::Smoke);
    let mut trainer = CdclTrainer::new(CdclConfig::smoke());
    let r = run_stream(&mut trainer, &stream);
    // With task identity, accuracy must beat the task-agnostic scenario.
    assert!(
        r.til.acc() >= r.cil.acc(),
        "TIL {} < CIL {}",
        r.til.acc(),
        r.cil.acc()
    );
    assert!(r.til.acc() > 0.0 && r.til.acc() <= 1.0);
    assert!(r.til.fgt() >= -1.0 && r.til.fgt() <= 1.0);
    assert_eq!(r.til.num_tasks(), 5);
}

#[test]
fn near_pair_transfers_better_than_far_pair() {
    // D->W (near analogue) must end with higher TIL ACC than A->D (far):
    // the ordering the paper's Table I depends on. Two tasks suffice.
    let near = office31(Office31Domain::Dslr, Office31Domain::Webcam, Scale::Smoke);
    let far = office31(Office31Domain::Amazon, Office31Domain::Dslr, Scale::Smoke);
    let mut cfg = CdclConfig::smoke();
    cfg.backbone.in_channels = 3;
    cfg.epochs = 6;
    cfg.warmup_epochs = 2;

    let mut near_trainer = CdclTrainer::new(cfg);
    for task in near.tasks.iter().take(2) {
        near_trainer.learn_task(task);
    }
    let near_acc = (near_trainer.eval_til(0, &near.tasks[0].target_test)
        + near_trainer.eval_til(1, &near.tasks[1].target_test))
        / 2.0;

    let mut far_trainer = CdclTrainer::new(cfg);
    for task in far.tasks.iter().take(2) {
        far_trainer.learn_task(task);
    }
    let far_acc = (far_trainer.eval_til(0, &far.tasks[0].target_test)
        + far_trainer.eval_til(1, &far.tasks[1].target_test))
        / 2.0;

    assert!(
        near_acc > far_acc,
        "near-domain pair ({near_acc}) must transfer better than far ({far_acc})"
    );
}

#[test]
fn ablation_variants_run_and_are_ordered_sanely() {
    // Dropping all three loss blocks at once must not panic (nothing to
    // optimize during adaptation epochs — warm-up CE also gone).
    let stream = mnist_usps(MnistUspsDirection::MnistToUsps, Scale::Smoke);
    let mut config = CdclConfig::smoke();
    config.epochs = 2;
    config.warmup_epochs = 1;
    config.losses.cil = false;
    config.losses.til = false;
    config.losses.rehearsal = false;
    let mut trainer = CdclTrainer::new(config);
    trainer.learn_task(&stream.tasks[0]);
    let acc = trainer.eval_til(0, &stream.tasks[0].target_test);
    assert!((0.0..=1.0).contains(&acc));
}
