//! Matrix products on tensors: plain 2-D GEMM, the batched variants
//! attention needs (`[b,m,k] × [b,k,n]` and `[b,m,k] × [k,n]`), and the
//! transpose-aware fused forms `A·Bᵀ` / `Aᵀ·B` that read the transposed
//! operand in place. All of them dispatch to [`crate::kernels`].

use crate::check::{enforce_shape, infer_matmul, infer_matmul_nt, infer_matmul_tn};
use crate::kernels;
use crate::pool::PooledBuf;
use crate::Tensor;

impl Tensor {
    /// Matrix/batched-matrix product. Supported rank combinations:
    ///
    /// * `[m,k] × [k,n] -> [m,n]`
    /// * `[b,m,k] × [b,k,n] -> [b,m,n]`
    /// * `[b,m,k] × [k,n] -> [b,m,n]` (shared right operand, e.g. a `Linear`
    ///   applied token-wise)
    ///
    /// Panics on inner-dimension mismatch or unsupported ranks.
    pub fn matmul(&self, rhs: &Tensor) -> Tensor {
        // Ranks and dimensions validated through the shared inference rules,
        // so runtime violations print exactly what the graph verifier would.
        let out_shape = enforce_shape(infer_matmul(self.shape(), rhs.shape()));
        match (self.ndim(), rhs.ndim()) {
            (2, 2) => {
                let (m, k) = (self.shape()[0], self.shape()[1]);
                let n = rhs.shape()[1];
                // GEMM accumulates (`C += A·B`), so zero *is* the semantic initial
                // value — take_zeroed does one explicit fill on recycled buffers.
                let mut out = PooledBuf::take_zeroed(m * n);
                kernels::gemm_nn(&mut out, self.data(), rhs.data(), m, k, n);
                Tensor::from_buf(out, &out_shape)
            }
            (3, 3) => {
                let (b, m, k) = (self.shape()[0], self.shape()[1], self.shape()[2]);
                let n = rhs.shape()[2];
                let mut out = PooledBuf::take_zeroed(b * m * n);
                kernels::gemm_nn_batched(&mut out, self.data(), rhs.data(), b, m, k, n);
                Tensor::from_buf(out, &out_shape)
            }
            (3, 2) => {
                // Shared right operand: flatten batch into rows.
                let (b, m, k) = (self.shape()[0], self.shape()[1], self.shape()[2]);
                let n = rhs.shape()[1];
                let mut out = PooledBuf::take_zeroed(b * m * n);
                kernels::gemm_nn(&mut out, self.data(), rhs.data(), b * m, k, n);
                Tensor::from_buf(out, &out_shape)
            }
            _ => unreachable!("ranks validated by shape inference"),
        }
    }

    /// Fused `self · rhsᵀ`: `rhs` is read in its stored layout, so the
    /// transposed operand is never materialised. Supported combinations:
    ///
    /// * `[m,k] × [n,k] -> [m,n]`
    /// * `[b,m,k] × [b,n,k] -> [b,m,n]` (attention scores `Q·Kᵀ`)
    /// * `[b,m,k] × [n,k] -> [b,m,n]` (shared right operand)
    pub fn matmul_nt(&self, rhs: &Tensor) -> Tensor {
        let out_shape = enforce_shape(infer_matmul_nt(self.shape(), rhs.shape()));
        match (self.ndim(), rhs.ndim()) {
            (2, 2) => {
                let (m, k) = (self.shape()[0], self.shape()[1]);
                let n = rhs.shape()[0];
                // GEMM accumulates (`C += A·B`), so zero *is* the semantic initial
                // value — take_zeroed does one explicit fill on recycled buffers.
                let mut out = PooledBuf::take_zeroed(m * n);
                kernels::gemm_nt(&mut out, self.data(), rhs.data(), m, k, n);
                Tensor::from_buf(out, &out_shape)
            }
            (3, 3) => {
                let (b, m, k) = (self.shape()[0], self.shape()[1], self.shape()[2]);
                let n = rhs.shape()[1];
                let mut out = PooledBuf::take_zeroed(b * m * n);
                kernels::gemm_nt_batched(&mut out, self.data(), rhs.data(), b, m, k, n);
                Tensor::from_buf(out, &out_shape)
            }
            (3, 2) => {
                let (b, m, k) = (self.shape()[0], self.shape()[1], self.shape()[2]);
                let n = rhs.shape()[0];
                let mut out = PooledBuf::take_zeroed(b * m * n);
                kernels::gemm_nt(&mut out, self.data(), rhs.data(), b * m, k, n);
                Tensor::from_buf(out, &out_shape)
            }
            _ => unreachable!("ranks validated by shape inference"),
        }
    }

    /// Fused `selfᵀ · rhs`: `self` is read in its stored layout, so the
    /// transposed operand is never materialised. Supported combinations:
    ///
    /// * `[k,m] × [k,n] -> [m,n]` (weight gradients `xᵀ·g`)
    /// * `[b,k,m] × [b,k,n] -> [b,m,n]`
    pub fn matmul_tn(&self, rhs: &Tensor) -> Tensor {
        let out_shape = enforce_shape(infer_matmul_tn(self.shape(), rhs.shape()));
        match (self.ndim(), rhs.ndim()) {
            (2, 2) => {
                let (k, m) = (self.shape()[0], self.shape()[1]);
                let n = rhs.shape()[1];
                // GEMM accumulates (`C += A·B`), so zero *is* the semantic initial
                // value — take_zeroed does one explicit fill on recycled buffers.
                let mut out = PooledBuf::take_zeroed(m * n);
                kernels::gemm_tn(&mut out, self.data(), rhs.data(), m, k, n);
                Tensor::from_buf(out, &out_shape)
            }
            (3, 3) => {
                let (b, k, m) = (self.shape()[0], self.shape()[1], self.shape()[2]);
                let n = rhs.shape()[2];
                let mut out = PooledBuf::take_zeroed(b * m * n);
                kernels::gemm_tn_batched(&mut out, self.data(), rhs.data(), b, m, k, n);
                Tensor::from_buf(out, &out_shape)
            }
            _ => unreachable!("ranks validated by shape inference"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assert_close;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn matmul_2d_known_values() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let b = Tensor::from_vec(vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0], &[3, 2]);
        let c = a.matmul(&b);
        assert_eq!(c.shape(), &[2, 2]);
        assert_close(c.data(), &[58.0, 64.0, 139.0, 154.0], 1e-6);
    }

    #[test]
    fn matmul_identity() {
        let mut rng = SmallRng::seed_from_u64(1);
        let a = Tensor::randn(&mut rng, &[4, 4], 1.0);
        let c = a.matmul(&Tensor::eye(4));
        assert_close(c.data(), a.data(), 1e-6);
    }

    #[test]
    fn matmul_batched_matches_per_slice() {
        let mut rng = SmallRng::seed_from_u64(2);
        let a = Tensor::randn(&mut rng, &[3, 2, 5], 1.0);
        let b = Tensor::randn(&mut rng, &[3, 5, 4], 1.0);
        let c = a.matmul(&b);
        assert_eq!(c.shape(), &[3, 2, 4]);
        for i in 0..3 {
            let ci = a.row(i).matmul(&b.row(i));
            assert_close(c.row(i).data(), ci.data(), 1e-5);
        }
    }

    #[test]
    fn matmul_3d_by_2d_shared_rhs() {
        let mut rng = SmallRng::seed_from_u64(3);
        let a = Tensor::randn(&mut rng, &[2, 3, 4], 1.0);
        let w = Tensor::randn(&mut rng, &[4, 6], 1.0);
        let c = a.matmul(&w);
        assert_eq!(c.shape(), &[2, 3, 6]);
        for i in 0..2 {
            assert_close(c.row(i).data(), a.row(i).matmul(&w).data(), 1e-5);
        }
    }

    #[test]
    fn matmul_associativity_small() {
        let mut rng = SmallRng::seed_from_u64(4);
        let a = Tensor::randn(&mut rng, &[3, 3], 0.5);
        let b = Tensor::randn(&mut rng, &[3, 3], 0.5);
        let c = Tensor::randn(&mut rng, &[3, 3], 0.5);
        let l = a.matmul(&b).matmul(&c);
        let r = a.matmul(&b.matmul(&c));
        assert_close(l.data(), r.data(), 1e-4);
    }

    #[test]
    #[should_panic(expected = "inner dims")]
    fn matmul_dim_mismatch_panics() {
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[4, 2]);
        a.matmul(&b);
    }

    #[test]
    fn transpose_product_identity() {
        // (A B)^T == B^T A^T
        let mut rng = SmallRng::seed_from_u64(5);
        let a = Tensor::randn(&mut rng, &[3, 5], 1.0);
        let b = Tensor::randn(&mut rng, &[5, 2], 1.0);
        let lhs = a.matmul(&b).transpose_last2();
        let rhs = b.transpose_last2().matmul(&a.transpose_last2());
        assert_close(lhs.data(), rhs.data(), 1e-5);
    }

    #[test]
    fn matmul_nt_matches_explicit_transpose() {
        let mut rng = SmallRng::seed_from_u64(6);
        let a = Tensor::randn(&mut rng, &[4, 7], 1.0);
        let b = Tensor::randn(&mut rng, &[5, 7], 1.0);
        let fused = a.matmul_nt(&b);
        let copied = a.matmul(&b.transpose_last2());
        assert_eq!(fused.shape(), &[4, 5]);
        assert_eq!(fused.data(), copied.data(), "nt must be bitwise identical");
    }

    #[test]
    fn matmul_nt_batched_matches_explicit_transpose() {
        let mut rng = SmallRng::seed_from_u64(7);
        let q = Tensor::randn(&mut rng, &[2, 6, 5], 1.0);
        let key = Tensor::randn(&mut rng, &[2, 3, 5], 1.0);
        let fused = q.matmul_nt(&key);
        let copied = q.matmul(&key.transpose_last2());
        assert_eq!(fused.shape(), &[2, 6, 3]);
        assert_eq!(fused.data(), copied.data());
    }

    #[test]
    fn matmul_nt_shared_rhs() {
        let mut rng = SmallRng::seed_from_u64(8);
        let a = Tensor::randn(&mut rng, &[2, 4, 5], 1.0);
        let b = Tensor::randn(&mut rng, &[3, 5], 1.0);
        let fused = a.matmul_nt(&b);
        let copied = a.matmul(&b.transpose_last2());
        assert_eq!(fused.shape(), &[2, 4, 3]);
        assert_eq!(fused.data(), copied.data());
    }

    #[test]
    fn matmul_tn_matches_explicit_transpose() {
        let mut rng = SmallRng::seed_from_u64(9);
        let a = Tensor::randn(&mut rng, &[7, 4], 1.0);
        let b = Tensor::randn(&mut rng, &[7, 3], 1.0);
        let fused = a.matmul_tn(&b);
        let copied = a.transpose_last2().matmul(&b);
        assert_eq!(fused.shape(), &[4, 3]);
        assert_eq!(fused.data(), copied.data(), "tn must be bitwise identical");
    }

    #[test]
    fn matmul_tn_batched_matches_explicit_transpose() {
        let mut rng = SmallRng::seed_from_u64(10);
        let a = Tensor::randn(&mut rng, &[3, 6, 2], 1.0);
        let b = Tensor::randn(&mut rng, &[3, 6, 4], 1.0);
        let fused = a.matmul_tn(&b);
        let copied = a.transpose_last2().matmul(&b);
        assert_eq!(fused.shape(), &[3, 2, 4]);
        assert_eq!(fused.data(), copied.data());
    }
}
