//! Offline stand-in for [`criterion`](https://crates.io/crates/criterion).
//!
//! The build environment has no crates.io access, so this crate provides a
//! minimal wall-clock harness with the same call surface the workspace
//! benches use: [`Criterion`] with `sample_size` / `measurement_time` /
//! `warm_up_time` builders, [`Criterion::benchmark_group`] →
//! [`BenchmarkGroup::bench_with_input`] / `bench_function`, [`BenchmarkId`],
//! [`Bencher::iter`], and the [`criterion_group!`] / [`criterion_main!`]
//! macros.
//!
//! No statistics beyond mean/min/max, no HTML reports, no comparison to
//! saved baselines — each benchmark prints one line:
//! `bench <name>: <mean> ns/iter (min .. max)`.

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver (sampling configuration + naming).
#[derive(Clone, Debug)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            sample_size: 10,
            measurement_time: Duration::from_secs(2),
            warm_up_time: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    /// Number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Total time budget for the timed samples of one benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Time spent running the routine before measurement starts.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    /// Runs a single stand-alone benchmark.
    pub fn bench_function<F>(&mut self, name: impl fmt::Display, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(self, &name.to_string(), |b| routine(b));
        self
    }
}

/// A named set of benchmarks sharing the parent's configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Benchmarks `routine`, passing it `input` by reference.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.0);
        run_benchmark(self.criterion, &full, |b| routine(b, input));
        self
    }

    /// Benchmarks `routine` under `name` within this group.
    pub fn bench_function<F>(&mut self, name: impl fmt::Display, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, name);
        run_benchmark(self.criterion, &full, |b| routine(b));
        self
    }

    /// Ends the group (kept for API parity; nothing to flush).
    pub fn finish(self) {}
}

/// Identifier for one benchmark within a group.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `function_name/parameter` id.
    pub fn new(function_name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        Self(format!("{function_name}/{parameter}"))
    }

    /// Id that is just the parameter value.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        Self(parameter.to_string())
    }
}

/// Timing handle passed to benchmark closures.
pub struct Bencher<'a> {
    config: &'a Criterion,
    /// Mean/min/max nanoseconds per iteration, filled by [`Bencher::iter`].
    result: Option<(f64, f64, f64)>,
}

impl Bencher<'_> {
    /// Times `routine`, first warming up, then collecting `sample_size`
    /// samples whose batch sizes are scaled so the whole run fits the
    /// measurement-time budget.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up, also estimating the per-iteration cost.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.config.warm_up_time {
            black_box(routine());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters.max(1) as f64;

        let samples = self.config.sample_size;
        let budget = self.config.measurement_time.as_secs_f64();
        let iters_per_sample =
            ((budget / samples as f64 / per_iter.max(1e-9)).ceil() as u64).max(1);

        let mut mean_sum = 0.0f64;
        let mut min = f64::INFINITY;
        let mut max = 0.0f64;
        for _ in 0..samples {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            let ns = start.elapsed().as_nanos() as f64 / iters_per_sample as f64;
            mean_sum += ns;
            min = min.min(ns);
            max = max.max(ns);
        }
        self.result = Some((mean_sum / samples as f64, min, max));
    }
}

fn run_benchmark(config: &Criterion, name: &str, routine: impl FnOnce(&mut Bencher)) {
    let mut bencher = Bencher {
        config,
        result: None,
    };
    routine(&mut bencher);
    match bencher.result {
        Some((mean, min, max)) => {
            println!("bench {name}: {mean:.0} ns/iter (min {min:.0} .. max {max:.0})")
        }
        None => println!("bench {name}: no measurement recorded"),
    }
}

/// Declares a benchmark group function, mirroring criterion's macro forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> Criterion {
        Criterion::default()
            .sample_size(2)
            .measurement_time(Duration::from_millis(10))
            .warm_up_time(Duration::from_millis(1))
    }

    #[test]
    fn bench_function_records_a_measurement() {
        let mut c = quick();
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
    }

    #[test]
    fn group_runs_with_input() {
        let mut c = quick();
        let mut group = c.benchmark_group("g");
        group.bench_with_input(BenchmarkId::from_parameter(4), &4usize, |b, n| {
            b.iter(|| black_box(n * 2))
        });
        group.bench_function("plain", |b| b.iter(|| black_box(3)));
        group.finish();
    }
}
