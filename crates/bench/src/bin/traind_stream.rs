//! `traind-stream`: the CI driver for the `cdcl-traind` loop (DESIGN.md
//! §15). Generates a deterministic two-task cross-domain stream and feeds
//! it to a running `cdcl-traind` over TCP **without ever telling the
//! daemon where the task boundary is**, then asserts the closed loop did
//! its job from the window acks alone:
//!
//! 1. the bootstrap round trained task 0 and published a verified
//!    checkpoint (serve reports version 1);
//! 2. the task switch was *detected* — and the inferred boundary equals
//!    the generator's ground-truth switch window;
//! 3. the online round for task 1 ran and its publish was verified live
//!    (serve reports version 2, two tasks) with zero failed reloads.
//!
//! On success writes `--out` (`BENCH_traind.json`) with the two headline
//! latencies — detection lag in windows and publish→verified-reload wall
//! time — in a `bench-diff`-comparable `{"latency": …}` shape. Any
//! violated assertion exits non-zero, failing the CI job.

use cdcl_data::{DomainPairConfig, Sample};
use serde::Value;
use std::fmt::Write as _;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::TcpStream;

/// Renders one ingest line by hand (the vendored serde derive has no
/// attribute support, and the image vector dominates the line anyway).
fn ingest_line(role: &str, label: Option<usize>, image: &[f32]) -> String {
    let mut line = format!("{{\"role\":\"{role}\"");
    if let Some(l) = label {
        let _ = write!(line, ",\"label\":{l}");
    }
    line.push_str(",\"image\":[");
    for (i, x) in image.iter().enumerate() {
        if i > 0 {
            line.push(',');
        }
        let _ = write!(line, "{x}");
    }
    line.push_str("]}");
    line
}

struct StreamArgs {
    traind: String,
    serve: Option<String>,
    out: Option<String>,
    seed: u64,
    bootstrap_windows: usize,
    clean_windows: usize,
    max_shift_windows: usize,
}

fn usage() -> String {
    "usage: traind-stream --traind <addr> [--serve <addr>] [--out BENCH_traind.json]\n\
     \x20   [--seed <n>] [--bootstrap <n>] [--clean <n>] [--max-shift <n>]"
        .to_string()
}

fn parse_args() -> StreamArgs {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut args = StreamArgs {
        traind: String::new(),
        serve: None,
        out: None,
        seed: 11,
        bootstrap_windows: 2,
        clean_windows: 6,
        max_shift_windows: 12,
    };
    let mut i = 0;
    while i < argv.len() {
        let value = |i: usize| -> String {
            argv.get(i + 1)
                .unwrap_or_else(|| {
                    eprintln!("traind-stream: {} needs a value\n{}", argv[i], usage());
                    std::process::exit(2);
                })
                .clone()
        };
        let number = |i: usize| -> usize {
            value(i).parse().unwrap_or_else(|_| {
                eprintln!("traind-stream: {} expects an integer\n{}", argv[i], usage());
                std::process::exit(2);
            })
        };
        match argv[i].as_str() {
            "--traind" => args.traind = value(i),
            "--serve" => args.serve = Some(value(i)),
            "--out" => args.out = Some(value(i)),
            "--seed" => args.seed = number(i) as u64,
            "--bootstrap" => args.bootstrap_windows = number(i).max(1),
            "--clean" => args.clean_windows = number(i),
            "--max-shift" => args.max_shift_windows = number(i).max(1),
            other => {
                eprintln!("traind-stream: unknown argument {other}\n{}", usage());
                std::process::exit(2);
            }
        }
        i += 2;
    }
    if args.traind.is_empty() {
        eprintln!("traind-stream: --traind is required\n{}", usage());
        std::process::exit(2);
    }
    args
}

/// The deterministic two-task scenario: a strong per-task rendering drift
/// makes the boundary physically real, but the daemon is never told it.
fn scenario(seed: u64) -> cdcl_data::CrossDomainStream {
    DomainPairConfig {
        name: "traind-stream".to_string(),
        num_classes: 4,
        tasks: 2,
        channels: 1,
        hw: (8, 8),
        latent_dim: 6,
        domain_gap: 0.5,
        task_drift: 0.9,
        within_class_std: 0.25,
        source_noise_std: 0.05,
        target_noise_std: 0.05,
        train_per_class: 24,
        target_train_per_class: 24,
        test_per_class: 2,
        seed,
    }
    .generate()
}

fn send_samples(
    writer: &mut BufWriter<TcpStream>,
    role: &'static str,
    samples: &[&Sample],
) -> std::io::Result<()> {
    for s in samples {
        let label = (role == "source").then_some(s.label);
        writeln!(writer, "{}", ingest_line(role, label, s.image.data()))?;
    }
    Ok(())
}

/// Streams one window (a round-robin slice of the task's samples) and
/// returns the parsed commit ack.
fn commit_window(
    writer: &mut BufWriter<TcpStream>,
    reader: &mut BufReader<TcpStream>,
    task: &cdcl_data::TaskData,
    window_in_task: usize,
    per_window: usize,
) -> Value {
    fn pick(pool: &[Sample], start: usize, per_window: usize) -> Vec<&Sample> {
        (0..per_window)
            .map(|j| &pool[(start + j) % pool.len()])
            .collect()
    }
    let start = window_in_task * per_window;
    send_samples(
        writer,
        "source",
        &pick(&task.source_train, start, per_window),
    )
    .expect("send source");
    send_samples(
        writer,
        "target",
        &pick(&task.target_train, start, per_window),
    )
    .expect("send target");
    writeln!(writer).expect("send commit");
    writer.flush().expect("flush commit");
    let mut line = String::new();
    reader.read_line(&mut line).expect("read ack");
    eprintln!("traind-stream: ack {}", line.trim());
    let ack: Value = serde_json::from_str(line.trim())
        .unwrap_or_else(|e| panic!("bad ack {:?}: {e}", line.trim()));
    assert_eq!(
        field_bool(&ack, "ok"),
        Some(true),
        "window commit refused: {}",
        line.trim()
    );
    ack
}

fn field_bool(v: &Value, name: &str) -> Option<bool> {
    match v.field(name) {
        Some(Value::Bool(b)) => Some(*b),
        _ => None,
    }
}

fn field_u64(v: &Value, name: &str) -> Option<u64> {
    match v.field(name) {
        Some(Value::Num(n)) => Some(*n as u64),
        _ => None,
    }
}

fn field_f64(v: &Value, name: &str) -> Option<f64> {
    match v.field(name) {
        Some(Value::Num(n)) => Some(*n),
        _ => None,
    }
}

/// Asserts a window ack carries a fully verified publish and returns its
/// `publish_us`.
fn check_publish(ack: &Value, expect_version: u64, expect_tasks: u64) -> f64 {
    let publish = match ack.field("publish") {
        Some(p) if !matches!(p, Value::Null) => p,
        _ => panic!("round ack lacks a publish block: {ack:?}"),
    };
    assert_eq!(
        field_bool(publish, "ok"),
        Some(true),
        "publish failed: {publish:?}"
    );
    let reloads = match publish.field("reloads") {
        Some(Value::Arr(rows)) => rows.as_slice(),
        _ => panic!("publish block lacks reloads: {publish:?}"),
    };
    assert!(!reloads.is_empty(), "no reload targets were notified");
    for r in reloads {
        assert_eq!(
            field_u64(r, "version"),
            Some(expect_version),
            "reload did not stamp version {expect_version}: {r:?}"
        );
        assert_eq!(
            field_u64(r, "tasks"),
            Some(expect_tasks),
            "reload did not report {expect_tasks} tasks: {r:?}"
        );
    }
    field_f64(publish, "publish_us")
        .unwrap_or_else(|| panic!("publish block lacks publish_us: {publish:?}"))
}

/// Sends one CIL predict request to a running `cdcl-serve` and asserts the
/// freshly reloaded snapshot answers it. When tracing is on, this is the
/// request that claims the `first_serve` span armed by the traced `RELOAD`
/// (DESIGN.md §16), closing the window-commit → serve causal chain.
fn probe_serve(addr: &str, image_len: usize, expect_version: u64) {
    let conn = TcpStream::connect(addr).unwrap_or_else(|e| panic!("connect serve {addr}: {e}"));
    let cloned = conn.try_clone().expect("clone serve connection");
    let mut reader = BufReader::new(cloned);
    let mut writer = BufWriter::new(conn);
    let mut line = String::from("{\"id\":1,\"mode\":\"cil\",\"image\":[");
    for i in 0..image_len {
        if i > 0 {
            line.push(',');
        }
        line.push('0');
    }
    line.push_str("]}");
    writeln!(writer, "{line}").expect("send predict");
    // A blank line flushes the admission batch immediately.
    writeln!(writer).expect("send flush");
    writer.flush().expect("flush predict");
    let mut reply = String::new();
    reader.read_line(&mut reply).expect("read predict reply");
    let resp: Value = serde_json::from_str(reply.trim())
        .unwrap_or_else(|e| panic!("bad predict reply {:?}: {e}", reply.trim()));
    assert_eq!(
        field_bool(&resp, "ok"),
        Some(true),
        "predict failed: {}",
        reply.trim()
    );
    assert_eq!(
        field_u64(&resp, "version"),
        Some(expect_version),
        "stale snapshot answered the probe: {}",
        reply.trim()
    );
    eprintln!("traind-stream: serve probe answered by version {expect_version}");
}

fn main() {
    let args = parse_args();
    let stream = scenario(args.seed);
    let per_window = 6;

    let conn =
        TcpStream::connect(&args.traind).unwrap_or_else(|e| panic!("connect {}: {e}", args.traind));
    let cloned = conn.try_clone().expect("clone connection");
    let mut reader = BufReader::new(cloned);
    let mut writer = BufWriter::new(conn);

    // Phase A: bootstrap windows (task 0). The daemon starts with zero
    // tasks; the last bootstrap commit triggers the task-0 round + publish.
    let mut bootstrap_ack = Value::Null;
    for w in 0..args.bootstrap_windows {
        bootstrap_ack = commit_window(&mut writer, &mut reader, &stream.tasks[0], w, per_window);
    }
    assert_eq!(
        field_u64(&bootstrap_ack, "rounds"),
        Some(1),
        "bootstrap round did not run: {bootstrap_ack:?}"
    );
    let bootstrap_publish_us = check_publish(&bootstrap_ack, 1, 1);
    eprintln!(
        "traind-stream: bootstrap round published & verified live in {bootstrap_publish_us:.0}us"
    );

    // Phase B: clean task-0 windows — detector calibration + baseline.
    // Ground truth: the switch to task 1 happens at the next window index.
    for w in 0..args.clean_windows {
        let ack = commit_window(
            &mut writer,
            &mut reader,
            &stream.tasks[0],
            args.bootstrap_windows + w,
            per_window,
        );
        assert_eq!(
            field_u64(&ack, "detections"),
            Some(0),
            "false drift detection on a within-task window: {ack:?}"
        );
    }
    let switch_window = args.bootstrap_windows + args.clean_windows;

    // Phase C: task-1 windows. No boundary is ever sent; the daemon must
    // detect the drift, infer the boundary, train, and publish on its own.
    let mut detected_at = None;
    let mut round2_ack = None;
    for w in 0..args.max_shift_windows {
        let ack = commit_window(&mut writer, &mut reader, &stream.tasks[1], w, per_window);
        let window = field_u64(&ack, "window").expect("ack window index");
        if detected_at.is_none() && field_u64(&ack, "detections") == Some(1) {
            detected_at = Some(window);
        }
        if field_u64(&ack, "rounds") == Some(2) {
            round2_ack = Some(ack);
            break;
        }
    }
    let detected_at = detected_at.unwrap_or_else(|| {
        panic!(
            "no drift detection within {} shifted windows",
            args.max_shift_windows
        )
    });
    let round2_ack =
        round2_ack.unwrap_or_else(|| panic!("detection at window {detected_at} never trained"));

    // The inferred boundary must match the generator's ground truth.
    let boundary = field_u64(&round2_ack, "boundary").expect("round ack boundary");
    assert_eq!(
        boundary, switch_window as u64,
        "inferred boundary {boundary} != ground-truth switch window {switch_window}"
    );
    assert_eq!(field_u64(&round2_ack, "tasks"), Some(2), "{round2_ack:?}");
    let publish_us = check_publish(&round2_ack, 2, 2);
    let detection_windows = detected_at - switch_window as u64 + 1;
    eprintln!(
        "traind-stream: drift detected at window {detected_at} (boundary {boundary}, \
         {detection_windows} windows after the switch); task-1 checkpoint published & \
         verified live in {publish_us:.0}us"
    );

    // Optionally hit the serving plane once after the verified reload so
    // the `first_serve` stage of the publish→reload trace is exercised.
    if let Some(serve) = &args.serve {
        let image_len = stream.tasks[0].source_train[0].image.data().len();
        probe_serve(serve, image_len, 2);
    }

    if let Some(out) = &args.out {
        let json = format!(
            "{{\n  \"latency\": {{\n    \"detection_windows\": {detection_windows},\n    \
             \"publish_to_reload_us\": {publish_us:.1}\n  }}\n}}\n"
        );
        std::fs::write(out, json).unwrap_or_else(|e| panic!("write {out}: {e}"));
        eprintln!("traind-stream: wrote {out}");
    }
    println!("traind-stream: OK");
}
