//! DER and DER++ (Buzzega et al., NeurIPS 2020): dark-experience replay.
//!
//! A reservoir memory stores `(x, y, logits)` triples; while learning new
//! tasks the current network is pulled toward its *past* logits on replayed
//! samples (MSE), and DER++ additionally replays the ground-truth labels.
//! As single-domain methods they train on the labelled source only — any
//! target-domain accuracy is incidental transfer, which is exactly how they
//! behave in the paper's tables (strong on MNIST↔USPS, collapsed on
//! Office-31).

use cdcl_core::protocol::ContinualLearner;
use cdcl_core::CdclModel;
use cdcl_data::{Batcher, Sample, TaskData};
use cdcl_nn::Module;
use cdcl_optim::{AdamW, LrSchedule, Optimizer, WarmupCosine};
use cdcl_tensor::Tensor;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::shared::{
    eval_cil_model, eval_til_model, narrow_logits, stack_batch, stack_images, EVAL_CHUNK,
};
use crate::BaselineConfig;

/// DER (logit replay only) vs DER++ (logit + label replay).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DerVariant {
    /// Logit replay only.
    Der,
    /// Logit + label replay.
    DerPlusPlus,
}

/// One reservoir record.
struct DerRecord {
    image: Tensor,
    global_label: usize,
    /// Raw CIL logits at storage time.
    logits: Vec<f32>,
}

/// The DER/DER++ learner.
pub struct DerTrainer {
    variant: DerVariant,
    config: BaselineConfig,
    model: CdclModel,
    optimizer: AdamW,
    memory: Vec<DerRecord>,
    /// Total samples offered to the reservoir so far.
    seen: usize,
    rng: SmallRng,
}

impl DerTrainer {
    /// Builds a DER or DER++ learner.
    pub fn new(variant: DerVariant, config: BaselineConfig) -> Self {
        let config = config.normalized();
        let mut rng = SmallRng::seed_from_u64(config.seed);
        let model = CdclModel::new(&mut rng, config.backbone);
        let optimizer = AdamW::new(model.params());
        Self {
            variant,
            config,
            model,
            optimizer,
            memory: Vec::new(),
            seen: 0,
            rng,
        }
    }

    /// The underlying model.
    pub fn model(&self) -> &CdclModel {
        &self.model
    }

    /// Records currently in the reservoir.
    pub fn memory_len(&self) -> usize {
        self.memory.len()
    }

    fn train_step(&mut self, task: &TaskData, idx: &[usize], lr: f32) {
        let t = task.task_id;
        let (imgs, labels) = stack_batch(&task.source_train, idx);
        let globals: Vec<usize> = labels
            .iter()
            .map(|&l| self.model.class_offset(t) + l)
            .collect();
        let mut g = cdcl_autograd::Graph::new();
        let x = g.input(imgs);
        let z = self.model.features_self(&mut g, x, t);
        let til = self.model.til_logits(&mut g, z, t);
        let cil = self.model.cil_logits(&mut g, z);
        let lp_til = g.log_softmax_last(til);
        let lp_cil = g.log_softmax_last(cil);
        let l_til = g.nll_loss(lp_til, &labels);
        let l_cil = g.nll_loss(lp_cil, &globals);
        let mut loss = g.add(l_til, l_cil);

        // Replay: a random memory batch, grouped by stored logit width
        // (records from earlier tasks were stored before the head grew).
        if !self.memory.is_empty() && self.config.replay_batch > 0 {
            let total = self.model.total_classes();
            let picks: Vec<usize> = (0..self.config.replay_batch.min(self.memory.len()))
                .map(|_| self.rng.random_range(0..self.memory.len()))
                .collect();
            let mut widths: Vec<usize> =
                picks.iter().map(|&i| self.memory[i].logits.len()).collect();
            widths.sort_unstable();
            widths.dedup();
            for width in widths {
                let group: Vec<usize> = picks
                    .iter()
                    .copied()
                    .filter(|&i| self.memory[i].logits.len() == width)
                    .collect();
                let imgs: Vec<&Tensor> = group.iter().map(|&i| &self.memory[i].image).collect();
                let batch = stack_images(&imgs);
                let stored: Vec<f32> = group
                    .iter()
                    .flat_map(|&i| self.memory[i].logits.iter().copied())
                    .collect();
                let stored = Tensor::from_vec(stored, &[group.len(), width]);
                let xr = g.input(batch);
                let zr = self.model.features_self(&mut g, xr, t);
                let cil_r = self.model.cil_logits(&mut g, zr);
                let narrowed = narrow_logits(&mut g, cil_r, total, width);
                let stored_v = g.input(stored);
                let l_logit = g.mse(narrowed, stored_v);
                let l_logit = g.scale(l_logit, self.config.alpha);
                loss = g.add(loss, l_logit);
                if self.variant == DerVariant::DerPlusPlus {
                    let labels_r: Vec<usize> =
                        group.iter().map(|&i| self.memory[i].global_label).collect();
                    let lp = g.log_softmax_last(cil_r);
                    let l_ce = g.nll_loss(lp, &labels_r);
                    let l_ce = g.scale(l_ce, self.config.beta);
                    loss = g.add(loss, l_ce);
                }
            }
        }
        self.optimizer.zero_grad();
        g.backward(loss);
        self.optimizer.step(lr);
    }

    /// Reservoir-samples the task's source data into memory, storing the
    /// model's current logits (dark knowledge).
    fn update_memory(&mut self, task: &TaskData) {
        let t = task.task_id;
        for chunk in (0..task.source_train.len())
            .collect::<Vec<_>>()
            .chunks(EVAL_CHUNK)
        {
            let (imgs, labels) = stack_batch(&task.source_train, chunk);
            let probs = self.model.predict_cil(&imgs);
            // predict_cil returns probabilities; DER stores raw responses —
            // log-probabilities serve the same role up to the softmax
            // temperature and stay finite.
            let total = probs.shape()[1];
            for (i, &local) in labels.iter().enumerate() {
                let logits: Vec<f32> = probs.data()[i * total..(i + 1) * total]
                    .iter()
                    .map(|p| p.max(1e-7).ln())
                    .collect();
                let record = DerRecord {
                    image: task.source_train[chunk[i]].image.clone(),
                    global_label: self.model.class_offset(t) + local,
                    logits,
                };
                if self.memory.len() < self.config.memory_size {
                    self.memory.push(record);
                } else if self.config.memory_size > 0 {
                    let j = self.rng.random_range(0..=self.seen);
                    if j < self.config.memory_size {
                        self.memory[j] = record;
                    }
                }
                self.seen += 1;
            }
        }
    }
}

impl ContinualLearner for DerTrainer {
    fn name(&self) -> String {
        match self.variant {
            DerVariant::Der => "DER".into(),
            DerVariant::DerPlusPlus => "DER++".into(),
        }
    }

    fn learn_task(&mut self, task: &TaskData) {
        self.model.add_task(&mut self.rng, task.num_classes());
        self.optimizer.rebind(self.model.params());
        let schedule = WarmupCosine {
            warmup_lr: self.config.peak_lr,
            peak_lr: self.config.peak_lr,
            min_lr: self.config.min_lr,
            warmup_epochs: 0,
            total_epochs: self.config.epochs,
        };
        let mut batcher = Batcher::new(
            task.source_train.len(),
            self.config.batch_size,
            self.config.seed ^ ((task.task_id as u64) << 20),
        );
        for epoch in 0..self.config.epochs {
            let lr = schedule.lr(epoch);
            for batch in batcher.epoch() {
                self.train_step(task, &batch, lr);
            }
        }
        self.update_memory(task);
    }

    fn eval_til(&self, task_id: usize, test: &[Sample]) -> f64 {
        eval_til_model(&self.model, task_id, test)
    }

    fn eval_cil(&self, task_id: usize, test: &[Sample]) -> f64 {
        eval_cil_model(&self.model, task_id, test)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_match_variants() {
        let c = BaselineConfig::smoke();
        assert_eq!(DerTrainer::new(DerVariant::Der, c).name(), "DER");
        assert_eq!(DerTrainer::new(DerVariant::DerPlusPlus, c).name(), "DER++");
    }

    #[test]
    fn memory_respects_capacity() {
        let mut c = BaselineConfig::smoke();
        c.memory_size = 10;
        c.epochs = 1;
        let mut t = DerTrainer::new(DerVariant::Der, c);
        let stream = cdcl_data::mnist_usps(
            cdcl_data::MnistUspsDirection::MnistToUsps,
            cdcl_data::Scale::Smoke,
        );
        t.learn_task(&stream.tasks[0]);
        assert!(t.memory_len() <= 10);
        assert!(t.memory_len() > 0);
    }
}
